// Traffic-control demo (paper §6.1.1, Fig. 11): the flow-based traffic
// controller defeating bufferbloat.
//
// A VoIP conversation (irtt-like, 172 B / 20 ms) shares a bearer with a
// greedy Cubic flow (iperf3-like). In transparent mode the VoIP RTT explodes
// with the bloated RLC buffer; with the TC xApp watching the RLC stats over
// the broker, it installs a second queue + 5-tuple filter + 5G-BDP pacer and
// the VoIP RTT collapses back.
#include <cstdio>

#include "agent/agent.hpp"
#include "ctrl/broker.hpp"
#include "ctrl/monitor.hpp"
#include "ctrl/tc_xapp.hpp"
#include "flows/cubic.hpp"
#include "flows/manager.hpp"
#include "flows/voip.hpp"
#include "ran/functions.hpp"
#include "server/server.hpp"

using namespace flexric;

namespace {

constexpr WireFormat kFmt = WireFormat::flat;

e2sm::tc::FiveTuple voip_tuple() {
  e2sm::tc::FiveTuple t;
  t.src_ip = 0x0A000001;
  t.dst_ip = 0x0A640001;
  t.src_port = 40000;
  t.dst_port = 5060;
  t.proto = 17;
  return t;
}

e2sm::tc::FiveTuple bulk_tuple() {
  e2sm::tc::FiveTuple t;
  t.src_ip = 0x0A000002;
  t.dst_ip = 0x0A640001;
  t.src_port = 40001;
  t.dst_port = 443;
  t.proto = 6;
  return t;
}

struct Scenario {
  bool with_xapp;
  double p50 = 0, p90 = 0, p99 = 0, max = 0;
};

Scenario run_scenario(bool with_xapp) {
  Reactor reactor;
  ran::CellConfig cell;
  cell.rat = ran::Rat::lte;
  cell.num_prbs = 25;
  cell.default_mcs = 28;
  ran::BaseStation bs(cell);
  agent::E2Agent agent(reactor, {{20899, 1, e2ap::NodeType::enb}, kFmt});
  ran::BsFunctionBundle functions(bs, agent, kFmt);

  server::E2Server ric(reactor, {21, kFmt, {}});
  ctrl::Broker broker(reactor);
  ctrl::MonitorIApp::Config mon_cfg{kFmt, /*period_ms=*/10};
  mon_cfg.broker = &broker;
  mon_cfg.want_mac = false;
  mon_cfg.want_pdcp = false;
  auto monitor = std::make_shared<ctrl::MonitorIApp>(mon_cfg);
  auto manager = std::make_shared<ctrl::TcSmManagerIApp>(kFmt);
  ric.add_iapp(monitor);
  ric.add_iapp(manager);

  std::unique_ptr<ctrl::TcXapp> xapp;
  if (with_xapp) {
    ctrl::TcXapp::Config xcfg;
    xcfg.sm_format = kFmt;
    xcfg.sojourn_limit_ms = 20.0;
    xcfg.low_latency_flow = voip_tuple();
    xcfg.rnti = 100;
    xapp = std::make_unique<ctrl::TcXapp>(broker, *manager, xcfg);
  }

  auto [a_side, s_side] = LocalTransport::make_pair(reactor);
  ric.attach(s_side);
  (void)agent.add_controller(a_side);
  for (int i = 0; i < 50; ++i) reactor.run_once(0);

  (void)bs.attach_ue({100, 20899, 0, 15, 28});
  flows::TrafficManager tm(bs, {});
  flows::VoipSource voip(1, voip_tuple());
  flows::CubicSource bulk(2, bulk_tuple(), /*start=*/5 * kSecond);
  tm.attach(&voip, 100);
  tm.attach(&bulk, 100);

  // One minute conversation, iperf3 starting 5 s in (the paper's setup).
  Nanos now = 0;
  for (int t = 0; t < 65'000; ++t) {
    now += kMilli;
    tm.tick(now);
    bs.tick(now);
    functions.on_tti(now);
    reactor.run_once(0);
  }

  Scenario out{with_xapp};
  out.p50 = voip.rtt_ms().quantile(0.5);
  out.p90 = voip.rtt_ms().quantile(0.9);
  out.p99 = voip.rtt_ms().quantile(0.99);
  out.max = voip.rtt_ms().max();
  std::printf("  xApp applied: %s, bulk goodput %.1f Mbps, drops %llu\n",
              xapp && xapp->applied() ? "yes" : "no (transparent)",
              static_cast<double>(bulk.delivered_bytes()) * 8 / 1e6 / 60.0,
              static_cast<unsigned long long>(bulk.drops()));
  return out;
}

}  // namespace

int main() {
  std::printf("== Traffic control demo (cf. paper Fig. 11) ==\n");
  std::printf("VoIP (172 B / 20 ms) + greedy Cubic flow on one bearer\n\n");
  std::printf("transparent mode:\n");
  Scenario base = run_scenario(false);
  std::printf("with TC xApp:\n");
  Scenario tc = run_scenario(true);

  std::printf("\n%-22s %10s %10s\n", "VoIP RTT", "transparent", "xApp");
  std::printf("%-22s %9.1f ms %7.1f ms\n", "median", base.p50, tc.p50);
  std::printf("%-22s %9.1f ms %7.1f ms\n", "p90", base.p90, tc.p90);
  std::printf("%-22s %9.1f ms %7.1f ms\n", "p99", base.p99, tc.p99);
  std::printf("%-22s %9.1f ms %7.1f ms\n", "max", base.max, tc.max);

  // Paper: "the RTT of the VoIP flow when segregated is in the order of
  // four times faster".
  bool ok = tc.p90 * 2.0 < base.p90;
  std::printf("\ntraffic_control_demo: %s\n", ok ? "OK" : "FAILED");
  return ok ? 0 : 1;
}
