// Disaggregated base-station demo (paper §4.1.2, Fig. 4).
//
// A CU agent (RRC events + PDCP stats) and a DU agent (MAC/RLC stats +
// slice SM + UE-ASSOC SM) belong to one base station. An infrastructure
// controller is the primary controller of both; a specialized controller
// attaches to the DU only (e.g. for remote scheduling).
//
// The Fig. 4 sequence:
//   (1) a UE arrives — its selected PLMN is decoded at the CU;
//   (2) the CU's RRC SM notifies the infrastructure controller;
//   (3) the infrastructure controller decides the UE belongs to the
//       specialized service;
//   (4) it configures the UE-to-controller association at the DU agent
//       (UE-ASSOC SM control);
//   (5) the DU now exposes the UE in the specialized controller's MAC
//       statistics — which it could not have inferred on its own.
#include <cstdio>

#include "agent/agent.hpp"
#include "e2sm/assoc_sm.hpp"
#include "e2sm/common.hpp"
#include "ran/functions.hpp"
#include "server/server.hpp"

using namespace flexric;

namespace {
constexpr WireFormat kFmt = WireFormat::flat;
constexpr std::uint32_t kServicePlmn = 20899;  // the specialized service
}  // namespace

int main() {
  Reactor reactor;
  ran::BaseStation bs({ran::Rat::nr, 1, 106, kMilli, 20, false});

  // --- CU and DU agents of the same base station (same plmn/nb_id) --------
  agent::E2Agent cu(reactor, {{1, 55, e2ap::NodeType::cu}, kFmt, {}});
  auto rrc_fn = std::make_shared<ran::RrcFunction>(bs, kFmt);
  auto pdcp_fn = std::make_shared<ran::PdcpStatsFunction>(bs, kFmt);
  (void)cu.register_function(rrc_fn);
  (void)cu.register_function(pdcp_fn);

  agent::E2Agent du(reactor, {{1, 55, e2ap::NodeType::du}, kFmt, {}});
  auto mac_fn = std::make_shared<ran::MacStatsFunction>(bs, kFmt);
  auto rlc_fn = std::make_shared<ran::RlcStatsFunction>(bs, kFmt);
  auto slice_fn = std::make_shared<ran::SliceCtrlFunction>(bs, kFmt);
  auto assoc_fn = std::make_shared<ran::AssocFunction>(kFmt);
  (void)du.register_function(mac_fn);
  (void)du.register_function(rlc_fn);
  (void)du.register_function(slice_fn);
  (void)du.register_function(assoc_fn);

  // --- Infrastructure controller: primary controller of BOTH agents -------
  server::E2Server infra(reactor, {1, kFmt, {}, {}});
  struct InfraApp final : server::IApp {
    const char* name() const override { return "infra"; }
    void on_ran_formed(const server::RanEntity& e) override {
      formed = true;
      cu_agent = *e.cu;
      du_agent = *e.du;
      std::printf("[infra] RAN entity (plmn=%u nb=%u) complete: CU=agent%u "
                  "DU=agent%u\n",
                  e.plmn, e.nb_id, *e.cu, *e.du);
    }
    bool formed = false;
    server::AgentId cu_agent = 0, du_agent = 0;
  };
  auto infra_app = std::make_shared<InfraApp>();
  infra.add_iapp(infra_app);

  auto [cu_a, cu_s] = LocalTransport::make_pair(reactor);
  infra.attach(cu_s);
  (void)cu.add_controller(cu_a);  // controller index 0 at the CU
  auto [du_a, du_s] = LocalTransport::make_pair(reactor);
  infra.attach(du_s);
  (void)du.add_controller(du_a);  // controller index 0 at the DU
  for (int i = 0; i < 80; ++i) reactor.run_once(0);
  if (!infra_app->formed) {
    std::printf("RAN entity never formed\n");
    return 1;
  }

  // --- Specialized controller: attached to the DU only (index 1) ----------
  server::E2Server specialized(reactor, {2, kFmt, {}, {}});
  auto [sp_a, sp_s] = LocalTransport::make_pair(reactor);
  specialized.attach(sp_s);
  (void)du.add_controller(sp_a);
  for (int i = 0; i < 80; ++i) reactor.run_once(0);

  std::size_t visible_ues = 0;
  server::SubCallbacks mac_cbs;
  mac_cbs.on_indication = [&](const e2ap::Indication& ind) {
    auto msg = e2sm::sm_decode<e2sm::mac::IndicationMsg>(ind.message, kFmt);
    if (msg) visible_ues = msg->ues.size();
  };
  (void)specialized.subscribe(
      specialized.ran_db().agents().front(), e2sm::mac::Sm::kId,
      e2sm::sm_encode(e2sm::EventTrigger{e2sm::TriggerKind::periodic, 1},
                      kFmt),
      {{1, e2ap::ActionType::report, {}}}, mac_cbs);
  for (int i = 0; i < 80; ++i) reactor.run_once(0);

  // --- Steps 2-4: infra watches RRC at the CU, configures the DU ----------
  server::SubCallbacks rrc_cbs;
  rrc_cbs.on_indication = [&](const e2ap::Indication& ind) {
    auto ev = e2sm::sm_decode<e2sm::rrc::IndicationMsg>(ind.message, kFmt);
    if (!ev || ev->kind != e2sm::rrc::EventKind::attach) return;
    std::printf("[infra] (2) RRC attach at CU: rnti=%u plmn=%u\n", ev->rnti,
                ev->plmn);
    if (ev->plmn != kServicePlmn) return;
    std::printf("[infra] (3) UE belongs to the specialized service\n");
    e2sm::assoc::CtrlMsg assoc;
    assoc.kind = e2sm::assoc::CtrlKind::associate;
    assoc.rnti = ev->rnti;
    assoc.controller_index = 1;  // the specialized controller at the DU
    (void)infra.send_control(infra_app->du_agent, e2sm::assoc::Sm::kId, {},
                       e2sm::sm_encode(assoc, kFmt), {},
                       /*ack_requested=*/false);
    std::printf("[infra] (4) UE-to-controller association configured at the "
                "DU agent\n");
  };
  (void)infra.subscribe(infra_app->cu_agent, e2sm::rrc::Sm::kId,
                  e2sm::sm_encode(
                      e2sm::EventTrigger{e2sm::TriggerKind::on_event, 0},
                      kFmt),
                  {{1, e2ap::ActionType::report, {}}}, rrc_cbs);
  for (int i = 0; i < 80; ++i) reactor.run_once(0);

  // --- Step 1: the UE arrives ----------------------------------------------
  auto run_ms = [&](int ms, Nanos& now) {
    for (int t = 0; t < ms; ++t) {
      now += kMilli;
      bs.tick(now);
      mac_fn->on_tti(now);
      rlc_fn->on_tti(now);
      pdcp_fn->on_tti(now);
      slice_fn->on_tti(now);
      reactor.run_once(0);
    }
  };
  Nanos now = 0;
  run_ms(5, now);
  std::size_t before = visible_ues;
  std::printf("[demo]  specialized controller sees %zu UE(s) before attach\n",
              before);
  std::printf("[demo]  (1) UE rnti=100 attaches with PLMN %u\n", kServicePlmn);
  (void)bs.attach_ue({100, kServicePlmn, 0, 15, 20});
  run_ms(20, now);
  std::printf("[demo]  (5) specialized controller now sees %zu UE(s)\n",
              visible_ues);

  bool ok = before == 0 && visible_ues == 1;
  std::printf("\ndisaggregated_demo: %s\n", ok ? "OK" : "FAILED");
  return ok ? 0 : 1;
}
