// Recursive slicing demo (paper §6.2, Fig. 15): two operators share one
// base station through the virtualization controller, each driving its own
// unmodified slicing controller against a virtual E2 node.
//
//   slicing ctrl A   slicing ctrl B        (tenant controllers)
//        ▲                ▲
//   [virtual node A] [virtual node B]      (agent library, reused)
//        └────── VirtController ──────┘    (NVS rescaling, id remap,
//                      ▲                    stats partitioning)
//               shared eNB agent
#include <cstdio>

#include "agent/agent.hpp"
#include "ctrl/slicing.hpp"
#include "ctrl/virt.hpp"
#include "ran/functions.hpp"
#include "server/server.hpp"

using namespace flexric;

namespace {
constexpr WireFormat kFmt = WireFormat::flat;
constexpr std::uint32_t kPlmnA = 100, kPlmnB = 200;
}  // namespace

int main() {
  Reactor reactor;

  // Shared infrastructure: one 10 MHz eNB (50 PRBs), as in Fig. 15b.
  ran::CellConfig cell;
  cell.rat = ran::Rat::lte;
  cell.num_prbs = 50;
  cell.default_mcs = 28;
  ran::BaseStation bs(cell);
  agent::E2Agent agent(reactor, {{999, 1, e2ap::NodeType::enb}, kFmt});
  ran::BsFunctionBundle functions(bs, agent, kFmt);

  // Virtualization controller: 50 % SLA per operator.
  ctrl::VirtController virt(reactor, {kFmt, kFmt},
                            {{"opA", kPlmnA, 0.5, 10},
                             {"opB", kPlmnB, 0.5, 20}});
  auto [a_side, s_side] = LocalTransport::make_pair(reactor);
  virt.southbound().attach(s_side);
  (void)agent.add_controller(a_side);
  for (int i = 0; i < 50; ++i) reactor.run_once(0);

  // Tenant controllers (the §6.1.2 slicing controller, reused unmodified).
  server::E2Server tenant_a(reactor, {101, kFmt, {}});
  server::E2Server tenant_b(reactor, {102, kFmt, {}});
  auto slicing_a =
      std::make_shared<ctrl::SlicingIApp>(ctrl::SlicingIApp::Config{kFmt, 100});
  auto slicing_b =
      std::make_shared<ctrl::SlicingIApp>(ctrl::SlicingIApp::Config{kFmt, 100});
  tenant_a.add_iapp(slicing_a);
  tenant_b.add_iapp(slicing_b);
  auto [na, ta] = LocalTransport::make_pair(reactor);
  tenant_a.attach(ta);
  (void)virt.connect_tenant(0, na);
  auto [nb, tb] = LocalTransport::make_pair(reactor);
  tenant_b.attach(tb);
  (void)virt.connect_tenant(1, nb);
  for (int i = 0; i < 50; ++i) reactor.run_once(0);

  // Four UEs, two per operator (identified by PLMN).
  (void)bs.attach_ue({1, kPlmnA, 0, 15, 28});
  (void)bs.attach_ue({2, kPlmnA, 0, 15, 28});
  (void)bs.attach_ue({3, kPlmnB, 0, 15, 28});
  (void)bs.attach_ue({4, kPlmnB, 0, 15, 28});
  for (int i = 0; i < 50; ++i) reactor.run_once(0);

  Nanos now = 0;
  auto run_saturated = [&](int ms, bool op_b_active) {
    for (int t = 0; t < ms; ++t) {
      now += kMilli;
      for (std::uint16_t rnti : {1, 2}) {
        ran::Packet p;
        p.size_bytes = 1400;
        bs.deliver_downlink(rnti, 1, p);
        bs.deliver_downlink(rnti, 1, p);
      }
      if (op_b_active)
        for (std::uint16_t rnti : {3, 4}) {
          ran::Packet p;
          p.size_bytes = 1400;
          bs.deliver_downlink(rnti, 1, p);
          bs.deliver_downlink(rnti, 1, p);
        }
      bs.tick(now);
      functions.on_tti(now);
      reactor.run_once(0);
    }
  };
  auto print_phase = [&](const char* phase, Nanos window) {
    std::printf("%-48s", phase);
    for (std::uint16_t rnti : {1, 2, 3, 4})
      std::printf(" ue%u=%5.1f", rnti,
                  bs.ue_throughput_mbps(rnti, window, true));
    std::printf("  (Mbps)\n");
  };

  std::printf("== Recursive slicing demo (cf. paper Fig. 15b) ==\n");
  std::printf("Shared 50-PRB eNB, operators A and B at 50%% SLA each\n\n");

  run_saturated(2000, true);
  print_phase("phase 1: no sub-slices (equal split)", 2 * kSecond);

  // Operator A creates virtual sub-slices 66 % / 33 % within ITS half and
  // pins its UEs — operator B is untouched.
  auto cfg_a = ctrl::SlicingIApp::ctrl_from_json(*ctrl::Json::parse(
      R"({"algo":"nvs","slices":[{"id":1,"label":"gold","share":0.66},
                                  {"id":2,"label":"silver","share":0.33}]})"));
  (void)slicing_a->configure(tenant_a.ran_db().agents().front(), *cfg_a);
  for (int i = 0; i < 50; ++i) reactor.run_once(0);
  auto assoc_a = ctrl::SlicingIApp::ctrl_from_json(*ctrl::Json::parse(
      R"({"assoc":[{"rnti":1,"slice":1},{"rnti":2,"slice":2}]})"));
  (void)slicing_a->configure(tenant_a.ran_db().agents().front(), *assoc_a);
  for (int i = 0; i < 50; ++i) reactor.run_once(0);

  run_saturated(3000, true);
  print_phase("phase 2: op A sub-slices 66/33 (B unaffected)", 3 * kSecond);

  // Let operator B's bloated RLC buffers drain before measuring phase 3.
  run_saturated(4000, false);
  for (std::uint16_t rnti : {1, 2, 3, 4})
    bs.ue_throughput_mbps(rnti, kSecond, /*reset=*/true);
  run_saturated(3000, false);
  print_phase("phase 3: op B idle (A reuses B's half)", 3 * kSecond);

  // Tenant isolation check: A cannot claim B's UE.
  auto steal = ctrl::SlicingIApp::ctrl_from_json(
      *ctrl::Json::parse(R"({"assoc":[{"rnti":3,"slice":1}]})"));
  bool steal_rejected = false;
  (void)slicing_a->configure(tenant_a.ran_db().agents().front(), *steal,
                       [&](const e2sm::slice::CtrlOutcome& o) {
                         steal_rejected = !o.success;
                       });
  for (int i = 0; i < 100; ++i) reactor.run_once(0);
  std::printf("\nop A association for op B's UE rejected: %s\n",
              steal_rejected ? "yes" : "NO (bug)");

  std::printf("op A subscribers: %zu, op B subscribers: %zu\n",
              virt.tenant_ues(0).size(), virt.tenant_ues(1).size());
  bool ok = steal_rejected && virt.tenant_ues(0).size() == 2 &&
            virt.tenant_ues(1).size() == 2;
  std::printf("\nrecursive_demo: %s\n", ok ? "OK" : "FAILED");
  return ok ? 0 : 1;
}
