// Slicing demo (paper §6.1.2): the RAT-unaware slicing controller with its
// REST northbound, driven by a curl-like xApp.
//
// Recreates the Fig. 13a storyline: three saturated UEs, no slicing (equal
// shares) → NVS slices 50/50 with UE 1 alone in slice 1 → slice 1 grows to
// 66 %. The xApp speaks JSON over HTTP, exactly like `curl -X POST /slice`.
#include <atomic>
#include <cstdio>
#include <thread>

#include "agent/agent.hpp"
#include "ctrl/rest.hpp"
#include "ctrl/slicing.hpp"
#include "ran/functions.hpp"
#include "server/server.hpp"

using namespace flexric;

namespace {

constexpr WireFormat kFmt = WireFormat::flat;

struct Deployment {
  Reactor reactor;
  ran::BaseStation bs;
  agent::E2Agent agent;
  ran::BsFunctionBundle functions;
  server::E2Server ric{reactor, {21, kFmt}};
  std::shared_ptr<ctrl::SlicingIApp> slicing =
      std::make_shared<ctrl::SlicingIApp>(ctrl::SlicingIApp::Config{kFmt, 100});
  ctrl::HttpServer http{reactor};
  Nanos now = 0;

  Deployment()
      : bs([] {
          ran::CellConfig cfg;
          cfg.rat = ran::Rat::nr;
          cfg.num_prbs = 106;
          cfg.default_mcs = 20;
          return cfg;
        }()),
        agent(reactor, {{20899, 1, e2ap::NodeType::gnb}, kFmt}),
        functions(bs, agent, kFmt) {
    ric.add_iapp(slicing);
    slicing->mount_rest(http);
    (void)http.listen(0);
    auto [a_side, s_side] = LocalTransport::make_pair(reactor);
    ric.attach(s_side);
    (void)agent.add_controller(a_side);
    for (int i = 0; i < 50; ++i) reactor.run_once(0);
  }

  Nanos phase_ns = 0;  ///< duration of the last run() phase

  /// Run `ms` simulated milliseconds of saturated downlink for all UEs.
  void run(int ms) {
    phase_ns = static_cast<Nanos>(ms) * kMilli;
    for (int t = 0; t < ms; ++t) {
      now += kMilli;
      for (std::uint16_t rnti : bs.ues()) {
        ran::Packet p;
        p.size_bytes = 1400;
        for (int k = 0; k < 3; ++k) bs.deliver_downlink(rnti, 1, p);
      }
      bs.tick(now);
      functions.on_tti(now);
      reactor.run_once(0);
    }
  }

  void print_throughputs(const char* phase) {
    std::printf("%-45s", phase);
    for (std::uint16_t rnti : bs.ues())
      std::printf(" ue%u=%5.1f Mbps", rnti,
                  bs.ue_throughput_mbps(rnti, phase_ns, true));
    std::printf("\n");
  }
};

/// A curl-like call from a helper thread while the reactor pumps.
int rest_post(Deployment& d, const std::string& path,
              const std::string& body) {
  std::atomic<int> code{0};
  std::thread curl([&] {
    auto resp =
        ctrl::HttpClient::request("127.0.0.1", d.http.port(), "POST", path, body);
    code = resp ? resp->code : -1;
  });
  while (code == 0) d.reactor.run_once(1);
  curl.join();
  for (int i = 0; i < 50; ++i) d.reactor.run_once(0);
  return code;
}

}  // namespace

int main() {
  Deployment d;
  for (std::uint16_t rnti : {1, 2}) (void)d.bs.attach_ue({rnti, 20899, 0, 15, 20});
  for (int i = 0; i < 20; ++i) d.reactor.run_once(0);

  std::printf("== Slicing demo (cf. paper Fig. 13a) ==\n");
  d.run(1000);
  d.print_throughputs("t1: no slicing, 2 UEs (equal share)");

  (void)d.bs.attach_ue({3, 20899, 0, 15, 20});
  d.run(1000);
  d.print_throughputs("t2: UE 3 arrives (UE 1 drops below 50%)");

  // The xApp deploys 50/50 slices via REST and isolates UE 1 in slice 1.
  int c1 = rest_post(d, "/slice",
                     R"({"algo":"nvs","slices":[
                          {"id":1,"label":"white","share":0.5},
                          {"id":2,"label":"rest","share":0.5}]})");
  int c2 = rest_post(d, "/slice/assoc",
                     R"({"assoc":[{"rnti":1,"slice":1},
                                  {"rnti":2,"slice":2},
                                  {"rnti":3,"slice":2}]})");
  std::printf("REST: POST /slice -> %d, POST /slice/assoc -> %d\n", c1, c2);
  d.run(2000);
  d.print_throughputs("t3: NVS slices 50/50 (UE 1 regains 50%)");

  int c3 = rest_post(d, "/slice",
                     R"({"algo":"nvs","slices":[
                          {"id":1,"label":"white","share":0.66},
                          {"id":2,"label":"rest","share":0.34}]})");
  std::printf("REST: POST /slice -> %d\n", c3);
  d.run(2000);
  d.print_throughputs("t4: slice 1 raised to 66%");

  bool ok = c1 == 200 && c2 == 200 && c3 == 200;
  std::printf("\nslicing_demo: %s\n", ok ? "OK" : "FAILED");
  return ok ? 0 : 1;
}
