// Quickstart: the smallest complete FlexRIC deployment.
//
// Builds a simulated 5G base station with the bundled agent SMs, connects it
// over (framed) TCP to a FlexRIC controller running a monitoring iApp, and
// prints the live MAC statistics the iApp collects — the "hello world" of
// the SDK.
//
//   base station (sim) ── agent library ──E2AP/TCP──▶ server library
//                                                        └── monitor iApp
#include <cstdio>

#include "agent/agent.hpp"
#include "ctrl/monitor.hpp"
#include "ran/functions.hpp"
#include "server/server.hpp"

using namespace flexric;

int main() {
  Reactor reactor;
  constexpr WireFormat kFmt = WireFormat::flat;

  // --- Controller side: server library + statistics iApp ------------------
  // Opt into connection resilience (DESIGN.md §9): a dropped agent is
  // quarantined, retained, and its subscriptions replayed transparently if
  // it returns within the expiry window.
  ResilienceConfig server_rc;
  server_rc.quarantine_after = 5 * kSecond;
  server_rc.expire_after = 30 * kSecond;
  server::E2Server ric(reactor, {/*ric_id=*/21, kFmt, server_rc});
  auto monitor = std::make_shared<ctrl::MonitorIApp>(
      ctrl::MonitorIApp::Config{kFmt, /*period_ms=*/1});
  ric.add_iapp(monitor);
  if (Status st = ric.listen(0); !st.is_ok()) {
    std::fprintf(stderr, "listen failed: %s\n", st.to_string().c_str());
    return 1;
  }
  std::printf("RIC listening on 127.0.0.1:%u\n", ric.port());

  // --- RAN side: simulator + agent library --------------------------------
  ran::CellConfig cell;
  cell.rat = ran::Rat::nr;
  cell.num_prbs = 106;   // 20 MHz NR
  cell.default_mcs = 20;
  ran::BaseStation bs(cell);
  agent::E2Agent agent(reactor,
                       {{/*plmn=*/20899, /*nb_id=*/1, e2ap::NodeType::gnb},
                        kFmt});
  ran::BsFunctionBundle functions(bs, agent, kFmt);

  // Resilient attach: the agent dials through this factory and re-dials it
  // with backoff if the link ever drops, replaying E2 Setup on success.
  std::uint16_t ric_port = ric.port();
  auto dial = [&reactor, ric_port]() -> Result<std::shared_ptr<MsgTransport>> {
    auto conn = TcpTransport::connect(reactor, "127.0.0.1", ric_port);
    if (!conn) return conn.error();
    return std::shared_ptr<MsgTransport>(std::move(*conn));
  };
  if (auto cid = agent.add_controller(dial, ResilienceConfig{}); !cid) {
    std::fprintf(stderr, "connect failed: %s\n",
                 cid.error().to_string().c_str());
    return 1;
  }

  // Three UEs with fixed MCS 20 (the paper's NR setup).
  for (std::uint16_t rnti : {100, 101, 102})
    (void)bs.attach_ue({rnti, 20899, 0, 15, 20});

  // --- Run 2 simulated seconds of saturated downlink ----------------------
  Nanos now = 0;
  for (int tti = 0; tti < 2000; ++tti) {
    now += kMilli;
    for (std::uint16_t rnti : {100, 101, 102}) {
      ran::Packet p;
      p.size_bytes = 1400;
      bs.deliver_downlink(rnti, 1, p);
    }
    bs.tick(now);
    functions.on_tti(now);
    reactor.run_once(0);
  }
  for (int i = 0; i < 50; ++i) reactor.run_once(1);

  // --- Inspect what the controller learned --------------------------------
  std::printf("\nRAN database: %zu agent(s)\n", ric.ran_db().num_agents());
  std::printf("Indications received: %llu\n",
              static_cast<unsigned long long>(monitor->total_indications()));
  for (const auto& [agent_id, db] : monitor->db()) {
    std::printf("agent %u: %zu UE(s) in the MAC view\n", agent_id,
                db.mac.size());
    for (const auto& [rnti, ue] : db.mac)
      std::printf("  rnti=%u cqi=%u mcs=%u slice=%u bsr=%uB\n", rnti, ue.cqi,
                  ue.mcs_dl, ue.slice_id, ue.bsr);
  }
  bool ok = monitor->total_indications() > 1000 &&
            !monitor->db().empty() &&
            monitor->db().begin()->second.mac.size() == 3;
  std::printf("\nquickstart: %s\n", ok ? "OK" : "FAILED");
  return ok ? 0 : 1;
}
