// Fig. 9a — Round-trip time over two hops: FlexRIC (relay controller) vs
// the O-RAN RIC (E2 termination + RMR + xApp).
//
// Paper setup: HW-SM ping with 100 B / 1500 B payloads; FlexRIC uses a
// relaying controller to emulate the two hops that O-RAN's architecture
// *imposes* (xApp -> E2T -> agent). Paper result: the O-RAN RIC is at least
// 3x slower for small and 2x for medium payloads (~1 ms on a local host).
#include "baseline/oran/ric.hpp"
#include "bench/bench_util.hpp"
#include "common/metrics.hpp"
#include "ctrl/relay.hpp"
#include "e2sm/common.hpp"
#include "ran/functions.hpp"

using namespace flexric;
using namespace flexric::bench;

namespace {

/// Top controller -> relay -> agent, all FlexRIC, selectable encoding.
double flexric_two_hop_rtt_us(WireFormat fmt, std::size_t payload,
                              int rounds) {
  Reactor reactor;
  agent::E2Agent agent(reactor, {{1, 10, e2ap::NodeType::gnb}, fmt});
  (void)agent.register_function(std::make_shared<ran::HwFunction>(fmt));
  ctrl::RelayController relay(reactor, {fmt, {1, 500, e2ap::NodeType::gnb}});
  FLEXRIC_ASSERT(relay.listen(0).is_ok(), "bench: relay listen");
  auto a_conn =
      TcpTransport::connect(reactor, "127.0.0.1", relay.southbound().port());
  FLEXRIC_ASSERT(a_conn.is_ok(), "bench: agent connect");
  (void)agent.add_controller(std::shared_ptr<MsgTransport>(std::move(*a_conn)));
  for (int i = 0; i < 500 && !relay.southbound_ready(); ++i)
    reactor.run_once(1);

  server::E2Server top(reactor, {99, fmt, {}});
  FLEXRIC_ASSERT(top.listen(0).is_ok(), "bench: top listen");
  auto n_conn = TcpTransport::connect(reactor, "127.0.0.1", top.port());
  FLEXRIC_ASSERT(n_conn.is_ok(), "bench: relay northbound connect");
  FLEXRIC_ASSERT(
      relay.connect_northbound(std::shared_ptr<MsgTransport>(std::move(*n_conn)))
          .is_ok(),
      "bench: relay northbound");
  for (int i = 0; i < 500 && top.ran_db().num_agents() == 0; ++i)
    reactor.run_once(1);

  std::optional<std::uint32_t> pong_seq;
  server::SubCallbacks cbs;
  cbs.on_indication = [&](const e2ap::Indication& ind) {
    auto pong = e2sm::sm_decode<e2sm::hw::Pong>(ind.message, fmt);
    if (pong) pong_seq = pong->seq;
  };
  auto h = top.subscribe(
      top.ran_db().agents().front(), e2sm::hw::Sm::kId,
      e2sm::sm_encode(e2sm::EventTrigger{e2sm::TriggerKind::on_event, 0}, fmt),
      {{1, e2ap::ActionType::report, {}}}, cbs);
  FLEXRIC_ASSERT(h.is_ok(), "bench: subscribe");
  for (int i = 0; i < 200; ++i) reactor.run_once(1);

  Histogram rtt;
  for (int i = 1; i <= rounds; ++i) {
    e2sm::hw::Ping ping;
    ping.seq = static_cast<std::uint32_t>(i);
    ping.payload.assign(payload, 0x5A);
    pong_seq.reset();
    Nanos t0 = mono_now();
    (void)top.send_control(top.ran_db().agents().front(), e2sm::hw::Sm::kId, {},
                     e2sm::sm_encode(ping, fmt), {},
                     /*ack_requested=*/false);
    while (!pong_seq || *pong_seq != static_cast<std::uint32_t>(i))
      reactor.run_once(1);
    rtt.record(static_cast<double>(mono_now() - t0) / 1e3);
  }
  return rtt.quantile(0.5);
}

/// xApp -> E2T -> agent over the O-RAN RIC baseline (ASN.1, as mandated).
double oran_two_hop_rtt_us(std::size_t payload, int rounds) {
  Reactor reactor;
  agent::E2Agent agent(reactor,
                       {{1, 10, e2ap::NodeType::gnb}, WireFormat::per});
  (void)agent.register_function(
      std::make_shared<ran::HwFunction>(WireFormat::per));
  baseline::oran::E2Termination e2term(reactor);
  FLEXRIC_ASSERT(e2term.listen_e2(0).is_ok(), "bench: e2t listen");
  FLEXRIC_ASSERT(e2term.listen_rmr(0).is_ok(), "bench: rmr listen");
  auto a_conn =
      TcpTransport::connect(reactor, "127.0.0.1", e2term.e2_port());
  FLEXRIC_ASSERT(a_conn.is_ok(), "bench: agent connect");
  (void)agent.add_controller(std::shared_ptr<MsgTransport>(std::move(*a_conn)));
  auto x_conn =
      TcpTransport::connect(reactor, "127.0.0.1", e2term.rmr_port());
  FLEXRIC_ASSERT(x_conn.is_ok(), "bench: xapp connect");
  baseline::oran::OranXapp xapp(
      reactor, std::shared_ptr<MsgTransport>(std::move(*x_conn)),
      WireFormat::per);
  for (int i = 0; i < 300; ++i) reactor.run_once(1);

  std::optional<std::uint32_t> pong_seq;
  xapp.set_on_indication([&](const e2ap::Indication& ind) {
    auto pong = e2sm::sm_decode<e2sm::hw::Pong>(ind.message, WireFormat::per);
    if (pong) pong_seq = pong->seq;
  });
  (void)xapp.subscribe(e2sm::hw::Sm::kId,
                 e2sm::sm_encode(
                     e2sm::EventTrigger{e2sm::TriggerKind::on_event, 0},
                     WireFormat::per),
                 {{1, e2ap::ActionType::report, {}}});
  for (int i = 0; i < 200; ++i) reactor.run_once(1);

  Histogram rtt;
  for (int i = 1; i <= rounds; ++i) {
    e2sm::hw::Ping ping;
    ping.seq = static_cast<std::uint32_t>(i);
    ping.payload.assign(payload, 0x5A);
    pong_seq.reset();
    Nanos t0 = mono_now();
    (void)xapp.send_control(e2sm::hw::Sm::kId, {},
                      e2sm::sm_encode(ping, WireFormat::per));
    while (!pong_seq || *pong_seq != static_cast<std::uint32_t>(i))
      reactor.run_once(1);
    rtt.record(static_cast<double>(mono_now() - t0) / 1e3);
  }
  return rtt.quantile(0.5);
}

}  // namespace

int main() {
  banner("Fig. 9a: two-hop ping RTT, FlexRIC relay vs O-RAN RIC",
         "HW-SM ping through two hops; 100 B and 1500 B payloads");
  constexpr int kRounds = 2000;

  Table table({"system", "RTT 100B (us)", "RTT 1500B (us)"});
  table.row("FlexRIC relay (FB/FB)",
            {fmt("%.1f", flexric_two_hop_rtt_us(WireFormat::flat, 100, kRounds)),
             fmt("%.1f", flexric_two_hop_rtt_us(WireFormat::flat, 1500, kRounds))});
  table.row("FlexRIC relay (ASN/ASN)",
            {fmt("%.1f", flexric_two_hop_rtt_us(WireFormat::per, 100, kRounds)),
             fmt("%.1f", flexric_two_hop_rtt_us(WireFormat::per, 1500, kRounds))});
  table.row("O-RAN RIC (E2T + RMR + xApp)",
            {fmt("%.1f", oran_two_hop_rtt_us(100, kRounds)),
             fmt("%.1f", oran_two_hop_rtt_us(1500, kRounds))});

  note("paper: O-RAN >= 3x slower (small) / 2x (medium) than FlexRIC;");
  note("the O-RAN E2T fully decodes + re-wraps every message (double");
  note("decode), the FlexRIC relay forwards through the IR once");
  return 0;
}
