// Ablation — encode/decode micro-costs of the three wire formats.
//
// Separates the mechanisms behind Figs. 7/8: PER pays on both encode and
// decode and scales with payload size (bit-level processing); FLAT encode
// is cheap and "decode" is near-constant (header validation + in-place
// reads); PROTO sits in between. Also measures the double-encoding cost
// E2 imposes (SM payload wrapped in E2AP).
#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "bench/bench_util.hpp"
#include "e2ap/codec.hpp"
#include "e2sm/mac_sm.hpp"
#include "e2sm/serde.hpp"

using namespace flexric;

namespace {

e2sm::mac::IndicationMsg stats_msg(int ues) {
  e2sm::mac::IndicationMsg msg;
  for (int i = 0; i < ues; ++i) {
    e2sm::mac::UeStats s;
    s.rnti = static_cast<std::uint16_t>(100 + i);
    s.cqi = 15;
    s.mcs_dl = 28;
    s.prbs_dl = 25;
    s.bytes_dl = 123456;
    s.bsr = 999;
    s.phr_db = 20;
    msg.ues.push_back(s);
  }
  return msg;
}

WireFormat fmt_of(std::int64_t f) { return static_cast<WireFormat>(f); }

void BM_SmEncode(benchmark::State& state) {
  auto msg = stats_msg(static_cast<int>(state.range(1)));
  WireFormat fmt = fmt_of(state.range(0));
  for (auto _ : state)
    benchmark::DoNotOptimize(e2sm::sm_encode(msg, fmt));
  state.SetLabel(std::string(wire_format_name(fmt)) + "/" +
                 std::to_string(state.range(1)) + "ues");
}

void BM_SmDecode(benchmark::State& state) {
  WireFormat fmt = fmt_of(state.range(0));
  Buffer wire = e2sm::sm_encode(stats_msg(static_cast<int>(state.range(1))),
                                fmt);
  for (auto _ : state)
    benchmark::DoNotOptimize(
        e2sm::sm_decode<e2sm::mac::IndicationMsg>(wire, fmt));
  state.SetLabel(std::string(wire_format_name(fmt)) + "/" +
                 std::to_string(state.range(1)) + "ues");
}

/// Full E2 double encoding: SM payload + E2AP indication wrap.
void BM_DoubleEncode(benchmark::State& state) {
  WireFormat fmt = fmt_of(state.range(0));
  auto msg = stats_msg(32);
  const e2ap::Codec& codec = e2ap::codec_for(fmt);
  for (auto _ : state) {
    e2ap::Indication ind;
    ind.request = {1, 1};
    ind.ran_function_id = 142;
    ind.message = e2sm::sm_encode(msg, fmt);  // inner encoding
    benchmark::DoNotOptimize(codec.encode(e2ap::Msg{ind}));  // outer
  }
  state.SetLabel(std::string(wire_format_name(fmt)) + "/double");
}

void BM_DoubleDecode(benchmark::State& state) {
  WireFormat fmt = fmt_of(state.range(0));
  const e2ap::Codec& codec = e2ap::codec_for(fmt);
  e2ap::Indication ind;
  ind.request = {1, 1};
  ind.ran_function_id = 142;
  ind.message = e2sm::sm_encode(stats_msg(32), fmt);
  Buffer wire = *codec.encode(e2ap::Msg{ind});
  for (auto _ : state) {
    auto outer = codec.decode(wire);
    const auto& inner = std::get<e2ap::Indication>(*outer);
    benchmark::DoNotOptimize(
        e2sm::sm_decode<e2sm::mac::IndicationMsg>(inner.message, fmt));
  }
  state.SetLabel(std::string(wire_format_name(fmt)) + "/double");
}

void BM_WireSize(benchmark::State& state) {
  WireFormat fmt = fmt_of(state.range(0));
  auto msg = stats_msg(static_cast<int>(state.range(1)));
  std::size_t size = 0;
  for (auto _ : state) {
    Buffer wire = e2sm::sm_encode(msg, fmt);
    size = wire.size();
    benchmark::DoNotOptimize(wire);
  }
  state.counters["wire_bytes"] = static_cast<double>(size);
  state.SetLabel(std::string(wire_format_name(fmt)) + "/" +
                 std::to_string(state.range(1)) + "ues");
}

}  // namespace

// formats: 0 = ASN.1 (PER), 1 = FB (flat), 2 = PROTO
BENCHMARK(BM_SmEncode)->ArgsProduct({{0, 1, 2}, {1, 8, 32}});
BENCHMARK(BM_SmDecode)->ArgsProduct({{0, 1, 2}, {1, 8, 32}});
BENCHMARK(BM_DoubleEncode)->Args({0})->Args({1});
BENCHMARK(BM_DoubleDecode)->Args({0})->Args({1});
BENCHMARK(BM_WireSize)->ArgsProduct({{0, 1, 2}, {32}});

namespace {

// Console reporter that also tees each run's real time (plus any counters,
// e.g. wire_bytes) into the shared --json results file.
class JsonTeeReporter : public benchmark::ConsoleReporter {
 public:
  explicit JsonTeeReporter(bench::JsonWriter& writer) : writer_(writer) {}

  void ReportRuns(const std::vector<Run>& runs) override {
    ConsoleReporter::ReportRuns(runs);
    for (const Run& run : runs) {
      if (run.error_occurred || run.run_type != Run::RT_Iteration) continue;
      std::string name = run.benchmark_name();
      if (!run.report_label.empty()) name += "/" + run.report_label;
      writer_.add(name, run.GetAdjustedRealTime(),
                  benchmark::GetTimeUnitString(run.time_unit));
      for (const auto& [counter_name, counter] : run.counters)
        writer_.add(name + "/" + counter_name,
                    static_cast<double>(counter.value), "");
    }
  }

 private:
  bench::JsonWriter& writer_;
};

}  // namespace

// Custom BENCHMARK_MAIN(): identical console output, plus `--json <path>`
// support via the shared bench harness. The flag is consumed before
// benchmark::Initialize so google-benchmark's own argument parsing (which
// rejects unknown flags) never sees it.
int main(int argc, char** argv) {
  std::string json_path = bench::json_path_from_args(argc, argv);
  std::vector<char*> args;
  for (int i = 0; i < argc; ++i) {
    if (std::string_view(argv[i]) == "--json" && i + 1 < argc) {
      ++i;
      continue;
    }
    args.push_back(argv[i]);
  }
  int filtered_argc = static_cast<int>(args.size());
  benchmark::Initialize(&filtered_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(filtered_argc, args.data()))
    return 1;
  bench::JsonWriter json("bench_codec_micro");
  JsonTeeReporter reporter(json);
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  return json.write(json_path) ? 0 : 1;
}
