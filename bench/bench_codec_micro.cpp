// Ablation — encode/decode micro-costs of the three wire formats.
//
// Separates the mechanisms behind Figs. 7/8: PER pays on both encode and
// decode and scales with payload size (bit-level processing); FLAT encode
// is cheap and "decode" is near-constant (header validation + in-place
// reads); PROTO sits in between. Also measures the double-encoding cost
// E2 imposes (SM payload wrapped in E2AP).
#include <benchmark/benchmark.h>

#include "e2ap/codec.hpp"
#include "e2sm/mac_sm.hpp"
#include "e2sm/serde.hpp"

using namespace flexric;

namespace {

e2sm::mac::IndicationMsg stats_msg(int ues) {
  e2sm::mac::IndicationMsg msg;
  for (int i = 0; i < ues; ++i) {
    e2sm::mac::UeStats s;
    s.rnti = static_cast<std::uint16_t>(100 + i);
    s.cqi = 15;
    s.mcs_dl = 28;
    s.prbs_dl = 25;
    s.bytes_dl = 123456;
    s.bsr = 999;
    s.phr_db = 20;
    msg.ues.push_back(s);
  }
  return msg;
}

WireFormat fmt_of(std::int64_t f) { return static_cast<WireFormat>(f); }

void BM_SmEncode(benchmark::State& state) {
  auto msg = stats_msg(static_cast<int>(state.range(1)));
  WireFormat fmt = fmt_of(state.range(0));
  for (auto _ : state)
    benchmark::DoNotOptimize(e2sm::sm_encode(msg, fmt));
  state.SetLabel(std::string(wire_format_name(fmt)) + "/" +
                 std::to_string(state.range(1)) + "ues");
}

void BM_SmDecode(benchmark::State& state) {
  WireFormat fmt = fmt_of(state.range(0));
  Buffer wire = e2sm::sm_encode(stats_msg(static_cast<int>(state.range(1))),
                                fmt);
  for (auto _ : state)
    benchmark::DoNotOptimize(
        e2sm::sm_decode<e2sm::mac::IndicationMsg>(wire, fmt));
  state.SetLabel(std::string(wire_format_name(fmt)) + "/" +
                 std::to_string(state.range(1)) + "ues");
}

/// Full E2 double encoding: SM payload + E2AP indication wrap.
void BM_DoubleEncode(benchmark::State& state) {
  WireFormat fmt = fmt_of(state.range(0));
  auto msg = stats_msg(32);
  const e2ap::Codec& codec = e2ap::codec_for(fmt);
  for (auto _ : state) {
    e2ap::Indication ind;
    ind.request = {1, 1};
    ind.ran_function_id = 142;
    ind.message = e2sm::sm_encode(msg, fmt);  // inner encoding
    benchmark::DoNotOptimize(codec.encode(e2ap::Msg{ind}));  // outer
  }
  state.SetLabel(std::string(wire_format_name(fmt)) + "/double");
}

void BM_DoubleDecode(benchmark::State& state) {
  WireFormat fmt = fmt_of(state.range(0));
  const e2ap::Codec& codec = e2ap::codec_for(fmt);
  e2ap::Indication ind;
  ind.request = {1, 1};
  ind.ran_function_id = 142;
  ind.message = e2sm::sm_encode(stats_msg(32), fmt);
  Buffer wire = *codec.encode(e2ap::Msg{ind});
  for (auto _ : state) {
    auto outer = codec.decode(wire);
    const auto& inner = std::get<e2ap::Indication>(*outer);
    benchmark::DoNotOptimize(
        e2sm::sm_decode<e2sm::mac::IndicationMsg>(inner.message, fmt));
  }
  state.SetLabel(std::string(wire_format_name(fmt)) + "/double");
}

void BM_WireSize(benchmark::State& state) {
  WireFormat fmt = fmt_of(state.range(0));
  auto msg = stats_msg(static_cast<int>(state.range(1)));
  std::size_t size = 0;
  for (auto _ : state) {
    Buffer wire = e2sm::sm_encode(msg, fmt);
    size = wire.size();
    benchmark::DoNotOptimize(wire);
  }
  state.counters["wire_bytes"] = static_cast<double>(size);
  state.SetLabel(std::string(wire_format_name(fmt)) + "/" +
                 std::to_string(state.range(1)) + "ues");
}

}  // namespace

// formats: 0 = ASN.1 (PER), 1 = FB (flat), 2 = PROTO
BENCHMARK(BM_SmEncode)->ArgsProduct({{0, 1, 2}, {1, 8, 32}});
BENCHMARK(BM_SmDecode)->ArgsProduct({{0, 1, 2}, {1, 8, 32}});
BENCHMARK(BM_DoubleEncode)->Args({0})->Args({1});
BENCHMARK(BM_DoubleDecode)->Args({0})->Args({1});
BENCHMARK(BM_WireSize)->ArgsProduct({{0, 1, 2}, {32}});

BENCHMARK_MAIN();
