// Shared scenario runner for the agent-overhead benches (Figs. 6a/6b).
//
// The base station + agent run on a MEASURED thread at accelerated virtual
// time; the controller consumes the 1 ms statistics stream on an unmeasured
// thread, connected over framed TCP on loopback (the paper's agent and
// controller are separate machines — here separate threads, so the reported
// CPU is attributable to the agent side alone).
#pragma once

#include <atomic>
#include <future>

#include "agent/agent.hpp"
#include "baseline/flexran/flexran.hpp"
#include "bench/bench_util.hpp"
#include "ctrl/monitor.hpp"
#include "ran/functions.hpp"
#include "server/server.hpp"

namespace flexric::bench {

enum class AgentKind { none, flexric, flexran };

struct OverheadResult {
  double cpu_percent = 0.0;  ///< agent-thread CPU over virtual time
};

/// Run `virtual_secs` of simulated time with `num_ues` saturated UEs on the
/// given cell, exporting MAC+RLC+PDCP stats (no HARQ) every millisecond.
inline OverheadResult run_agent_scenario(AgentKind kind,
                                         const ran::CellConfig& cell,
                                         int num_ues, int virtual_secs) {
  std::atomic<bool> stop{false};
  std::promise<std::uint16_t> port_promise;
  auto port_future = port_promise.get_future();

  // ---- controller thread (unmeasured consumer) ----
  std::thread controller_thread([&] {
    Reactor reactor;
    // FlexRIC controller: server + stats iApp. FlexRAN: its controller.
    std::unique_ptr<server::E2Server> ric;
    std::shared_ptr<ctrl::MonitorIApp> monitor;
    std::unique_ptr<baseline::flexran::Controller> fxr;
    if (kind == AgentKind::flexran) {
      fxr = std::make_unique<baseline::flexran::Controller>(reactor);
      (void)fxr->listen(0);
      port_promise.set_value(fxr->port());
      bool requested = false;
      while (!stop.load(std::memory_order_relaxed)) {
        reactor.run_once(1);
        if (!requested && !fxr->rib().empty()) {
          fxr->request_stats(1);
          requested = true;
        }
      }
    } else {
      ric = std::make_unique<server::E2Server>(
          reactor, server::E2Server::Config{21, WireFormat::flat, {}});
      monitor = std::make_shared<ctrl::MonitorIApp>(
          ctrl::MonitorIApp::Config{WireFormat::flat, 1});
      ric->add_iapp(monitor);
      (void)ric->listen(0);
      port_promise.set_value(ric->port());
      while (!stop.load(std::memory_order_relaxed)) reactor.run_once(1);
    }
  });
  std::uint16_t port = port_future.get();

  // ---- agent thread (measured) ----
  Nanos cpu = run_measured_thread([&] {
    Reactor reactor;
    ran::BaseStation bs(cell);
    for (int i = 0; i < num_ues; ++i)
      (void)bs.attach_ue({static_cast<std::uint16_t>(100 + i), 1, 0, 15,
                    cell.default_mcs});
    bs.set_on_delivery([](std::uint16_t, const ran::Packet&, Nanos) {});

    std::unique_ptr<agent::E2Agent> agent;
    std::unique_ptr<ran::BsFunctionBundle> bundle;
    std::unique_ptr<baseline::flexran::Agent> fxr_agent;
    if (kind == AgentKind::flexric) {
      agent = std::make_unique<agent::E2Agent>(
          reactor,
          agent::E2Agent::Config{{1, 10, e2ap::NodeType::gnb},
                                 WireFormat::flat});
      bundle = std::make_unique<ran::BsFunctionBundle>(bs, *agent,
                                                       WireFormat::flat);
      auto conn = TcpTransport::connect(reactor, "127.0.0.1", port);
      FLEXRIC_ASSERT(conn.is_ok(), "bench: connect failed");
      (void)agent->add_controller(std::shared_ptr<MsgTransport>(std::move(*conn)));
      // Let the monitor's subscriptions land before the clock starts.
      for (int i = 0; i < 300; ++i) reactor.run_once(1);
    } else if (kind == AgentKind::flexran) {
      auto conn = TcpTransport::connect(reactor, "127.0.0.1", port);
      FLEXRIC_ASSERT(conn.is_ok(), "bench: connect failed");
      fxr_agent = std::make_unique<baseline::flexran::Agent>(
          bs, std::shared_ptr<MsgTransport>(std::move(*conn)), 10);
      for (int i = 0; i < 300; ++i) reactor.run_once(1);
    }

    const Nanos duration = static_cast<Nanos>(virtual_secs) * kSecond;
    Nanos now = 0;
    ran::Packet pkt;
    pkt.size_bytes = 1400;
    while (now < duration) {
      now += kMilli;
      // Moderate saturating downlink per UE.
      for (int i = 0; i < num_ues; ++i)
        bs.deliver_downlink(static_cast<std::uint16_t>(100 + i), 1, pkt);
      bs.tick(now);
      if (bundle) bundle->on_tti(now);
      if (fxr_agent) fxr_agent->on_tti(now);
      reactor.run_once(0);
    }
  });

  stop = true;
  controller_thread.join();

  OverheadResult out;
  out.cpu_percent =
      cpu_percent(cpu, static_cast<Nanos>(virtual_secs) * kSecond);
  return out;
}

}  // namespace flexric::bench
