// Shared harness utilities for the paper-reproduction benches.
//
// Each bench binary regenerates one table/figure of the evaluation and
// prints the series in paper shape next to the paper's reported values
// (where absolute numbers are hardware-bound, EXPERIMENTS.md records the
// expected *shape*). CPU is measured per thread: the component under test
// runs on its own thread and reports thread-CPU over *virtual* duration,
// i.e. the CPU share it would consume at real-time pacing.
#pragma once

#include <pthread.h>

#include <cstdio>
#include <functional>
#include <string>
#include <string_view>
#include <thread>
#include <utility>
#include <vector>

#include "common/clock.hpp"
#include "common/metrics.hpp"

namespace flexric::bench {

/// Run `body` on a dedicated thread; returns the thread CPU time it burned.
inline Nanos run_measured_thread(const std::function<void()>& body) {
  Nanos cpu = 0;
  std::thread t([&] {
    Nanos start = thread_cpu_now();
    body();
    cpu = thread_cpu_now() - start;
  });
  t.join();
  return cpu;
}

/// CPU share (%) a component would use at real-time pacing: thread CPU
/// consumed for `virtual_ns` of simulated time.
inline double cpu_percent(Nanos cpu_ns, Nanos virtual_ns) {
  return virtual_ns > 0
             ? 100.0 * static_cast<double>(cpu_ns) /
                   static_cast<double>(virtual_ns)
             : 0.0;
}

/// Simple aligned table printer for bench output.
class Table {
 public:
  explicit Table(std::vector<std::string> headers, int col_width = 14)
      : width_(col_width) {
    std::printf("  %-34s", headers.empty() ? "" : headers[0].c_str());
    for (std::size_t i = 1; i < headers.size(); ++i)
      std::printf(" %*s", width_, headers[i].c_str());
    std::printf("\n");
  }
  void row(const std::string& label, const std::vector<std::string>& cells) {
    std::printf("  %-34s", label.c_str());
    for (const auto& c : cells) std::printf(" %*s", width_, c.c_str());
    std::printf("\n");
  }

 private:
  int width_;
};

inline std::string fmt(const char* f, double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, f, v);
  return buf;
}

inline void banner(const char* title, const char* paper_ref) {
  std::printf("\n=== %s ===\n", title);
  std::printf("reproduces: %s\n\n", paper_ref);
}

inline void note(const char* text) { std::printf("  note: %s\n", text); }

/// Path following a `--json` flag, or "" when the flag is absent. Benches
/// keep their human-readable table on stdout either way; the flag only adds
/// a machine-readable copy of the headline scalars.
inline std::string json_path_from_args(int argc, char** argv) {
  for (int i = 1; i + 1 < argc; ++i)
    if (std::string_view(argv[i]) == "--json") return argv[i + 1];
  return {};
}

/// Machine-readable results sink. Collects (name, value, unit) scalars while
/// a bench runs and serializes them as one flat JSON document, so successive
/// commits can be diffed numerically (seeded BENCH_*.json files in-repo).
class JsonWriter {
 public:
  explicit JsonWriter(std::string bench_name) : bench_(std::move(bench_name)) {}

  void add(const std::string& name, double value, const std::string& unit) {
    entries_.push_back({name, value, unit});
  }

  /// Writes the collected results; no-op (success) when `path` is empty so
  /// callers can pass json_path_from_args() unconditionally.
  bool write(const std::string& path) const {
    if (path.empty()) return true;
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "error: cannot open %s for writing\n", path.c_str());
      return false;
    }
    std::fprintf(f, "{\n  \"bench\": \"%s\",\n  \"results\": [\n", bench_.c_str());
    for (std::size_t i = 0; i < entries_.size(); ++i) {
      const auto& e = entries_[i];
      std::fprintf(f, "    {\"name\": \"%s\", \"value\": %.9g, \"unit\": \"%s\"}%s\n",
                   e.name.c_str(), e.value, e.unit.c_str(),
                   i + 1 < entries_.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("  json: %zu results -> %s\n", entries_.size(), path.c_str());
    return true;
  }

 private:
  struct Entry {
    std::string name;
    double value;
    std::string unit;
  };

  std::string bench_;
  std::vector<Entry> entries_;
};

}  // namespace flexric::bench
