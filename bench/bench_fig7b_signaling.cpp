// Fig. 7b — Signaling overhead (Mbps) of the E2SM-HW ping at 1 kHz.
//
// Paper setup: one ping per 1 ms (4G TTI); signaling rate by encoding
// combination. Paper values: 100 B payloads — ASN/ASN 1.2, ASN/FB 1.8,
// FB/ASN 1.4, FB/FB 2.0, FlexRAN 0.94 Mbps; 1500 B payloads — 12.4 / 13.0 /
// 12.6 / 13.2 / 12.2 Mbps (the FB overhead almost vanishes for large
// payloads; FlexRAN smallest since it has no double encoding).
#include "bench/hw_ping.hpp"

#include "baseline/flexran/flexran.hpp"

using namespace flexric;
using namespace flexric::bench;

namespace {

/// Mean on-wire bytes of one FlexRAN echo exchange (both directions,
/// including frame headers).
double flexran_exchange_bytes(std::size_t payload_bytes) {
  baseline::flexran::Echo echo;
  echo.seq = 1;
  echo.sent_ns = 123456789;
  echo.payload.assign(payload_bytes, 0x5A);
  Buffer body = e2sm::sm_encode(echo, WireFormat::proto);
  // kind byte + body, framed (6 B), in both directions.
  double one_way = 1.0 + static_cast<double>(body.size()) + 6.0;
  return 2.0 * one_way;
}

}  // namespace

int main() {
  banner("Fig. 7b: signaling overhead at one ping per millisecond",
         "generated signaling rate (Mbps) by encoding combination");
  constexpr int kRounds = 500;
  constexpr double kPingsPerSecond = 1000.0;  // 1 ms interval

  struct Combo {
    const char* name;
    WireFormat e2ap, sm;
  };
  Combo combos[] = {
      {"ASN/ASN", WireFormat::per, WireFormat::per},
      {"ASN/FB", WireFormat::per, WireFormat::flat},
      {"FB/ASN", WireFormat::flat, WireFormat::per},
      {"FB/FB", WireFormat::flat, WireFormat::flat},
  };

  Table table({"E2AP/E2SM", "100B (Mbps)", "1500B (Mbps)"});
  for (const Combo& c : combos) {
    HwPingRig rig_small(c.e2ap, c.sm);
    auto [rtt100, wire100] = rig_small.run(kRounds, 100);
    HwPingRig rig_big(c.e2ap, c.sm);
    auto [rtt1500, wire1500] = rig_big.run(kRounds, 1500);
    (void)rtt100;
    (void)rtt1500;
    table.row(c.name,
              {fmt("%.2f", wire100 * kPingsPerSecond * 8 / 1e6),
               fmt("%.2f", wire1500 * kPingsPerSecond * 8 / 1e6)});
  }
  table.row("FlexRAN",
            {fmt("%.2f", flexran_exchange_bytes(100) * kPingsPerSecond * 8 / 1e6),
             fmt("%.2f",
                 flexran_exchange_bytes(1500) * kPingsPerSecond * 8 / 1e6)});

  note("paper 100 B: ASN/ASN 1.2, ASN/FB 1.8, FB/ASN 1.4, FB/FB 2.0,");
  note("             FlexRAN 0.94 Mbps (FB costs ~67 % more when small)");
  note("paper 1500B: 12.4 / 13.0 / 12.6 / 13.2 / 12.2 Mbps (gap vanishes)");
  return 0;
}
