// Table 2 — Deployment footprint of the controller components.
//
// The paper compares Docker image sizes: FlexRIC + HW-E2SM 76 MB, FlexRIC +
// stats SMs 94 MB, against the O-RAN RIC platform at 2469 MB plus 166-170 MB
// per xApp — the ultra-lean argument. Containers are out of scope for a
// native build (DESIGN.md substitution): the closest native analogue is the
// on-disk size of each statically-described deployment (binary + linked
// libraries) and its startup RSS — reproduced here for every example and
// bench binary of this repository, plus the in-repo component totals.
#include <sys/stat.h>

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.hpp"
#include "common/clock.hpp"

using namespace flexric;
using namespace flexric::bench;

namespace {

double file_mb(const std::string& path) {
  struct stat st{};
  if (::stat(path.c_str(), &st) != 0) return -1.0;
  return static_cast<double>(st.st_size) / 1e6;
}

std::string repo_dir_of(const char* argv0) {
  std::string s(argv0);
  auto slash = s.rfind('/');
  std::string bench_dir = slash == std::string::npos ? "." : s.substr(0, slash);
  return bench_dir + "/..";
}

}  // namespace

int main(int, char** argv) {
  banner("Table 2: deployment footprint",
         "Docker image sizes (paper) vs native binary sizes + startup RSS");

  std::string build = repo_dir_of(argv[0]);
  struct Component {
    const char* label;
    std::string path;
  };
  std::vector<Component> components = {
      {"FlexRIC + HW-E2SM (ping bench)",
       build + "/bench/bench_fig7a_encoding_rtt"},
      {"FlexRIC + stats E2SMs (quickstart)", build + "/examples/quickstart"},
      {"FlexRIC slicing controller", build + "/examples/slicing_demo"},
      {"FlexRIC TC controller", build + "/examples/traffic_control_demo"},
      {"FlexRIC virtualization controller", build + "/examples/recursive_demo"},
      {"O-RAN-RIC-like platform (in bench)",
       build + "/bench/bench_fig9b_oran_cpu_mem"},
  };

  Table table({"component", "binary MB"});
  bool all_found = true;
  for (const auto& c : components) {
    double mb = file_mb(c.path);
    all_found &= mb >= 0;
    table.row(c.label, {mb < 0 ? "missing" : fmt("%.1f", mb)});
  }
  std::printf("\n  startup RSS of this process: %.1f MB\n",
              static_cast<double>(rss_bytes()) / 1e6);

  note("paper (Docker images): FlexRIC+HW 76 MB, FlexRIC+stats 94 MB,");
  note("      O-RAN RIC platform 2469 MB, HW xApp 170 MB, stats xApp 166 MB");
  note("shape under test: a complete FlexRIC controller deployment fits in");
  note("tens of MB (here: a few MB native + <10 MB RSS), while the O-RAN");
  note("platform needs 15 containers / 2.5 GB for the same E2 service");
  return all_found ? 0 : 1;
}
