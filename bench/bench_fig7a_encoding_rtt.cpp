// Fig. 7a — Round-trip time of the E2SM-HW ping by encoding scheme.
//
// Paper setup: iApp pings the agent once per second with 100 B / 1500 B
// payloads; encodings (E2AP/E2SM) in {ASN.1, FB}^2 plus FlexRAN's custom
// protocol. Paper result: all-FB cuts mean RTT by ~25 % (small) and ~66 %
// (medium) vs all-ASN.1; the mixed ASN.1-E2AP/FB-E2SM combination is the
// worst (the larger FB inner message must be ASN.1-encoded again); FlexRAN
// sits between FB and ASN.1.
#include "bench/hw_ping.hpp"

#include "baseline/flexran/flexran.hpp"

using namespace flexric;
using namespace flexric::bench;

namespace {

double flexran_rtt_us(std::size_t payload_bytes, int rounds) {
  Reactor reactor;
  ran::CellConfig cell{ran::Rat::lte, 1, 25, kMilli, 28, false};
  ran::BaseStation bs(cell);
  baseline::flexran::Controller controller(reactor);
  FLEXRIC_ASSERT(controller.listen(0).is_ok(), "bench: listen failed");
  auto conn = TcpTransport::connect(reactor, "127.0.0.1", controller.port());
  FLEXRIC_ASSERT(conn.is_ok(), "bench: connect failed");
  baseline::flexran::Agent agent(
      bs, std::shared_ptr<MsgTransport>(std::move(*conn)), 7);
  for (int i = 0; i < 200; ++i) reactor.run_once(1);

  Histogram rtt;
  Buffer payload(payload_bytes, 0x5A);
  for (int i = 0; i < rounds; ++i) {
    std::optional<double> us;
    Nanos t0 = mono_now();
    (void)controller.send_echo(static_cast<std::uint32_t>(i), payload,
                         [&](const baseline::flexran::Echo&, Nanos rx) {
                           us = static_cast<double>(rx - t0) / 1e3;
                         });
    while (!us) reactor.run_once(1);
    rtt.record(*us);
  }
  return rtt.quantile(0.5);
}

}  // namespace

int main() {
  banner("Fig. 7a: E2SM-HW ping round-trip time by encoding",
         "E2AP/E2SM in {ASN,FB}^2 + FlexRAN, 100 B and 1500 B payloads");
  constexpr int kRounds = 3000;

  struct Combo {
    const char* name;
    WireFormat e2ap, sm;
  };
  Combo combos[] = {
      {"ASN/ASN", WireFormat::per, WireFormat::per},
      {"ASN/FB", WireFormat::per, WireFormat::flat},
      {"FB/ASN", WireFormat::flat, WireFormat::per},
      {"FB/FB", WireFormat::flat, WireFormat::flat},
  };

  Table table({"E2AP/E2SM", "RTT 100B (us)", "RTT 1500B (us)"});
  for (const Combo& c : combos) {
    HwPingRig rig_small(c.e2ap, c.sm);
    auto [rtt100, bytes100] = rig_small.run(kRounds, 100);
    HwPingRig rig_big(c.e2ap, c.sm);
    auto [rtt1500, bytes1500] = rig_big.run(kRounds, 1500);
    (void)bytes100;
    (void)bytes1500;
    table.row(c.name, {fmt("%.1f", rtt100), fmt("%.1f", rtt1500)});
  }
  table.row("FlexRAN", {fmt("%.1f", flexran_rtt_us(100, kRounds)),
                        fmt("%.1f", flexran_rtt_us(1500, kRounds))});

  note("paper: FB/FB fastest (~-25 % small, ~-66 % medium vs ASN/ASN);");
  note("       ASN-E2AP over FB-E2SM worst; FlexRAN between FB and ASN");
  note("absolute values differ (paper: 2 hosts on a campus network;");
  note("here: loopback), the ordering is the reproduced result");
  return 0;
}
