// Shard-supervision bench (DESIGN.md §15): measure MTTR for a watchdog-
// driven shard recovery — detection (fault injection -> quarantine) and
// restoration (quarantine -> first indication redelivered through the
// rebuilt shard) — across 12 seeds and 1/2/4 shards, for both fault
// shapes (wedge: loop stops turning; crash: links reset too).
//
// Everything runs on the supervised ShardWorld harness from the test tree:
// one thread pumps every shard loop off a shared VirtualClock, so every
// number below is bit-deterministic and the seeded BENCH_supervise.json can
// be diffed numerically across commits. Detection is bounded by
// quarantine_after + one watchdog period; restoration adds the agent's
// reconnect backoff plus subscription replay.
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.hpp"
#include "tests/shard_world.hpp"

namespace flexric::bench {
namespace {

using test::ShardFault;
using test::ShardWorld;

server::ShardedConfig sup_cfg() {
  server::ShardedConfig cfg;
  cfg.supervise.enabled = true;
  cfg.supervise.heartbeat_period = 10 * kMilli;
  cfg.supervise.degraded_after = 50 * kMilli;
  cfg.supervise.quarantine_after = 200 * kMilli;
  cfg.supervise.watchdog_period = 20 * kMilli;
  return cfg;
}

ResilienceConfig fast_rc() {
  ResilienceConfig rc;
  rc.backoff_base = 20 * kMilli;
  rc.backoff_cap = 200 * kMilli;
  rc.heartbeat_period = 20 * kMilli;
  rc.heartbeat_miss_threshold = 3;
  rc.setup_timeout = 200 * kMilli;
  return rc;
}

struct RecoveryRun {
  Nanos detect = 0;   ///< fault injection -> quarantine transition
  Nanos restore = 0;  ///< quarantine -> first redelivered indication (MTTR)
};

RecoveryRun run_one(std::uint32_t shards, std::uint64_t seed, bool crash) {
  ShardWorld w(shards, sup_cfg(), /*supervised=*/true);
  w.agent_rc = fast_rc();
  w.enable_fanout();
  std::vector<ShardWorld::Node*> agents;
  for (std::uint32_t s = 0; s < shards; ++s) {
    agents.push_back(&w.add_agent(s, 0, e2ap::NodeType::gnb, {}, seed));
    FLEXRIC_ASSERT(w.converge(*agents.back()), "bench: agent never converged");
  }
  w.advance(100 * kMilli);  // fan-out subscriptions land everywhere

  const std::uint32_t victim = static_cast<std::uint32_t>(seed) % shards;
  ShardFault f;
  f.kind = crash ? ShardFault::Kind::crash : ShardFault::Kind::wedge;
  f.shard = victim;
  w.inject(f);  // settles first: injection at a quiescent quantum boundary
  const Nanos fault_at = w.clock.now();

  // Keep the victim's RAN function emitting through the outage so the first
  // post-recovery delivery is observable the moment the path heals.
  for (Nanos t = 0; w.first_redelivery_at == 0 && t < 10 * kSecond;
       t += 20 * kMilli) {
    agents[victim]->fn->emit(agents[victim]->ctrl);
    w.advance(20 * kMilli);
  }
  FLEXRIC_ASSERT(w.first_redelivery_at != 0, "bench: recovery never healed");
  FLEXRIC_ASSERT(w.ric.supervisor().stats().quarantines == 1,
                 "bench: expected exactly one quarantine");
  FLEXRIC_ASSERT(w.ric.supervisor().stats().restarts == 1,
                 "bench: expected exactly one restart");

  RecoveryRun r;
  r.detect = w.detect_at - fault_at;
  r.restore = w.first_redelivery_at - w.detect_at;
  return r;
}

double ms(Nanos n) { return static_cast<double>(n) / 1e6; }

struct Series {
  double detect_p50 = 0, detect_max = 0;
  double mttr_p50 = 0, mttr_max = 0;
};

Series summarize(std::vector<RecoveryRun>& runs) {
  std::vector<double> d, m;
  for (const RecoveryRun& r : runs) {
    d.push_back(ms(r.detect));
    m.push_back(ms(r.restore));
  }
  std::sort(d.begin(), d.end());
  std::sort(m.begin(), m.end());
  Series s;
  s.detect_p50 = d[(d.size() - 1) / 2];
  s.detect_max = d.back();
  s.mttr_p50 = m[(m.size() - 1) / 2];
  s.mttr_max = m.back();
  return s;
}

}  // namespace
}  // namespace flexric::bench

int main(int argc, char** argv) {
  using namespace flexric;
  using namespace flexric::bench;

  banner("Shard supervision: detection latency and MTTR",
         "DESIGN.md §15 / EXPERIMENTS.md (kill-a-shard recipe); companion "
         "to tests/test_supervision.cpp");
  note("virtual-clock replay, 12 seeds per cell: every number is "
       "deterministic");
  note("detect = fault -> quarantine; mttr = quarantine -> first "
       "redelivered indication");

  JsonWriter json("supervise_mttr");
  Table table({"cell (shards x fault)", "detect p50 ms", "detect max ms",
               "mttr p50 ms", "mttr max ms"});
  for (std::uint32_t shards : {1u, 2u, 4u}) {
    for (bool crash : {false, true}) {
      std::vector<RecoveryRun> runs;
      for (std::uint64_t seed = 1; seed <= 12; ++seed)
        runs.push_back(run_one(shards, seed, crash));
      Series s = summarize(runs);
      const std::string label =
          std::to_string(shards) + (crash ? " x crash" : " x wedge");
      table.row(label,
                {fmt("%.1f", s.detect_p50), fmt("%.1f", s.detect_max),
                 fmt("%.1f", s.mttr_p50), fmt("%.1f", s.mttr_max)});
      const std::string p = "s" + std::to_string(shards) +
                            (crash ? ".crash." : ".wedge.");
      json.add(p + "detect_p50", s.detect_p50, "ms");
      json.add(p + "detect_max", s.detect_max, "ms");
      json.add(p + "mttr_p50", s.mttr_p50, "ms");
      json.add(p + "mttr_max", s.mttr_max, "ms");
    }
  }
  note("detection is bounded by quarantine_after (200ms) + one watchdog "
       "period (20ms);");
  note("mttr adds reconnect backoff + E2 Setup replay + subscription "
       "re-arm on the rebuilt shard");

  return json.write(json_path_from_args(argc, argv)) ? 0 : 1;
}
