// Shared HW-SM ping harness for the encoding benches (Figs. 7a/7b, 9a).
//
// Builds agent + controller over framed TCP on loopback with independently
// selectable E2AP and E2SM encodings, and runs synchronous ping/pong rounds
// measuring RTT and on-wire bytes.
#pragma once

#include <optional>

#include "agent/agent.hpp"
#include "bench/bench_util.hpp"
#include "e2sm/common.hpp"
#include "e2sm/hw_sm.hpp"
#include "ran/functions.hpp"
#include "server/server.hpp"

namespace flexric::bench {

class HwPingRig {
 public:
  HwPingRig(WireFormat e2ap_fmt, WireFormat sm_fmt)
      : sm_fmt_(sm_fmt),
        server_(reactor_, {21, e2ap_fmt, {}}),
        agent_(reactor_, {{1, 10, e2ap::NodeType::gnb}, e2ap_fmt}) {
    (void)agent_.register_function(std::make_shared<ran::HwFunction>(sm_fmt));
    FLEXRIC_ASSERT(server_.listen(0).is_ok(), "bench: listen failed");
    auto conn = TcpTransport::connect(reactor_, "127.0.0.1", server_.port());
    FLEXRIC_ASSERT(conn.is_ok(), "bench: connect failed");
    (void)agent_.add_controller(std::shared_ptr<MsgTransport>(std::move(*conn)));
    wait([this] { return server_.ran_db().num_agents() == 1; });

    server::SubCallbacks cbs;
    cbs.on_indication = [this](const e2ap::Indication& ind) {
      auto pong = e2sm::sm_decode<e2sm::hw::Pong>(ind.message, sm_fmt_);
      if (pong) last_pong_ = std::move(*pong);
    };
    auto h = server_.subscribe(
        agent_id(), e2sm::hw::Sm::kId,
        e2sm::sm_encode(e2sm::EventTrigger{e2sm::TriggerKind::on_event, 0},
                        sm_fmt_),
        {{1, e2ap::ActionType::report, {}}}, cbs);
    FLEXRIC_ASSERT(h.is_ok(), "bench: subscribe failed");
    for (int i = 0; i < 100; ++i) reactor_.run_once(1);
  }

  /// One synchronous ping; returns RTT in microseconds.
  double ping_us(std::uint32_t seq, std::size_t payload_bytes) {
    e2sm::hw::Ping ping;
    ping.seq = seq;
    ping.payload.assign(payload_bytes, 0x5A);
    Nanos t0 = mono_now();
    ping.sent_ns = static_cast<std::uint64_t>(t0);
    last_pong_.reset();
    (void)server_.send_control(agent_id(), e2sm::hw::Sm::kId, {},
                         e2sm::sm_encode(ping, sm_fmt_), {},
                         /*ack_requested=*/false);
    while (!last_pong_ || last_pong_->seq != seq) reactor_.run_once(1);
    return static_cast<double>(mono_now() - t0) / 1e3;
  }

  /// Run `rounds` pings; returns mean RTT (us) and mean on-wire bytes per
  /// exchange (both directions, incl. the 6 B transport frame headers).
  std::pair<double, double> run(int rounds, std::size_t payload_bytes) {
    Histogram rtt;
    std::uint64_t bytes0 = agent_.stats().bytes_rx + agent_.stats().bytes_tx;
    std::uint64_t msgs0 = agent_.stats().msgs_rx + agent_.stats().msgs_tx;
    for (int i = 0; i < rounds; ++i)
      rtt.record(ping_us(static_cast<std::uint32_t>(i + 1), payload_bytes));
    std::uint64_t bytes = agent_.stats().bytes_rx + agent_.stats().bytes_tx -
                          bytes0;
    std::uint64_t msgs =
        agent_.stats().msgs_rx + agent_.stats().msgs_tx - msgs0;
    double wire_per_exchange =
        (static_cast<double>(bytes) + 6.0 * static_cast<double>(msgs)) /
        rounds;
    return {rtt.quantile(0.5), wire_per_exchange};
  }

 private:
  server::AgentId agent_id() {
    return server_.ran_db().agents().front();
  }
  template <typename F>
  void wait(F&& pred) {
    for (int i = 0; i < 5000 && !pred(); ++i) reactor_.run_once(1);
    FLEXRIC_ASSERT(pred(), "bench: condition not reached");
  }

  Reactor reactor_;
  WireFormat sm_fmt_;
  server::E2Server server_;
  agent::E2Agent agent_;
  std::optional<e2sm::hw::Pong> last_pong_;
};

}  // namespace flexric::bench
