// Fig. 8a — Controller CPU and memory: FlexRIC vs FlexRAN.
//
// Paper setup: the FlexRIC controller (server library + statistics iApp
// saving to an in-memory structure, FB encoding) vs FlexRAN (Protobuf +
// polling RIB) on a 12-core i7, agent-to-controller direction only.
// Paper result: FlexRIC uses ~1/10 the CPU (0.18 % vs 1.88 %) and about a
// third of the memory (124 MB vs 375 MB) — the CPU gap from FB-vs-Protobuf
// decode + event-driven-vs-polling, the memory gap from FlexRAN's less
// efficient internal data organization (deep report history).
#include "bench/controller_load.hpp"

using namespace flexric;
using namespace flexric::bench;

int main() {
  banner("Fig. 8a: controller CPU and memory, FlexRIC vs FlexRAN",
         "stats iApp (event-driven, FB) vs FlexRAN RIB (polling, Protobuf)");
  constexpr int kAgents = 4;
  constexpr int kUes = 16;
  constexpr int kVirtualSecs = 10;

  ControllerLoad flexric = run_controller_load(ControllerKind::flexric_fb,
                                               kAgents, kUes, kVirtualSecs);
  ControllerLoad flexran = run_controller_load(ControllerKind::flexran,
                                               kAgents, kUes, kVirtualSecs);

  Table table({"controller", "CPU %", "retained KB", "indications"});
  table.row("FlexRIC (FB, event-driven)",
            {fmt("%.2f", flexric.cpu_percent),
             fmt("%.1f", static_cast<double>(flexric.retained_bytes) / 1024),
             fmt("%.0f", static_cast<double>(flexric.indications))});
  table.row("FlexRAN (Protobuf, polling)",
            {fmt("%.2f", flexran.cpu_percent),
             fmt("%.1f", static_cast<double>(flexran.retained_bytes) / 1024),
             fmt("%.0f", static_cast<double>(flexran.indications))});

  std::printf("\n  CPU ratio (FlexRAN / FlexRIC):      %.1fx\n",
              flexran.cpu_percent / std::max(flexric.cpu_percent, 1e-6));
  std::printf("  memory ratio (FlexRAN / FlexRIC):   %.1fx\n",
              static_cast<double>(flexran.retained_bytes) /
                  std::max<double>(1.0, static_cast<double>(
                                            flexric.retained_bytes)));
  note("paper: CPU 1.88 % vs 0.18 % (10x); memory 375 MB vs 124 MB (3x)");
  note("memory here is the controllers' retained state (latest-value DB vs");
  note("RIB history); absolute MB differ without the OAI software stack");
  return 0;
}
