// Fig. 15 — Recursive slicing: dedicated vs shared infrastructure.
//
// Paper setup: operators A and B, two UEs each, 4G/LTE. (a) dedicated: two
// eNBs with 25 PRBs (5 MHz) each, one slicing controller per operator.
// (b) shared: one eNB with 50 PRBs (10 MHz); the virtualization controller
// connects both operators' slicing controllers at 50 % SLA each.
// Timeline: at ~8 s and ~11 s operator A configures sub-slices (66 %, 33 %)
// and pins UE 1/UE 2 to them — with no impact on operator B (isolation).
// From ~30 s operator B's UEs have no traffic: in the shared case A's
// sub-slices absorb B's half (multiplexing gain, up to 100 %); dedicated
// infrastructure wastes it. Dashed line = max throughput of one dedicated
// eNB (~17-20 Mbps).
#include "agent/agent.hpp"
#include "bench/bench_util.hpp"
#include "ctrl/slicing.hpp"
#include "ctrl/virt.hpp"
#include "ran/functions.hpp"
#include "server/server.hpp"

using namespace flexric;
using namespace flexric::bench;

namespace {

constexpr WireFormat kFmt = WireFormat::flat;
constexpr std::uint32_t kPlmnA = 100, kPlmnB = 200;
constexpr int kSeconds = 50;
constexpr int kReportEvery = 5;

struct Series {
  // [second][ue index 0..3] throughput in Mbps; UEs 1,2 = op A; 3,4 = op B.
  std::vector<std::array<double, 4>> per_second;
};

e2sm::slice::CtrlMsg sub_slices_66_33() {
  e2sm::slice::CtrlMsg msg;
  msg.kind = e2sm::slice::CtrlKind::add_mod;
  msg.algo = e2sm::slice::Algo::nvs;
  e2sm::slice::SliceConf s1, s2;
  s1.id = 1;
  s1.label = "gold";
  s1.nvs = {e2sm::slice::NvsKind::capacity, 0.66, 0, 0};
  s2.id = 2;
  s2.label = "silver";
  s2.nvs = {e2sm::slice::NvsKind::capacity, 0.33, 0, 0};
  msg.slices = {s1, s2};
  return msg;
}

e2sm::slice::CtrlMsg assoc(std::uint16_t rnti, std::uint32_t slice) {
  e2sm::slice::CtrlMsg msg;
  msg.kind = e2sm::slice::CtrlKind::assoc_ue;
  msg.assoc = {{rnti, slice}};
  return msg;
}

/// Drive one scenario for kSeconds; `configure_a(second)` fires operator
/// A's reconfigurations; op B traffic stops at t=30 s.
template <typename TickFn, typename ThpFn, typename CfgFn>
Series run_timeline(TickFn&& tick, ThpFn&& thp, CfgFn&& configure_a) {
  Series out;
  Nanos now = 0;
  for (int sec = 0; sec < kSeconds; ++sec) {
    configure_a(sec);
    bool b_active = sec < 30;
    for (int t = 0; t < 1000; ++t) {
      now += kMilli;
      tick(now, b_active);
    }
    out.per_second.push_back(
        {thp(1), thp(2), thp(3), thp(4)});
  }
  return out;
}

// --------------------------- dedicated -----------------------------------

Series run_dedicated() {
  Reactor reactor;
  ran::CellConfig cell{ran::Rat::lte, 1, 25, kMilli, 28, false};
  ran::BaseStation bs_a(cell), bs_b(cell);
  agent::E2Agent agent_a(reactor, {{kPlmnA, 1, e2ap::NodeType::enb}, kFmt});
  agent::E2Agent agent_b(reactor, {{kPlmnB, 2, e2ap::NodeType::enb}, kFmt});
  ran::BsFunctionBundle fns_a(bs_a, agent_a, kFmt);
  ran::BsFunctionBundle fns_b(bs_b, agent_b, kFmt);
  server::E2Server ctrl_a(reactor, {101, kFmt, {}}), ctrl_b(reactor, {102, kFmt, {}});
  auto slicing_a =
      std::make_shared<ctrl::SlicingIApp>(ctrl::SlicingIApp::Config{kFmt, 100});
  auto slicing_b =
      std::make_shared<ctrl::SlicingIApp>(ctrl::SlicingIApp::Config{kFmt, 100});
  ctrl_a.add_iapp(slicing_a);
  ctrl_b.add_iapp(slicing_b);
  auto [aa, sa] = LocalTransport::make_pair(reactor);
  ctrl_a.attach(sa);
  (void)agent_a.add_controller(aa);
  auto [ab, sb] = LocalTransport::make_pair(reactor);
  ctrl_b.attach(sb);
  (void)agent_b.add_controller(ab);
  for (int i = 0; i < 80; ++i) reactor.run_once(0);

  (void)bs_a.attach_ue({1, kPlmnA, 0, 15, 28});
  (void)bs_a.attach_ue({2, kPlmnA, 0, 15, 28});
  (void)bs_b.attach_ue({3, kPlmnB, 0, 15, 28});
  (void)bs_b.attach_ue({4, kPlmnB, 0, 15, 28});
  for (int i = 0; i < 80; ++i) reactor.run_once(0);

  auto tick = [&](Nanos now, bool b_active) {
    ran::Packet p;
    p.size_bytes = 1400;
    for (std::uint16_t rnti : {1, 2}) {
      bs_a.deliver_downlink(rnti, 1, p);
      bs_a.deliver_downlink(rnti, 1, p);
    }
    if (b_active)
      for (std::uint16_t rnti : {3, 4}) {
        bs_b.deliver_downlink(rnti, 1, p);
        bs_b.deliver_downlink(rnti, 1, p);
      }
    bs_a.tick(now);
    bs_b.tick(now);
    fns_a.on_tti(now);
    fns_b.on_tti(now);
    reactor.run_once(0);
  };
  auto thp = [&](std::uint16_t rnti) {
    ran::BaseStation& bs = rnti <= 2 ? bs_a : bs_b;
    return bs.ue_throughput_mbps(rnti, kSecond, true);
  };
  auto configure_a = [&](int sec) {
    if (sec == 8) {
      (void)slicing_a->configure(*slicing_a->first_agent(), sub_slices_66_33());
      for (int i = 0; i < 80; ++i) reactor.run_once(0);
      (void)slicing_a->configure(*slicing_a->first_agent(), assoc(1, 1));
      for (int i = 0; i < 80; ++i) reactor.run_once(0);
    }
    if (sec == 11) {
      (void)slicing_a->configure(*slicing_a->first_agent(), assoc(2, 2));
      for (int i = 0; i < 80; ++i) reactor.run_once(0);
    }
  };
  return run_timeline(tick, thp, configure_a);
}

// ----------------------------- shared -------------------------------------

Series run_shared() {
  Reactor reactor;
  ran::CellConfig cell{ran::Rat::lte, 1, 50, kMilli, 28, false};
  ran::BaseStation bs(cell);
  agent::E2Agent agent(reactor, {{999, 1, e2ap::NodeType::enb}, kFmt});
  ran::BsFunctionBundle fns(bs, agent, kFmt);
  ctrl::VirtController virt(reactor, {kFmt, kFmt},
                            {{"opA", kPlmnA, 0.5, 10},
                             {"opB", kPlmnB, 0.5, 20}});
  auto [a_side, s_side] = LocalTransport::make_pair(reactor);
  virt.southbound().attach(s_side);
  (void)agent.add_controller(a_side);
  for (int i = 0; i < 80; ++i) reactor.run_once(0);

  server::E2Server ctrl_a(reactor, {101, kFmt, {}}), ctrl_b(reactor, {102, kFmt, {}});
  auto slicing_a =
      std::make_shared<ctrl::SlicingIApp>(ctrl::SlicingIApp::Config{kFmt, 100});
  auto slicing_b =
      std::make_shared<ctrl::SlicingIApp>(ctrl::SlicingIApp::Config{kFmt, 100});
  ctrl_a.add_iapp(slicing_a);
  ctrl_b.add_iapp(slicing_b);
  auto [na, ta] = LocalTransport::make_pair(reactor);
  ctrl_a.attach(ta);
  (void)virt.connect_tenant(0, na);
  auto [nb, tb] = LocalTransport::make_pair(reactor);
  ctrl_b.attach(tb);
  (void)virt.connect_tenant(1, nb);
  for (int i = 0; i < 80; ++i) reactor.run_once(0);

  for (std::uint16_t rnti : {1, 2}) (void)bs.attach_ue({rnti, kPlmnA, 0, 15, 28});
  for (std::uint16_t rnti : {3, 4}) (void)bs.attach_ue({rnti, kPlmnB, 0, 15, 28});
  for (int i = 0; i < 80; ++i) reactor.run_once(0);

  auto tick = [&](Nanos now, bool b_active) {
    ran::Packet p;
    p.size_bytes = 1400;
    for (std::uint16_t rnti : {1, 2}) {
      bs.deliver_downlink(rnti, 1, p);
      bs.deliver_downlink(rnti, 1, p);
    }
    if (b_active)
      for (std::uint16_t rnti : {3, 4}) {
        bs.deliver_downlink(rnti, 1, p);
        bs.deliver_downlink(rnti, 1, p);
      }
    bs.tick(now);
    fns.on_tti(now);
    reactor.run_once(0);
  };
  auto thp = [&](std::uint16_t rnti) {
    return bs.ue_throughput_mbps(rnti, kSecond, true);
  };
  auto configure_a = [&](int sec) {
    auto agent_id = ctrl_a.ran_db().agents().empty()
                        ? 0
                        : ctrl_a.ran_db().agents().front();
    if (sec == 8) {
      (void)slicing_a->configure(agent_id, sub_slices_66_33());
      for (int i = 0; i < 80; ++i) reactor.run_once(0);
      (void)slicing_a->configure(agent_id, assoc(1, 1));
      for (int i = 0; i < 80; ++i) reactor.run_once(0);
    }
    if (sec == 11) {
      (void)slicing_a->configure(agent_id, assoc(2, 2));
      for (int i = 0; i < 80; ++i) reactor.run_once(0);
    }
  };
  return run_timeline(tick, thp, configure_a);
}

void print_series(const char* title, const Series& s) {
  std::printf("%s\n", title);
  Table table({"t (s)", "A/ue1", "A/ue2", "B/ue3", "B/ue4"});
  for (int sec = 0; sec < kSeconds; sec += kReportEvery) {
    const auto& row = s.per_second[static_cast<std::size_t>(sec)];
    table.row(std::to_string(sec),
              {fmt("%.1f", row[0]), fmt("%.1f", row[1]), fmt("%.1f", row[2]),
               fmt("%.1f", row[3])});
  }
}

}  // namespace

int main() {
  banner("Fig. 15: recursive slicing, dedicated vs shared infrastructure",
         "2 operators x 2 UEs; A sub-slices 66/33 at t=8/11 s; B idle at 30 s");

  Series dedicated = run_dedicated();
  Series shared = run_shared();

  print_series("(a) dedicated: two 25-PRB eNBs [Mbps]", dedicated);
  std::printf("\n");
  print_series("(b) shared: one 50-PRB eNB + virtualization layer [Mbps]",
               shared);

  double a_before =
      shared.per_second[25][0] + shared.per_second[25][1];
  double a_after =
      shared.per_second[45][0] + shared.per_second[45][1];
  std::printf("\n  multiplexing gain for op A when B idles (shared): "
              "+%.0f %% (paper: up to 100 %%)\n",
              100.0 * (a_after - a_before) / std::max(a_before, 1e-6));

  note("expected shape: (a) after B idles, A stays capped at its own eNB");
  note("(~17-20 Mbps total); (b) isolation while B is active (B unaffected");
  note("by A's sub-slices at t=8/11 s) and A absorbs B's half afterwards");
  return 0;
}
