// Shared controller-load harness (Figs. 8a, 8b, 9b).
//
// N agents (each a small idle base station exporting full 32-UE statistics
// at 1 ms) run on an UNMEASURED thread at accelerated virtual time; the
// controller under test runs on a MEASURED thread. Reported CPU is
// controller-thread time over virtual time; memory is the retained-state
// footprint of the controller's data structures plus the process RSS delta
// across the run.
#pragma once

#include <atomic>
#include <future>

#include "agent/agent.hpp"
#include "baseline/flexran/flexran.hpp"
#include "baseline/oran/ric.hpp"
#include "bench/bench_util.hpp"
#include "ctrl/monitor.hpp"
#include "e2sm/common.hpp"
#include "ran/functions.hpp"
#include "server/server.hpp"

namespace flexric::bench {

enum class ControllerKind {
  flexric_fb,   ///< server library + stats iApp, FlatBuffers E2AP+SM
  flexric_asn,  ///< same with ASN.1 (PER) E2AP+SM
  flexran,      ///< FlexRAN controller: RIB history + 1 ms poller
  oran,         ///< O-RAN RIC: E2 termination + RMR hop + xApp (ASN.1)
};

struct ControllerLoad {
  double cpu_percent = 0.0;
  std::uint64_t indications = 0;
  std::uint64_t retained_bytes = 0;  ///< controller data-structure footprint
  std::uint64_t rss_delta = 0;       ///< process RSS growth over the run
  /// Overload-protection ledger (DESIGN.md §11); all zero for the baseline
  /// controllers and when the admission layer is disabled.
  std::uint64_t dispatched = 0;
  std::uint64_t rate_shed = 0;
  std::uint64_t flood_shed = 0;
  std::uint64_t queue_shed = 0;
  std::uint64_t flood_quarantines = 0;
  std::uint64_t ctrls_deadline_expired = 0;
  std::uint64_t agent_reported_sheds = 0;
};

inline WireFormat e2_format(ControllerKind kind) {
  switch (kind) {
    case ControllerKind::flexric_fb: return WireFormat::flat;
    case ControllerKind::flexric_asn: return WireFormat::per;
    case ControllerKind::flexran: return WireFormat::proto;
    case ControllerKind::oran: return WireFormat::per;
  }
  return WireFormat::flat;
}

/// Agent farm on the calling (unmeasured) thread: `num_agents` small base
/// stations with `ues` idle UEs, full MAC(+RLC+PDCP when `all_sms`) stats
/// at 1 ms for `virtual_secs` simulated seconds.
inline void run_agent_farm(ControllerKind kind, std::uint16_t port,
                           int num_agents, int ues, int virtual_secs,
                           bool all_sms) {
  Reactor reactor;
  ran::CellConfig cell{ran::Rat::lte, 1, 25, kMilli, 28, false};
  WireFormat fmt = e2_format(kind);

  struct Pair {
    std::unique_ptr<ran::BaseStation> bs;
    std::unique_ptr<agent::E2Agent> agent;
    std::unique_ptr<ran::BsFunctionBundle> bundle;
    std::unique_ptr<baseline::flexran::Agent> fxr;
  };
  std::vector<Pair> pairs;
  for (int a = 0; a < num_agents; ++a) {
    Pair p;
    cell.cell_id = static_cast<std::uint32_t>(a);
    p.bs = std::make_unique<ran::BaseStation>(cell);
    for (int u = 0; u < ues; ++u)
      (void)p.bs->attach_ue({static_cast<std::uint16_t>(100 + u), 1, 0, 15, 28});
    auto conn = TcpTransport::connect(reactor, "127.0.0.1", port);
    FLEXRIC_ASSERT(conn.is_ok(), "bench: connect failed");
    if (kind == ControllerKind::flexran) {
      p.fxr = std::make_unique<baseline::flexran::Agent>(
          *p.bs, std::shared_ptr<MsgTransport>(std::move(*conn)),
          static_cast<std::uint32_t>(a + 1));
    } else {
      p.agent = std::make_unique<agent::E2Agent>(
          reactor,
          agent::E2Agent::Config{
              {1, static_cast<std::uint32_t>(a + 1), e2ap::NodeType::enb},
              fmt,
              {}});
      p.bundle =
          std::make_unique<ran::BsFunctionBundle>(*p.bs, *p.agent, fmt);
      (void)p.agent->add_controller(std::shared_ptr<MsgTransport>(std::move(*conn)));
    }
    pairs.push_back(std::move(p));
  }
  // Let setup + subscriptions settle.
  for (int i = 0; i < 500; ++i) reactor.run_once(1);
  (void)all_sms;

  const Nanos duration = static_cast<Nanos>(virtual_secs) * kSecond;
  // FlexRAN's polling application is clocked by real time, so its scenario
  // runs paced to the wall clock; the event-driven controllers have no
  // timers and run accelerated.
  const bool realtime = kind == ControllerKind::flexran;
  const Nanos wall0 = mono_now();
  Nanos now = 0;
  while (now < duration) {
    now += kMilli;
    for (Pair& p : pairs) {
      p.bs->tick(now);
      if (p.bundle) p.bundle->on_tti(now);
      if (p.fxr) p.fxr->on_tti(now);
    }
    reactor.run_once(0);
    while (realtime && mono_now() - wall0 < now) reactor.run_once(1);
  }
  // Flush whatever is still queued.
  for (int i = 0; i < 200; ++i) reactor.run_once(1);
}

/// Run the full scenario; returns the measured controller-side load.
inline ControllerLoad run_controller_load(
    ControllerKind kind, int num_agents, int ues, int virtual_secs,
    bool oran_subscribe_all = true,
    const server::OverloadConfig& overload = {}) {
  std::atomic<bool> stop{false};
  std::promise<std::uint16_t> port_promise;
  auto port_future = port_promise.get_future();
  ControllerLoad out;
  std::uint64_t rss0 = rss_bytes();

  std::thread controller_thread([&] {
    Reactor reactor;
    Nanos cpu0 = thread_cpu_now();
    if (kind == ControllerKind::flexran) {
      baseline::flexran::Controller ctrl(reactor);
      (void)ctrl.listen(0);
      // Polling application, as FlexRAN requires (1 ms scans).
      std::uint64_t scanned = 0;
      ctrl.add_poller(1, [&scanned](const auto& ribs) {
        for (const auto& [bs, rib] : ribs)
          if (!rib.history.empty()) scanned += rib.history.back().ues.size();
      });
      port_promise.set_value(ctrl.port());
      bool requested = false;
      while (!stop.load(std::memory_order_relaxed)) {
        reactor.run_once(1);
        if (!requested &&
            ctrl.rib().size() == static_cast<std::size_t>(num_agents)) {
          ctrl.request_stats(1);
          requested = true;
        }
      }
      out.cpu_percent = cpu_percent(
          thread_cpu_now() - cpu0,
          static_cast<Nanos>(virtual_secs) * kSecond);
      std::uint64_t retained = 0, reports = 0;
      for (const auto& [bs, rib] : ctrl.rib()) {
        reports += rib.reports_rx;
        for (const auto& r : rib.history)
          retained += sizeof(r) +
                      r.ues.size() * sizeof(baseline::flexran::UeStats);
      }
      out.indications = reports;
      out.retained_bytes = retained;
    } else if (kind == ControllerKind::oran) {
      baseline::oran::E2Termination e2term(reactor);
      (void)e2term.listen_e2(0);
      (void)e2term.listen_rmr(0);
      auto xconn =
          TcpTransport::connect(reactor, "127.0.0.1", e2term.rmr_port());
      FLEXRIC_ASSERT(xconn.is_ok(), "bench: xapp connect failed");
      baseline::oran::OranXapp xapp(
          reactor, std::shared_ptr<MsgTransport>(std::move(*xconn)),
          WireFormat::per);
      port_promise.set_value(e2term.e2_port());
      // Subscribe to MAC stats of every agent once they connect.
      int subscribed = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        reactor.run_once(1);
        while (oran_subscribe_all && subscribed < num_agents &&
               e2term.stats().e2_msgs_rx >
                   static_cast<std::uint64_t>(subscribed)) {
          (void)xapp.subscribe(
              e2sm::mac::Sm::kId,
              e2sm::sm_encode(
                  e2sm::EventTrigger{e2sm::TriggerKind::periodic, 1},
                  WireFormat::per),
              {{1, e2ap::ActionType::report, {}}});
          subscribed++;
        }
      }
      out.cpu_percent = cpu_percent(
          thread_cpu_now() - cpu0,
          static_cast<Nanos>(virtual_secs) * kSecond);
      out.indications = xapp.stats().indications_rx;
      out.retained_bytes =
          xapp.db().size() * sizeof(e2sm::mac::UeStats) * 2;
    } else {
      server::E2Server ric(reactor,
                           {21, e2_format(kind), {}, overload});
      ctrl::MonitorIApp::Config mon_cfg{e2_format(kind), 1};
      // FB: keep the raw (directly queryable) bytes, no decode step.
      // ASN.1: payloads are unusable unparsed — decode every message.
      mon_cfg.decode_payloads = kind == ControllerKind::flexric_asn;
      mon_cfg.retain_on_disconnect = true;
      auto monitor = std::make_shared<ctrl::MonitorIApp>(mon_cfg);
      ric.add_iapp(monitor);
      (void)ric.listen(0);
      port_promise.set_value(ric.port());
      while (!stop.load(std::memory_order_relaxed)) reactor.run_once(1);
      out.cpu_percent = cpu_percent(
          thread_cpu_now() - cpu0,
          static_cast<Nanos>(virtual_secs) * kSecond);
      out.indications = monitor->total_indications();
      std::uint64_t retained = 0;
      for (const auto& [id, db] : monitor->db()) {
        retained += db.mac.size() * sizeof(e2sm::mac::UeStats) +
                    db.rlc.size() * sizeof(e2sm::rlc::BearerStats) +
                    db.pdcp.size() * sizeof(e2sm::pdcp::BearerStats);
        for (const auto& [fn, raw] : db.raw) retained += raw.size();
      }
      out.retained_bytes = retained;
      const server::E2Server::Stats& st = ric.stats();
      out.dispatched = st.dispatched;
      out.rate_shed = st.rate_shed;
      out.flood_shed = st.flood_shed;
      out.queue_shed = st.queue_shed;
      out.flood_quarantines = st.flood_quarantines;
      out.ctrls_deadline_expired = st.ctrls_deadline_expired;
      out.agent_reported_sheds = st.agent_reported_sheds;
    }
  });

  std::uint16_t port = port_future.get();
  run_agent_farm(kind, port, num_agents, ues, virtual_secs,
                 /*all_sms=*/true);
  stop = true;
  controller_thread.join();
  std::uint64_t rss1 = rss_bytes();
  out.rss_delta = rss1 > rss0 ? rss1 - rss0 : 0;
  return out;
}

}  // namespace flexric::bench
