// Telemetry store — ingest throughput and query latency.
//
// Not a paper figure: this bench sizes the telemetry subsystem against its
// acceptance targets. It drives the decoded ingest path (Ingest::mac/rlc/
// pdcp) with MAC + RLC + PDCP statistics at the paper's 1 ms export period
// (§5.3), scaling the number of reporting agents. Every tier ingests at
// least one million samples while checking after each tick that the store's
// exact memory accounting never exceeds the configured budget. A separate
// leg runs with a budget deliberately too small for the working set to show
// eviction holding the bound. Windowed-query latency is then measured on
// the populated store at each resolution (raw / tier1 / tier2 / automatic).
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.hpp"
#include "common/clock.hpp"
#include "common/metrics.hpp"
#include "common/rng.hpp"
#include "e2sm/mac_sm.hpp"
#include "e2sm/pdcp_sm.hpp"
#include "e2sm/rlc_sm.hpp"
#include "telemetry/ingest.hpp"
#include "telemetry/store.hpp"

using namespace flexric;
using namespace flexric::bench;

namespace {

constexpr int kUesPerAgent = 4;
constexpr std::uint8_t kDrbId = 1;
constexpr std::uint64_t kTargetSamples = 1'000'000;

// Core KPI set: 6 MAC metrics per UE, 4 RLC + 2 PDCP per bearer (one bearer
// per UE here), so each 1 ms tick yields 12 samples per UE per agent.
constexpr std::uint64_t kSamplesPerTickPerAgent = kUesPerAgent * 12;

struct AgentLoad {
  e2sm::mac::IndicationMsg mac;
  e2sm::rlc::IndicationMsg rlc;
  e2sm::pdcp::IndicationMsg pdcp;
};

AgentLoad make_load() {
  AgentLoad load;
  for (int u = 0; u < kUesPerAgent; ++u) {
    auto rnti = static_cast<std::uint16_t>(100 + u);
    e2sm::mac::UeStats ue;
    ue.rnti = rnti;
    load.mac.ues.push_back(ue);
    e2sm::rlc::BearerStats rb;
    rb.rnti = rnti;
    rb.drb_id = kDrbId;
    load.rlc.bearers.push_back(rb);
    e2sm::pdcp::BearerStats pb;
    pb.rnti = rnti;
    pb.drb_id = kDrbId;
    load.pdcp.bearers.push_back(pb);
  }
  return load;
}

// Refresh the per-period counters the way a live DU would between exports.
void churn(Rng& rng, AgentLoad& load) {
  for (auto& ue : load.mac.ues) {
    ue.cqi = static_cast<std::uint8_t>(1 + rng.bounded(15));
    ue.mcs_dl = static_cast<std::uint8_t>(rng.bounded(29));
    ue.prbs_dl = static_cast<std::uint32_t>(rng.bounded(106));
    ue.bytes_dl = 1000 + rng.bounded(150'000);
    ue.bytes_ul = rng.bounded(50'000);
    ue.bsr = static_cast<std::uint32_t>(rng.bounded(100'000));
  }
  for (auto& b : load.rlc.bearers) {
    b.tx_bytes = 1000 + rng.bounded(150'000);
    b.buffer_bytes = static_cast<std::uint32_t>(rng.bounded(60'000));
    b.sojourn_avg_ms = rng.uniform(0.1, 4.0);
    b.sojourn_max_ms = b.sojourn_avg_ms + rng.uniform(0.0, 8.0);
  }
  for (auto& b : load.pdcp.bearers) {
    b.tx_sdu_bytes = 1000 + rng.bounded(150'000);
    b.rx_sdu_bytes = rng.bounded(50'000);
  }
}

struct IngestResult {
  std::uint64_t samples = 0;
  double samples_per_sec = 0.0;
  std::size_t max_memory = 0;
  std::uint64_t evictions = 0;
  std::uint64_t dropped = 0;
  bool under_budget = true;
  Nanos last_t = 0;
};

IngestResult run_ingest(int agents, telemetry::TelemetryStore& store,
                        std::uint64_t target_samples) {
  telemetry::Ingest ingest(store);
  Rng rng(42);
  std::vector<AgentLoad> loads(static_cast<std::size_t>(agents), make_load());

  std::uint64_t ticks =
      target_samples / (kSamplesPerTickPerAgent * static_cast<std::uint64_t>(agents)) + 1;
  IngestResult res;
  Nanos wall0 = mono_now();
  for (std::uint64_t tick = 0; tick < ticks; ++tick) {
    Nanos t = static_cast<Nanos>(tick) * kMilli;
    for (int a = 0; a < agents; ++a) {
      auto& load = loads[static_cast<std::size_t>(a)];
      churn(rng, load);
      ingest.mac(static_cast<telemetry::AgentId>(a), t, load.mac);
      ingest.rlc(static_cast<telemetry::AgentId>(a), t, load.rlc);
      ingest.pdcp(static_cast<telemetry::AgentId>(a), t, load.pdcp);
    }
    std::size_t mem = store.memory_bytes();
    if (mem > res.max_memory) res.max_memory = mem;
    if (mem > store.memory_budget()) res.under_budget = false;
    res.last_t = t;
  }
  Nanos wall = mono_now() - wall0;
  res.samples = ingest.samples_in();
  res.samples_per_sec =
      wall > 0 ? static_cast<double>(res.samples) /
                     (static_cast<double>(wall) / static_cast<double>(kSecond))
               : 0.0;
  res.evictions = store.evictions();
  res.dropped = store.dropped_samples();
  return res;
}

/// Budget that holds `series` full series plus a little slack, derived from
/// the store's own accounting so the bench tracks layout changes.
std::size_t budget_for(std::size_t series) {
  telemetry::TelemetryStore probe{{}};
  return probe.memory_bytes() + (series + 2) * probe.per_series_cost();
}

struct QueryStats {
  double mean_us = 0.0;
  double p95_us = 0.0;
  double p99_us = 0.0;
};

template <typename Fn>
QueryStats measure_query(int iters, Fn&& fn) {
  Histogram h;
  h.reserve(static_cast<std::size_t>(iters));
  for (int i = 0; i < iters; ++i) {
    Nanos t0 = mono_now();
    fn();
    h.record(static_cast<double>(mono_now() - t0) / static_cast<double>(kMicro));
  }
  return {h.mean(), h.quantile(0.95), h.quantile(0.99)};
}

}  // namespace

int main(int argc, char** argv) {
  banner("Telemetry store: ingest throughput and query latency",
         "1 ms MAC+RLC+PDCP statistics export (paper §5.3) into the "
         "bounded-memory KPI history");

  JsonWriter json("bench_telemetry");
  bool pass = true;

  // -- ingest throughput, scaled agent counts -------------------------------
  const int kAgentTiers[] = {1, 4, 16};
  const int kLargestTier = 16;
  Table ingest_table({"agents (4 UEs each)", "samples", "Msamples/s", "mem MB",
                      "budget MB", "evicted"});
  // The largest tier's store outlives the loop: the query-latency phase runs
  // against its populated series.
  telemetry::StoreConfig big_cfg;
  big_cfg.memory_budget =
      budget_for(static_cast<std::size_t>(kLargestTier) * kUesPerAgent * 12);
  telemetry::TelemetryStore store_big{big_cfg};
  Nanos query_last_t = 0;
  double worst_throughput = -1.0;
  for (int agents : kAgentTiers) {
    // 12 series per UE (6 MAC + 4 RLC + 2 PDCP).
    std::size_t series = static_cast<std::size_t>(agents) * kUesPerAgent * 12;
    telemetry::StoreConfig cfg;
    cfg.memory_budget = budget_for(series);
    telemetry::TelemetryStore tier_store{cfg};
    telemetry::TelemetryStore& store =
        agents == kLargestTier ? store_big : tier_store;
    IngestResult r = run_ingest(agents, store, kTargetSamples);
    if (agents == kLargestTier) query_last_t = r.last_t;
    pass = pass && r.under_budget && r.dropped == 0;
    if (worst_throughput < 0 || r.samples_per_sec < worst_throughput)
      worst_throughput = r.samples_per_sec;
    ingest_table.row(
        std::to_string(agents),
        {std::to_string(r.samples), fmt("%.2f", r.samples_per_sec / 1e6),
         fmt("%.2f", static_cast<double>(r.max_memory) / 1e6),
         fmt("%.2f", static_cast<double>(store.memory_budget()) / 1e6),
         std::to_string(r.evictions)});
    std::string prefix = "ingest_" + std::to_string(agents) + "_agents_";
    json.add(prefix + "samples", static_cast<double>(r.samples), "samples");
    json.add(prefix + "throughput", r.samples_per_sec, "samples/s");
    json.add(prefix + "max_memory", static_cast<double>(r.max_memory), "bytes");
    json.add(prefix + "budget", static_cast<double>(store.memory_budget()),
             "bytes");
  }
  note(pass ? "memory stayed under budget across every 1e6-sample ingest"
            : "FAIL: memory budget exceeded or samples dropped");
  if (worst_throughput < 1e5) {
    pass = false;
    note("FAIL: ingest throughput below the 1e5 samples/s acceptance floor");
  }

  // -- bounded memory under pressure: budget for half the working set -------
  {
    int agents = 8;
    std::size_t series = static_cast<std::size_t>(agents) * kUesPerAgent * 12;
    telemetry::StoreConfig cfg;
    cfg.memory_budget = budget_for(series / 2);
    telemetry::TelemetryStore store{cfg};
    IngestResult r = run_ingest(agents, store, kTargetSamples / 10);
    pass = pass && r.under_budget && r.evictions > 0;
    std::printf(
        "\n  tight budget (half the series): mem %.2f MB <= budget %.2f MB, "
        "%llu evictions\n",
        static_cast<double>(r.max_memory) / 1e6,
        static_cast<double>(store.memory_budget()) / 1e6,
        static_cast<unsigned long long>(r.evictions));
    json.add("tight_budget_max_memory", static_cast<double>(r.max_memory),
             "bytes");
    json.add("tight_budget_budget", static_cast<double>(store.memory_budget()),
             "bytes");
    json.add("tight_budget_evictions", static_cast<double>(r.evictions),
             "evictions");
  }

  // -- query latency on the populated 16-agent store ------------------------
  {
    const telemetry::TelemetryStore& qs = store_big;
    telemetry::SeriesKey key{0, telemetry::make_entity(100),
                             telemetry::Metric::mac_bytes_dl};
    Nanos end = query_last_t + kMilli;
    struct Leg {
      const char* label;
      const char* json_name;
      telemetry::QuerySource source;
      Nanos window;
    };
    const Leg legs[] = {
        {"aggregate raw (100 ms window)", "query_raw", telemetry::QuerySource::raw,
         100 * kMilli},
        {"aggregate tier1 (10 s window)", "query_tier1",
         telemetry::QuerySource::tier1, 10 * kSecond},
        {"aggregate tier2 (full range)", "query_tier2",
         telemetry::QuerySource::tier2, end},
        {"aggregate auto (full range)", "query_auto",
         telemetry::QuerySource::automatic, end},
    };
    std::printf("\n");
    Table query_table({"query (2000 iters)", "mean us", "p95 us", "p99 us"});
    double sink = 0.0;
    for (const Leg& leg : legs) {
      Nanos t0 = end - leg.window;
      if (t0 < 0) t0 = 0;
      QueryStats st = measure_query(2000, [&] {
        auto r = qs.window_aggregate(key, t0, end, leg.source);
        if (r.is_ok()) sink += r->mean;
      });
      query_table.row(leg.label, {fmt("%.2f", st.mean_us), fmt("%.2f", st.p95_us),
                                  fmt("%.2f", st.p99_us)});
      json.add(std::string(leg.json_name) + "_mean", st.mean_us, "us");
      json.add(std::string(leg.json_name) + "_p95", st.p95_us, "us");
    }
    QueryStats st = measure_query(2000, [&] {
      auto r = qs.latest(key, 32);
      if (r.is_ok()) sink += static_cast<double>(r->size());
    });
    query_table.row("latest 32 raw samples",
                    {fmt("%.2f", st.mean_us), fmt("%.2f", st.p95_us),
                     fmt("%.2f", st.p99_us)});
    json.add("query_latest32_mean", st.mean_us, "us");
    json.add("query_latest32_p95", st.p95_us, "us");
    if (sink < 0) std::printf("%f", sink);  // keep queries observable
  }

  note(pass ? "PASS: all telemetry acceptance targets met"
            : "FAIL: one or more acceptance targets missed");
  if (!json.write(json_path_from_args(argc, argv))) return 1;
  return pass ? 0 : 1;
}
