// Fig. 9b — Controller CPU and memory: FlexRIC vs O-RAN RIC.
//
// Paper setup: 10 dummy agents export MAC statistics (no HARQ) for 32 UEs
// via 1 ms E2AP indications; CPU and memory as per docker stats, platform
// components + xApp summed for O-RAN. Paper result: FlexRIC uses 83 % less
// CPU (4.4 % vs 25.9 %) and ~3 orders of magnitude less memory (1.8 MB vs
// 1024 MB) — O-RAN decodes every indication twice (E2T + xApp) and runs 15
// platform containers.
#include "bench/controller_load.hpp"

using namespace flexric;
using namespace flexric::bench;

int main() {
  banner("Fig. 9b: controller CPU and memory, FlexRIC vs O-RAN RIC",
         "10 agents x 32 UEs, MAC stats at 1 ms");
  constexpr int kAgents = 10;
  constexpr int kUes = 32;
  constexpr int kVirtualSecs = 6;

  ControllerLoad flexric = run_controller_load(ControllerKind::flexric_fb,
                                               kAgents, kUes, kVirtualSecs);
  ControllerLoad oran = run_controller_load(ControllerKind::oran, kAgents,
                                            kUes, kVirtualSecs);

  Table table({"system", "CPU %", "indications"});
  table.row("FlexRIC (server + stats iApp, FB)",
            {fmt("%.2f", flexric.cpu_percent),
             fmt("%.0f", static_cast<double>(flexric.indications))});
  table.row("O-RAN RIC (E2T + RMR + xApp, ASN)",
            {fmt("%.2f", oran.cpu_percent),
             fmt("%.0f", static_cast<double>(oran.indications))});
  std::printf("\n  CPU ratio (O-RAN / FlexRIC): %.1fx  (paper: ~5.9x, i.e. "
              "83 %% less)\n",
              oran.cpu_percent / std::max(flexric.cpu_percent, 1e-6));
  double flexric_per_k = flexric.cpu_percent /
                         std::max<double>(1.0, flexric.indications / 1e3);
  double oran_per_k =
      oran.cpu_percent / std::max<double>(1.0, oran.indications / 1e3);
  std::printf("  CPU per 1k indications: FlexRIC %.4f %%, O-RAN %.4f %% "
              "(%.1fx)\n",
              flexric_per_k, oran_per_k, oran_per_k / flexric_per_k);

  note("FlexRIC receives 3 SM streams (MAC+RLC+PDCP) per agent, the O-RAN");
  note("xApp subscribes to MAC only — and still burns more CPU, because");
  note("every ASN.1 indication is decoded at the E2T AND again at the xApp");
  note("memory: the paper's 1 GB O-RAN footprint is the 15-container");
  note("platform, out of scope for a native build (see bench_table2)");
  return 0;
}
