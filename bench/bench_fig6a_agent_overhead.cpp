// Fig. 6a — Normalized CPU usage of the agent in a radio deployment.
//
// Paper setup: LTE 5 MHz (25 PRBs, 3 UEs @ MCS 28, 8-core i7) and NR 20 MHz
// (106 PRBs, 3 UEs @ MCS 20, 16-core Xeon), all MAC+RLC+PDCP statistics
// (excluding HARQ) exported at 1 ms. Paper values (normalized to the
// machine's core count): 4G FlexRIC 0.68 %, 4G FlexRAN 0.49 %, 5G FlexRIC
// 0.05 %, with the radio user plane ("OAI") at 6.55 / 8.66 %.
//
// Here the radio user plane is the L2 simulator (DESIGN.md substitution),
// and CPU is agent-thread time over virtual time (single-core %). The shape
// under test: both agents add only a small overhead on top of the user
// plane, FlexRIC ≈ FlexRAN, and the *relative* overhead shrinks on the more
// demanding NR cell.
#include "bench/agent_overhead.hpp"

using namespace flexric;
using namespace flexric::bench;

int main() {
  banner("Fig. 6a: agent CPU overhead, radio deployment",
         "normalized CPU usage of FlexRIC and FlexRAN agents (LTE + NR)");

  struct Cell {
    const char* name;
    ran::CellConfig cfg;
  };
  Cell cells[] = {
      {"4G/LTE 25 PRB, 3 UE, MCS 28",
       {ran::Rat::lte, 1, 25, kMilli, 28, false}},
      {"5G/NR 106 PRB, 3 UE, MCS 20",
       {ran::Rat::nr, 1, 106, kMilli, 20, false}},
  };
  constexpr int kUes = 3;
  constexpr int kVirtualSecs = 8;

  Table table({"cell", "user plane %", "FlexRIC %", "FlexRAN %"});
  for (const Cell& cell : cells) {
    double base =
        run_agent_scenario(AgentKind::none, cell.cfg, kUes, kVirtualSecs)
            .cpu_percent;
    double flexric_total =
        run_agent_scenario(AgentKind::flexric, cell.cfg, kUes, kVirtualSecs)
            .cpu_percent;
    double flexran_total =
        run_agent_scenario(AgentKind::flexran, cell.cfg, kUes, kVirtualSecs)
            .cpu_percent;
    table.row(cell.name, {fmt("%.2f", base),
                          fmt("%.2f", std::max(0.0, flexric_total - base)),
                          fmt("%.2f", std::max(0.0, flexran_total - base))});
  }
  note("paper (8/16-core-normalized): OAI 6.55/8.66 %, FlexRIC 0.68 % (4G)");
  note("      FlexRAN 0.49 % (4G), FlexRIC 0.05 % (5G)");
  note("expected shape: agent overhead << user plane; FlexRIC ~ FlexRAN");
  return 0;
}
