// Fig. 8b — Controller CPU vs number of agents, ASN.1 vs FB E2AP.
//
// Paper setup: 1..18 dummy agents, each exporting the statistics of 32 UEs
// (MAC w/o HARQ, RLC, PDCP) every 1 ms; FlexRIC server + stats iApp.
// Paper result: ASN.1 costs ~4x the CPU of FB — FB reads directly from raw
// bytes so the subscription lookup/dispatch path avoids a decode, while
// ASN.1 parses every message; at 18 agents the FB signaling alone
// approaches 700 Mbps.
#include "bench/controller_load.hpp"

using namespace flexric;
using namespace flexric::bench;

int main() {
  banner("Fig. 8b: controller CPU vs #agents (32 UEs each, 1 ms stats)",
         "E2AP+E2SM in ASN.1 vs FlatBuffers at the FlexRIC controller");
  constexpr int kUes = 32;
  constexpr int kVirtualSecs = 4;

  Table table({"#agents", "ASN.1 CPU %", "FB CPU %", "ratio"});
  for (int agents : {1, 2, 4, 8, 12, 18}) {
    ControllerLoad asn = run_controller_load(ControllerKind::flexric_asn,
                                             agents, kUes, kVirtualSecs);
    ControllerLoad fb = run_controller_load(ControllerKind::flexric_fb,
                                            agents, kUes, kVirtualSecs);
    table.row(std::to_string(agents),
              {fmt("%.2f", asn.cpu_percent), fmt("%.2f", fb.cpu_percent),
               fmt("%.1fx", asn.cpu_percent /
                                std::max(fb.cpu_percent, 1e-6))});
  }
  note("paper: ASN.1 ~4x the CPU of FB; both grow linearly with #agents");
  return 0;
}
