// Fig. 8b — Controller CPU vs number of agents, ASN.1 vs FB E2AP.
//
// Paper setup: 1..18 dummy agents, each exporting the statistics of 32 UEs
// (MAC w/o HARQ, RLC, PDCP) every 1 ms; FlexRIC server + stats iApp.
// Paper result: ASN.1 costs ~4x the CPU of FB — FB reads directly from raw
// bytes so the subscription lookup/dispatch path avoids a decode, while
// ASN.1 parses every message; at 18 agents the FB signaling alone
// approaches 700 Mbps.
//
// Sharded section (DESIGN.md §13): the same controller workload on a
// ShardedE2Server at 1/2/4 shards, 256 agents x 4 UEs (1024 UEs total),
// agents partitioned by GlobalNodeId hash. Each shard loop runs on its own
// thread; per-shard capacity is dispatched frames per CPU-second of that
// shard's thread (CLOCK_THREAD_CPUTIME_ID, read after join), and the
// aggregate is the sum — i.e. the throughput the fleet sustains when each
// shard owns a core. The speedup row is an honest scaling measure on any
// host: per-shard overhead (rings, counter board, misroute gate) shows up
// as a sub-linear sum no matter how the host schedules the threads.
#include <chrono>
#include <thread>

#include "bench/controller_load.hpp"
#include "server/sharded_server.hpp"
#include "transport/shard_pool.hpp"

using namespace flexric;
using namespace flexric::bench;

namespace {

struct ShardScale {
  std::uint64_t dispatched = 0;  ///< sum over shards
  std::uint64_t indications = 0; ///< monitor-observed, sum over shards
  double cpu_secs = 0.0;         ///< sum of shard-thread CPU
  double fps = 0.0;              ///< sum of per-shard dispatched/cpu
};

ShardScale run_sharded_load(std::uint32_t shards, int num_agents, int ues,
                            int virtual_secs) {
  ShardPool pool(shards, ShardPool::Mode::threaded);
  server::ShardedConfig cfg;
  cfg.server.e2ap_format = WireFormat::flat;
  server::ShardedE2Server ric(pool, cfg);

  std::vector<std::shared_ptr<ctrl::MonitorIApp>> monitors(shards);
  ric.add_iapp_factory([&](std::uint32_t s) {
    ctrl::MonitorIApp::Config mc{WireFormat::flat, 1};
    mc.decode_payloads = false;  // FB: raw bytes are directly queryable
    mc.retain_on_disconnect = true;
    auto m = std::make_shared<ctrl::MonitorIApp>(mc);
    monitors[s] = m;
    return m;
  });
  FLEXRIC_ASSERT(ric.listen_all(0).is_ok(), "bench: listen_all failed");
  pool.start();

  // Agent farm on this (unmeasured) thread; each agent dials its home
  // shard's port — anything else would trip the misroute gate.
  Reactor reactor;
  ran::CellConfig cell{ran::Rat::lte, 1, 25, kMilli, 28, false};
  struct Pair {
    std::unique_ptr<ran::BaseStation> bs;
    std::unique_ptr<agent::E2Agent> agent;
    std::unique_ptr<ran::BsFunctionBundle> bundle;
  };
  std::vector<Pair> pairs;
  pairs.reserve(static_cast<std::size_t>(num_agents));
  for (int a = 0; a < num_agents; ++a) {
    Pair p;
    cell.cell_id = static_cast<std::uint32_t>(a);
    p.bs = std::make_unique<ran::BaseStation>(cell);
    for (int u = 0; u < ues; ++u)
      (void)p.bs->attach_ue(
          {static_cast<std::uint16_t>(100 + u), 1, 0, 15, 28});
    e2ap::GlobalNodeId node{1, static_cast<std::uint32_t>(a + 1),
                            e2ap::NodeType::enb};
    auto conn = TcpTransport::connect(reactor, "127.0.0.1",
                                      ric.port(ric.shard_for(node)));
    FLEXRIC_ASSERT(conn.is_ok(), "bench: connect failed");
    p.agent = std::make_unique<agent::E2Agent>(
        reactor, agent::E2Agent::Config{node, WireFormat::flat, {}});
    p.bundle = std::make_unique<ran::BsFunctionBundle>(*p.bs, *p.agent,
                                                       WireFormat::flat);
    (void)p.agent->add_controller(
        std::shared_ptr<MsgTransport>(std::move(*conn)));
    pairs.push_back(std::move(p));
  }
  // Settle: every agent through E2 Setup and into the merged directory.
  for (int i = 0; i < 5000; ++i) {
    reactor.run_once(1);
    (void)ric.pump_home();
    if (ric.directory().num_agents() == static_cast<std::size_t>(num_agents))
      break;
  }
  FLEXRIC_ASSERT(
      ric.directory().num_agents() == static_cast<std::size_t>(num_agents),
      "bench: sharded farm did not converge");

  const Nanos duration = static_cast<Nanos>(virtual_secs) * kSecond;
  Nanos now = 0;
  while (now < duration) {
    now += kMilli;
    for (Pair& p : pairs) {
      p.bs->tick(now);
      p.bundle->on_tti(now);
    }
    reactor.run_once(0);
  }
  for (int i = 0; i < 500; ++i) reactor.run_once(1);
  // Give every shard's drain + ledger publish a real-time beat, then join.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  pool.stop();

  ShardScale out;
  for (std::uint32_t s = 0; s < shards; ++s) {
    const std::uint64_t d = ric.shard_server(s).stats().dispatched;
    const double cpu =
        static_cast<double>(pool.thread_cpu(s)) / static_cast<double>(kSecond);
    out.dispatched += d;
    out.indications += monitors[s]->total_indications();
    out.cpu_secs += cpu;
    if (cpu > 0.0) out.fps += static_cast<double>(d) / cpu;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  banner("Fig. 8b: controller CPU vs #agents (32 UEs each, 1 ms stats)",
         "E2AP+E2SM in ASN.1 vs FlatBuffers at the FlexRIC controller");
  JsonWriter json("fig8b_controller_scaling");
  constexpr int kUes = 32;
  constexpr int kVirtualSecs = 4;

  Table table({"#agents", "ASN.1 CPU %", "FB CPU %", "ratio"});
  for (int agents : {1, 2, 4, 8, 12, 18}) {
    ControllerLoad asn = run_controller_load(ControllerKind::flexric_asn,
                                             agents, kUes, kVirtualSecs);
    ControllerLoad fb = run_controller_load(ControllerKind::flexric_fb,
                                            agents, kUes, kVirtualSecs);
    table.row(std::to_string(agents),
              {fmt("%.2f", asn.cpu_percent), fmt("%.2f", fb.cpu_percent),
               fmt("%.1fx", asn.cpu_percent /
                                std::max(fb.cpu_percent, 1e-6))});
    const std::string tag = "a" + std::to_string(agents);
    json.add(tag + ".asn_cpu", asn.cpu_percent, "%");
    json.add(tag + ".fb_cpu", fb.cpu_percent, "%");
  }
  note("paper: ASN.1 ~4x the CPU of FB; both grow linearly with #agents");

  // -- Sharded controller scaling (DESIGN.md §13) --
  std::printf(
      "\nsharded RIC: 256 agents x 4 UEs (1024 UEs), FB wire, hash-"
      "partitioned\n");
  constexpr int kShardAgents = 256;
  constexpr int kShardUes = 4;
  constexpr int kShardVirtualSecs = 2;
  Table stable(
      {"shards", "dispatched", "cpu (s)", "frames/cpu-s", "speedup"});
  double fps1 = 0.0;
  for (std::uint32_t shards : {1u, 2u, 4u}) {
    ShardScale r = run_sharded_load(shards, kShardAgents, kShardUes,
                                    kShardVirtualSecs);
    if (shards == 1) fps1 = r.fps;
    const double speedup = fps1 > 0.0 ? r.fps / fps1 : 0.0;
    stable.row(std::to_string(shards),
               {std::to_string(r.dispatched), fmt("%.2f", r.cpu_secs),
                fmt("%.0f", r.fps), fmt("%.2fx", speedup)});
    const std::string tag = "shard" + std::to_string(shards);
    json.add(tag + ".dispatched", static_cast<double>(r.dispatched),
             "frames");
    json.add(tag + ".frames_per_sec", r.fps, "frames/cpu-s");
    json.add(tag + ".cpu", r.cpu_secs, "s");
    json.add(tag + ".speedup_vs_1", speedup, "x");
  }
  note("per-shard frames/cpu-s summed == fleet throughput at one core per "
       "shard; 4 shards >= 3x proves the partition does not serialize");
  if (!json.write(json_path_from_args(argc, argv))) return 1;
  return 0;
}
