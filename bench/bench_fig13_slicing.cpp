// Fig. 13 — RAT-unaware slicing controller on the NR cell.
//
// Paper setup: 106 PRB (20 MHz) NR carrier, MCS fixed at 20, saturated
// downlink, proportional-fair UE scheduler, NVS slice algorithm.
// (a) isolation: t1 two UEs share equally; t2 a third UE arrives and the
//     "white" UE drops below its 50 % requirement; t3 slices {50 %,50 %}
//     restore it; t4 slice 1 raised to 66 %. Cumulative cell throughput
//     stays ~60 Mbps throughout.
// (b) static attribution vs sharing: slices {66 %,34 %}, the 34 % slice
//     goes idle mid-run — without sharing its resources are wasted, with
//     NVS the 66 % slice grows by ~50 %.
#include "agent/agent.hpp"
#include "bench/bench_util.hpp"
#include "ctrl/slicing.hpp"
#include "ran/functions.hpp"
#include "server/server.hpp"

using namespace flexric;
using namespace flexric::bench;

namespace {

constexpr WireFormat kFmt = WireFormat::flat;

struct Rig {
  Reactor reactor;
  ran::BaseStation bs{{ran::Rat::nr, 1, 106, kMilli, 20, false}};
  agent::E2Agent agent{reactor, {{20899, 1, e2ap::NodeType::gnb}, kFmt}};
  ran::BsFunctionBundle functions{bs, agent, kFmt};
  server::E2Server ric{reactor, {21, kFmt}};
  std::shared_ptr<ctrl::SlicingIApp> slicing =
      std::make_shared<ctrl::SlicingIApp>(ctrl::SlicingIApp::Config{kFmt, 100});
  Nanos now = 0;

  Rig() {
    ric.add_iapp(slicing);
    auto [a_side, s_side] = LocalTransport::make_pair(reactor);
    ric.attach(s_side);
    (void)agent.add_controller(a_side);
    settle();
  }
  void settle(int iters = 80) {
    for (int i = 0; i < iters; ++i) reactor.run_once(0);
  }
  /// Saturated downlink for `ms` milliseconds; UEs in `idle` offer nothing.
  void run(int ms, const std::vector<std::uint16_t>& idle = {}) {
    for (int t = 0; t < ms; ++t) {
      now += kMilli;
      for (std::uint16_t rnti : bs.ues()) {
        if (std::find(idle.begin(), idle.end(), rnti) != idle.end()) continue;
        ran::Packet p;
        p.size_bytes = 1400;
        for (int k = 0; k < 4; ++k) bs.deliver_downlink(rnti, 1, p);
      }
      bs.tick(now);
      functions.on_tti(now);
      reactor.run_once(0);
    }
  }
  double thp(std::uint16_t rnti, int window_ms) {
    return bs.ue_throughput_mbps(rnti, static_cast<Nanos>(window_ms) * kMilli,
                                 true);
  }
  void configure(const e2sm::slice::CtrlMsg& msg) {
    (void)slicing->configure(*slicing->first_agent(), msg);
    settle();
  }
};

e2sm::slice::CtrlMsg slices_cmd(
    std::vector<std::pair<std::uint32_t, double>> shares) {
  e2sm::slice::CtrlMsg msg;
  msg.kind = e2sm::slice::CtrlKind::add_mod;
  msg.algo = e2sm::slice::Algo::nvs;
  for (auto [id, share] : shares) {
    e2sm::slice::SliceConf conf;
    conf.id = id;
    conf.ue_sched = e2sm::slice::UeSched::pf;
    conf.nvs = {e2sm::slice::NvsKind::capacity, share, 0, 0};
    msg.slices.push_back(conf);
  }
  return msg;
}

e2sm::slice::CtrlMsg assoc_cmd(
    std::vector<std::pair<std::uint16_t, std::uint32_t>> assoc) {
  e2sm::slice::CtrlMsg msg;
  msg.kind = e2sm::slice::CtrlKind::assoc_ue;
  for (auto [rnti, slice] : assoc) msg.assoc.push_back({rnti, slice});
  return msg;
}

}  // namespace

int main() {
  banner("Fig. 13: slicing isolation and resource sharing (NR, 106 PRB)",
         "NVS slices via the SC SM; Fig. 13a timeline + Fig. 13b sharing");

  // ---- (a) isolation timeline --------------------------------------------
  {
    Rig rig;
    (void)rig.bs.attach_ue({1, 20899, 0, 15, 20});
    (void)rig.bs.attach_ue({2, 20899, 0, 15, 20});
    rig.settle();

    std::printf("(a) per-UE and cumulative throughput [Mbps] "
                "(ue1 = the 'white' UE)\n");
    Table table({"instant", "ue1", "ue2", "ue3", "cumulative"});
    auto phase = [&](const char* name, int ms) {
      rig.run(ms);
      double t1 = rig.thp(1, ms), t2 = rig.thp(2, ms),
             t3 = rig.bs.has_ue(3) ? rig.thp(3, ms) : 0.0;
      table.row(name, {fmt("%.1f", t1), fmt("%.1f", t2), fmt("%.1f", t3),
                       fmt("%.1f", t1 + t2 + t3)});
    };
    phase("t1: no slicing, 2 UEs", 2000);
    (void)rig.bs.attach_ue({3, 20899, 0, 15, 20});
    rig.settle();
    phase("t2: third UE arrives", 2000);
    rig.configure(slices_cmd({{1, 0.5}, {2, 0.5}}));
    rig.configure(assoc_cmd({{1, 1}, {2, 2}, {3, 2}}));
    phase("t3: NVS slices 50/50", 3000);
    rig.configure(slices_cmd({{1, 0.66}, {2, 0.34}}));
    phase("t4: slice 1 at 66%", 3000);
    note("paper: ue1 holds 50 % (~30 Mbps) at t3 and 66 % at t4;");
    note("cumulative stays ~60 Mbps (full cell) at every instant");
  }

  // ---- (b) static attribution vs sharing ---------------------------------
  {
    std::printf("\n(b) slices 66%%/34%%, slice-2 UE goes idle at t=10 s\n");
    Table table({"mode / phase", "ue1 (66%)", "ue2 (34%)"});
    for (bool sharing : {false, true}) {
      Rig rig;
      (void)rig.bs.attach_ue({1, 20899, 0, 15, 20});
      (void)rig.bs.attach_ue({2, 20899, 0, 15, 20});
      rig.settle();
      if (sharing) {
        rig.configure(slices_cmd({{1, 0.66}, {2, 0.34}}));
      } else {
        // No sharing: a static PRB partition (RadioVisor-style sub-grids).
        e2sm::slice::CtrlMsg msg;
        msg.kind = e2sm::slice::CtrlKind::add_mod;
        msg.algo = e2sm::slice::Algo::static_rb;
        e2sm::slice::SliceConf s1, s2;
        s1.id = 1;
        s1.static_rb = {0, 70};  // 66 % of 106 PRBs
        s2.id = 2;
        s2.static_rb = {70, 36};
        msg.slices = {s1, s2};
        rig.configure(msg);
      }
      rig.configure(assoc_cmd({{1, 1}, {2, 2}}));

      rig.run(5000);
      double busy1 = rig.thp(1, 5000), busy2 = rig.thp(2, 5000);
      rig.run(5000, /*idle=*/{2});
      double idle1 = rig.thp(1, 5000);
      const char* mode = sharing ? "NVS (sharing)" : "static (no sharing)";
      table.row(std::string(mode) + ", both active",
                {fmt("%.1f", busy1), fmt("%.1f", busy2)});
      table.row(std::string(mode) + ", slice 2 idle",
                {fmt("%.1f", idle1), "0.0"});
    }
    note("paper: without sharing the idle slice's resources are wasted;");
    note("with NVS the 66 % slice gains ~50 % when slice 2 goes idle");
  }
  return 0;
}
