// Fig. 11 — Bufferbloat and the traffic-control xApp.
//
// Paper setup: one UE carries a VoIP flow (G.711: 172 B / 20 ms, irtt) and,
// from t=5 s, a greedy Cubic flow (iperf3). (a) transparent mode: the RLC
// DRB buffer bloats and every packet's sojourn time explodes; (b) with the
// TC xApp: a second FIFO queue + 5-tuple filter + RR scheduler + 5G-BDP
// pacer segregate the VoIP flow; (c) the VoIP RTT CDF is ~4x faster with
// the xApp, while the unloaded RTT varies between 20 and 40 ms.
//
// This bench prints the per-second sojourn-time series of both scenarios
// (Figs. 11a/11b) and the two RTT CDFs (Fig. 11c).
#include <cstdio>

#include "agent/agent.hpp"
#include "bench/bench_util.hpp"
#include "ctrl/broker.hpp"
#include "ctrl/monitor.hpp"
#include "ctrl/tc_xapp.hpp"
#include "flows/cubic.hpp"
#include "flows/manager.hpp"
#include "flows/voip.hpp"
#include "ran/functions.hpp"
#include "server/server.hpp"

using namespace flexric;
using namespace flexric::bench;

namespace {

constexpr WireFormat kFmt = WireFormat::flat;

e2sm::tc::FiveTuple voip_tuple() {
  return {0x0A000001, 0x0A640001, 40000, 5060, 17};
}
e2sm::tc::FiveTuple bulk_tuple() {
  return {0x0A000002, 0x0A640001, 40001, 443, 6};
}

struct SojournSample {
  int second;
  double rlc_ms;       // DRB buffer sojourn (bulk path when segregated)
  double tc_q1_ms;     // TC low-latency queue sojourn (xApp case)
  double tc_q0_ms;     // TC default queue sojourn (backlogged bulk, xApp)
};

struct Run {
  std::vector<SojournSample> series;
  Histogram voip_rtt;
  bool xapp_applied = false;
};

Run run_scenario(bool with_xapp, int seconds) {
  Reactor reactor;
  ran::CellConfig cell{ran::Rat::lte, 1, 25, kMilli, 28, false};
  ran::BaseStation bs(cell);
  agent::E2Agent agent(reactor, {{20899, 1, e2ap::NodeType::enb}, kFmt});
  ran::BsFunctionBundle functions(bs, agent, kFmt);

  server::E2Server ric(reactor, {21, kFmt, {}});
  ctrl::Broker broker(reactor);
  ctrl::MonitorIApp::Config mon_cfg{kFmt, 10};
  mon_cfg.broker = &broker;
  mon_cfg.want_mac = false;
  mon_cfg.want_pdcp = false;
  auto monitor = std::make_shared<ctrl::MonitorIApp>(mon_cfg);
  auto manager = std::make_shared<ctrl::TcSmManagerIApp>(kFmt);
  ric.add_iapp(monitor);
  ric.add_iapp(manager);
  std::unique_ptr<ctrl::TcXapp> xapp;
  if (with_xapp) {
    ctrl::TcXapp::Config xcfg;
    xcfg.sm_format = kFmt;
    xcfg.sojourn_limit_ms = 20.0;
    xcfg.low_latency_flow = voip_tuple();
    xcfg.rnti = 100;
    xapp = std::make_unique<ctrl::TcXapp>(broker, *manager, xcfg);
  }
  auto [a_side, s_side] = LocalTransport::make_pair(reactor);
  ric.attach(s_side);
  (void)agent.add_controller(a_side);
  for (int i = 0; i < 50; ++i) reactor.run_once(0);

  (void)bs.attach_ue({100, 20899, 0, 15, 28});
  flows::TrafficManager tm(bs, {});
  flows::VoipSource voip(1, voip_tuple());
  flows::CubicSource bulk(2, bulk_tuple(), /*start=*/5 * kSecond);
  tm.attach(&voip, 100);
  tm.attach(&bulk, 100);

  Run out;
  Nanos now = 0;
  for (int sec = 0; sec < seconds; ++sec) {
    double rlc_max = 0, q0_max = 0, q1_max = 0;
    for (int t = 0; t < 1000; ++t) {
      now += kMilli;
      tm.tick(now);
      bs.tick(now);
      functions.on_tti(now);
      reactor.run_once(0);
      if (t % 100 == 0) {
        auto rlc = bs.rlc_stats({});
        if (!rlc.bearers.empty())
          rlc_max = std::max(rlc_max, rlc.bearers[0].sojourn_max_ms);
        // Per-period queue sojourn (reset after reading): what a packet
        // dequeued in this window actually waited.
        if (tc::TcChain* chain = bs.tc_chain(100, 1)) {
          for (auto& q : chain->stats_snapshot(/*reset_period=*/true)) {
            if (q.qid == 0) q0_max = std::max(q0_max, q.sojourn_max_ms);
            if (q.qid == 1) q1_max = std::max(q1_max, q.sojourn_max_ms);
          }
        }
      }
    }
    out.series.push_back({sec, rlc_max, q1_max, q0_max});
  }
  out.voip_rtt = voip.rtt_ms();
  out.xapp_applied = xapp && xapp->applied();
  return out;
}

}  // namespace

int main() {
  banner("Fig. 11: sojourn times and VoIP RTT, transparent vs TC xApp",
         "VoIP + greedy Cubic flow on one bearer; 1-minute conversation");
  constexpr int kSeconds = 60;

  Run transparent = run_scenario(false, kSeconds);
  Run xapp = run_scenario(true, kSeconds);

  std::printf("(a/b) per-second max sojourn times [ms] "
              "(bulk flow starts at t=5 s)\n");
  Table table({"t (s)", "transp. RLC", "xApp RLC", "xApp TC q0",
               "xApp TC q1"});
  for (int sec = 0; sec < kSeconds; sec += 5) {
    table.row(std::to_string(sec),
              {fmt("%.0f", transparent.series[sec].rlc_ms),
               fmt("%.1f", xapp.series[sec].rlc_ms),
               fmt("%.0f", xapp.series[sec].tc_q0_ms),
               fmt("%.2f", xapp.series[sec].tc_q1_ms)});
  }
  std::printf("\n  xApp actions applied: %s\n",
              xapp.xapp_applied ? "yes" : "NO");

  std::printf("\n(c) VoIP RTT CDF [ms]\n");
  Table cdf({"percentile", "transparent", "xApp"});
  for (double q : {0.1, 0.25, 0.5, 0.75, 0.9, 0.99}) {
    cdf.row(fmt("%.0f%%", q * 100),
            {fmt("%.1f", transparent.voip_rtt.quantile(q)),
             fmt("%.1f", xapp.voip_rtt.quantile(q))});
  }
  std::printf("\n  median speedup with xApp: %.1fx (paper: ~4x)\n",
              transparent.voip_rtt.quantile(0.5) /
                  std::max(1e-6, xapp.voip_rtt.quantile(0.5)));

  note("expected shape: transparent RLC sojourn rises to hundreds of ms");
  note("after t=5 s and stays; with the xApp the RLC and the VoIP queue");
  note("(q1) stay in single-digit ms while the bulk backlog moves to q0;");
  note("unloaded VoIP RTT (t<5 s) varies in the paper's 20-40 ms band");
  return 0;
}
