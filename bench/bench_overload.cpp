// Overload-protection bench (DESIGN.md §11): replay the deterministic
// indication storm from tests/test_overload.cpp at 1x/4x/16x/64x the
// admission rate and report the shed ledger plus control-plane latency.
//
// Everything runs on one reactor driven by a VirtualClock, so every number
// below except CPU share is bit-deterministic — the seeded BENCH_overload.json
// can be diffed numerically across commits. The headline claim: control p99
// stays flat while the DATA plane sheds ~95% of a 64x storm, and every shed
// frame is accounted for (emitted == delivered + shed, exactly).
#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "agent/agent.hpp"
#include "bench/bench_util.hpp"
#include "common/clock.hpp"
#include "common/overload.hpp"
#include "server/server.hpp"
#include "transport/faulty.hpp"
#include "transport/resilience.hpp"

namespace flexric::bench {
namespace {

void advance(Reactor& reactor, VirtualClock& clock, Nanos dt) {
  while (dt > 0) {
    Nanos d = dt < kMilli ? dt : kMilli;
    clock.advance(d);
    dt -= d;
    for (int i = 0; i < 8; ++i)
      if (reactor.run_once(0) == 0) break;
  }
}

class StormFn final : public agent::RanFunction {
 public:
  StormFn() {
    desc_.id = 200;
    desc_.revision = 1;
    desc_.name = "STORM-BENCH";
  }
  [[nodiscard]] const e2ap::RanFunctionItem& descriptor() const override {
    return desc_;
  }
  Result<agent::SubscriptionOutcome> on_subscription(
      const e2ap::SubscriptionRequest& req, agent::ControllerId) override {
    last_sub = req;
    agent::SubscriptionOutcome out;
    for (const auto& a : req.actions) out.admitted.push_back(a.id);
    return out;
  }
  Status on_subscription_delete(const e2ap::SubscriptionDeleteRequest&,
                                agent::ControllerId) override {
    return Status::ok();
  }
  Result<Buffer> on_control(const e2ap::ControlRequest& req,
                            agent::ControllerId) override {
    return req.message;
  }
  void emit(agent::ControllerId origin) {
    e2ap::Indication ind;
    ind.request = last_sub.request;
    ind.ran_function_id = desc_.id;
    ind.action_id = 1;
    ind.sn = emitted++;
    ind.message = {0xAB};
    (void)services_->send_indication(origin, ind);
  }

  std::uint32_t emitted = 0;
  e2ap::SubscriptionRequest last_sub;

 private:
  e2ap::RanFunctionItem desc_;
};

struct StormResult {
  std::uint64_t emitted = 0;
  std::uint64_t delivered = 0;
  std::uint64_t rate_shed = 0;
  std::uint64_t flood_shed = 0;
  std::uint64_t queue_shed = 0;
  std::uint64_t agent_shed = 0;
  std::uint64_t quarantines = 0;
  Nanos ctrl_p50 = 0;
  Nanos ctrl_p99 = 0;
  std::uint64_t ctrl_failures = 0;
  double cpu_percent = 0.0;  ///< only non-deterministic field; not in JSON
};

/// One storm: a flooder at `mult` x 1k/ms and a line-rate victim for 300
/// virtual ms, with a control transaction against the victim every 5 ms.
StormResult run_storm(int mult) {
  VirtualClock clock;
  Reactor reactor;
  reactor.set_time_source(&clock);

  server::OverloadConfig ov;
  ov.enabled = true;
  ov.control_queue = 256;
  ov.data_queue = 1024;
  ov.shed_policy = overload::ShedPolicy::fair_per_agent;
  ov.dispatch_batch = 64;
  ov.data_rate = 2000.0;
  ov.data_burst = 100.0;
  ov.flood_threshold = 100000;  // throttle, don't quarantine: measure shedding
  ov.ctrl_deadline = 100 * kMilli;
  server::E2Server ric(reactor, {21, WireFormat::flat, {}, ov});

  struct Node {
    std::unique_ptr<agent::E2Agent> agent;
    std::shared_ptr<StormFn> fn;
    agent::ControllerId ctrl = 0;
    server::AgentId id = 0;
    std::uint64_t delivered = 0;
  };
  std::vector<std::unique_ptr<Node>> nodes;
  for (std::uint32_t nb = 1; nb <= 2; ++nb) {
    auto n = std::make_unique<Node>();
    n->fn = std::make_shared<StormFn>();
    agent::OverloadConfig aov;
    aov.indication_queue = 256;
    n->agent = std::make_unique<agent::E2Agent>(
        reactor, agent::E2Agent::Config{{1, nb, e2ap::NodeType::gnb},
                                        WireFormat::flat, aov});
    FLEXRIC_ASSERT(n->agent->register_function(n->fn).is_ok(),
                   "bench: register failed");
    auto [a_side, s_side] = LocalTransport::make_pair(reactor);
    ric.attach(s_side);
    auto cid = n->agent->add_controller(a_side);
    FLEXRIC_ASSERT(cid.is_ok(), "bench: add_controller failed");
    n->ctrl = *cid;
    advance(reactor, clock, 20 * kMilli);
    for (server::AgentId id : ric.ran_db().agents()) {
      bool taken = false;
      for (const auto& other : nodes) taken = taken || other->id == id;
      if (!taken) n->id = id;
    }
    server::SubCallbacks cbs;
    cbs.on_response = [](const e2ap::SubscriptionResponse&) {};
    Node* np = n.get();
    cbs.on_indication = [np](const e2ap::Indication&) { np->delivered++; };
    auto h = ric.subscribe(n->id, 200, Buffer{0x01},
                           {{1, e2ap::ActionType::report, {}}},
                           std::move(cbs));
    FLEXRIC_ASSERT(h.is_ok(), "bench: subscribe failed");
    advance(reactor, clock, 10 * kMilli);
    nodes.push_back(std::move(n));
  }
  Node& flooder = *nodes[0];
  Node& victim = *nodes[1];

  StormResult r;
  std::vector<Nanos> latencies;
  const Nanos cpu0 = thread_cpu_now();
  for (int ms = 0; ms < 300; ++ms) {
    for (int k = 0; k < mult; ++k) flooder.fn->emit(flooder.ctrl);
    victim.fn->emit(victim.ctrl);
    if (ms % 5 == 0) {
      const Nanos t0 = reactor.now();
      server::CtrlCallbacks cbs;
      cbs.on_ack = [&latencies, &reactor, t0](const e2ap::ControlAck&) {
        latencies.push_back(reactor.now() - t0);
      };
      cbs.on_failure = [&r](const e2ap::ControlFailure&) {
        r.ctrl_failures++;
      };
      (void)ric.send_control(victim.id, 200, Buffer{0x01}, Buffer{0x02},
                             std::move(cbs));
    }
    advance(reactor, clock, kMilli);
  }
  advance(reactor, clock, 500 * kMilli);  // settle: drain queues
  const Nanos cpu1 = thread_cpu_now();

  const server::E2Server::Stats& st = ric.stats();
  r.emitted = flooder.fn->emitted + victim.fn->emitted;
  r.delivered = flooder.delivered + victim.delivered;
  r.rate_shed = st.rate_shed;
  r.flood_shed = st.flood_shed;
  r.queue_shed = st.queue_shed;
  r.agent_shed = flooder.agent->stats().indications_shed +
                 victim.agent->stats().indications_shed;
  r.quarantines = st.flood_quarantines;
  std::sort(latencies.begin(), latencies.end());
  if (!latencies.empty()) {
    r.ctrl_p50 = latencies[(latencies.size() - 1) / 2];
    r.ctrl_p99 = latencies[(latencies.size() - 1) * 99 / 100];
  }
  r.cpu_percent = cpu_percent(cpu1 - cpu0, 800 * kMilli);
  FLEXRIC_ASSERT(r.emitted == r.delivered + r.agent_shed + r.rate_shed +
                                  r.flood_shed + r.queue_shed,
                 "bench: shed ledger does not reconcile");
  return r;
}

}  // namespace
}  // namespace flexric::bench

int main(int argc, char** argv) {
  using namespace flexric;
  using namespace flexric::bench;

  banner("Overload protection under an indication storm",
         "DESIGN.md §11 / EXPERIMENTS.md (storm replay); companion to "
         "tests/test_overload.cpp");
  note("virtual-clock replay: every column except cpu% is deterministic");

  JsonWriter json("overload_storm");
  Table table({"storm (flooder rate vs admitted)", "emitted", "delivered",
               "shed%", "ctrl p50 us", "ctrl p99 us", "cpu%"});
  for (int mult : {1, 4, 16, 64}) {
    StormResult r = run_storm(mult);
    const double shed_pct =
        r.emitted > 0 ? 100.0 *
                            static_cast<double>(r.rate_shed + r.flood_shed +
                                                r.queue_shed + r.agent_shed) /
                            static_cast<double>(r.emitted)
                      : 0.0;
    table.row("mult=" + std::to_string(mult) + "x",
              {std::to_string(r.emitted), std::to_string(r.delivered),
               fmt("%.1f", shed_pct),
               fmt("%.1f", static_cast<double>(r.ctrl_p50) / 1000.0),
               fmt("%.1f", static_cast<double>(r.ctrl_p99) / 1000.0),
               fmt("%.1f", r.cpu_percent)});
    const std::string p = "m" + std::to_string(mult) + ".";
    json.add(p + "emitted", static_cast<double>(r.emitted), "frames");
    json.add(p + "delivered", static_cast<double>(r.delivered), "frames");
    json.add(p + "rate_shed", static_cast<double>(r.rate_shed), "frames");
    json.add(p + "queue_shed", static_cast<double>(r.queue_shed), "frames");
    json.add(p + "agent_shed", static_cast<double>(r.agent_shed), "frames");
    json.add(p + "shed_pct", shed_pct, "%");
    json.add(p + "ctrl_p50", static_cast<double>(r.ctrl_p50) / 1000.0, "us");
    json.add(p + "ctrl_p99", static_cast<double>(r.ctrl_p99) / 1000.0, "us");
    json.add(p + "ctrl_failures", static_cast<double>(r.ctrl_failures), "");
    if (r.ctrl_failures != 0)
      std::printf("  WARNING: mult=%d saw %llu control failures\n", mult,
                  static_cast<unsigned long long>(r.ctrl_failures));
  }
  note("shed% is server rate/queue sheds + agent-side sheds over emitted;");
  note("the ledger reconciles exactly: emitted == delivered + all sheds");

  return json.write(json_path_from_args(argc, argv)) ? 0 : 1;
}
