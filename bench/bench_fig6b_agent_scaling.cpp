// Fig. 6b — Agent CPU vs number of connected UEs (L2 simulator).
//
// Paper setup: OAI's "L2 simulator" (no physical layer) on LTE, 1 ms full
// statistics, 1..32 UEs; series "FlexRAN", "FlexRIC", "No agent". The paper
// finds FlexRIC slightly better than FlexRAN, especially at many UEs (up to
// 1 % less CPU at 32 UEs), thanks to FlatBuffers encoding of indications.
#include "bench/agent_overhead.hpp"

using namespace flexric;
using namespace flexric::bench;

int main() {
  banner("Fig. 6b: agent CPU vs #UEs (L2 simulator, LTE)",
         "FlexRAN vs FlexRIC vs no agent, statistics at 1 ms");

  ran::CellConfig cell{ran::Rat::lte, 1, 25, kMilli, 28, false};
  constexpr int kVirtualSecs = 5;

  Table table({"#UEs", "no agent %", "FlexRIC %", "FlexRAN %"});
  for (int ues : {1, 2, 4, 8, 16, 24, 32}) {
    double base =
        run_agent_scenario(AgentKind::none, cell, ues, kVirtualSecs)
            .cpu_percent;
    double flexric =
        run_agent_scenario(AgentKind::flexric, cell, ues, kVirtualSecs)
            .cpu_percent;
    double flexran =
        run_agent_scenario(AgentKind::flexran, cell, ues, kVirtualSecs)
            .cpu_percent;
    table.row(std::to_string(ues), {fmt("%.2f", base), fmt("%.2f", flexric),
                                    fmt("%.2f", flexran)});
  }
  note("expected shape: all series grow with #UEs; FlexRIC <= FlexRAN,");
  note("gap widening toward 32 UEs (FlatBuffers vs Protobuf encoding)");
  return 0;
}
