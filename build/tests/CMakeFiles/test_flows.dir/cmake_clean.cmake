file(REMOVE_RECURSE
  "CMakeFiles/test_flows.dir/test_flows.cpp.o"
  "CMakeFiles/test_flows.dir/test_flows.cpp.o.d"
  "test_flows"
  "test_flows.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_flows.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
