# Empty dependencies file for test_flows.
# This may be replaced when dependencies are built.
