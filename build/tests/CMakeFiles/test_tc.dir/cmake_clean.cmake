file(REMOVE_RECURSE
  "CMakeFiles/test_tc.dir/test_tc.cpp.o"
  "CMakeFiles/test_tc.dir/test_tc.cpp.o.d"
  "test_tc"
  "test_tc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
