file(REMOVE_RECURSE
  "CMakeFiles/test_e2ap.dir/test_e2ap.cpp.o"
  "CMakeFiles/test_e2ap.dir/test_e2ap.cpp.o.d"
  "test_e2ap"
  "test_e2ap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_e2ap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
