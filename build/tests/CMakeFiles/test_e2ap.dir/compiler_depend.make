# Empty compiler generated dependencies file for test_e2ap.
# This may be replaced when dependencies are built.
