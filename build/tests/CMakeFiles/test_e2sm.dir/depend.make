# Empty dependencies file for test_e2sm.
# This may be replaced when dependencies are built.
