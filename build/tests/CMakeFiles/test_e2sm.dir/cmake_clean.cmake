file(REMOVE_RECURSE
  "CMakeFiles/test_e2sm.dir/test_e2sm.cpp.o"
  "CMakeFiles/test_e2sm.dir/test_e2sm.cpp.o.d"
  "test_e2sm"
  "test_e2sm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_e2sm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
