# Empty compiler generated dependencies file for test_agent_server.
# This may be replaced when dependencies are built.
