file(REMOVE_RECURSE
  "CMakeFiles/test_agent_server.dir/test_agent_server.cpp.o"
  "CMakeFiles/test_agent_server.dir/test_agent_server.cpp.o.d"
  "test_agent_server"
  "test_agent_server.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_agent_server.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
