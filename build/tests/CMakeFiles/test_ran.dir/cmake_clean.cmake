file(REMOVE_RECURSE
  "CMakeFiles/test_ran.dir/test_ran.cpp.o"
  "CMakeFiles/test_ran.dir/test_ran.cpp.o.d"
  "test_ran"
  "test_ran.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ran.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
