file(REMOVE_RECURSE
  "CMakeFiles/test_xapp_host.dir/test_xapp_host.cpp.o"
  "CMakeFiles/test_xapp_host.dir/test_xapp_host.cpp.o.d"
  "test_xapp_host"
  "test_xapp_host.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_xapp_host.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
