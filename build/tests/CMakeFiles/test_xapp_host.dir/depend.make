# Empty dependencies file for test_xapp_host.
# This may be replaced when dependencies are built.
