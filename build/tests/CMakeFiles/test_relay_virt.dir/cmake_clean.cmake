file(REMOVE_RECURSE
  "CMakeFiles/test_relay_virt.dir/test_relay_virt.cpp.o"
  "CMakeFiles/test_relay_virt.dir/test_relay_virt.cpp.o.d"
  "test_relay_virt"
  "test_relay_virt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_relay_virt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
