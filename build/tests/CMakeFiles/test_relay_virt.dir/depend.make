# Empty dependencies file for test_relay_virt.
# This may be replaced when dependencies are built.
