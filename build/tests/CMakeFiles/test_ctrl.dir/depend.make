# Empty dependencies file for test_ctrl.
# This may be replaced when dependencies are built.
