file(REMOVE_RECURSE
  "CMakeFiles/test_ctrl.dir/test_ctrl.cpp.o"
  "CMakeFiles/test_ctrl.dir/test_ctrl.cpp.o.d"
  "test_ctrl"
  "test_ctrl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ctrl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
