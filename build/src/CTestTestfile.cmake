# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("codec")
subdirs("e2ap")
subdirs("e2sm")
subdirs("transport")
subdirs("agent")
subdirs("server")
subdirs("ran")
subdirs("tc")
subdirs("flows")
subdirs("baseline")
subdirs("ctrl")
