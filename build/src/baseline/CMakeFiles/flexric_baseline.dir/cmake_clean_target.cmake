file(REMOVE_RECURSE
  "libflexric_baseline.a"
)
