file(REMOVE_RECURSE
  "CMakeFiles/flexric_baseline.dir/flexran/flexran.cpp.o"
  "CMakeFiles/flexric_baseline.dir/flexran/flexran.cpp.o.d"
  "CMakeFiles/flexric_baseline.dir/oran/ric.cpp.o"
  "CMakeFiles/flexric_baseline.dir/oran/ric.cpp.o.d"
  "libflexric_baseline.a"
  "libflexric_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flexric_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
