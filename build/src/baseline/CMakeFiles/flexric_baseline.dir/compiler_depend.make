# Empty compiler generated dependencies file for flexric_baseline.
# This may be replaced when dependencies are built.
