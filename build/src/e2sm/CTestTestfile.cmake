# CMake generated Testfile for 
# Source directory: /root/repo/src/e2sm
# Build directory: /root/repo/build/src/e2sm
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
