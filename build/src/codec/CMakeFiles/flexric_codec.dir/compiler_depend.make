# Empty compiler generated dependencies file for flexric_codec.
# This may be replaced when dependencies are built.
