
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/codec/flat.cpp" "src/codec/CMakeFiles/flexric_codec.dir/flat.cpp.o" "gcc" "src/codec/CMakeFiles/flexric_codec.dir/flat.cpp.o.d"
  "/root/repo/src/codec/per.cpp" "src/codec/CMakeFiles/flexric_codec.dir/per.cpp.o" "gcc" "src/codec/CMakeFiles/flexric_codec.dir/per.cpp.o.d"
  "/root/repo/src/codec/proto.cpp" "src/codec/CMakeFiles/flexric_codec.dir/proto.cpp.o" "gcc" "src/codec/CMakeFiles/flexric_codec.dir/proto.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/flexric_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
