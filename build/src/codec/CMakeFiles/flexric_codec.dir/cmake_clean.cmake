file(REMOVE_RECURSE
  "CMakeFiles/flexric_codec.dir/flat.cpp.o"
  "CMakeFiles/flexric_codec.dir/flat.cpp.o.d"
  "CMakeFiles/flexric_codec.dir/per.cpp.o"
  "CMakeFiles/flexric_codec.dir/per.cpp.o.d"
  "CMakeFiles/flexric_codec.dir/proto.cpp.o"
  "CMakeFiles/flexric_codec.dir/proto.cpp.o.d"
  "libflexric_codec.a"
  "libflexric_codec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flexric_codec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
