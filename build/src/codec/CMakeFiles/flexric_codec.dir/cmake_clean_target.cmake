file(REMOVE_RECURSE
  "libflexric_codec.a"
)
