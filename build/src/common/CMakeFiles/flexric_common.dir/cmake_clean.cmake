file(REMOVE_RECURSE
  "CMakeFiles/flexric_common.dir/bit_io.cpp.o"
  "CMakeFiles/flexric_common.dir/bit_io.cpp.o.d"
  "CMakeFiles/flexric_common.dir/buffer.cpp.o"
  "CMakeFiles/flexric_common.dir/buffer.cpp.o.d"
  "CMakeFiles/flexric_common.dir/clock.cpp.o"
  "CMakeFiles/flexric_common.dir/clock.cpp.o.d"
  "CMakeFiles/flexric_common.dir/log.cpp.o"
  "CMakeFiles/flexric_common.dir/log.cpp.o.d"
  "CMakeFiles/flexric_common.dir/metrics.cpp.o"
  "CMakeFiles/flexric_common.dir/metrics.cpp.o.d"
  "CMakeFiles/flexric_common.dir/result.cpp.o"
  "CMakeFiles/flexric_common.dir/result.cpp.o.d"
  "libflexric_common.a"
  "libflexric_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flexric_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
