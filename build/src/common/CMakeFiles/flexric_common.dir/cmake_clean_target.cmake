file(REMOVE_RECURSE
  "libflexric_common.a"
)
