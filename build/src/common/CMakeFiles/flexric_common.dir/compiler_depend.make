# Empty compiler generated dependencies file for flexric_common.
# This may be replaced when dependencies are built.
