
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/common/bit_io.cpp" "src/common/CMakeFiles/flexric_common.dir/bit_io.cpp.o" "gcc" "src/common/CMakeFiles/flexric_common.dir/bit_io.cpp.o.d"
  "/root/repo/src/common/buffer.cpp" "src/common/CMakeFiles/flexric_common.dir/buffer.cpp.o" "gcc" "src/common/CMakeFiles/flexric_common.dir/buffer.cpp.o.d"
  "/root/repo/src/common/clock.cpp" "src/common/CMakeFiles/flexric_common.dir/clock.cpp.o" "gcc" "src/common/CMakeFiles/flexric_common.dir/clock.cpp.o.d"
  "/root/repo/src/common/log.cpp" "src/common/CMakeFiles/flexric_common.dir/log.cpp.o" "gcc" "src/common/CMakeFiles/flexric_common.dir/log.cpp.o.d"
  "/root/repo/src/common/metrics.cpp" "src/common/CMakeFiles/flexric_common.dir/metrics.cpp.o" "gcc" "src/common/CMakeFiles/flexric_common.dir/metrics.cpp.o.d"
  "/root/repo/src/common/result.cpp" "src/common/CMakeFiles/flexric_common.dir/result.cpp.o" "gcc" "src/common/CMakeFiles/flexric_common.dir/result.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
