file(REMOVE_RECURSE
  "libflexric_server.a"
)
