file(REMOVE_RECURSE
  "CMakeFiles/flexric_server.dir/ran_db.cpp.o"
  "CMakeFiles/flexric_server.dir/ran_db.cpp.o.d"
  "CMakeFiles/flexric_server.dir/server.cpp.o"
  "CMakeFiles/flexric_server.dir/server.cpp.o.d"
  "libflexric_server.a"
  "libflexric_server.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flexric_server.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
