# Empty compiler generated dependencies file for flexric_server.
# This may be replaced when dependencies are built.
