# Empty compiler generated dependencies file for flexric_transport.
# This may be replaced when dependencies are built.
