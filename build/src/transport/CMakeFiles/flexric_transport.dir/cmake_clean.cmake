file(REMOVE_RECURSE
  "CMakeFiles/flexric_transport.dir/reactor.cpp.o"
  "CMakeFiles/flexric_transport.dir/reactor.cpp.o.d"
  "CMakeFiles/flexric_transport.dir/transport.cpp.o"
  "CMakeFiles/flexric_transport.dir/transport.cpp.o.d"
  "libflexric_transport.a"
  "libflexric_transport.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flexric_transport.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
