file(REMOVE_RECURSE
  "libflexric_transport.a"
)
