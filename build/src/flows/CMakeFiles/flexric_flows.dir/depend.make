# Empty dependencies file for flexric_flows.
# This may be replaced when dependencies are built.
