file(REMOVE_RECURSE
  "libflexric_flows.a"
)
