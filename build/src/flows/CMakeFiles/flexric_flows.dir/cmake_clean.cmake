file(REMOVE_RECURSE
  "CMakeFiles/flexric_flows.dir/manager.cpp.o"
  "CMakeFiles/flexric_flows.dir/manager.cpp.o.d"
  "libflexric_flows.a"
  "libflexric_flows.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flexric_flows.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
