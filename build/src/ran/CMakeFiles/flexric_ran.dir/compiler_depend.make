# Empty compiler generated dependencies file for flexric_ran.
# This may be replaced when dependencies are built.
