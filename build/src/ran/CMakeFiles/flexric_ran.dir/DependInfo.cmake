
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ran/base_station.cpp" "src/ran/CMakeFiles/flexric_ran.dir/base_station.cpp.o" "gcc" "src/ran/CMakeFiles/flexric_ran.dir/base_station.cpp.o.d"
  "/root/repo/src/ran/config.cpp" "src/ran/CMakeFiles/flexric_ran.dir/config.cpp.o" "gcc" "src/ran/CMakeFiles/flexric_ran.dir/config.cpp.o.d"
  "/root/repo/src/ran/functions.cpp" "src/ran/CMakeFiles/flexric_ran.dir/functions.cpp.o" "gcc" "src/ran/CMakeFiles/flexric_ran.dir/functions.cpp.o.d"
  "/root/repo/src/ran/rlc.cpp" "src/ran/CMakeFiles/flexric_ran.dir/rlc.cpp.o" "gcc" "src/ran/CMakeFiles/flexric_ran.dir/rlc.cpp.o.d"
  "/root/repo/src/ran/sched.cpp" "src/ran/CMakeFiles/flexric_ran.dir/sched.cpp.o" "gcc" "src/ran/CMakeFiles/flexric_ran.dir/sched.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/agent/CMakeFiles/flexric_agent.dir/DependInfo.cmake"
  "/root/repo/build/src/tc/CMakeFiles/flexric_tc.dir/DependInfo.cmake"
  "/root/repo/build/src/transport/CMakeFiles/flexric_transport.dir/DependInfo.cmake"
  "/root/repo/build/src/e2ap/CMakeFiles/flexric_e2ap.dir/DependInfo.cmake"
  "/root/repo/build/src/codec/CMakeFiles/flexric_codec.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/flexric_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
