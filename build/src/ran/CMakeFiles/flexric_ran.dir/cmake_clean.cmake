file(REMOVE_RECURSE
  "CMakeFiles/flexric_ran.dir/base_station.cpp.o"
  "CMakeFiles/flexric_ran.dir/base_station.cpp.o.d"
  "CMakeFiles/flexric_ran.dir/config.cpp.o"
  "CMakeFiles/flexric_ran.dir/config.cpp.o.d"
  "CMakeFiles/flexric_ran.dir/functions.cpp.o"
  "CMakeFiles/flexric_ran.dir/functions.cpp.o.d"
  "CMakeFiles/flexric_ran.dir/rlc.cpp.o"
  "CMakeFiles/flexric_ran.dir/rlc.cpp.o.d"
  "CMakeFiles/flexric_ran.dir/sched.cpp.o"
  "CMakeFiles/flexric_ran.dir/sched.cpp.o.d"
  "libflexric_ran.a"
  "libflexric_ran.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flexric_ran.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
