file(REMOVE_RECURSE
  "libflexric_ran.a"
)
