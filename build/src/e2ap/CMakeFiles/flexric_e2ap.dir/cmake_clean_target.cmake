file(REMOVE_RECURSE
  "libflexric_e2ap.a"
)
