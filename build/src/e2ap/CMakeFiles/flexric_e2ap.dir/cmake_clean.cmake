file(REMOVE_RECURSE
  "CMakeFiles/flexric_e2ap.dir/flat_codec.cpp.o"
  "CMakeFiles/flexric_e2ap.dir/flat_codec.cpp.o.d"
  "CMakeFiles/flexric_e2ap.dir/messages.cpp.o"
  "CMakeFiles/flexric_e2ap.dir/messages.cpp.o.d"
  "CMakeFiles/flexric_e2ap.dir/per_codec.cpp.o"
  "CMakeFiles/flexric_e2ap.dir/per_codec.cpp.o.d"
  "libflexric_e2ap.a"
  "libflexric_e2ap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flexric_e2ap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
