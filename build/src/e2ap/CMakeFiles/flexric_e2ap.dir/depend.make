# Empty dependencies file for flexric_e2ap.
# This may be replaced when dependencies are built.
