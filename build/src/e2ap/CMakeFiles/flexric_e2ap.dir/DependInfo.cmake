
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/e2ap/flat_codec.cpp" "src/e2ap/CMakeFiles/flexric_e2ap.dir/flat_codec.cpp.o" "gcc" "src/e2ap/CMakeFiles/flexric_e2ap.dir/flat_codec.cpp.o.d"
  "/root/repo/src/e2ap/messages.cpp" "src/e2ap/CMakeFiles/flexric_e2ap.dir/messages.cpp.o" "gcc" "src/e2ap/CMakeFiles/flexric_e2ap.dir/messages.cpp.o.d"
  "/root/repo/src/e2ap/per_codec.cpp" "src/e2ap/CMakeFiles/flexric_e2ap.dir/per_codec.cpp.o" "gcc" "src/e2ap/CMakeFiles/flexric_e2ap.dir/per_codec.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/codec/CMakeFiles/flexric_codec.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/flexric_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
