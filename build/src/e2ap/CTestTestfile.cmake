# CMake generated Testfile for 
# Source directory: /root/repo/src/e2ap
# Build directory: /root/repo/build/src/e2ap
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
