# Empty compiler generated dependencies file for flexric_ctrl.
# This may be replaced when dependencies are built.
