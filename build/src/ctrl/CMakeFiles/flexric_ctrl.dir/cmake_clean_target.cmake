file(REMOVE_RECURSE
  "libflexric_ctrl.a"
)
