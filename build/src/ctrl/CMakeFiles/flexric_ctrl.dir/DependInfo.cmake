
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ctrl/json.cpp" "src/ctrl/CMakeFiles/flexric_ctrl.dir/json.cpp.o" "gcc" "src/ctrl/CMakeFiles/flexric_ctrl.dir/json.cpp.o.d"
  "/root/repo/src/ctrl/monitor.cpp" "src/ctrl/CMakeFiles/flexric_ctrl.dir/monitor.cpp.o" "gcc" "src/ctrl/CMakeFiles/flexric_ctrl.dir/monitor.cpp.o.d"
  "/root/repo/src/ctrl/relay.cpp" "src/ctrl/CMakeFiles/flexric_ctrl.dir/relay.cpp.o" "gcc" "src/ctrl/CMakeFiles/flexric_ctrl.dir/relay.cpp.o.d"
  "/root/repo/src/ctrl/rest.cpp" "src/ctrl/CMakeFiles/flexric_ctrl.dir/rest.cpp.o" "gcc" "src/ctrl/CMakeFiles/flexric_ctrl.dir/rest.cpp.o.d"
  "/root/repo/src/ctrl/slicing.cpp" "src/ctrl/CMakeFiles/flexric_ctrl.dir/slicing.cpp.o" "gcc" "src/ctrl/CMakeFiles/flexric_ctrl.dir/slicing.cpp.o.d"
  "/root/repo/src/ctrl/tc_xapp.cpp" "src/ctrl/CMakeFiles/flexric_ctrl.dir/tc_xapp.cpp.o" "gcc" "src/ctrl/CMakeFiles/flexric_ctrl.dir/tc_xapp.cpp.o.d"
  "/root/repo/src/ctrl/virt.cpp" "src/ctrl/CMakeFiles/flexric_ctrl.dir/virt.cpp.o" "gcc" "src/ctrl/CMakeFiles/flexric_ctrl.dir/virt.cpp.o.d"
  "/root/repo/src/ctrl/xapp_host.cpp" "src/ctrl/CMakeFiles/flexric_ctrl.dir/xapp_host.cpp.o" "gcc" "src/ctrl/CMakeFiles/flexric_ctrl.dir/xapp_host.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/server/CMakeFiles/flexric_server.dir/DependInfo.cmake"
  "/root/repo/build/src/agent/CMakeFiles/flexric_agent.dir/DependInfo.cmake"
  "/root/repo/build/src/transport/CMakeFiles/flexric_transport.dir/DependInfo.cmake"
  "/root/repo/build/src/e2ap/CMakeFiles/flexric_e2ap.dir/DependInfo.cmake"
  "/root/repo/build/src/codec/CMakeFiles/flexric_codec.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/flexric_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
