file(REMOVE_RECURSE
  "CMakeFiles/flexric_ctrl.dir/json.cpp.o"
  "CMakeFiles/flexric_ctrl.dir/json.cpp.o.d"
  "CMakeFiles/flexric_ctrl.dir/monitor.cpp.o"
  "CMakeFiles/flexric_ctrl.dir/monitor.cpp.o.d"
  "CMakeFiles/flexric_ctrl.dir/relay.cpp.o"
  "CMakeFiles/flexric_ctrl.dir/relay.cpp.o.d"
  "CMakeFiles/flexric_ctrl.dir/rest.cpp.o"
  "CMakeFiles/flexric_ctrl.dir/rest.cpp.o.d"
  "CMakeFiles/flexric_ctrl.dir/slicing.cpp.o"
  "CMakeFiles/flexric_ctrl.dir/slicing.cpp.o.d"
  "CMakeFiles/flexric_ctrl.dir/tc_xapp.cpp.o"
  "CMakeFiles/flexric_ctrl.dir/tc_xapp.cpp.o.d"
  "CMakeFiles/flexric_ctrl.dir/virt.cpp.o"
  "CMakeFiles/flexric_ctrl.dir/virt.cpp.o.d"
  "CMakeFiles/flexric_ctrl.dir/xapp_host.cpp.o"
  "CMakeFiles/flexric_ctrl.dir/xapp_host.cpp.o.d"
  "libflexric_ctrl.a"
  "libflexric_ctrl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flexric_ctrl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
