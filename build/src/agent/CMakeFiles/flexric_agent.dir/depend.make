# Empty dependencies file for flexric_agent.
# This may be replaced when dependencies are built.
