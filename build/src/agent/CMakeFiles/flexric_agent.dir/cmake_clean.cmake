file(REMOVE_RECURSE
  "CMakeFiles/flexric_agent.dir/agent.cpp.o"
  "CMakeFiles/flexric_agent.dir/agent.cpp.o.d"
  "libflexric_agent.a"
  "libflexric_agent.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flexric_agent.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
