file(REMOVE_RECURSE
  "libflexric_agent.a"
)
