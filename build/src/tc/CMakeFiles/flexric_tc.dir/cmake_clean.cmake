file(REMOVE_RECURSE
  "CMakeFiles/flexric_tc.dir/chain.cpp.o"
  "CMakeFiles/flexric_tc.dir/chain.cpp.o.d"
  "libflexric_tc.a"
  "libflexric_tc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flexric_tc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
