file(REMOVE_RECURSE
  "libflexric_tc.a"
)
