# Empty compiler generated dependencies file for flexric_tc.
# This may be replaced when dependencies are built.
