
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tc/chain.cpp" "src/tc/CMakeFiles/flexric_tc.dir/chain.cpp.o" "gcc" "src/tc/CMakeFiles/flexric_tc.dir/chain.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/e2ap/CMakeFiles/flexric_e2ap.dir/DependInfo.cmake"
  "/root/repo/build/src/codec/CMakeFiles/flexric_codec.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/flexric_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
