file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9a_two_hop_rtt.dir/bench_fig9a_two_hop_rtt.cpp.o"
  "CMakeFiles/bench_fig9a_two_hop_rtt.dir/bench_fig9a_two_hop_rtt.cpp.o.d"
  "bench_fig9a_two_hop_rtt"
  "bench_fig9a_two_hop_rtt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9a_two_hop_rtt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
