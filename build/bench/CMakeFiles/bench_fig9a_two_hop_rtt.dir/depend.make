# Empty dependencies file for bench_fig9a_two_hop_rtt.
# This may be replaced when dependencies are built.
