file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_slicing.dir/bench_fig13_slicing.cpp.o"
  "CMakeFiles/bench_fig13_slicing.dir/bench_fig13_slicing.cpp.o.d"
  "bench_fig13_slicing"
  "bench_fig13_slicing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_slicing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
