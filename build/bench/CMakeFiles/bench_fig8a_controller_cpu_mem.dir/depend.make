# Empty dependencies file for bench_fig8a_controller_cpu_mem.
# This may be replaced when dependencies are built.
