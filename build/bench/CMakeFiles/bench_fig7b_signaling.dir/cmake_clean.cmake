file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7b_signaling.dir/bench_fig7b_signaling.cpp.o"
  "CMakeFiles/bench_fig7b_signaling.dir/bench_fig7b_signaling.cpp.o.d"
  "bench_fig7b_signaling"
  "bench_fig7b_signaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7b_signaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
