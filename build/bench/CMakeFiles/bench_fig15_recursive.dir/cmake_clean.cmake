file(REMOVE_RECURSE
  "CMakeFiles/bench_fig15_recursive.dir/bench_fig15_recursive.cpp.o"
  "CMakeFiles/bench_fig15_recursive.dir/bench_fig15_recursive.cpp.o.d"
  "bench_fig15_recursive"
  "bench_fig15_recursive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig15_recursive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
