# Empty dependencies file for bench_fig15_recursive.
# This may be replaced when dependencies are built.
