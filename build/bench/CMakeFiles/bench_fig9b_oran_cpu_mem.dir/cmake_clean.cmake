file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9b_oran_cpu_mem.dir/bench_fig9b_oran_cpu_mem.cpp.o"
  "CMakeFiles/bench_fig9b_oran_cpu_mem.dir/bench_fig9b_oran_cpu_mem.cpp.o.d"
  "bench_fig9b_oran_cpu_mem"
  "bench_fig9b_oran_cpu_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9b_oran_cpu_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
