# Empty compiler generated dependencies file for bench_fig9b_oran_cpu_mem.
# This may be replaced when dependencies are built.
