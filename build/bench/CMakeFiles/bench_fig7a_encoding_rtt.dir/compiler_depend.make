# Empty compiler generated dependencies file for bench_fig7a_encoding_rtt.
# This may be replaced when dependencies are built.
