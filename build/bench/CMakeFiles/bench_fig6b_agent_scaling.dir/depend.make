# Empty dependencies file for bench_fig6b_agent_scaling.
# This may be replaced when dependencies are built.
