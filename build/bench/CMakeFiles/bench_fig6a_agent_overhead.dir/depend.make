# Empty dependencies file for bench_fig6a_agent_overhead.
# This may be replaced when dependencies are built.
