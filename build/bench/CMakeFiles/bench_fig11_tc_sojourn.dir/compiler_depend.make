# Empty compiler generated dependencies file for bench_fig11_tc_sojourn.
# This may be replaced when dependencies are built.
