file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_tc_sojourn.dir/bench_fig11_tc_sojourn.cpp.o"
  "CMakeFiles/bench_fig11_tc_sojourn.dir/bench_fig11_tc_sojourn.cpp.o.d"
  "bench_fig11_tc_sojourn"
  "bench_fig11_tc_sojourn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_tc_sojourn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
