# Empty compiler generated dependencies file for bench_fig8b_controller_scaling.
# This may be replaced when dependencies are built.
