
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig8b_controller_scaling.cpp" "bench/CMakeFiles/bench_fig8b_controller_scaling.dir/bench_fig8b_controller_scaling.cpp.o" "gcc" "bench/CMakeFiles/bench_fig8b_controller_scaling.dir/bench_fig8b_controller_scaling.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ctrl/CMakeFiles/flexric_ctrl.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/flexric_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/flows/CMakeFiles/flexric_flows.dir/DependInfo.cmake"
  "/root/repo/build/src/ran/CMakeFiles/flexric_ran.dir/DependInfo.cmake"
  "/root/repo/build/src/tc/CMakeFiles/flexric_tc.dir/DependInfo.cmake"
  "/root/repo/build/src/server/CMakeFiles/flexric_server.dir/DependInfo.cmake"
  "/root/repo/build/src/agent/CMakeFiles/flexric_agent.dir/DependInfo.cmake"
  "/root/repo/build/src/e2ap/CMakeFiles/flexric_e2ap.dir/DependInfo.cmake"
  "/root/repo/build/src/transport/CMakeFiles/flexric_transport.dir/DependInfo.cmake"
  "/root/repo/build/src/codec/CMakeFiles/flexric_codec.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/flexric_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
