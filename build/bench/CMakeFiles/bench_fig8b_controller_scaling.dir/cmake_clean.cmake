file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8b_controller_scaling.dir/bench_fig8b_controller_scaling.cpp.o"
  "CMakeFiles/bench_fig8b_controller_scaling.dir/bench_fig8b_controller_scaling.cpp.o.d"
  "bench_fig8b_controller_scaling"
  "bench_fig8b_controller_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8b_controller_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
