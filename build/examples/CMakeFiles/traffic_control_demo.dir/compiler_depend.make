# Empty compiler generated dependencies file for traffic_control_demo.
# This may be replaced when dependencies are built.
