file(REMOVE_RECURSE
  "CMakeFiles/traffic_control_demo.dir/traffic_control_demo.cpp.o"
  "CMakeFiles/traffic_control_demo.dir/traffic_control_demo.cpp.o.d"
  "traffic_control_demo"
  "traffic_control_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/traffic_control_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
