# Empty dependencies file for slicing_demo.
# This may be replaced when dependencies are built.
