file(REMOVE_RECURSE
  "CMakeFiles/slicing_demo.dir/slicing_demo.cpp.o"
  "CMakeFiles/slicing_demo.dir/slicing_demo.cpp.o.d"
  "slicing_demo"
  "slicing_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/slicing_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
