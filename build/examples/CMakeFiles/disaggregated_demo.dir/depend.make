# Empty dependencies file for disaggregated_demo.
# This may be replaced when dependencies are built.
