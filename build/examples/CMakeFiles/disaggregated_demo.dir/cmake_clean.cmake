file(REMOVE_RECURSE
  "CMakeFiles/disaggregated_demo.dir/disaggregated_demo.cpp.o"
  "CMakeFiles/disaggregated_demo.dir/disaggregated_demo.cpp.o.d"
  "disaggregated_demo"
  "disaggregated_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/disaggregated_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
