file(REMOVE_RECURSE
  "CMakeFiles/recursive_demo.dir/recursive_demo.cpp.o"
  "CMakeFiles/recursive_demo.dir/recursive_demo.cpp.o.d"
  "recursive_demo"
  "recursive_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/recursive_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
