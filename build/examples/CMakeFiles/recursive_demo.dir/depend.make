# Empty dependencies file for recursive_demo.
# This may be replaced when dependencies are built.
