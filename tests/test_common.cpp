// Unit tests for src/common: buffers, bit I/O, results, metrics, RNG.
#include <gtest/gtest.h>

#include <limits>

#include "common/bit_io.hpp"
#include "common/buffer.hpp"
#include "common/clock.hpp"
#include "common/metrics.hpp"
#include "common/result.hpp"
#include "common/rng.hpp"

namespace flexric {
namespace {

// ---------------------------------------------------------------------------
// Result / Status
// ---------------------------------------------------------------------------

TEST(Result, OkHoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.is_ok());
  EXPECT_EQ(*r, 42);
}

TEST(Result, ErrorPropagates) {
  Result<int> r = Error{Errc::truncated, "oops"};
  ASSERT_FALSE(r.is_ok());
  EXPECT_EQ(r.error().code, Errc::truncated);
  EXPECT_EQ(r.error().message, "oops");
  EXPECT_EQ(r.status().to_string(), "truncated: oops");
}

TEST(Status, DefaultIsOk) {
  Status st;
  EXPECT_TRUE(st.is_ok());
  EXPECT_EQ(st.to_string(), "ok");
}

TEST(Status, ErrcNamesAreStable) {
  EXPECT_STREQ(errc_name(Errc::ok), "ok");
  EXPECT_STREQ(errc_name(Errc::malformed), "malformed");
  EXPECT_STREQ(errc_name(Errc::capacity), "capacity");
}

// ---------------------------------------------------------------------------
// BufWriter / BufReader
// ---------------------------------------------------------------------------

TEST(Buffer, ScalarRoundTrip) {
  BufWriter w;
  w.u8(0xAB);
  w.u16(0x1234);
  w.u32(0xDEADBEEF);
  w.u64(0x0123456789ABCDEFULL);
  w.i64(-42);
  w.f64(3.25);
  Buffer buf = w.take();
  BufReader r(buf);
  EXPECT_EQ(*r.u8(), 0xAB);
  EXPECT_EQ(*r.u16(), 0x1234);
  EXPECT_EQ(*r.u32(), 0xDEADBEEFu);
  EXPECT_EQ(*r.u64(), 0x0123456789ABCDEFULL);
  EXPECT_EQ(*r.i64(), -42);
  EXPECT_EQ(*r.f64(), 3.25);
  EXPECT_TRUE(r.at_end());
}

TEST(Buffer, BigEndianRoundTrip) {
  BufWriter w;
  w.u16_be(0x1234);
  w.u32_be(0xCAFEBABE);
  Buffer buf = w.take();
  EXPECT_EQ(buf[0], 0x12);  // actually big-endian on the wire
  BufReader r(buf);
  EXPECT_EQ(*r.u16_be(), 0x1234);
  EXPECT_EQ(*r.u32_be(), 0xCAFEBABEu);
}

TEST(Buffer, ReadPastEndIsError) {
  Buffer buf{1, 2};
  BufReader r(buf);
  EXPECT_TRUE(r.u16().is_ok());
  auto res = r.u8();
  ASSERT_FALSE(res.is_ok());
  EXPECT_EQ(res.error().code, Errc::truncated);
}

TEST(Buffer, VarintRoundTripBoundaries) {
  for (std::uint64_t v :
       {0ULL, 1ULL, 127ULL, 128ULL, 16383ULL, 16384ULL, 0xFFFFFFFFULL,
        0xFFFFFFFFFFFFFFFFULL}) {
    BufWriter w;
    w.uvarint(v);
    Buffer buf = w.take();
    BufReader r(buf);
    EXPECT_EQ(*r.uvarint(), v) << v;
  }
}

TEST(Buffer, SignedVarintRoundTrip) {
  for (std::int64_t v : std::initializer_list<std::int64_t>{0, -1, 1, -64, 64, INT64_MIN, INT64_MAX}) {
    BufWriter w;
    w.svarint(v);
    Buffer buf = w.take();
    BufReader r(buf);
    EXPECT_EQ(*r.svarint(), v) << v;
  }
}

TEST(Buffer, VarintOverlongIsMalformed) {
  Buffer buf(11, 0x80);  // 11 continuation bytes, never terminates
  BufReader r(buf);
  auto res = r.uvarint();
  ASSERT_FALSE(res.is_ok());
}

TEST(Buffer, LengthPrefixedBytesAndStrings) {
  BufWriter w;
  w.lp_string("hello");
  Buffer payload{9, 8, 7};
  w.lp_bytes(payload);
  Buffer buf = w.take();
  BufReader r(buf);
  EXPECT_EQ(*r.lp_string(), "hello");
  auto b = r.lp_bytes();
  ASSERT_TRUE(b.is_ok());
  EXPECT_EQ(Buffer(b->begin(), b->end()), payload);
}

TEST(Buffer, PatchU32) {
  BufWriter w;
  std::size_t off = w.skip(4);
  w.u8(0xFF);
  w.patch_u32(off, 0xABCD1234);
  Buffer buf = w.take();
  BufReader r(buf);
  EXPECT_EQ(*r.u32(), 0xABCD1234u);
}

TEST(Buffer, HexDump) {
  Buffer buf{0x00, 0xFF, 0x5A};
  EXPECT_EQ(to_hex(buf), "00ff5a");
}

// ---------------------------------------------------------------------------
// Bit I/O
// ---------------------------------------------------------------------------

TEST(BitIo, SingleBits) {
  BitWriter w;
  w.bit(true);
  w.bit(false);
  w.bit(true);
  Buffer buf = w.take();
  BitReader r(buf);
  EXPECT_TRUE(*r.bit());
  EXPECT_FALSE(*r.bit());
  EXPECT_TRUE(*r.bit());
}

TEST(BitIo, CrossByteBoundary) {
  BitWriter w;
  w.bits(0x3FF, 10);  // 10 bits spanning two bytes
  w.bits(0x5, 3);
  Buffer buf = w.take();
  BitReader r(buf);
  EXPECT_EQ(*r.bits(10), 0x3FFu);
  EXPECT_EQ(*r.bits(3), 0x5u);
}

TEST(BitIo, SixtyFourBitValues) {
  BitWriter w;
  w.bits(0xFEDCBA9876543210ULL, 64);
  Buffer buf = w.take();
  BitReader r(buf);
  EXPECT_EQ(*r.bits(64), 0xFEDCBA9876543210ULL);
}

TEST(BitIo, SixtyFourBitBoundaryUnaligned) {
  // A full 64-bit field crossing byte boundaries: the widest legal width
  // combined with the worst alignment (shift-count UB regression test).
  BitWriter w;
  w.bits(0b101, 3);
  w.bits(~std::uint64_t{0}, 64);
  w.bits(0x1, 1);
  Buffer buf = w.take();
  BitReader r(buf);
  EXPECT_EQ(*r.bits(3), 0b101u);
  EXPECT_EQ(*r.bits(64), ~std::uint64_t{0});
  EXPECT_EQ(*r.bits(1), 0x1u);
}

TEST(BitIo, ZeroBitFieldsWriteAndReadNothing) {
  BitWriter w;
  w.bits(0xFFFF, 0);  // value is ignored entirely
  EXPECT_EQ(w.bit_size(), 0u);
  w.bits(0b11, 2);
  w.bits(0x123, 0);
  Buffer buf = w.take();
  EXPECT_EQ(buf.size(), 1u);
  BitReader r(buf);
  EXPECT_EQ(*r.bits(0), 0u);
  EXPECT_EQ(*r.bits(2), 0b11u);
  EXPECT_EQ(*r.bits(0), 0u);
  EXPECT_EQ(r.bits_remaining(), 6u);
}

TEST(BitIo, LowBitsMaskBoundaries) {
  EXPECT_EQ(low_bits_mask(0), 0u);
  EXPECT_EQ(low_bits_mask(1), 1u);
  EXPECT_EQ(low_bits_mask(63), ~std::uint64_t{0} >> 1);
  EXPECT_EQ(low_bits_mask(64), ~std::uint64_t{0});
}

TEST(BitIo, ReaderRejectsWidthsAbove64) {
  Buffer buf(16, 0xFF);
  BitReader r(buf);
  auto res = r.bits(65);  // width could come from corrupted wire data
  ASSERT_FALSE(res.is_ok());
  EXPECT_EQ(res.error().code, Errc::out_of_range);
  // The reader is still usable afterwards.
  EXPECT_EQ(*r.bits(8), 0xFFu);
}

TEST(BitIo, AlignmentPadsWithZeros) {
  BitWriter w;
  w.bits(0b101, 3);
  w.align();
  w.bits(0xAB, 8);
  Buffer buf = w.take();
  ASSERT_EQ(buf.size(), 2u);
  EXPECT_EQ(buf[0], 0b10100000);
  EXPECT_EQ(buf[1], 0xAB);
  BitReader r(buf);
  EXPECT_EQ(*r.bits(3), 0b101u);
  r.align();
  EXPECT_EQ(*r.bits(8), 0xABu);
}

TEST(BitIo, ReadPastEndFails) {
  Buffer buf{0xFF};
  BitReader r(buf);
  EXPECT_TRUE(r.bits(8).is_ok());
  EXPECT_FALSE(r.bits(1).is_ok());
}

TEST(BitIo, BytesRequireAlignment) {
  BitWriter w;
  w.bits(0xAA, 8);
  Buffer data{1, 2, 3};
  ASSERT_TRUE(w.bytes(data).is_ok());
  Buffer buf = w.take();
  BitReader r(buf);
  EXPECT_EQ(*r.bits(8), 0xAAu);
  auto b = r.bytes(3);
  ASSERT_TRUE(b.is_ok());
  EXPECT_EQ(Buffer(b->begin(), b->end()), data);
}

TEST(BitIo, UnalignedBytesIsRecoverableError) {
  // Formerly an abort; malformed wire input must never take the process down.
  BitWriter w;
  w.bit(true);
  Buffer data{1, 2, 3};
  Status st = w.bytes(data);
  ASSERT_FALSE(st.is_ok());
  EXPECT_EQ(st.code(), Errc::malformed);
  w.align();
  EXPECT_TRUE(w.bytes(data).is_ok());

  Buffer buf = w.take();
  BitReader r(buf);
  ASSERT_TRUE(r.bit().is_ok());  // now mid-byte
  auto b = r.bytes(1);
  ASSERT_FALSE(b.is_ok());
  EXPECT_EQ(b.error().code, Errc::malformed);
  r.align();
  EXPECT_TRUE(r.bytes(3).is_ok());
}

TEST(BitIo, BitsForRange) {
  EXPECT_EQ(bits_for_range(1), 0u);
  EXPECT_EQ(bits_for_range(2), 1u);
  EXPECT_EQ(bits_for_range(3), 2u);
  EXPECT_EQ(bits_for_range(256), 8u);
  EXPECT_EQ(bits_for_range(257), 9u);
}

/// Property: any random bit pattern round-trips.
class BitIoFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BitIoFuzz, RandomPatternsRoundTrip) {
  Rng rng(GetParam());
  std::vector<std::pair<std::uint64_t, unsigned>> fields;
  BitWriter w;
  for (int i = 0; i < 100; ++i) {
    unsigned nbits = 1 + static_cast<unsigned>(rng.bounded(64));
    std::uint64_t v = rng.next();
    if (nbits < 64) v &= (1ULL << nbits) - 1;
    fields.emplace_back(v, nbits);
    w.bits(v, nbits);
  }
  Buffer buf = w.take();
  BitReader r(buf);
  for (auto [v, nbits] : fields) {
    auto got = r.bits(nbits);
    ASSERT_TRUE(got.is_ok());
    EXPECT_EQ(*got, v);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BitIoFuzz,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

// ---------------------------------------------------------------------------
// Metrics
// ---------------------------------------------------------------------------

TEST(Histogram, BasicStats) {
  Histogram h;
  for (double v : {1.0, 2.0, 3.0, 4.0, 5.0}) h.record(v);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_DOUBLE_EQ(h.mean(), 3.0);
  EXPECT_DOUBLE_EQ(h.min(), 1.0);
  EXPECT_DOUBLE_EQ(h.max(), 5.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 3.0);
}

TEST(Histogram, EmptyIsZero) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.mean(), 0.0);
  EXPECT_EQ(h.min(), 0.0);
  EXPECT_EQ(h.max(), 0.0);
  EXPECT_EQ(h.quantile(0.0), 0.0);
  EXPECT_EQ(h.quantile(0.9), 0.0);
  EXPECT_EQ(h.quantile(1.0), 0.0);
  EXPECT_EQ(h.quantile(std::numeric_limits<double>::quiet_NaN()), 0.0);
  EXPECT_TRUE(h.cdf().empty());
  EXPECT_TRUE(h.cdf(0).empty());
}

TEST(Histogram, EmptyAfterClearIsZero) {
  Histogram h;
  h.record(7.0);
  h.clear();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.mean(), 0.0);
  EXPECT_EQ(h.min(), 0.0);
  EXPECT_EQ(h.max(), 0.0);
  EXPECT_EQ(h.quantile(0.5), 0.0);
  EXPECT_TRUE(h.cdf().empty());
}

TEST(Histogram, QuantileClampsAndRejectsNan) {
  Histogram h;
  for (double v : {1.0, 2.0, 3.0}) h.record(v);
  EXPECT_DOUBLE_EQ(h.quantile(-0.5), 1.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.5), 3.0);
  // NaN must not flow into the index computation; treated as q = 0.
  EXPECT_DOUBLE_EQ(h.quantile(std::numeric_limits<double>::quiet_NaN()), 1.0);
}

TEST(Histogram, ReservePreallocatesWithoutRecording) {
  Histogram h;
  h.reserve(1000);
  EXPECT_EQ(h.count(), 0u);
  EXPECT_GE(h.samples().capacity(), 1000u);
  h.record(2.5);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_DOUBLE_EQ(h.mean(), 2.5);
}

TEST(Histogram, CdfWithZeroPointsIsEmptyEvenWithSamples) {
  Histogram h;
  h.record(1.0);
  EXPECT_TRUE(h.cdf(0).empty());
}

TEST(Histogram, CdfIsMonotone) {
  Histogram h;
  Rng rng(99);
  for (int i = 0; i < 1000; ++i) h.record(rng.uniform(0, 100));
  auto cdf = h.cdf(50);
  ASSERT_EQ(cdf.size(), 50u);
  for (std::size_t i = 1; i < cdf.size(); ++i) {
    EXPECT_GE(cdf[i].first, cdf[i - 1].first);
    EXPECT_GT(cdf[i].second, cdf[i - 1].second);
  }
  EXPECT_DOUBLE_EQ(cdf.back().second, 1.0);
}

TEST(RateMeter, MbpsComputation) {
  RateMeter m;
  m.record(125'000);  // 1 Mbit
  EXPECT_DOUBLE_EQ(m.mbps(kSecond), 1.0);
  EXPECT_DOUBLE_EQ(m.mbps(kSecond / 2), 2.0);
}

TEST(CpuMeter, MeasuresBusyWork) {
  CpuMeter meter;
  meter.start();
  volatile double x = 1.0;
  for (int i = 0; i < 2'000'000; ++i) x = x * 1.0000001;
  meter.stop();
  EXPECT_GT(meter.cpu_nanos(), 0);
  EXPECT_GT(meter.wall_nanos(), 0);
  EXPECT_GT(meter.cpu_percent(), 1.0);
}

TEST(VirtualClock, AdvancesDeterministically) {
  VirtualClock clock;
  EXPECT_EQ(clock.now(), 0);
  clock.advance(kMilli);
  clock.advance(kMilli);
  EXPECT_EQ(clock.now(), 2 * kMilli);
  clock.set(kSecond);
  EXPECT_EQ(clock.now(), kSecond);
}

TEST(Clocks, MonotoneAndRssAvailable) {
  Nanos a = mono_now();
  Nanos b = mono_now();
  EXPECT_GE(b, a);
  EXPECT_GT(rss_bytes(), 0u);
}

// ---------------------------------------------------------------------------
// RNG
// ---------------------------------------------------------------------------

TEST(Rng, DeterministicForSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i)
    if (a.next() == b.next()) ++same;
  EXPECT_LT(same, 3);
}

TEST(Rng, UniformInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    double v = rng.uniform(2.0, 5.0);
    EXPECT_GE(v, 2.0);
    EXPECT_LT(v, 5.0);
  }
}

TEST(Rng, BoundedRespectsBound) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.bounded(17), 17u);
  EXPECT_EQ(rng.bounded(0), 0u);
}

TEST(Rng, ChanceExtremes) {
  Rng rng(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

}  // namespace
}  // namespace flexric
