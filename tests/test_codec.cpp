// Unit + property tests for the three wire codecs (PER, FLAT, PROTO).
#include <gtest/gtest.h>

#include "codec/flat.hpp"
#include "codec/per.hpp"
#include "codec/proto.hpp"
#include "common/rng.hpp"
#include "e2ap/codec.hpp"

namespace flexric {
namespace {

// ---------------------------------------------------------------------------
// PER primitives
// ---------------------------------------------------------------------------

TEST(Per, ConstrainedSingleValueEncodesNothing) {
  PerWriter w;
  w.constrained(7, 7, 7);
  Buffer buf = w.take();
  EXPECT_TRUE(buf.empty());
  PerReader r(buf);
  EXPECT_EQ(*r.constrained(7, 7), 7u);
}

TEST(Per, ConstrainedSmallRangeUsesMinimalBits) {
  PerWriter w;
  w.constrained(5, 0, 7);  // 3 bits
  w.constrained(1, 0, 1);  // 1 bit
  EXPECT_EQ(w.bit_size(), 4u);
  Buffer buf = w.take();
  PerReader r(buf);
  EXPECT_EQ(*r.constrained(0, 7), 5u);
  EXPECT_EQ(*r.constrained(0, 1), 1u);
}

TEST(Per, ConstrainedTwoOctetRangeAligns) {
  PerWriter w;
  w.boolean(true);  // force misalignment
  w.constrained(0x1234, 0, 65535);
  Buffer buf = w.take();
  PerReader r(buf);
  EXPECT_TRUE(*r.boolean());
  EXPECT_EQ(*r.constrained(0, 65535), 0x1234u);
}

TEST(Per, ConstrainedLargeRange) {
  for (std::uint64_t v : {0ULL, 255ULL, 256ULL, 0xFFFFFFULL, 0xFFFFFFFFULL}) {
    PerWriter w;
    w.constrained(v, 0, 0xFFFFFFFF);
    Buffer buf = w.take();
    PerReader r(buf);
    EXPECT_EQ(*r.constrained(0, 0xFFFFFFFF), v) << v;
  }
}

TEST(Per, ConstrainedWithNonZeroLowerBound) {
  PerWriter w;
  w.constrained(150, 100, 200);
  Buffer buf = w.take();
  PerReader r(buf);
  EXPECT_EQ(*r.constrained(100, 200), 150u);
}

TEST(Per, DecodedValueOutOfRangeIsRejected) {
  PerWriter w;
  w.constrained(250, 0, 255);  // 8 bits: value 250
  Buffer buf = w.take();
  PerReader r(buf);
  // Decode with range [0,200]: same 8-bit width, but 250 exceeds the range.
  auto res = r.constrained(0, 200);
  ASSERT_FALSE(res.is_ok());
  EXPECT_EQ(res.error().code, Errc::out_of_range);
}

TEST(Per, SemiConstrainedRoundTrip) {
  for (std::uint64_t v : {10ULL, 255ULL, 256ULL, 1ULL << 40}) {
    PerWriter w;
    w.semi_constrained(v, 10);
    Buffer buf = w.take();
    PerReader r(buf);
    EXPECT_EQ(*r.semi_constrained(10), v) << v;
  }
}

TEST(Per, SignedIntegerRoundTrip) {
  for (std::int64_t v : std::initializer_list<std::int64_t>{
           0, 1, -1, 127, 128, -128, -129, INT64_MAX, INT64_MIN}) {
    PerWriter w;
    w.integer(v);
    Buffer buf = w.take();
    PerReader r(buf);
    EXPECT_EQ(*r.integer(), v) << v;
  }
}

TEST(Per, LengthDeterminantForms) {
  for (std::size_t n : {0u, 1u, 127u, 128u, 500u, 16383u}) {
    PerWriter w;
    w.length(n);
    Buffer buf = w.take();
    PerReader r(buf);
    EXPECT_EQ(*r.length(), n) << n;
  }
}

TEST(Per, ShortLengthIsOneByte) {
  PerWriter w;
  w.length(127);
  EXPECT_EQ(w.take().size(), 1u);
  PerWriter w2;
  w2.length(128);
  EXPECT_EQ(w2.take().size(), 2u);
}

TEST(Per, OctetStringRoundTrip) {
  Buffer payload(300, 0x5A);
  PerWriter w;
  w.octets(payload);
  Buffer buf = w.take();
  PerReader r(buf);
  auto got = r.octets();
  ASSERT_TRUE(got.is_ok());
  EXPECT_EQ(Buffer(got->begin(), got->end()), payload);
}

TEST(Per, StringAndRealAndPresence) {
  PerWriter w;
  w.str("flexric");
  w.real(2.71828);
  w.presence({true, false, true});
  Buffer buf = w.take();
  PerReader r(buf);
  EXPECT_EQ(*r.str(), "flexric");
  EXPECT_DOUBLE_EQ(*r.real(), 2.71828);
  auto pres = r.presence(3);
  ASSERT_TRUE(pres.is_ok());
  EXPECT_EQ(*pres, (std::vector<bool>{true, false, true}));
}

TEST(Per, TruncatedInputFailsCleanly) {
  PerWriter w;
  w.octets(Buffer(100, 1));
  Buffer buf = w.take();
  buf.resize(buf.size() / 2);
  PerReader r(buf);
  EXPECT_FALSE(r.octets().is_ok());
}

class PerFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PerFuzz, MixedFieldsRoundTrip) {
  Rng rng(GetParam());
  // Generate a random schedule of typed fields, encode, decode, compare.
  struct Field {
    int kind;
    std::uint64_t u;
    std::int64_t i;
    std::uint64_t lo, hi;
  };
  std::vector<Field> fields;
  PerWriter w;
  for (int n = 0; n < 60; ++n) {
    Field f{};
    f.kind = static_cast<int>(rng.bounded(4));
    switch (f.kind) {
      case 0: {
        f.lo = rng.bounded(1000);
        f.hi = f.lo + 1 + rng.bounded(1'000'000);
        f.u = f.lo + rng.bounded(f.hi - f.lo + 1);
        w.constrained(f.u, f.lo, f.hi);
        break;
      }
      case 1:
        f.u = rng.next() >> static_cast<int>(rng.bounded(40));
        w.semi_constrained(f.u, 0);
        break;
      case 2:
        f.i = static_cast<std::int64_t>(rng.next());
        w.integer(f.i);
        break;
      case 3:
        f.u = rng.bounded(2);
        w.boolean(f.u != 0);
        break;
    }
    fields.push_back(f);
  }
  Buffer buf = w.take();
  PerReader r(buf);
  for (const Field& f : fields) {
    switch (f.kind) {
      case 0: EXPECT_EQ(*r.constrained(f.lo, f.hi), f.u); break;
      case 1: EXPECT_EQ(*r.semi_constrained(0), f.u); break;
      case 2: EXPECT_EQ(*r.integer(), f.i); break;
      case 3: EXPECT_EQ(*r.boolean(), f.u != 0); break;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PerFuzz,
                         ::testing::Values(11, 22, 33, 44, 55, 66));

// ---------------------------------------------------------------------------
// FLAT primitives
// ---------------------------------------------------------------------------

TEST(Flat, ScalarAndVarRoundTrip) {
  FlatWriter w;
  w.u8(7);
  w.u32(0xCAFE);
  Buffer blob{1, 2, 3, 4};
  w.var_bytes(blob);
  w.f64(1.5);
  w.var_string("zero-copy");
  Buffer wire = w.finish();

  auto view = FlatView::parse(wire);
  ASSERT_TRUE(view.is_ok());
  EXPECT_EQ(*view->u8(), 7);
  EXPECT_EQ(*view->u32(), 0xCAFEu);
  auto b = view->var_bytes();
  ASSERT_TRUE(b.is_ok());
  EXPECT_EQ(Buffer(b->begin(), b->end()), blob);
  EXPECT_DOUBLE_EQ(*view->f64(), 1.5);
  EXPECT_EQ(*view->var_string(), "zero-copy");
}

TEST(Flat, VarBytesAreViewsIntoWire) {
  FlatWriter w;
  Buffer blob{9, 9, 9};
  w.var_bytes(blob);
  Buffer wire = w.finish();
  auto view = FlatView::parse(wire);
  auto b = view->var_bytes();
  ASSERT_TRUE(b.is_ok());
  // Zero-copy: the returned span points into the wire buffer.
  EXPECT_GE(b->data(), wire.data());
  EXPECT_LT(b->data(), wire.data() + wire.size());
}

TEST(Flat, EmptyVarField) {
  FlatWriter w;
  w.var_bytes({});
  Buffer wire = w.finish();
  auto view = FlatView::parse(wire);
  auto b = view->var_bytes();
  ASSERT_TRUE(b.is_ok());
  EXPECT_TRUE(b->empty());
}

TEST(Flat, TruncatedHeaderRejected) {
  Buffer wire{1, 2};
  EXPECT_FALSE(FlatView::parse(wire).is_ok());
}

TEST(Flat, CorruptFixedSizeRejected) {
  FlatWriter w;
  w.u32(1);
  Buffer wire = w.finish();
  wire[0] = 0xFF;  // fixed_size now exceeds the table
  wire[1] = 0xFF;
  EXPECT_FALSE(FlatView::parse(wire).is_ok());
}

TEST(Flat, CorruptVarOffsetRejected) {
  FlatWriter w;
  w.var_bytes(Buffer{1, 2, 3});
  Buffer wire = w.finish();
  // Slot layout: [4B size prefix][4B offset][4B len]... corrupt the offset.
  wire[4] = 0xFF;
  wire[5] = 0xFF;
  auto view = FlatView::parse(wire);
  ASSERT_TRUE(view.is_ok());
  EXPECT_FALSE(view->var_bytes().is_ok());
}

TEST(Flat, ScalarPastFixedRegionRejected) {
  FlatWriter w;
  w.u8(1);
  Buffer wire = w.finish();
  auto view = FlatView::parse(wire);
  EXPECT_TRUE(view->u8().is_ok());
  EXPECT_FALSE(view->u8().is_ok());
}

TEST(Flat, OverheadIsSmallAndFixed) {
  // The paper observes 30-40 B FlatBuffers overhead per message; our table
  // costs 4 (size prefix) + 8 per var field.
  FlatWriter w;
  Buffer payload(100, 0xAA);
  w.u32(1);
  w.var_bytes(payload);
  Buffer wire = w.finish();
  EXPECT_EQ(wire.size(), 4u + 4u + 8u + 100u);
}

// ---------------------------------------------------------------------------
// PROTO primitives
// ---------------------------------------------------------------------------

TEST(Proto, FieldRoundTrip) {
  ProtoWriter w;
  w.field_u64(1, 300);
  w.field_i64(2, -5);
  w.field_string(3, "proto");
  w.field_f64(4, 9.75);
  w.field_bool(5, true);
  Buffer wire = w.take();

  ProtoReader r(wire);
  auto f1 = r.next();
  ASSERT_TRUE(f1.is_ok());
  EXPECT_EQ(f1->number, 1u);
  EXPECT_EQ(f1->varint, 300u);
  auto f2 = r.next();
  EXPECT_EQ(ProtoReader::as_i64(*f2), -5);
  auto f3 = r.next();
  EXPECT_EQ(ProtoReader::as_string(*f3), "proto");
  auto f4 = r.next();
  EXPECT_DOUBLE_EQ(*ProtoReader::as_f64(*f4), 9.75);
  auto f5 = r.next();
  EXPECT_EQ(f5->varint, 1u);
  EXPECT_TRUE(r.at_end());
}

TEST(Proto, CleanEndReportsNotFound) {
  ProtoWriter w;
  w.field_u64(1, 1);
  Buffer wire = w.take();
  ProtoReader r(wire);
  EXPECT_TRUE(r.next().is_ok());
  auto end = r.next();
  ASSERT_FALSE(end.is_ok());
  EXPECT_EQ(end.error().code, Errc::not_found);
}

TEST(Proto, UnknownWireTypeRejected) {
  Buffer wire{(1 << 3) | 5};  // wire type 5 unused
  ProtoReader r(wire);
  auto f = r.next();
  ASSERT_FALSE(f.is_ok());
  EXPECT_EQ(f.error().code, Errc::unsupported);
}

TEST(Proto, NestedMessages) {
  ProtoWriter child;
  child.field_u64(1, 99);
  Buffer child_wire = child.take();
  ProtoWriter parent;
  parent.field_message(7, child_wire);
  Buffer wire = parent.take();

  ProtoReader r(wire);
  auto f = r.next();
  ASSERT_TRUE(f.is_ok());
  EXPECT_EQ(f->number, 7u);
  ProtoReader inner(f->bytes);
  auto g = inner.next();
  EXPECT_EQ(g->varint, 99u);
}

// ---------------------------------------------------------------------------
// Cross-codec size ordering (the premise of Fig. 7)
// ---------------------------------------------------------------------------

TEST(CodecComparison, PerIsSmallerThanFlatForStructuredData) {
  // Encode the same 8 small fields in both codecs.
  PerWriter per;
  FlatWriter flat;
  for (std::uint32_t i = 0; i < 8; ++i) {
    per.constrained(i, 0, 255);
    flat.u8(static_cast<std::uint8_t>(i));
  }
  Buffer per_wire = per.take();
  Buffer flat_wire = flat.finish();
  EXPECT_LT(per_wire.size(), flat_wire.size());
}

// ---------------------------------------------------------------------------
// Adversarial E2AP frame corpus
//
// Table-driven corruption of real Setup / Subscription / Indication frames.
// Each mutation targets a structural byte chosen so that decode MUST return
// an error Result in the targeted codec — never a crash, never a bogus
// success. The SM payload buffers are sized to exactly 100 bytes so the
// PER length determinant of the frame's trailing octet string sits at a
// known offset (size - 101) regardless of what precedes it.
// ---------------------------------------------------------------------------

e2ap::Msg sample_setup_request() {
  e2ap::SetupRequest m;
  m.trans_id = 7;
  m.node = {0x00F110, 0x1A2B, e2ap::NodeType::gnb};
  e2ap::RanFunctionItem fn;
  fn.id = 142;
  fn.revision = 3;
  fn.name = "ORAN-E2SM-MAC-STATS";
  fn.definition = Buffer(100, 0xD0);  // tail octet string
  m.ran_functions.push_back(std::move(fn));
  return m;
}

e2ap::Msg sample_subscription_request() {
  e2ap::SubscriptionRequest m;
  m.request = {21, 4};
  m.ran_function_id = 142;
  m.event_trigger = Buffer{5, 0, 0, 10};
  e2ap::Action a;
  a.id = 1;
  a.type = e2ap::ActionType::report;
  a.definition = Buffer(100, 0x5C);  // tail octet string
  m.actions.push_back(std::move(a));
  return m;
}

e2ap::Msg sample_indication() {
  e2ap::Indication m;
  m.request = {21, 4};
  m.ran_function_id = 142;
  m.action_id = 1;
  m.sn = 4242;
  m.type = e2ap::ActionType::report;
  m.header = Buffer{1, 2, 3, 4};
  m.message = Buffer(100, 0xEE);  // tail octet string (call_process_id absent)
  m.call_process_id = std::nullopt;
  return m;
}

// Mutations. Offsets they rely on:
//   PER:  tag = top 5 bits of byte 0 (constrained 0..20); the trailing
//         100-byte octet string's 1-byte length determinant is at size-101.
//         0xFF there reads as a fragmented determinant (unsupported); 0xBF
//         reads as a ~16 KiB long-form length (truncated).
//   FLAT: [4B LE size prefix = fixed-region size][fixed region, tag first]
//         [var data]. 0xFF in prefix byte 3 inflates the region past the
//         wire; prefix-1 shrinks it so the last fixed-region read runs out.
void drop_half(Buffer& b) { b.resize(b.size() / 2); }
void drop_last(Buffer& b) { b.pop_back(); }
void drop_all(Buffer& b) { b.clear(); }
void per_tag_out_of_range(Buffer& b) { b[0] |= 0xF8; }
void per_length_fragmented(Buffer& b) { b[b.size() - 101] = 0xFF; }
void per_length_overruns(Buffer& b) { b[b.size() - 101] = 0xBF; }
void flat_tag_out_of_range(Buffer& b) { b[4] = 0xFF; }
void flat_prefix_inflated(Buffer& b) { b[3] = 0xFF; }
void flat_prefix_shrunk(Buffer& b) { b[0] -= 1; }

// List-count inflation (wire-taint regression frames). A forged element
// count must be rejected by the codec's count-vs-remaining-payload guard,
// not chew through the loop until the reader runs dry. Offsets:
//   PER subscription: tag 5 bits, req-id 2x2 aligned octets (bytes 1-4),
//     ran-function-id 2 aligned octets (5-6), event-trigger len det (7) +
//     4 bytes (8-11) => action-count length determinant at byte 12. 0x7F
//     claims 127 actions in a ~100-byte tail.
//   FLAT subscription: the actions var blob is the frame tail:
//     u32 count + [u8 id, u8 type, lp definition(1+100)] = 107 bytes, so
//     the count's high LE byte sits at size-104.
//   FLAT setup: ran-functions var blob is the tail: u32 count +
//     [u16 id, u16 rev, lp name(1+19), lp definition(1+100)] = 129 bytes,
//     so the count's high LE byte sits at size-126.
void per_action_count_inflated(Buffer& b) { b[12] = 0x7F; }
void flat_action_count_inflated(Buffer& b) { b[b.size() - 104] = 0xFF; }
void flat_ran_fn_count_inflated(Buffer& b) { b[b.size() - 126] = 0xFF; }

struct AdversarialCase {
  const char* name;
  WireFormat format;
  e2ap::Msg (*make)();
  void (*mutate)(Buffer&);
};

constexpr WireFormat kPer = WireFormat::per;
constexpr WireFormat kFlat = WireFormat::flat;

const AdversarialCase kAdversarialCorpus[] = {
    // PER, truncation
    {"per/setup/drop_half", kPer, sample_setup_request, drop_half},
    {"per/setup/drop_last", kPer, sample_setup_request, drop_last},
    {"per/setup/empty", kPer, sample_setup_request, drop_all},
    {"per/subscription/drop_half", kPer, sample_subscription_request,
     drop_half},
    {"per/subscription/drop_last", kPer, sample_subscription_request,
     drop_last},
    {"per/indication/drop_half", kPer, sample_indication, drop_half},
    {"per/indication/drop_last", kPer, sample_indication, drop_last},
    // PER, bit-flipped tag
    {"per/setup/tag_flip", kPer, sample_setup_request, per_tag_out_of_range},
    {"per/subscription/tag_flip", kPer, sample_subscription_request,
     per_tag_out_of_range},
    {"per/indication/tag_flip", kPer, sample_indication,
     per_tag_out_of_range},
    // PER, corrupted length determinant
    {"per/setup/len_fragmented", kPer, sample_setup_request,
     per_length_fragmented},
    {"per/setup/len_overrun", kPer, sample_setup_request, per_length_overruns},
    {"per/subscription/len_fragmented", kPer, sample_subscription_request,
     per_length_fragmented},
    {"per/subscription/len_overrun", kPer, sample_subscription_request,
     per_length_overruns},
    {"per/indication/len_fragmented", kPer, sample_indication,
     per_length_fragmented},
    {"per/indication/len_overrun", kPer, sample_indication,
     per_length_overruns},
    // FLAT, truncation
    {"flat/setup/drop_half", kFlat, sample_setup_request, drop_half},
    {"flat/setup/drop_last", kFlat, sample_setup_request, drop_last},
    {"flat/setup/empty", kFlat, sample_setup_request, drop_all},
    {"flat/subscription/drop_half", kFlat, sample_subscription_request,
     drop_half},
    {"flat/subscription/drop_last", kFlat, sample_subscription_request,
     drop_last},
    {"flat/indication/drop_half", kFlat, sample_indication, drop_half},
    {"flat/indication/drop_last", kFlat, sample_indication, drop_last},
    // FLAT, bit-flipped tag
    {"flat/setup/tag_flip", kFlat, sample_setup_request,
     flat_tag_out_of_range},
    {"flat/subscription/tag_flip", kFlat, sample_subscription_request,
     flat_tag_out_of_range},
    {"flat/indication/tag_flip", kFlat, sample_indication,
     flat_tag_out_of_range},
    // FLAT, corrupted size prefix (the table's length field)
    {"flat/setup/prefix_inflated", kFlat, sample_setup_request,
     flat_prefix_inflated},
    {"flat/setup/prefix_shrunk", kFlat, sample_setup_request,
     flat_prefix_shrunk},
    {"flat/subscription/prefix_inflated", kFlat, sample_subscription_request,
     flat_prefix_inflated},
    {"flat/subscription/prefix_shrunk", kFlat, sample_subscription_request,
     flat_prefix_shrunk},
    {"flat/indication/prefix_inflated", kFlat, sample_indication,
     flat_prefix_inflated},
    {"flat/indication/prefix_shrunk", kFlat, sample_indication,
     flat_prefix_shrunk},
    // Inflated list counts (wire-taint regressions)
    {"per/subscription/count_inflated", kPer, sample_subscription_request,
     per_action_count_inflated},
    {"flat/subscription/count_inflated", kFlat, sample_subscription_request,
     flat_action_count_inflated},
    {"flat/setup/count_inflated", kFlat, sample_setup_request,
     flat_ran_fn_count_inflated},
};

class AdversarialFrames
    : public ::testing::TestWithParam<AdversarialCase> {};

TEST_P(AdversarialFrames, CorruptedFrameDecodesToError) {
  const AdversarialCase& c = GetParam();
  const e2ap::Codec& codec = e2ap::codec_for(c.format);
  e2ap::Msg msg = c.make();

  auto wire = codec.encode(msg);
  ASSERT_TRUE(wire.is_ok()) << c.name;
  // Sanity: the pristine frame round-trips before we break it.
  auto pristine = codec.decode(*wire);
  ASSERT_TRUE(pristine.is_ok()) << c.name;
  ASSERT_TRUE(*pristine == msg) << c.name;

  Buffer corrupted = *wire;
  c.mutate(corrupted);
  auto dec = codec.decode(corrupted);
  EXPECT_FALSE(dec.is_ok())
      << c.name << ": corrupted frame decoded successfully";
}

// The inflated-count frames must be rejected by the up-front count guard
// (error text "list count exceeds payload"), proving the forged count never
// becomes a loop bound — not merely fail later when the reader runs dry.
TEST(AdversarialFrames, InflatedCountRejectedByGuard) {
  struct Case {
    WireFormat format;
    e2ap::Msg (*make)();
    void (*mutate)(Buffer&);
  } cases[] = {
      {kPer, sample_subscription_request, per_action_count_inflated},
      {kFlat, sample_subscription_request, flat_action_count_inflated},
      {kFlat, sample_setup_request, flat_ran_fn_count_inflated},
  };
  for (const auto& c : cases) {
    const e2ap::Codec& codec = e2ap::codec_for(c.format);
    auto wire = codec.encode(c.make());
    ASSERT_TRUE(wire.is_ok());
    Buffer corrupted = *wire;
    c.mutate(corrupted);
    auto dec = codec.decode(corrupted);
    ASSERT_FALSE(dec.is_ok());
    EXPECT_NE(dec.error().message.find("count exceeds payload"),
              std::string::npos)
        << "got: " << dec.error().message;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Corpus, AdversarialFrames, ::testing::ValuesIn(kAdversarialCorpus),
    [](const ::testing::TestParamInfo<AdversarialCase>& info) {
      std::string s = info.param.name;
      for (char& ch : s)
        if (ch == '/') ch = '_';
      return s;
    });

// Exhaustive truncation sweep: EVERY strict prefix of a valid frame must
// decode to an error in both codecs. (PER frames carry no pure-padding
// trailing bytes; FLAT frames account for every byte in the fixed region or
// a var span — so losing any suffix is always detectable.)
TEST(AdversarialFramesSweep, EveryStrictPrefixFailsToDecode) {
  e2ap::Msg (*const makers[])() = {sample_setup_request,
                                   sample_subscription_request,
                                   sample_indication};
  for (auto make : makers) {
    e2ap::Msg msg = make();
    for (auto format : {kPer, kFlat}) {
      const e2ap::Codec& codec = e2ap::codec_for(format);
      auto wire = codec.encode(msg);
      ASSERT_TRUE(wire.is_ok());
      for (std::size_t n = 0; n < wire->size(); ++n) {
        BytesView prefix{wire->data(), n};
        EXPECT_FALSE(codec.decode(prefix).is_ok())
            << e2ap::msg_type_name(e2ap::msg_type(msg)) << " prefix len " << n
            << " of " << wire->size() << " ("
            << (format == kPer ? "per" : "flat") << ")";
      }
    }
  }
}

}  // namespace
}  // namespace flexric
