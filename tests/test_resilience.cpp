// Deterministic chaos harness for the E2 resilience layer (agent reconnect
// with backoff, E2 Setup replay, heartbeat liveness, server-side retention
// and transparent subscription re-establishment).
//
// Everything runs on one Reactor driven by a VirtualClock: faults, backoff
// delays, heartbeats and liveness scans are all reactor timers, so a fixed
// seed produces a bit-identical schedule. Each chaos test is parameterized
// over seeds; override the set with FLEXRIC_CHAOS_SEEDS="1,2,3" (used by
// ci.sh --chaos for longer soaks). A failing seed is printed via
// SCOPED_TRACE so it can be replayed exactly.
#include <gtest/gtest.h>

#include <cstdlib>
#include <sstream>
#include <string>
#include <vector>

#include "agent/agent.hpp"
#include "common/clock.hpp"
#include "helpers.hpp"
#include "server/server.hpp"
#include "shard_world.hpp"
#include "transport/faulty.hpp"
#include "transport/resilience.hpp"

namespace flexric {
namespace {

using test::pump;

// ---------------------------------------------------------------------------
// Harness
// ---------------------------------------------------------------------------

/// Advance virtual time in small steps, pumping the reactor after each so
/// timers interleave with message deliveries the way real time would.
void advance(Reactor& reactor, VirtualClock& clock, Nanos dt,
             Nanos step = kMilli) {
  while (dt > 0) {
    Nanos d = dt < step ? dt : step;
    clock.advance(d);
    dt -= d;
    for (int i = 0; i < 8; ++i)
      if (reactor.run_once(0) == 0) break;
  }
}

class ChaosStub final : public agent::RanFunction {
 public:
  explicit ChaosStub(std::uint16_t id) {
    desc_.id = id;
    desc_.revision = 1;
    desc_.name = "CHAOS-STUB";
  }
  [[nodiscard]] const e2ap::RanFunctionItem& descriptor() const override {
    return desc_;
  }
  Result<agent::SubscriptionOutcome> on_subscription(
      const e2ap::SubscriptionRequest& req, agent::ControllerId) override {
    subs++;
    last_sub = req;
    agent::SubscriptionOutcome out;
    for (const auto& a : req.actions) out.admitted.push_back(a.id);
    return out;
  }
  Status on_subscription_delete(const e2ap::SubscriptionDeleteRequest&,
                                agent::ControllerId) override {
    return Status::ok();
  }
  Result<Buffer> on_control(const e2ap::ControlRequest& req,
                            agent::ControllerId) override {
    return req.message;
  }
  void emit(agent::ControllerId origin, Buffer payload) {
    e2ap::Indication ind;
    ind.request = last_sub.request;
    ind.ran_function_id = desc_.id;
    ind.action_id = 1;
    ind.message = std::move(payload);
    (void)services_->send_indication(origin, ind);
  }

  int subs = 0;
  e2ap::SubscriptionRequest last_sub;

 private:
  e2ap::RanFunctionItem desc_;
};

struct EventLogIApp final : server::IApp {
  const char* name() const override { return "event-log"; }
  void on_agent_connected(const server::AgentInfo& info) override {
    log.push_back("connect:" + std::to_string(info.id));
  }
  void on_agent_disconnected(server::AgentId id) override {
    log.push_back("disconnect:" + std::to_string(id));
  }
  void on_agent_quarantined(server::AgentId id) override {
    log.push_back("quarantine:" + std::to_string(id));
  }
  void on_agent_reconnected(const server::AgentInfo& info) override {
    log.push_back("reconnect:" + std::to_string(info.id));
  }
  std::vector<std::string> log;
};

/// One agent + one server on a VirtualClock reactor; the agent dials through
/// FaultyTransport links created fresh on every (re)connect.
struct ChaosWorld {
  explicit ChaosWorld(ResilienceConfig server_rc = server_defaults())
      : server(reactor, {21, WireFormat::flat, server_rc, {}}) {
    reactor.set_time_source(&clock);
    events = std::make_shared<EventLogIApp>();
    server.add_iapp(events);
  }

  static ResilienceConfig server_defaults() {
    ResilienceConfig rc;
    rc.quarantine_after = 2 * kSecond;
    rc.expire_after = 60 * kSecond;  // long: chaos must not expire the agent
    rc.reestablish = true;
    return rc;
  }

  static ResilienceConfig agent_defaults(std::uint64_t seed) {
    ResilienceConfig rc;
    rc.backoff_base = 50 * kMilli;
    rc.backoff_cap = kSecond;
    rc.heartbeat_period = 200 * kMilli;
    rc.heartbeat_miss_threshold = 3;
    rc.setup_timeout = 500 * kMilli;
    rc.seed = seed;
    return rc;
  }

  /// Dial: fresh LocalTransport pair, agent side wrapped in FaultyTransport.
  agent::TransportFactory make_factory() {
    return [this]() -> Result<std::shared_ptr<MsgTransport>> {
      dials++;
      if (!dial_enabled) return Error{Errc::io, "dial refused (test)"};
      auto [a_side, s_side] = LocalTransport::make_pair(reactor);
      FaultProfile p = profile;
      p.seed = seed + static_cast<std::uint64_t>(dials) * 7919;
      auto faulty = std::make_shared<FaultyTransport>(reactor, a_side, p);
      link = faulty;
      server.attach(s_side);
      return std::static_pointer_cast<MsgTransport>(faulty);
    };
  }

  void start_agent(std::uint64_t s, ResilienceConfig rc) {
    seed = s;
    fn = std::make_shared<ChaosStub>(200);
    agent = std::make_unique<agent::E2Agent>(
        reactor, agent::E2Agent::Config{{1, 10, e2ap::NodeType::gnb},
                                        WireFormat::flat,
                                        {}});
    ASSERT_TRUE(agent->register_function(fn).is_ok());
    agent->set_on_conn_event([this](agent::ControllerId, agent::ConnState st) {
      conn_events.push_back(agent::conn_state_name(st));
    });
    auto cid = agent->add_controller(make_factory(), rc);
    ASSERT_TRUE(cid.is_ok());
    ctrl_id = *cid;
  }

  bool established() const {
    return agent->state(ctrl_id) == agent::ConnState::established;
  }

  /// Drive until the agent is established or `budget` virtual time elapses.
  bool converge(Nanos budget = 30 * kSecond) {
    for (Nanos t = 0; t < budget; t += 10 * kMilli) {
      if (established()) return true;
      advance(reactor, clock, 10 * kMilli);
    }
    return established();
  }

  VirtualClock clock;
  Reactor reactor;
  server::E2Server server;
  std::shared_ptr<EventLogIApp> events;
  std::unique_ptr<agent::E2Agent> agent;
  std::shared_ptr<ChaosStub> fn;
  std::shared_ptr<FaultyTransport> link;  ///< most recent agent-side link
  agent::ControllerId ctrl_id = 0;
  FaultProfile profile;  ///< applied to every new link
  std::uint64_t seed = 1;
  int dials = 0;
  bool dial_enabled = true;
  std::vector<std::string> conn_events;
};

std::vector<std::uint64_t> chaos_seeds() {
  std::vector<std::uint64_t> seeds;
  if (const char* env = std::getenv("FLEXRIC_CHAOS_SEEDS")) {
    std::stringstream ss(env);
    std::string tok;
    while (std::getline(ss, tok, ','))
      if (!tok.empty()) seeds.push_back(std::stoull(tok));
  }
  if (seeds.empty())
    for (std::uint64_t s = 1; s <= 12; ++s) seeds.push_back(s);
  return seeds;
}

// ---------------------------------------------------------------------------
// Backoff unit tests
// ---------------------------------------------------------------------------

TEST(Backoff, FirstDelayIsBaseThenJitteredWithinBounds) {
  ResilienceConfig rc;
  rc.backoff_base = 100 * kMilli;
  rc.backoff_cap = 2 * kSecond;
  Rng rng(42);
  Nanos prev = 0;
  prev = next_backoff(rc, prev, rng);
  EXPECT_EQ(prev, rc.backoff_base);
  for (int i = 0; i < 50; ++i) {
    Nanos hi = std::min(rc.backoff_cap, 3 * prev);
    Nanos d = next_backoff(rc, prev, rng);
    EXPECT_GE(d, rc.backoff_base);
    EXPECT_LE(d, std::max(hi, rc.backoff_base));
    EXPECT_LE(d, rc.backoff_cap);
    prev = d;
  }
}

TEST(Backoff, SameSeedSameSchedule) {
  ResilienceConfig rc;
  Rng a(7), b(7);
  Nanos pa = 0, pb = 0;
  for (int i = 0; i < 32; ++i) {
    pa = next_backoff(rc, pa, a);
    pb = next_backoff(rc, pb, b);
    EXPECT_EQ(pa, pb) << "diverged at step " << i;
  }
}

TEST(Backoff, CapNeverExceeded) {
  ResilienceConfig rc;
  rc.backoff_base = 400 * kMilli;
  rc.backoff_cap = 500 * kMilli;
  Rng rng(3);
  Nanos prev = 0;
  for (int i = 0; i < 64; ++i) {
    prev = next_backoff(rc, prev, rng);
    EXPECT_LE(prev, rc.backoff_cap);
    EXPECT_GE(prev, std::min(rc.backoff_base, rc.backoff_cap));
  }
}

// ---------------------------------------------------------------------------
// Recovery state machine on the virtual clock (single seed, exact timing)
// ---------------------------------------------------------------------------

TEST(Resilience, EstablishesThroughFactoryAndHeartbeats) {
  ChaosWorld w;
  w.start_agent(5, ChaosWorld::agent_defaults(5));
  ASSERT_TRUE(w.converge());
  EXPECT_EQ(w.dials, 1);
  EXPECT_EQ(w.server.ran_db().num_agents(), 1u);

  // Heartbeats flow and are acked without DB/iApp churn.
  auto log_before = w.events->log;
  advance(w.reactor, w.clock, 2 * kSecond);
  EXPECT_GE(w.agent->stats().heartbeats_tx, 5u);
  EXPECT_EQ(w.agent->stats().heartbeat_misses, 0u);
  EXPECT_GE(w.server.stats().heartbeats_rx, 5u);
  EXPECT_EQ(w.events->log, log_before);  // no events from liveness traffic
}

TEST(Resilience, BackoffTimingIsObservableOnVirtualClock) {
  ChaosWorld w;
  auto rc = ChaosWorld::agent_defaults(9);
  w.dial_enabled = false;  // every dial refused until we allow it
  w.start_agent(9, rc);
  EXPECT_EQ(w.agent->state(w.ctrl_id), agent::ConnState::reconnecting);
  EXPECT_EQ(w.dials, 1);

  // First retry fires at exactly backoff_base (first delay is the base).
  advance(w.reactor, w.clock, rc.backoff_base - 5 * kMilli);
  EXPECT_EQ(w.dials, 1);  // not yet
  advance(w.reactor, w.clock, 10 * kMilli);
  EXPECT_EQ(w.dials, 2);  // fired within [base, base+5ms]

  // Let several more attempts fail: attempts are spaced within
  // [base, cap] and the counter grows monotonically.
  int before = w.dials;
  advance(w.reactor, w.clock, 5 * kSecond);
  EXPECT_GT(w.dials, before);
  EXPECT_GE(w.agent->stats().reconnect_failures,
            static_cast<std::uint64_t>(w.dials - 1));

  w.dial_enabled = true;
  ASSERT_TRUE(w.converge());
  EXPECT_GE(w.agent->stats().reconnects, 1u);
}

TEST(Resilience, SetupTimeoutRedialsHalfOpenLink) {
  ChaosWorld w;
  auto rc = ChaosWorld::agent_defaults(11);
  // Eat every outbound message: the SetupRequest vanishes, the link looks
  // open, and only the setup timeout can save us.
  w.profile.tx.drop = 1.0;
  w.start_agent(11, rc);
  EXPECT_EQ(w.agent->state(w.ctrl_id), agent::ConnState::setup_sent);

  advance(w.reactor, w.clock, rc.setup_timeout + 50 * kMilli);
  EXPECT_NE(w.agent->state(w.ctrl_id), agent::ConnState::established);
  EXPECT_GE(w.dials, 1);

  w.profile = FaultProfile{};  // heal: subsequent links are clean
  ASSERT_TRUE(w.converge());
  // The half-open link was abandoned and a fresh dial succeeded. (This is
  // NOT a setup replay: the conn had never established before.)
  EXPECT_GE(w.dials, 2);
  EXPECT_GE(w.agent->stats().reconnects, 1u);
}

TEST(Resilience, HeartbeatMissesForceReconnectThroughPartition) {
  ChaosWorld w;
  auto rc = ChaosWorld::agent_defaults(13);
  w.start_agent(13, rc);
  ASSERT_TRUE(w.converge());

  // Partition the live link forever; only the heartbeat can notice.
  w.link->set_partitioned(true);
  const Nanos detect_budget =
      rc.heartbeat_period * (rc.heartbeat_miss_threshold + 2);

  // The agent must NOT give up before threshold misses are possible.
  advance(w.reactor, w.clock, rc.heartbeat_period);
  EXPECT_TRUE(w.established());

  advance(w.reactor, w.clock, detect_budget);
  EXPECT_GE(w.agent->stats().heartbeat_misses,
            static_cast<std::uint64_t>(rc.heartbeat_miss_threshold));
  ASSERT_TRUE(w.converge());
  EXPECT_GE(w.dials, 2);  // re-dialed a fresh (unpartitioned) link
  EXPECT_GE(w.agent->stats().reconnects, 1u);
}

// The miss-threshold boundary is exact: the agent holds the link through
// N-1 unanswered heartbeats and declares the connection dead on the tick
// that records the Nth miss — not a tick earlier, not a tick later. This
// pins the `hb_missed >= threshold` comparison: an off-by-one in either
// direction (detect at N-1, or require N+1) moves a whole heartbeat period
// of detection latency and shows up in supervision MTTR.
TEST(Resilience, HeartbeatMissBoundaryDetectsAtExactlyThreshold) {
  ChaosWorld w;
  auto rc = ChaosWorld::agent_defaults(17);
  const std::uint32_t n = rc.heartbeat_miss_threshold;  // 3 by default
  ASSERT_GE(n, 2u);
  w.start_agent(17, rc);
  ASSERT_TRUE(w.converge());

  // Phase-align to just past a heartbeat tick whose probe got acked, so
  // every subsequent advance of one period lands exactly one tick.
  const std::uint64_t tx0 = w.agent->stats().heartbeats_tx;
  for (Nanos t = 0; w.agent->stats().heartbeats_tx == tx0; t += kMilli) {
    ASSERT_LT(t, 2 * rc.heartbeat_period) << "heartbeat never ticked";
    advance(w.reactor, w.clock, kMilli);
  }
  advance(w.reactor, w.clock, kMilli);  // let the ack land

  w.link->set_partitioned(true);
  const std::uint64_t base = w.agent->stats().heartbeat_misses;
  const int dials_before = w.dials;

  // Tick 1 sends a probe into the void: nothing chargeable yet.
  advance(w.reactor, w.clock, rc.heartbeat_period);
  EXPECT_EQ(w.agent->stats().heartbeat_misses, base);
  EXPECT_TRUE(w.established());

  // Ticks 2..N record misses 1..N-1: the link must be held at every one.
  for (std::uint32_t m = 1; m < n; ++m) {
    advance(w.reactor, w.clock, rc.heartbeat_period);
    EXPECT_EQ(w.agent->stats().heartbeat_misses, base + m);
    EXPECT_TRUE(w.established())
        << "gave up at " << m << " misses (threshold " << n << ")";
    EXPECT_EQ(w.dials, dials_before);
  }

  // The next tick records miss N: detection fires on THIS tick, tearing
  // the partitioned link down and re-dialing a fresh one.
  advance(w.reactor, w.clock, rc.heartbeat_period);
  EXPECT_EQ(w.agent->stats().heartbeat_misses, base + n)
      << "detection must not eat or double-charge the Nth miss";
  EXPECT_FALSE(w.established())
      << "did not give up at exactly " << n << " misses";
  ASSERT_TRUE(w.converge());
  EXPECT_GT(w.dials, dials_before);  // fresh (unpartitioned) link
  EXPECT_GE(w.agent->stats().reconnects, 1u);
}

TEST(Resilience, ServerQuarantinesThenExpiresSilentAgent) {
  ResilienceConfig srv = ChaosWorld::server_defaults();
  srv.quarantine_after = kSecond;
  srv.expire_after = 3 * kSecond;
  ChaosWorld w(srv);
  auto rc = ChaosWorld::agent_defaults(17);
  rc.heartbeat_period = 0;  // mute agent: nothing keeps the link warm
  rc.reconnect = false;     // and it stays gone once the server expires it
  w.start_agent(17, rc);
  ASSERT_TRUE(w.converge());
  ASSERT_EQ(w.server.ran_db().num_agents(), 1u);

  // Partition: the server hears nothing from a "connected" agent.
  w.link->set_partitioned(true);
  advance(w.reactor, w.clock, srv.quarantine_after + srv.quarantine_after / 2);
  ASSERT_FALSE(w.events->log.empty());
  EXPECT_EQ(w.events->log.back(), "quarantine:1");
  EXPECT_EQ(w.server.ran_db().num_agents(), 1u);  // state retained

  advance(w.reactor, w.clock, srv.expire_after + srv.quarantine_after);
  EXPECT_EQ(w.events->log.back(), "disconnect:1");
  EXPECT_EQ(w.server.ran_db().num_agents(), 0u);
  EXPECT_EQ(w.server.num_connections(), 0u);
  EXPECT_EQ(w.server.num_subscriptions(), 0u);
  EXPECT_GE(w.server.stats().quarantines, 1u);
  EXPECT_GE(w.server.stats().expiries, 1u);
}

TEST(Resilience, ReestablishmentKeepsIdAndReplaysSubscriptionsOnce) {
  ChaosWorld w;
  w.start_agent(19, ChaosWorld::agent_defaults(19));
  ASSERT_TRUE(w.converge());

  int responses = 0, indications = 0;
  server::SubCallbacks cbs;
  cbs.on_response = [&](const e2ap::SubscriptionResponse&) { responses++; };
  cbs.on_indication = [&](const e2ap::Indication&) { indications++; };
  auto h = w.server.subscribe(1, 200, Buffer{0x01},
                              {{1, e2ap::ActionType::report, {}}},
                              std::move(cbs));
  ASSERT_TRUE(h.is_ok());
  pump(w.reactor, 20);
  ASSERT_EQ(responses, 1);
  ASSERT_EQ(w.fn->subs, 1);

  w.fn->emit(w.ctrl_id, {0xAA});
  pump(w.reactor, 20);
  ASSERT_EQ(indications, 1);

  // Kill the link; the agent returns and the server must splice it back.
  w.link->kill();
  ASSERT_TRUE(w.converge());

  EXPECT_EQ(w.server.ran_db().num_agents(), 1u);
  const auto* info = w.server.ran_db().agent(1);
  ASSERT_NE(info, nullptr);  // SAME AgentId as before the cut
  EXPECT_TRUE(info->connected);
  EXPECT_EQ(w.server.num_connections(), 1u);  // no stale detached twin

  // Subscription was replayed to the agent exactly once more, silently.
  advance(w.reactor, w.clock, 100 * kMilli);
  EXPECT_EQ(w.fn->subs, 2);
  EXPECT_EQ(responses, 1) << "replay must not re-surface on_response";
  EXPECT_EQ(w.server.stats().subs_replayed, 1u);

  // ...and it still delivers on the SAME handle/callback.
  w.fn->emit(w.ctrl_id, {0xBB});
  pump(w.reactor, 20);
  EXPECT_EQ(indications, 2);

  // iApps saw one reconnect event and zero disconnect/connect churn.
  int reconnects = 0, disconnects = 0, connects = 0;
  for (const auto& e : w.events->log) {
    if (e == "reconnect:1") reconnects++;
    if (e == "disconnect:1") disconnects++;
    if (e == "connect:1") connects++;
  }
  EXPECT_EQ(reconnects, 1);
  EXPECT_EQ(disconnects, 0);
  EXPECT_EQ(connects, 1);  // only the original connect
}

TEST(Resilience, InflightControlFailsFastWithTransportCause) {
  ChaosWorld w;
  w.start_agent(23, ChaosWorld::agent_defaults(23));
  ASSERT_TRUE(w.converge());

  bool failed = false;
  e2ap::Cause cause;
  server::CtrlCallbacks cbs;
  cbs.on_ack = [&](const e2ap::ControlAck&) { FAIL() << "ack after link cut"; };
  cbs.on_failure = [&](const e2ap::ControlFailure& f) {
    failed = true;
    cause = f.cause;
  };
  ASSERT_TRUE(w.server
                  .send_control(1, 200, Buffer{0x01}, Buffer{0x02},
                                std::move(cbs))
                  .is_ok());
  ASSERT_EQ(w.server.num_inflight_controls(), 1u);

  // Cut the link before the request reaches the agent: the answer can never
  // come, so the iApp must get a synthetic transport failure immediately.
  w.link->kill();
  pump(w.reactor, 20);
  EXPECT_TRUE(failed);
  EXPECT_EQ(cause.group, e2ap::Cause::Group::transport);
  EXPECT_EQ(w.server.num_inflight_controls(), 0u);
  EXPECT_GE(w.server.stats().ctrls_failed_on_loss, 1u);
}

// ---------------------------------------------------------------------------
// Adversarial framing: a hostile peer claims absurd frame lengths
// ---------------------------------------------------------------------------

TEST(FrameAssembler, OversizedLengthClaimFailsBeforeBuffering) {
  FrameAssembler rx;
  rx.set_max_frame(1024);
  EXPECT_EQ(rx.max_frame(), 1024u);

  // A 6-byte header claiming a 1 GiB payload: rejected the moment the
  // header is parseable, without waiting for (or allocating) the payload.
  Buffer hostile = {0x00, 0x00, 0x00, 0x40,  // len = 0x40000000
                    0x00, 0x00};             // stream 0
  int frames = 0;
  Status st = rx.feed(BytesView(hostile), [&](StreamId, BytesView) {
    frames++;
    return true;
  });
  EXPECT_FALSE(st.is_ok());
  EXPECT_EQ(st.code(), Errc::malformed);
  EXPECT_EQ(frames, 0);
  EXPECT_EQ(rx.buffered(), hostile.size())
      << "only the hostile header itself may be buffered, never the claim";
}

TEST(FrameAssembler, BoundarySizedFramePassesOneByteOverFails) {
  FrameAssembler rx;
  rx.set_max_frame(1024);

  // Exactly at the cap: legal, delivered intact even when dribbled.
  Buffer payload(1024, 0xEE);
  Buffer wire;
  append_frame(wire, BytesView(payload), 7);
  std::size_t got = 0;
  StreamId got_stream = 0;
  for (std::size_t i = 0; i < wire.size(); i += 13) {  // adversarial chunking
    std::size_t n = std::min<std::size_t>(13, wire.size() - i);
    ASSERT_TRUE(rx.feed(BytesView(wire).subspan(i, n),
                        [&](StreamId s, BytesView msg) {
                          got = msg.size();
                          got_stream = s;
                          return true;
                        })
                    .is_ok());
  }
  EXPECT_EQ(got, 1024u);
  EXPECT_EQ(got_stream, 7u);
  EXPECT_EQ(rx.buffered(), 0u);

  // One byte over the cap: malformed, and the stream is poisoned from then
  // on (a desynchronized peer cannot resynchronize mid-stream).
  Buffer big(1025, 0xEE);
  Buffer wire2;
  append_frame(wire2, BytesView(big), 0);
  Status st = rx.feed(BytesView(wire2), [](StreamId, BytesView) {
    ADD_FAILURE() << "oversized frame must not be delivered";
    return true;
  });
  EXPECT_EQ(st.code(), Errc::malformed);
}

TEST(FrameAssembler, DefaultCapIsTheWireConstant) {
  FrameAssembler rx;
  EXPECT_EQ(rx.max_frame(), kMaxFrameSize);
}

// ---------------------------------------------------------------------------
// Seeded chaos soak: drop/delay/duplicate/reorder/corrupt + partitions +
// abrupt kills, then convergence must hold. Parameterized over >= 10 seeds.
// ---------------------------------------------------------------------------

class ChaosSoak : public ::testing::TestWithParam<std::uint64_t> {};

/// Run the full chaos scenario for one seed; returns a trace that must be
/// identical across runs of the same seed (determinism proof).
std::string run_chaos(std::uint64_t seed, std::uint64_t* reconnects_out) {
  ChaosWorld w;
  auto rc = ChaosWorld::agent_defaults(seed);
  w.profile.tx = {0.05, 0.02, 0.01, 0.02, 0, 2 * kMilli};
  w.profile.rx = {0.05, 0.02, 0.01, 0.02, 0, 2 * kMilli};
  w.start_agent(seed, rc);
  EXPECT_TRUE(w.converge()) << "never established under lossy link";

  // The stable AgentId is assigned at the first successful E2 Setup — a
  // lossy link may burn connection ids before that (dropped SetupRequest,
  // setup-timeout redial), so discover it instead of assuming 1. From here
  // on it must never change: that is the re-establishment contract.
  EXPECT_EQ(w.server.ran_db().num_agents(), 1u);
  if (w.server.ran_db().num_agents() != 1) return "no-agent";
  const server::AgentId aid = w.server.ran_db().agents().front();

  int responses = 0, failures = 0, indications = 0;
  server::SubCallbacks cbs;
  cbs.on_response = [&](const e2ap::SubscriptionResponse&) { responses++; };
  cbs.on_failure = [&](const e2ap::SubscriptionFailure&) { failures++; };
  cbs.on_indication = [&](const e2ap::Indication&) { indications++; };
  auto h = w.server.subscribe(aid, 200, Buffer{0x01},
                              {{1, e2ap::ActionType::report, {}}},
                              std::move(cbs));
  EXPECT_TRUE(h.is_ok());

  // Scripted chaos: a seeded schedule of partitions, kills and quiet spells.
  Rng chaos(seed ^ 0xC0FFEE);
  for (int ev = 0; ev < 12; ++ev) {
    advance(w.reactor, w.clock,
            100 * kMilli +
                static_cast<Nanos>(chaos.bounded(400)) * kMilli);
    switch (chaos.bounded(3)) {
      case 0:
        if (w.link) w.link->kill();
        break;
      case 1:
        if (w.link)
          w.link->partition_for(
              100 * kMilli + static_cast<Nanos>(chaos.bounded(900)) * kMilli);
        break;
      default:
        break;  // quiet spell
    }
  }

  // Faults off: every future link is clean. The system must converge.
  w.profile = FaultProfile{};
  if (w.link) w.link->kill();  // force one last reconnect onto a clean link
  EXPECT_TRUE(w.converge()) << "did not re-establish after chaos stopped";

  // Convergence invariants: exactly one live agent, zero stale state.
  EXPECT_EQ(w.server.ran_db().num_agents(), 1u);
  const auto* info = w.server.ran_db().agent(aid);
  EXPECT_NE(info, nullptr) << "agent id churned across reconnects";
  if (info != nullptr) EXPECT_TRUE(info->connected);
  EXPECT_EQ(w.server.num_connections(), 1u);
  EXPECT_EQ(w.server.num_inflight_controls(), 0u);
  EXPECT_LE(w.server.num_subscriptions(), 1u);

  // The subscription (if it survived - a replay rejection is allowed only
  // via on_failure) must be delivering again.
  if (w.server.num_subscriptions() == 1) {
    advance(w.reactor, w.clock, 100 * kMilli);
    int before = indications;
    w.fn->emit(w.ctrl_id, {0xEE});
    pump(w.reactor, 30);
    EXPECT_GT(indications, before) << "subscription stopped delivering";
  } else {
    EXPECT_GE(failures, 1) << "subscription vanished without on_failure";
  }

  // Liveness holds steady-state: a healthy agent is never quarantined.
  auto quarantines = w.server.stats().quarantines;
  advance(w.reactor, w.clock, 5 * kSecond);
  EXPECT_TRUE(w.established());
  EXPECT_EQ(w.server.stats().quarantines, quarantines)
      << "healthy agent quarantined: heartbeats not refreshing liveness";

  if (reconnects_out != nullptr)
    *reconnects_out = w.agent->stats().reconnects;

  std::ostringstream trace;
  trace << "dials=" << w.dials << " reconnects=" << w.agent->stats().reconnects
        << " replays=" << w.agent->stats().setup_replays
        << " hb_miss=" << w.agent->stats().heartbeat_misses
        << " srv_reconnects=" << w.server.stats().reconnects
        << " responses=" << responses << " events=";
  for (const auto& e : w.events->log) trace << e << ";";
  for (const auto& e : w.conn_events) trace << e << ";";
  return trace.str();
}

TEST_P(ChaosSoak, ConvergesAndIsDeterministic) {
  const std::uint64_t seed = GetParam();
  SCOPED_TRACE("FLEXRIC_CHAOS_SEEDS=" + std::to_string(seed) +
               " reproduces this run");
  std::uint64_t reconnects = 0;
  std::string first = run_chaos(seed, &reconnects);
  if (HasFailure()) return;
  // Same seed, fresh world: bit-identical schedule and trace.
  std::string second = run_chaos(seed, nullptr);
  EXPECT_EQ(first, second) << "chaos run is not deterministic";
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChaosSoak, ::testing::ValuesIn(chaos_seeds()),
                         [](const auto& info) {
                           return "seed_" + std::to_string(info.param);
                         });

// ---------------------------------------------------------------------------
// Sharded chaos soak (DESIGN.md §13): the chaos schedule spread over 1/2/4
// shards (seed-derived, FLEXRIC_SHARD_COUNT pins it), one lossy-linked
// agent per shard with a per-shard derived seed. Every shard must converge
// independently, the merged directory must agree with every shard, and the
// full multi-shard run must replay byte-identically.
// ---------------------------------------------------------------------------

class ShardedChaosSoak : public ::testing::TestWithParam<std::uint64_t> {};

std::string run_sharded_chaos(std::uint64_t seed) {
  const std::uint32_t shards = test::soak_shards(seed);
  server::ShardedConfig cfg;
  cfg.server.resilience = ChaosWorld::server_defaults();
  test::ShardWorld w(shards, cfg);
  w.agent_rc = ChaosWorld::agent_defaults(seed);  // twitchy: reconnects
  std::vector<test::ShardWorld::Node*> nodes;
  for (std::uint32_t s = 0; s < shards; ++s) {
    auto& n = w.add_agent(s, 0, e2ap::NodeType::gnb, {},
                          seed * 1000003 + s);
    n.profile.tx = {0.05, 0.02, 0.01, 0.02, 0, 2 * kMilli};
    n.profile.rx = {0.05, 0.02, 0.01, 0.02, 0, 2 * kMilli};
    nodes.push_back(&n);
  }
  for (auto* n : nodes)
    EXPECT_TRUE(w.converge(*n, 30 * kSecond))
        << "shard " << n->shard << " never established under lossy link";

  // The stable per-shard AgentIds, locked in at first Setup. The
  // re-establishment contract says they never change from here on.
  std::vector<server::AgentId> first_ids;
  for (auto* n : nodes) first_ids.push_back(n->id);

  // Scripted chaos across every shard from ONE seeded schedule: kills,
  // partitions and quiet spells land on seed-chosen shards.
  Rng chaos(seed ^ 0xC0FFEE);
  for (int ev = 0; ev < 12; ++ev) {
    w.advance(100 * kMilli +
              static_cast<Nanos>(chaos.bounded(400)) * kMilli);
    auto* n = nodes[chaos.bounded(static_cast<std::uint32_t>(nodes.size()))];
    switch (chaos.bounded(3)) {
      case 0:
        if (n->link) n->link->kill();
        break;
      case 1:
        if (n->link)
          n->link->partition_for(
              100 * kMilli + static_cast<Nanos>(chaos.bounded(900)) * kMilli);
        break;
      default:
        break;  // quiet spell
    }
  }

  // Faults off everywhere; every shard must converge onto a clean link.
  for (auto* n : nodes) {
    n->profile = FaultProfile{};
    if (n->link) n->link->kill();
  }
  for (auto* n : nodes)
    EXPECT_TRUE(w.converge(*n, 30 * kSecond))
        << "shard " << n->shard << " did not re-establish after chaos";

  // Convergence invariants, per shard and merged.
  for (std::uint32_t s = 0; s < shards; ++s) {
    EXPECT_EQ(w.ric.shard_server(s).ran_db().num_agents(), 1u)
        << "shard " << s;
    EXPECT_EQ(w.ric.shard_server(s).num_connections(), 1u) << "shard " << s;
    EXPECT_EQ(w.ric.shard_server(s).stats().misrouted, 0u) << "shard " << s;
  }
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    EXPECT_EQ(nodes[i]->id, first_ids[i])
        << "shard " << nodes[i]->shard << " churned its AgentId";
    const auto* info =
        w.ric.shard_server(nodes[i]->shard).ran_db().agent(nodes[i]->id);
    EXPECT_NE(info, nullptr);
    if (info != nullptr) EXPECT_TRUE(info->connected);
  }
  // The home-side merged directory agrees with every shard (the directory
  // resyncs after any event-ring loss, so eventual agreement is exact).
  w.advance(200 * kMilli);
  EXPECT_EQ(w.ric.directory().num_agents(), shards);
  for (auto* n : nodes)
    EXPECT_NE(w.ric.directory().agent(n->gid), nullptr)
        << "merged directory is missing shard " << n->shard << "'s agent";

  // Steady state: no healthy agent gets quarantined.
  std::vector<std::uint64_t> quarantines;
  for (std::uint32_t s = 0; s < shards; ++s)
    quarantines.push_back(w.ric.shard_server(s).stats().quarantines);
  w.advance(5 * kSecond);
  for (std::uint32_t s = 0; s < shards; ++s)
    EXPECT_EQ(w.ric.shard_server(s).stats().quarantines, quarantines[s])
        << "healthy agent quarantined on shard " << s;

  std::ostringstream trace;
  trace << "shards=" << shards << " ";
  for (auto* n : nodes)
    trace << "n" << n->shard << "{dials=" << n->dials
          << " rec=" << n->agent->stats().reconnects
          << " replays=" << n->agent->stats().setup_replays << "} ";
  trace << w.trace();
  return trace.str();
}

TEST_P(ShardedChaosSoak, ConvergesOnEveryShardAndIsDeterministic) {
  const std::uint64_t seed = GetParam();
  SCOPED_TRACE("FLEXRIC_CHAOS_SEEDS=" + std::to_string(seed) +
               " reproduces this run");
  std::string first = run_sharded_chaos(seed);
  if (HasFailure()) return;
  std::string second = run_sharded_chaos(seed);
  EXPECT_EQ(first, second) << "sharded chaos run is not deterministic";
}

INSTANTIATE_TEST_SUITE_P(Seeds, ShardedChaosSoak,
                         ::testing::ValuesIn(chaos_seeds()),
                         [](const auto& pi) {
                           return "seed_" + std::to_string(pi.param);
                         });

}  // namespace
}  // namespace flexric
