// Shared test utilities.
#pragma once

#include <gtest/gtest.h>

#include <functional>

#include "transport/reactor.hpp"

namespace flexric::test {

/// Pump the reactor until `pred` holds or `max_iters` iterations elapse.
/// Returns true when the predicate was satisfied.
inline bool pump_until(Reactor& reactor, const std::function<bool()>& pred,
                       int max_iters = 2000) {
  for (int i = 0; i < max_iters; ++i) {
    if (pred()) return true;
    reactor.run_once(/*timeout_ms=*/5);
  }
  return pred();
}

/// Pump a fixed number of iterations (settling async deliveries).
inline void pump(Reactor& reactor, int iters = 10) {
  for (int i = 0; i < iters; ++i) reactor.run_once(0);
}

}  // namespace flexric::test
