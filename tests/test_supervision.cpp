// Shard supervision (DESIGN.md §15): watchdog detection, quarantine
// containment, stateful recovery, exact accounting across the whole arc,
// and the seeded kill/recover chaos soak — all on VirtualClock, so every
// duration below is virtual milliseconds and every run replays
// byte-identically.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "ctrl/json.hpp"
#include "ctrl/rest.hpp"
#include "ctrl/supervision_rest.hpp"
#include "shard_world.hpp"

namespace flexric::test {
namespace {

using server::ShardHealth;

/// Supervision knobs tuned for the manual harness: 10 ms beats, degraded
/// past 50 ms of silence, quarantined past 200 ms.
server::ShardedConfig sup_cfg() {
  server::ShardedConfig cfg;
  cfg.supervise.heartbeat_period = 10 * kMilli;
  cfg.supervise.degraded_after = 50 * kMilli;
  cfg.supervise.quarantine_after = 200 * kMilli;
  cfg.supervise.recover_hysteresis = 3;
  return cfg;
}

/// Agent resilience twitchy enough to re-home within the test budget.
ResilienceConfig fast_rc() {
  ResilienceConfig rc;
  rc.heartbeat_period = 20 * kMilli;
  rc.heartbeat_miss_threshold = 3;
  rc.backoff_base = 20 * kMilli;
  return rc;
}

// ---------------------------------------------------------------------------
// Health board unit behavior
// ---------------------------------------------------------------------------

TEST(HealthBoard, BeatReadReset) {
  ShardHealthBoard board(2);
  EXPECT_EQ(board.read(0).turns, 0u);
  board.beat(0, 5 * kMilli);
  board.beat(0, 7 * kMilli);
  EXPECT_EQ(board.read(0).turns, 2u);
  EXPECT_EQ(board.read(0).progress_ns, 7 * kMilli);
  EXPECT_EQ(board.read(1).turns, 0u) << "slots are independent";
  board.reset(0);
  EXPECT_EQ(board.read(0).turns, 0u);
  EXPECT_EQ(board.read(0).progress_ns, 0);
}

TEST(CounterBoard, StaleEpochPublishIsDropped) {
  ShardCounterBoard board(1);
  ShardLedger v;
  v.frames = 7;
  const std::uint64_t old_epoch = board.epoch_of(0);
  board.publish(0, v, old_epoch);
  EXPECT_EQ(board.read(0).frames, 7u);
  board.bump_epoch(0);
  v.frames = 99;
  board.publish(0, v, old_epoch);  // corpse incarnation
  EXPECT_EQ(board.read(0).frames, 7u) << "stale-epoch publish must be dropped";
  v.frames = 11;
  board.publish(0, v, board.epoch_of(0));  // replacement
  EXPECT_EQ(board.read(0).frames, 11u);
}

// ---------------------------------------------------------------------------
// Watchdog state machine
// ---------------------------------------------------------------------------

TEST(Watchdog, HealthyWhileBeating) {
  ShardWorld w(2, sup_cfg(), /*supervised=*/true);
  w.advance(kSecond);
  for (std::uint32_t i = 0; i < 2; ++i)
    EXPECT_EQ(w.ric.supervisor().health(i), ShardHealth::healthy);
  EXPECT_EQ(w.ric.supervisor().stats().quarantines, 0u);
}

TEST(Watchdog, DetectsWedgedShardWithinDeadline) {
  ShardWorld w(2, sup_cfg(), /*supervised=*/true);
  w.advance(100 * kMilli);
  const Nanos wedged_at = w.clock.now();
  w.wedge_shard(1);
  // Detection must land within quarantine_after + one heartbeat period + one
  // watchdog quantum of the wedge (the configured deadline).
  const Nanos deadline = 200 * kMilli + 10 * kMilli + kMilli;
  w.advance(deadline);
  EXPECT_EQ(w.ric.supervisor().stats().quarantines, 1u)
      << "wedged shard not detected within the deadline";
  EXPECT_GE(w.detect_at, wedged_at);
  EXPECT_LE(w.detect_at - wedged_at, deadline);
  EXPECT_EQ(w.ric.supervisor().health(0), ShardHealth::healthy)
      << "healthy shard must be untouched";
}

TEST(Watchdog, DegradedShardRecoversOnlyAfterHysteresis) {
  ShardWorld w(1, sup_cfg(), /*supervised=*/true);
  w.advance(100 * kMilli);
  // Silence the shard long enough to degrade but not to quarantine.
  w.wedge_shard(0);
  w.advance(100 * kMilli);
  EXPECT_EQ(w.ric.supervisor().health(0), ShardHealth::degraded);
  // Un-wedge by hand (the handler came back on its own — no restart).
  for (auto& n : w.nodes) n->link->set_tx_credit(-1);
  w.unwedge_shard(0);
  // One fresh poll is not enough; recover_hysteresis=3 consecutive are.
  w.advance(kMilli);
  EXPECT_EQ(w.ric.supervisor().health(0), ShardHealth::degraded);
  w.advance(10 * kMilli);
  EXPECT_EQ(w.ric.supervisor().health(0), ShardHealth::healthy);
  EXPECT_EQ(w.ric.supervisor().stats().quarantines, 0u);
  EXPECT_EQ(w.pool.restarts(), 0u) << "degraded alone must not restart";
}

// ---------------------------------------------------------------------------
// Containment: queries fail fast, no new work routed at the shard
// ---------------------------------------------------------------------------

TEST(Containment, InFlightQueryFailsFastAndNewQueriesAreRejected) {
  ShardWorld w(2, sup_cfg(), /*supervised=*/true);
  auto& n = w.add_agent(1, 0, e2ap::NodeType::gnb, {}, 1);
  (void)n;
  ASSERT_TRUE(w.converge(*w.nodes[0]));
  w.wedge_shard(1);

  std::vector<std::string> outcomes;
  ASSERT_TRUE(w.ric
                  .query(
                      1, [](server::E2Server&) { return std::string("x"); },
                      [&](Result<std::string> r) {
                        outcomes.push_back(r.is_ok() ? "ok"
                                                     : r.status().to_string());
                      })
                  .is_ok());
  // The wedged shard never runs the job; detection must fail the query
  // with a transport-style cause instead of leaving it pending forever.
  w.advance(300 * kMilli);
  ASSERT_EQ(outcomes.size(), 1u);
  EXPECT_NE(outcomes[0].find("quarantined"), std::string::npos)
      << "got: " << outcomes[0];

  // While quarantined/rebuilding happened inside the same poll; afterwards
  // the shard accepts again. But against a *non-auto-restart* world the
  // refusal is observable: exercise it through a second wedge with the
  // budget spent.
  EXPECT_GE(w.ric.queries_failed(), 1u);
}

TEST(Containment, QuarantinedShardRefusesQueriesWhenNotAutoRestarted) {
  server::ShardedConfig cfg = sup_cfg();
  cfg.supervise.auto_restart = false;
  ShardWorld w(2, cfg, /*supervised=*/true);
  w.advance(100 * kMilli);
  w.wedge_shard(1);
  w.advance(300 * kMilli);
  ASSERT_EQ(w.ric.supervisor().health(1), ShardHealth::quarantined);
  EXPECT_FALSE(w.ric.accepting(1));
  Status st = w.ric.query(
      1, [](server::E2Server&) { return std::string(); },
      [](Result<std::string>) {});
  EXPECT_FALSE(st.is_ok());
  EXPECT_EQ(st.code(), Errc::rejected);
  EXPECT_FALSE(w.ric.post_to_shard(1, [] {}).is_ok());
  // Healthy shard is unaffected.
  EXPECT_TRUE(w.ric.post_to_shard(0, [] {}).is_ok());
  // Manual recovery path: the operator restarts it.
  w.ric.supervisor().restart(1);
  EXPECT_EQ(w.ric.supervisor().health(1), ShardHealth::recovering);
  EXPECT_TRUE(w.ric.accepting(1));
  w.advance(100 * kMilli);
  EXPECT_EQ(w.ric.supervisor().health(1), ShardHealth::healthy);
}

// ---------------------------------------------------------------------------
// Full arc: wedge -> detect -> quarantine -> rebuild -> re-home -> deliver
// ---------------------------------------------------------------------------

TEST(Recovery, WedgedShardIsRebuiltAgentsRehomeAndLedgerReconciles) {
  ShardWorld w(2, sup_cfg(), /*supervised=*/true);
  w.agent_rc = fast_rc();
  w.enable_fanout();
  auto& a = w.add_agent(0);
  auto& b = w.add_agent(1);
  ASSERT_TRUE(w.converge(a));
  ASSERT_TRUE(w.converge(b));
  w.advance(50 * kMilli);  // fan-out subscriptions land
  a.fn->emit(a.ctrl);
  b.fn->emit(b.ctrl);
  w.settle();
  ASSERT_EQ(w.fanout_delivered, 2u);
  const std::string dir_before = [&] {
    std::ostringstream o;
    for (auto id : w.ric.directory().agents()) o << id << ",";
    return o.str();
  }();

  w.wedge_shard(1);
  // Emissions during the outage: b's buffer agent-side (TCP backpressure
  // model), a's flow normally.
  for (int i = 0; i < 5; ++i) {
    a.fn->emit(a.ctrl);
    b.fn->emit(b.ctrl);
    w.advance(50 * kMilli);
  }
  EXPECT_EQ(w.ric.supervisor().stats().quarantines, 1u);
  EXPECT_EQ(w.ric.supervisor().stats().restarts, 1u);
  EXPECT_EQ(w.pool.restarts(), 1u);

  // Give the re-home time: reconnect, subscription replay, resync.
  w.advance(2 * kSecond);
  EXPECT_EQ(w.ric.supervisor().health(1), ShardHealth::healthy);
  EXPECT_TRUE(w.established(b)) << "agent failed to re-home";
  EXPECT_GE(b.dials, 2) << "re-home must be a fresh dial";

  // The merged directory converged back to the same membership (global ids
  // are deterministic, so the exact same line).
  w.settle();
  const std::string dir_after = [&] {
    std::ostringstream o;
    for (auto id : w.ric.directory().agents()) o << id << ",";
    return o.str();
  }();
  EXPECT_EQ(dir_before, dir_after) << "ghost or missing directory entries";

  // Post-recovery delivery: the replayed subscription carries indications
  // again (MTTR's second half).
  const std::uint64_t before = w.fanout_delivered;
  b.fn->emit(b.ctrl);
  w.advance(20 * kMilli);
  EXPECT_GT(w.fanout_delivered, before)
      << "subscription was not replayed on the rebuilt shard";
  EXPECT_GT(w.first_redelivery_at, w.detect_at);

  w.settle();
  w.expect_supervised_reconciles();
}

TEST(Recovery, CrashedShardLinksResetAndLedgerReconciles) {
  ShardWorld w(2, sup_cfg(), /*supervised=*/true);
  w.agent_rc = fast_rc();
  w.enable_fanout();
  auto& a = w.add_agent(1);
  ASSERT_TRUE(w.converge(a));
  w.advance(50 * kMilli);
  a.fn->emit(a.ctrl);
  w.settle();
  ASSERT_EQ(w.fanout_delivered, 1u);

  w.crash_shard(1);
  for (int i = 0; i < 5; ++i) {
    a.fn->emit(a.ctrl);
    w.advance(100 * kMilli);
  }
  w.advance(2 * kSecond);
  EXPECT_EQ(w.ric.supervisor().health(1), ShardHealth::healthy);
  EXPECT_TRUE(w.established(a));
  const std::uint64_t before = w.fanout_delivered;
  a.fn->emit(a.ctrl);
  w.advance(20 * kMilli);
  EXPECT_GT(w.fanout_delivered, before);
  w.settle();
  w.expect_supervised_reconciles();
}

TEST(Recovery, ParkedFanoutIsShedWithExactAccounting) {
  ShardWorld w(1, sup_cfg(), /*supervised=*/true);
  w.agent_rc = fast_rc();
  w.enable_fanout();
  auto& a = w.add_agent(0);
  ASSERT_TRUE(w.converge(a));
  w.advance(50 * kMilli);

  // Emit and pump ONLY the shard (not the home rings): the indications
  // cross into the fan-out ring and park there.
  a.fn->emit(a.ctrl);
  a.fn->emit(a.ctrl);
  a.fn->emit(a.ctrl);
  for (int i = 0; i < 10; ++i) w.pool.pump_shard(0, 8);
  EXPECT_EQ(w.fanout_delivered, 0u) << "indications must be parked";

  // Quarantine + rebuild before the home side ever drains them: the parked
  // indications belong to a condemned incarnation and are shed with exact
  // accounting, not delivered stale. wedge_shard_raw skips the quiescence
  // settle — a settle would pump home and deliver the parked frames, which
  // is exactly what this fault must prevent.
  w.wedge_shard_raw(0);
  const std::uint64_t shed_before = w.ric.supervisor_shed();
  // advance() pumps home too, but the fan-out ring drains only via
  // pump_home... which would deliver them. Drive the supervisor directly.
  for (Nanos t = w.clock.now(); w.ric.supervisor().stats().restarts == 0;) {
    t += 10 * kMilli;
    w.clock.set(t);
    w.ric.supervisor().poll(t);
    ASSERT_LT(t, 10 * kSecond);
  }
  EXPECT_GE(w.ric.supervisor_shed(), shed_before + 3)
      << "parked fan-out must land in supervisor_shed";
  w.unwedge_shard(0);
  w.advance(2 * kSecond);
  w.settle();
  w.expect_supervised_reconciles();
}

// ---------------------------------------------------------------------------
// Satellite: directory snapshot resync racing agent churn
// ---------------------------------------------------------------------------

TEST(DirectoryResync, SnapshotRacingChurnConvergesWithoutGhosts) {
  // Tiny event ring so incremental directory traffic overflows and forces
  // snapshot resyncs while agents churn.
  server::ShardedConfig cfg = sup_cfg();
  cfg.event_ring = 2;
  ShardWorld w(2, cfg, /*supervised=*/true);
  w.agent_rc = fast_rc();

  // A stable population plus churners that attach/detach while snapshots
  // are in flight.
  auto& stable0 = w.add_agent(0);
  auto& stable1 = w.add_agent(1);
  ASSERT_TRUE(w.converge(stable0));
  ASSERT_TRUE(w.converge(stable1));

  std::vector<ShardWorld::Node*> churners;
  for (int i = 0; i < 6; ++i)
    churners.push_back(&w.add_agent(static_cast<std::uint32_t>(i % 2)));
  for (auto* c : churners) ASSERT_TRUE(w.converge(*c));

  // Churn: kill and re-home the churners repeatedly; each burst overflows
  // the 2-deep event ring, so snapshots race the very churn they describe.
  for (int round = 0; round < 4; ++round) {
    for (auto* c : churners) c->link->kill();
    w.advance(300 * kMilli);
    for (auto* c : churners)
      for (Nanos t = 0; !w.established(*c) && t < 10 * kSecond;
           t += 50 * kMilli)
        w.advance(50 * kMilli);
  }
  w.advance(kSecond);
  w.settle();
  EXPECT_GT(w.ric.directory_resyncs(), 0u)
      << "test did not actually exercise the resync path";

  // Converged view: every live agent exactly once, no ghosts of any dead
  // incarnation, in both directions. Churners re-attached to a LIVE server,
  // so their ids drifted — re-discover before comparing.
  const auto ids = w.ric.directory().agents();
  EXPECT_EQ(ids.size(), 2u + churners.size())
      << "ghost or duplicate directory entries";
  for (const auto& n : w.nodes) {
    w.refresh_ids(*n);
    int hits = 0;
    for (auto id : ids)
      if (id == n->gid) hits++;
    EXPECT_EQ(hits, 1) << "agent nb=" << n->nb_id << " appears " << hits
                       << " times in the merged directory";
  }
}

// ---------------------------------------------------------------------------
// Northbound REST export (telemetry health metrics)
// ---------------------------------------------------------------------------

TEST(SupervisionRest, ExportsHealthAndRecoveryCounters) {
  ShardWorld w(2, sup_cfg(), /*supervised=*/true);
  w.agent_rc = fast_rc();
  w.advance(100 * kMilli);
  w.wedge_shard(1);
  w.advance(kSecond);  // detect + rebuild + recover
  ASSERT_EQ(w.ric.supervisor().stats().restarts, 1u);

  // The REST layer renders supervisor state; drive the handlers directly
  // (the HTTP plumbing itself is covered by the REST tests).
  Reactor r;
  ctrl::HttpServer http(r);
  ctrl::SupervisionRest rest(http, w.ric);
  ASSERT_TRUE(http.listen(0).is_ok());
  std::string shards_body, sup_body;
  // The release store publishes the bodies written before it; the main
  // thread's acquire load pairs with it (and join() below is the fallback).
  std::atomic<bool> got{false};
  // One-shot client on a helper thread would break determinism; use the
  // blocking client against the reactor pumped inline instead.
  std::thread client([&] {
    auto resp1 = ctrl::HttpClient::request("127.0.0.1", http.port(), "GET",
                                           "/shards");
    auto resp2 = ctrl::HttpClient::request("127.0.0.1", http.port(), "GET",
                                           "/supervision");
    if (resp1.is_ok() && resp2.is_ok()) {
      shards_body = resp1.value().body;
      sup_body = resp2.value().body;
      got.store(true, std::memory_order_release);
    }
  });
  for (int i = 0; i < 2000 && !got.load(std::memory_order_acquire); ++i)
    r.run_once(1);
  client.join();
  ASSERT_TRUE(got.load());

  auto shards = ctrl::Json::parse(shards_body);
  ASSERT_TRUE(shards.is_ok());
  const auto& arr = shards.value().as_object().at("shards").as_array();
  ASSERT_EQ(arr.size(), 2u);
  EXPECT_EQ(arr[0].as_object().at("health").as_string(), "healthy");
  EXPECT_EQ(arr[1].as_object().at("health").as_string(), "healthy");
  EXPECT_EQ(arr[1].as_object().at("restarts").as_number(), 1.0);

  auto sup = ctrl::Json::parse(sup_body);
  ASSERT_TRUE(sup.is_ok());
  const auto& o = sup.value().as_object();
  EXPECT_EQ(o.at("supervisor_quarantines").as_number(), 1.0);
  EXPECT_EQ(o.at("supervisor_restarts").as_number(), 1.0);
  EXPECT_EQ(o.at("supervisor_recoveries").as_number(), 1.0);
  EXPECT_GT(o.at("mttr_last_ms").as_number(), 0.0);
}

// ---------------------------------------------------------------------------
// Seeded kill/recover chaos soak: 12 seeds x {1,2,4} shards, double-run
// byte-identical, every agent re-homed, ledger exact
// ---------------------------------------------------------------------------

std::string soak_run(std::uint64_t seed) {
  const std::uint32_t shards = soak_shards(seed);
  ShardWorld w(shards, sup_cfg(), /*supervised=*/true);
  w.agent_rc = fast_rc();
  w.enable_fanout();

  // Seeded world population: 1-2 agents per shard.
  std::uint64_t rng = seed * 6364136223846793005ull + 1442695040888963407ull;
  auto next = [&rng] {
    rng = rng * 6364136223846793005ull + 1442695040888963407ull;
    return static_cast<std::uint32_t>(rng >> 33);
  };
  std::vector<ShardWorld::Node*> agents;
  for (std::uint32_t s = 0; s < shards; ++s) {
    const int count = 1 + static_cast<int>(next() % 2);
    for (int i = 0; i < count; ++i) agents.push_back(&w.add_agent(s, 0));
  }
  for (auto* a : agents) EXPECT_TRUE(w.converge(*a));
  w.advance(100 * kMilli);

  // Seeded fault plan: 3 faults, each wedging or crashing one shard after
  // the nth emission burst (the crash-on-nth-event knob).
  for (int round = 0; round < 3; ++round) {
    const std::uint32_t victim = next() % shards;
    const bool crash = (next() % 2) == 0;
    const std::uint32_t nth = 1 + next() % 3;

    for (std::uint32_t burst = 0; burst < nth; ++burst) {
      for (auto* a : agents) a->fn->emit(a->ctrl);
      w.advance(20 * kMilli);
    }
    ShardFault f;
    f.kind = crash ? ShardFault::Kind::crash : ShardFault::Kind::wedge;
    f.shard = victim;
    f.nth = nth;
    w.inject(f);
    // Emit through the outage: victims buffer/shed, the rest flow.
    for (int i = 0; i < 6; ++i) {
      for (auto* a : agents) a->fn->emit(a->ctrl);
      w.advance(100 * kMilli);
    }
    // Recovery window: re-home everyone before the next fault.
    w.advance(3 * kSecond);
    for (auto* a : agents)
      EXPECT_TRUE(w.established(*a))
          << "seed " << seed << " round " << round << ": agent nb="
          << a->nb_id << " not re-homed";
  }

  // Final drain: flush buffered backlogs, then reconcile the world.
  w.advance(2 * kSecond);
  w.settle();
  w.expect_supervised_reconciles();
  EXPECT_EQ(w.ric.supervisor().stats().quarantines,
            w.ric.supervisor().stats().recoveries)
      << "seed " << seed << ": a quarantined shard never recovered";
  return w.trace();
}

class SuperviseSoak : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SuperviseSoak, KillRecoverReconcileAndReplayByteIdentically) {
  const std::uint64_t seed = GetParam();
  const std::string run1 = soak_run(seed);
  if (::testing::Test::HasFailure()) return;  // don't double-report
  const std::string run2 = soak_run(seed);
  EXPECT_EQ(run1, run2) << "seed " << seed
                        << ": supervised world is not deterministic";
}

INSTANTIATE_TEST_SUITE_P(Seeds, SuperviseSoak,
                         ::testing::Range<std::uint64_t>(1, 13));

}  // namespace
}  // namespace flexric::test
