// Failure injection and lifecycle tests: abrupt disconnects, resets, live
// RAN-function updates (RICserviceUpdate), the UE-ASSOC SM, and the
// disaggregated Fig. 4 association flow.
#include <gtest/gtest.h>

#include "agent/agent.hpp"
#include "e2sm/assoc_sm.hpp"
#include "e2sm/common.hpp"
#include "helpers.hpp"
#include "ran/functions.hpp"
#include "server/server.hpp"

namespace flexric {
namespace {

using test::pump;
using test::pump_until;

constexpr WireFormat kFmt = WireFormat::flat;

ran::CellConfig nr_cell() {
  return {ran::Rat::nr, 1, 106, kMilli, 20, false};
}

struct Stack {
  Reactor reactor;
  ran::BaseStation bs{nr_cell()};
  agent::E2Agent agent{reactor, {{1, 10, e2ap::NodeType::gnb}, kFmt}};
  ran::BsFunctionBundle bundle{bs, agent, kFmt};
  server::E2Server server{reactor, {21, kFmt}};
  std::shared_ptr<MsgTransport> agent_side, server_side;
  Nanos now = 0;

  Stack() {
    auto [a, s] = LocalTransport::make_pair(reactor);
    agent_side = a;
    server_side = s;
    server.attach(s);
    (void)agent.add_controller(a);
    test::pump_until(reactor,
                     [this] { return server.ran_db().num_agents() == 1; });
  }
  void run_ttis(int n) {
    for (int t = 0; t < n; ++t) {
      now += kMilli;
      bs.tick(now);
      bundle.on_tti(now);
      reactor.run_once(0);
    }
  }
  Buffer periodic(std::uint32_t ms) {
    return e2sm::sm_encode(
        e2sm::EventTrigger{e2sm::TriggerKind::periodic, ms}, kFmt);
  }
};

// ---------------------------------------------------------------------------
// Abrupt disconnects
// ---------------------------------------------------------------------------

TEST(Failures, AgentDisconnectCleansServerState) {
  Stack s;
  (void)s.bs.attach_ue({100, 1, 0, 15, 20});
  int got = 0;
  server::SubCallbacks cbs;
  cbs.on_indication = [&](const e2ap::Indication&) { got++; };
  auto h = s.server.subscribe(1, e2sm::mac::Sm::kId, s.periodic(1),
                              {{1, e2ap::ActionType::report, {}}}, cbs);
  ASSERT_TRUE(h.is_ok());
  pump(s.reactor);
  s.run_ttis(5);
  EXPECT_GT(got, 0);

  bool disconnected = false;
  struct Watcher : server::IApp {
    explicit Watcher(bool& flag) : flag_(flag) {}
    const char* name() const override { return "w"; }
    void on_agent_disconnected(server::AgentId) override { flag_ = true; }
    bool& flag_;
  };
  s.server.add_iapp(std::make_shared<Watcher>(disconnected));

  s.agent_side->close();  // abrupt: no reset, no delete
  pump(s.reactor, 10);
  EXPECT_TRUE(disconnected);
  EXPECT_EQ(s.server.ran_db().num_agents(), 0u);
  // Late unsubscribe on the dead handle fails cleanly.
  EXPECT_FALSE(s.server.unsubscribe(*h).is_ok());
  // Control to the dead agent fails cleanly.
  EXPECT_FALSE(
      s.server.send_control(1, e2sm::mac::Sm::kId, {}, {}, {}).is_ok());
}

TEST(Failures, ControllerDisconnectTearsDownAgentSubscriptions) {
  Stack s;
  (void)s.bs.attach_ue({100, 1, 0, 15, 20});
  server::SubCallbacks cbs;
  (void)s.server.subscribe(1, e2sm::mac::Sm::kId, s.periodic(1),
                     {{1, e2ap::ActionType::report, {}}}, cbs);
  pump(s.reactor);
  EXPECT_EQ(s.bundle.mac().num_subscriptions(), 1u);
  s.server_side->close();
  pump(s.reactor, 10);
  EXPECT_EQ(s.bundle.mac().num_subscriptions(), 0u);
  // Further TTIs must not crash nor send anything.
  s.run_ttis(5);
  SUCCEED();
}

TEST(Failures, ResetClearsSubscriptionsAndResponds) {
  Stack s;
  (void)s.bs.attach_ue({100, 1, 0, 15, 20});
  server::SubCallbacks cbs;
  (void)s.server.subscribe(1, e2sm::mac::Sm::kId, s.periodic(1),
                     {{1, e2ap::ActionType::report, {}}}, cbs);
  pump(s.reactor);
  EXPECT_EQ(s.bundle.mac().num_subscriptions(), 1u);
  // Inject a ResetRequest directly over the wire (controller-initiated).
  e2ap::ResetRequest reset;
  reset.trans_id = 9;
  reset.cause = {e2ap::Cause::Group::misc, 0};
  auto wire = e2ap::codec_for(kFmt).encode(e2ap::Msg{reset});
  ASSERT_TRUE(wire.is_ok());
  (void)s.server_side->send(*wire);
  pump(s.reactor, 10);
  EXPECT_EQ(s.bundle.mac().num_subscriptions(), 0u);
}

TEST(Failures, GarbageOnTheWireIsIgnored) {
  Stack s;
  Buffer garbage{0xDE, 0xAD, 0xBE, 0xEF, 0x42};
  (void)s.server_side->send(garbage);  // towards the agent
  (void)s.agent_side->send(garbage);   // towards the server
  pump(s.reactor, 10);
  // Both sides alive and functional.
  (void)s.bs.attach_ue({100, 1, 0, 15, 20});
  int got = 0;
  server::SubCallbacks cbs;
  cbs.on_indication = [&](const e2ap::Indication&) { got++; };
  (void)s.server.subscribe(1, e2sm::mac::Sm::kId, s.periodic(1),
                     {{1, e2ap::ActionType::report, {}}}, cbs);
  pump(s.reactor);
  s.run_ttis(5);
  EXPECT_GT(got, 0);
}

TEST(Failures, MalformedEventTriggerYieldsSubscriptionFailure) {
  Stack s;
  bool failed = false;
  server::SubCallbacks cbs;
  cbs.on_failure = [&](const e2ap::SubscriptionFailure&) { failed = true; };
  (void)s.server.subscribe(1, e2sm::mac::Sm::kId, Buffer{0xFF, 0xFF},
                     {{1, e2ap::ActionType::report, {}}}, cbs);
  ASSERT_TRUE(pump_until(s.reactor, [&] { return failed; }));
}

TEST(Failures, MalformedControlPayloadYieldsControlFailure) {
  Stack s;
  bool failed = false;
  server::CtrlCallbacks cbs;
  cbs.on_failure = [&](const e2ap::ControlFailure&) { failed = true; };
  (void)s.server.send_control(1, e2sm::slice::Sm::kId, {}, Buffer{0x01}, cbs);
  ASSERT_TRUE(pump_until(s.reactor, [&] { return failed; }));
}

// ---------------------------------------------------------------------------
// Live service updates (RICserviceUpdate)
// ---------------------------------------------------------------------------

TEST(ServiceUpdate, LiveFunctionAdditionReachesRanDb) {
  Stack s;
  int updates = 0;
  struct Watcher : server::IApp {
    explicit Watcher(int& n) : n_(n) {}
    const char* name() const override { return "w"; }
    void on_agent_updated(const server::AgentInfo&) override { n_++; }
    int& n_;
  };
  s.server.add_iapp(std::make_shared<Watcher>(updates));

  std::size_t before = s.server.ran_db().agent(1)->functions.size();
  ASSERT_TRUE(
      s.agent.add_function_live(std::make_shared<ran::HwFunction>(kFmt))
          .is_ok());
  ASSERT_TRUE(pump_until(s.reactor, [&] { return updates == 1; }));
  EXPECT_EQ(s.server.ran_db().agent(1)->functions.size(), before + 1);
  EXPECT_EQ(s.server.ran_db().agents_with_function(e2sm::hw::Sm::kId).size(),
            1u);
}

TEST(ServiceUpdate, LiveAdditionIsSubscribableImmediately) {
  Stack s;
  (void)s.agent.add_function_live(std::make_shared<ran::HwFunction>(kFmt));
  pump(s.reactor, 10);
  bool responded = false;
  server::SubCallbacks cbs;
  cbs.on_response = [&](const e2ap::SubscriptionResponse&) {
    responded = true;
  };
  (void)s.server.subscribe(
      1, e2sm::hw::Sm::kId,
      e2sm::sm_encode(e2sm::EventTrigger{e2sm::TriggerKind::on_event, 0},
                      kFmt),
      {{1, e2ap::ActionType::report, {}}}, cbs);
  ASSERT_TRUE(pump_until(s.reactor, [&] { return responded; }));
}

TEST(ServiceUpdate, LiveRemovalWithdrawsFunction) {
  Stack s;
  std::size_t before = s.server.ran_db().agent(1)->functions.size();
  ASSERT_TRUE(s.agent.remove_function_live(e2sm::mac::Sm::kId).is_ok());
  ASSERT_TRUE(pump_until(s.reactor, [&] {
    return s.server.ran_db().agent(1)->functions.size() == before - 1;
  }));
  // Subscribing to the removed function now fails.
  bool failed = false;
  server::SubCallbacks cbs;
  cbs.on_failure = [&](const e2ap::SubscriptionFailure&) { failed = true; };
  (void)s.server.subscribe(1, e2sm::mac::Sm::kId, s.periodic(1),
                     {{1, e2ap::ActionType::report, {}}}, cbs);
  ASSERT_TRUE(pump_until(s.reactor, [&] { return failed; }));
  EXPECT_FALSE(s.agent.remove_function_live(9999).is_ok());
}

// ---------------------------------------------------------------------------
// UE-ASSOC SM + Fig. 4 disaggregated flow
// ---------------------------------------------------------------------------

TEST(AssocSm, CtrlRoundTrip) {
  e2sm::assoc::CtrlMsg msg;
  msg.kind = e2sm::assoc::CtrlKind::dissociate;
  msg.rnti = 77;
  msg.controller_index = 2;
  for (WireFormat f :
       {WireFormat::per, WireFormat::flat, WireFormat::proto}) {
    Buffer wire = e2sm::sm_encode(msg, f);
    auto back = e2sm::sm_decode<e2sm::assoc::CtrlMsg>(wire, f);
    ASSERT_TRUE(back.is_ok());
    EXPECT_EQ(*back, msg);
  }
}

TEST(AssocSm, OnlyPrimaryControllerMayConfigure) {
  Reactor reactor;
  agent::E2Agent agent(reactor, {{1, 10, e2ap::NodeType::du}, kFmt});
  (void)agent.register_function(std::make_shared<ran::AssocFunction>(kFmt));
  server::E2Server primary(reactor, {1, kFmt});
  server::E2Server secondary(reactor, {2, kFmt});
  auto [a0, s0] = LocalTransport::make_pair(reactor);
  primary.attach(s0);
  (void)agent.add_controller(a0);
  auto [a1, s1] = LocalTransport::make_pair(reactor);
  secondary.attach(s1);
  (void)agent.add_controller(a1);
  pump_until(reactor, [&] {
    return primary.ran_db().num_agents() == 1 &&
           secondary.ran_db().num_agents() == 1;
  });

  auto send_assoc = [&](server::E2Server& from) {
    e2sm::assoc::CtrlMsg msg;
    msg.rnti = 100;
    msg.controller_index = 1;
    std::optional<bool> ok;
    server::CtrlCallbacks cbs;
    cbs.on_ack = [&](const e2ap::ControlAck& ack) {
      ok = e2sm::sm_decode<e2sm::assoc::CtrlOutcome>(ack.outcome, kFmt)
               ->success;
    };
    cbs.on_failure = [&](const e2ap::ControlFailure&) { ok = false; };
    (void)from.send_control(1, e2sm::assoc::Sm::kId, {},
                      e2sm::sm_encode(msg, kFmt), cbs);
    pump_until(reactor, [&] { return ok.has_value(); });
    return ok.value_or(false);
  };
  EXPECT_FALSE(send_assoc(secondary));  // cannot widen its own view
  EXPECT_FALSE(agent.ue_visible(100, 1));
  EXPECT_TRUE(send_assoc(primary));
  EXPECT_TRUE(agent.ue_visible(100, 1));
}

TEST(Disaggregated, Fig4AssociationFlow) {
  Reactor reactor;
  ran::BaseStation bs(nr_cell());
  // CU: RRC; DU: MAC + ASSOC. Same (plmn, nb_id) => one RAN entity.
  agent::E2Agent cu(reactor, {{1, 55, e2ap::NodeType::cu}, kFmt});
  (void)cu.register_function(std::make_shared<ran::RrcFunction>(bs, kFmt));
  agent::E2Agent du(reactor, {{1, 55, e2ap::NodeType::du}, kFmt});
  auto mac_fn = std::make_shared<ran::MacStatsFunction>(bs, kFmt);
  (void)du.register_function(mac_fn);
  (void)du.register_function(std::make_shared<ran::AssocFunction>(kFmt));

  server::E2Server infra(reactor, {1, kFmt});
  auto [c0, s0] = LocalTransport::make_pair(reactor);
  infra.attach(s0);
  (void)cu.add_controller(c0);
  auto [d0, s1] = LocalTransport::make_pair(reactor);
  infra.attach(s1);
  (void)du.add_controller(d0);
  server::E2Server specialized(reactor, {2, kFmt});
  auto [d1, s2] = LocalTransport::make_pair(reactor);
  specialized.attach(s2);
  (void)du.add_controller(d1);
  pump_until(reactor, [&] {
    return infra.ran_db().num_agents() == 2 &&
           specialized.ran_db().num_agents() == 1;
  });
  const auto* entity = infra.ran_db().entity(1, 55);
  ASSERT_NE(entity, nullptr);
  ASSERT_TRUE(entity->complete());

  // Specialized controller subscribes MAC at the DU.
  std::optional<std::size_t> seen;
  server::SubCallbacks mac_cbs;
  mac_cbs.on_indication = [&](const e2ap::Indication& ind) {
    seen = e2sm::sm_decode<e2sm::mac::IndicationMsg>(ind.message, kFmt)
               ->ues.size();
  };
  (void)specialized.subscribe(
      1, e2sm::mac::Sm::kId,
      e2sm::sm_encode(e2sm::EventTrigger{e2sm::TriggerKind::periodic, 1},
                      kFmt),
      {{1, e2ap::ActionType::report, {}}}, mac_cbs);

  // Infra watches RRC at the CU and configures the DU on attach.
  server::SubCallbacks rrc_cbs;
  rrc_cbs.on_indication = [&](const e2ap::Indication& ind) {
    auto ev = e2sm::sm_decode<e2sm::rrc::IndicationMsg>(ind.message, kFmt);
    if (!ev || ev->kind != e2sm::rrc::EventKind::attach) return;
    e2sm::assoc::CtrlMsg assoc;
    assoc.rnti = ev->rnti;
    assoc.controller_index = 1;
    (void)infra.send_control(*entity->du, e2sm::assoc::Sm::kId, {},
                       e2sm::sm_encode(assoc, kFmt), {}, false);
  };
  (void)infra.subscribe(*entity->cu, e2sm::rrc::Sm::kId,
                  e2sm::sm_encode(
                      e2sm::EventTrigger{e2sm::TriggerKind::on_event, 0},
                      kFmt),
                  {{1, e2ap::ActionType::report, {}}}, rrc_cbs);
  pump(reactor, 10);

  auto run_ttis = [&](int n) {
    static Nanos now = 0;
    for (int t = 0; t < n; ++t) {
      now += kMilli;
      bs.tick(now);
      mac_fn->on_tti(now);
      reactor.run_once(0);
    }
  };
  run_ttis(5);
  ASSERT_TRUE(seen.has_value());
  EXPECT_EQ(*seen, 0u);  // invisible before association

  (void)bs.attach_ue({100, 20899, 0, 15, 20});  // Fig. 4 step (1)
  pump(reactor, 10);                      // steps (2)-(4)
  run_ttis(10);                           // step (5)
  EXPECT_EQ(*seen, 1u);
}

}  // namespace
}  // namespace flexric
