// Integration tests for the bundled RAN functions: periodic stats SMs, RRC
// events, slice + TC control through the full agent/server/E2AP stack, HW
// ping, and per-controller UE visibility (§4.1.2).
#include <gtest/gtest.h>

#include "agent/agent.hpp"
#include "e2sm/common.hpp"
#include "helpers.hpp"
#include "ran/functions.hpp"
#include "server/server.hpp"

namespace flexric {
namespace {

using test::pump;
using test::pump_until;

constexpr WireFormat kFmt = WireFormat::flat;

ran::CellConfig nr_cell() {
  ran::CellConfig cfg;
  cfg.rat = ran::Rat::nr;
  cfg.num_prbs = 106;
  cfg.default_mcs = 20;
  return cfg;
}

/// Full single-BS stack: simulator + agent with all bundled functions +
/// server, wired over an in-process transport.
struct Stack {
  Reactor reactor;
  ran::BaseStation bs{nr_cell()};
  agent::E2Agent agent{reactor,
                       {{1, 10, e2ap::NodeType::gnb}, kFmt}};
  ran::BsFunctionBundle bundle{bs, agent, kFmt};
  server::E2Server server{reactor, {21, kFmt}};
  Nanos now = 0;

  Stack() {
    auto [a_side, s_side] = LocalTransport::make_pair(reactor);
    server.attach(s_side);
    EXPECT_TRUE(agent.add_controller(a_side).is_ok());
    test::pump_until(reactor,
                     [this] { return server.ran_db().num_agents() == 1; });
  }

  /// Advance virtual time with reactor pumping interleaved.
  void run_ttis(int n, std::function<void(Nanos)> per_tti = nullptr) {
    for (int t = 0; t < n; ++t) {
      now += kMilli;
      if (per_tti) per_tti(now);
      bs.tick(now);
      bundle.on_tti(now);
      reactor.run_once(0);
    }
  }

  Buffer trigger(std::uint32_t period_ms,
                 e2sm::TriggerKind kind = e2sm::TriggerKind::periodic) {
    return e2sm::sm_encode(e2sm::EventTrigger{kind, period_ms}, kFmt);
  }
};

TEST(Functions, AgentAdvertisesAllBundledSms) {
  Stack s;
  const auto* info = s.server.ran_db().agent(1);
  ASSERT_NE(info, nullptr);
  std::set<std::uint16_t> ids;
  for (const auto& f : info->functions) ids.insert(f.id);
  EXPECT_EQ(ids, (std::set<std::uint16_t>{
                     e2sm::mac::Sm::kId, e2sm::rlc::Sm::kId,
                     e2sm::pdcp::Sm::kId, e2sm::kpm::Sm::kId,
                     e2sm::rrc::Sm::kId, e2sm::slice::Sm::kId,
                     e2sm::tc::Sm::kId}));
}

TEST(Functions, MacStatsPeriodicReports) {
  Stack s;
  (void)s.bs.attach_ue({100, 1, 0, 15, 20});
  std::vector<e2sm::mac::IndicationMsg> reports;
  server::SubCallbacks cbs;
  cbs.on_indication = [&](const e2ap::Indication& ind) {
    auto msg = e2sm::sm_decode<e2sm::mac::IndicationMsg>(ind.message, kFmt);
    ASSERT_TRUE(msg.is_ok());
    reports.push_back(std::move(*msg));
  };
  auto h = s.server.subscribe(1, e2sm::mac::Sm::kId, s.trigger(1),
                              {{1, e2ap::ActionType::report, {}}}, cbs);
  ASSERT_TRUE(h.is_ok());
  pump(s.reactor);
  s.run_ttis(50);
  pump(s.reactor, 5);
  // 1 ms reporting: one report per TTI.
  EXPECT_GE(reports.size(), 48u);
  ASSERT_FALSE(reports.empty());
  EXPECT_EQ(reports[0].ues.size(), 1u);
  EXPECT_EQ(reports[0].ues[0].rnti, 100);
}

TEST(Functions, ReportPeriodIsHonored) {
  Stack s;
  (void)s.bs.attach_ue({100, 1, 0, 15, 20});
  int count = 0;
  server::SubCallbacks cbs;
  cbs.on_indication = [&](const e2ap::Indication&) { count++; };
  (void)s.server.subscribe(1, e2sm::mac::Sm::kId, s.trigger(10),
                     {{1, e2ap::ActionType::report, {}}}, cbs);
  pump(s.reactor);
  s.run_ttis(100);
  pump(s.reactor, 5);
  EXPECT_GE(count, 9);
  EXPECT_LE(count, 11);
}

TEST(Functions, HarqOnlyWhenRequested) {
  Stack s;
  (void)s.bs.attach_ue({100, 1, 0, 15, 20});
  std::optional<e2sm::mac::IndicationMsg> with, without;
  auto subscribe = [&](bool harq, auto& out) {
    e2sm::mac::ActionDef def;
    def.include_harq = harq;
    server::SubCallbacks cbs;
    cbs.on_indication = [&out](const e2ap::Indication& ind) {
      out = *e2sm::sm_decode<e2sm::mac::IndicationMsg>(ind.message, kFmt);
    };
    (void)s.server.subscribe(1, e2sm::mac::Sm::kId, s.trigger(1),
                       {{1, e2ap::ActionType::report,
                         e2sm::sm_encode(def, kFmt)}},
                       cbs);
  };
  subscribe(true, with);
  subscribe(false, without);
  pump(s.reactor);
  // Generate traffic so HARQ retx counters have a chance to tick.
  s.run_ttis(600, [&](Nanos) {
    ran::Packet p;
    p.size_bytes = 1400;
    s.bs.deliver_downlink(100, 1, p);
  });
  ASSERT_TRUE(with.has_value());
  ASSERT_TRUE(without.has_value());
  EXPECT_EQ(without->ues[0].harq_retx, 0u);
}

TEST(Functions, SubscriptionDeleteStopsReports) {
  Stack s;
  (void)s.bs.attach_ue({100, 1, 0, 15, 20});
  int count = 0;
  server::SubCallbacks cbs;
  cbs.on_indication = [&](const e2ap::Indication&) { count++; };
  auto h = s.server.subscribe(1, e2sm::mac::Sm::kId, s.trigger(1),
                              {{1, e2ap::ActionType::report, {}}}, cbs);
  pump(s.reactor);
  s.run_ttis(10);
  ASSERT_TRUE(s.server.unsubscribe(*h).is_ok());
  pump(s.reactor, 5);
  EXPECT_EQ(s.bundle.mac().num_subscriptions(), 0u);
  int at_unsub = count;
  s.run_ttis(20);
  EXPECT_EQ(count, at_unsub);
}

TEST(Functions, OnEventTriggerRejectedByPeriodicSm) {
  Stack s;
  bool failed = false;
  server::SubCallbacks cbs;
  cbs.on_failure = [&](const e2ap::SubscriptionFailure&) { failed = true; };
  (void)s.server.subscribe(1, e2sm::mac::Sm::kId,
                     s.trigger(0, e2sm::TriggerKind::on_event),
                     {{1, e2ap::ActionType::report, {}}}, cbs);
  ASSERT_TRUE(pump_until(s.reactor, [&] { return failed; }));
}

TEST(Functions, RlcAndPdcpAndKpmReports) {
  Stack s;
  (void)s.bs.attach_ue({100, 1, 0, 15, 20});
  std::optional<e2sm::rlc::IndicationMsg> rlc;
  std::optional<e2sm::pdcp::IndicationMsg> pdcp;
  std::optional<e2sm::kpm::IndicationMsg> kpm;
  server::SubCallbacks rlc_cbs, pdcp_cbs, kpm_cbs;
  rlc_cbs.on_indication = [&](const e2ap::Indication& ind) {
    rlc = *e2sm::sm_decode<e2sm::rlc::IndicationMsg>(ind.message, kFmt);
  };
  pdcp_cbs.on_indication = [&](const e2ap::Indication& ind) {
    pdcp = *e2sm::sm_decode<e2sm::pdcp::IndicationMsg>(ind.message, kFmt);
  };
  kpm_cbs.on_indication = [&](const e2ap::Indication& ind) {
    kpm = *e2sm::sm_decode<e2sm::kpm::IndicationMsg>(ind.message, kFmt);
  };
  (void)s.server.subscribe(1, e2sm::rlc::Sm::kId, s.trigger(5),
                     {{1, e2ap::ActionType::report, {}}}, rlc_cbs);
  (void)s.server.subscribe(1, e2sm::pdcp::Sm::kId, s.trigger(5),
                     {{1, e2ap::ActionType::report, {}}}, pdcp_cbs);
  (void)s.server.subscribe(1, e2sm::kpm::Sm::kId, s.trigger(10),
                     {{1, e2ap::ActionType::report, {}}}, kpm_cbs);
  pump(s.reactor);
  s.run_ttis(50, [&](Nanos) {
    ran::Packet p;
    p.size_bytes = 1200;
    s.bs.deliver_downlink(100, 1, p);
  });
  ASSERT_TRUE(rlc.has_value());
  ASSERT_TRUE(pdcp.has_value());
  ASSERT_TRUE(kpm.has_value());
  EXPECT_EQ(rlc->bearers.size(), 1u);
  EXPECT_GT(pdcp->bearers[0].tx_sdus, 0u);
  EXPECT_FALSE(kpm->metrics.empty());
}

TEST(Functions, RrcEventsReachSubscriber) {
  Stack s;
  std::vector<e2sm::rrc::IndicationMsg> events;
  server::SubCallbacks cbs;
  cbs.on_indication = [&](const e2ap::Indication& ind) {
    events.push_back(
        *e2sm::sm_decode<e2sm::rrc::IndicationMsg>(ind.message, kFmt));
  };
  (void)s.server.subscribe(1, e2sm::rrc::Sm::kId,
                     s.trigger(0, e2sm::TriggerKind::on_event),
                     {{1, e2ap::ActionType::report, {}}}, cbs);
  pump(s.reactor);
  (void)s.bs.attach_ue({100, 20899, 5, 15, 20});
  (void)s.bs.detach_ue(100);
  pump(s.reactor, 5);
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].kind, e2sm::rrc::EventKind::attach);
  EXPECT_EQ(events[0].s_nssai, 5u);
  EXPECT_EQ(events[1].kind, e2sm::rrc::EventKind::detach);
}

TEST(Functions, RrcDetachOnlyFilter) {
  Stack s;
  std::vector<e2sm::rrc::EventKind> kinds;
  e2sm::rrc::ActionDef def;
  def.attach_events = false;
  def.detach_events = true;
  server::SubCallbacks cbs;
  cbs.on_indication = [&](const e2ap::Indication& ind) {
    kinds.push_back(
        e2sm::sm_decode<e2sm::rrc::IndicationMsg>(ind.message, kFmt)->kind);
  };
  (void)s.server.subscribe(1, e2sm::rrc::Sm::kId,
                     s.trigger(0, e2sm::TriggerKind::on_event),
                     {{1, e2ap::ActionType::report,
                       e2sm::sm_encode(def, kFmt)}},
                     cbs);
  pump(s.reactor);
  (void)s.bs.attach_ue({100, 1, 0, 15, 20});
  (void)s.bs.detach_ue(100);
  pump(s.reactor, 5);
  ASSERT_EQ(kinds.size(), 1u);
  EXPECT_EQ(kinds[0], e2sm::rrc::EventKind::detach);
}

TEST(Functions, SliceControlViaE2AppliesAndAcks) {
  Stack s;
  (void)s.bs.attach_ue({100, 1, 0, 15, 20});
  e2sm::slice::CtrlMsg msg;
  msg.kind = e2sm::slice::CtrlKind::add_mod;
  msg.algo = e2sm::slice::Algo::nvs;
  e2sm::slice::SliceConf conf;
  conf.id = 1;
  conf.nvs = {e2sm::slice::NvsKind::capacity, 0.5, 0, 0};
  msg.slices = {conf};

  std::optional<bool> success;
  server::CtrlCallbacks cbs;
  cbs.on_ack = [&](const e2ap::ControlAck& ack) {
    success =
        e2sm::sm_decode<e2sm::slice::CtrlOutcome>(ack.outcome, kFmt)->success;
  };
  (void)s.server.send_control(1, e2sm::slice::Sm::kId, {},
                        e2sm::sm_encode(msg, kFmt), cbs);
  ASSERT_TRUE(pump_until(s.reactor, [&] { return success.has_value(); }));
  EXPECT_TRUE(*success);
  EXPECT_EQ(s.bs.mac().num_slices(), 2u);  // default + new
}

TEST(Functions, SliceControlRejectionReportedInOutcome) {
  Stack s;
  e2sm::slice::CtrlMsg msg;
  msg.kind = e2sm::slice::CtrlKind::add_mod;
  msg.algo = e2sm::slice::Algo::nvs;
  e2sm::slice::SliceConf a, b;
  a.id = 1;
  a.nvs = {e2sm::slice::NvsKind::capacity, 0.8, 0, 0};
  b.id = 2;
  b.nvs = {e2sm::slice::NvsKind::capacity, 0.4, 0, 0};
  msg.slices = {a, b};
  std::optional<e2sm::slice::CtrlOutcome> outcome;
  server::CtrlCallbacks cbs;
  cbs.on_ack = [&](const e2ap::ControlAck& ack) {
    outcome = *e2sm::sm_decode<e2sm::slice::CtrlOutcome>(ack.outcome, kFmt);
  };
  (void)s.server.send_control(1, e2sm::slice::Sm::kId, {},
                        e2sm::sm_encode(msg, kFmt), cbs);
  ASSERT_TRUE(pump_until(s.reactor, [&] { return outcome.has_value(); }));
  EXPECT_FALSE(outcome->success);
  EXPECT_NE(outcome->diagnostic.find("admission"), std::string::npos);
}

TEST(Functions, SliceStatusReports) {
  Stack s;
  (void)s.bs.attach_ue({100, 1, 0, 15, 20});
  std::optional<e2sm::slice::IndicationMsg> status;
  server::SubCallbacks cbs;
  cbs.on_indication = [&](const e2ap::Indication& ind) {
    status = *e2sm::sm_decode<e2sm::slice::IndicationMsg>(ind.message, kFmt);
  };
  (void)s.server.subscribe(1, e2sm::slice::Sm::kId, s.trigger(10),
                     {{1, e2ap::ActionType::report, {}}}, cbs);
  pump(s.reactor);
  s.run_ttis(30);
  ASSERT_TRUE(status.has_value());
  EXPECT_EQ(status->algo, e2sm::slice::Algo::none);
  ASSERT_FALSE(status->slices.empty());  // default slice
}

TEST(Functions, TcControlInstallsQueueFilterPacer) {
  Stack s;
  (void)s.bs.attach_ue({100, 1, 0, 15, 20});
  auto send_tc = [&](e2sm::tc::CtrlMsg msg) {
    std::optional<bool> ok;
    server::CtrlCallbacks cbs;
    cbs.on_ack = [&](const e2ap::ControlAck& ack) {
      ok = e2sm::sm_decode<e2sm::tc::CtrlOutcome>(ack.outcome, kFmt)->success;
    };
    cbs.on_failure = [&](const e2ap::ControlFailure&) { ok = false; };
    (void)s.server.send_control(1, e2sm::tc::Sm::kId, {},
                          e2sm::sm_encode(msg, kFmt), cbs);
    pump_until(s.reactor, [&] { return ok.has_value(); });
    return ok.value_or(false);
  };

  e2sm::tc::CtrlMsg add_q;
  add_q.kind = e2sm::tc::CtrlKind::add_queue;
  add_q.rnti = 100;
  add_q.queue.qid = 1;
  EXPECT_TRUE(send_tc(add_q));
  EXPECT_FALSE(send_tc(add_q));  // duplicate queue rejected

  e2sm::tc::CtrlMsg add_f;
  add_f.kind = e2sm::tc::CtrlKind::add_filter;
  add_f.rnti = 100;
  add_f.filter.filter_id = 1;
  add_f.filter.match.dst_port = 5060;
  add_f.filter.dst_qid = 1;
  EXPECT_TRUE(send_tc(add_f));

  e2sm::tc::CtrlMsg pacer;
  pacer.kind = e2sm::tc::CtrlKind::pacer_conf;
  pacer.rnti = 100;
  pacer.pacer.kind = e2sm::tc::PacerKind::bdp;
  EXPECT_TRUE(send_tc(pacer));

  tc::TcChain* chain = s.bs.tc_chain(100, 1);
  ASSERT_NE(chain, nullptr);
  EXPECT_EQ(chain->num_queues(), 2u);
  EXPECT_EQ(chain->pacer().kind, e2sm::tc::PacerKind::bdp);

  e2sm::tc::CtrlMsg bad;
  bad.kind = e2sm::tc::CtrlKind::add_queue;
  bad.rnti = 999;  // no such UE
  bad.queue.qid = 2;
  EXPECT_FALSE(send_tc(bad));
}

TEST(Functions, TcStatsReports) {
  Stack s;
  (void)s.bs.attach_ue({100, 1, 0, 15, 20});
  std::optional<e2sm::tc::IndicationMsg> stats;
  server::SubCallbacks cbs;
  cbs.on_indication = [&](const e2ap::Indication& ind) {
    stats = *e2sm::sm_decode<e2sm::tc::IndicationMsg>(ind.message, kFmt);
  };
  (void)s.server.subscribe(1, e2sm::tc::Sm::kId, s.trigger(10),
                     {{1, e2ap::ActionType::report, {}}}, cbs);
  pump(s.reactor);
  s.run_ttis(30, [&](Nanos) {
    ran::Packet p;
    p.size_bytes = 800;
    s.bs.deliver_downlink(100, 1, p);
  });
  ASSERT_TRUE(stats.has_value());
  ASSERT_EQ(stats->queues.size(), 1u);  // default queue
  EXPECT_GT(stats->queues[0].tx_pkts, 0u);
}

TEST(Functions, HwPingPongRoundTrip) {
  Reactor reactor;
  agent::E2Agent agent(reactor, {{1, 10, e2ap::NodeType::gnb}, kFmt});
  (void)agent.register_function(std::make_shared<ran::HwFunction>(kFmt));
  server::E2Server server(reactor, {21, kFmt});
  auto [a_side, s_side] = LocalTransport::make_pair(reactor);
  server.attach(s_side);
  (void)agent.add_controller(a_side);
  pump_until(reactor, [&] { return server.ran_db().num_agents() == 1; });

  // Install the pong path (subscription), then ping via control.
  std::optional<e2sm::hw::Pong> pong;
  server::SubCallbacks cbs;
  cbs.on_indication = [&](const e2ap::Indication& ind) {
    pong = *e2sm::sm_decode<e2sm::hw::Pong>(ind.message, kFmt);
  };
  (void)server.subscribe(1, e2sm::hw::Sm::kId,
                   e2sm::sm_encode(
                       e2sm::EventTrigger{e2sm::TriggerKind::on_event, 0},
                       kFmt),
                   {{1, e2ap::ActionType::report, {}}}, cbs);
  pump(reactor, 5);

  e2sm::hw::Ping ping;
  ping.seq = 7;
  ping.sent_ns = 1234;
  ping.payload = Buffer(100, 0x5A);
  (void)server.send_control(1, e2sm::hw::Sm::kId, {},
                      e2sm::sm_encode(ping, kFmt), {},
                      /*ack_requested=*/false);
  ASSERT_TRUE(pump_until(reactor, [&] { return pong.has_value(); }));
  EXPECT_EQ(pong->seq, 7u);
  EXPECT_EQ(pong->ping_sent_ns, 1234u);
  EXPECT_EQ(pong->payload, Buffer(100, 0x5A));
}

TEST(Functions, HwPingWithoutSubscriptionFails) {
  Reactor reactor;
  agent::E2Agent agent(reactor, {{1, 10, e2ap::NodeType::gnb}, kFmt});
  (void)agent.register_function(std::make_shared<ran::HwFunction>(kFmt));
  server::E2Server server(reactor, {21, kFmt});
  auto [a_side, s_side] = LocalTransport::make_pair(reactor);
  server.attach(s_side);
  (void)agent.add_controller(a_side);
  pump_until(reactor, [&] { return server.ran_db().num_agents() == 1; });

  bool failed = false;
  server::CtrlCallbacks cbs;
  cbs.on_failure = [&](const e2ap::ControlFailure&) { failed = true; };
  e2sm::hw::Ping ping;
  (void)server.send_control(1, e2sm::hw::Sm::kId, {}, e2sm::sm_encode(ping, kFmt),
                      cbs);
  ASSERT_TRUE(pump_until(reactor, [&] { return failed; }));
}

// ---------------------------------------------------------------------------
// Multi-controller UE visibility through the stats SMs (§4.1.2)
// ---------------------------------------------------------------------------

TEST(Functions, SecondControllerSeesOnlyAssociatedUes) {
  Stack s;  // controller 0 = s.server
  server::E2Server second(s.reactor, {22, kFmt});
  auto [a_side, s_side] = LocalTransport::make_pair(s.reactor);
  second.attach(s_side);
  ASSERT_TRUE(s.agent.add_controller(a_side).is_ok());
  pump_until(s.reactor, [&] { return second.ran_db().num_agents() == 1; });

  (void)s.bs.attach_ue({100, 1, 0, 15, 20});
  (void)s.bs.attach_ue({101, 1, 0, 15, 20});
  s.agent.associate_ue(101, 1);  // expose only UE 101 to controller 1

  std::optional<e2sm::mac::IndicationMsg> first_view, second_view;
  server::SubCallbacks cbs1, cbs2;
  cbs1.on_indication = [&](const e2ap::Indication& ind) {
    first_view = *e2sm::sm_decode<e2sm::mac::IndicationMsg>(ind.message, kFmt);
  };
  cbs2.on_indication = [&](const e2ap::Indication& ind) {
    second_view =
        *e2sm::sm_decode<e2sm::mac::IndicationMsg>(ind.message, kFmt);
  };
  (void)s.server.subscribe(1, e2sm::mac::Sm::kId, s.trigger(1),
                     {{1, e2ap::ActionType::report, {}}}, cbs1);
  (void)second.subscribe(1, e2sm::mac::Sm::kId, s.trigger(1),
                   {{1, e2ap::ActionType::report, {}}}, cbs2);
  pump(s.reactor);
  s.run_ttis(10);
  pump(s.reactor, 5);

  ASSERT_TRUE(first_view.has_value());
  ASSERT_TRUE(second_view.has_value());
  EXPECT_EQ(first_view->ues.size(), 2u);   // primary sees all
  ASSERT_EQ(second_view->ues.size(), 1u);  // partitioned view
  EXPECT_EQ(second_view->ues[0].rnti, 101);
}

TEST(Functions, SliceAssocForInvisibleUeRejected) {
  Stack s;
  server::E2Server second(s.reactor, {22, kFmt});
  auto [a_side, s_side] = LocalTransport::make_pair(s.reactor);
  second.attach(s_side);
  (void)s.agent.add_controller(a_side);
  pump_until(s.reactor, [&] { return second.ran_db().num_agents() == 1; });
  (void)s.bs.attach_ue({100, 1, 0, 15, 20});

  // Controller 1 (not primary) tries to associate UE 100 it cannot see.
  e2sm::slice::CtrlMsg add;
  add.kind = e2sm::slice::CtrlKind::add_mod;
  add.algo = e2sm::slice::Algo::nvs;
  e2sm::slice::SliceConf conf;
  conf.id = 1;
  conf.nvs.capacity_share = 0.5;
  add.slices = {conf};
  std::optional<bool> add_ok;
  server::CtrlCallbacks add_cbs;
  add_cbs.on_ack = [&](const e2ap::ControlAck& ack) {
    add_ok =
        e2sm::sm_decode<e2sm::slice::CtrlOutcome>(ack.outcome, kFmt)->success;
  };
  (void)second.send_control(1, e2sm::slice::Sm::kId, {},
                      e2sm::sm_encode(add, kFmt), add_cbs);
  pump_until(s.reactor, [&] { return add_ok.has_value(); });
  EXPECT_TRUE(add_ok.value_or(false));

  e2sm::slice::CtrlMsg assoc;
  assoc.kind = e2sm::slice::CtrlKind::assoc_ue;
  assoc.assoc = {{100, 1}};
  bool failed = false;
  server::CtrlCallbacks cbs;
  cbs.on_failure = [&](const e2ap::ControlFailure&) { failed = true; };
  (void)second.send_control(1, e2sm::slice::Sm::kId, {},
                      e2sm::sm_encode(assoc, kFmt), cbs);
  ASSERT_TRUE(pump_until(s.reactor, [&] { return failed; }));
}

}  // namespace
}  // namespace flexric
