// Sharded multi-reactor RIC (DESIGN.md §13): partitioner, SPSC conduits,
// ShardPool scheduling, and the ShardedE2Server cross-shard paths — RAN-DB
// merge-on-query, xApp fan-out, northbound queries, global overload ledger —
// all under the deterministic shard-scheduling harness (shard_world.hpp),
// which drives every shard reactor from one VirtualClock in a fixed
// interleaving order so multi-shard scenarios replay byte-identically.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "common/shard_stats.hpp"
#include "common/spsc_ring.hpp"
#include "server/sharding.hpp"
#include "shard_world.hpp"
#include "transport/shard_pool.hpp"

namespace flexric {
namespace {

using test::ShardWorld;
using test::nb_id_on_shard;

// ---------------------------------------------------------------------------
// Partitioner
// ---------------------------------------------------------------------------

TEST(Sharding, SingleShardOwnsEverything) {
  for (std::uint32_t nb = 1; nb < 100; ++nb)
    EXPECT_EQ(server::shard_of({1, nb, e2ap::NodeType::gnb}, 1), 0u);
}

TEST(Sharding, HashIsAFunctionOfTheFullNodeId) {
  const e2ap::GlobalNodeId a{1, 42, e2ap::NodeType::gnb};
  EXPECT_EQ(server::shard_hash(a), server::shard_hash(a));
  // Each component feeds the hash.
  EXPECT_NE(server::shard_hash(a),
            server::shard_hash({2, 42, e2ap::NodeType::gnb}));
  EXPECT_NE(server::shard_hash(a),
            server::shard_hash({1, 43, e2ap::NodeType::gnb}));
  EXPECT_NE(server::shard_hash(a),
            server::shard_hash({1, 42, e2ap::NodeType::cu}));
}

TEST(Sharding, GlobalAgentIdRoundTrips) {
  const server::AgentId g = server::global_agent_id(3, 0x00ABCD);
  EXPECT_EQ(server::shard_of_global(g), 3u);
  EXPECT_EQ(server::local_agent_id(g), 0x00ABCDu);
  EXPECT_EQ(server::global_agent_id(0, 7), 7u)
      << "shard 0 ids equal their local ids (unsharded compatibility)";
}

// ---------------------------------------------------------------------------
// SpscRing: capacity bounds, FIFO, exact backpressure
// ---------------------------------------------------------------------------

TEST(SpscRing, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(SpscRing<int>(1).capacity(), 2u);
  EXPECT_EQ(SpscRing<int>(2).capacity(), 2u);
  EXPECT_EQ(SpscRing<int>(3).capacity(), 4u);
  EXPECT_EQ(SpscRing<int>(1000).capacity(), 1024u);
}

TEST(SpscRing, FifoOrderAcrossWraps) {
  SpscRing<int> ring(4);
  int out = 0;
  for (int round = 0; round < 10; ++round) {
    for (int i = 0; i < 3; ++i)
      ASSERT_TRUE(ring.try_push(round * 10 + i).is_ok());
    for (int i = 0; i < 3; ++i) {
      ASSERT_TRUE(ring.try_pop(out));
      EXPECT_EQ(out, round * 10 + i);
    }
  }
  EXPECT_TRUE(ring.empty());
}

TEST(SpscRing, FullRingRejectsWithCapacityAndCounts) {
  SpscRing<int> ring(4);
  for (int i = 0; i < 4; ++i) ASSERT_TRUE(ring.try_push(int{i}).is_ok());
  Status st = ring.try_push(99);
  ASSERT_FALSE(st.is_ok());
  EXPECT_EQ(st.code(), Errc::capacity) << "backpressure must be typed";
  EXPECT_EQ(ring.rejected(), 1u);
  EXPECT_EQ(ring.size(), 4u) << "a rejected push must not disturb the ring";
  int out = 0;
  ASSERT_TRUE(ring.try_pop(out));
  EXPECT_EQ(out, 0) << "rejection must not clobber the head";
  EXPECT_TRUE(ring.try_push(99).is_ok()) << "one pop frees one slot";
}

TEST(SpscRing, PopOnEmptyReturnsFalse) {
  SpscRing<int> ring(2);
  int out = 0;
  EXPECT_FALSE(ring.try_pop(out));
}

TEST(SpscRing, CarriesMoveOnlyTypes) {
  SpscRing<std::unique_ptr<int>> ring(2);
  ASSERT_TRUE(ring.try_push(std::make_unique<int>(42)).is_ok());
  std::unique_ptr<int> out;
  ASSERT_TRUE(ring.try_pop(out));
  ASSERT_NE(out, nullptr);
  EXPECT_EQ(*out, 42);
}

// Two real threads hammering one ring. Under ci.sh --shard this runs with
// TSan, which proves the acquire/release protocol; in any build it proves
// nothing is lost or reordered and every rejection was counted.
TEST(SpscRing, TwoThreadHammerLosesNothing) {
  SpscRing<std::uint64_t> ring(64);
  constexpr std::uint64_t kItems = 50000;
  std::uint64_t consumed = 0, sum = 0;
  bool ordered = true;
  std::thread consumer([&] {
    std::uint64_t expected = 0;
    while (consumed < kItems) {
      std::uint64_t v = 0;
      if (!ring.try_pop(v)) {
        std::this_thread::yield();  // single-core CI: let the producer run
        continue;
      }
      if (v != expected) ordered = false;
      expected = v + 1;
      sum += v;
      consumed++;
    }
  });
  std::uint64_t produced = 0;
  while (produced < kItems) {
    if (ring.try_push(std::uint64_t{produced}).is_ok())
      produced++;
    else
      std::this_thread::yield();  // full: every rejection is in rejected()
  }
  consumer.join();
  EXPECT_EQ(consumed, kItems);
  EXPECT_TRUE(ordered) << "SPSC FIFO order violated across threads";
  EXPECT_EQ(sum, kItems * (kItems - 1) / 2);
  EXPECT_TRUE(ring.empty());
}

// Wrap-around torture: a capacity-4 ring cycled far past its index mask with
// mixed batch sizes. FIFO order, occupancy and the rejected counter must be
// exact at every capacity boundary, not just on the happy path.
TEST(SpscRing, WrapAroundTortureKeepsCountsExact) {
  SpscRing<std::uint64_t> ring(4);
  ASSERT_EQ(ring.capacity(), 4u);
  std::uint64_t pushed = 0, popped = 0, rejected = 0;
  std::uint64_t next_out = 0;
  for (int round = 0; round < 1000; ++round) {
    const int batch = 1 + round % 6;  // drives occupancy across the mask
    for (int i = 0; i < batch; ++i) {
      if (ring.try_push(std::uint64_t{pushed}).is_ok())
        pushed++;
      else
        rejected++;
    }
    const int drains = 1 + round % 4;
    std::uint64_t v = 0;
    for (int i = 0; i < drains && ring.try_pop(v); ++i) {
      ASSERT_EQ(v, next_out) << "FIFO broke at round " << round;
      next_out = v + 1;
      popped++;
    }
    ASSERT_EQ(ring.size(), pushed - popped);
    ASSERT_EQ(ring.rejected(), rejected);
  }
  std::uint64_t v = 0;
  while (ring.try_pop(v)) {
    ASSERT_EQ(v, next_out);
    next_out = v + 1;
    popped++;
  }
  EXPECT_EQ(popped, pushed);
  EXPECT_GT(rejected, 0u) << "torture must actually hit the full case";
}

// Two threads, producer never retries: every attempted push either lands or
// is counted. popped + rejected == attempted exactly — overflow under a
// hammer is auditable, never approximate.
TEST(SpscRing, TwoThreadHammerRejectedCounterIsExact) {
  SpscRing<std::uint64_t> ring(8);
  constexpr std::uint64_t kAttempts = 200000;
  std::atomic<bool> done{false};
  std::uint64_t popped = 0;
  std::thread consumer([&] {
    std::uint64_t v = 0;
    for (;;) {
      if (ring.try_pop(v)) {
        popped++;
      } else if (done.load(std::memory_order_acquire)) {
        while (ring.try_pop(v)) popped++;
        return;
      } else {
        std::this_thread::yield();
      }
    }
  });
  std::uint64_t accepted = 0;
  for (std::uint64_t i = 0; i < kAttempts; ++i)
    if (ring.try_push(std::uint64_t{i}).is_ok()) accepted++;
  done.store(true, std::memory_order_release);
  consumer.join();
  EXPECT_EQ(popped, accepted);
  EXPECT_EQ(ring.rejected(), kAttempts - accepted);
  EXPECT_TRUE(ring.empty());
}

using SpscRingDeathTest = ::testing::Test;

// Runtime half of the @producer/@consumer discipline: the first pushing
// thread owns the producer end for the ring's lifetime; a push from any
// other thread aborts in guarded builds, even with no concurrent access.
TEST(SpscRingDeathTest, SecondProducerThreadAborts) {
  if (!kAffinityGuardsEnabled)
    GTEST_SKIP() << "FLEXRIC_AFFINITY_GUARDS off in this build";
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        SpscRing<int> ring(4);
        std::thread first([&] { (void)ring.try_push(1); });
        first.join();
        (void)ring.try_push(2);  // second producer thread: must abort
      },
      "SpscRing::try_push");
}

// ---------------------------------------------------------------------------
// ShardCounterBoard seqlock
// ---------------------------------------------------------------------------

// Regression for the torn-publish finding the atomics-order pass flagged:
// the writer only ever publishes ledgers satisfying msgs_rx == dispatched ==
// frames, so a racing reader observing anything else caught a torn image
// (13 independent relaxed stores would tear; the seqlock must not).
TEST(ShardStats, BoardReadNeverTearsAcrossFields) {
  ShardCounterBoard board(1);
  constexpr std::uint64_t kRounds = 20000;
  std::atomic<bool> stop{false};
  std::uint64_t tears = 0, reads = 0;
  std::thread reader([&] {
    while (!stop.load(std::memory_order_acquire)) {
      ShardLedger v = board.read(0);
      if (v.msgs_rx != v.dispatched || v.frames != v.msgs_rx) tears++;
      reads++;
    }
  });
  for (std::uint64_t i = 1; i <= kRounds; ++i) {
    ShardLedger v;
    v.msgs_rx = i;
    v.dispatched = i;
    v.frames = i;
    v.cpu_ns = i * 3;
    board.publish(0, v);
  }
  stop.store(true, std::memory_order_release);
  reader.join();
  EXPECT_EQ(tears, 0u) << "seqlock tore across " << reads << " reads";
  ShardLedger last = board.read(0);
  EXPECT_EQ(last.msgs_rx, kRounds);
  EXPECT_EQ(last.dispatched, kRounds);
}

// ---------------------------------------------------------------------------
// ShardPool
// ---------------------------------------------------------------------------

TEST(ShardPool, DomainNamesAreUniquePerShard) {
  ShardPool pool(4, ShardPool::Mode::manual);
  std::set<std::string> names;
  for (std::uint32_t i = 0; i < 4; ++i) names.insert(pool.domain(i));
  EXPECT_EQ(names.size(), 4u);
  EXPECT_EQ(std::string(pool.domain(0)), "shard0");
  EXPECT_EQ(std::string(pool.domain(3)), "shard3");
}

TEST(ShardPool, ManualPumpRunsPostsInFixedShardOrder) {
  ShardPool pool(3, ShardPool::Mode::manual);
  std::vector<int> order;
  // Post in scrambled shard order; the pump must run shard 0 first anyway.
  ASSERT_TRUE(pool.post(2, [&] { order.push_back(2); }).is_ok());
  ASSERT_TRUE(pool.post(0, [&] { order.push_back(0); }).is_ok());
  ASSERT_TRUE(pool.post(1, [&] { order.push_back(1); }).is_ok());
  pool.pump();
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}))
      << "deterministic interleave must not depend on post order";
}

TEST(ShardPool, ThreadedPostReachesEveryShardThread) {
  // Threaded smoke: the injector ring + eventfd wake path. Each shard
  // appends to its own (shard-affine) log; the owner reads after stop().
  ShardPool pool(2, ShardPool::Mode::threaded);
  std::vector<int> logs[2];
  pool.start();
  ASSERT_TRUE(pool.running());
  for (int i = 0; i < 10; ++i) {
    while (!pool.post(0, [&, i] { logs[0].push_back(i); }).is_ok()) {}
    while (!pool.post(1, [&, i] { logs[1].push_back(i); }).is_ok()) {}
  }
  pool.stop();
  ASSERT_EQ(logs[0].size(), 10u);
  ASSERT_EQ(logs[1].size(), 10u);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(logs[0][i], i) << "injector must preserve FIFO order";
    EXPECT_EQ(logs[1][i], i);
  }
  EXPECT_GE(pool.thread_cpu(0), 0);
}

// ---------------------------------------------------------------------------
// ShardedE2Server: delivery and isolation at 1/2/4 shards
// ---------------------------------------------------------------------------

class ShardedDelivery : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(ShardedDelivery, EveryShardServesOnlyItsOwnAgentsInOrder) {
  const std::uint32_t shards = GetParam();
  ShardWorld w(shards);
  // Two agents per shard, subscribed, each emitting 50 indications.
  std::vector<ShardWorld::Node*> nodes;
  for (std::uint32_t s = 0; s < shards; ++s)
    for (int k = 0; k < 2; ++k) {
      auto& n = w.add_agent(s);
      ASSERT_TRUE(w.converge(n)) << "agent on shard " << s;
      nodes.push_back(&n);
    }
  for (auto* n : nodes) w.subscribe(*n);
  for (int i = 0; i < 50; ++i) {
    for (auto* n : nodes) n->fn->emit(n->ctrl);
    w.advance(kMilli);
  }
  w.advance(100 * kMilli);

  for (auto* n : nodes) {
    EXPECT_EQ(n->indications, 50) << "agent nb_id=" << n->nb_id;
    EXPECT_TRUE(std::is_sorted(n->sns.begin(), n->sns.end()));
  }
  // Isolation: each shard's server saw exactly its own 2 agents.
  for (std::uint32_t s = 0; s < shards; ++s) {
    EXPECT_EQ(w.ric.shard_server(s).ran_db().num_agents(), 2u);
    EXPECT_EQ(w.ric.shard_server(s).stats().misrouted, 0u);
  }
  // The merged directory shows all of them under global ids.
  EXPECT_EQ(w.ric.directory().num_agents(), 2u * shards);
  for (auto* n : nodes)
    EXPECT_NE(w.ric.directory().agent(n->gid), nullptr);
  w.expect_global_reconciles();
}

INSTANTIATE_TEST_SUITE_P(Shards, ShardedDelivery,
                         ::testing::Values(1u, 2u, 4u),
                         [](const auto& info) {
                           return "shards_" + std::to_string(info.param);
                         });

// ---------------------------------------------------------------------------
// Cross-shard RAN-DB merge: CU + DU on different shards form one entity
// ---------------------------------------------------------------------------

TEST(ShardedRanDb, CuAndDuOnDifferentShardsFormOneEntity) {
  const std::uint32_t shards = 4;
  // The type byte feeds the partitioner hash, so hunt for an nb_id whose CU
  // and DU land on different shards — the disaggregation-blind design makes
  // the cross-shard merge the common case, not a corner.
  std::uint32_t nb = 0;
  for (std::uint32_t cand = 1; cand < 1000; ++cand) {
    if (server::shard_of({1, cand, e2ap::NodeType::cu}, shards) !=
        server::shard_of({1, cand, e2ap::NodeType::du}, shards)) {
      nb = cand;
      break;
    }
  }
  ASSERT_NE(nb, 0u);
  const std::uint32_t cu_shard =
      server::shard_of({1, nb, e2ap::NodeType::cu}, shards);
  const std::uint32_t du_shard =
      server::shard_of({1, nb, e2ap::NodeType::du}, shards);

  ShardWorld w(shards);
  std::vector<std::string> formed;
  w.ric.set_on_ran_formed([&](const server::RanEntity& e) {
    formed.push_back(std::to_string(e.plmn) + "/" + std::to_string(e.nb_id));
  });
  auto& cu = w.add_agent(cu_shard, nb, e2ap::NodeType::cu);
  ASSERT_TRUE(w.converge(cu));
  EXPECT_TRUE(formed.empty()) << "half a base station is not an entity";
  auto& du = w.add_agent(du_shard, nb, e2ap::NodeType::du);
  ASSERT_TRUE(w.converge(du));

  ASSERT_EQ(formed.size(), 1u) << "CU+DU across shards must form exactly once";
  EXPECT_EQ(formed[0], "1/" + std::to_string(nb));
  const server::RanEntity* e = w.ric.directory().entity(1, nb);
  ASSERT_NE(e, nullptr);
  EXPECT_TRUE(e->complete());
  ASSERT_TRUE(e->cu.has_value());
  ASSERT_TRUE(e->du.has_value());
  EXPECT_EQ(server::shard_of_global(*e->cu), cu_shard);
  EXPECT_EQ(server::shard_of_global(*e->du), du_shard);
  EXPECT_NE(server::shard_of_global(*e->cu), server::shard_of_global(*e->du));
}

// ---------------------------------------------------------------------------
// Cross-shard xApp fan-out
// ---------------------------------------------------------------------------

TEST(ShardedFanout, IndicationsFromEveryShardLandOnHomeWithGlobalIds) {
  const std::uint32_t shards = 2;
  ShardWorld w(shards);
  std::vector<server::ShardedE2Server::FanoutIndication> got;
  w.ric.subscribe_fanout(200, Buffer{0x01},
                         {{1, e2ap::ActionType::report, {}}},
                         [&](const auto& fi) { got.push_back(fi); });
  auto& a = w.add_agent(0);
  auto& b = w.add_agent(1);
  ASSERT_TRUE(w.converge(a));
  ASSERT_TRUE(w.converge(b));
  w.advance(50 * kMilli);  // fan-out subscriptions reach the agents

  for (int i = 0; i < 20; ++i) {
    a.fn->emit(a.ctrl);
    b.fn->emit(b.ctrl);
    w.advance(kMilli);
  }
  w.advance(100 * kMilli);

  ASSERT_EQ(got.size(), 40u);
  int from_a = 0, from_b = 0;
  for (const auto& fi : got) {
    if (fi.agent == a.gid) from_a++;
    if (fi.agent == b.gid) from_b++;
    EXPECT_EQ(server::shard_of_global(fi.agent), fi.shard);
  }
  EXPECT_EQ(from_a, 20);
  EXPECT_EQ(from_b, 20);
}

// ---------------------------------------------------------------------------
// Misroute gate
// ---------------------------------------------------------------------------

TEST(ShardedMisroute, WrongShardDialIsRejectedAndCounted) {
  const std::uint32_t shards = 2;
  ShardWorld w(shards);
  // An agent whose node id belongs to shard 0, dialing shard 1's server.
  auto& n = w.add_agent(/*shard=*/0, /*nb_id=*/0, e2ap::NodeType::gnb, {},
                        /*seed=*/1, /*dial_shard=*/1);
  w.advance(2 * kSecond);

  EXPECT_FALSE(w.established(n))
      << "a misrouted agent must never be served by the wrong universe";
  EXPECT_GE(w.ric.shard_server(1).stats().misrouted, 1u);
  EXPECT_EQ(w.ric.shard_server(1).ran_db().num_agents(), 0u);
  EXPECT_EQ(w.ric.shard_server(0).ran_db().num_agents(), 0u);
  EXPECT_EQ(w.ric.directory().num_agents(), 0u)
      << "a rejected agent must not leak into the merged directory";
}

// ---------------------------------------------------------------------------
// Northbound query path (request ring in, reply ring out)
// ---------------------------------------------------------------------------

TEST(ShardedQuery, JobRunsOnShardAndReplyLandsOnHome) {
  ShardWorld w(2);
  auto& n = w.add_agent(1);
  ASSERT_TRUE(w.converge(n));

  std::vector<std::string> replies;
  ASSERT_TRUE(w.ric
                  .query(
                      1,
                      [](server::E2Server& srv) {
                        return std::to_string(srv.ran_db().num_agents());
                      },
                      [&](Result<std::string> r) {
                        ASSERT_TRUE(r.is_ok());
                        replies.push_back(std::move(r.value()));
                      })
                  .is_ok());
  EXPECT_TRUE(replies.empty()) << "the reply must wait for pump_home";
  w.settle();
  ASSERT_EQ(replies.size(), 1u);
  EXPECT_EQ(replies[0], "1");
}

// ---------------------------------------------------------------------------
// Global ledger: merge-on-query equals ground truth, and reconciles
// ---------------------------------------------------------------------------

TEST(ShardedLedger, BoardSumMatchesPerShardGroundTruth) {
  const std::uint32_t shards = 4;
  server::ShardedConfig cfg;
  cfg.server.overload.enabled = true;
  cfg.server.overload.control_queue = 64;
  cfg.server.overload.data_queue = 128;
  cfg.server.overload.dispatch_batch = 16;
  cfg.server.overload.data_rate = 500.0;  // force real shedding
  cfg.server.overload.data_burst = 50.0;
  ShardWorld w(shards, cfg);
  std::vector<ShardWorld::Node*> nodes;
  for (std::uint32_t s = 0; s < shards; ++s) {
    auto& n = w.add_agent(s);
    ASSERT_TRUE(w.converge(n));
    nodes.push_back(&n);
  }
  for (auto* n : nodes) w.subscribe(*n);
  // Over-admission burst on every shard.
  for (int ms = 0; ms < 100; ++ms) {
    for (auto* n : nodes)
      for (int k = 0; k < 8; ++k) n->fn->emit(n->ctrl);
    w.advance(kMilli);
  }
  w.advance(500 * kMilli);  // drain queues AND fire every publish timer

  // Merge-on-query: the board's sum equals reading every shard directly.
  ShardLedger sum = w.ric.global_ledger();
  std::uint64_t rx = 0, dispatched = 0, rate = 0;
  for (std::uint32_t s = 0; s < shards; ++s) {
    const auto& st = w.ric.shard_server(s).stats();
    rx += st.msgs_rx;
    dispatched += st.dispatched;
    rate += st.rate_shed;
    ShardLedger one = w.ric.shard_ledger(s);
    EXPECT_EQ(one.msgs_rx, st.msgs_rx) << "shard " << s;
    EXPECT_EQ(one.dispatched, st.dispatched) << "shard " << s;
  }
  EXPECT_EQ(sum.msgs_rx, rx);
  EXPECT_EQ(sum.dispatched, dispatched);
  EXPECT_EQ(sum.rate_shed, rate);
  EXPECT_GT(sum.rate_shed, 0u) << "the burst was supposed to overload";
  w.expect_global_reconciles();
}

// ---------------------------------------------------------------------------
// Directory resync after event-ring overflow
// ---------------------------------------------------------------------------

TEST(ShardedResync, EventRingOverflowTriggersSnapshotRecovery) {
  server::ShardedConfig cfg;
  cfg.event_ring = 2;  // tiny: connect churn overflows it immediately
  ShardWorld w(2, cfg);
  // Connect 5 agents on shard 0 without pumping home between setups, so
  // upserts pile into the 2-slot ring and spill.
  std::vector<ShardWorld::Node*> nodes;
  for (int k = 0; k < 5; ++k) nodes.push_back(&w.add_agent(0));
  for (auto* n : nodes) ASSERT_TRUE(w.converge(*n));
  w.advance(200 * kMilli);  // publish ticks carry the loss; resync runs

  EXPECT_GE(w.ric.directory_resyncs(), 1u)
      << "lost directory events must trigger a snapshot resync";
  EXPECT_EQ(w.ric.directory().num_agents(), 5u)
      << "the merged view must converge to the truth despite the overflow";
}

// ---------------------------------------------------------------------------
// Determinism: the same seeded multi-shard scenario is byte-identical
// ---------------------------------------------------------------------------

std::string run_shard_scenario(std::uint64_t seed, std::uint32_t shards) {
  ShardWorld w(shards);
  std::vector<ShardWorld::Node*> nodes;
  for (std::uint32_t s = 0; s < shards; ++s) {
    auto& n = w.add_agent(s, 0, e2ap::NodeType::gnb, {},
                          seed * 1000003 + s);
    EXPECT_TRUE(w.converge(n));
    nodes.push_back(&n);
  }
  for (auto* n : nodes) w.subscribe(*n);
  Rng chaos(seed ^ 0x5AD5);
  for (int ev = 0; ev < 8; ++ev) {
    w.advance(50 * kMilli +
              static_cast<Nanos>(chaos.bounded(100)) * kMilli);
    auto* n = nodes[chaos.bounded(static_cast<std::uint32_t>(nodes.size()))];
    for (int k = 0; k < 16; ++k) n->fn->emit(n->ctrl);
    if (chaos.bounded(3) == 0 && n->link) n->link->kill();
  }
  w.advance(2 * kSecond);
  return w.trace();
}

class ShardDeterminism
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, std::uint32_t>> {
};

TEST_P(ShardDeterminism, DoubleRunIsByteIdentical) {
  const auto [seed, shards] = GetParam();
  std::string first = run_shard_scenario(seed, shards);
  if (HasFailure()) return;
  std::string second = run_shard_scenario(seed, shards);
  EXPECT_EQ(first, second)
      << "multi-shard scheduling diverged for seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(
    SeedsTimesShards, ShardDeterminism,
    ::testing::Combine(::testing::Values(std::uint64_t{1}, std::uint64_t{2},
                                         std::uint64_t{3}),
                       ::testing::Values(1u, 2u, 4u)),
    [](const auto& info) {
      return "seed_" + std::to_string(std::get<0>(info.param)) + "_shards_" +
             std::to_string(std::get<1>(info.param));
    });

}  // namespace
}  // namespace flexric
