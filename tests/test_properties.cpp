// Property-based sweeps over the system invariants (DESIGN.md §6):
// NVS share attainment across the parameter space, TC conservation under
// random traffic, serde round-trips of randomized messages, RLC byte
// conservation, Cubic sanity, and the TC policy (Appendix A.3) service.
#include <gtest/gtest.h>

#include "agent/agent.hpp"
#include "common/rng.hpp"
#include "e2sm/common.hpp"
#include "flows/cubic.hpp"
#include "helpers.hpp"
#include "ran/functions.hpp"
#include "ran/sched.hpp"
#include "server/server.hpp"
#include "server/sharding.hpp"
#include "tc/chain.hpp"

namespace flexric {
namespace {

// ---------------------------------------------------------------------------
// NVS share attainment sweep
// ---------------------------------------------------------------------------

class NvsShareSweep
    : public ::testing::TestWithParam<std::pair<double, double>> {};

TEST_P(NvsShareSweep, AttainedSharesMatchTargets) {
  auto [share1, share2] = GetParam();
  ran::CellConfig cfg{ran::Rat::nr, 1, 106, kMilli, 20, false};
  ran::MacScheduler mac(cfg);
  mac.add_ue(1);
  mac.add_ue(2);
  e2sm::slice::CtrlMsg msg;
  msg.kind = e2sm::slice::CtrlKind::add_mod;
  msg.algo = e2sm::slice::Algo::nvs;
  for (auto [id, share] : {std::pair<std::uint32_t, double>{1, share1},
                           {2, share2}}) {
    e2sm::slice::SliceConf conf;
    conf.id = id;
    conf.nvs = {e2sm::slice::NvsKind::capacity, share, 0, 0};
    msg.slices.push_back(conf);
  }
  ASSERT_TRUE(mac.apply(msg).is_ok());
  e2sm::slice::CtrlMsg assoc;
  assoc.kind = e2sm::slice::CtrlKind::assoc_ue;
  assoc.assoc = {{1, 1}, {2, 2}};
  ASSERT_TRUE(mac.apply(assoc).is_ok());

  std::vector<ran::UeInput> ues = {{1, 20, 1 << 20}, {2, 20, 1 << 20}};
  std::map<std::uint32_t, std::uint64_t> prbs;
  for (int t = 0; t < 6000; ++t)
    for (const auto& a : mac.schedule(ues)) prbs[a.slice_id] += a.prbs;
  double total = 6000.0 * 106.0;
  // Targets sum to 1 within the sweep, so the residual default share is
  // ~0.01 and attained shares track the configured ones.
  EXPECT_NEAR(static_cast<double>(prbs[1]) / total, share1, 0.04)
      << share1 << "/" << share2;
  EXPECT_NEAR(static_cast<double>(prbs[2]) / total, share2, 0.04);
}

INSTANTIATE_TEST_SUITE_P(
    Shares, NvsShareSweep,
    ::testing::Values(std::pair{0.1, 0.9}, std::pair{0.25, 0.75},
                      std::pair{0.34, 0.66}, std::pair{0.5, 0.5},
                      std::pair{0.66, 0.34}, std::pair{0.8, 0.2},
                      std::pair{0.9, 0.1}));

// ---------------------------------------------------------------------------
// TC chain conservation under random traffic
// ---------------------------------------------------------------------------

class TcConservation : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TcConservation, EnqueuedEqualsDequeuedPlusBacklogPlusDrops) {
  Rng rng(GetParam());
  tc::TcChain chain;
  // Random topology: 1-3 extra queues with random limits + filters.
  int extra_queues = 1 + static_cast<int>(rng.bounded(3));
  for (int q = 1; q <= extra_queues; ++q) {
    e2sm::tc::QueueConf conf;
    conf.qid = static_cast<std::uint32_t>(q);
    conf.kind = rng.chance(0.3) ? e2sm::tc::QueueKind::codel
                                : e2sm::tc::QueueKind::fifo;
    conf.limit_bytes = 5'000 + static_cast<std::uint32_t>(rng.bounded(50'000));
    ASSERT_TRUE(chain.add_queue(conf).is_ok());
    e2sm::tc::FilterConf filter;
    filter.filter_id = static_cast<std::uint32_t>(q);
    filter.match.dst_port = static_cast<std::uint16_t>(1000 + q);
    filter.dst_qid = conf.qid;
    ASSERT_TRUE(chain.add_filter(filter).is_ok());
  }
  if (rng.chance(0.5))
    chain.set_pacer({e2sm::tc::PacerKind::bdp,
                     1.0 + rng.uniform() * 10.0, 1.0});
  chain.set_sched({rng.chance(0.5) ? e2sm::tc::SchedKind::rr
                                   : e2sm::tc::SchedKind::prio,
                   {}});

  ran::RlcEntity rlc(100'000);
  std::uint64_t rlc_drops = 0;
  chain.set_drop_handler([&](const ran::Packet&) { rlc_drops++; });
  std::uint64_t offered = 0, accepted = 0, rlc_in = 0;
  Nanos now = 0;
  for (int t = 0; t < 2000; ++t) {
    now += kMilli;
    int burst = static_cast<int>(rng.bounded(6));
    for (int k = 0; k < burst; ++k) {
      ran::Packet p;
      p.size_bytes = 100 + static_cast<std::uint32_t>(rng.bounded(1400));
      p.tuple.dst_port =
          static_cast<std::uint16_t>(1000 + rng.bounded(6));  // some unmatched
      offered++;
      if (chain.enqueue(p, now)) accepted++;
    }
    chain.drain(rlc, now, 5.0 + rng.uniform() * 20.0);
    std::uint32_t used = 0;
    auto done = rlc.pull(static_cast<std::uint32_t>(rng.bounded(4000)), now,
                         &used);
    rlc_in += done.size();
  }
  auto stats = chain.stats_snapshot(false);
  std::uint64_t dequeued = 0, backlog = 0, dropped = 0;
  for (const auto& s : stats) {
    dequeued += s.tx_pkts;
    backlog += s.backlog_pkts;
    dropped += s.dropped_pkts;
  }
  // `dropped` counts both enqueue-time (full queue) and dequeue-time
  // (CoDel) drops, so conservation holds over the whole chain:
  EXPECT_EQ(dequeued + backlog + dropped, offered);
  EXPECT_LE(accepted, offered);
  // Everything dequeued either reached RLC or was counted as an RLC drop.
  EXPECT_EQ(rlc_in + rlc.buffer_pkts() + rlc_drops, dequeued);
}

INSTANTIATE_TEST_SUITE_P(Seeds, TcConservation,
                         ::testing::Values(101, 202, 303, 404, 505, 606));

// ---------------------------------------------------------------------------
// Randomized SM message round-trips across all formats
// ---------------------------------------------------------------------------

class SerdeFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SerdeFuzz, RandomizedMessagesRoundTripAllFormats) {
  Rng rng(GetParam());
  auto rand_str = [&](std::size_t max) {
    std::string s;
    std::size_t n = rng.bounded(max);
    for (std::size_t i = 0; i < n; ++i)
      s.push_back(static_cast<char>('a' + rng.bounded(26)));
    return s;
  };
  for (int round = 0; round < 30; ++round) {
    e2sm::mac::IndicationMsg mac_msg;
    std::size_t ues = rng.bounded(40);
    for (std::size_t i = 0; i < ues; ++i) {
      e2sm::mac::UeStats s;
      s.rnti = static_cast<std::uint16_t>(rng.next());
      s.cqi = static_cast<std::uint8_t>(rng.bounded(16));
      s.bytes_dl = rng.next();
      s.phr_db = static_cast<std::int64_t>(rng.next());
      s.slice_id = static_cast<std::uint32_t>(rng.next());
      mac_msg.ues.push_back(s);
    }
    e2sm::slice::CtrlMsg slice_msg;
    slice_msg.kind = static_cast<e2sm::slice::CtrlKind>(rng.bounded(3));
    std::size_t slices = rng.bounded(8);
    for (std::size_t i = 0; i < slices; ++i) {
      e2sm::slice::SliceConf conf;
      conf.id = static_cast<std::uint32_t>(rng.bounded(1000));
      conf.label = rand_str(24);
      conf.nvs.kind = static_cast<e2sm::slice::NvsKind>(rng.bounded(2));
      conf.nvs.capacity_share = rng.uniform();
      conf.nvs.rate_mbps = rng.uniform(0, 1000);
      slice_msg.slices.push_back(std::move(conf));
    }
    e2sm::tc::IndicationMsg tc_msg;
    std::size_t queues = rng.bounded(6);
    for (std::size_t i = 0; i < queues; ++i) {
      e2sm::tc::QueueStats q;
      q.qid = static_cast<std::uint32_t>(i);
      q.sojourn_avg_ms = rng.uniform(0, 1000);
      q.tx_bytes = rng.next();
      tc_msg.queues.push_back(q);
    }
    for (WireFormat f :
         {WireFormat::per, WireFormat::flat, WireFormat::proto}) {
      auto m1 = e2sm::sm_decode<e2sm::mac::IndicationMsg>(
          e2sm::sm_encode(mac_msg, f), f);
      ASSERT_TRUE(m1.is_ok());
      EXPECT_EQ(*m1, mac_msg);
      auto m2 = e2sm::sm_decode<e2sm::slice::CtrlMsg>(
          e2sm::sm_encode(slice_msg, f), f);
      ASSERT_TRUE(m2.is_ok());
      EXPECT_EQ(*m2, slice_msg);
      auto m3 = e2sm::sm_decode<e2sm::tc::IndicationMsg>(
          e2sm::sm_encode(tc_msg, f), f);
      ASSERT_TRUE(m3.is_ok());
      EXPECT_EQ(*m3, tc_msg);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SerdeFuzz,
                         ::testing::Values(11, 22, 33, 44));

// ---------------------------------------------------------------------------
// RLC byte conservation under random drive
// ---------------------------------------------------------------------------

class RlcConservation : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RlcConservation, BytesInEqualsBytesOutPlusBacklogPlusDropped) {
  Rng rng(GetParam());
  ran::RlcEntity rlc(50'000 + rng.bounded(200'000));
  std::uint64_t offered_bytes = 0, dropped_bytes = 0, out_bytes = 0;
  Nanos now = 0;
  std::uint64_t partial = 0;  // bytes of the in-flight head segment
  for (int t = 0; t < 5000; ++t) {
    now += kMilli;
    int burst = static_cast<int>(rng.bounded(4));
    for (int k = 0; k < burst; ++k) {
      ran::Packet p;
      p.size_bytes = 40 + static_cast<std::uint32_t>(rng.bounded(1460));
      offered_bytes += p.size_bytes;
      if (!rlc.enqueue(p, now)) dropped_bytes += p.size_bytes;
    }
    std::uint32_t used = 0;
    rlc.pull(static_cast<std::uint32_t>(rng.bounded(3000)), now, &used);
    out_bytes += used;
  }
  // buffer_bytes excludes already-transmitted head segments, so:
  EXPECT_EQ(out_bytes + rlc.buffer_bytes() + dropped_bytes, offered_bytes)
      << "partial=" << partial;
}

INSTANTIATE_TEST_SUITE_P(Seeds, RlcConservation,
                         ::testing::Values(7, 77, 777));

// ---------------------------------------------------------------------------
// Cubic sanity under adversarial ack/drop interleavings
// ---------------------------------------------------------------------------

class CubicSanity : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CubicSanity, WindowStaysBoundedAndPositive) {
  Rng rng(GetParam());
  flows::CubicSource cubic(1, {});
  std::vector<ran::Packet> inflight;
  Nanos now = 0;
  for (int t = 0; t < 20'000; ++t) {
    now += kMilli;
    cubic.tick(now, [&](ran::Packet p) { inflight.push_back(p); });
    while (!inflight.empty() && rng.chance(0.7)) {
      ran::Packet p = inflight.back();
      inflight.pop_back();
      if (rng.chance(0.02))
        cubic.on_drop(p, now);
      else
        cubic.on_ack(p, now + 20 * kMilli);
    }
    ASSERT_GE(cubic.cwnd_bytes(), 2.0 * 1448);  // floor: 2 MSS
    ASSERT_LT(cubic.cwnd_bytes(), 1e9);         // no runaway
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CubicSanity, ::testing::Values(5, 55, 555));

// ---------------------------------------------------------------------------
// TC POLICY service (Appendix A.3): the RAN function reacts locally
// ---------------------------------------------------------------------------

TEST(TcPolicy, AgentAppliesPacerWithoutControllerRoundTrip) {
  Reactor reactor;
  ran::BaseStation bs({ran::Rat::lte, 1, 25, kMilli, 3, false});  // slow cell
  agent::E2Agent agent(reactor,
                       {{1, 10, e2ap::NodeType::enb}, WireFormat::flat});
  ran::BsFunctionBundle bundle(bs, agent, WireFormat::flat);
  server::E2Server server(reactor, {21, WireFormat::flat});
  auto [a, s] = LocalTransport::make_pair(reactor);
  server.attach(s);
  agent.add_controller(a);
  test::pump_until(reactor,
                   [&] { return server.ran_db().num_agents() == 1; });
  bs.attach_ue({100, 1, 0, 15, 3});

  // Install the policy: sojourn > 30 ms => BDP pacer, locally.
  e2sm::tc::PolicyDef def;
  def.sojourn_limit_ms = 30.0;
  def.pacer_target_ms = 5.0;
  bool admitted = false;
  server::SubCallbacks cbs;
  cbs.on_response = [&](const e2ap::SubscriptionResponse& resp) {
    admitted = !resp.admitted.empty();
  };
  server.subscribe(
      1, e2sm::tc::Sm::kId,
      e2sm::sm_encode(e2sm::EventTrigger{e2sm::TriggerKind::periodic, 1000},
                      WireFormat::flat),
      {{1, e2ap::ActionType::policy,
        e2sm::sm_encode(def, WireFormat::flat)}},
      cbs);
  ASSERT_TRUE(test::pump_until(reactor, [&] { return admitted; }));
  EXPECT_EQ(bundle.tc().num_policies(), 1u);

  // Overload the bearer; the agent must flip the pacer on by itself —
  // WITHOUT the server sending any control message.
  std::uint64_t msgs_tx_before = server.stats().msgs_tx;
  Nanos now = 0;
  for (int t = 0; t < 500; ++t) {
    now += kMilli;
    for (int k = 0; k < 6; ++k) {
      ran::Packet p;
      p.size_bytes = 1400;
      bs.deliver_downlink(100, 1, p);
    }
    bs.tick(now);
    bundle.on_tti(now);
    reactor.run_once(0);
  }
  tc::TcChain* chain = bs.tc_chain(100, 1);
  ASSERT_NE(chain, nullptr);
  EXPECT_EQ(chain->pacer().kind, e2sm::tc::PacerKind::bdp);
  EXPECT_EQ(server.stats().msgs_tx, msgs_tx_before);  // no controller action
}

TEST(TcPolicy, PolicyRemovedWithSubscription) {
  Reactor reactor;
  ran::BaseStation bs({ran::Rat::lte, 1, 25, kMilli, 28, false});
  agent::E2Agent agent(reactor,
                       {{1, 10, e2ap::NodeType::enb}, WireFormat::flat});
  ran::BsFunctionBundle bundle(bs, agent, WireFormat::flat);
  server::E2Server server(reactor, {21, WireFormat::flat});
  auto [a, s] = LocalTransport::make_pair(reactor);
  server.attach(s);
  agent.add_controller(a);
  test::pump_until(reactor,
                   [&] { return server.ran_db().num_agents() == 1; });

  e2sm::tc::PolicyDef def;
  auto h = server.subscribe(
      1, e2sm::tc::Sm::kId,
      e2sm::sm_encode(e2sm::EventTrigger{e2sm::TriggerKind::periodic, 1000},
                      WireFormat::flat),
      {{1, e2ap::ActionType::policy,
        e2sm::sm_encode(def, WireFormat::flat)}},
      {});
  ASSERT_TRUE(h.is_ok());
  test::pump_until(reactor, [&] { return bundle.tc().num_policies() == 1; });
  ASSERT_TRUE(server.unsubscribe(*h).is_ok());
  ASSERT_TRUE(test::pump_until(
      reactor, [&] { return bundle.tc().num_policies() == 0; }));
}

// ---------------------------------------------------------------------------
// Shard partitioner properties (DESIGN.md §13)
// ---------------------------------------------------------------------------

class ShardPartition : public ::testing::TestWithParam<std::uint64_t> {};

/// 1k seeded random node ids: the partition must be (a) stable — the same
/// node maps to the same shard forever, across reconnects and unrelated
/// churn, because the hash is a pure function of the GlobalNodeId — and
/// (b) balanced — no shard owns more than 2x its ideal share.
TEST_P(ShardPartition, StableUnderChurnAndBalancedWithin2x) {
  const std::uint64_t seed = GetParam();
  Rng rng(seed);
  constexpr int kNodes = 1000;
  std::vector<e2ap::GlobalNodeId> nodes;
  nodes.reserve(kNodes);
  for (int i = 0; i < kNodes; ++i) {
    e2ap::GlobalNodeId n;
    n.plmn = 1 + rng.bounded(500);
    n.nb_id = 1 + rng.bounded(1u << 20);
    switch (rng.bounded(4)) {
      case 0: n.type = e2ap::NodeType::enb; break;
      case 1: n.type = e2ap::NodeType::gnb; break;
      case 2: n.type = e2ap::NodeType::cu; break;
      default: n.type = e2ap::NodeType::du; break;
    }
    nodes.push_back(n);
  }
  for (std::uint32_t shards : {1u, 2u, 4u, 8u, 16u}) {
    std::vector<int> load(shards, 0);
    std::vector<std::uint32_t> first(kNodes);
    for (int i = 0; i < kNodes; ++i) {
      first[i] = server::shard_of(nodes[i], shards);
      ASSERT_LT(first[i], shards);
      load[first[i]]++;
    }
    // Stability: a reconnect (re-evaluation, any order, after any churn)
    // lands on the same shard — shuffle and re-ask.
    for (int i = kNodes - 1; i > 0; --i) {
      const std::uint32_t j = rng.bounded(static_cast<std::uint32_t>(i + 1));
      std::swap(nodes[i], nodes[j]);
      std::swap(first[i], first[j]);
    }
    for (int i = 0; i < kNodes; ++i)
      EXPECT_EQ(server::shard_of(nodes[i], shards), first[i])
          << "partition moved a node: reconnect would land on a new shard";
    // Balance: within 2x of ideal occupancy on every shard.
    const double ideal = static_cast<double>(kNodes) / shards;
    for (std::uint32_t s = 0; s < shards; ++s)
      EXPECT_LE(load[s], static_cast<int>(2.0 * ideal))
          << "shard " << s << "/" << shards << " overloaded (seed " << seed
          << ")";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ShardPartition,
                         ::testing::Values(7u, 77u, 777u),
                         [](const auto& pi) {
                           return "seed_" + std::to_string(pi.param);
                         });

}  // namespace
}  // namespace flexric
