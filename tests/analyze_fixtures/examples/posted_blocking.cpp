// Known-bad fixture: a sleep inside a lambda handed to the reactor. The
// lambda itself is lifetime-clean (no `this`), but its body would stall the
// loop thread for every connected peer.
#include <chrono>
#include <functional>
#include <thread>

struct Reactor {
  void post(std::function<void()> fn);
};

void schedule_nap(Reactor& r) {
  r.post([] {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  });
}
