// Known-bad fixture: an object of a `// @affine(reactor)` class driven from a
// raw std::thread lambda — exactly the wrong-thread entry the runtime guard
// aborts on in FLEXRIC_AFFINITY_GUARDS builds.
#include <thread>

// @affine(reactor)
class MiniServer {
 public:
  void attach(int id);
};

void demo() {
  MiniServer srv;
  std::thread worker([&] { srv.attach(1); });
  worker.join();
}
