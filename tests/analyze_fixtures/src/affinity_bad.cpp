// Known-bad fixture: a class stamps FLEXRIC_ASSERT_AFFINITY in a method but
// its declaration carries no `// @affine(reactor)` annotation, so call sites
// cannot know the single-thread contract exists.
namespace fixture {

struct ReactorAffinity {
  bool check_or_bind();
};

class StatsCache {
 public:
  void record(int v) {
    FLEXRIC_ASSERT_AFFINITY(affinity_);
    last_ = v;
  }

 private:
  ReactorAffinity affinity_;
  int last_ = 0;
};

}  // namespace fixture
