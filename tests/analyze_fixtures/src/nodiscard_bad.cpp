// Known-bad fixture: Status/Result return values dropped on the floor. The
// registry is built from these very declarations, so the rule must flag the
// two bare calls and accept the handled/voided ones.
namespace fixture {

struct Status {
  bool is_ok() const;
};
template <typename T>
struct Result {
  T take();
};

Status send_frame(int fd);
Result<int> parse_header(int fd);

void pump(int fd) {
  send_frame(fd);
  parse_header(fd);
  (void)send_frame(fd);
  if (send_frame(fd).is_ok()) return;
  Status st = send_frame(fd);
  (void)st.is_ok();
}

}  // namespace fixture
