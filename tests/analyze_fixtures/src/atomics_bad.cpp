// atomics-order fixture: SPSC endpoint discipline, torn relaxed publishes,
// unpaired acquire/release, defaulted seq_cst on the hot path and false
// sharing — each next to a sanctioned spelling that must stay silent.
#include <atomic>
#include <cstdint>
#include <utility>

namespace flexric {

template <typename T>
class SpscRing {
 public:
  explicit SpscRing(std::size_t) {}
  bool try_push(T&& v);
  bool try_pop(T& out);
};

// GOLDEN (x2): endpoint call sites without @producer/@consumer annotations.
class BareEndpoints {
 public:
  void feed(int v) { (void)inbox_.try_push(std::move(v)); }
  void drain() {
    int v;
    while (inbox_.try_pop(v)) {
    }
  }

 private:
  SpscRing<int> inbox_{16};
};

// GOLDEN (x2): ring 'dup-ring' has two producer sites — the single-producer
// contract allows exactly one, even when both run on the same thread today.
class DoubleProducer {
 public:
  void from_handler(int v) {
    // @producer(dup-ring)
    (void)duplex_.try_push(std::move(v));
  }
  void from_timer(int v) {
    // @producer(dup-ring)
    (void)duplex_.try_push(std::move(v));
  }
  void pump() {
    int v;
    // @consumer(dup-ring)
    while (duplex_.try_pop(v)) {
    }
  }

 private:
  SpscRing<int> duplex_{16};
};

// GOLDEN: ring 'orphan-ring' has a producer but no consumer anywhere.
class Orphan {
 public:
  void push(int v) {
    // @producer(orphan-ring)
    (void)lonely_.try_push(std::move(v));
  }

 private:
  SpscRing<int> lonely_{16};
};

// Silent: one annotated site per end.
class PairedRing {
 public:
  void push(int v) {
    // @producer(paired-ring)
    (void)pipe_.try_push(std::move(v));
  }
  void pop() {
    int v;
    // @consumer(paired-ring)
    while (pipe_.try_pop(v)) {
    }
  }

 private:
  SpscRing<int> pipe_{16};
};

// GOLDEN: two fields published with relaxed stores and no release barrier —
// a reader can observe rows_ new with bytes_ old.
class TornPublish {
 public:
  void publish(std::uint64_t rows, std::uint64_t bytes) {
    rows_.store(rows, std::memory_order_relaxed);
    bytes_.store(bytes, std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> rows_{0};
  std::atomic<std::uint64_t> bytes_{0};
};

// Silent: the trailing release store orders the group for any acquire
// reader (classic release-publish).
class ReleasedPublish {
 public:
  void publish(std::uint64_t lo, std::uint64_t hi) {
    lo_.store(lo, std::memory_order_relaxed);
    hi_.store(hi, std::memory_order_release);
  }

 private:
  std::atomic<std::uint64_t> lo_{0};
  std::atomic<std::uint64_t> hi_{0};
};

// GOLDEN: the reader acquire-loads ready_, but the writer only ever stores
// it relaxed — the acquire never synchronizes with anything.
class UnpairedFlag {
 public:
  void arm() { ready_.store(1, std::memory_order_relaxed); }
  bool armed() const { return ready_.load(std::memory_order_acquire) != 0; }

 private:
  std::atomic<int> ready_{0};
};

// GOLDEN: defaulted (seq_cst) RMW inside a @hotpath function pays a full
// fence per sample.
class HotCounter {
 public:
  // @hotpath one increment per decoded frame
  void bump() { hits_.fetch_add(1); }

 private:
  std::atomic<std::uint64_t> hits_{0};
};

// GOLDEN: a mutable atomic in an @affine(shard) class without alignas(64)
// false-shares its cache line across shard threads.
// @affine(shard)
class ShardTally {
 public:
  void add(std::uint64_t n) { seen_.fetch_add(n, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> seen_{0};
};

// Silent: cache-line alignment spelled out.
// @affine(shard)
class AlignedTally {
 public:
  void add(std::uint64_t n) { seen2_.fetch_add(n, std::memory_order_relaxed); }

 private:
  alignas(64) std::atomic<std::uint64_t> seen2_{0};
};

}  // namespace flexric
