// Known-good fixture: the annotation and the guard stamp agree.
namespace fixture {

struct ReactorAffinity {
  bool check_or_bind();
};

// @affine(reactor)
class GoodCache {
 public:
  void record(int v) {
    FLEXRIC_ASSERT_AFFINITY(affinity_);
    last_ = v;
  }

 private:
  ReactorAffinity affinity_;
  int last_ = 0;
};

}  // namespace fixture
