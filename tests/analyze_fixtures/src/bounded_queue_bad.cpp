// Known-bad fixture: a reactor-affine class buffering work in raw
// std::deque/std::queue members. Both grow without bound under an
// indication storm; the rule points at overload::BoundedQueue /
// overload::PriorityQueue instead. The suppressed member and the
// non-affine class below must NOT fire.
namespace std {
template <class T> class deque {};
template <class T> class queue {};
}  // namespace std

namespace fixture {

// @affine(reactor)
class StormServer {
 public:
  void on_message(int v);

 private:
  std::deque<int> ingest_;
  std::queue<long> tasks_;
  // lint: allow(bounded-queue) drained to empty at the end of every reactor iteration
  std::deque<int> scratch_;
};

// No annotation: plain buffers owned by non-reactor code are fine.
class PlainBuffer {
 private:
  std::deque<int> items_;
};

}  // namespace fixture
