// Fixture for the suppression syntax: a `lint: allow(<rule>) <reason>` on the
// finding line or the line above silences it. Expected findings: none.
namespace fixture {

void legacy_poll() {
  // lint: allow(blocking-in-handler) fixture: documents the suppression syntax
  ::usleep(100);
}

}  // namespace fixture
