// Known-good fixture: the alive-token pattern from transport.cpp. The posted
// lambda captures a weak_ptr guard next to `this` and early-returns when the
// owner has died, so the capture of `this` is safe.
#include <functional>
#include <memory>

namespace fixture {

struct Reactor {
  void post(std::function<void()> fn);
};

class Flusher {
 public:
  void schedule() {
    reactor_.post([this, alive = std::weak_ptr<bool>(alive_)] {
      auto a = alive.lock();
      if (!a || !*a) return;
      flush();
    });
  }

 private:
  void flush();
  Reactor& reactor_;
  std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);
};

}  // namespace fixture
