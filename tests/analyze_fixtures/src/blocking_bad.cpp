// Known-bad fixture: blocking primitives in reactor-affine code (the `src`
// category outside src/transport/). Handlers run on the loop thread; a sleep,
// a blocking recv or a condition_variable wait stalls every peer.
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <thread>

namespace fixture {

void handler_tick() {
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
}

long drain(int fd) {
  char buf[64];
  return ::recv(fd, buf, sizeof buf, 0);
}

void wait_done(std::condition_variable& cv, std::mutex& m, bool& done) {
  std::unique_lock<std::mutex> lk(m);
  cv.wait(lk, [&] { return done; });
}

}  // namespace fixture
