// Hot-path allocation fixture. Golden findings (expected.txt): growth,
// owned-container construction, and make_unique inside a @hotpath span,
// plus an allocation reached through same-file call propagation. The
// @coldpath helper allocates freely and must stay silent.
#include <memory>
#include <string>
#include <vector>

namespace flexric {

struct Sample {
  int v = 0;
};

// @hotpath
inline void on_indication(std::vector<Sample>& sink, int v) {
  sink.push_back({v});
  std::string label(16, 'x');
  auto p = std::make_unique<Sample>();
  (void)label;
  (void)p;
}

inline void warm_helper(std::vector<int>& v) {
  v.reserve(32);  // hot by propagation: dispatch_one() calls this
}

// @hotpath
inline void dispatch_one(std::vector<int>& v) {
  warm_helper(v);
}

// @coldpath
inline void setup_tables(std::vector<int>& v) {
  v.reserve(1024);
}

}  // namespace flexric
