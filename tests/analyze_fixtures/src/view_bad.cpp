// view-escape fixture: every way a borrowed view can outlive its buffer,
// next to the sanctioned spellings that must stay silent.
#include <cstdint>
#include <functional>
#include <string>
#include <string_view>

namespace flexric {

void post(std::function<void()> fn);
void sink(std::string_view s);

// GOLDEN: view-typed member of a class that owns nothing — the classic
// stored borrow.
class Annotation {
 public:
  void set(std::string_view note) { note_ = note; }

 private:
  std::string_view note_;
};

// Silent: a declared borrow cursor — @view_of makes the class itself a view
// type, so holding the borrow is its whole job.
// @view_of(the config text handed to the parser)
class ConfCursor {
 public:
  explicit ConfCursor(std::string_view text) : text_(text) {}

 private:
  std::string_view text_;
  std::size_t pos_ = 0;
};

// Silent: the owning buffer rides in the same object, declared with
// @extends_lifetime.
// @extends_lifetime
class OwnedSlice {
 private:
  std::string storage_;
  std::string_view slice_;  // always points into storage_
};

// Silent decoys: static string_view constants borrow static storage, and a
// std::function member only mentions the view in its callable's signature.
class SilentMembers {
 private:
  static constexpr std::string_view kName = "flexric";
  std::function<void(std::string_view)> on_text_;
};

// GOLDEN: malformed annotation — @view_of must name the owner.
// @view_of()
class Anonymous {
 private:
  std::string_view v_;
};

// GOLDEN: a view captured by a reactor-posted lambda outlives the frame the
// buffer lives in — both the named capture and the default capture.
void capture_named(std::string_view payload) {
  post([payload] { sink(payload); });
}

void capture_default(std::string_view payload) {
  post([=] { sink(payload); });
}

// Silent: the posting site pins an owning copy alongside; the annotation
// records that the lifetime is extended deliberately.
void capture_extended(std::string_view payload) {
  std::string owned(payload);
  // @extends_lifetime the lambda owns the string; the view indexes into it
  post([owned, payload] { sink(payload); });
}

// GOLDEN: an SpscRing whose payload type is a borrowed view hands dangling
// pointers to another thread.
template <typename T>
class SpscRing {
 public:
  explicit SpscRing(std::size_t) {}
};

void ring_of_views() {
  SpscRing<std::string_view> ring(8);
  (void)ring;
}

// GOLDEN: returning a view of a local owning string — the storage unwinds
// with the frame.
std::string_view render_label(int id) {
  std::string label = "shard-" + std::to_string(id);
  return label;
}

// Silent: returning a view of a parameter the caller owns.
std::string_view first_token(std::string_view line) {
  return line.substr(0, line.find(' '));
}

}  // namespace flexric
