// Lexer edge cases: phase-2 line splicing, raw-string delimiters that
// contain annotation-looking text, user-defined literals with digit
// separators, digraph punctuation, and template-heavy view spellings. The
// golden findings from this file are the unknown domain in the spliced
// annotation and the two view-escape members at the bottom (fixed-extent
// span, alias template) — every other decoy must stay silent.
#include <cstddef>
#include <cstdint>
#include <span>

namespace flexric {

// @affine(bog\
us)
class Spliced {};

// Raw strings are opaque: neither body text nor a delimiter that itself
// reads "@affine" may produce annotations or findings.
inline const char* raw_body_decoy() {
  return R"x(// @affine(nonsense) inside a raw string is not an annotation)x";
}

inline const char* raw_delim_decoy() {
  return R"@affine(// @affine(alsononsense) still opaque)@affine";
}

// UDL with a digit separator: one literal token, no stray identifiers.
constexpr unsigned long long operator""_frames(unsigned long long n) {
  return n;
}

inline std::size_t frame_budget() {
  return static_cast<std::size_t>(10'000_frames);
}

// Digraphs: equivalent punctuation must not derail scope tracking — the
// function below opens and closes its body with <% %> and indexes with
// <: :>, and the file's brace balance must survive it.
inline int digraph_sum(int a, int b) <%
  int arr<:2:> = <% a, b %>;
  return arr<:0:> + arr<:1:>;
%>

// Template-heavy view spellings: a fixed-extent span with a non-type
// template argument, and an alias template that resolves to a span. Both
// members below are stored borrows — two golden view-escape findings — and
// the tokenizer must survive the nested '>'/'>>' closers to see them.
template <class T>
using CView = std::span<const T>;

class FrameHead {
 public:
  [[nodiscard]] std::size_t window_len() const noexcept {
    return window_.size();
  }

 private:
  std::span<const std::uint8_t, 16> header_;
  CView<std::uint32_t> window_;
};

}  // namespace flexric
