// Known-bad fixture: the pre-fix Broker::publish shape. A lambda posted to
// the reactor captures `this` (or a raw pointer) with no alive token, so
// destroying the owner with the task still queued is a use-after-free.
#include <functional>

namespace fixture {

struct Reactor {
  void post(std::function<void()> fn);
};

class Broker {
 public:
  void publish(int topic) {
    reactor_.post([this, topic]() { deliver(topic); });
  }
  void defer_bump() {
    reactor_.post([p = &stats_]() { ++*p; });
  }

 private:
  void deliver(int topic);
  Reactor& reactor_;
  int stats_ = 0;
};

}  // namespace fixture
