// Sharded-RIC fixture (DESIGN.md §13): per-shard state may only cross to
// the home thread through a conduit (SpscRing) or an annotated
// @cross_domain function. Golden findings (expected.txt):
//   * home-side @affine(reactor) code reading a shard's counters directly
//     (merge-on-grab instead of merge-on-query),
//   * unattributed code scribbling on shard-owned state.
// The SpscRing conduit push and the @cross_domain reconcile stay silent.
#include <cstdint>

namespace flexric {

template <typename T>
class SpscRing {
 public:
  bool try_push(T v) {
    slot_ = v;
    return true;
  }
  void reset_endpoints() {}

 private:
  T slot_{};
};

// One shard's half of the ledger: owned by that shard's reactor thread.
// @affine(shard)
struct ShardCell {
  std::uint64_t frames = 0;
  std::uint64_t shed = 0;
  SpscRing<std::uint64_t> events;  // the sanctioned way out
};

// Home-side merge reaching straight into the shard's universe instead of
// summing the published board slots.
// @affine(reactor)
inline std::uint64_t merge_on_grab(ShardCell& c) {
  return c.frames + c.shed;
}

// The sanctioned crossing: pushes into the conduit field are silent.
// @affine(reactor)
inline void hand_over(ShardCell& c) {
  (void)c.events.try_push(1);
}

// Unattributed helper scribbling on shard-owned state.
inline void reset(ShardCell* c) {
  c->frames = 0;
}

// Approved conduit function: may touch any domain.
// @cross_domain
inline void reconcile(ShardCell& c) {
  c.shed = 0;
}

// Ring re-arm from the supervised rebuild: both ends are quiescent by
// construction there, and the annotation marks the site as sanctioned.
// @cross_domain
inline void rebuild_rearm(ShardCell& c) {
  c.events.reset_endpoints();  // @recovery
}

// The golden finding: a destructive re-arm outside the recovery path —
// whatever the producer had in flight silently vanishes.
// @cross_domain
inline void sneaky_rearm(ShardCell& c) {
  c.events.reset_endpoints();
}

}  // namespace flexric
