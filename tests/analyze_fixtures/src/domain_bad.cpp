// Domain-ownership fixture: named affinity domains and member-field
// attribution. Golden findings (expected.txt):
//   * an unknown domain name in an anchored annotation,
//   * a method annotated into a different domain than its class,
//   * shard-owned fields touched from unattributed and reactor code.
// Method calls on the object stay silent — the object guards its own
// domain at runtime — and so does a @cross_domain conduit.
#include <cstdint>

namespace flexric {

// @affine(shard)
struct ShardCounters {
  void bump() { frames += 1; }  // the owning class touches its own fields

  std::uint64_t frames = 0;
  std::uint64_t drops = 0;
};

// @affine(quux)
class Mystery {
 public:
  void poke() {}
};

// @affine(reactor)
class LoopThing {
 public:
  // @affine(shard)
  void cross() {}
  void ok() {}

 private:
  int x_ = 0;
};

// Unattributed free function reaching into shard-owned state.
inline void scribble(ShardCounters& c) {
  c.frames += 1;
}

// Reactor-attributed code poking a different domain's fields.
// @affine(reactor)
inline void pump(ShardCounters* c) {
  c->drops += 1;
}

// A sanctioned crossing: annotated conduits may touch any domain.
// @cross_domain
inline void drain(ShardCounters& c) {
  c.frames = 0;
  c.drops = 0;
}

// Method calls are not field touches; the callee asserts its own stamp.
inline void tick(ShardCounters& c) {
  c.bump();
}

}  // namespace flexric
