// Wire-taint fixture: values read off the wire are tainted until they
// survive a range check. Golden findings (expected.txt): a tainted loop
// bound, a tainted resize() argument, and a tainted array index. The
// checked variants below them must stay silent — a relational guard or a
// std::min clamp launders the value.
#include <algorithm>
#include <cstdint>
#include <vector>

namespace flexric {

struct WireReader {
  std::uint32_t u32();
  std::uint16_t u16();
};

inline void bad_loop(WireReader& r, std::vector<int>& out) {
  auto n = r.u32();
  for (std::uint32_t i = 0; i < n; ++i) out.push_back(0);
}

inline void bad_resize(WireReader& r, std::vector<int>& out) {
  auto n = r.u32();
  out.resize(n);
}

inline void bad_index(WireReader& r, int* table) {
  auto k = r.u16();
  table[k] = 1;
}

inline void good_guarded(WireReader& r, std::vector<int>& out) {
  auto n = r.u32();
  if (n > 64) return;  // relational guard sanitizes `n`
  out.resize(n);
  for (std::uint32_t i = 0; i < n; ++i) out.push_back(0);
}

inline void good_clamped(WireReader& r, std::vector<int>& out) {
  auto n = std::min<std::uint32_t>(r.u32(), 64);  // clamped at the source
  out.resize(n);
}

}  // namespace flexric
