// Tests for the xApp-hosting controller specialization (paper §6.3):
// xApp management, subscription MERGING (identical subscriptions share one
// E2 subscription), fan-out delivery, platform database, teardown.
#include <gtest/gtest.h>

#include "agent/agent.hpp"
#include "ctrl/xapp_host.hpp"
#include "e2sm/common.hpp"
#include "helpers.hpp"
#include "ran/functions.hpp"
#include "server/server.hpp"

namespace flexric::ctrl {
namespace {

using test::pump;
using test::pump_until;

constexpr WireFormat kFmt = WireFormat::flat;

struct HostWorld {
  Reactor reactor;
  ran::BaseStation bs{{ran::Rat::nr, 1, 106, kMilli, 20, false}};
  agent::E2Agent agent{reactor, {{1, 10, e2ap::NodeType::gnb}, kFmt}};
  ran::BsFunctionBundle bundle{bs, agent, kFmt};
  server::E2Server server{reactor, {21, kFmt}};
  std::shared_ptr<XappHostIApp> host = std::make_shared<XappHostIApp>();
  Nanos now = 0;

  HostWorld() {
    server.add_iapp(host);
    auto [a, s] = LocalTransport::make_pair(reactor);
    server.attach(s);
    (void)agent.add_controller(a);
    test::pump_until(reactor,
                     [this] { return server.ran_db().num_agents() == 1; });
    (void)bs.attach_ue({100, 1, 0, 15, 20});
  }
  void run_ttis(int n) {
    for (int t = 0; t < n; ++t) {
      now += kMilli;
      bs.tick(now);
      bundle.on_tti(now);
      reactor.run_once(0);
    }
  }
  Buffer trigger_ms(std::uint32_t ms) {
    return e2sm::sm_encode(
        e2sm::EventTrigger{e2sm::TriggerKind::periodic, ms}, kFmt);
  }
};

TEST(XappHost, RegisterUnregisterXapps) {
  HostWorld w;
  auto a = w.host->register_xapp("kpi-mon");
  auto b = w.host->register_xapp("anomaly");
  EXPECT_NE(a, b);
  EXPECT_EQ(w.host->num_xapps(), 2u);
  w.host->unregister_xapp(a);
  EXPECT_EQ(w.host->num_xapps(), 1u);
}

TEST(XappHost, IdenticalSubscriptionsAreMerged) {
  HostWorld w;
  auto x1 = w.host->register_xapp("kpi-1");
  auto x2 = w.host->register_xapp("kpi-2");
  int got1 = 0, got2 = 0;
  auto t1 = w.host->subscribe_xapp(
      x1, 1, e2sm::mac::Sm::kId, w.trigger_ms(1),
      {{1, e2ap::ActionType::report, {}}},
      [&](const e2ap::Indication&) { got1++; });
  auto t2 = w.host->subscribe_xapp(
      x2, 1, e2sm::mac::Sm::kId, w.trigger_ms(1),
      {{1, e2ap::ActionType::report, {}}},
      [&](const e2ap::Indication&) { got2++; });
  ASSERT_TRUE(t1.is_ok());
  ASSERT_TRUE(t2.is_ok());
  // One E2 subscription toward the agent, despite two xApps.
  EXPECT_EQ(w.host->num_e2_subscriptions(), 1u);
  pump(w.reactor);
  EXPECT_EQ(w.bundle.mac().num_subscriptions(), 1u);
  // Both xApps receive every indication (fan-out).
  w.run_ttis(10);
  pump(w.reactor, 5);
  EXPECT_GT(got1, 5);
  EXPECT_EQ(got1, got2);
}

TEST(XappHost, DifferentParametersAreNotMerged) {
  HostWorld w;
  auto x = w.host->register_xapp("kpi");
  auto t1 = w.host->subscribe_xapp(x, 1, e2sm::mac::Sm::kId, w.trigger_ms(1),
                                   {{1, e2ap::ActionType::report, {}}},
                                   [](const e2ap::Indication&) {});
  auto t2 = w.host->subscribe_xapp(x, 1, e2sm::mac::Sm::kId,
                                   w.trigger_ms(10),  // different period
                                   {{1, e2ap::ActionType::report, {}}},
                                   [](const e2ap::Indication&) {});
  ASSERT_TRUE(t1.is_ok() && t2.is_ok());
  EXPECT_EQ(w.host->num_e2_subscriptions(), 2u);
  pump(w.reactor);
  EXPECT_EQ(w.bundle.mac().num_subscriptions(), 2u);
}

TEST(XappHost, LastUnsubscribeTearsDownE2Subscription) {
  HostWorld w;
  auto x1 = w.host->register_xapp("a");
  auto x2 = w.host->register_xapp("b");
  auto t1 = *w.host->subscribe_xapp(x1, 1, e2sm::mac::Sm::kId,
                                    w.trigger_ms(1),
                                    {{1, e2ap::ActionType::report, {}}},
                                    [](const e2ap::Indication&) {});
  auto t2 = *w.host->subscribe_xapp(x2, 1, e2sm::mac::Sm::kId,
                                    w.trigger_ms(1),
                                    {{1, e2ap::ActionType::report, {}}},
                                    [](const e2ap::Indication&) {});
  pump(w.reactor);
  ASSERT_TRUE(w.host->unsubscribe_xapp(t1).is_ok());
  // Still one consumer: the E2 subscription survives.
  EXPECT_EQ(w.host->num_e2_subscriptions(), 1u);
  pump(w.reactor, 5);
  EXPECT_EQ(w.bundle.mac().num_subscriptions(), 1u);
  ASSERT_TRUE(w.host->unsubscribe_xapp(t2).is_ok());
  EXPECT_EQ(w.host->num_e2_subscriptions(), 0u);
  pump(w.reactor, 5);
  EXPECT_EQ(w.bundle.mac().num_subscriptions(), 0u);
  EXPECT_FALSE(w.host->unsubscribe_xapp(t2).is_ok());  // double free
}

TEST(XappHost, UnregisterDetachesEverything) {
  HostWorld w;
  auto x = w.host->register_xapp("a");
  (void)w.host->subscribe_xapp(x, 1, e2sm::mac::Sm::kId, w.trigger_ms(1),
                         {{1, e2ap::ActionType::report, {}}},
                         [](const e2ap::Indication&) {});
  (void)w.host->subscribe_xapp(x, 1, e2sm::rlc::Sm::kId, w.trigger_ms(1),
                         {{1, e2ap::ActionType::report, {}}},
                         [](const e2ap::Indication&) {});
  EXPECT_EQ(w.host->num_e2_subscriptions(), 2u);
  w.host->unregister_xapp(x);
  EXPECT_EQ(w.host->num_e2_subscriptions(), 0u);
}

TEST(XappHost, DatabaseKeepsLatestForLateJoiners) {
  HostWorld w;
  auto x = w.host->register_xapp("early");
  (void)w.host->subscribe_xapp(x, 1, e2sm::mac::Sm::kId, w.trigger_ms(1),
                         {{1, e2ap::ActionType::report, {}}},
                         [](const e2ap::Indication&) {});
  pump(w.reactor);
  w.run_ttis(5);
  pump(w.reactor, 5);
  const e2ap::Indication* latest = w.host->latest(1, e2sm::mac::Sm::kId);
  ASSERT_NE(latest, nullptr);
  auto msg = e2sm::sm_decode<e2sm::mac::IndicationMsg>(latest->message, kFmt);
  ASSERT_TRUE(msg.is_ok());
  EXPECT_EQ(msg->ues.size(), 1u);
  EXPECT_EQ(w.host->latest(1, e2sm::hw::Sm::kId), nullptr);
}

TEST(XappHost, SubscribeWithUnknownXappRejected) {
  HostWorld w;
  auto t = w.host->subscribe_xapp(999, 1, e2sm::mac::Sm::kId,
                                  w.trigger_ms(1),
                                  {{1, e2ap::ActionType::report, {}}},
                                  [](const e2ap::Indication&) {});
  EXPECT_FALSE(t.is_ok());
}

TEST(XappHost, AgentDisconnectDropsItsSubscriptions) {
  HostWorld w;
  auto x = w.host->register_xapp("a");
  (void)w.host->subscribe_xapp(x, 1, e2sm::mac::Sm::kId, w.trigger_ms(1),
                         {{1, e2ap::ActionType::report, {}}},
                         [](const e2ap::Indication&) {});
  pump(w.reactor);
  w.agent.remove_controller(0);
  pump(w.reactor, 10);
  EXPECT_EQ(w.host->num_e2_subscriptions(), 0u);
  EXPECT_EQ(w.host->latest(1, e2sm::mac::Sm::kId), nullptr);
}

}  // namespace
}  // namespace flexric::ctrl
