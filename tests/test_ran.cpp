// Base-station simulator tests: UE lifecycle, RLC/PDCP entities, datapath
// delivery, stats production in SM shape, channel model.
#include <gtest/gtest.h>

#include "ran/base_station.hpp"

namespace flexric::ran {
namespace {

CellConfig nr_cell() {
  CellConfig cfg;
  cfg.rat = Rat::nr;
  cfg.cell_id = 7;
  cfg.num_prbs = 106;
  cfg.default_mcs = 20;
  return cfg;
}

Packet make_packet(std::uint32_t size, std::uint64_t flow = 1,
                   std::uint32_t seq = 0) {
  Packet p;
  p.size_bytes = size;
  p.flow_id = flow;
  p.seq = seq;
  p.tuple.dst_port = 5000;
  p.tuple.proto = 17;
  return p;
}

// ---------------------------------------------------------------------------
// RLC entity
// ---------------------------------------------------------------------------

TEST(Rlc, EnqueuePullConservesBytes) {
  RlcEntity rlc;
  for (int i = 0; i < 10; ++i)
    ASSERT_TRUE(rlc.enqueue(make_packet(1000), 0));
  EXPECT_EQ(rlc.buffer_bytes(), 10'000u);
  std::uint32_t used = 0;
  auto done = rlc.pull(5'500, kMilli, &used);
  EXPECT_EQ(used, 5'500u);
  EXPECT_EQ(done.size(), 5u);  // 5 complete packets, 6th partially sent
  EXPECT_EQ(rlc.buffer_bytes(), 4'500u);
  done = rlc.pull(100'000, 2 * kMilli, &used);
  EXPECT_EQ(used, 4'500u);
  EXPECT_EQ(done.size(), 5u);
  EXPECT_TRUE(rlc.empty());
}

TEST(Rlc, SegmentedPacketLeavesOnLastByte) {
  RlcEntity rlc;
  rlc.enqueue(make_packet(1000), 0);
  std::uint32_t used = 0;
  EXPECT_TRUE(rlc.pull(999, kMilli, &used).empty());  // not yet complete
  auto done = rlc.pull(1, 2 * kMilli, &used);
  ASSERT_EQ(done.size(), 1u);
  EXPECT_EQ(used, 1u);
}

TEST(Rlc, TailDropWhenFull) {
  RlcEntity rlc(2'500);
  EXPECT_TRUE(rlc.enqueue(make_packet(1000), 0));
  EXPECT_TRUE(rlc.enqueue(make_packet(1000), 0));
  EXPECT_FALSE(rlc.enqueue(make_packet(1000), 0));  // would exceed 2500
  EXPECT_EQ(rlc.stats().dropped_sdus, 1u);
  EXPECT_EQ(rlc.buffer_bytes(), 2000u);
}

TEST(Rlc, SojournTracking) {
  RlcEntity rlc;
  rlc.enqueue(make_packet(100), 0);
  rlc.enqueue(make_packet(100), 10 * kMilli);
  std::uint32_t used = 0;
  rlc.pull(200, 50 * kMilli, &used);  // sojourns: 50 ms and 40 ms
  double avg = 0, max = 0;
  rlc.snapshot_period(&avg, &max);
  EXPECT_DOUBLE_EQ(avg, 45.0);
  EXPECT_DOUBLE_EQ(max, 50.0);
  // Period resets.
  rlc.snapshot_period(&avg, &max);
  EXPECT_DOUBLE_EQ(avg, 0.0);
}

TEST(Rlc, HeadSojournReflectsOldestPacket) {
  RlcEntity rlc;
  EXPECT_DOUBLE_EQ(rlc.head_sojourn_ms(kSecond), 0.0);
  rlc.enqueue(make_packet(100), 100 * kMilli);
  EXPECT_DOUBLE_EQ(rlc.head_sojourn_ms(350 * kMilli), 250.0);
}

// ---------------------------------------------------------------------------
// PDCP entity
// ---------------------------------------------------------------------------

TEST(Pdcp, HeaderOverheadAndCounters) {
  PdcpEntity pdcp;
  Packet p = pdcp.process_tx(make_packet(1000));
  EXPECT_EQ(p.size_bytes, 1000u + PdcpEntity::kHeaderBytes);
  EXPECT_EQ(pdcp.stats().tx_sdus, 1u);
  EXPECT_EQ(pdcp.stats().tx_sdu_bytes, 1000u);
  EXPECT_EQ(pdcp.stats().tx_pdu_bytes, 1003u);
  pdcp.process_rx(503);
  EXPECT_EQ(pdcp.stats().rx_sdu_bytes, 500u);
  pdcp.discard();
  EXPECT_EQ(pdcp.stats().discarded_sdus, 1u);
}

// ---------------------------------------------------------------------------
// Channel model
// ---------------------------------------------------------------------------

TEST(Channel, StaysInCqiBounds) {
  ChannelModel ch(8, 42);
  for (int i = 0; i < 10'000; ++i) {
    std::uint8_t cqi = ch.step(0.5);
    EXPECT_GE(cqi, 1);
    EXPECT_LE(cqi, 15);
  }
}

TEST(Channel, ZeroStepProbabilityIsStatic) {
  ChannelModel ch(10, 42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(ch.step(0.0), 10);
}

// ---------------------------------------------------------------------------
// BaseStation
// ---------------------------------------------------------------------------

TEST(BaseStation, AttachDetachEmitsRrcEvents) {
  BaseStation bs(nr_cell());
  std::vector<e2sm::rrc::IndicationMsg> events;
  bs.set_on_rrc_event(
      [&](const e2sm::rrc::IndicationMsg& ev) { events.push_back(ev); });
  ASSERT_TRUE(bs.attach_ue({100, 20899, 1, 15, 20}).is_ok());
  ASSERT_TRUE(bs.attach_ue({101, 20899, 2, 15, 20}).is_ok());
  EXPECT_FALSE(bs.attach_ue({100, 20899, 1, 15, 20}).is_ok());  // dup rnti
  ASSERT_TRUE(bs.detach_ue(100).is_ok());
  EXPECT_FALSE(bs.detach_ue(100).is_ok());

  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].kind, e2sm::rrc::EventKind::attach);
  EXPECT_EQ(events[0].rnti, 100);
  EXPECT_EQ(events[0].plmn, 20899u);
  EXPECT_EQ(events[2].kind, e2sm::rrc::EventKind::detach);
  EXPECT_EQ(bs.ues(), (std::vector<std::uint16_t>{101}));
}

TEST(BaseStation, DownlinkPacketsDeliveredInOrder) {
  BaseStation bs(nr_cell());
  (void)bs.attach_ue({100, 1, 0, 15, 20});
  std::vector<std::uint32_t> delivered;
  bs.set_on_delivery([&](std::uint16_t rnti, const Packet& p, Nanos) {
    EXPECT_EQ(rnti, 100);
    delivered.push_back(p.seq);
  });
  for (std::uint32_t i = 0; i < 20; ++i)
    ASSERT_TRUE(bs.deliver_downlink(100, 1, make_packet(1200, 1, i)));
  Nanos now = 0;
  for (int t = 0; t < 50 && delivered.size() < 20; ++t) {
    now += kMilli;
    bs.tick(now);
  }
  ASSERT_EQ(delivered.size(), 20u);
  for (std::uint32_t i = 0; i < 20; ++i) EXPECT_EQ(delivered[i], i);
}

TEST(BaseStation, ThroughputApproachesCellCapacity) {
  BaseStation bs(nr_cell());
  (void)bs.attach_ue({100, 1, 0, 15, 20});
  bs.set_on_delivery([](std::uint16_t, const Packet&, Nanos) {});
  Nanos now = 0;
  // Saturate: offer more than the cell can carry for 2 simulated seconds.
  for (int t = 0; t < 2000; ++t) {
    now += kMilli;
    for (int k = 0; k < 6; ++k)
      bs.deliver_downlink(100, 1, make_packet(1400));
    bs.tick(now);
  }
  double mbps = bs.ue_throughput_mbps(100, now, true);
  double capacity = cell_capacity_mbps(bs.config());
  EXPECT_GT(mbps, 0.85 * capacity);
  EXPECT_LE(mbps, 1.05 * capacity);
}

TEST(BaseStation, UnknownUeRejectsPackets) {
  BaseStation bs(nr_cell());
  EXPECT_FALSE(bs.deliver_downlink(42, 1, make_packet(100)));
}

TEST(BaseStation, MacStatsShapeAndPeriodReset) {
  BaseStation bs(nr_cell());
  (void)bs.attach_ue({100, 1, 0, 15, 20});
  (void)bs.attach_ue({101, 1, 0, 15, 20});
  Nanos now = 0;
  for (int t = 0; t < 10; ++t) {
    now += kMilli;
    bs.deliver_downlink(100, 1, make_packet(1400));
    bs.tick(now);
  }
  auto stats = bs.mac_stats(/*include_harq=*/true, {});
  ASSERT_EQ(stats.ues.size(), 2u);
  const auto& ue100 = stats.ues[0].rnti == 100 ? stats.ues[0] : stats.ues[1];
  EXPECT_EQ(ue100.mcs_dl, 20);
  EXPECT_GT(ue100.prbs_dl, 0u);
  EXPECT_GT(ue100.bytes_dl, 0u);
  // Period counters reset after reading.
  auto stats2 = bs.mac_stats(true, {});
  const auto& again = stats2.ues[0].rnti == 100 ? stats2.ues[0] : stats2.ues[1];
  EXPECT_EQ(again.bytes_dl, 0u);
}

TEST(BaseStation, MacStatsRntiFilter) {
  BaseStation bs(nr_cell());
  (void)bs.attach_ue({100, 1, 0, 15, 20});
  (void)bs.attach_ue({101, 1, 0, 15, 20});
  auto stats = bs.mac_stats(false, {101});
  ASSERT_EQ(stats.ues.size(), 1u);
  EXPECT_EQ(stats.ues[0].rnti, 101);
}

TEST(BaseStation, RlcStatsReflectBacklogAndSojourn) {
  BaseStation bs(nr_cell());
  (void)bs.attach_ue({100, 1, 0, 15, 3});  // low MCS: slow drain
  Nanos now = 0;
  for (int t = 0; t < 100; ++t) {
    now += kMilli;
    for (int k = 0; k < 10; ++k)
      bs.deliver_downlink(100, 1, make_packet(1400));
    bs.tick(now);
  }
  auto stats = bs.rlc_stats({});
  ASSERT_EQ(stats.bearers.size(), 1u);
  const auto& b = stats.bearers[0];
  EXPECT_EQ(b.drb_id, 1);
  EXPECT_GT(b.buffer_bytes, 0u);
  EXPECT_GT(b.sojourn_max_ms, 0.0);
  EXPECT_GT(b.rx_bytes, b.tx_bytes);  // backlog accumulating
}

TEST(BaseStation, PdcpStatsCountSdus) {
  BaseStation bs(nr_cell());
  (void)bs.attach_ue({100, 1, 0, 15, 20});
  for (int i = 0; i < 5; ++i) bs.deliver_downlink(100, 1, make_packet(500));
  auto stats = bs.pdcp_stats({});
  ASSERT_EQ(stats.bearers.size(), 1u);
  EXPECT_EQ(stats.bearers[0].tx_sdus, 5u);
  EXPECT_EQ(stats.bearers[0].tx_sdu_bytes, 2'500u);
}

TEST(BaseStation, KpmReportsCellMetrics) {
  BaseStation bs(nr_cell());
  (void)bs.attach_ue({100, 1, 0, 15, 20});
  Nanos now = 0;
  for (int t = 0; t < 1000; ++t) {
    now += kMilli;
    for (int k = 0; k < 6; ++k) bs.deliver_downlink(100, 1, make_packet(1400));
    bs.tick(now);
  }
  auto kpm = bs.kpm_stats();
  double thp = 0, prb = 0, ues = 0;
  for (const auto& m : kpm.metrics) {
    if (m.name == e2sm::kpm::kThroughputDlMbps) thp = m.value;
    if (m.name == e2sm::kpm::kPrbUtilizationDl) prb = m.value;
    if (m.name == e2sm::kpm::kActiveUes) ues = m.value;
  }
  EXPECT_GT(thp, 30.0);
  EXPECT_GT(prb, 0.9);
  EXPECT_EQ(ues, 1.0);
}

TEST(BaseStation, SecondDrbCreatedOnDemand) {
  BaseStation bs(nr_cell());
  (void)bs.attach_ue({100, 1, 0, 15, 20});
  EXPECT_EQ(bs.tc_chain(100, 2), nullptr);
  ASSERT_TRUE(bs.deliver_downlink(100, 2, make_packet(100)));
  EXPECT_NE(bs.tc_chain(100, 2), nullptr);
  auto stats = bs.rlc_stats({});
  EXPECT_EQ(stats.bearers.size(), 2u);
}

TEST(BaseStation, SliceConfigAffectsServiceThroughMac) {
  BaseStation bs(nr_cell());
  (void)bs.attach_ue({100, 1, 0, 15, 20});
  (void)bs.attach_ue({101, 1, 0, 15, 20});
  e2sm::slice::CtrlMsg msg;
  msg.kind = e2sm::slice::CtrlKind::add_mod;
  msg.algo = e2sm::slice::Algo::nvs;
  e2sm::slice::SliceConf s1;
  s1.id = 1;
  s1.nvs = {e2sm::slice::NvsKind::capacity, 0.75, 0, 0};
  e2sm::slice::SliceConf s2;
  s2.id = 2;
  s2.nvs = {e2sm::slice::NvsKind::capacity, 0.25, 0, 0};
  msg.slices = {s1, s2};
  ASSERT_TRUE(bs.mac().apply(msg).is_ok());
  e2sm::slice::CtrlMsg am;
  am.kind = e2sm::slice::CtrlKind::assoc_ue;
  am.assoc = {{100, 1}, {101, 2}};
  ASSERT_TRUE(bs.mac().apply(am).is_ok());

  Nanos now = 0;
  for (int t = 0; t < 3000; ++t) {
    now += kMilli;
    for (int k = 0; k < 4; ++k) {
      bs.deliver_downlink(100, 1, make_packet(1400));
      bs.deliver_downlink(101, 1, make_packet(1400));
    }
    bs.tick(now);
  }
  double t100 = bs.ue_throughput_mbps(100, now, false);
  double t101 = bs.ue_throughput_mbps(101, now, false);
  EXPECT_NEAR(t100 / (t100 + t101), 0.75, 0.05);
}

TEST(BaseStation, VaryingChannelChangesMcs) {
  CellConfig cfg = nr_cell();
  cfg.vary_channel = true;
  BaseStation bs(cfg, /*seed=*/3);
  (void)bs.attach_ue({100, 1, 0, 8, std::nullopt});
  std::set<std::uint8_t> mcs_seen;
  Nanos now = 0;
  for (int t = 0; t < 3000; ++t) {
    now += kMilli;
    bs.deliver_downlink(100, 1, make_packet(1400));
    bs.tick(now);
    auto stats = bs.mac_stats(false, {});
    mcs_seen.insert(stats.ues[0].mcs_dl);
  }
  EXPECT_GT(mcs_seen.size(), 1u);  // channel walk moved the MCS
}

}  // namespace
}  // namespace flexric::ran
