// E2AP IR <-> wire codec tests: round-trips for all 21 procedures in both
// encodings, wire-size ordering, and robustness against corrupt input.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "e2ap/codec.hpp"

namespace flexric::e2ap {
namespace {

/// Representative instance of every E2AP procedure, with optionals and lists
/// populated.
std::vector<Msg> sample_messages() {
  std::vector<Msg> out;

  SetupRequest setup;
  setup.trans_id = 3;
  setup.node = {0x20899, 77, NodeType::gnb};
  setup.ran_functions.push_back(
      {142, 1, "FLEXRIC-E2SM-MAC-STATS", Buffer{1, 2, 3}});
  setup.ran_functions.push_back({145, 2, "FLEXRIC-E2SM-SLICE-CTRL", {}});
  out.emplace_back(setup);

  SetupResponse sresp;
  sresp.trans_id = 3;
  sresp.ric_id = 0xABCDE;
  sresp.accepted = {142, 145};
  sresp.rejected = {{99, {Cause::Group::ric, 4}}};
  out.emplace_back(sresp);

  out.emplace_back(SetupFailure{5, {Cause::Group::transport, 1}});
  out.emplace_back(ResetRequest{9, {Cause::Group::misc, 2}});
  out.emplace_back(ResetResponse{9});

  ErrorIndication err;
  err.request = RicRequestId{100, 7};
  err.ran_function_id = 142;
  err.cause = {Cause::Group::protocol, 3};
  out.emplace_back(err);
  out.emplace_back(ErrorIndication{std::nullopt, std::nullopt,
                                   {Cause::Group::misc, 0}});

  ServiceUpdate update;
  update.trans_id = 11;
  update.added.push_back({150, 1, "ORAN-E2SM-HELLOWORLD", Buffer{9}});
  update.modified.push_back({142, 2, "FLEXRIC-E2SM-MAC-STATS", {}});
  update.removed = {144};
  out.emplace_back(update);

  ServiceUpdateAck ack;
  ack.trans_id = 11;
  ack.accepted = {150, 142};
  ack.rejected = {{1, {Cause::Group::ric, 9}}};
  out.emplace_back(ack);
  out.emplace_back(ServiceUpdateFailure{11, {Cause::Group::ric, 1}});

  NodeConfigUpdate ncu;
  ncu.trans_id = 1;
  ncu.components = {{"cu-cp", Buffer{1}}, {"du", Buffer{2, 3}}};
  out.emplace_back(ncu);

  NodeConfigUpdateAck ncua;
  ncua.trans_id = 1;
  ncua.accepted_components = {"cu-cp", "du"};
  out.emplace_back(ncua);

  SubscriptionRequest sub;
  sub.request = {21, 1};
  sub.ran_function_id = 142;
  sub.event_trigger = Buffer{0, 1, 0, 0};
  sub.actions.push_back({1, ActionType::report, Buffer{0}});
  sub.actions.push_back({2, ActionType::policy, Buffer{1, 1}});
  out.emplace_back(sub);

  SubscriptionResponse subr;
  subr.request = {21, 1};
  subr.ran_function_id = 142;
  subr.admitted = {1};
  subr.not_admitted = {{2, {Cause::Group::ric, 1}}};
  out.emplace_back(subr);

  out.emplace_back(
      SubscriptionFailure{{21, 1}, 142, {Cause::Group::ric, 0}});
  out.emplace_back(SubscriptionDeleteRequest{{21, 1}, 142});
  out.emplace_back(SubscriptionDeleteResponse{{21, 1}, 142});
  out.emplace_back(
      SubscriptionDeleteFailure{{21, 1}, 142, {Cause::Group::ric, 2}});

  Indication ind;
  ind.request = {21, 1};
  ind.ran_function_id = 142;
  ind.action_id = 1;
  ind.sn = 123456;
  ind.type = ActionType::report;
  ind.header = Buffer{7, 7};
  ind.message = Buffer(64, 0x42);
  ind.call_process_id = Buffer{1, 2};
  out.emplace_back(ind);

  Indication ind2 = ind;
  ind2.call_process_id.reset();
  ind2.type = ActionType::insert;
  out.emplace_back(ind2);

  ControlRequest ctrl;
  ctrl.request = {21, 2};
  ctrl.ran_function_id = 145;
  ctrl.header = Buffer{1};
  ctrl.message = Buffer(32, 0x55);
  ctrl.ack_requested = true;
  ctrl.call_process_id = Buffer{3};
  out.emplace_back(ctrl);

  ControlAck cack;
  cack.request = {21, 2};
  cack.ran_function_id = 145;
  cack.outcome = Buffer{0, 1};
  out.emplace_back(cack);

  ControlFailure cfail;
  cfail.request = {21, 2};
  cfail.ran_function_id = 145;
  cfail.cause = {Cause::Group::ric, 3};
  cfail.outcome = Buffer{9};
  out.emplace_back(cfail);

  return out;
}

class E2apRoundTrip : public ::testing::TestWithParam<WireFormat> {};

TEST_P(E2apRoundTrip, AllProceduresRoundTrip) {
  const Codec& codec = codec_for(GetParam());
  for (const Msg& msg : sample_messages()) {
    auto wire = codec.encode(msg);
    ASSERT_TRUE(wire.is_ok()) << msg_type_name(msg_type(msg));
    auto decoded = codec.decode(*wire);
    ASSERT_TRUE(decoded.is_ok())
        << msg_type_name(msg_type(msg)) << ": "
        << decoded.error().to_string();
    EXPECT_EQ(*decoded, msg) << msg_type_name(msg_type(msg));
  }
}

TEST_P(E2apRoundTrip, EveryMsgTypeIsCovered) {
  // The sample set must exercise all 21 procedures.
  std::set<MsgType> seen;
  for (const Msg& msg : sample_messages()) seen.insert(msg_type(msg));
  EXPECT_EQ(seen.size(), kNumMsgTypes);
}

TEST_P(E2apRoundTrip, TruncationAtEveryByteFailsCleanly) {
  const Codec& codec = codec_for(GetParam());
  for (const Msg& msg : sample_messages()) {
    auto wire = codec.encode(msg);
    ASSERT_TRUE(wire.is_ok());
    for (std::size_t cut = 0; cut < wire->size(); ++cut) {
      Buffer truncated(wire->begin(),
                       wire->begin() + static_cast<long>(cut));
      auto decoded = codec.decode(truncated);
      // Must not crash; for most cut points this must fail. (A few cut
      // points may still decode if trailing bytes were padding.)
      if (decoded.is_ok()) continue;
      EXPECT_NE(decoded.error().code, Errc::ok);
    }
  }
}

TEST_P(E2apRoundTrip, RandomByteFlipsNeverCrash) {
  const Codec& codec = codec_for(GetParam());
  Rng rng(2024);
  for (const Msg& msg : sample_messages()) {
    auto wire = codec.encode(msg);
    ASSERT_TRUE(wire.is_ok());
    for (int trial = 0; trial < 50; ++trial) {
      Buffer corrupted = *wire;
      std::size_t pos = rng.bounded(corrupted.size());
      corrupted[pos] ^= static_cast<std::uint8_t>(1 + rng.bounded(255));
      (void)codec.decode(corrupted);  // must not crash or hang
    }
  }
  SUCCEED();
}

TEST_P(E2apRoundTrip, GarbageInputRejected) {
  const Codec& codec = codec_for(GetParam());
  Rng rng(7);
  for (int trial = 0; trial < 200; ++trial) {
    Buffer garbage(rng.bounded(64), 0);
    for (auto& b : garbage) b = static_cast<std::uint8_t>(rng.next());
    (void)codec.decode(garbage);  // must not crash
  }
  SUCCEED();
}

INSTANTIATE_TEST_SUITE_P(Formats, E2apRoundTrip,
                         ::testing::Values(WireFormat::per, WireFormat::flat),
                         [](const auto& info) {
                           return std::string(wire_format_name(info.param));
                         });

TEST(E2apSizes, PerIsMoreCompactThanFlat) {
  // ASN.1 PER's selling point (§5.2): better compression. Verify it holds
  // for every sampled procedure.
  for (const Msg& msg : sample_messages()) {
    auto per_wire = per_codec().encode(msg);
    auto flat_wire = flat_codec().encode(msg);
    ASSERT_TRUE(per_wire.is_ok() && flat_wire.is_ok());
    EXPECT_LE(per_wire->size(), flat_wire->size())
        << msg_type_name(msg_type(msg));
  }
}

TEST(E2apSizes, FlatOverheadMatchesPaperRange) {
  // §5.2: "for each FB message, we observe 30-40 B overhead". Compare the
  // two encodings of an indication with a fixed payload.
  Indication ind;
  ind.request = {1, 1};
  ind.ran_function_id = 150;
  ind.message = Buffer(100, 0xAB);
  auto per_wire = per_codec().encode(Msg{ind});
  auto flat_wire = flat_codec().encode(Msg{ind});
  std::size_t overhead = flat_wire->size() - per_wire->size();
  EXPECT_GE(overhead, 20u);
  EXPECT_LE(overhead, 60u);
}

TEST(E2apCodec, FormatAccessor) {
  EXPECT_EQ(per_codec().format(), WireFormat::per);
  EXPECT_EQ(flat_codec().format(), WireFormat::flat);
  EXPECT_EQ(&codec_for(WireFormat::per), &per_codec());
  EXPECT_EQ(&codec_for(WireFormat::flat), &flat_codec());
}

TEST(E2apCodec, MsgTypeNamesAreOranTerms) {
  EXPECT_STREQ(msg_type_name(MsgType::indication), "RICindication");
  EXPECT_STREQ(msg_type_name(MsgType::subscription_request),
               "RICsubscriptionRequest");
  EXPECT_STREQ(msg_type_name(MsgType::setup_request), "E2SetupRequest");
}

}  // namespace
}  // namespace flexric::e2ap
