// Controller specialization tests: JSON, REST server/client, broker,
// monitoring iApp, slicing iApp (REST + SC SM), TC xApp policy.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "agent/agent.hpp"
#include "ctrl/broker.hpp"
#include "ctrl/json.hpp"
#include "ctrl/monitor.hpp"
#include "ctrl/rest.hpp"
#include "ctrl/slicing.hpp"
#include "ctrl/tc_xapp.hpp"
#include "helpers.hpp"
#include "ran/functions.hpp"

namespace flexric::ctrl {
namespace {

using test::pump;
using test::pump_until;

constexpr WireFormat kFmt = WireFormat::flat;

// ---------------------------------------------------------------------------
// JSON
// ---------------------------------------------------------------------------

TEST(Json, ParsePrimitives) {
  EXPECT_TRUE(Json::parse("null")->is_null());
  EXPECT_EQ(Json::parse("true")->as_bool(), true);
  EXPECT_EQ(Json::parse("42")->as_number(), 42.0);
  EXPECT_EQ(Json::parse("-3.5")->as_number(), -3.5);
  EXPECT_EQ(Json::parse("\"hi\"")->as_string(), "hi");
}

TEST(Json, ParseNested) {
  auto j = Json::parse(R"({"a": [1, 2, {"b": "x"}], "c": {"d": false}})");
  ASSERT_TRUE(j.is_ok());
  EXPECT_EQ((*j)["a"].as_array().size(), 3u);
  EXPECT_EQ((*j)["a"].as_array()[2]["b"].as_string(), "x");
  EXPECT_EQ((*j)["c"]["d"].as_bool(true), false);
  EXPECT_TRUE((*j)["missing"].is_null());
}

TEST(Json, DumpRoundTrip) {
  JsonObject obj;
  obj["name"] = "slice \"one\"";
  obj["share"] = 0.66;
  obj["count"] = 3;
  obj["on"] = true;
  obj["list"] = Json(JsonArray{Json(1), Json(2)});
  std::string text = Json(std::move(obj)).dump();
  auto parsed = Json::parse(text);
  ASSERT_TRUE(parsed.is_ok());
  EXPECT_EQ((*parsed)["name"].as_string(), "slice \"one\"");
  EXPECT_DOUBLE_EQ((*parsed)["share"].as_number(), 0.66);
  EXPECT_EQ((*parsed)["count"].as_number(), 3.0);
}

TEST(Json, MalformedInputsRejected) {
  for (const char* bad : {"", "{", "[1,", "{\"a\":}", "tru", "\"unterminated",
                          "{\"a\" 1}", "1 2", "{'single':1}"}) {
    EXPECT_FALSE(Json::parse(bad).is_ok()) << bad;
  }
}

TEST(Json, IntegersDumpWithoutDecimalPoint) {
  EXPECT_EQ(Json(5).dump(), "5");
  EXPECT_EQ(Json(0.5).dump(), "0.5");
}

// ---------------------------------------------------------------------------
// Broker
// ---------------------------------------------------------------------------

TEST(Broker, PubSubDeliversToTopicSubscribers) {
  Reactor reactor;
  Broker broker(reactor);
  std::vector<std::string> got_a, got_b;
  broker.subscribe("topic/a", [&](const std::string&, BytesView b) {
    got_a.emplace_back(b.begin(), b.end());
  });
  broker.subscribe("topic/b", [&](const std::string&, BytesView b) {
    got_b.emplace_back(b.begin(), b.end());
  });
  Buffer payload{'h', 'i'};
  broker.publish("topic/a", payload);
  pump(reactor);
  EXPECT_EQ(got_a.size(), 1u);
  EXPECT_TRUE(got_b.empty());
}

TEST(Broker, UnsubscribeStops) {
  Reactor reactor;
  Broker broker(reactor);
  int got = 0;
  auto id = broker.subscribe("t", [&](const std::string&, BytesView) { got++; });
  Buffer p{1};
  broker.publish("t", p);
  pump(reactor);
  broker.unsubscribe(id);
  broker.publish("t", p);
  pump(reactor);
  EXPECT_EQ(got, 1);
}

TEST(Broker, DeliveryIsAsynchronous) {
  Reactor reactor;
  Broker broker(reactor);
  bool delivered = false;
  broker.subscribe("t", [&](const std::string&, BytesView) { delivered = true; });
  Buffer p{1};
  broker.publish("t", p);
  EXPECT_FALSE(delivered);  // not synchronous (a real broker hop)
  pump(reactor);
  EXPECT_TRUE(delivered);
}

// Regression for the posted-lambda use-after-free: publish() queues a task on
// the reactor; destroying the Broker before the loop turns must void the
// delivery (weak alive token), not dereference the dead broker. Under ASan
// the old `[this, ...]` capture made this test crash.
TEST(Broker, DestroyWithPublishInFlightIsSafe) {
  Reactor reactor;
  int got = 0;
  {
    Broker broker(reactor);
    broker.subscribe("t", [&](const std::string&, BytesView) { got++; });
    Buffer p{1};
    broker.publish("t", p);
    broker.publish("t", p);
    EXPECT_EQ(broker.published(), 2u);
  }  // broker dies with both deliveries still queued
  pump(reactor);
  EXPECT_EQ(got, 0);  // voided, not delivered — and no use-after-free
}

// ---------------------------------------------------------------------------
// REST server + client
// ---------------------------------------------------------------------------

TEST(Rest, GetAndPostRoundTrip) {
  Reactor reactor;
  HttpServer http(reactor);
  http.route("GET", "/hello", [](const HttpRequest&, HttpResponse& resp) {
    resp.body = R"({"msg":"world"})";
  });
  std::string posted;
  http.route("POST", "/config", [&](const HttpRequest& req, HttpResponse& resp) {
    posted = req.body;
    resp.code = 201;
    resp.body = R"({"ok":true})";
  });
  ASSERT_TRUE(http.listen(0).is_ok());
  std::uint16_t port = http.port();

  // curl-like client on its own thread (blocking), reactor pumped here.
  std::atomic<bool> done{false};
  HttpResponse get_resp, post_resp;
  std::thread client([&] {
    auto r1 = HttpClient::request("127.0.0.1", port, "GET", "/hello");
    if (r1) get_resp = *r1;
    auto r2 = HttpClient::request("127.0.0.1", port, "POST", "/config",
                                  R"({"x":1})");
    if (r2) post_resp = *r2;
    done = true;
  });
  pump_until(reactor, [&] { return done.load(); }, 20000);
  client.join();

  EXPECT_EQ(get_resp.code, 200);
  EXPECT_EQ(get_resp.body, R"({"msg":"world"})");
  EXPECT_EQ(post_resp.code, 201);
  EXPECT_EQ(posted, R"({"x":1})");
}

TEST(Rest, UnknownRouteIs404) {
  Reactor reactor;
  HttpServer http(reactor);
  ASSERT_TRUE(http.listen(0).is_ok());
  std::atomic<bool> done{false};
  HttpResponse resp;
  std::thread client([&] {
    auto r = HttpClient::request("127.0.0.1", http.port(), "GET", "/nope");
    if (r) resp = *r;
    done = true;
  });
  pump_until(reactor, [&] { return done.load(); }, 20000);
  client.join();
  EXPECT_EQ(resp.code, 404);
}

TEST(Rest, PrefixRoutes) {
  Reactor reactor;
  HttpServer http(reactor);
  std::string last_path;
  http.route("GET", "/api/", [&](const HttpRequest& req, HttpResponse& resp) {
    last_path = req.path;
    resp.body = "{}";
  });
  ASSERT_TRUE(http.listen(0).is_ok());
  std::atomic<bool> done{false};
  int code = 0;
  std::thread client([&] {
    auto r = HttpClient::request("127.0.0.1", http.port(), "GET",
                                 "/api/slices/3");
    if (r) code = r->code;
    done = true;
  });
  pump_until(reactor, [&] { return done.load(); }, 20000);
  client.join();
  EXPECT_EQ(code, 200);
  EXPECT_EQ(last_path, "/api/slices/3");
}

TEST(Rest, OversizedRequestBodyIs413WithRetryAfter) {
  Reactor reactor;
  HttpServer http(reactor);
  http.set_max_request_bytes(512);
  int handler_calls = 0;
  http.route("POST", "/config", [&](const HttpRequest&, HttpResponse& resp) {
    handler_calls++;
    resp.body = "{}";
  });
  ASSERT_TRUE(http.listen(0).is_ok());

  std::atomic<bool> done{false};
  HttpResponse resp;
  std::thread client([&] {
    auto r = HttpClient::request("127.0.0.1", http.port(), "POST", "/config",
                                 std::string(4096, 'x'));
    if (r) resp = *r;
    done = true;
  });
  pump_until(reactor, [&] { return done.load(); }, 20000);
  client.join();

  EXPECT_EQ(resp.code, 413);
  EXPECT_EQ(resp.retry_after_s, 1) << "413 must carry a Retry-After hint";
  EXPECT_EQ(handler_calls, 0) << "the oversized body must never reach a handler";
  // A right-sized request on the same server still succeeds afterwards.
  done = false;
  std::thread client2([&] {
    auto r = HttpClient::request("127.0.0.1", http.port(), "POST", "/config",
                                 R"({"x":1})");
    if (r) resp = *r;
    done = true;
  });
  pump_until(reactor, [&] { return done.load(); }, 20000);
  client2.join();
  EXPECT_EQ(resp.code, 200);
  EXPECT_EQ(handler_calls, 1);
}

TEST(Rest, OversizedResponseIs503WithRetryAfter) {
  Reactor reactor;
  HttpServer http(reactor);
  http.set_max_response_bytes(256);
  http.route("GET", "/dump", [](const HttpRequest&, HttpResponse& resp) {
    resp.body = std::string(4096, 'y');  // handler overproduces
  });
  ASSERT_TRUE(http.listen(0).is_ok());

  std::atomic<bool> done{false};
  HttpResponse resp;
  std::thread client([&] {
    auto r = HttpClient::request("127.0.0.1", http.port(), "GET", "/dump");
    if (r) resp = *r;
    done = true;
  });
  pump_until(reactor, [&] { return done.load(); }, 20000);
  client.join();

  EXPECT_EQ(resp.code, 503);
  EXPECT_EQ(resp.retry_after_s, 1);
  EXPECT_LE(resp.body.size(), 256u)
      << "the oversized payload must be shed, not shipped";
}

// ---------------------------------------------------------------------------
// Monitoring iApp (the Fig. 8 workload)
// ---------------------------------------------------------------------------

ran::CellConfig nr_cell() {
  ran::CellConfig cfg;
  cfg.rat = ran::Rat::nr;
  cfg.num_prbs = 106;
  cfg.default_mcs = 20;
  return cfg;
}

struct MonitorWorld {
  Reactor reactor;
  ran::BaseStation bs{nr_cell()};
  agent::E2Agent agent{reactor, {{1, 10, e2ap::NodeType::gnb}, kFmt, {}}};
  ran::BsFunctionBundle bundle{bs, agent, kFmt};
  server::E2Server server{reactor, {21, kFmt, {}, {}}};
  Nanos now = 0;

  void connect() {
    auto [a_side, s_side] = LocalTransport::make_pair(reactor);
    server.attach(s_side);
    (void)agent.add_controller(a_side);
    test::pump_until(reactor,
                     [this] { return server.ran_db().num_agents() == 1; });
  }
  void run_ttis(int n) {
    for (int t = 0; t < n; ++t) {
      now += kMilli;
      bs.tick(now);
      bundle.on_tti(now);
      reactor.run_once(0);
    }
  }
};

TEST(Monitor, SubscribesAndPopulatesDb) {
  MonitorWorld w;
  auto monitor = std::make_shared<MonitorIApp>(MonitorIApp::Config{kFmt, 1});
  w.server.add_iapp(monitor);
  w.connect();
  (void)w.bs.attach_ue({100, 1, 0, 15, 20});
  (void)w.bs.attach_ue({101, 1, 0, 15, 20});
  w.run_ttis(20);
  pump(w.reactor, 5);

  ASSERT_EQ(monitor->db().size(), 1u);
  const auto& db = monitor->db().begin()->second;
  EXPECT_EQ(db.mac.size(), 2u);
  EXPECT_EQ(db.rlc.size(), 2u);
  EXPECT_EQ(db.pdcp.size(), 2u);
  EXPECT_GT(monitor->total_indications(), 30u);  // 3 SMs x ~20 reports
}

TEST(Monitor, RepublishesToBroker) {
  MonitorWorld w;
  Broker broker(w.reactor);
  MonitorIApp::Config cfg{kFmt, 1};
  cfg.broker = &broker;
  cfg.want_mac = false;
  cfg.want_pdcp = false;  // only RLC (the TC xApp feed)
  auto monitor = std::make_shared<MonitorIApp>(cfg);
  w.server.add_iapp(monitor);
  int published = 0;
  broker.subscribe("stats/rlc",
                   [&](const std::string&, BytesView) { published++; });
  w.connect();
  (void)w.bs.attach_ue({100, 1, 0, 15, 20});
  w.run_ttis(10);
  pump(w.reactor, 5);
  EXPECT_GT(published, 5);
}

// ---------------------------------------------------------------------------
// Slicing iApp
// ---------------------------------------------------------------------------

TEST(SlicingIApp, JsonToCtrlMsgTranslation) {
  auto j = Json::parse(R"({
    "algo": "nvs",
    "slices": [
      {"id": 1, "label": "embb", "share": 0.66, "sched": "pf"},
      {"id": 2, "rate_mbps": 5, "ref_rate_mbps": 50, "sched": "rr"}
    ]})");
  ASSERT_TRUE(j.is_ok());
  auto msg = SlicingIApp::ctrl_from_json(*j);
  ASSERT_TRUE(msg.is_ok());
  EXPECT_EQ(msg->kind, e2sm::slice::CtrlKind::add_mod);
  EXPECT_EQ(msg->algo, e2sm::slice::Algo::nvs);
  ASSERT_EQ(msg->slices.size(), 2u);
  EXPECT_EQ(msg->slices[0].nvs.kind, e2sm::slice::NvsKind::capacity);
  EXPECT_DOUBLE_EQ(msg->slices[0].nvs.capacity_share, 0.66);
  EXPECT_EQ(msg->slices[1].nvs.kind, e2sm::slice::NvsKind::rate);
  EXPECT_DOUBLE_EQ(msg->slices[1].nvs.rate_mbps, 5.0);
  EXPECT_EQ(msg->slices[1].ue_sched, e2sm::slice::UeSched::rr);
}

TEST(SlicingIApp, JsonAssocAndDelete) {
  auto assoc = SlicingIApp::ctrl_from_json(
      *Json::parse(R"({"assoc":[{"rnti":100,"slice":1}]})"));
  ASSERT_TRUE(assoc.is_ok());
  EXPECT_EQ(assoc->kind, e2sm::slice::CtrlKind::assoc_ue);
  ASSERT_EQ(assoc->assoc.size(), 1u);
  EXPECT_EQ(assoc->assoc[0].rnti, 100);

  auto del = SlicingIApp::ctrl_from_json(*Json::parse(R"({"delete":[1,2]})"));
  ASSERT_TRUE(del.is_ok());
  EXPECT_EQ(del->kind, e2sm::slice::CtrlKind::del);
  EXPECT_EQ(del->del_ids, (std::vector<std::uint32_t>{1, 2}));
}

TEST(SlicingIApp, BadJsonRejected) {
  EXPECT_FALSE(
      SlicingIApp::ctrl_from_json(*Json::parse(R"({"algo":"bogus"})")).is_ok());
  EXPECT_FALSE(
      SlicingIApp::ctrl_from_json(*Json::parse(R"({"algo":"nvs"})")).is_ok());
}

TEST(SlicingIApp, ConfiguresSlicesAndLearnsUes) {
  MonitorWorld w;
  auto slicing =
      std::make_shared<SlicingIApp>(SlicingIApp::Config{kFmt, 10});
  w.server.add_iapp(slicing);
  w.connect();
  (void)w.bs.attach_ue({100, 20899, 1, 15, 20});
  pump(w.reactor, 5);
  // UE discovery through RRC events.
  ASSERT_EQ(slicing->ues().size(), 1u);
  EXPECT_EQ(slicing->ues().at(100).plmn, 20899u);

  // Configure a slice through the iApp.
  auto msg = SlicingIApp::ctrl_from_json(
      *Json::parse(R"({"algo":"nvs","slices":[{"id":1,"share":0.5}]})"));
  std::optional<bool> ok;
  ASSERT_TRUE(slicing
                  ->configure(*slicing->first_agent(), *msg,
                              [&](const e2sm::slice::CtrlOutcome& o) {
                                ok = o.success;
                              })
                  .is_ok());
  ASSERT_TRUE(pump_until(w.reactor, [&] { return ok.has_value(); }));
  EXPECT_TRUE(*ok);
  EXPECT_EQ(w.bs.mac().num_slices(), 2u);

  // Status reports flow back.
  w.run_ttis(30);
  pump(w.reactor, 5);
  ASSERT_EQ(slicing->status().size(), 1u);
  EXPECT_EQ(slicing->status().begin()->second.algo, e2sm::slice::Algo::nvs);
}

// ---------------------------------------------------------------------------
// TC xApp policy
// ---------------------------------------------------------------------------

TEST(TcXappPolicy, JsonToTcCtrl) {
  auto add_q = TcSmManagerIApp::ctrl_from_json(*Json::parse(
      R"({"cmd":"add_queue","rnti":100,"drb":1,"qid":1})"));
  ASSERT_TRUE(add_q.is_ok());
  EXPECT_EQ(add_q->kind, e2sm::tc::CtrlKind::add_queue);
  EXPECT_EQ(add_q->queue.qid, 1u);

  auto add_f = TcSmManagerIApp::ctrl_from_json(*Json::parse(
      R"({"cmd":"add_filter","rnti":100,"filter_id":1,"qid":1,
          "match":{"dst_port":5060,"proto":17}})"));
  ASSERT_TRUE(add_f.is_ok());
  EXPECT_EQ(add_f->filter.match.dst_port, 5060);

  auto pacer = TcSmManagerIApp::ctrl_from_json(*Json::parse(
      R"({"cmd":"pacer","rnti":100,"mode":"bdp","target_ms":5})"));
  ASSERT_TRUE(pacer.is_ok());
  EXPECT_EQ(pacer->pacer.kind, e2sm::tc::PacerKind::bdp);

  EXPECT_FALSE(TcSmManagerIApp::ctrl_from_json(
                   *Json::parse(R"({"cmd":"launch_missiles"})"))
                   .is_ok());
}

TEST(TcXappPolicy, AppliesSegregationWhenSojournExceedsLimit) {
  MonitorWorld w;
  Broker broker(w.reactor);
  MonitorIApp::Config mon_cfg{kFmt, 1};
  mon_cfg.broker = &broker;
  auto monitor = std::make_shared<MonitorIApp>(mon_cfg);
  auto manager = std::make_shared<TcSmManagerIApp>(kFmt);
  w.server.add_iapp(monitor);
  w.server.add_iapp(manager);

  TcXapp::Config xcfg;
  xcfg.sm_format = kFmt;
  xcfg.sojourn_limit_ms = 20.0;
  xcfg.rnti = 100;
  xcfg.low_latency_flow.dst_port = 5060;
  xcfg.low_latency_flow.proto = 17;
  TcXapp xapp(broker, *manager, xcfg);

  w.connect();
  (void)w.bs.attach_ue({100, 1, 0, 15, 3});  // low MCS: easy to bloat
  EXPECT_FALSE(xapp.applied());

  // Overload the bearer: sojourn climbs past the limit, the xApp reacts.
  for (int t = 0; t < 300 && !xapp.applied(); ++t) {
    w.now += kMilli;
    for (int k = 0; k < 8; ++k) {
      ran::Packet p;
      p.size_bytes = 1400;
      p.tuple.dst_port = 443;
      p.tuple.proto = 6;
      w.bs.deliver_downlink(100, 1, p);
    }
    w.bs.tick(w.now);
    w.bundle.on_tti(w.now);
    w.reactor.run_once(0);
  }
  ASSERT_TRUE(xapp.applied());
  EXPECT_GT(xapp.stats_seen(), 0u);
  pump(w.reactor, 10);

  // The three actions materialized in the user plane.
  tc::TcChain* chain = w.bs.tc_chain(100, 1);
  ASSERT_NE(chain, nullptr);
  EXPECT_EQ(chain->num_queues(), 2u);
  EXPECT_EQ(chain->pacer().kind, e2sm::tc::PacerKind::bdp);
}

}  // namespace
}  // namespace flexric::ctrl
