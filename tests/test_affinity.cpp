// Reactor-affinity runtime guards (common/affinity.hpp).
//
// Unit tests for the ReactorAffinity stamp run in every build; the death
// tests that prove FLEXRIC_ASSERT_AFFINITY aborts on a wrong-thread call are
// active only when the guards are compiled in (Debug / sanitized builds, or
// -DFLEXRIC_AFFINITY_GUARDS=ON) and GTEST_SKIP otherwise.
#include <gtest/gtest.h>

#include <thread>

#include "common/affinity.hpp"
#include "ctrl/broker.hpp"
#include "helpers.hpp"
#include "server/server.hpp"
#include "transport/reactor.hpp"
#include "transport/shard_pool.hpp"

namespace flexric {
namespace {

using test::pump;

TEST(ReactorAffinity, UnboundAcceptsEveryThread) {
  ReactorAffinity aff;
  EXPECT_FALSE(aff.bound());
  EXPECT_TRUE(aff.on_owner_thread());
  bool ok_from_worker = false;
  std::thread worker([&] { ok_from_worker = aff.on_owner_thread(); });
  worker.join();
  EXPECT_TRUE(ok_from_worker);
}

TEST(ReactorAffinity, CheckOrBindAdoptsFirstCallerAndRejectsOthers) {
  ReactorAffinity aff;
  ASSERT_TRUE(aff.check_or_bind());  // this thread becomes the owner
  EXPECT_TRUE(aff.bound());
  EXPECT_TRUE(aff.check_or_bind());  // idempotent for the owner
  bool worker_allowed = true;
  std::thread worker([&] { worker_allowed = aff.check_or_bind(); });
  worker.join();
  EXPECT_FALSE(worker_allowed);
  aff.reset();
  EXPECT_FALSE(aff.bound());
  EXPECT_TRUE(aff.check_or_bind());  // re-adoptable after reset()
}

TEST(DomainAffinity, DefaultsToReactorDomain) {
  ReactorAffinity aff;  // the back-compat alias stays in the default domain
  EXPECT_STREQ(aff.domain(), "reactor");
}

TEST(DomainAffinity, NamedDomainIsCarriedByTheStamp) {
  DomainAffinity aff("shard");
  EXPECT_STREQ(aff.domain(), "shard");
  // Named stamps bind/check exactly like the default domain.
  ASSERT_TRUE(aff.check_or_bind());
  bool worker_allowed = true;
  std::thread worker([&] { worker_allowed = aff.check_or_bind(); });
  worker.join();
  EXPECT_FALSE(worker_allowed);
}

TEST(ReactorAffinity, ReactorRunRebindsOwnership) {
  Reactor reactor;
  if (!kAffinityGuardsEnabled) {
    // Stamp writes are compiled out with the guards; nothing to observe.
    GTEST_SKIP() << "FLEXRIC_AFFINITY_GUARDS off in this build";
  }
  pump(reactor, 1);
  EXPECT_TRUE(reactor.affinity().bound());
  EXPECT_TRUE(reactor.affinity().on_owner_thread());
  bool rebound = false;
  // Handing the loop to another thread re-binds ownership on entry.
  std::thread worker([&] {
    reactor.run_once(0);
    rebound = reactor.affinity().on_owner_thread();
  });
  worker.join();
  EXPECT_TRUE(rebound);
  EXPECT_FALSE(reactor.affinity().on_owner_thread());  // worker owns it now
  pump(reactor, 1);  // and pumping here hands it back
  EXPECT_TRUE(reactor.affinity().on_owner_thread());
}

// ---------------------------------------------------------------------------
// Death tests: a wrong-thread call into a guarded entry point aborts with a
// diagnostic instead of corrupting reactor state.
// ---------------------------------------------------------------------------

using AffinityDeathTest = ::testing::Test;

TEST(AffinityDeathTest, WrongThreadCallIntoServerAborts) {
  if (!kAffinityGuardsEnabled)
    GTEST_SKIP() << "FLEXRIC_AFFINITY_GUARDS off in this build";
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  Reactor reactor;
  server::E2Server srv(reactor, {});
  pump(reactor, 1);  // the loop thread (this one) now owns the reactor
  EXPECT_DEATH(
      {
        // lint: allow(affinity-annotation) death test: the wrong-thread call is the behavior under test
        std::thread offender([&] { (void)srv.listen(0); });
        offender.join();
      },
      "FLEXRIC_ASSERT_AFFINITY failed");
}

TEST(AffinityDeathTest, WrongThreadPublishIntoBrokerAborts) {
  if (!kAffinityGuardsEnabled)
    GTEST_SKIP() << "FLEXRIC_AFFINITY_GUARDS off in this build";
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  Reactor reactor;
  ctrl::Broker broker(reactor);
  pump(reactor, 1);
  Buffer payload{1, 2, 3};
  EXPECT_DEATH(
      {
        // lint: allow(affinity-annotation) death test: the wrong-thread call is the behavior under test
        std::thread offender([&] { broker.publish("t", payload); });
        offender.join();
      },
      "FLEXRIC_ASSERT_AFFINITY failed");
}

// The violation diagnostic names the domain whose stamp rejected the caller,
// so a multi-loop binary points at the right universe.
TEST(AffinityDeathTest, ViolationDiagnosticNamesTheDomain) {
  if (!kAffinityGuardsEnabled)
    GTEST_SKIP() << "FLEXRIC_AFFINITY_GUARDS off in this build";
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  DomainAffinity aff("shard");
  ASSERT_TRUE(aff.check_or_bind());  // this thread owns the shard domain
  EXPECT_DEATH(
      {
        std::thread offender([&] { FLEXRIC_ASSERT_AFFINITY(aff); });
        offender.join();
      },
      "does not own the 'shard' domain");
}

// Sharded RIC (DESIGN.md §13): every shard reactor is its own named domain
// ("shard0", "shard1", ...), so a cross-shard access aborts with the name of
// the shard whose universe was violated — in an N-loop binary, the
// diagnostic points at exactly the right one.
TEST(AffinityDeathTest, CrossShardAccessNamesTheOffendedShard) {
  if (!kAffinityGuardsEnabled)
    GTEST_SKIP() << "FLEXRIC_AFFINITY_GUARDS off in this build";
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  ShardPool pool(2, ShardPool::Mode::manual);
  server::E2Server srv(pool.reactor(1), {});
  pump(pool.reactor(1), 1);  // this thread now owns the shard1 domain
  EXPECT_STREQ(pool.reactor(1).affinity().domain(), "shard1");
  EXPECT_DEATH(
      {
        // lint: allow(affinity-annotation) death test: the cross-shard call is the behavior under test
        std::thread offender([&] { (void)srv.listen(0); });
        offender.join();
      },
      "does not own the 'shard1' domain");
}

// The guards must not fire on the correct thread: the full agent/server test
// suites already prove this implicitly, but assert the cheap case directly.
TEST(AffinityDeathTest, OwnerThreadCallsAreAccepted) {
  Reactor reactor;
  ctrl::Broker broker(reactor);
  pump(reactor, 1);
  int got = 0;
  broker.subscribe("t", [&](const std::string&, BytesView) { got++; });
  Buffer payload{1};
  broker.publish("t", payload);
  pump(reactor);
  EXPECT_EQ(got, 1);
}

}  // namespace
}  // namespace flexric
