// Deterministic multi-shard harness (DESIGN.md §13).
//
// The whole N-shard system — every shard reactor, every agent, the home
// thread's ring drains — is driven by ONE test thread against ONE shared
// VirtualClock, in a fixed interleaving order:
//
//   clock step -> ShardPool::pump() (shard 0 first, fixed rounds)
//              -> ShardedE2Server::pump_home() (rings in shard order)
//
// so a seeded chaos or storm scenario replays byte-identically no matter
// how many shards it spans. Threaded mode keeps the exact same code paths
// (the rings and affinity domains don't care who pumps); the harness just
// removes the scheduler from the picture.
//
// Agents live on their shard's reactor: LocalTransport::make_pair puts both
// endpoints on one reactor, so the agent is as shard-affine as the server
// it dials — exactly the deployment shape, in miniature.
#pragma once

#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "agent/agent.hpp"
#include "common/clock.hpp"
#include "common/overload.hpp"
#include "server/sharded_server.hpp"
#include "server/supervisor.hpp"
#include "transport/faulty.hpp"
#include "transport/resilience.hpp"
#include "transport/shard_pool.hpp"

namespace flexric::test {

/// Deterministic shard-fault knob (DESIGN.md §15): one planned failure of
/// one shard, injected by the harness at a virtual instant. Seeded soaks
/// derive a plan of these from the seed, so a chaos run replays
/// byte-identically.
///
///   * wedge  — the shard loop stops turning (a handler wedged); its
///     established links backpressure (tx_credit 0), exactly as TCP would
///     against a stuck reader, so mid-wedge emissions buffer agent-side or
///     shed with a counted reason — never vanish.
///   * stop_pump — the loop is starved by the scheduler; observationally
///     identical to wedge from outside the shard (same backpressure), kept
///     as a distinct kind so fault plans read like the failure they model.
///   * crash — process death: every link to the shard resets immediately
///     (FaultyTransport::kill) and the loop never turns again.
struct ShardFault {
  enum class Kind { wedge, stop_pump, crash };
  Kind kind = Kind::wedge;
  std::uint32_t shard = 0;
  Nanos at = 0;           ///< virtual time of injection
  std::uint32_t nth = 0;  ///< crash-on-nth-event: emissions seen first
};

/// Shard count for one soak iteration: derived from the seed so the
/// default 12-seed set sweeps 1/2/4 shards, overridable to a fixed count
/// with FLEXRIC_SHARD_COUNT (ci.sh --shard pins 4).
inline std::uint32_t soak_shards(std::uint64_t seed) {
  if (const char* env = std::getenv("FLEXRIC_SHARD_COUNT")) {
    const int n = std::atoi(env);
    if (n >= 1 && n <= 16) return static_cast<std::uint32_t>(n);
  }
  return 1u << (seed % 3);  // 1, 2, 4
}

/// Smallest nb_id >= `from` that the partitioner places on `shard`.
inline std::uint32_t nb_id_on_shard(
    std::uint32_t shard, std::uint32_t num_shards, std::uint32_t from = 1,
    e2ap::NodeType type = e2ap::NodeType::gnb, std::uint32_t plmn = 1) {
  for (std::uint32_t nb = from;; ++nb) {
    e2ap::GlobalNodeId node{plmn, nb, type};
    if (server::shard_of(node, num_shards) == shard) return nb;
  }
}

/// Minimal RAN function for shard tests: admits every subscription, counts
/// and sequences what it emits (the `emitted` side of the global ledger).
class ShardStubFn final : public agent::RanFunction {
 public:
  explicit ShardStubFn(std::uint16_t id) {
    desc_.id = id;
    desc_.revision = 1;
    desc_.name = "SHARD-STUB";
  }
  [[nodiscard]] const e2ap::RanFunctionItem& descriptor() const override {
    return desc_;
  }
  Result<agent::SubscriptionOutcome> on_subscription(
      const e2ap::SubscriptionRequest& req, agent::ControllerId) override {
    last_sub = req;
    agent::SubscriptionOutcome out;
    for (const auto& a : req.actions) out.admitted.push_back(a.id);
    return out;
  }
  Status on_subscription_delete(const e2ap::SubscriptionDeleteRequest&,
                                agent::ControllerId) override {
    return Status::ok();
  }
  Result<Buffer> on_control(const e2ap::ControlRequest& req,
                            agent::ControllerId) override {
    return req.message;
  }
  void emit(agent::ControllerId origin) {
    e2ap::Indication ind;
    ind.request = last_sub.request;
    ind.ran_function_id = desc_.id;
    ind.action_id = 1;
    ind.sn = emitted;
    ind.message = {0xAB};
    emitted++;
    // A synchronous failure (dead link mid-crash: Errc::io) is a counted
    // outcome -- the producer was told, so the ledger charges it here.
    // Backpressure (Errc::capacity) is absorbed into the agent's pending
    // buffer by send_indication itself and is NOT a refusal.
    if (!services_->send_indication(origin, ind).is_ok()) refused++;
  }

  std::uint32_t emitted = 0;
  std::uint32_t refused = 0;  ///< sends rejected synchronously (link dead)
  e2ap::SubscriptionRequest last_sub;

 private:
  e2ap::RanFunctionItem desc_;
};

/// Per-shard lifecycle log; entries are shard-local AgentIds, so traces
/// prefix them with the shard index.
struct ShardEventLog final : server::IApp {
  const char* name() const override { return "shard-event-log"; }
  void on_agent_connected(const server::AgentInfo& info) override {
    log.push_back("connect:" + std::to_string(info.id));
  }
  void on_agent_disconnected(server::AgentId id) override {
    log.push_back("disconnect:" + std::to_string(id));
  }
  void on_agent_quarantined(server::AgentId id) override {
    log.push_back("quarantine:" + std::to_string(id));
  }
  void on_agent_reconnected(const server::AgentInfo& info) override {
    log.push_back("reconnect:" + std::to_string(info.id));
  }
  std::vector<std::string> log;
};

struct ShardWorld {
  /// Harness agents speak FLAT; force the shard servers to match whatever
  /// else the test configured.
  static server::ShardedConfig flat(server::ShardedConfig cfg) {
    cfg.server.e2ap_format = WireFormat::flat;
    return cfg;
  }

  /// `supervised` switches the world into the §15 failure-injection shape:
  /// agents live on a separate RAN-side reactor (so their timers keep
  /// running while a shard is wedged or torn down), dials are refused at
  /// downed shards, and every advance() quantum ends with a watchdog poll.
  explicit ShardWorld(std::uint32_t shards, server::ShardedConfig cfg = {},
                      bool supervised = false)
      : pool(shards, ShardPool::Mode::manual, &clock),
        ric(pool, flat(std::move(cfg))),
        supervised_(supervised),
        wedged_(shards, 0) {
    for (std::uint32_t i = 0; i < shards; ++i)
      events.push_back(std::make_shared<ShardEventLog>());
    // Installed via factory so a rebuilt shard re-gets the SAME log object:
    // its lifecycle history spans incarnations.
    ric.add_iapp_factory(
        [this](std::uint32_t i) { return events[i]; });
    if (supervised_) {
      ran_ = std::make_unique<Reactor>("reactor");
      ran_->set_time_source(&clock);
      ric.supervisor().set_on_transition(
          [this](std::uint32_t s, server::ShardHealth from,
                 server::ShardHealth to) {
            using server::ShardHealth;
            if (to == ShardHealth::quarantined) detect_at = clock.now();
            // The rebuild replaced the wedged loop with a live one: resume
            // pumping it (the fault is over by construction).
            if (to == ShardHealth::recovering) wedged_[s] = 0;
            std::ostringstream e;
            e << "t=" << clock.now() / kMilli << "ms s" << s << " "
              << server::shard_health_name(from) << "->"
              << server::shard_health_name(to);
            transitions.push_back(e.str());
            if (on_transition) on_transition(s, from, to);
          });
    }
  }

  /// Agents cancel their timers on destruction; tear them down while the
  /// RAN-side reactor (declared below them, hence destroyed before them)
  /// is still alive.
  ~ShardWorld() { nodes.clear(); }

  struct Node {
    std::unique_ptr<agent::E2Agent> agent;
    std::shared_ptr<ShardStubFn> fn;
    std::shared_ptr<FaultyTransport> link;  ///< most recent dial's link
    std::uint32_t shard = 0;      ///< owning shard (where the agent lives)
    std::uint32_t dialed = 0;     ///< shard actually dialed (misroute tests)
    std::uint32_t nb_id = 0;
    e2ap::NodeType type = e2ap::NodeType::gnb;
    agent::ControllerId ctrl = 0;
    server::AgentId id = 0;   ///< shard-local server-side id
    server::AgentId gid = 0;  ///< global id (shard in the top byte)
    int indications = 0;
    std::vector<std::uint32_t> sns;
    int dials = 0;
    FaultProfile profile;  ///< applied to every new link
    std::uint64_t seed = 1;
  };

  /// One pump round of the whole world in fixed order: every non-wedged
  /// shard (shard 0 first), the RAN-side reactor, the home rings, then the
  /// watchdog. A wedged shard is simply never pumped — the loop "stops
  /// turning", which is exactly what its heartbeat goes silent over.
  void pump_world(int rounds = 8) {
    for (std::uint32_t i = 0; i < pool.size(); ++i)
      if (!wedged_[i]) pool.pump_shard(i, rounds);
    if (ran_)
      for (int r = 0; r < rounds; ++r)
        if (ran_->run_once(0) == 0) break;
    ric.pump_home();
    if (supervised_) ric.supervisor().poll(clock.now());
  }

  /// One deterministic scheduling quantum: step the shared clock, pump the
  /// shards in fixed order, drain the home rings. THE interleave contract.
  void advance(Nanos dt, Nanos step = kMilli) {
    while (dt > 0) {
      Nanos d = dt < step ? dt : step;
      clock.advance(d);
      dt -= d;
      pump_world(8);
    }
  }
  /// Settle without moving time (drain in-flight deliveries).
  void settle(int iters = 10) {
    for (int i = 0; i < iters; ++i) pump_world(8);
  }

  // -- §15 fault injection (supervised worlds) ------------------------------

  /// A handler on `shard` wedges (or its loop is starved): the loop stops
  /// turning and, like TCP against a stuck reader, every established link
  /// to the shard backpressures. Settle first so nothing is in flight —
  /// the harness injects faults only at quiescent quantum boundaries,
  /// keeping the global ledger exact (nothing is dropped uncounted inside
  /// a doomed reactor's task queue).
  void wedge_shard(std::uint32_t shard) {
    settle();
    wedged_[shard] = 1;
    for (auto& n : nodes)
      if (n->dialed == shard && n->link) n->link->set_tx_credit(0);
  }

  /// Process death: every link to the shard resets now, the loop never
  /// turns again. Same quiescence discipline as wedge_shard.
  void crash_shard(std::uint32_t shard) {
    settle();
    wedged_[shard] = 1;
    for (auto& n : nodes)
      if (n->dialed == shard && n->link) n->link->kill();
  }

  void inject(const ShardFault& f) {
    if (f.kind == ShardFault::Kind::crash) crash_shard(f.shard);
    else wedge_shard(f.shard);
  }

  /// Wedge WITHOUT the quiescence settle: condemns whatever is in flight
  /// (e.g. fan-out parked in the shard's ring) so the rebuild must shed it
  /// with exact accounting. The ledger stays exact — the supervisor_shed
  /// counter is precisely how; this is the path that proves it.
  void wedge_shard_raw(std::uint32_t shard) {
    wedged_[shard] = 1;
    for (auto& n : nodes)
      if (n->dialed == shard && n->link) n->link->set_tx_credit(0);
  }

  /// The fault cleared on its own (handler un-wedged) — resume pumping.
  /// Rebuild-driven un-wedging happens automatically via the transition
  /// hook; this is for degraded-then-recovered scenarios without a restart.
  void unwedge_shard(std::uint32_t shard) { wedged_[shard] = 0; }

  /// Arm cross-shard fan-out with a counting handler — the delivery path
  /// supervision tests measure (it re-arms itself through a rebuild, unlike
  /// a direct shard-server subscription, which dies with the incarnation).
  /// Call before agents connect. Records MTTR's second half: the first
  /// delivery after a quarantine detection.
  void enable_fanout() {
    ric.subscribe_fanout(
        200, Buffer{0x01}, {{1, e2ap::ActionType::report, {}}},
        [this](const server::ShardedE2Server::FanoutIndication& fi) {
          fanout_delivered++;
          fanout_sns.push_back({fi.agent, fi.ind.sn});
          if (detect_at != 0 && first_redelivery_at == 0 &&
              clock.now() > detect_at)
            first_redelivery_at = clock.now();
        });
  }

  /// Connect an agent homed on `shard` (dialing `dial_shard`'s server — a
  /// different value exercises the misroute gate, and the setup will never
  /// complete). nb_id 0 = pick one the partitioner maps to `shard`.
  Node& add_agent(std::uint32_t shard, std::uint32_t nb_id = 0,
                  e2ap::NodeType type = e2ap::NodeType::gnb,
                  agent::OverloadConfig aov = {}, std::uint64_t seed = 1,
                  std::int32_t dial_shard = -1) {
    auto n = std::make_unique<Node>();
    Node* np = n.get();
    n->shard = shard;
    n->dialed = dial_shard < 0 ? shard
                               : static_cast<std::uint32_t>(dial_shard);
    n->nb_id = nb_id != 0 ? nb_id
                          : nb_id_on_shard(shard, pool.size(), next_nb_, type);
    next_nb_ = n->nb_id + 1;
    n->type = type;
    n->seed = seed;
    n->fn = std::make_shared<ShardStubFn>(200);
    agent::E2Agent::Config acfg{{1, n->nb_id, type}, WireFormat::flat, aov};
    // Supervised worlds home the agent on the RAN-side reactor: its timers
    // (heartbeat, reconnect backoff, pending flush) must keep running while
    // the shard it dialed is wedged or mid-rebuild. The transport pair still
    // lives on the *dialed* shard's reactor, so a wedged shard blackholes
    // traffic exactly like a stuck server process behind a live socket.
    Reactor& agent_r = supervised_ ? *ran_ : pool.reactor(shard);
    n->agent = std::make_unique<agent::E2Agent>(agent_r, acfg);
    EXPECT_TRUE(n->agent->register_function(n->fn).is_ok());
    ResilienceConfig rc = agent_rc;  // template; per-node seed below
    rc.seed = seed + n->nb_id * 7919;
    auto cid = n->agent->add_controller(
        [this, np]() -> Result<std::shared_ptr<MsgTransport>> {
          if (supervised_ &&
              (wedged_[np->dialed] || !ric.accepting(np->dialed)))
            return Result<std::shared_ptr<MsgTransport>>(
                Errc::io, "dial refused: shard down");
          np->dials++;
          Reactor& r = supervised_ ? pool.reactor(np->dialed)
                                   : pool.reactor(np->shard);
          auto [a_side, s_side] = LocalTransport::make_pair(r);
          FaultProfile p = np->profile;
          p.seed = np->seed + static_cast<std::uint64_t>(np->dials) * 7919;
          auto faulty = std::make_shared<FaultyTransport>(r, a_side, p);
          np->link = faulty;
          ric.shard_server(np->dialed).attach(s_side);
          return std::static_pointer_cast<MsgTransport>(faulty);
        },
        rc);
    EXPECT_TRUE(cid.is_ok());
    n->ctrl = *cid;
    nodes.push_back(std::move(n));
    return *nodes.back();
  }

  [[nodiscard]] bool established(const Node& n) const {
    return n.agent->state(n.ctrl) == agent::ConnState::established;
  }

  /// Drive until `n` is established (correctly-routed agents only).
  bool converge(Node& n, Nanos budget = 10 * kSecond) {
    for (Nanos t = 0; t < budget; t += 10 * kMilli) {
      if (established(n)) break;
      advance(10 * kMilli);
    }
    if (!established(n)) return false;
    settle();
    refresh_ids(n);
    EXPECT_NE(n.id, 0u);
    return true;
  }

  /// (Re-)discover a node's server-side id by its own GlobalNodeId — robust
  /// no matter how many agents converged in the meantime. A LIVE server
  /// allocates a fresh id per attach, so a churned-and-re-homed agent's id
  /// drifts; only a rebuilt shard's allocator starts over deterministically.
  /// Call after churn, before comparing gids against the directory.
  void refresh_ids(Node& n) {
    for (server::AgentId id :
         ric.shard_server(n.shard).ran_db().agents()) {
      const server::AgentInfo* info =
          ric.shard_server(n.shard).ran_db().agent(id);
      if (info != nullptr && info->node.plmn == 1 &&
          info->node.nb_id == n.nb_id && info->node.type == n.type) {
        n.id = id;
        n.gid = server::global_agent_id(n.shard, id);
      }
    }
  }

  /// Subscribe the harness to a node's RAN function on its shard server;
  /// deliveries land in node.indications / node.sns (manual mode: the test
  /// thread owns every shard domain, so direct shard access is legitimate).
  void subscribe(Node& n) {
    server::SubCallbacks cbs;
    cbs.on_response = [](const e2ap::SubscriptionResponse&) {};
    cbs.on_indication = [&n](const e2ap::Indication& ind) {
      n.indications++;
      n.sns.push_back(ind.sn);
    };
    auto h = ric.shard_server(n.shard).subscribe(
        n.id, 200, Buffer{0x01}, {{1, e2ap::ActionType::report, {}}},
        std::move(cbs));
    ASSERT_TRUE(h.is_ok());
    advance(10 * kMilli);
    ASSERT_EQ(n.fn->last_sub.actions.size(), 1u)
        << "subscription never reached the agent";
  }

  /// Global exact-accounting check across every shard (DESIGN.md §11 ⊗ §13):
  /// sum(emitted) == sum(delivered) + sum(agent_shed) + sum(server_shed).
  void expect_global_reconciles() {
    std::uint64_t emitted = 0, delivered = 0, agent_shed = 0;
    for (const auto& n : nodes) {
      if (n->shard != n->dialed) continue;  // misrouted: never subscribed
      emitted += n->fn->emitted;
      delivered += static_cast<std::uint64_t>(n->indications);
      agent_shed += n->agent->stats().indications_shed + n->fn->refused;
    }
    std::uint64_t server_shed = 0;
    for (std::uint32_t i = 0; i < pool.size(); ++i) {
      const auto& st = ric.shard_server(i).stats();
      server_shed += st.rate_shed + st.flood_shed +
                     ric.shard_server(i)
                         .ingest_queue()
                         .queue(overload::MsgClass::data)
                         .stats()
                         .shed();
      EXPECT_EQ(st.msgs_rx, st.dispatched + st.rate_shed + st.flood_shed +
                                st.queue_shed +
                                ric.shard_server(i).ingest_queued())
          << "shard " << i << " server ledger does not reconcile";
    }
    EXPECT_EQ(emitted, delivered + agent_shed + server_shed)
        << "an indication vanished without a shed counter";
  }

  /// Global exact-accounting across a supervised world (§11 ⊗ §15): every
  /// indication ever emitted is delivered (cross-shard fan-out at home),
  /// still buffered agent-side, or shed with a counted reason — including
  /// the sheds supervision itself caused:
  ///
  ///   Σemitted == Σdelivered + Σbuffered + Σagent_shed + Σserver_shed
  ///                          + Σsupervisor_shed
  ///
  /// where agent_shed includes sends synchronously refused by a dead link
  /// (the producer was told: Errc::io during a crash window), server_shed
  /// spans live AND retired incarnations (global_ledger folds the harvested
  /// ledgers in), and supervisor_shed counts fan-out parked in a condemned
  /// ring plus frames stranded in a dead ingest queue. Call at quiescence
  /// (after settle()).
  void expect_supervised_reconciles() {
    std::uint64_t emitted = 0, agent_shed = 0, buffered = 0, refused = 0;
    for (const auto& n : nodes) {
      emitted += n->fn->emitted;
      agent_shed += n->agent->stats().indications_shed;
      refused += n->fn->refused;
      if (const auto* q = n->agent->pending_indications(n->ctrl))
        buffered += q->size();
    }
    const ShardLedger g = ric.global_ledger();
    EXPECT_EQ(g.queued, 0u) << "not quiescent: frames still queued";
    EXPECT_EQ(emitted, fanout_delivered + buffered + agent_shed + refused +
                           g.server_shed() + ric.supervisor_shed())
        << "an indication vanished without a shed counter (delivered="
        << fanout_delivered << " buffered=" << buffered
        << " agent_shed=" << agent_shed << " refused=" << refused
        << " server_shed=" << g.server_shed()
        << " supervisor_shed=" << ric.supervisor_shed() << ")";
  }

  /// Trace line for double-run determinism: per-shard stats + event logs in
  /// fixed shard order, then the home-side merge state.
  [[nodiscard]] std::string trace() {
    std::ostringstream out;
    for (std::uint32_t i = 0; i < pool.size(); ++i) {
      const auto& st = ric.shard_server(i).stats();
      out << "s" << i << "{rx=" << st.msgs_rx << " disp=" << st.dispatched
          << " rate=" << st.rate_shed << " flood=" << st.flood_shed
          << " q=" << st.queue_shed << " mis=" << st.misrouted
          << " rec=" << st.reconnects << " ev=";
      for (const auto& e : events[i]->log) out << e << ";";
      out << "} ";
    }
    out << "dir=" << ric.directory().num_agents()
        << " resyncs=" << ric.directory_resyncs();
    if (supervised_) {
      const auto& st = ric.supervisor().stats();
      out << " sup{q=" << st.quarantines << " r=" << st.restarts
          << " rec=" << st.recoveries << " shed=" << ric.supervisor_shed()
          << " qfail=" << ric.queries_failed()
          << " fan=" << fanout_delivered << " tr=";
      for (const auto& t : transitions) out << t << ";";
      out << "} sns=";
      for (const auto& [gid, sn] : fanout_sns)
        out << gid << ":" << sn << ";";
    }
    return out.str();
  }

  /// Resilience template applied to every new agent (rc.seed is derived per
  /// node). Defaults to storm posture — heartbeating but flap-proof; chaos
  /// soaks swap in a twitchier profile before adding agents.
  ResilienceConfig agent_rc = [] {
    ResilienceConfig rc;
    rc.heartbeat_period = 200 * kMilli;
    rc.heartbeat_miss_threshold = 100;  // storms must not flap the link
    rc.backoff_base = 50 * kMilli;
    return rc;
  }();

  VirtualClock clock;
  ShardPool pool;
  server::ShardedE2Server ric;
  std::vector<std::shared_ptr<ShardEventLog>> events;
  std::vector<std::unique_ptr<Node>> nodes;

  // -- supervision-harness state (populated when supervised) --
  /// Chained after the harness's own transition bookkeeping.
  server::ShardSupervisor::TransitionHook on_transition;
  std::vector<std::string> transitions;  ///< "t=<ms> s<i> from->to"
  std::uint64_t fanout_delivered = 0;
  std::vector<std::pair<server::AgentId, std::uint32_t>> fanout_sns;
  Nanos detect_at = 0;            ///< newest ->quarantined edge (virtual)
  Nanos first_redelivery_at = 0;  ///< first fan-out delivery after it

 private:
  bool supervised_ = false;
  std::vector<std::uint8_t> wedged_;
  std::unique_ptr<Reactor> ran_;
  std::uint32_t next_nb_ = 1;
};

}  // namespace flexric::test
