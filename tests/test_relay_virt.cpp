// Recursive controllers: the relay (two-hop emulation, Fig. 9a) and the
// virtualization controller (§6.2, Appendix B, Fig. 15).
#include <gtest/gtest.h>

#include "agent/agent.hpp"
#include "ctrl/relay.hpp"
#include "ctrl/slicing.hpp"
#include "ctrl/virt.hpp"
#include "e2sm/common.hpp"
#include "helpers.hpp"
#include "ran/functions.hpp"
#include "server/server.hpp"

namespace flexric::ctrl {
namespace {

using test::pump;
using test::pump_until;

constexpr WireFormat kFmt = WireFormat::flat;

ran::CellConfig lte50() {
  ran::CellConfig cfg;
  cfg.rat = ran::Rat::lte;
  cfg.num_prbs = 50;
  cfg.default_mcs = 28;
  return cfg;
}

// ---------------------------------------------------------------------------
// Relay controller (two hops with FlexRIC components)
// ---------------------------------------------------------------------------

struct RelayWorld {
  Reactor reactor;
  // Real agent with the HW SM.
  agent::E2Agent agent{reactor, {{1, 10, e2ap::NodeType::gnb}, kFmt}};
  RelayController relay{reactor,
                        {kFmt, {1, 500, e2ap::NodeType::gnb}}};
  server::E2Server top{reactor, {99, kFmt}};  // the upper controller

  RelayWorld() {
    (void)agent.register_function(std::make_shared<ran::HwFunction>(kFmt));
    auto [a_side, s_side] = LocalTransport::make_pair(reactor);
    relay.southbound().attach(s_side);
    (void)agent.add_controller(a_side);
    test::pump_until(reactor, [this] { return relay.southbound_ready(); });
    auto [n_side, t_side] = LocalTransport::make_pair(reactor);
    top.attach(t_side);
    EXPECT_TRUE(relay.connect_northbound(n_side).is_ok());
    test::pump_until(reactor,
                     [this] { return top.ran_db().num_agents() == 1; });
  }
};

TEST(Relay, MirrorsSouthboundFunctionsNorthbound) {
  RelayWorld w;
  const auto* info = w.top.ran_db().agent(1);
  ASSERT_NE(info, nullptr);
  ASSERT_EQ(info->functions.size(), 1u);
  EXPECT_EQ(info->functions[0].id, e2sm::hw::Sm::kId);
  // The northbound virtual node carries the mirrored entity's identity.
  EXPECT_EQ(info->node.nb_id, 10u);
  EXPECT_EQ(w.relay.num_entities(), 1u);
}

TEST(Relay, Fig14bCuDuExposedAsOneMonolithicNode) {
  // Topology abstraction (paper Fig. 14b): a CU + DU pair southbound is
  // presented northbound as ONE monolithic base station whose function set
  // is the union of both parts'.
  Reactor reactor;
  ran::BaseStation bs({ran::Rat::nr, 1, 106, kMilli, 20, false});
  agent::E2Agent cu(reactor, {{9, 321, e2ap::NodeType::cu}, kFmt});
  (void)cu.register_function(std::make_shared<ran::PdcpStatsFunction>(bs, kFmt));
  agent::E2Agent du(reactor, {{9, 321, e2ap::NodeType::du}, kFmt});
  (void)du.register_function(std::make_shared<ran::MacStatsFunction>(bs, kFmt));

  RelayController relay(reactor, {kFmt, {9, 999, e2ap::NodeType::gnb}});
  auto [c0, s0] = LocalTransport::make_pair(reactor);
  relay.southbound().attach(s0);
  (void)cu.add_controller(c0);
  auto [d0, s1] = LocalTransport::make_pair(reactor);
  relay.southbound().attach(s1);
  (void)du.add_controller(d0);
  pump_until(reactor, [&] {
    return relay.southbound().ran_db().num_agents() == 2;
  });
  EXPECT_EQ(relay.num_entities(), 1u);  // one virtual node, not two

  server::E2Server top(reactor, {99, kFmt});
  auto [n0, t0] = LocalTransport::make_pair(reactor);
  top.attach(t0);
  ASSERT_TRUE(relay.connect_northbound_entity(9, 321, n0).is_ok());
  pump_until(reactor, [&] { return top.ran_db().num_agents() == 1; });

  const auto* info = top.ran_db().agent(1);
  ASSERT_NE(info, nullptr);
  EXPECT_EQ(info->node.nb_id, 321u);
  EXPECT_EQ(info->node.type, e2ap::NodeType::gnb);  // monolithic view
  std::set<std::uint16_t> fns;
  for (const auto& f : info->functions) fns.insert(f.id);
  // Union of the CU's and the DU's function sets on one node.
  EXPECT_TRUE(fns.count(e2sm::pdcp::Sm::kId));
  EXPECT_TRUE(fns.count(e2sm::mac::Sm::kId));
  // Unknown entity is rejected.
  auto [nx, tx] = LocalTransport::make_pair(reactor);
  EXPECT_FALSE(relay.connect_northbound_entity(9, 322, nx).is_ok());
}

TEST(Relay, ConnectBeforeSouthboundRejected) {
  Reactor reactor;
  RelayController relay(reactor, {kFmt, {1, 500, e2ap::NodeType::gnb}});
  auto [n_side, t_side] = LocalTransport::make_pair(reactor);
  EXPECT_FALSE(relay.connect_northbound(n_side).is_ok());
}

TEST(Relay, PingTraversesTwoHops) {
  RelayWorld w;
  // Top controller: subscribe (pong path) through the relay, then ping.
  std::optional<e2sm::hw::Pong> pong;
  server::SubCallbacks cbs;
  cbs.on_indication = [&](const e2ap::Indication& ind) {
    pong = *e2sm::sm_decode<e2sm::hw::Pong>(ind.message, kFmt);
  };
  auto h = w.top.subscribe(
      1, e2sm::hw::Sm::kId,
      e2sm::sm_encode(e2sm::EventTrigger{e2sm::TriggerKind::on_event, 0},
                      kFmt),
      {{1, e2ap::ActionType::report, {}}}, cbs);
  ASSERT_TRUE(h.is_ok());
  pump(w.reactor, 10);

  e2sm::hw::Ping ping;
  ping.seq = 99;
  ping.payload = Buffer(1500, 0x3C);
  (void)w.top.send_control(1, e2sm::hw::Sm::kId, {}, e2sm::sm_encode(ping, kFmt),
                     {}, /*ack_requested=*/false);
  ASSERT_TRUE(pump_until(w.reactor, [&] { return pong.has_value(); }));
  EXPECT_EQ(pong->seq, 99u);
  EXPECT_EQ(pong->payload.size(), 1500u);
}

TEST(Relay, UnsubscribeTearsDownSouthbound) {
  RelayWorld w;
  int indications = 0;
  server::SubCallbacks cbs;
  cbs.on_indication = [&](const e2ap::Indication&) { indications++; };
  auto h = w.top.subscribe(
      1, e2sm::hw::Sm::kId,
      e2sm::sm_encode(e2sm::EventTrigger{e2sm::TriggerKind::on_event, 0},
                      kFmt),
      {{1, e2ap::ActionType::report, {}}}, cbs);
  pump(w.reactor, 10);
  ASSERT_TRUE(w.top.unsubscribe(*h).is_ok());
  pump(w.reactor, 10);
  // Ping after unsubscribe: the pong has no path (no sub at the agent).
  e2sm::hw::Ping ping;
  (void)w.top.send_control(1, e2sm::hw::Sm::kId, {}, e2sm::sm_encode(ping, kFmt),
                     {}, false);
  pump(w.reactor, 10);
  EXPECT_EQ(indications, 0);
}

// ---------------------------------------------------------------------------
// Virtualization math (Appendix B)
// ---------------------------------------------------------------------------

TEST(VirtMath, CapacityScaling) {
  TenantConfig tenant{"opA", 1, 0.5, 10};
  e2sm::slice::SliceConf virt_conf;
  virt_conf.id = 3;
  virt_conf.label = "gold";
  virt_conf.nvs.kind = e2sm::slice::NvsKind::capacity;
  virt_conf.nvs.capacity_share = 0.66;
  auto phys = VirtController::virtualize_conf(virt_conf, tenant);
  EXPECT_EQ(phys.id, 13u);
  EXPECT_DOUBLE_EQ(phys.nvs.capacity_share, 0.33);
}

TEST(VirtMath, RateScalingMatchesAppendixExample) {
  // Appendix B: "a base station with 100 Mbps shared equally by two
  // operators. If one operator creates a 5 Mbps slice over reference
  // 50 Mbps (10% resources), it is mapped into a 5 Mbps slice with
  // reference rate 100 Mbps (a 5% share, corresponding to the SLA)."
  TenantConfig tenant{"opA", 1, 0.5, 10};
  e2sm::slice::SliceConf virt_conf;
  virt_conf.id = 1;
  virt_conf.nvs.kind = e2sm::slice::NvsKind::rate;
  virt_conf.nvs.rate_mbps = 5.0;
  virt_conf.nvs.ref_rate_mbps = 50.0;
  auto phys = VirtController::virtualize_conf(virt_conf, tenant);
  EXPECT_DOUBLE_EQ(phys.nvs.rate_mbps, 5.0);
  EXPECT_DOUBLE_EQ(phys.nvs.ref_rate_mbps, 100.0);
  // Physical share = 5/100 = 5% = 10% x SLA(50%).
}

TEST(VirtMath, VirtualLoadAggregation) {
  e2sm::slice::SliceConf cap;
  cap.nvs.kind = e2sm::slice::NvsKind::capacity;
  cap.nvs.capacity_share = 0.6;
  e2sm::slice::SliceConf rate;
  rate.nvs.kind = e2sm::slice::NvsKind::rate;
  rate.nvs.rate_mbps = 10;
  rate.nvs.ref_rate_mbps = 50;
  EXPECT_DOUBLE_EQ(VirtController::virtual_load({cap, rate}), 0.8);
}

// ---------------------------------------------------------------------------
// Virtualization controller end to end
// ---------------------------------------------------------------------------

struct VirtWorld {
  Reactor reactor;
  ran::BaseStation bs{lte50()};
  agent::E2Agent agent{reactor, {{900, 1, e2ap::NodeType::enb}, kFmt}};
  ran::BsFunctionBundle bundle{bs, agent, kFmt};
  VirtController virt{reactor,
                      {kFmt, kFmt},
                      {TenantConfig{"opA", 100, 0.5, 10},
                       TenantConfig{"opB", 200, 0.5, 20}}};
  // Tenant controllers: each a plain E2 server + slicing iApp.
  server::E2Server tenant_a{reactor, {101, kFmt}};
  server::E2Server tenant_b{reactor, {102, kFmt}};
  std::shared_ptr<SlicingIApp> slicing_a =
      std::make_shared<SlicingIApp>(SlicingIApp::Config{kFmt, 50});
  std::shared_ptr<SlicingIApp> slicing_b =
      std::make_shared<SlicingIApp>(SlicingIApp::Config{kFmt, 50});
  Nanos now = 0;

  VirtWorld() {
    tenant_a.add_iapp(slicing_a);
    tenant_b.add_iapp(slicing_b);
    // Shared BS agent -> virt controller southbound.
    auto [a_side, s_side] = LocalTransport::make_pair(reactor);
    virt.southbound().attach(s_side);
    (void)agent.add_controller(a_side);
    test::pump_until(reactor, [this] { return virt.southbound_ready(); });
    // Virtual E2 nodes -> tenant controllers.
    auto [na, ta] = LocalTransport::make_pair(reactor);
    tenant_a.attach(ta);
    EXPECT_TRUE(virt.connect_tenant(0, na).is_ok());
    auto [nb, tb] = LocalTransport::make_pair(reactor);
    tenant_b.attach(tb);
    EXPECT_TRUE(virt.connect_tenant(1, nb).is_ok());
    test::pump_until(reactor, [this] {
      return tenant_a.ran_db().num_agents() == 1 &&
             tenant_b.ran_db().num_agents() == 1;
    });
  }

  void run_ttis(int n, std::function<void(Nanos)> per_tti = nullptr) {
    for (int t = 0; t < n; ++t) {
      now += kMilli;
      if (per_tti) per_tti(now);
      bs.tick(now);
      bundle.on_tti(now);
      reactor.run_once(0);
    }
  }
};

TEST(Virt, TenantsSeeTheirVirtualNode) {
  VirtWorld w;
  const auto* a = w.tenant_a.ran_db().agents().empty()
                      ? nullptr
                      : w.tenant_a.ran_db().agent(
                            w.tenant_a.ran_db().agents().front());
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a->node.plmn, 100u);  // tenant A's virtual node, not the BS
  std::set<std::uint16_t> fns;
  for (const auto& f : a->functions) fns.insert(f.id);
  EXPECT_TRUE(fns.count(e2sm::slice::Sm::kId));
  EXPECT_TRUE(fns.count(e2sm::mac::Sm::kId));
  EXPECT_TRUE(fns.count(e2sm::rrc::Sm::kId));
}

TEST(Virt, UeAttributionByPlmn) {
  VirtWorld w;
  (void)w.bs.attach_ue({1, 100, 0, 15, 28});  // op A subscriber
  (void)w.bs.attach_ue({2, 100, 0, 15, 28});
  (void)w.bs.attach_ue({3, 200, 0, 15, 28});  // op B subscriber
  pump(w.reactor, 10);
  EXPECT_EQ(w.virt.tenant_ues(0), (std::set<std::uint16_t>{1, 2}));
  EXPECT_EQ(w.virt.tenant_ues(1), (std::set<std::uint16_t>{3}));
}

TEST(Virt, SliceConfigIsRescaledAndForwarded) {
  VirtWorld w;
  (void)w.bs.attach_ue({1, 100, 0, 15, 28});
  pump(w.reactor, 10);
  server::AgentId va = w.tenant_a.ran_db().agents().front();

  // Tenant A configures a 66% virtual slice through its own controller.
  e2sm::slice::CtrlMsg msg;
  msg.kind = e2sm::slice::CtrlKind::add_mod;
  msg.algo = e2sm::slice::Algo::nvs;
  e2sm::slice::SliceConf conf;
  conf.id = 1;
  conf.label = "gold";
  conf.nvs.capacity_share = 0.66;
  msg.slices = {conf};
  std::optional<bool> ok;
  (void)w.slicing_a->configure(va, msg, [&](const e2sm::slice::CtrlOutcome& o) {
    ok = o.success;
  });
  ASSERT_TRUE(pump_until(w.reactor, [&] { return ok.has_value(); }));
  EXPECT_TRUE(*ok);
  pump(w.reactor, 10);

  // Physically: slice id 10+1 with share 0.66 * 0.5 = 0.33.
  auto report = w.bs.mac().status_report(false);
  bool found = false;
  for (const auto& s : report.slices) {
    if (s.conf.id == 11) {
      found = true;
      EXPECT_NEAR(s.conf.nvs.capacity_share, 0.33, 1e-9);
      EXPECT_EQ(s.conf.label, "opA/gold");
    }
  }
  EXPECT_TRUE(found);
}

TEST(Virt, TenantCannotExceedVirtualAdmission) {
  VirtWorld w;
  server::AgentId va = w.tenant_a.ran_db().agents().front();
  e2sm::slice::CtrlMsg msg;
  msg.kind = e2sm::slice::CtrlKind::add_mod;
  msg.algo = e2sm::slice::Algo::nvs;
  e2sm::slice::SliceConf s1, s2;
  s1.id = 1;
  s1.nvs.capacity_share = 0.7;
  s2.id = 2;
  s2.nvs.capacity_share = 0.7;  // 1.4 > 1 virtually
  msg.slices = {s1, s2};
  std::optional<bool> ok;
  server::CtrlCallbacks unused;
  (void)w.slicing_a->configure(va, msg, [&](const e2sm::slice::CtrlOutcome& o) {
    ok = o.success;
  });
  // The virtual slice function rejects -> control failure or ack(false).
  pump(w.reactor, 20);
  if (ok.has_value()) EXPECT_FALSE(*ok);
  // Nothing leaked into the physical scheduler.
  auto report = w.bs.mac().status_report(false);
  EXPECT_EQ(report.slices.size(), 1u);  // default only
}

TEST(Virt, TenantCannotTouchForeignUes) {
  VirtWorld w;
  (void)w.bs.attach_ue({3, 200, 0, 15, 28});  // op B's UE
  pump(w.reactor, 10);
  server::AgentId va = w.tenant_a.ran_db().agents().front();
  // Tenant A first creates a slice, then tries to grab op B's UE.
  e2sm::slice::CtrlMsg add;
  add.kind = e2sm::slice::CtrlKind::add_mod;
  add.algo = e2sm::slice::Algo::nvs;
  e2sm::slice::SliceConf conf;
  conf.id = 1;
  conf.nvs.capacity_share = 0.5;
  add.slices = {conf};
  (void)w.slicing_a->configure(va, add);
  pump(w.reactor, 10);

  e2sm::slice::CtrlMsg assoc;
  assoc.kind = e2sm::slice::CtrlKind::assoc_ue;
  assoc.assoc = {{3, 1}};
  std::optional<bool> ok;
  (void)w.slicing_a->configure(va, assoc, [&](const e2sm::slice::CtrlOutcome& o) {
    ok = o.success;
  });
  pump(w.reactor, 20);
  ASSERT_TRUE(ok.has_value());
  EXPECT_FALSE(*ok);
  EXPECT_EQ(w.bs.mac().slice_of(3), 0u);  // untouched
}

TEST(Virt, MacStatsPartitionedPerTenant) {
  VirtWorld w;
  (void)w.bs.attach_ue({1, 100, 0, 15, 28});
  (void)w.bs.attach_ue({3, 200, 0, 15, 28});
  pump(w.reactor, 10);

  std::optional<e2sm::mac::IndicationMsg> view_a, view_b;
  auto subscribe = [&](server::E2Server& tenant, auto& out) {
    server::SubCallbacks cbs;
    cbs.on_indication = [&out](const e2ap::Indication& ind) {
      out = *e2sm::sm_decode<e2sm::mac::IndicationMsg>(ind.message, kFmt);
    };
    (void)tenant.subscribe(
        tenant.ran_db().agents().front(), e2sm::mac::Sm::kId,
        e2sm::sm_encode(e2sm::EventTrigger{e2sm::TriggerKind::periodic, 1},
                        kFmt),
        {{1, e2ap::ActionType::report, {}}}, cbs);
  };
  subscribe(w.tenant_a, view_a);
  subscribe(w.tenant_b, view_b);
  pump(w.reactor, 10);
  w.run_ttis(10);
  pump(w.reactor, 10);

  ASSERT_TRUE(view_a.has_value());
  ASSERT_TRUE(view_b.has_value());
  ASSERT_EQ(view_a->ues.size(), 1u);
  EXPECT_EQ(view_a->ues[0].rnti, 1);
  ASSERT_EQ(view_b->ues.size(), 1u);
  EXPECT_EQ(view_b->ues[0].rnti, 3);
}

TEST(Virt, IsolationAcrossTenantsUnderSaturation) {
  // Mini Fig. 15: each tenant has one UE; tenant A configures a 100 %
  // virtual slice (= 50 % physical). Both saturate: each ends up with half
  // of the 50-PRB cell.
  VirtWorld w;
  (void)w.bs.attach_ue({1, 100, 0, 15, 28});
  (void)w.bs.attach_ue({3, 200, 0, 15, 28});
  pump(w.reactor, 10);

  for (std::size_t tenant_idx : {0u, 1u}) {
    auto& tenant = tenant_idx == 0 ? w.tenant_a : w.tenant_b;
    auto& slicing = tenant_idx == 0 ? w.slicing_a : w.slicing_b;
    e2sm::slice::CtrlMsg add;
    add.kind = e2sm::slice::CtrlKind::add_mod;
    add.algo = e2sm::slice::Algo::nvs;
    e2sm::slice::SliceConf conf;
    conf.id = 1;
    conf.nvs.capacity_share = 1.0;
    add.slices = {conf};
    (void)slicing->configure(tenant.ran_db().agents().front(), add);
    pump(w.reactor, 10);
    e2sm::slice::CtrlMsg assoc;
    assoc.kind = e2sm::slice::CtrlKind::assoc_ue;
    assoc.assoc = {{static_cast<std::uint16_t>(tenant_idx == 0 ? 1 : 3), 1}};
    (void)slicing->configure(tenant.ran_db().agents().front(), assoc);
    pump(w.reactor, 10);
  }

  w.run_ttis(3000, [&](Nanos) {
    for (int k = 0; k < 4; ++k) {
      ran::Packet p;
      p.size_bytes = 1400;
      w.bs.deliver_downlink(1, 1, p);
      ran::Packet q;
      q.size_bytes = 1400;
      w.bs.deliver_downlink(3, 1, q);
    }
  });
  double t1 = w.bs.ue_throughput_mbps(1, w.now, false);
  double t3 = w.bs.ue_throughput_mbps(3, w.now, false);
  EXPECT_NEAR(t1 / (t1 + t3), 0.5, 0.05);  // SLA split holds
  EXPECT_GT(t1 + t3, 0.85 * ran::cell_capacity_mbps(w.bs.config()));
}

}  // namespace
}  // namespace flexric::ctrl
