// Deterministic indication-storm harness for end-to-end overload protection
// (DESIGN.md §11): token-bucket admission, two-class prioritized ingest,
// pluggable load shedding, flood-quarantine escalation, control deadline
// budgets and agent-side bounded indication buffers with shed reporting.
//
// Everything runs on one Reactor driven by a VirtualClock, so a storm is a
// scripted schedule: the same seed sheds the exact same messages. The core
// contract checked everywhere is EXACT ACCOUNTING — every indication emitted
// by a RAN function is either delivered to an iApp or counted in a shed
// counter somewhere; nothing vanishes silently. Seeded soaks run each seed
// twice and require bit-identical traces; override the seed set with
// FLEXRIC_STORM_SEEDS="1,2,3" (ci.sh --overload uses this for long soaks).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "agent/agent.hpp"
#include "common/clock.hpp"
#include "common/overload.hpp"
#include "e2ap/codec.hpp"
#include "helpers.hpp"
#include "shard_world.hpp"
#include "server/server.hpp"
#include "telemetry/store.hpp"
#include "transport/faulty.hpp"
#include "transport/resilience.hpp"

namespace flexric {
namespace {

using overload::BoundedQueue;
using overload::MsgClass;
using overload::PriorityQueue;
using overload::RateLimiter;
using overload::ShedPolicy;

// ---------------------------------------------------------------------------
// RateLimiter
// ---------------------------------------------------------------------------

TEST(RateLimiter, DefaultConstructedIsUnlimited) {
  RateLimiter rl;
  EXPECT_TRUE(rl.unlimited());
  for (int i = 0; i < 1000; ++i) EXPECT_TRUE(rl.admit(0));
}

TEST(RateLimiter, FirstAdmitPrimesFullBurstThenRefillsAtRate) {
  RateLimiter rl(10.0, 2.0);  // 10 tokens/s, bucket depth 2
  EXPECT_TRUE(rl.admit(0));
  EXPECT_TRUE(rl.admit(0));
  EXPECT_FALSE(rl.admit(0)) << "burst exhausted at t=0";
  // 100 ms at 10/s accrues exactly one token.
  EXPECT_TRUE(rl.admit(100 * kMilli));
  EXPECT_FALSE(rl.admit(100 * kMilli));
  // Refill clamps at the burst: a long silence buys 2 tokens, not 20.
  EXPECT_NEAR(rl.tokens(10 * kSecond), 2.0, 1e-9);
  EXPECT_TRUE(rl.admit(10 * kSecond));
  EXPECT_TRUE(rl.admit(10 * kSecond));
  EXPECT_FALSE(rl.admit(10 * kSecond));
}

TEST(RateLimiter, BurstZeroDefaultsToOneSecondsWorth) {
  RateLimiter rl(5.0, 0.0);
  int admitted = 0;
  for (int i = 0; i < 20; ++i)
    if (rl.admit(0)) admitted++;
  EXPECT_EQ(admitted, 5);
}

TEST(RateLimiter, SameScheduleIsBitDeterministic) {
  RateLimiter a(100.0, 10.0), b(100.0, 10.0);
  for (Nanos t = 0; t < kSecond; t += 3 * kMilli)
    EXPECT_EQ(a.admit(t), b.admit(t)) << "diverged at t=" << t;
}

// ---------------------------------------------------------------------------
// BoundedQueue shed policies + exact accounting
// ---------------------------------------------------------------------------

TEST(BoundedQueueTest, DropNewestRejectsTheArrival) {
  BoundedQueue<int> q(2, ShedPolicy::drop_newest);
  EXPECT_TRUE(q.push(1, 10));
  EXPECT_TRUE(q.push(1, 11));
  EXPECT_FALSE(q.push(1, 12));  // full: newcomer is shed
  EXPECT_EQ(q.stats().offered.value, 3u);
  EXPECT_EQ(q.stats().admitted.value, 2u);
  EXPECT_EQ(q.stats().shed_newest.value, 1u);
  EXPECT_TRUE(q.reconciles());
  EXPECT_EQ(q.pop()->value, 10);  // FIFO preserved
  EXPECT_EQ(q.pop()->value, 11);
  EXPECT_TRUE(q.reconciles());
}

TEST(BoundedQueueTest, DropOldestEvictsTheHead) {
  BoundedQueue<int> q(2, ShedPolicy::drop_oldest);
  EXPECT_TRUE(q.push(1, 10));
  EXPECT_TRUE(q.push(1, 11));
  EXPECT_TRUE(q.push(1, 12));  // admitted by evicting 10
  EXPECT_EQ(q.stats().shed_oldest.value, 1u);
  EXPECT_TRUE(q.reconciles());
  EXPECT_EQ(q.pop()->value, 11);
  EXPECT_EQ(q.pop()->value, 12);
}

TEST(BoundedQueueTest, FairShedsHeaviestOriginFirst) {
  BoundedQueue<int> q(4, ShedPolicy::fair_per_agent);
  // Origin 7 hogs 3 of 4 slots; origin 3 holds 1.
  EXPECT_TRUE(q.push(7, 70));
  EXPECT_TRUE(q.push(7, 71));
  EXPECT_TRUE(q.push(7, 72));
  EXPECT_TRUE(q.push(3, 30));
  // A newcomer from the light origin evicts the heavy origin's oldest.
  EXPECT_TRUE(q.push(3, 31));
  EXPECT_EQ(q.depth(7), 2u);
  EXPECT_EQ(q.depth(3), 2u);
  EXPECT_EQ(q.stats().shed_oldest.value, 1u);
  EXPECT_EQ(q.pop()->value, 71) << "70 (oldest of origin 7) must be the shed one";
  EXPECT_TRUE(q.reconciles());
}

TEST(BoundedQueueTest, FairTieBreaksOnLowestOriginId) {
  BoundedQueue<int> q(4, ShedPolicy::fair_per_agent);
  EXPECT_TRUE(q.push(5, 50));
  EXPECT_TRUE(q.push(9, 90));
  EXPECT_TRUE(q.push(5, 51));
  EXPECT_TRUE(q.push(9, 91));
  // Origins 5 and 9 tie at depth 2; the lowest id sheds (deterministic).
  EXPECT_TRUE(q.push(1, 10));
  EXPECT_EQ(q.depth(5), 1u);
  EXPECT_EQ(q.depth(9), 2u);
  EXPECT_EQ(q.depth(1), 1u);
  EXPECT_EQ(q.pop()->value, 90) << "50 (oldest of origin 5) must be gone";
}

TEST(BoundedQueueTest, FairFloodedOriginDegradesToSelfDropOldest) {
  BoundedQueue<int> q(3, ShedPolicy::fair_per_agent);
  EXPECT_TRUE(q.push(8, 1));
  EXPECT_TRUE(q.push(8, 2));
  EXPECT_TRUE(q.push(8, 3));
  EXPECT_TRUE(q.push(8, 4));  // its own oldest makes room
  EXPECT_EQ(q.size(), 3u);
  EXPECT_EQ(q.pop()->value, 2);
  EXPECT_TRUE(q.reconciles());
}

TEST(BoundedQueueTest, DefaultCapacityZeroShedsEverything) {
  BoundedQueue<int> q;  // owners configure() later; until then: all shed
  EXPECT_FALSE(q.push(1, 42));
  EXPECT_EQ(q.stats().shed_newest.value, 1u);
  EXPECT_TRUE(q.reconciles());
  q.configure(1, ShedPolicy::drop_newest);
  EXPECT_TRUE(q.push(1, 43));
}

TEST(PriorityQueueTest, ControlDrainsStrictlyBeforeData) {
  PriorityQueue<int> q(PriorityQueue<int>::Config{2, 2,
                                                  ShedPolicy::drop_newest});
  EXPECT_TRUE(q.push(MsgClass::data, 1, 100));
  EXPECT_TRUE(q.push(MsgClass::control, 1, 200));
  EXPECT_TRUE(q.push(MsgClass::data, 1, 101));
  EXPECT_TRUE(q.push(MsgClass::control, 1, 201));
  std::vector<int> order;
  while (auto p = q.pop()) order.push_back(p->value);
  EXPECT_EQ(order, (std::vector<int>{200, 201, 100, 101}));
  EXPECT_TRUE(q.reconciles());
  EXPECT_EQ(q.shed(), 0u);
}

TEST(PriorityQueueTest, ClassCapacitiesAreIndependent) {
  PriorityQueue<int> q(PriorityQueue<int>::Config{1, 2,
                                                  ShedPolicy::drop_newest});
  EXPECT_TRUE(q.push(MsgClass::control, 1, 1));
  EXPECT_FALSE(q.push(MsgClass::control, 1, 2));  // control lane full
  EXPECT_TRUE(q.push(MsgClass::data, 1, 3));      // data lane unaffected
  EXPECT_TRUE(q.push(MsgClass::data, 1, 4));
  EXPECT_EQ(q.shed(), 1u);
  EXPECT_TRUE(q.reconciles());
}

// ---------------------------------------------------------------------------
// Codec peek_type: O(1) classification must agree with the full decode
// ---------------------------------------------------------------------------

TEST(PeekType, MatchesFullDecodeOnBothCodecs) {
  e2ap::Indication ind;
  ind.request = {7, 9};
  ind.ran_function_id = 200;
  ind.message = {0xAA, 0xBB};
  e2ap::SetupRequest setup;
  setup.node = {1, 10, e2ap::NodeType::gnb};
  e2ap::ControlAck ack;
  ack.request = {7, 9};
  for (WireFormat f : {WireFormat::flat, WireFormat::per}) {
    const e2ap::Codec& c = e2ap::codec_for(f);
    for (const e2ap::Msg& m :
         {e2ap::Msg{ind}, e2ap::Msg{setup}, e2ap::Msg{ack}}) {
      auto wire = c.encode(m);
      ASSERT_TRUE(wire.is_ok());
      auto peeked = c.peek_type(BytesView(*wire));
      ASSERT_TRUE(peeked.is_ok());
      auto decoded = c.decode(BytesView(*wire));
      ASSERT_TRUE(decoded.is_ok());
      std::visit([&](const auto& d) { EXPECT_EQ(*peeked, d.kType); },
                 *decoded);
    }
    EXPECT_FALSE(c.peek_type(BytesView{}).is_ok());
    Buffer junk{0xFF, 0xFF, 0xFF, 0xFF};
    EXPECT_FALSE(c.peek_type(BytesView(junk)).is_ok())
        << "tag 0xFF is outside the MsgType range";
  }
}

// ---------------------------------------------------------------------------
// Storm harness: agents + server on a VirtualClock reactor
// ---------------------------------------------------------------------------

/// Advance virtual time in small steps, pumping the reactor after each so
/// timers interleave with deliveries the way real time would.
void advance(Reactor& reactor, VirtualClock& clock, Nanos dt,
             Nanos step = kMilli) {
  while (dt > 0) {
    Nanos d = dt < step ? dt : step;
    clock.advance(d);
    dt -= d;
    for (int i = 0; i < 8; ++i)
      if (reactor.run_once(0) == 0) break;
  }
}

class StormStub final : public agent::RanFunction {
 public:
  explicit StormStub(std::uint16_t id) {
    desc_.id = id;
    desc_.revision = 1;
    desc_.name = "STORM-STUB";
  }
  [[nodiscard]] const e2ap::RanFunctionItem& descriptor() const override {
    return desc_;
  }
  Result<agent::SubscriptionOutcome> on_subscription(
      const e2ap::SubscriptionRequest& req, agent::ControllerId) override {
    last_sub = req;
    agent::SubscriptionOutcome out;
    for (const auto& a : req.actions) out.admitted.push_back(a.id);
    return out;
  }
  Status on_subscription_delete(const e2ap::SubscriptionDeleteRequest&,
                                agent::ControllerId) override {
    return Status::ok();
  }
  Result<Buffer> on_control(const e2ap::ControlRequest& req,
                            agent::ControllerId) override {
    controls++;
    return req.message;
  }
  void emit(agent::ControllerId origin) {
    e2ap::Indication ind;
    ind.request = last_sub.request;
    ind.ran_function_id = desc_.id;
    ind.action_id = 1;
    ind.sn = emitted;
    ind.message = {0xAB};
    emitted++;
    (void)services_->send_indication(origin, ind);
  }

  std::uint32_t emitted = 0;
  int controls = 0;
  e2ap::SubscriptionRequest last_sub;

 private:
  e2ap::RanFunctionItem desc_;
};

struct EventLogIApp final : server::IApp {
  const char* name() const override { return "event-log"; }
  void on_agent_quarantined(server::AgentId id) override {
    log.push_back("quarantine:" + std::to_string(id));
  }
  void on_agent_reconnected(const server::AgentInfo& info) override {
    log.push_back("recover:" + std::to_string(info.id));
  }
  void on_agent_disconnected(server::AgentId id) override {
    log.push_back("disconnect:" + std::to_string(id));
  }
  std::vector<std::string> log;
};

/// N agents + one overload-protected server on a VirtualClock reactor; each
/// agent dials through a clean FaultyTransport so tests can inject partitions
/// and deterministic TX backpressure (credits).
struct StormWorld {
  explicit StormWorld(const server::OverloadConfig& ov) {
    reactor.set_time_source(&clock);
    server::E2Server::Config cfg;
    cfg.ric_id = 21;
    cfg.e2ap_format = WireFormat::flat;
    cfg.overload = ov;
    server = std::make_unique<server::E2Server>(reactor, cfg);
    events = std::make_shared<EventLogIApp>();
    server->add_iapp(events);
  }

  struct Node {
    std::unique_ptr<agent::E2Agent> agent;
    std::shared_ptr<StormStub> fn;
    std::shared_ptr<FaultyTransport> link;
    agent::ControllerId ctrl = 0;
    server::AgentId id = 0;     ///< server-side AgentId
    int indications = 0;        ///< delivered to the subscribing iApp
    std::vector<std::uint32_t> sns;  ///< delivery order, by Indication.sn
  };

  /// Connect one agent (heartbeating, resilient dial through FaultyTransport)
  /// and wait until the E2 Setup completes.
  Node& add_agent(std::uint32_t nb_id, agent::OverloadConfig aov = {}) {
    auto n = std::make_unique<Node>();
    Node* np = n.get();
    n->fn = std::make_shared<StormStub>(200);
    agent::E2Agent::Config acfg{{1, nb_id, e2ap::NodeType::gnb},
                                WireFormat::flat, aov};
    n->agent = std::make_unique<agent::E2Agent>(reactor, acfg);
    EXPECT_TRUE(n->agent->register_function(n->fn).is_ok());
    ResilienceConfig rc;
    rc.heartbeat_period = 200 * kMilli;
    rc.heartbeat_miss_threshold = 100;  // storms must not flap the link
    rc.backoff_base = 50 * kMilli;
    rc.seed = 1 + nb_id * 7919;
    auto cid = n->agent->add_controller(
        [this, np]() -> Result<std::shared_ptr<MsgTransport>> {
          auto [a_side, s_side] = LocalTransport::make_pair(reactor);
          auto faulty =
              std::make_shared<FaultyTransport>(reactor, a_side,
                                                FaultProfile{});
          np->link = faulty;
          server->attach(s_side);
          return std::static_pointer_cast<MsgTransport>(faulty);
        },
        rc);
    EXPECT_TRUE(cid.is_ok());
    n->ctrl = *cid;
    for (Nanos t = 0;
         t < 5 * kSecond &&
         n->agent->state(n->ctrl) != agent::ConnState::established;
         t += 10 * kMilli)
      advance(reactor, clock, 10 * kMilli);
    EXPECT_EQ(n->agent->state(n->ctrl), agent::ConnState::established);
    // The new server-side id is the one no earlier node claimed.
    for (server::AgentId id : server->ran_db().agents()) {
      bool taken = false;
      for (const auto& other : nodes)
        if (other->id == id) taken = true;
      if (!taken) n->id = id;
    }
    EXPECT_NE(n->id, 0u);
    nodes.push_back(std::move(n));
    return *nodes.back();
  }

  /// Subscribe the harness to a node's RAN function; deliveries land in
  /// node.indications / node.sns.
  void subscribe(Node& n) {
    server::SubCallbacks cbs;
    cbs.on_response = [](const e2ap::SubscriptionResponse&) {};
    cbs.on_indication = [&n](const e2ap::Indication& ind) {
      n.indications++;
      n.sns.push_back(ind.sn);
    };
    auto h = server->subscribe(n.id, 200, Buffer{0x01},
                               {{1, e2ap::ActionType::report, {}}},
                               std::move(cbs));
    ASSERT_TRUE(h.is_ok());
    advance(reactor, clock, 10 * kMilli);
    ASSERT_EQ(n.fn->last_sub.actions.size(), 1u)
        << "subscription never reached the agent";
  }

  /// Fire one control transaction at `n`; latency (virtual ns) is recorded
  /// on ack, failures are counted.
  void send_ctrl(Node& n) {
    const Nanos t0 = reactor.now();
    server::CtrlCallbacks cbs;
    cbs.on_ack = [this, t0](const e2ap::ControlAck&) {
      ctrl_latencies.push_back(reactor.now() - t0);
    };
    cbs.on_failure = [this](const e2ap::ControlFailure&) { ctrl_failures++; };
    EXPECT_TRUE(server
                    ->send_control(n.id, 200, Buffer{0x01}, Buffer{0x02},
                                   std::move(cbs))
                    .is_ok());
  }

  [[nodiscard]] Nanos ctrl_p99() const {
    if (ctrl_latencies.empty()) return 0;
    std::vector<Nanos> s = ctrl_latencies;
    std::sort(s.begin(), s.end());
    return s[(s.size() - 1) * 99 / 100];
  }

  VirtualClock clock;
  Reactor reactor;
  std::unique_ptr<server::E2Server> server;
  std::shared_ptr<EventLogIApp> events;
  std::vector<std::unique_ptr<Node>> nodes;
  std::vector<Nanos> ctrl_latencies;
  int ctrl_failures = 0;
};

/// The ledger that makes drops "visible": every message the server ever saw
/// is dispatched, shed with a counted reason, or still queued.
void expect_server_reconciles(StormWorld& w) {
  const auto& st = w.server->stats();
  EXPECT_EQ(st.msgs_rx, st.dispatched + st.rate_shed + st.flood_shed +
                            st.queue_shed + w.server->ingest_queued());
  EXPECT_TRUE(w.server->ingest_queue().reconciles());
}

/// Agent-side ledger: everything a RAN function emitted is on the wire,
/// counted shed, or still buffered.
void expect_agent_reconciles(const StormWorld::Node& n) {
  const auto& st = n.agent->stats();
  const auto* pending = n.agent->pending_indications(n.ctrl);
  ASSERT_NE(pending, nullptr);
  EXPECT_TRUE(pending->reconciles());
  EXPECT_EQ(n.fn->emitted,
            st.indications_tx + st.indications_shed + pending->size());
}

server::OverloadConfig storm_defaults() {
  server::OverloadConfig ov;
  ov.enabled = true;
  ov.control_queue = 256;
  ov.data_queue = 1024;
  ov.shed_policy = ShedPolicy::fair_per_agent;
  ov.dispatch_batch = 64;
  ov.data_rate = 2000.0;  // per agent: 2 indications per virtual ms
  ov.data_burst = 100.0;
  ov.ctrl_deadline = 100 * kMilli;
  return ov;
}

// ---------------------------------------------------------------------------
// Graceful degradation under a 64x storm
// ---------------------------------------------------------------------------

TEST(Storm, ControlStaysTimelyWhileFlooderIsShedExactly) {
  StormWorld w(storm_defaults());
  auto& flooder = w.add_agent(10);
  auto& victim = w.add_agent(11);
  w.subscribe(flooder);
  w.subscribe(victim);

  // 300 virtual ms: the flooder emits at 64x the victim's line rate (64/ms
  // vs 1/ms) while a control txn targets the victim every 10 ms.
  for (int ms = 0; ms < 300; ++ms) {
    for (int k = 0; k < 64; ++k) flooder.fn->emit(flooder.ctrl);
    victim.fn->emit(victim.ctrl);
    if (ms % 10 == 0) w.send_ctrl(victim);
    advance(w.reactor, w.clock, kMilli);
  }
  advance(w.reactor, w.clock, 300 * kMilli);  // settle: queues drain

  const auto& st = w.server->stats();
  // The storm really was over admission capacity, and really was shed.
  EXPECT_GT(st.rate_shed, 10000u);
  // Control transactions all completed, fast, despite the storm.
  EXPECT_EQ(w.ctrl_failures, 0);
  EXPECT_EQ(st.ctrls_deadline_expired, 0u);
  ASSERT_EQ(w.ctrl_latencies.size(), 30u);
  EXPECT_LE(w.ctrl_p99(), 20 * kMilli);
  // The victim's line-rate traffic was untouched: every indication arrived,
  // in order.
  EXPECT_EQ(victim.indications, static_cast<int>(victim.fn->emitted));
  EXPECT_TRUE(std::is_sorted(victim.sns.begin(), victim.sns.end()));
  // Exact accounting at every layer.
  expect_server_reconciles(w);
  expect_agent_reconciles(flooder);
  expect_agent_reconciles(victim);
  // Wire-level ledger for the DATA lane: indications put on the wire by the
  // agents == rate-shed + flood-shed + offered to the data queue; delivered
  // data frames == indications dispatched to iApps.
  const auto& dq = w.server->ingest_queue().queue(MsgClass::data).stats();
  const std::uint64_t on_wire = flooder.agent->stats().indications_tx +
                                victim.agent->stats().indications_tx;
  EXPECT_EQ(on_wire, st.rate_shed + st.flood_shed + dq.offered.value);
  EXPECT_EQ(dq.delivered.value, st.indications_rx);
  EXPECT_EQ(st.indications_rx,
            static_cast<std::uint64_t>(flooder.indications +
                                       victim.indications));
}

TEST(Storm, DisabledOverloadKeepsInlineDispatchBehavior) {
  server::OverloadConfig off;  // enabled = false
  StormWorld w(off);
  auto& n = w.add_agent(12);
  w.subscribe(n);
  for (int i = 0; i < 50; ++i) n.fn->emit(n.ctrl);
  advance(w.reactor, w.clock, 20 * kMilli);
  EXPECT_EQ(n.indications, 50);
  const auto& st = w.server->stats();
  EXPECT_EQ(st.rate_shed + st.flood_shed + st.queue_shed, 0u);
  EXPECT_EQ(st.msgs_rx, st.dispatched);  // everything dispatched inline
  EXPECT_EQ(w.server->ingest_queued(), 0u);
}

// ---------------------------------------------------------------------------
// Flood escalation ladder: throttle -> quarantine -> cooldown -> recovery
// ---------------------------------------------------------------------------

TEST(Storm, FloodQuarantineTriggersAndRecoversDeterministically) {
  server::OverloadConfig ov = storm_defaults();
  ov.data_rate = 1000.0;
  ov.data_burst = 10.0;
  ov.flood_threshold = 50;
  ov.flood_window = kSecond;
  ov.flood_cooldown = 2 * kSecond;
  StormWorld w(ov);
  auto& n = w.add_agent(13);
  w.subscribe(n);

  // 20/ms against a 1/ms admission rate: the window fills in a few ms.
  for (int ms = 0; ms < 20; ++ms) {
    for (int k = 0; k < 20; ++k) n.fn->emit(n.ctrl);
    advance(w.reactor, w.clock, kMilli);
  }
  const auto& st = w.server->stats();
  EXPECT_EQ(st.flood_quarantines, 1u);
  EXPECT_GT(st.flood_shed, 0u) << "quarantined DATA must drop at the door";
  ASSERT_FALSE(w.events->log.empty());
  EXPECT_EQ(w.events->log.front(), "quarantine:" + std::to_string(n.id));

  // CONTROL still passes while quarantined: the session stays alive.
  w.send_ctrl(n);
  advance(w.reactor, w.clock, 20 * kMilli);
  EXPECT_EQ(w.ctrl_failures, 0);
  EXPECT_EQ(w.ctrl_latencies.size(), 1u);

  // Cooldown elapses; the next frame (a heartbeat or an indication) lifts
  // the quarantine and DATA flows again.
  const int delivered_before = n.indications;
  advance(w.reactor, w.clock, ov.flood_cooldown + 100 * kMilli);
  n.fn->emit(n.ctrl);
  advance(w.reactor, w.clock, 20 * kMilli);
  EXPECT_EQ(st.flood_recoveries, 1u);
  EXPECT_EQ(w.events->log.back(), "recover:" + std::to_string(n.id));
  EXPECT_GT(n.indications, delivered_before)
      << "post-recovery indications must deliver again";
  expect_server_reconciles(w);
}

// ---------------------------------------------------------------------------
// Control deadline budgets
// ---------------------------------------------------------------------------

TEST(Storm, ControlDeadlineFailsFastThroughPartition) {
  StormWorld w(storm_defaults());  // ctrl_deadline = 100 ms
  auto& n = w.add_agent(14);
  w.subscribe(n);

  n.link->set_partitioned(true);  // the request can never be answered
  bool failed = false;
  e2ap::Cause cause;
  server::CtrlCallbacks cbs;
  cbs.on_ack = [](const e2ap::ControlAck&) {
    FAIL() << "ack through a partitioned link";
  };
  cbs.on_failure = [&](const e2ap::ControlFailure& f) {
    failed = true;
    cause = f.cause;
  };
  ASSERT_TRUE(w.server
                  ->send_control(n.id, 200, Buffer{0x01}, Buffer{0x02},
                                 std::move(cbs))
                  .is_ok());
  ASSERT_EQ(w.server->num_inflight_controls(), 1u);

  advance(w.reactor, w.clock, 50 * kMilli);
  EXPECT_FALSE(failed) << "deadline must not fire early";
  advance(w.reactor, w.clock, 60 * kMilli);
  EXPECT_TRUE(failed);
  EXPECT_EQ(cause.group, e2ap::Cause::Group::transport);
  EXPECT_EQ(w.server->num_inflight_controls(), 0u);
  EXPECT_EQ(w.server->stats().ctrls_deadline_expired, 1u);

  // Heal; later transactions complete and cancel their deadline timers.
  n.link->set_partitioned(false);
  w.send_ctrl(n);
  advance(w.reactor, w.clock, 200 * kMilli);
  EXPECT_EQ(w.ctrl_latencies.size(), 1u);
  EXPECT_EQ(w.server->stats().ctrls_deadline_expired, 1u) << "no spurious expiry";
}

// ---------------------------------------------------------------------------
// Agent-side bounded indication buffer under TX backpressure
// ---------------------------------------------------------------------------

TEST(Storm, AgentBuffersUnderBackpressureThenFlushesInOrder) {
  agent::OverloadConfig aov;
  aov.indication_queue = 8;
  aov.shed_policy = ShedPolicy::drop_oldest;
  aov.flush_period = 10 * kMilli;
  StormWorld w(storm_defaults());
  auto& n = w.add_agent(15, aov);
  w.subscribe(n);
  advance(w.reactor, w.clock, 10 * kMilli);

  // Slow consumer: the TX buffer accepts nothing more.
  n.link->set_tx_credit(0);
  for (int i = 0; i < 5; ++i) n.fn->emit(n.ctrl);
  const auto* pending = n.agent->pending_indications(n.ctrl);
  ASSERT_NE(pending, nullptr);
  EXPECT_EQ(pending->size(), 5u);
  EXPECT_EQ(n.agent->stats().indications_queued, 5u);
  EXPECT_EQ(n.indications, 0);

  // Push past the buffer cap: the oldest are shed, visibly.
  for (int i = 0; i < 6; ++i) n.fn->emit(n.ctrl);
  EXPECT_EQ(pending->size(), 8u);
  EXPECT_EQ(n.agent->stats().indications_shed, 3u);
  expect_agent_reconciles(n);

  // The consumer catches up: the flush timer drains the buffer in FIFO
  // order and nothing more is lost.
  n.link->add_tx_credit(1000);
  n.link->set_tx_credit(1000);
  advance(w.reactor, w.clock, 100 * kMilli);
  EXPECT_EQ(pending->size(), 0u);
  EXPECT_EQ(n.agent->stats().indications_flushed, 8u);
  EXPECT_EQ(n.indications, 8);
  EXPECT_TRUE(std::is_sorted(n.sns.begin(), n.sns.end()));
  // The three shed ones are exactly the oldest: sn 0,1,2 never arrive.
  ASSERT_EQ(n.sns.size(), 8u);
  EXPECT_EQ(n.sns.front(), 3u);
  expect_agent_reconciles(n);
}

TEST(Storm, AgentReportsShedsOnHeartbeatAndServerCountsThem) {
  agent::OverloadConfig aov;
  aov.indication_queue = 4;
  aov.shed_policy = ShedPolicy::drop_oldest;
  aov.flush_period = 10 * kMilli;
  StormWorld w(storm_defaults());
  auto& n = w.add_agent(16, aov);
  w.subscribe(n);
  advance(w.reactor, w.clock, 10 * kMilli);

  n.link->set_tx_credit(0);
  for (int i = 0; i < 10; ++i) n.fn->emit(n.ctrl);  // 4 buffered, 6 shed
  EXPECT_EQ(n.agent->stats().indications_shed, 6u);
  EXPECT_EQ(w.server->stats().agent_reported_sheds, 0u);

  // Link drains; the next heartbeat flushes and reports the shed delta.
  n.link->set_tx_credit(-1);
  advance(w.reactor, w.clock, 400 * kMilli);
  EXPECT_EQ(w.server->stats().agent_reported_sheds, 6u)
      << "shed report must carry the exact delta";
  EXPECT_GE(n.agent->stats().shed_reports_tx, 1u);
  EXPECT_EQ(n.indications, 4);

  // More sheds report incrementally, never double-counted.
  n.link->set_tx_credit(0);
  for (int i = 0; i < 7; ++i) n.fn->emit(n.ctrl);  // 4 buffered, 3 shed
  n.link->set_tx_credit(-1);
  advance(w.reactor, w.clock, 400 * kMilli);
  EXPECT_EQ(w.server->stats().agent_reported_sheds, 9u);
  expect_agent_reconciles(n);
}

// ---------------------------------------------------------------------------
// Storm telemetry: shed counters land in the bounded TelemetryStore
// ---------------------------------------------------------------------------

telemetry::StoreConfig tiny_store(std::size_t n_series, bool evict) {
  telemetry::StoreConfig cfg;
  cfg.layout.raw_capacity = 32;
  cfg.layout.tier1_capacity = 8;
  cfg.layout.tier2_capacity = 8;
  cfg.evict_on_budget = evict;
  cfg.memory_budget = sizeof(telemetry::TelemetryStore) +
                      n_series * (cfg.layout.bytes_per_series() + 96);
  return cfg;
}

TEST(StormTelemetry, OverloadMetricsHaveStableNorthboundNames) {
  using telemetry::Metric;
  for (Metric m : {Metric::ov_ingest_shed, Metric::ov_agent_shed,
                   Metric::ov_flood_quarantines}) {
    const char* name = telemetry::metric_name(m);
    ASSERT_STRNE(name, "unknown");
    auto back = telemetry::metric_from_name(name);
    ASSERT_TRUE(back.is_ok());
    EXPECT_EQ(*back, m);
  }
}

TEST(StormTelemetry, ShedSeriesStormEvictsStaleAgentsUnderBudget) {
  telemetry::TelemetryStore store(tiny_store(3, /*evict=*/true));
  // A storm of shed reports from 30 agents against a 3-series budget: the
  // store must stay within budget by aging out stale agents, not by
  // rejecting the active ones.
  for (std::uint32_t a = 1; a <= 30; ++a) {
    auto st = store.record({a, 0, telemetry::Metric::ov_ingest_shed},
                           static_cast<Nanos>(a) * kMilli, 1.0);
    EXPECT_TRUE(st.is_ok());
    EXPECT_LE(store.memory_bytes(), store.memory_budget());
  }
  EXPECT_EQ(store.num_series(), 3u);
  EXPECT_EQ(store.evictions(), 27u);
  EXPECT_EQ(store.dropped_samples(), 0u);
}

TEST(StormTelemetry, RejectingStoreShedsNewSeriesButKeepsRecoveredAgentFlowing) {
  telemetry::TelemetryStore store(tiny_store(2, /*evict=*/false));
  const telemetry::SeriesKey quarantined{7, 0,
                                         telemetry::Metric::ov_ingest_shed};
  ASSERT_TRUE(store.record(quarantined, 0, 1.0).is_ok());
  ASSERT_TRUE(store
                  .record({8, 0, telemetry::Metric::ov_agent_shed}, 0, 1.0)
                  .is_ok());
  // Budget full: a new series is rejected with Errc::capacity...
  auto st = store.record({9, 0, telemetry::Metric::ov_ingest_shed}, 0, 1.0);
  ASSERT_FALSE(st.is_ok());
  EXPECT_EQ(st.code(), Errc::capacity);
  EXPECT_GE(store.dropped_samples(), 1u);
  // ...but the quarantined-then-recovered agent's EXISTING series keeps
  // absorbing its post-recovery burst: samples for existing series are
  // never dropped, regardless of budget pressure.
  for (int i = 1; i <= 1000; ++i)
    EXPECT_TRUE(store
                    .record(quarantined, static_cast<Nanos>(i) * kMilli,
                            static_cast<double>(i))
                    .is_ok());
  auto latest = store.latest(quarantined, 1);
  ASSERT_TRUE(latest.is_ok());
  EXPECT_EQ(latest->back().v, 1000.0);
}

TEST(StormTelemetry, StormCountersRecordedPerAgentAreQueryable) {
  server::OverloadConfig ov = storm_defaults();
  ov.flood_threshold = 50;
  ov.data_rate = 1000.0;
  ov.data_burst = 10.0;
  StormWorld w(ov);
  auto& n = w.add_agent(17);
  w.subscribe(n);
  telemetry::TelemetryStore store(tiny_store(8, /*evict=*/true));

  std::uint64_t last_shed = 0;
  for (int ms = 0; ms < 100; ++ms) {
    for (int k = 0; k < 20; ++k) n.fn->emit(n.ctrl);
    advance(w.reactor, w.clock, kMilli);
    if (ms % 10 == 9) {  // sample the shed ledger each virtual 10 ms
      const auto& st = w.server->stats();
      std::uint64_t shed = st.rate_shed + st.flood_shed + st.queue_shed;
      ASSERT_TRUE(store
                      .record({n.id, 0, telemetry::Metric::ov_ingest_shed},
                              w.reactor.now(),
                              static_cast<double>(shed - last_shed))
                      .is_ok());
      last_shed = shed;
    }
  }
  // The final sample lands at exactly now(); the window end is exclusive.
  auto agg = store.window_aggregate(
      {n.id, 0, telemetry::Metric::ov_ingest_shed}, 0,
      w.reactor.now() + kMilli, telemetry::QuerySource::raw);
  ASSERT_TRUE(agg.is_ok());
  EXPECT_EQ(agg->count, 10u);
  // The series integrates back to the ledger: nothing shed went unrecorded.
  EXPECT_EQ(static_cast<std::uint64_t>(agg->sum), last_shed);
  EXPECT_GT(last_shed, 0u);
}

// ---------------------------------------------------------------------------
// Seeded storm soak: multiplier swept from the seed, double-run determinism
// ---------------------------------------------------------------------------

std::vector<std::uint64_t> storm_seeds() {
  std::vector<std::uint64_t> seeds;
  if (const char* env = std::getenv("FLEXRIC_STORM_SEEDS")) {
    std::stringstream ss(env);
    std::string tok;
    while (std::getline(ss, tok, ','))
      if (!tok.empty()) seeds.push_back(std::stoull(tok));
  }
  if (seeds.empty())
    for (std::uint64_t s = 1; s <= 12; ++s) seeds.push_back(s);
  return seeds;
}

class StormSoak : public ::testing::TestWithParam<std::uint64_t> {};

/// One full storm for one seed; returns a trace that must be identical
/// across runs of the same seed (bit-determinism proof).
std::string run_storm(std::uint64_t seed) {
  const int mult = static_cast<int>(1u << (2 * (seed % 4)));  // 1,4,16,64
  server::OverloadConfig ov = storm_defaults();
  ov.flood_threshold = 1500;
  ov.flood_window = 100 * kMilli;
  ov.flood_cooldown = 500 * kMilli;
  StormWorld w(ov);
  agent::OverloadConfig aov;
  aov.indication_queue = 64;
  auto& flooder = w.add_agent(20, aov);
  auto& victim = w.add_agent(21, aov);
  w.subscribe(flooder);
  w.subscribe(victim);

  // Mixed workload: a storm burst, a slow-consumer spell on the flooder's
  // own link, then recovery — all on the virtual clock.
  for (int ms = 0; ms < 200; ++ms) {
    if (ms == 120) flooder.link->set_tx_credit(4);   // slow consumer
    if (ms == 140) flooder.link->set_tx_credit(-1);  // catches up
    for (int k = 0; k < mult; ++k) flooder.fn->emit(flooder.ctrl);
    victim.fn->emit(victim.ctrl);
    if (ms % 20 == 0) w.send_ctrl(victim);
    advance(w.reactor, w.clock, kMilli);
  }
  advance(w.reactor, w.clock, kSecond);  // settle: flush, heartbeats, reports

  // Invariants hold for every seed and every multiplier.
  expect_server_reconciles(w);
  expect_agent_reconciles(flooder);
  expect_agent_reconciles(victim);
  EXPECT_EQ(w.ctrl_failures, 0);
  EXPECT_EQ(victim.indications, static_cast<int>(victim.fn->emitted));
  EXPECT_LE(w.ctrl_p99(), 20 * kMilli);
  // Zero silent drops, end to end: every emitted indication is delivered,
  // agent-shed (and reported), or server-shed.
  const auto& st = w.server->stats();
  const auto& dq = w.server->ingest_queue().queue(MsgClass::data).stats();
  const std::uint64_t emitted = flooder.fn->emitted + victim.fn->emitted;
  const std::uint64_t agent_shed = flooder.agent->stats().indications_shed +
                                   victim.agent->stats().indications_shed;
  const std::uint64_t delivered =
      static_cast<std::uint64_t>(flooder.indications + victim.indications);
  EXPECT_EQ(emitted, delivered + agent_shed + st.rate_shed + st.flood_shed +
                         dq.shed());
  EXPECT_EQ(st.agent_reported_sheds, agent_shed)
      << "every agent-side shed must be reported by the settle point";

  std::ostringstream trace;
  trace << "mult=" << mult << " rx=" << st.msgs_rx
        << " dispatched=" << st.dispatched << " rate_shed=" << st.rate_shed
        << " flood_shed=" << st.flood_shed << " queue_shed=" << st.queue_shed
        << " quar=" << st.flood_quarantines << " rec=" << st.flood_recoveries
        << " reported=" << st.agent_reported_sheds
        << " delivered=" << delivered << " agent_shed=" << agent_shed
        << " ctrl_p99=" << w.ctrl_p99() << " events=";
  for (const auto& e : w.events->log) trace << e << ";";
  return trace.str();
}

TEST_P(StormSoak, ShedsExactlyAndIsDeterministic) {
  const std::uint64_t seed = GetParam();
  SCOPED_TRACE("FLEXRIC_STORM_SEEDS=" + std::to_string(seed) +
               " reproduces this run");
  std::string first = run_storm(seed);
  if (HasFailure()) return;
  std::string second = run_storm(seed);
  EXPECT_EQ(first, second) << "storm replay is not deterministic";
}

INSTANTIATE_TEST_SUITE_P(Seeds, StormSoak, ::testing::ValuesIn(storm_seeds()),
                         [](const auto& param_info) {
                           return "seed_" + std::to_string(param_info.param);
                         });

// ---------------------------------------------------------------------------
// Sharded storm soak (DESIGN.md §13): the same storm, spread over 1/2/4
// shards (seed-derived, FLEXRIC_SHARD_COUNT pins it), one flooder + one
// victim per shard with per-shard derived seeds. The global ledger — summed
// across shards via merge-on-query — must reconcile exactly, and the whole
// multi-shard schedule must replay byte-identically.
// ---------------------------------------------------------------------------

class ShardedStormSoak : public ::testing::TestWithParam<std::uint64_t> {};

std::string run_sharded_storm(std::uint64_t seed) {
  const std::uint32_t shards = test::soak_shards(seed);
  const int mult = static_cast<int>(1u << (2 * (seed % 4)));  // 1,4,16,64
  server::ShardedConfig cfg;
  cfg.server.overload = storm_defaults();
  cfg.server.overload.flood_threshold = 1500;
  cfg.server.overload.flood_window = 100 * kMilli;
  cfg.server.overload.flood_cooldown = 500 * kMilli;
  test::ShardWorld w(shards, cfg);
  agent::OverloadConfig aov;
  aov.indication_queue = 64;
  std::vector<test::ShardWorld::Node*> flooders, victims;
  for (std::uint32_t s = 0; s < shards; ++s) {
    flooders.push_back(
        &w.add_agent(s, 0, e2ap::NodeType::gnb, aov, seed * 1000003 + s));
    victims.push_back(
        &w.add_agent(s, 0, e2ap::NodeType::gnb, aov, seed * 2000003 + s));
  }
  for (auto* n : flooders) EXPECT_TRUE(w.converge(*n));
  for (auto* n : victims) EXPECT_TRUE(w.converge(*n));
  for (auto* n : flooders) w.subscribe(*n);
  for (auto* n : victims) w.subscribe(*n);

  // Every shard rides the same storm schedule: flooder at mult/ms, victim
  // at line rate, TX-credit squeeze mid-storm.
  for (int ms = 0; ms < 200; ++ms) {
    for (std::uint32_t s = 0; s < shards; ++s) {
      if (ms == 120) flooders[s]->link->set_tx_credit(4);
      if (ms == 140) flooders[s]->link->set_tx_credit(-1);
      for (int k = 0; k < mult; ++k) flooders[s]->fn->emit(flooders[s]->ctrl);
      victims[s]->fn->emit(victims[s]->ctrl);
    }
    w.advance(kMilli);
  }
  w.advance(kSecond);  // settle: flush, heartbeats, shed reports, publishes

  // Per-shard: the victim's line-rate traffic survived its local storm.
  for (std::uint32_t s = 0; s < shards; ++s) {
    EXPECT_EQ(victims[s]->indications,
              static_cast<int>(victims[s]->fn->emitted))
        << "victim on shard " << s << " lost traffic to its local flooder";
    EXPECT_TRUE(
        std::is_sorted(victims[s]->sns.begin(), victims[s]->sns.end()));
  }
  // Global: sum(emitted) == sum(delivered) + sum(agent_shed)
  //                        + sum(server_shed), across every shard.
  w.expect_global_reconciles();
  // Shed reports arrived everywhere by the settle point.
  for (std::uint32_t s = 0; s < shards; ++s) {
    const std::uint64_t agent_shed =
        flooders[s]->agent->stats().indications_shed +
        victims[s]->agent->stats().indications_shed;
    EXPECT_EQ(w.ric.shard_server(s).stats().agent_reported_sheds, agent_shed)
        << "shard " << s;
  }

  std::ostringstream trace;
  trace << "mult=" << mult << " shards=" << shards << " ";
  for (std::uint32_t s = 0; s < shards; ++s)
    trace << "v" << s << "=" << victims[s]->indications << " f" << s << "="
          << flooders[s]->indications << " ";
  trace << w.trace();
  return trace.str();
}

TEST_P(ShardedStormSoak, ShedsExactlyAcrossShardsAndIsDeterministic) {
  const std::uint64_t seed = GetParam();
  SCOPED_TRACE("FLEXRIC_STORM_SEEDS=" + std::to_string(seed) +
               " reproduces this run");
  std::string first = run_sharded_storm(seed);
  if (HasFailure()) return;
  std::string second = run_sharded_storm(seed);
  EXPECT_EQ(first, second) << "sharded storm replay is not deterministic";
}

INSTANTIATE_TEST_SUITE_P(Seeds, ShardedStormSoak,
                         ::testing::ValuesIn(storm_seeds()),
                         [](const auto& param_info) {
                           return "seed_" + std::to_string(param_info.param);
                         });

}  // namespace
}  // namespace flexric
