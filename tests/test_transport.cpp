// Reactor + transport tests: timers, tasks, local pipes, framed TCP.
#include <gtest/gtest.h>

#include "helpers.hpp"
#include "transport/transport.hpp"

namespace flexric {
namespace {

using test::pump;
using test::pump_until;

// ---------------------------------------------------------------------------
// Reactor
// ---------------------------------------------------------------------------

TEST(Reactor, PostedTasksRunFifo) {
  Reactor reactor;
  std::vector<int> order;
  reactor.post([&] { order.push_back(1); });
  reactor.post([&] { order.push_back(2); });
  reactor.post([&] { order.push_back(3); });
  reactor.run_once(0);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Reactor, TaskPostedFromTaskStillRuns) {
  // A task posted from within a task is deferred past the current drain
  // batch (so I/O gets a chance) but still handled by the loop.
  Reactor reactor;
  int phase = 0;
  reactor.post([&] {
    phase = 1;
    reactor.post([&] {
      EXPECT_EQ(phase, 1);  // ran strictly after the posting task
      phase = 2;
    });
  });
  reactor.run_once(0);
  reactor.run_once(0);
  EXPECT_EQ(phase, 2);
}

TEST(Reactor, OneShotTimerFiresOnce) {
  Reactor reactor;
  int fired = 0;
  reactor.add_timer(kMilli, [&] { fired++; }, /*periodic=*/false);
  ASSERT_TRUE(pump_until(reactor, [&] { return fired >= 1; }));
  pump(reactor, 20);
  EXPECT_EQ(fired, 1);
}

TEST(Reactor, PeriodicTimerRepeats) {
  Reactor reactor;
  int fired = 0;
  auto id = reactor.add_timer(kMilli, [&] { fired++; });
  ASSERT_TRUE(pump_until(reactor, [&] { return fired >= 5; }));
  reactor.cancel_timer(id);
  int at_cancel = fired;
  pump(reactor, 50);
  EXPECT_LE(fired, at_cancel + 1);  // at most one already-queued firing
}

TEST(Reactor, CancelledTimerNeverFires) {
  Reactor reactor;
  int fired = 0;
  auto id = reactor.add_timer(kMilli, [&] { fired++; });
  reactor.cancel_timer(id);
  pump(reactor, 30);
  EXPECT_EQ(fired, 0);
}

// ---------------------------------------------------------------------------
// LocalTransport
// ---------------------------------------------------------------------------

TEST(LocalTransport, DeliversInOrder) {
  Reactor reactor;
  auto [a, b] = LocalTransport::make_pair(reactor);
  std::vector<int> got;
  b->set_on_message([&](StreamId, BytesView bytes) {
    got.push_back(bytes[0]);
  });
  for (std::uint8_t i = 0; i < 10; ++i) {
    Buffer msg{i};
    ASSERT_TRUE(a->send(msg).is_ok());
  }
  pump(reactor);
  EXPECT_EQ(got, (std::vector<int>{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}));
}

TEST(LocalTransport, StreamIdsPreserved) {
  Reactor reactor;
  auto [a, b] = LocalTransport::make_pair(reactor);
  StreamId seen = 0;
  b->set_on_message([&](StreamId s, BytesView) { seen = s; });
  Buffer msg{1};
  a->send(msg, 5);
  pump(reactor);
  EXPECT_EQ(seen, 5);
}

TEST(LocalTransport, CloseNotifiesPeer) {
  Reactor reactor;
  auto [a, b] = LocalTransport::make_pair(reactor);
  bool b_closed = false;
  b->set_on_close([&] { b_closed = true; });
  a->close();
  pump(reactor);
  EXPECT_FALSE(a->is_open());
  EXPECT_TRUE(b_closed);
  EXPECT_FALSE(b->is_open());
}

TEST(LocalTransport, SendAfterCloseFails) {
  Reactor reactor;
  auto [a, b] = LocalTransport::make_pair(reactor);
  a->close();
  Buffer msg{1};
  EXPECT_FALSE(a->send(msg).is_ok());
}

// ---------------------------------------------------------------------------
// TCP transport + listener
// ---------------------------------------------------------------------------

struct TcpPair {
  Reactor reactor;
  std::unique_ptr<TcpListener> listener;
  std::shared_ptr<MsgTransport> server_side;
  std::unique_ptr<TcpTransport> client_side;

  TcpPair() {
    listener = std::make_unique<TcpListener>(
        reactor, [this](std::unique_ptr<TcpTransport> t) {
          server_side = std::shared_ptr<MsgTransport>(std::move(t));
        });
    EXPECT_TRUE(listener->listen(0).is_ok());
    auto client = TcpTransport::connect(reactor, "127.0.0.1",
                                        listener->port());
    EXPECT_TRUE(client.is_ok());
    client_side = std::move(*client);
    test::pump_until(reactor, [this] { return server_side != nullptr; });
  }
};

TEST(TcpTransport, EphemeralPortAssigned) {
  TcpPair pair;
  EXPECT_GT(pair.listener->port(), 0);
}

TEST(TcpTransport, SmallMessageRoundTrip) {
  TcpPair pair;
  Buffer received;
  pair.server_side->set_on_message([&](StreamId, BytesView b) {
    received.assign(b.begin(), b.end());
  });
  Buffer msg{1, 2, 3, 4, 5};
  ASSERT_TRUE(pair.client_side->send(msg).is_ok());
  ASSERT_TRUE(test::pump_until(pair.reactor,
                               [&] { return !received.empty(); }));
  EXPECT_EQ(received, msg);
}

TEST(TcpTransport, LargeMessagePreservesBoundaries) {
  TcpPair pair;
  std::vector<std::size_t> sizes;
  pair.server_side->set_on_message(
      [&](StreamId, BytesView b) { sizes.push_back(b.size()); });
  Buffer big(1'000'000, 0xAA);
  Buffer small{1};
  ASSERT_TRUE(pair.client_side->send(big).is_ok());
  ASSERT_TRUE(pair.client_side->send(small).is_ok());
  ASSERT_TRUE(
      test::pump_until(pair.reactor, [&] { return sizes.size() == 2; }));
  EXPECT_EQ(sizes[0], 1'000'000u);
  EXPECT_EQ(sizes[1], 1u);
}

TEST(TcpTransport, ManySmallMessagesCoalescedFramesSplitCorrectly) {
  TcpPair pair;
  int count = 0;
  std::uint64_t byte_sum = 0;
  pair.server_side->set_on_message([&](StreamId, BytesView b) {
    count++;
    for (auto x : b) byte_sum += x;
  });
  for (int i = 0; i < 500; ++i) {
    Buffer msg{static_cast<std::uint8_t>(i & 0xFF)};
    ASSERT_TRUE(pair.client_side->send(msg).is_ok());
  }
  ASSERT_TRUE(test::pump_until(pair.reactor, [&] { return count == 500; }));
  std::uint64_t expected = 0;
  for (int i = 0; i < 500; ++i) expected += static_cast<std::uint8_t>(i);
  EXPECT_EQ(byte_sum, expected);
}

TEST(TcpTransport, StreamIdTravelsWithFrame) {
  TcpPair pair;
  StreamId seen = 0;
  pair.server_side->set_on_message([&](StreamId s, BytesView) { seen = s; });
  Buffer msg{7};
  pair.client_side->send(msg, 42);
  test::pump_until(pair.reactor, [&] { return seen == 42; });
  EXPECT_EQ(seen, 42);
}

TEST(TcpTransport, PeerCloseDetected) {
  TcpPair pair;
  bool closed = false;
  pair.server_side->set_on_close([&] { closed = true; });
  pair.client_side->close();
  ASSERT_TRUE(test::pump_until(pair.reactor, [&] { return closed; }));
  EXPECT_FALSE(pair.server_side->is_open());
}

TEST(TcpTransport, BidirectionalTraffic) {
  TcpPair pair;
  int client_got = 0, server_got = 0;
  pair.server_side->set_on_message([&](StreamId, BytesView b) {
    server_got++;
    pair.server_side->send(b);  // echo
  });
  pair.client_side->set_on_message([&](StreamId, BytesView) { client_got++; });
  for (int i = 0; i < 20; ++i) {
    Buffer msg{static_cast<std::uint8_t>(i)};
    pair.client_side->send(msg);
  }
  ASSERT_TRUE(
      test::pump_until(pair.reactor, [&] { return client_got == 20; }));
  EXPECT_EQ(server_got, 20);
}

TEST(TcpTransport, OversizedMessageRejected) {
  TcpPair pair;
  Buffer huge(17 * 1024 * 1024, 0);
  auto st = pair.client_side->send(huge);
  EXPECT_FALSE(st.is_ok());
  EXPECT_EQ(st.code(), Errc::capacity);
}

TEST(TcpTransport, ConnectToClosedPortFails) {
  Reactor reactor;
  auto res = TcpTransport::connect(reactor, "127.0.0.1", 1);
  EXPECT_FALSE(res.is_ok());
}

}  // namespace
}  // namespace flexric
