// Reactor + transport tests: timers, tasks, local pipes, framed TCP.
#include <gtest/gtest.h>
#include <sys/socket.h>
#include <unistd.h>

#include <array>

#include "helpers.hpp"
#include "transport/transport.hpp"

namespace flexric {
namespace {

using test::pump;
using test::pump_until;

// ---------------------------------------------------------------------------
// Reactor
// ---------------------------------------------------------------------------

TEST(Reactor, PostedTasksRunFifo) {
  Reactor reactor;
  std::vector<int> order;
  reactor.post([&] { order.push_back(1); });
  reactor.post([&] { order.push_back(2); });
  reactor.post([&] { order.push_back(3); });
  reactor.run_once(0);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Reactor, TaskPostedFromTaskStillRuns) {
  // A task posted from within a task is deferred past the current drain
  // batch (so I/O gets a chance) but still handled by the loop.
  Reactor reactor;
  int phase = 0;
  reactor.post([&] {
    phase = 1;
    reactor.post([&] {
      EXPECT_EQ(phase, 1);  // ran strictly after the posting task
      phase = 2;
    });
  });
  reactor.run_once(0);
  reactor.run_once(0);
  EXPECT_EQ(phase, 2);
}

TEST(Reactor, OneShotTimerFiresOnce) {
  Reactor reactor;
  int fired = 0;
  reactor.add_timer(kMilli, [&] { fired++; }, /*periodic=*/false);
  ASSERT_TRUE(pump_until(reactor, [&] { return fired >= 1; }));
  pump(reactor, 20);
  EXPECT_EQ(fired, 1);
}

TEST(Reactor, PeriodicTimerRepeats) {
  Reactor reactor;
  int fired = 0;
  auto id = reactor.add_timer(kMilli, [&] { fired++; });
  ASSERT_TRUE(pump_until(reactor, [&] { return fired >= 5; }));
  reactor.cancel_timer(id);
  int at_cancel = fired;
  pump(reactor, 50);
  EXPECT_LE(fired, at_cancel + 1);  // at most one already-queued firing
}

TEST(Reactor, CancelledTimerNeverFires) {
  Reactor reactor;
  int fired = 0;
  auto id = reactor.add_timer(kMilli, [&] { fired++; });
  reactor.cancel_timer(id);
  pump(reactor, 30);
  EXPECT_EQ(fired, 0);
}

// ---------------------------------------------------------------------------
// LocalTransport
// ---------------------------------------------------------------------------

TEST(LocalTransport, DeliversInOrder) {
  Reactor reactor;
  auto [a, b] = LocalTransport::make_pair(reactor);
  std::vector<int> got;
  b->set_on_message([&](StreamId, BytesView bytes) {
    got.push_back(bytes[0]);
  });
  for (std::uint8_t i = 0; i < 10; ++i) {
    Buffer msg{i};
    ASSERT_TRUE(a->send(msg).is_ok());
  }
  pump(reactor);
  EXPECT_EQ(got, (std::vector<int>{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}));
}

TEST(LocalTransport, StreamIdsPreserved) {
  Reactor reactor;
  auto [a, b] = LocalTransport::make_pair(reactor);
  StreamId seen = 0;
  b->set_on_message([&](StreamId s, BytesView) { seen = s; });
  Buffer msg{1};
  (void)a->send(msg, 5);
  pump(reactor);
  EXPECT_EQ(seen, 5);
}

TEST(LocalTransport, CloseNotifiesPeer) {
  Reactor reactor;
  auto [a, b] = LocalTransport::make_pair(reactor);
  bool b_closed = false;
  b->set_on_close([&] { b_closed = true; });
  a->close();
  pump(reactor);
  EXPECT_FALSE(a->is_open());
  EXPECT_TRUE(b_closed);
  EXPECT_FALSE(b->is_open());
}

TEST(LocalTransport, SendAfterCloseFails) {
  Reactor reactor;
  auto [a, b] = LocalTransport::make_pair(reactor);
  a->close();
  Buffer msg{1};
  EXPECT_FALSE(a->send(msg).is_ok());
}

// ---------------------------------------------------------------------------
// TCP transport + listener
// ---------------------------------------------------------------------------

struct TcpPair {
  Reactor reactor;
  std::unique_ptr<TcpListener> listener;
  std::shared_ptr<MsgTransport> server_side;
  std::unique_ptr<TcpTransport> client_side;

  TcpPair() {
    listener = std::make_unique<TcpListener>(
        reactor, [this](std::unique_ptr<TcpTransport> t) {
          server_side = std::shared_ptr<MsgTransport>(std::move(t));
        });
    EXPECT_TRUE(listener->listen(0).is_ok());
    auto client = TcpTransport::connect(reactor, "127.0.0.1",
                                        listener->port());
    EXPECT_TRUE(client.is_ok());
    client_side = std::move(*client);
    test::pump_until(reactor, [this] { return server_side != nullptr; });
  }
};

TEST(TcpTransport, EphemeralPortAssigned) {
  TcpPair pair;
  EXPECT_GT(pair.listener->port(), 0);
}

TEST(TcpTransport, SmallMessageRoundTrip) {
  TcpPair pair;
  Buffer received;
  pair.server_side->set_on_message([&](StreamId, BytesView b) {
    received.assign(b.begin(), b.end());
  });
  Buffer msg{1, 2, 3, 4, 5};
  ASSERT_TRUE(pair.client_side->send(msg).is_ok());
  ASSERT_TRUE(test::pump_until(pair.reactor,
                               [&] { return !received.empty(); }));
  EXPECT_EQ(received, msg);
}

TEST(TcpTransport, LargeMessagePreservesBoundaries) {
  TcpPair pair;
  std::vector<std::size_t> sizes;
  pair.server_side->set_on_message(
      [&](StreamId, BytesView b) { sizes.push_back(b.size()); });
  Buffer big(1'000'000, 0xAA);
  Buffer small{1};
  ASSERT_TRUE(pair.client_side->send(big).is_ok());
  ASSERT_TRUE(pair.client_side->send(small).is_ok());
  ASSERT_TRUE(
      test::pump_until(pair.reactor, [&] { return sizes.size() == 2; }));
  EXPECT_EQ(sizes[0], 1'000'000u);
  EXPECT_EQ(sizes[1], 1u);
}

TEST(TcpTransport, ManySmallMessagesCoalescedFramesSplitCorrectly) {
  TcpPair pair;
  int count = 0;
  std::uint64_t byte_sum = 0;
  pair.server_side->set_on_message([&](StreamId, BytesView b) {
    count++;
    for (auto x : b) byte_sum += x;
  });
  for (int i = 0; i < 500; ++i) {
    Buffer msg{static_cast<std::uint8_t>(i & 0xFF)};
    ASSERT_TRUE(pair.client_side->send(msg).is_ok());
  }
  ASSERT_TRUE(test::pump_until(pair.reactor, [&] { return count == 500; }));
  std::uint64_t expected = 0;
  for (int i = 0; i < 500; ++i) expected += static_cast<std::uint8_t>(i);
  EXPECT_EQ(byte_sum, expected);
}

TEST(TcpTransport, StreamIdTravelsWithFrame) {
  TcpPair pair;
  StreamId seen = 0;
  pair.server_side->set_on_message([&](StreamId s, BytesView) { seen = s; });
  Buffer msg{7};
  (void)pair.client_side->send(msg, 42);
  test::pump_until(pair.reactor, [&] { return seen == 42; });
  EXPECT_EQ(seen, 42);
}

TEST(TcpTransport, PeerCloseDetected) {
  TcpPair pair;
  bool closed = false;
  pair.server_side->set_on_close([&] { closed = true; });
  pair.client_side->close();
  ASSERT_TRUE(test::pump_until(pair.reactor, [&] { return closed; }));
  EXPECT_FALSE(pair.server_side->is_open());
}

TEST(TcpTransport, BidirectionalTraffic) {
  TcpPair pair;
  int client_got = 0, server_got = 0;
  pair.server_side->set_on_message([&](StreamId, BytesView b) {
    server_got++;
    (void)pair.server_side->send(b);  // echo
  });
  pair.client_side->set_on_message([&](StreamId, BytesView) { client_got++; });
  for (int i = 0; i < 20; ++i) {
    Buffer msg{static_cast<std::uint8_t>(i)};
    (void)pair.client_side->send(msg);
  }
  ASSERT_TRUE(
      test::pump_until(pair.reactor, [&] { return client_got == 20; }));
  EXPECT_EQ(server_got, 20);
}

TEST(TcpTransport, OversizedMessageRejected) {
  TcpPair pair;
  Buffer huge(17 * 1024 * 1024, 0);
  auto st = pair.client_side->send(huge);
  EXPECT_FALSE(st.is_ok());
  EXPECT_EQ(st.code(), Errc::capacity);
}

TEST(TcpTransport, ConnectToClosedPortFails) {
  Reactor reactor;
  auto res = TcpTransport::connect(reactor, "127.0.0.1", 1);
  EXPECT_FALSE(res.is_ok());
}

// ---------------------------------------------------------------------------
// Reactor: epoll readiness beyond a single fixed-size batch
// ---------------------------------------------------------------------------

// Regression: run_once used a fixed 64-entry epoll_wait array and handled at
// most 64 ready fds per call, starving the rest under load. With >64
// simultaneously-ready pipes, a single run_once must now service every one.
TEST(Reactor, RunOnceDrainsMoreThan64ReadyFds) {
  constexpr int kPipes = 100;
  Reactor reactor;
  std::vector<std::array<int, 2>> pipes(kPipes);
  int fired = 0;
  for (auto& p : pipes) {
    ASSERT_EQ(pipe(p.data()), 0);
    ASSERT_TRUE(reactor
                    .add_fd(p[0], EPOLLIN,
                            [&fired, fd = p[0]](std::uint32_t) {
                              char c;
                              ASSERT_EQ(read(fd, &c, 1), 1);
                              fired++;
                            })
                    .is_ok());
  }
  for (auto& p : pipes) ASSERT_EQ(write(p[1], "x", 1), 1);

  int handled = reactor.run_once(0);
  EXPECT_EQ(fired, kPipes) << "ready fds beyond the first epoll batch were "
                              "not serviced in this run_once";
  EXPECT_GE(handled, kPipes);

  for (auto& p : pipes) {
    reactor.del_fd(p[0]);
    close(p[0]);
    close(p[1]);
  }
}

// ---------------------------------------------------------------------------
// TcpTransport: send-buffer backpressure
// ---------------------------------------------------------------------------

// A peer that stops reading must not let our TX queue grow without bound:
// once the cap is hit, send() surfaces Errc::capacity, and sending works
// again after the peer drains.
TEST(TcpTransport, SendBufferExhaustionSurfacesCapacity) {
  TcpPair pair;
  pair.client_side->set_max_tx_buffer(64 * 1024);

  // Do not pump the reactor: nothing flushes, the peer "reads" nothing, and
  // every frame accumulates in the client's TX queue until the cap.
  Buffer chunk(8 * 1024, 0x42);
  Status st = Status::ok();
  int accepted = 0;
  for (int i = 0; i < 64 && st.is_ok(); ++i) {
    st = pair.client_side->send(chunk);
    if (st.is_ok()) accepted++;
  }
  ASSERT_FALSE(st.is_ok()) << "cap never enforced";
  EXPECT_EQ(st.code(), Errc::capacity);
  EXPECT_GT(accepted, 0);  // backpressure, not a dead link
  EXPECT_TRUE(pair.client_side->is_open());

  // Let the reactor flush and the peer consume; capacity frees up.
  int received = 0;
  pair.server_side->set_on_message([&](StreamId, BytesView) { received++; });
  ASSERT_TRUE(
      pump_until(pair.reactor, [&] { return received == accepted; }));
  EXPECT_EQ(pair.client_side->pending_tx_bytes(), 0u);
  EXPECT_TRUE(pair.client_side->send(chunk).is_ok());
}

// ---------------------------------------------------------------------------
// FrameAssembler: reassembly under pathological chunking
// ---------------------------------------------------------------------------

TEST(FrameAssembler, OneBytePerFeedNeverMisparses) {
  // Three frames of varying size/stream, delivered one byte at a time — the
  // worst short-read pattern a stalled TCP peer can produce.
  Buffer wire;
  Buffer m1{0xDE, 0xAD};
  Buffer m2;  // empty payload is a legal frame
  Buffer m3(300, 0x7F);
  append_frame(wire, m1, 0);
  append_frame(wire, m2, 42);
  append_frame(wire, m3, 7);

  FrameAssembler fa;
  std::vector<std::pair<StreamId, Buffer>> got;
  for (std::size_t i = 0; i < wire.size(); ++i) {
    BytesView one(wire.data() + i, 1);
    ASSERT_TRUE(fa.feed(one,
                        [&](StreamId s, BytesView b) {
                          got.emplace_back(s, Buffer(b.begin(), b.end()));
                          return true;
                        })
                    .is_ok());
  }
  ASSERT_EQ(got.size(), 3u);
  EXPECT_EQ(got[0].first, 0);
  EXPECT_EQ(got[0].second, m1);
  EXPECT_EQ(got[1].first, 42);
  EXPECT_TRUE(got[1].second.empty());
  EXPECT_EQ(got[2].first, 7);
  EXPECT_EQ(got[2].second, m3);
  EXPECT_EQ(fa.buffered(), 0u);  // nothing left over
}

// End-to-end dribble: a raw socket peer writes the frame stream to a
// TcpTransport ONE byte per reactor pump. Reassembly across 100% short
// reads must produce exactly the original messages, boundaries intact.
TEST(TcpTransport, OneBytePerPumpDribbleReassemblesFrames) {
  Reactor reactor;
  int sv[2];
  ASSERT_EQ(socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
  TcpTransport receiver(reactor, sv[0]);

  std::vector<std::pair<StreamId, Buffer>> got;
  receiver.set_on_message([&](StreamId s, BytesView b) {
    got.emplace_back(s, Buffer(b.begin(), b.end()));
  });

  Buffer wire;
  Buffer m1{0x11, 0x22, 0x33};
  Buffer m2(200, 0x5A);
  Buffer m3{0xFF};
  append_frame(wire, m1, 1);
  append_frame(wire, m2, 2);
  append_frame(wire, m3, 3);

  for (std::uint8_t byte : wire) {
    ASSERT_EQ(write(sv[1], &byte, 1), 1);
    pump(reactor, 2);  // receiver sees a 1-byte short read each time
  }
  close(sv[1]);
  ASSERT_TRUE(pump_until(reactor, [&] { return got.size() == 3; }));
  EXPECT_EQ(got[0], (std::pair<StreamId, Buffer>{1, m1}));
  EXPECT_EQ(got[1], (std::pair<StreamId, Buffer>{2, m2}));
  EXPECT_EQ(got[2], (std::pair<StreamId, Buffer>{3, m3}));
}

TEST(FrameAssembler, SplitHeaderAcrossFeedsParsesOnce) {
  Buffer wire;
  Buffer msg{1, 2, 3};
  append_frame(wire, msg, 9);
  FrameAssembler fa;
  int frames = 0;
  // Split inside the 6-byte header, then the rest.
  ASSERT_TRUE(fa.feed(BytesView(wire.data(), 3),
                      [&](StreamId, BytesView) {
                        frames++;
                        return true;
                      })
                  .is_ok());
  EXPECT_EQ(frames, 0);
  ASSERT_TRUE(fa.feed(BytesView(wire.data() + 3, wire.size() - 3),
                      [&](StreamId s, BytesView b) {
                        frames++;
                        EXPECT_EQ(s, 9);
                        EXPECT_EQ(Buffer(b.begin(), b.end()), msg);
                        return true;
                      })
                  .is_ok());
  EXPECT_EQ(frames, 1);
}

TEST(FrameAssembler, OversizedLengthIsMalformed) {
  // Hand-craft a header whose length field exceeds kMaxFrameSize: the
  // stream is desynchronized garbage from here, feed must say so.
  Buffer wire(kFrameHeaderSize, 0);
  const std::uint32_t huge = kMaxFrameSize + 1;
  wire[0] = static_cast<std::uint8_t>(huge & 0xFF);
  wire[1] = static_cast<std::uint8_t>((huge >> 8) & 0xFF);
  wire[2] = static_cast<std::uint8_t>((huge >> 16) & 0xFF);
  wire[3] = static_cast<std::uint8_t>((huge >> 24) & 0xFF);
  FrameAssembler fa;
  auto st = fa.feed(wire, [](StreamId, BytesView) { return true; });
  ASSERT_FALSE(st.is_ok());
  EXPECT_EQ(st.code(), Errc::malformed);
}

TEST(FrameAssembler, SinkReturningFalseStopsDrain) {
  Buffer wire;
  Buffer msg{1};
  append_frame(wire, msg, 0);
  append_frame(wire, msg, 1);
  append_frame(wire, msg, 2);
  FrameAssembler fa;
  int delivered = 0;
  ASSERT_TRUE(fa.feed(wire,
                      [&](StreamId, BytesView) {
                        delivered++;
                        return delivered < 2;  // stop after the second
                      })
                  .is_ok());
  EXPECT_EQ(delivered, 2);
  // The undelivered third frame stays buffered, not lost.
  EXPECT_EQ(fa.buffered(), kFrameHeaderSize + msg.size());
}

}  // namespace
}  // namespace flexric
