// MAC scheduler tests: UE schedulers, NVS slice scheduler properties
// (isolation, work conservation, capacity/rate equivalence, admission
// control), static partitioning, UE association.
#include <gtest/gtest.h>

#include <numeric>

#include "ran/sched.hpp"

namespace flexric::ran {
namespace {

using e2sm::slice::Algo;
using e2sm::slice::CtrlKind;
using e2sm::slice::CtrlMsg;
using e2sm::slice::NvsKind;
using e2sm::slice::SliceConf;
using e2sm::slice::UeSched;

CellConfig lte25() {
  CellConfig cfg;
  cfg.rat = Rat::lte;
  cfg.num_prbs = 25;
  cfg.default_mcs = 28;
  return cfg;
}

CellConfig nr106() {
  CellConfig cfg;
  cfg.rat = Rat::nr;
  cfg.num_prbs = 106;
  cfg.default_mcs = 20;
  return cfg;
}

SliceConf capacity_slice(std::uint32_t id, double share,
                         UeSched sched = UeSched::pf) {
  SliceConf c;
  c.id = id;
  c.label = "s" + std::to_string(id);
  c.ue_sched = sched;
  c.nvs.kind = NvsKind::capacity;
  c.nvs.capacity_share = share;
  return c;
}

SliceConf rate_slice(std::uint32_t id, double mbps, double ref_mbps) {
  SliceConf c;
  c.id = id;
  c.nvs.kind = NvsKind::rate;
  c.nvs.rate_mbps = mbps;
  c.nvs.ref_rate_mbps = ref_mbps;
  return c;
}

CtrlMsg add_slices(std::vector<SliceConf> slices) {
  CtrlMsg msg;
  msg.kind = CtrlKind::add_mod;
  msg.algo = Algo::nvs;
  msg.slices = std::move(slices);
  return msg;
}

CtrlMsg assoc(std::uint16_t rnti, std::uint32_t slice) {
  CtrlMsg msg;
  msg.kind = CtrlKind::assoc_ue;
  msg.assoc = {{rnti, slice}};
  return msg;
}

/// Run `ttis` scheduling rounds with all UEs backlogged; returns PRB share
/// per slice id.
std::map<std::uint32_t, double> run_saturated(
    MacScheduler& mac, const std::vector<UeInput>& ues, int ttis,
    std::uint32_t total_prbs) {
  std::map<std::uint32_t, std::uint64_t> prbs;
  for (int t = 0; t < ttis; ++t)
    for (const Alloc& a : mac.schedule(ues)) prbs[a.slice_id] += a.prbs;
  std::map<std::uint32_t, double> share;
  for (auto& [id, p] : prbs)
    share[id] = static_cast<double>(p) /
                (static_cast<double>(ttis) * total_prbs);
  return share;
}

// ---------------------------------------------------------------------------
// TBS / link tables
// ---------------------------------------------------------------------------

TEST(LinkTables, TbsMonotoneInMcsAndPrbs) {
  // 3GPP efficiency tables dip slightly at modulation-order switches
  // (e.g. 16QAM->64QAM); allow a 1 % tolerance there.
  for (std::uint8_t mcs = 1; mcs <= 28; ++mcs)
    EXPECT_GE(
        transport_block_bits(mcs, 25) * 100,
        transport_block_bits(static_cast<std::uint8_t>(mcs - 1), 25) * 99);
  for (std::uint32_t prbs = 2; prbs <= 106; ++prbs)
    EXPECT_GT(transport_block_bits(20, prbs),
              transport_block_bits(20, prbs - 1));
}

TEST(LinkTables, CellCapacityMatchesPaperScale) {
  // 25 PRBs @ MCS 28 ≈ 17-19 Mbps (Fig. 15 dashed line ~17 Mbps/eNB);
  // 106 PRBs @ MCS 20 ≈ 55-60+ Mbps (Fig. 13 cumulative ~60 Mbps).
  double lte = cell_capacity_mbps(lte25());
  EXPECT_GT(lte, 15.0);
  EXPECT_LT(lte, 21.0);
  double nr = cell_capacity_mbps(nr106());
  EXPECT_GT(nr, 50.0);
  EXPECT_LT(nr, 65.0);
}

TEST(LinkTables, CqiToMcsMonotone) {
  for (std::uint8_t cqi = 2; cqi <= 15; ++cqi)
    EXPECT_GE(cqi_to_mcs(cqi), cqi_to_mcs(static_cast<std::uint8_t>(cqi - 1)));
  EXPECT_EQ(cqi_to_mcs(15), 28);
}

// ---------------------------------------------------------------------------
// UE schedulers
// ---------------------------------------------------------------------------

TEST(UeSchedulers, RrSplitsEvenly) {
  auto sched = make_ue_scheduler(UeSched::rr);
  std::vector<UeInput> ues = {{1, 28, 10000}, {2, 28, 10000}, {3, 28, 10000}};
  std::map<std::uint16_t, std::uint64_t> prbs;
  for (int t = 0; t < 300; ++t) {
    std::vector<Alloc> out;
    sched->allocate(ues, 25, 0, out);
    std::uint32_t total = 0;
    for (const auto& a : out) {
      prbs[a.rnti] += a.prbs;
      total += a.prbs;
    }
    EXPECT_EQ(total, 25u);  // work conserving
  }
  // 25/3: each UE within 1% of 1/3 over many TTIs (remainder rotates).
  for (auto& [rnti, p] : prbs)
    EXPECT_NEAR(static_cast<double>(p) / (300.0 * 25.0), 1.0 / 3, 0.01);
}

TEST(UeSchedulers, PfEqualRatesGetEqualResources) {
  auto sched = make_ue_scheduler(UeSched::pf);
  std::vector<UeInput> ues = {{1, 20, 10000}, {2, 20, 10000}};
  std::map<std::uint16_t, std::uint64_t> prbs;
  for (int t = 0; t < 500; ++t) {
    std::vector<Alloc> out;
    sched->allocate(ues, 106, 0, out);
    for (const auto& a : out) prbs[a.rnti] += a.prbs;
  }
  double share1 = static_cast<double>(prbs[1]) / (500.0 * 106.0);
  EXPECT_NEAR(share1, 0.5, 0.05);
}

TEST(UeSchedulers, PfNoPrbWasted) {
  auto sched = make_ue_scheduler(UeSched::pf);
  std::vector<UeInput> ues = {{1, 28, 1}, {2, 10, 1}, {3, 5, 1}};
  std::vector<Alloc> out;
  sched->allocate(ues, 25, 0, out);
  std::uint32_t total = 0;
  for (const auto& a : out) total += a.prbs;
  EXPECT_EQ(total, 25u);
}

TEST(UeSchedulers, MtPicksBestMcs) {
  auto sched = make_ue_scheduler(UeSched::mt);
  std::vector<UeInput> ues = {{1, 10, 100}, {2, 28, 100}, {3, 15, 100}};
  std::vector<Alloc> out;
  sched->allocate(ues, 25, 0, out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].rnti, 2);
  EXPECT_EQ(out[0].prbs, 25u);
}

TEST(UeSchedulers, EmptyInputsYieldNothing) {
  for (auto kind : {UeSched::rr, UeSched::pf, UeSched::mt}) {
    auto sched = make_ue_scheduler(kind);
    std::vector<Alloc> out;
    sched->allocate({}, 25, 0, out);
    EXPECT_TRUE(out.empty());
    std::vector<UeInput> ues = {{1, 28, 100}};
    sched->allocate(ues, 0, 0, out);
    EXPECT_TRUE(out.empty());
  }
}

// ---------------------------------------------------------------------------
// NVS slice scheduler
// ---------------------------------------------------------------------------

TEST(Nvs, CapacitySlicesAttainConfiguredShares) {
  MacScheduler mac(nr106());
  mac.add_ue(1);
  mac.add_ue(2);
  ASSERT_TRUE(
      mac.apply(add_slices({capacity_slice(1, 0.66), capacity_slice(2, 0.34)}))
          .is_ok());
  ASSERT_TRUE(mac.apply(assoc(1, 1)).is_ok());
  ASSERT_TRUE(mac.apply(assoc(2, 2)).is_ok());
  std::vector<UeInput> ues = {{1, 20, 1 << 20}, {2, 20, 1 << 20}};
  auto share = run_saturated(mac, ues, 5000, 106);
  EXPECT_NEAR(share[1], 0.66, 0.03);
  EXPECT_NEAR(share[2], 0.34, 0.03);
}

TEST(Nvs, IsolationNewUeCannotStealFromSlicedUe) {
  // Fig. 13a: the white UE keeps 50 % despite a third UE arriving.
  MacScheduler mac(nr106());
  for (std::uint16_t rnti : {1, 2, 3}) mac.add_ue(rnti);
  (void)mac.apply(add_slices({capacity_slice(1, 0.5), capacity_slice(2, 0.5)}));
  (void)mac.apply(assoc(1, 1));
  (void)mac.apply(assoc(2, 2));
  (void)mac.apply(assoc(3, 2));  // the arriving UE joins slice 2
  std::vector<UeInput> ues = {{1, 20, 1 << 20}, {2, 20, 1 << 20},
                              {3, 20, 1 << 20}};
  auto share = run_saturated(mac, ues, 5000, 106);
  EXPECT_NEAR(share[1], 0.5, 0.03);  // slice 1 unaffected
  EXPECT_NEAR(share[2], 0.5, 0.03);
}

TEST(Nvs, WorkConservationIdleSliceYieldsResources) {
  // Fig. 13b: when the 34 % slice is inactive, the 66 % slice takes all.
  MacScheduler mac(nr106());
  mac.add_ue(1);
  mac.add_ue(2);
  (void)mac.apply(add_slices({capacity_slice(1, 0.66), capacity_slice(2, 0.34)}));
  (void)mac.apply(assoc(1, 1));
  (void)mac.apply(assoc(2, 2));
  std::vector<UeInput> ues = {{1, 20, 1 << 20}, {2, 20, 0}};  // slice 2 idle
  auto share = run_saturated(mac, ues, 2000, 106);
  EXPECT_NEAR(share[1], 1.0, 0.02);
  EXPECT_EQ(share.count(2), 0u);
}

TEST(Nvs, RateSliceEquivalentToCapacitySlice) {
  // NVS: a rate slice r/r_ref is equivalent to a capacity slice r/r_ref.
  MacScheduler mac(nr106());
  mac.add_ue(1);
  mac.add_ue(2);
  // 30 Mbps over 60 Mbps reference = 50 % share; capacity slice 50 %.
  (void)mac.apply(add_slices(
      {rate_slice(1, 30.0, 60.0), capacity_slice(2, 0.5)}));
  (void)mac.apply(assoc(1, 1));
  (void)mac.apply(assoc(2, 2));
  std::vector<UeInput> ues = {{1, 20, 1 << 20}, {2, 20, 1 << 20}};
  auto share = run_saturated(mac, ues, 8000, 106);
  EXPECT_NEAR(share[1], 0.5, 0.08);
  EXPECT_NEAR(share[2], 0.5, 0.08);
}

TEST(Nvs, AdmissionControlRejectsOverload) {
  MacScheduler mac(nr106());
  auto st = mac.apply(
      add_slices({capacity_slice(1, 0.7), capacity_slice(2, 0.4)}));
  EXPECT_FALSE(st.is_ok());
  EXPECT_EQ(st.code(), Errc::rejected);
  EXPECT_EQ(mac.num_slices(), 1u);  // only the default slice
}

TEST(Nvs, AdmissionCountsRateSlices) {
  MacScheduler mac(nr106());
  // 0.6 capacity + 30/60 rate = 1.1 > 1 → reject.
  auto st = mac.apply(
      add_slices({capacity_slice(1, 0.6), rate_slice(2, 30.0, 60.0)}));
  EXPECT_FALSE(st.is_ok());
  // 0.5 + 0.5 exactly fits.
  EXPECT_TRUE(mac.apply(add_slices({capacity_slice(1, 0.5),
                                    rate_slice(2, 30.0, 60.0)}))
                  .is_ok());
}

TEST(Nvs, ModifyingSliceReplacesItsShareInAdmission) {
  MacScheduler mac(nr106());
  ASSERT_TRUE(mac.apply(add_slices({capacity_slice(1, 0.9)})).is_ok());
  // Re-configuring slice 1 down to 0.5 and adding 0.5 must be admissible.
  EXPECT_TRUE(
      mac.apply(add_slices({capacity_slice(1, 0.5), capacity_slice(2, 0.5)}))
          .is_ok());
  // But slice 1 at 0.9 plus new 0.2 is not.
  EXPECT_FALSE(
      mac.apply(add_slices({capacity_slice(1, 0.9), capacity_slice(3, 0.2)}))
          .is_ok());
}

TEST(Nvs, DeleteSliceReassociatesUesToDefault) {
  MacScheduler mac(nr106());
  mac.add_ue(1);
  (void)mac.apply(add_slices({capacity_slice(1, 0.5)}));
  (void)mac.apply(assoc(1, 1));
  EXPECT_EQ(mac.slice_of(1), 1u);
  CtrlMsg del;
  del.kind = CtrlKind::del;
  del.del_ids = {1};
  ASSERT_TRUE(mac.apply(del).is_ok());
  EXPECT_EQ(mac.slice_of(1), 0u);
}

TEST(Nvs, DefaultSliceCannotBeDeleted) {
  MacScheduler mac(nr106());
  CtrlMsg del;
  del.kind = CtrlKind::del;
  del.del_ids = {0};
  EXPECT_FALSE(mac.apply(del).is_ok());
}

TEST(Nvs, AssocToUnknownSliceFails) {
  MacScheduler mac(nr106());
  mac.add_ue(1);
  EXPECT_FALSE(mac.apply(assoc(1, 42)).is_ok());
}

TEST(Nvs, UnassociatedUesServedWhenSlicesIdle) {
  MacScheduler mac(nr106());
  mac.add_ue(1);  // stays in default slice
  mac.add_ue(2);
  (void)mac.apply(add_slices({capacity_slice(1, 0.5)}));
  (void)mac.apply(assoc(2, 1));
  // Slice 1 idle: default-slice UE 1 gets the cell.
  std::vector<UeInput> ues = {{1, 20, 1 << 20}, {2, 20, 0}};
  auto share = run_saturated(mac, ues, 500, 106);
  EXPECT_NEAR(share[0], 1.0, 0.01);
}

// ---------------------------------------------------------------------------
// Other algorithms
// ---------------------------------------------------------------------------

TEST(AlgoNone, AllUesShareCellEqually) {
  MacScheduler mac(nr106());
  for (std::uint16_t rnti : {1, 2, 3}) mac.add_ue(rnti);
  std::vector<UeInput> ues = {{1, 20, 1 << 20}, {2, 20, 1 << 20},
                              {3, 20, 1 << 20}};
  std::map<std::uint16_t, std::uint64_t> prbs;
  for (int t = 0; t < 1000; ++t)
    for (const Alloc& a : mac.schedule(ues)) prbs[a.rnti] += a.prbs;
  for (auto& [rnti, p] : prbs)
    EXPECT_NEAR(static_cast<double>(p) / (1000.0 * 106.0), 1.0 / 3, 0.05);
}

TEST(StaticRb, PartitionIsRespectedAndNotShared) {
  MacScheduler mac(lte25());
  mac.add_ue(1);
  mac.add_ue(2);
  CtrlMsg msg;
  msg.kind = CtrlKind::add_mod;
  msg.algo = Algo::static_rb;
  SliceConf s1 = capacity_slice(1, 0);
  s1.static_rb = {0, 15};
  SliceConf s2 = capacity_slice(2, 0);
  s2.static_rb = {15, 10};
  msg.slices = {s1, s2};
  ASSERT_TRUE(mac.apply(msg).is_ok());
  (void)mac.apply(assoc(1, 1));
  (void)mac.apply(assoc(2, 2));
  // Slice 2 idle: static partitioning wastes its PRBs (no sharing).
  std::vector<UeInput> ues = {{1, 28, 1 << 20}, {2, 28, 0}};
  auto share = run_saturated(mac, ues, 200, 25);
  EXPECT_NEAR(share[1], 15.0 / 25.0, 0.01);
  EXPECT_EQ(share.count(2), 0u);
}

TEST(StaticRb, OversizedPartitionRejected) {
  MacScheduler mac(lte25());
  CtrlMsg msg;
  msg.kind = CtrlKind::add_mod;
  msg.algo = Algo::static_rb;
  SliceConf s1;
  s1.id = 1;
  s1.static_rb = {0, 20};
  SliceConf s2;
  s2.id = 2;
  s2.static_rb = {20, 10};  // 30 > 25 PRBs
  msg.slices = {s1, s2};
  EXPECT_FALSE(mac.apply(msg).is_ok());
}

// ---------------------------------------------------------------------------
// Status report
// ---------------------------------------------------------------------------

TEST(SliceStatus, ReportsSharesAndAssociations) {
  MacScheduler mac(nr106());
  mac.add_ue(1);
  mac.add_ue(2);
  (void)mac.apply(add_slices({capacity_slice(1, 0.75), capacity_slice(2, 0.25)}));
  (void)mac.apply(assoc(1, 1));
  (void)mac.apply(assoc(2, 2));
  std::vector<UeInput> ues = {{1, 20, 1 << 20}, {2, 20, 1 << 20}};
  for (int t = 0; t < 2000; ++t) mac.schedule(ues);

  auto report = mac.status_report(/*reset_period=*/true);
  EXPECT_EQ(report.algo, Algo::nvs);
  ASSERT_EQ(report.slices.size(), 3u);  // default + 2
  double used1 = 0, used2 = 0;
  for (const auto& s : report.slices) {
    if (s.conf.id == 1) used1 = s.prb_share_used;
    if (s.conf.id == 2) used2 = s.prb_share_used;
  }
  EXPECT_NEAR(used1, 0.75, 0.05);
  EXPECT_NEAR(used2, 0.25, 0.05);
  EXPECT_EQ(report.assoc.size(), 2u);

  // After reset, a fresh report shows zero usage.
  auto fresh = mac.status_report(false);
  for (const auto& s : fresh.slices) EXPECT_EQ(s.prb_share_used, 0.0);
}

}  // namespace
}  // namespace flexric::ran
