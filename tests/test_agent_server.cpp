// Integration tests: agent library <-> server library over the E2 protocol
// (setup handshake, RAN DB, subscription management, control, indications,
// multi-controller, disaggregated CU/DU merge).
#include <gtest/gtest.h>

#include "agent/agent.hpp"
#include "e2sm/common.hpp"
#include "e2sm/hw_sm.hpp"
#include "helpers.hpp"
#include "ran/base_station.hpp"
#include "ran/functions.hpp"
#include "server/server.hpp"

namespace flexric {
namespace {

using test::pump;
using test::pump_until;

/// A trivial RAN function for protocol-level tests: admits everything,
/// echoes control payloads as outcome, counts callbacks.
class StubFunction final : public agent::RanFunction {
 public:
  explicit StubFunction(std::uint16_t id) {
    desc_.id = id;
    desc_.revision = 1;
    desc_.name = "STUB-" + std::to_string(id);
  }
  [[nodiscard]] const e2ap::RanFunctionItem& descriptor() const override {
    return desc_;
  }
  Result<agent::SubscriptionOutcome> on_subscription(
      const e2ap::SubscriptionRequest& req, agent::ControllerId) override {
    subs++;
    last_sub = req;
    agent::SubscriptionOutcome out;
    for (const auto& a : req.actions) out.admitted.push_back(a.id);
    return out;
  }
  Status on_subscription_delete(const e2ap::SubscriptionDeleteRequest&,
                                agent::ControllerId) override {
    deletes++;
    return Status::ok();
  }
  Result<Buffer> on_control(const e2ap::ControlRequest& req,
                            agent::ControllerId) override {
    controls++;
    return req.message;  // echo as outcome
  }
  /// Emit an indication on the recorded subscription.
  void emit(agent::ControllerId origin, Buffer payload) {
    e2ap::Indication ind;
    ind.request = last_sub.request;
    ind.ran_function_id = desc_.id;
    ind.action_id = 1;
    ind.message = std::move(payload);
    (void)services_->send_indication(origin, ind);
  }

  int subs = 0, deletes = 0, controls = 0;
  e2ap::SubscriptionRequest last_sub;

 private:
  e2ap::RanFunctionItem desc_;
};

struct World {
  Reactor reactor;
  server::E2Server server{reactor, {21, WireFormat::flat}};

  std::unique_ptr<agent::E2Agent> make_agent(
      e2ap::GlobalNodeId node, std::shared_ptr<StubFunction> fn) {
    auto ag = std::make_unique<agent::E2Agent>(
        reactor, agent::E2Agent::Config{node, WireFormat::flat});
    if (fn) EXPECT_TRUE(ag->register_function(std::move(fn)).is_ok());
    auto [a_side, s_side] = LocalTransport::make_pair(reactor);
    server.attach(s_side);
    EXPECT_TRUE(ag->add_controller(a_side).is_ok());
    return ag;
  }
};

TEST(AgentServer, SetupHandshakeEstablishes) {
  World w;
  auto fn = std::make_shared<StubFunction>(200);
  auto agent = w.make_agent({1, 10, e2ap::NodeType::gnb}, fn);
  ASSERT_TRUE(pump_until(w.reactor, [&] {
    return agent->state(0) == agent::ConnState::established;
  }));
  EXPECT_EQ(w.server.ran_db().num_agents(), 1u);
  const auto* info = w.server.ran_db().agent(1);
  ASSERT_NE(info, nullptr);
  EXPECT_EQ(info->node.nb_id, 10u);
  ASSERT_EQ(info->functions.size(), 1u);
  EXPECT_EQ(info->functions[0].id, 200);
}

TEST(AgentServer, IAppSeesAgentConnect) {
  struct Watcher : server::IApp {
    const char* name() const override { return "watcher"; }
    void on_agent_connected(const server::AgentInfo& info) override {
      connected.push_back(info.id);
    }
    void on_agent_disconnected(server::AgentId id) override {
      disconnected.push_back(id);
    }
    std::vector<server::AgentId> connected, disconnected;
  };
  World w;
  auto watcher = std::make_shared<Watcher>();
  w.server.add_iapp(watcher);
  auto agent = w.make_agent({1, 10, e2ap::NodeType::gnb},
                            std::make_shared<StubFunction>(200));
  ASSERT_TRUE(
      pump_until(w.reactor, [&] { return !watcher->connected.empty(); }));
  EXPECT_EQ(watcher->connected.size(), 1u);
}

TEST(AgentServer, LateIAppSeesExistingAgents) {
  struct Watcher : server::IApp {
    const char* name() const override { return "watcher"; }
    void on_agent_connected(const server::AgentInfo&) override { count++; }
    int count = 0;
  };
  World w;
  auto agent = w.make_agent({1, 10, e2ap::NodeType::gnb},
                            std::make_shared<StubFunction>(200));
  pump_until(w.reactor, [&] { return w.server.ran_db().num_agents() == 1; });
  auto late = std::make_shared<Watcher>();
  w.server.add_iapp(late);
  EXPECT_EQ(late->count, 1);
}

TEST(AgentServer, SubscriptionRoundTrip) {
  World w;
  auto fn = std::make_shared<StubFunction>(200);
  auto agent = w.make_agent({1, 10, e2ap::NodeType::gnb}, fn);
  pump_until(w.reactor, [&] { return w.server.ran_db().num_agents() == 1; });

  bool responded = false;
  server::SubCallbacks cbs;
  cbs.on_response = [&](const e2ap::SubscriptionResponse& resp) {
    responded = true;
    EXPECT_EQ(resp.admitted, (std::vector<std::uint8_t>{1}));
  };
  e2ap::Action action{1, e2ap::ActionType::report, {}};
  auto handle = w.server.subscribe(1, 200, Buffer{1, 2}, {action}, cbs);
  ASSERT_TRUE(handle.is_ok());
  ASSERT_TRUE(pump_until(w.reactor, [&] { return responded; }));
  EXPECT_EQ(fn->subs, 1);
  EXPECT_EQ(Buffer(fn->last_sub.event_trigger), (Buffer{1, 2}));
}

TEST(AgentServer, IndicationsReachSubscribingIApp) {
  World w;
  auto fn = std::make_shared<StubFunction>(200);
  auto agent = w.make_agent({1, 10, e2ap::NodeType::gnb}, fn);
  pump_until(w.reactor, [&] { return w.server.ran_db().num_agents() == 1; });

  std::vector<Buffer> got;
  server::SubCallbacks cbs;
  cbs.on_indication = [&](const e2ap::Indication& ind) {
    got.push_back(ind.message);
  };
  auto handle =
      w.server.subscribe(1, 200, {}, {{1, e2ap::ActionType::report, {}}}, cbs);
  ASSERT_TRUE(handle.is_ok());
  pump_until(w.reactor, [&] { return fn->subs == 1; });

  fn->emit(0, Buffer{9, 9});
  fn->emit(0, Buffer{8});
  ASSERT_TRUE(pump_until(w.reactor, [&] { return got.size() == 2; }));
  EXPECT_EQ(got[0], (Buffer{9, 9}));
  EXPECT_EQ(got[1], (Buffer{8}));
  EXPECT_EQ(w.server.stats().indications_rx, 2u);
}

TEST(AgentServer, UnsubscribeStopsDelivery) {
  World w;
  auto fn = std::make_shared<StubFunction>(200);
  auto agent = w.make_agent({1, 10, e2ap::NodeType::gnb}, fn);
  pump_until(w.reactor, [&] { return w.server.ran_db().num_agents() == 1; });

  int got = 0;
  server::SubCallbacks cbs;
  cbs.on_indication = [&](const e2ap::Indication&) { got++; };
  auto handle =
      w.server.subscribe(1, 200, {}, {{1, e2ap::ActionType::report, {}}}, cbs);
  pump_until(w.reactor, [&] { return fn->subs == 1; });

  ASSERT_TRUE(w.server.unsubscribe(*handle).is_ok());
  ASSERT_TRUE(pump_until(w.reactor, [&] { return fn->deletes == 1; }));
  fn->emit(0, Buffer{1});
  pump(w.reactor, 20);
  EXPECT_EQ(got, 0);  // dropped: subscription gone at the server
}

TEST(AgentServer, SubscriptionToUnknownFunctionFails) {
  World w;
  auto agent = w.make_agent({1, 10, e2ap::NodeType::gnb},
                            std::make_shared<StubFunction>(200));
  pump_until(w.reactor, [&] { return w.server.ran_db().num_agents() == 1; });

  bool failed = false;
  server::SubCallbacks cbs;
  cbs.on_failure = [&](const e2ap::SubscriptionFailure& fail) {
    failed = true;
    EXPECT_EQ(fail.cause.group, e2ap::Cause::Group::ric);
  };
  auto handle =
      w.server.subscribe(1, 999, {}, {{1, e2ap::ActionType::report, {}}}, cbs);
  ASSERT_TRUE(handle.is_ok());
  ASSERT_TRUE(pump_until(w.reactor, [&] { return failed; }));
}

TEST(AgentServer, ControlAckCarriesOutcome) {
  World w;
  auto fn = std::make_shared<StubFunction>(200);
  auto agent = w.make_agent({1, 10, e2ap::NodeType::gnb}, fn);
  pump_until(w.reactor, [&] { return w.server.ran_db().num_agents() == 1; });

  Buffer outcome;
  server::CtrlCallbacks cbs;
  cbs.on_ack = [&](const e2ap::ControlAck& ack) { outcome = ack.outcome; };
  ASSERT_TRUE(
      w.server.send_control(1, 200, Buffer{1}, Buffer{5, 6, 7}, cbs).is_ok());
  ASSERT_TRUE(pump_until(w.reactor, [&] { return !outcome.empty(); }));
  EXPECT_EQ(outcome, (Buffer{5, 6, 7}));  // StubFunction echoes the message
  EXPECT_EQ(fn->controls, 1);
}

TEST(AgentServer, ControlToUnknownFunctionFails) {
  World w;
  auto agent = w.make_agent({1, 10, e2ap::NodeType::gnb},
                            std::make_shared<StubFunction>(200));
  pump_until(w.reactor, [&] { return w.server.ran_db().num_agents() == 1; });
  bool failed = false;
  server::CtrlCallbacks cbs;
  cbs.on_failure = [&](const e2ap::ControlFailure&) { failed = true; };
  (void)w.server.send_control(1, 999, {}, {}, cbs);
  ASSERT_TRUE(pump_until(w.reactor, [&] { return failed; }));
}

TEST(AgentServer, CuDuAgentsMergeIntoOneRanEntity) {
  struct Watcher : server::IApp {
    const char* name() const override { return "watcher"; }
    void on_ran_formed(const server::RanEntity& e) override {
      formed++;
      last = e;
    }
    int formed = 0;
    server::RanEntity last;
  };
  World w;
  auto watcher = std::make_shared<Watcher>();
  w.server.add_iapp(watcher);

  auto cu = w.make_agent({1, 55, e2ap::NodeType::cu},
                         std::make_shared<StubFunction>(201));
  pump(w.reactor, 20);
  EXPECT_EQ(watcher->formed, 0);  // CU alone is not a complete RAN
  auto du = w.make_agent({1, 55, e2ap::NodeType::du},
                         std::make_shared<StubFunction>(202));
  ASSERT_TRUE(pump_until(w.reactor, [&] { return watcher->formed == 1; }));
  EXPECT_TRUE(watcher->last.complete());
  EXPECT_TRUE(watcher->last.cu.has_value());
  EXPECT_TRUE(watcher->last.du.has_value());
  EXPECT_EQ(watcher->last.agents().size(), 2u);

  const auto* entity = w.server.ran_db().entity(1, 55);
  ASSERT_NE(entity, nullptr);
  EXPECT_TRUE(entity->complete());
}

TEST(AgentServer, MonolithicNodeIsImmediatelyComplete) {
  struct Watcher : server::IApp {
    const char* name() const override { return "watcher"; }
    void on_ran_formed(const server::RanEntity&) override { formed++; }
    int formed = 0;
  };
  World w;
  auto watcher = std::make_shared<Watcher>();
  w.server.add_iapp(watcher);
  auto agent = w.make_agent({1, 77, e2ap::NodeType::enb},
                            std::make_shared<StubFunction>(200));
  ASSERT_TRUE(pump_until(w.reactor, [&] { return watcher->formed == 1; }));
}

// ---------------------------------------------------------------------------
// RanDb churn: agents leaving and re-joining (disaggregated deployments
// restart CU/DU independently; the DB must track completeness both ways)
// ---------------------------------------------------------------------------

server::AgentInfo db_agent(server::AgentId id, std::uint32_t plmn,
                           std::uint32_t nb_id, e2ap::NodeType type) {
  server::AgentInfo info;
  info.id = id;
  info.node.plmn = plmn;
  info.node.nb_id = nb_id;
  info.node.type = type;
  info.connected = true;
  return info;
}

TEST(RanDb, CuDuRemoveAndReaddTransitionsCompleteness) {
  server::RanDb db;
  EXPECT_FALSE(db.add_agent(db_agent(1, 1, 55, e2ap::NodeType::cu)));
  EXPECT_TRUE(db.add_agent(db_agent(2, 1, 55, e2ap::NodeType::du)));

  // DU restart: entity survives but is no longer complete...
  db.remove_agent(2);
  const auto* e = db.entity(1, 55);
  ASSERT_NE(e, nullptr);
  EXPECT_FALSE(e->complete());
  EXPECT_FALSE(e->du.has_value());
  EXPECT_EQ(db.num_agents(), 1u);

  // ...and the DU re-joining (new agent id) completes it again.
  EXPECT_TRUE(db.add_agent(db_agent(3, 1, 55, e2ap::NodeType::du)));
  e = db.entity(1, 55);
  ASSERT_NE(e, nullptr);
  EXPECT_TRUE(e->complete());
  EXPECT_EQ(e->du, std::optional<server::AgentId>{3});

  // Removing every part erases the entity entirely.
  db.remove_agent(1);
  db.remove_agent(3);
  EXPECT_EQ(db.entity(1, 55), nullptr);
  EXPECT_EQ(db.num_agents(), 0u);
  EXPECT_TRUE(db.entities().empty());
}

TEST(RanDb, MonolithicRemoveAndReadd) {
  server::RanDb db;
  EXPECT_TRUE(db.add_agent(db_agent(7, 1, 9, e2ap::NodeType::gnb)));
  db.remove_agent(7);
  EXPECT_EQ(db.entity(1, 9), nullptr);
  EXPECT_EQ(db.agent(7), nullptr);
  // Re-add fires the completeness transition again.
  EXPECT_TRUE(db.add_agent(db_agent(7, 1, 9, e2ap::NodeType::gnb)));
  ASSERT_NE(db.entity(1, 9), nullptr);
  EXPECT_TRUE(db.entity(1, 9)->complete());
}

TEST(RanDb, AgentIdReuseAfterDisconnectBindsToNewNode) {
  server::RanDb db;
  ASSERT_FALSE(db.add_agent(db_agent(7, 1, 5, e2ap::NodeType::cu)));
  db.remove_agent(7);
  // The transport layer may hand a later, different agent the same id.
  ASSERT_FALSE(db.add_agent(db_agent(7, 2, 9, e2ap::NodeType::du)));
  EXPECT_EQ(db.entity(1, 5), nullptr);  // old entity fully cleaned up
  const auto* e = db.entity(2, 9);
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->du, std::optional<server::AgentId>{7});
  ASSERT_NE(db.agent(7), nullptr);
  EXPECT_EQ(db.agent(7)->node.plmn, 2u);
  EXPECT_EQ(db.agent(7)->node.type, e2ap::NodeType::du);
}

TEST(RanDb, RemoveUnknownAgentIsNoOp) {
  server::RanDb db;
  ASSERT_TRUE(db.add_agent(db_agent(1, 1, 1, e2ap::NodeType::enb)));
  db.remove_agent(99);
  EXPECT_EQ(db.num_agents(), 1u);
  ASSERT_NE(db.entity(1, 1), nullptr);
}

TEST(AgentServer, AgentsWithFunctionQuery) {
  World w;
  auto a1 = w.make_agent({1, 1, e2ap::NodeType::gnb},
                         std::make_shared<StubFunction>(200));
  auto a2 = w.make_agent({1, 2, e2ap::NodeType::gnb},
                         std::make_shared<StubFunction>(201));
  pump_until(w.reactor, [&] { return w.server.ran_db().num_agents() == 2; });
  EXPECT_EQ(w.server.ran_db().agents_with_function(200).size(), 1u);
  EXPECT_EQ(w.server.ran_db().agents_with_function(201).size(), 1u);
  EXPECT_TRUE(w.server.ran_db().agents_with_function(999).empty());
}

// ---------------------------------------------------------------------------
// Multi-controller support at the agent (§4.1.2)
// ---------------------------------------------------------------------------

TEST(MultiController, AgentServesTwoControllers) {
  Reactor reactor;
  server::E2Server ctrl_a(reactor, {1, WireFormat::flat});
  server::E2Server ctrl_b(reactor, {2, WireFormat::flat});
  auto fn = std::make_shared<StubFunction>(200);
  agent::E2Agent agent(reactor, {{1, 10, e2ap::NodeType::gnb},
                                 WireFormat::flat});
  ASSERT_TRUE(agent.register_function(fn).is_ok());

  auto [a1, s1] = LocalTransport::make_pair(reactor);
  ctrl_a.attach(s1);
  ASSERT_TRUE(agent.add_controller(a1).is_ok());
  auto [a2, s2] = LocalTransport::make_pair(reactor);
  ctrl_b.attach(s2);
  ASSERT_TRUE(agent.add_controller(a2).is_ok());

  ASSERT_TRUE(pump_until(reactor, [&] {
    return ctrl_a.ran_db().num_agents() == 1 &&
           ctrl_b.ran_db().num_agents() == 1;
  }));
  EXPECT_EQ(agent.num_controllers(), 2u);
}

TEST(MultiController, UeVisibilityDefaultsToFirstController) {
  Reactor reactor;
  agent::E2Agent agent(reactor, {{1, 10, e2ap::NodeType::gnb},
                                 WireFormat::flat});
  // First controller (id 0) sees every UE; others only associated ones.
  EXPECT_TRUE(agent.ue_visible(100, 0));
  EXPECT_FALSE(agent.ue_visible(100, 1));
  agent.associate_ue(100, 1);
  EXPECT_TRUE(agent.ue_visible(100, 1));
  agent.dissociate_ue(100, 1);
  EXPECT_FALSE(agent.ue_visible(100, 1));
  agent.associate_ue(100, 1);
  agent.remove_ue(100);
  EXPECT_FALSE(agent.ue_visible(100, 1));
  EXPECT_TRUE(agent.ue_visible(100, 0));  // primary always sees
}

TEST(MultiController, ControllerDetachClearsFunctionsState) {
  Reactor reactor;
  server::E2Server ctrl(reactor, {1, WireFormat::flat});
  auto fn = std::make_shared<StubFunction>(200);
  agent::E2Agent agent(reactor, {{1, 10, e2ap::NodeType::gnb},
                                 WireFormat::flat});
  (void)agent.register_function(fn);
  auto [a1, s1] = LocalTransport::make_pair(reactor);
  ctrl.attach(s1);
  auto id = agent.add_controller(a1);
  ASSERT_TRUE(id.is_ok());
  pump_until(reactor, [&] { return ctrl.ran_db().num_agents() == 1; });
  agent.remove_controller(*id);
  EXPECT_EQ(agent.num_controllers(), 0u);
  EXPECT_EQ(agent.state(*id), agent::ConnState::closed);
}

// ---------------------------------------------------------------------------
// Over real TCP, with the PER codec (full O-RAN-style stack)
// ---------------------------------------------------------------------------

TEST(AgentServer, WorksOverTcpWithPerCodec) {
  Reactor reactor;
  server::E2Server server(reactor, {21, WireFormat::per});
  ASSERT_TRUE(server.listen(0).is_ok());

  auto fn = std::make_shared<StubFunction>(200);
  agent::E2Agent agent(reactor, {{1, 10, e2ap::NodeType::gnb},
                                 WireFormat::per});
  (void)agent.register_function(fn);
  auto conn = TcpTransport::connect(reactor, "127.0.0.1", server.port());
  ASSERT_TRUE(conn.is_ok());
  ASSERT_TRUE(
      agent.add_controller(std::shared_ptr<MsgTransport>(std::move(*conn)))
          .is_ok());

  ASSERT_TRUE(pump_until(reactor,
                         [&] { return server.ran_db().num_agents() == 1; }));

  Buffer outcome;
  server::CtrlCallbacks cbs;
  cbs.on_ack = [&](const e2ap::ControlAck& ack) { outcome = ack.outcome; };
  server::AgentId aid = server.ran_db().agents().front();
  (void)server.send_control(aid, 200, {}, Buffer{1, 2, 3}, cbs);
  ASSERT_TRUE(pump_until(reactor, [&] { return !outcome.empty(); }));
  EXPECT_EQ(outcome, (Buffer{1, 2, 3}));
}

// ---------------------------------------------------------------------------
// Agent churn during in-flight control transactions
// ---------------------------------------------------------------------------

// An agent that vanishes while control requests are in flight must fail
// exactly those transactions — synthetic ControlFailure with a transport
// cause, no callback left dangling — while transactions towards other agents
// proceed untouched.
TEST(AgentServer, AgentChurnFailsOnlyItsInflightControls) {
  World w;

  // Agent 1: wired manually so the test holds its transport end.
  auto fn1 = std::make_shared<StubFunction>(200);
  auto agent1 = std::make_unique<agent::E2Agent>(
      w.reactor,
      agent::E2Agent::Config{{1, 10, e2ap::NodeType::gnb}, WireFormat::flat});
  ASSERT_TRUE(agent1->register_function(fn1).is_ok());
  auto [a_side, s_side] = LocalTransport::make_pair(w.reactor);
  w.server.attach(s_side);
  ASSERT_TRUE(agent1->add_controller(a_side).is_ok());

  // Agent 2: healthy bystander.
  auto fn2 = std::make_shared<StubFunction>(201);
  auto agent2 = w.make_agent({1, 11, e2ap::NodeType::gnb}, fn2);
  ASSERT_TRUE(pump_until(w.reactor,
                         [&] { return w.server.ran_db().num_agents() == 2; }));

  int failed = 0;
  std::vector<e2ap::Cause::Group> groups;
  for (int i = 0; i < 3; ++i) {
    server::CtrlCallbacks cbs;
    cbs.on_ack = [](const e2ap::ControlAck&) {
      FAIL() << "ack for a control that died with the link";
    };
    cbs.on_failure = [&](const e2ap::ControlFailure& f) {
      failed++;
      groups.push_back(f.cause.group);
    };
    ASSERT_TRUE(w.server
                    .send_control(1, 200, Buffer{1},
                                  Buffer{static_cast<std::uint8_t>(i)},
                                  std::move(cbs))
                    .is_ok());
  }
  Buffer outcome2;
  server::CtrlCallbacks cbs2;
  cbs2.on_ack = [&](const e2ap::ControlAck& ack) { outcome2 = ack.outcome; };
  ASSERT_TRUE(
      w.server.send_control(2, 201, Buffer{1}, Buffer{9}, cbs2).is_ok());
  ASSERT_EQ(w.server.num_inflight_controls(), 4u);

  // Cut agent 1's link before any request is delivered.
  a_side->close();
  ASSERT_TRUE(pump_until(w.reactor, [&] { return failed == 3; }));
  EXPECT_EQ(fn1->controls, 0);  // requests died with the link
  for (auto g : groups) EXPECT_EQ(g, e2ap::Cause::Group::transport);

  // The bystander's transaction completes normally.
  ASSERT_TRUE(pump_until(w.reactor, [&] { return !outcome2.empty(); }));
  EXPECT_EQ(outcome2, (Buffer{9}));
  EXPECT_EQ(w.server.num_inflight_controls(), 0u);
  EXPECT_GE(w.server.stats().ctrls_failed_on_loss, 3u);
}

// Churn in the opposite phase: the request reached the agent, the ack is on
// its way back, and the link dies first. The transaction still resolves via
// on_failure — exactly once, never twice.
TEST(AgentServer, LateAckAfterChurnDoesNotDoubleResolve) {
  World w;
  auto fn = std::make_shared<StubFunction>(200);
  auto agent = std::make_unique<agent::E2Agent>(
      w.reactor,
      agent::E2Agent::Config{{1, 10, e2ap::NodeType::gnb}, WireFormat::flat});
  ASSERT_TRUE(agent->register_function(fn).is_ok());
  auto [a_side, s_side] = LocalTransport::make_pair(w.reactor);
  w.server.attach(s_side);
  ASSERT_TRUE(agent->add_controller(a_side).is_ok());
  ASSERT_TRUE(pump_until(w.reactor,
                         [&] { return w.server.ran_db().num_agents() == 1; }));

  int resolved = 0;
  server::CtrlCallbacks cbs;
  cbs.on_ack = [&](const e2ap::ControlAck&) { resolved++; };
  cbs.on_failure = [&](const e2ap::ControlFailure&) { resolved++; };
  ASSERT_TRUE(
      w.server.send_control(1, 200, Buffer{1}, Buffer{5}, std::move(cbs))
          .is_ok());
  // Deliver the request to the agent (it acks immediately)...
  ASSERT_TRUE(pump_until(w.reactor, [&] { return fn->controls == 1; }));
  // ...then cut the link. Depending on timing the ack either made it or
  // died in transit; either way the transaction resolves exactly once.
  a_side->close();
  ASSERT_TRUE(pump_until(w.reactor, [&] { return resolved >= 1; }));
  pump(w.reactor, 30);
  EXPECT_EQ(resolved, 1);
  EXPECT_EQ(w.server.num_inflight_controls(), 0u);
}

}  // namespace
}  // namespace flexric
