// Traffic-control chain tests: classifier, queues, schedulers, BDP pacer,
// conservation properties, runtime reconfiguration.
#include <gtest/gtest.h>

#include "ran/rlc.hpp"
#include "tc/chain.hpp"

namespace flexric::tc {
namespace {

ran::Packet pkt(std::uint32_t size, std::uint16_t dst_port = 0,
                std::uint8_t proto = 17, std::uint64_t flow = 1) {
  ran::Packet p;
  p.size_bytes = size;
  p.tuple.dst_port = dst_port;
  p.tuple.proto = proto;
  p.flow_id = flow;
  return p;
}

QueueConf fifo(std::uint32_t qid, std::uint32_t limit = 1 << 20) {
  QueueConf q;
  q.qid = qid;
  q.kind = QueueKind::fifo;
  q.limit_bytes = limit;
  return q;
}

FilterConf filter_port(std::uint32_t id, std::uint16_t port,
                       std::uint32_t qid, std::uint8_t prec = 0) {
  FilterConf f;
  f.filter_id = id;
  f.match.dst_port = port;
  f.dst_qid = qid;
  f.precedence = prec;
  return f;
}

// ---------------------------------------------------------------------------
// Transparent mode
// ---------------------------------------------------------------------------

TEST(TcChain, TransparentModeMovesEverythingToRlc) {
  TcChain chain;
  ran::RlcEntity rlc;
  for (int i = 0; i < 50; ++i) ASSERT_TRUE(chain.enqueue(pkt(1000), 0));
  EXPECT_EQ(chain.backlog_bytes(), 50'000u);
  chain.drain(rlc, kMilli, 20.0);
  EXPECT_EQ(chain.backlog_bytes(), 0u);
  EXPECT_EQ(rlc.buffer_bytes(), 50'000u);
  EXPECT_EQ(chain.pacer_rate_mbps(), 0.0);  // unpaced
}

TEST(TcChain, StartsWithSingleDefaultQueue) {
  TcChain chain;
  EXPECT_EQ(chain.num_queues(), 1u);
  auto stats = chain.stats_snapshot(false);
  ASSERT_EQ(stats.size(), 1u);
  EXPECT_EQ(stats[0].qid, 0u);
}

// ---------------------------------------------------------------------------
// Control plane
// ---------------------------------------------------------------------------

TEST(TcChain, AddDelQueue) {
  TcChain chain;
  EXPECT_TRUE(chain.add_queue(fifo(1)).is_ok());
  EXPECT_EQ(chain.num_queues(), 2u);
  EXPECT_FALSE(chain.add_queue(fifo(1)).is_ok());  // duplicate
  EXPECT_TRUE(chain.del_queue(1).is_ok());
  EXPECT_FALSE(chain.del_queue(1).is_ok());   // gone
  EXPECT_FALSE(chain.del_queue(0).is_ok());   // default is permanent
}

TEST(TcChain, NonEmptyQueueCannotBeDeleted) {
  TcChain chain;
  (void)chain.add_queue(fifo(1));
  (void)chain.add_filter(filter_port(1, 5000, 1));
  chain.enqueue(pkt(100, 5000), 0);
  EXPECT_FALSE(chain.del_queue(1).is_ok());
}

TEST(TcChain, FilterRequiresExistingQueue) {
  TcChain chain;
  EXPECT_FALSE(chain.add_filter(filter_port(1, 5000, 9)).is_ok());
  (void)chain.add_queue(fifo(9));
  EXPECT_TRUE(chain.add_filter(filter_port(1, 5000, 9)).is_ok());
  EXPECT_FALSE(chain.add_filter(filter_port(1, 6000, 9)).is_ok());  // dup id
  EXPECT_TRUE(chain.del_filter(1).is_ok());
  EXPECT_FALSE(chain.del_filter(1).is_ok());
}

TEST(TcChain, DeletingQueueDropsItsFilters) {
  TcChain chain;
  (void)chain.add_queue(fifo(1));
  (void)chain.add_filter(filter_port(1, 5000, 1));
  ASSERT_TRUE(chain.del_queue(1).is_ok());
  // Packets for port 5000 now land in the default queue.
  ASSERT_TRUE(chain.enqueue(pkt(100, 5000), 0));
  auto stats = chain.stats_snapshot(false);
  ASSERT_EQ(stats.size(), 1u);
  EXPECT_EQ(stats[0].backlog_pkts, 1u);
}

// ---------------------------------------------------------------------------
// Classifier
// ---------------------------------------------------------------------------

TEST(Classifier, FiveTupleExactAndWildcard) {
  TcChain chain;
  (void)chain.add_queue(fifo(1));
  (void)chain.add_queue(fifo(2));
  (void)chain.add_filter(filter_port(1, 5000, 1));
  FilterConf any_udp;
  any_udp.filter_id = 2;
  any_udp.match.proto = 17;  // all UDP
  any_udp.dst_qid = 2;
  any_udp.precedence = 10;  // after the port filter
  (void)chain.add_filter(any_udp);

  chain.enqueue(pkt(100, 5000, 17), 0);  // port filter wins
  chain.enqueue(pkt(100, 6000, 17), 0);  // udp wildcard
  chain.enqueue(pkt(100, 6000, 6), 0);   // tcp: default queue

  auto stats = chain.stats_snapshot(false);
  std::map<std::uint32_t, std::uint32_t> backlog;
  for (const auto& s : stats) backlog[s.qid] = s.backlog_pkts;
  EXPECT_EQ(backlog[0], 1u);
  EXPECT_EQ(backlog[1], 1u);
  EXPECT_EQ(backlog[2], 1u);
}

TEST(Classifier, PrecedenceOrdersFilters) {
  TcChain chain;
  (void)chain.add_queue(fifo(1));
  (void)chain.add_queue(fifo(2));
  // Two filters match port 5000; the lower precedence wins.
  (void)chain.add_filter(filter_port(1, 5000, 1, /*prec=*/5));
  (void)chain.add_filter(filter_port(2, 5000, 2, /*prec=*/1));
  chain.enqueue(pkt(100, 5000), 0);
  for (const auto& s : chain.stats_snapshot(false)) {
    if (s.qid == 2) EXPECT_EQ(s.backlog_pkts, 1u);
    if (s.qid == 1) EXPECT_EQ(s.backlog_pkts, 0u);
  }
}

// ---------------------------------------------------------------------------
// Queues
// ---------------------------------------------------------------------------

TEST(TcQueue, FifoLimitDrops) {
  TcChain chain;
  (void)chain.add_queue(fifo(1, /*limit=*/2'000));
  (void)chain.add_filter(filter_port(1, 5000, 1));
  EXPECT_TRUE(chain.enqueue(pkt(1000, 5000), 0));
  EXPECT_TRUE(chain.enqueue(pkt(1000, 5000), 0));
  EXPECT_FALSE(chain.enqueue(pkt(1000, 5000), 0));
  for (const auto& s : chain.stats_snapshot(false))
    if (s.qid == 1) EXPECT_EQ(s.dropped_pkts, 1u);
}

TEST(TcQueue, SojournMeasuredAtDequeue) {
  TcChain chain;
  ran::RlcEntity rlc;
  chain.enqueue(pkt(100), 0);
  chain.drain(rlc, 30 * kMilli, 10.0);
  auto stats = chain.stats_snapshot(true);
  EXPECT_DOUBLE_EQ(stats[0].sojourn_avg_ms, 30.0);
  EXPECT_DOUBLE_EQ(stats[0].sojourn_max_ms, 30.0);
}

TEST(TcQueue, ConservationEnqueuedEqualsDequeuedPlusBacklogPlusDrops) {
  TcChain chain;
  (void)chain.add_queue(fifo(1, 5'000));
  (void)chain.add_filter(filter_port(1, 5000, 1));
  ran::RlcEntity rlc;
  std::uint64_t offered = 0, accepted = 0;
  Nanos now = 0;
  for (int t = 0; t < 100; ++t) {
    now += kMilli;
    for (int k = 0; k < 3; ++k) {
      offered++;
      if (chain.enqueue(pkt(500, 5000), now)) accepted++;
    }
    if (t % 2 == 0) chain.drain(rlc, now, 5.0);
  }
  chain.drain(rlc, now, 5.0);
  auto stats = chain.stats_snapshot(false);
  std::uint64_t dequeued = 0, backlog = 0, dropped = 0;
  for (const auto& s : stats) {
    dequeued += s.tx_pkts;
    backlog += s.backlog_pkts;
    dropped += s.dropped_pkts;
  }
  EXPECT_EQ(accepted + dropped, offered);
  EXPECT_EQ(dequeued + backlog, accepted);
}

TEST(TcQueue, CodelDropsPersistentlyLatePackets) {
  TcChain chain;
  QueueConf q;
  q.qid = 1;
  q.kind = QueueKind::codel;
  (void)chain.add_queue(q);
  (void)chain.add_filter(filter_port(1, 5000, 1));
  ran::RlcEntity rlc(1'000'000);
  // Continuous overload: offer 2 pkt/ms while the pacer releases ~1 pkt/ms.
  // The queue stays persistently above the CoDel target, so after the
  // CoDel interval (100 ms) stale heads start getting dropped.
  chain.set_pacer({PacerKind::bdp, 1.0, 1.0});
  Nanos now = 0;
  std::uint64_t drops = 0;
  for (int t = 0; t < 500; ++t) {
    now += kMilli;
    chain.enqueue(pkt(1000, 5000), now);
    chain.enqueue(pkt(1000, 5000), now);
    chain.drain(rlc, now, 8.0);  // ~1000 B/ms budget
    rlc.pull(1'000, now, nullptr);
  }
  for (const auto& s : chain.stats_snapshot(false))
    if (s.qid == 1) drops = s.dropped_pkts;
  EXPECT_GT(drops, 0u);
}

// ---------------------------------------------------------------------------
// Schedulers
// ---------------------------------------------------------------------------

TEST(TcSched, RrAlternatesBetweenQueues) {
  TcChain chain;
  (void)chain.add_queue(fifo(1));
  (void)chain.add_filter(filter_port(1, 5000, 1));
  chain.set_sched({SchedKind::rr, {}});
  Nanos now = 0;
  for (int i = 0; i < 10; ++i) {
    chain.enqueue(pkt(100, 1111, 17, /*flow=*/1), now);  // default queue
    chain.enqueue(pkt(100, 5000, 17, /*flow=*/2), now);  // queue 1
  }
  ran::RlcEntity rlc;
  chain.drain(rlc, now, 10.0);
  // All 20 packets reach RLC; both queues served.
  EXPECT_EQ(rlc.buffer_pkts(), 20u);
  for (const auto& s : chain.stats_snapshot(false))
    EXPECT_EQ(s.tx_pkts, 10u);
}

TEST(TcSched, PrioServesLowQidFirst) {
  TcChain chain;
  (void)chain.add_queue(fifo(1));
  (void)chain.add_filter(filter_port(1, 5000, 1));
  chain.set_sched({SchedKind::prio, {}});
  chain.set_pacer({PacerKind::bdp, 1.0, 1.0});
  Nanos now = kMilli;
  for (int i = 0; i < 5; ++i) {
    chain.enqueue(pkt(400, 1111), now);  // q0 (higher prio)
    chain.enqueue(pkt(400, 5000), now);  // q1
  }
  ran::RlcEntity rlc;
  // Pacer budget limits the drain: only q0 packets should move first.
  chain.drain(rlc, now, 8.0);  // 8 Mbps * 1ms = 1000 B budget -> ~2-3 pkts
  auto stats = chain.stats_snapshot(false);
  for (const auto& s : stats) {
    if (s.qid == 0) EXPECT_GT(s.tx_pkts, 0u);
    if (s.qid == 1) EXPECT_EQ(s.tx_pkts, 0u);
  }
}

// ---------------------------------------------------------------------------
// BDP pacer
// ---------------------------------------------------------------------------

TEST(Pacer, KeepsRlcBacklogNearTarget) {
  TcChain chain;
  chain.set_pacer({PacerKind::bdp, 5.0, 1.0});
  ran::RlcEntity rlc;
  const double rate_mbps = 20.0;
  // target = 20 Mbps * 5 ms = 12.5 KB
  Nanos now = 0;
  for (int t = 0; t < 200; ++t) {
    now += kMilli;
    for (int k = 0; k < 10; ++k) chain.enqueue(pkt(1400), now);
    chain.drain(rlc, now, rate_mbps);
    // downstream serves 20 Mbps = 2500 B/ms
    rlc.pull(2'500, now, nullptr);
  }
  double target_bytes = rate_mbps * 1e6 / 8.0 * 0.005;
  EXPECT_LT(rlc.buffer_bytes(), 2.0 * target_bytes);
  EXPECT_GT(chain.backlog_bytes(), 0u);  // excess backlogged in TC
  EXPECT_NEAR(chain.pacer_rate_mbps(), rate_mbps, 0.1);
}

TEST(Pacer, DoesNotStarveDownstream) {
  TcChain chain;
  chain.set_pacer({PacerKind::bdp, 5.0, 1.0});
  ran::RlcEntity rlc;
  Nanos now = 0;
  std::uint64_t served = 0;
  for (int t = 0; t < 500; ++t) {
    now += kMilli;
    for (int k = 0; k < 3; ++k) chain.enqueue(pkt(1400), now);
    chain.drain(rlc, now, 20.0);
    std::uint32_t used = 0;
    rlc.pull(2'500, now, &used);
    served += used;
  }
  // 20 Mbps for 0.5 s = 1.25 MB; offered 3*1400*500 = 2.1 MB > capacity.
  // The link must stay ~fully utilized despite pacing.
  EXPECT_GT(served, 1'100'000u);
}

TEST(Pacer, DropHandlerFiresOnRlcOverflow) {
  TcChain chain;
  int drops = 0;
  chain.set_drop_handler([&](const ran::Packet&) { drops++; });
  ran::RlcEntity rlc(1'000);  // tiny
  for (int i = 0; i < 10; ++i) chain.enqueue(pkt(500), 0);
  chain.drain(rlc, kMilli, 10.0);  // transparent: pushes all -> overflow
  EXPECT_EQ(drops, 8);
  EXPECT_EQ(rlc.buffer_bytes(), 1'000u);
}

TEST(Pacer, DisablingPacerRestoresTransparentMode) {
  TcChain chain;
  chain.set_pacer({PacerKind::bdp, 5.0, 1.0});
  chain.set_pacer({PacerKind::none, 0, 0});
  ran::RlcEntity rlc;
  for (int i = 0; i < 20; ++i) chain.enqueue(pkt(1000), 0);
  chain.drain(rlc, kMilli, 1.0);
  EXPECT_EQ(rlc.buffer_pkts(), 20u);
}

}  // namespace
}  // namespace flexric::tc
