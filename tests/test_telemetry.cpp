// Telemetry subsystem tests: quantile sketch error bounds, rollup-vs-naive
// recomputation properties, store budget/eviction, windowed queries, the
// ingestion adapter (decoded + raw wire modes), Monitor integration, and the
// northbound REST endpoints.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <thread>

#include "agent/agent.hpp"
#include "common/rng.hpp"
#include "ctrl/json.hpp"
#include "ctrl/monitor.hpp"
#include "ctrl/rest.hpp"
#include "ctrl/telemetry_rest.hpp"
#include "e2sm/serde.hpp"
#include "helpers.hpp"
#include "ran/functions.hpp"
#include "telemetry/ingest.hpp"
#include "telemetry/store.hpp"

namespace flexric::telemetry {
namespace {

using test::pump;
using test::pump_until;

constexpr WireFormat kFmt = WireFormat::flat;

// ---------------------------------------------------------------------------
// QuantileSketch
// ---------------------------------------------------------------------------

TEST(Sketch, EmptyQuantileIsZero) {
  QuantileSketch s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.quantile(0.5), 0.0);
}

TEST(Sketch, BucketRoundTripWithinRelativeError) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    double v = rng.uniform(0.01, 1e6);
    if (v < QuantileSketch::kMinValue) continue;
    double rep = QuantileSketch::bucket_value(QuantileSketch::bucket_of(v));
    EXPECT_LE(std::abs(rep - v), v * QuantileSketch::kRelativeError + 1e-12)
        << "v=" << v;
  }
}

TEST(Sketch, SingleValueQuantiles) {
  QuantileSketch s;
  s.record(42.0);
  for (double q : {0.0, 0.5, 0.99, 1.0}) {
    EXPECT_NEAR(s.quantile(q), 42.0, 42.0 * QuantileSketch::kRelativeError);
  }
}

TEST(Sketch, QuantileWithinErrorOfExact) {
  Rng rng(13);
  QuantileSketch s;
  std::vector<double> values;
  for (int i = 0; i < 5000; ++i) {
    double v = rng.uniform(1.0, 10000.0);
    values.push_back(v);
    s.record(v);
  }
  std::sort(values.begin(), values.end());
  for (double q : {0.01, 0.25, 0.5, 0.75, 0.95, 0.99}) {
    double exact =
        values[static_cast<std::size_t>(q * (values.size() - 1))];
    EXPECT_NEAR(s.quantile(q), exact,
                exact * QuantileSketch::kRelativeError + 1e-9)
        << "q=" << q;
  }
}

TEST(Sketch, MergeEqualsRecordingEverything) {
  Rng rng(29);
  QuantileSketch a, b, all;
  for (int i = 0; i < 2000; ++i) {
    double v = rng.uniform(0.5, 500.0);
    all.record(v);
    (i % 2 == 0 ? a : b).record(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  for (double q : {0.1, 0.5, 0.9, 0.99}) {
    EXPECT_DOUBLE_EQ(a.quantile(q), all.quantile(q)) << "q=" << q;
  }
}

TEST(Sketch, OutOfRangeValuesClampToEdgeBuckets) {
  QuantileSketch s;
  s.record(1e-9);   // underflow bucket -> reported as 0
  s.record(-5.0);   // negatives -> underflow bucket
  EXPECT_EQ(s.quantile(0.5), 0.0);
  QuantileSketch t;
  t.record(1e30);   // overflow bucket -> clamped to kMaxValue
  EXPECT_DOUBLE_EQ(t.quantile(0.5), QuantileSketch::kMaxValue);
}

TEST(Sketch, SaturatedBucketStillAnswers) {
  QuantileSketch s;
  for (int i = 0; i < 70000; ++i) s.record(8.0);  // u16 saturates at 65535
  EXPECT_EQ(s.count(), 70000u);
  EXPECT_NEAR(s.quantile(0.999), 8.0, 8.0 * QuantileSketch::kRelativeError);
}

TEST(Sketch, ClearResets) {
  QuantileSketch s;
  s.record(3.0);
  s.clear();
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.quantile(0.5), 0.0);
}

// ---------------------------------------------------------------------------
// TimeSeries: rollups exactly match naive recomputation
// ---------------------------------------------------------------------------

struct NaiveBucket {
  std::uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;
  std::vector<double> values;
};

NaiveBucket naive_window(const std::vector<RawSample>& log, Nanos t0,
                         Nanos t1) {
  NaiveBucket b;
  for (const auto& s : log) {
    if (s.t < t0 || s.t >= t1) continue;
    if (b.count == 0) {
      b.min = s.v;
      b.max = s.v;
    }
    b.count++;
    b.sum += s.v;
    b.min = std::min(b.min, s.v);
    b.max = std::max(b.max, s.v);
    b.values.push_back(s.v);
  }
  std::sort(b.values.begin(), b.values.end());
  return b;
}

double naive_quantile(const NaiveBucket& b, double q) {
  if (b.values.empty()) return 0.0;
  return b.values[static_cast<std::size_t>(q * (b.values.size() - 1))];
}

// The central property: every retained rollup (both tiers, closed and open)
// carries exactly the count/sum/min/max a naive recomputation over the full
// sample log produces, and its sketch quantiles are within the documented
// relative error of the exact quantiles. Integer-valued samples make the
// floating-point sums associativity-proof, so equality is exact.
TEST(TimeSeries, RollupsMatchNaiveRecomputation) {
  Rng rng(47);
  SeriesLayout layout;
  TimeSeries series(layout);
  std::vector<RawSample> log;
  Nanos t = 0;
  for (int i = 0; i < 5000; ++i) {
    t += kMilli;
    auto v = static_cast<double>(1 + rng.bounded(1000));
    series.push(t, v);
    log.push_back({t, v});
  }

  for (int tier : {1, 2}) {
    Nanos width = tier == 1 ? layout.tier1_width : layout.tier2_width;
    std::vector<Rollup> rollups =
        series.rollup_range(tier, 0, t + kSecond);
    ASSERT_FALSE(rollups.empty()) << "tier " << tier;
    for (const Rollup& r : rollups) {
      NaiveBucket n = naive_window(log, r.t_start, r.t_start + width);
      ASSERT_EQ(r.count, n.count) << "tier " << tier << " t=" << r.t_start;
      EXPECT_EQ(r.sum, n.sum) << "tier " << tier << " t=" << r.t_start;
      EXPECT_EQ(r.min, n.min);
      EXPECT_EQ(r.max, n.max);
      EXPECT_EQ(r.sketch.count(), n.count);
      for (double q : {0.5, 0.95, 0.99}) {
        double exact = naive_quantile(n, q);
        EXPECT_NEAR(r.sketch.quantile(q), exact,
                    exact * QuantileSketch::kRelativeError + 1e-9)
            << "tier " << tier << " q=" << q;
      }
    }
  }
}

TEST(TimeSeries, RawRingWrapsButRollupsRetainHistory) {
  SeriesLayout layout;
  layout.raw_capacity = 64;
  TimeSeries series(layout);
  for (int i = 0; i < 1000; ++i)
    series.push((i + 1) * kMilli, static_cast<double>(i));
  EXPECT_EQ(series.total_samples(), 1000u);
  EXPECT_EQ(series.raw_count(), 64u);
  // Raw retains only the tail...
  EXPECT_EQ(series.oldest_raw_t(), (1000 - 64 + 1) * kMilli);
  // ...but tier1 still covers the overwritten window.
  std::uint64_t rolled = 0;
  for (const Rollup& r : series.rollup_range(1, 0, 2 * kSecond))
    rolled += r.count;
  EXPECT_EQ(rolled, 1000u);
}

TEST(TimeSeries, CascadeDegradesTier1IntoTier2) {
  SeriesLayout layout;
  layout.tier1_capacity = 8;  // tier1 wraps quickly
  TimeSeries series(layout);
  // 30 s of samples at 10 ms: 3000 samples, 300 tier1 buckets, 30 tier2.
  for (int i = 0; i < 3000; ++i)
    series.push((i + 1) * 10 * kMilli, 1.0);
  EXPECT_EQ(series.rollup_count(1), 8u);
  EXPECT_EQ(series.rollup_count(2), 29u);  // 30th is the open bucket
  // Tier2 accounts for everything except the still-open tier1 bucket
  // (samples cascade on tier1 close, and the last sample opened a fresh
  // 100 ms bucket).
  std::uint64_t total = 0;
  for (const Rollup& r : series.rollup_range(2, 0, 31 * kSecond))
    total += r.count;
  EXPECT_EQ(total, 2999u);
  // One far-future sample closes the open buckets; now all 3000 earlier
  // samples are accounted for at tier2 resolution (the flush sample itself
  // sits in the new open tier1 bucket).
  series.push(40 * kSecond, 1.0);
  total = 0;
  for (const Rollup& r : series.rollup_range(2, 0, 41 * kSecond))
    total += r.count;
  EXPECT_EQ(total, 3000u);
}

TEST(TimeSeries, LatestReturnsNewestInOrder) {
  TimeSeries series{SeriesLayout{}};
  for (int i = 1; i <= 20; ++i)
    series.push(i * kMilli, static_cast<double>(i));
  auto tail = series.latest(3);
  ASSERT_EQ(tail.size(), 3u);
  EXPECT_EQ(tail[0].v, 18.0);
  EXPECT_EQ(tail[2].v, 20.0);
  EXPECT_EQ(series.latest(100).size(), 20u);
}

// ---------------------------------------------------------------------------
// TelemetryStore: budget, eviction, queries
// ---------------------------------------------------------------------------

StoreConfig small_store(std::size_t n_series) {
  StoreConfig cfg;
  cfg.layout.raw_capacity = 32;
  cfg.layout.tier1_capacity = 8;
  cfg.layout.tier2_capacity = 8;
  cfg.memory_budget = sizeof(TelemetryStore) +
                      n_series * (cfg.layout.bytes_per_series() + 96);
  return cfg;
}

SeriesKey key_of(AgentId agent, std::uint16_t rnti, Metric m) {
  return SeriesKey{agent, make_entity(rnti), m};
}

TEST(Store, MemoryNeverExceedsBudget) {
  TelemetryStore store(small_store(4));
  for (std::uint16_t rnti = 0; rnti < 50; ++rnti) {
    for (int i = 0; i < 10; ++i) {
      static_cast<void>(
          store.record(key_of(1, rnti, Metric::mac_cqi), i * kMilli, 1.0));
      ASSERT_LE(store.memory_bytes(), store.memory_budget());
    }
  }
  EXPECT_LE(store.num_series(), 4u);
  EXPECT_GT(store.evictions(), 0u);
  EXPECT_EQ(store.dropped_samples(), 0u);  // eviction admits every sample
}

TEST(Store, EvictsLeastRecentlyWritten) {
  TelemetryStore store(small_store(2));
  auto a = key_of(1, 100, Metric::mac_cqi);
  auto b = key_of(1, 101, Metric::mac_cqi);
  auto c = key_of(1, 102, Metric::mac_cqi);
  ASSERT_TRUE(store.record(a, kMilli, 1.0).is_ok());
  ASSERT_TRUE(store.record(b, 2 * kMilli, 1.0).is_ok());
  ASSERT_TRUE(store.record(c, 3 * kMilli, 1.0).is_ok());  // evicts a
  EXPECT_EQ(store.find(a), nullptr);
  EXPECT_NE(store.find(b), nullptr);
  EXPECT_NE(store.find(c), nullptr);
  EXPECT_EQ(store.evictions(), 1u);
}

TEST(Store, RejectsWhenEvictionDisabled) {
  StoreConfig cfg = small_store(2);
  cfg.evict_on_budget = false;
  TelemetryStore store(cfg);
  ASSERT_TRUE(store.record(key_of(1, 1, Metric::mac_cqi), 0, 1.0).is_ok());
  ASSERT_TRUE(store.record(key_of(1, 2, Metric::mac_cqi), 0, 1.0).is_ok());
  Status st = store.record(key_of(1, 3, Metric::mac_cqi), 0, 1.0);
  EXPECT_EQ(st.code(), Errc::capacity);
  EXPECT_EQ(store.num_series(), 2u);
  EXPECT_EQ(store.dropped_samples(), 1u);
  EXPECT_EQ(store.evictions(), 0u);
  // Existing series still accept samples.
  EXPECT_TRUE(store.record(key_of(1, 1, Metric::mac_cqi), kMilli, 2.0).is_ok());
}

TEST(Store, UnknownSeriesIsNotFound) {
  TelemetryStore store(StoreConfig{});
  auto k = key_of(9, 9, Metric::rlc_tx_bytes);
  EXPECT_FALSE(store.raw_range(k, 0, kSecond).is_ok());
  EXPECT_FALSE(store.latest(k, 5).is_ok());
  EXPECT_FALSE(store.rollups(k, 1, 0, kSecond).is_ok());
  EXPECT_FALSE(store.window_aggregate(k, 0, kSecond).is_ok());
  EXPECT_EQ(store.raw_range(k, 0, kSecond).error().code, Errc::not_found);
}

TEST(Store, InvalidTierIsUnsupported) {
  TelemetryStore store(StoreConfig{});
  auto k = key_of(1, 1, Metric::mac_cqi);
  ASSERT_TRUE(store.record(k, kMilli, 1.0).is_ok());
  EXPECT_EQ(store.rollups(k, 3, 0, kSecond).error().code, Errc::unsupported);
}

TEST(Store, RawWindowAggregateIsExact) {
  TelemetryStore store(StoreConfig{});
  auto k = key_of(1, 7, Metric::rlc_sojourn_avg_ms);
  for (int i = 1; i <= 100; ++i)
    ASSERT_TRUE(store.record(k, i * kMilli, static_cast<double>(i)).is_ok());
  auto agg = store.window_aggregate(k, 0, kSecond, QuerySource::raw);
  ASSERT_TRUE(agg.is_ok());
  EXPECT_EQ(agg->source, QuerySource::raw);
  EXPECT_EQ(agg->count, 100u);
  EXPECT_EQ(agg->sum, 5050.0);
  EXPECT_EQ(agg->min, 1.0);
  EXPECT_EQ(agg->max, 100.0);
  EXPECT_DOUBLE_EQ(agg->mean, 50.5);
  EXPECT_EQ(agg->p50, 50.0);
  EXPECT_EQ(agg->p95, 95.0);
  EXPECT_EQ(agg->p99, 99.0);
}

TEST(Store, AutomaticSourcePicksResolutionByWindowAge) {
  StoreConfig cfg;
  cfg.layout.raw_capacity = 512;     // raw: last ~512 ms
  cfg.layout.tier1_capacity = 128;   // tier1: last ~12.8 s
  cfg.layout.tier2_capacity = 128;   // tier2: last ~128 s
  TelemetryStore store(cfg);
  auto k = key_of(1, 1, Metric::mac_bytes_dl);
  Nanos t = 0;
  for (int i = 0; i < 100000; ++i) {  // 100 s at 1 ms
    t += kMilli;
    ASSERT_TRUE(store.record(k, t, 1.0).is_ok());
  }
  // Recent window: raw still covers it.
  auto recent = store.window_aggregate(k, t - 100 * kMilli, t);
  ASSERT_TRUE(recent.is_ok());
  EXPECT_EQ(recent->source, QuerySource::raw);
  EXPECT_EQ(recent->count, 100u);
  // Mid-age window: raw wrapped, tier1 covers it.
  auto mid = store.window_aggregate(k, t - 10 * kSecond, t - 9 * kSecond);
  ASSERT_TRUE(mid.is_ok());
  EXPECT_EQ(mid->source, QuerySource::tier1);
  EXPECT_GT(mid->count, 0u);
  // Ancient window: only tier2 reaches back.
  auto old = store.window_aggregate(k, 0, kSecond);
  ASSERT_TRUE(old.is_ok());
  EXPECT_EQ(old->source, QuerySource::tier2);
  EXPECT_GT(old->count, 0u);
}

TEST(Store, ListSeriesReportsRetention) {
  TelemetryStore store(StoreConfig{});
  ASSERT_TRUE(
      store.record(key_of(1, 5, Metric::mac_cqi), kMilli, 10.0).is_ok());
  ASSERT_TRUE(
      store.record(key_of(2, 6, Metric::rlc_tx_bytes), kMilli, 20.0).is_ok());
  auto infos = store.list_series();
  ASSERT_EQ(infos.size(), 2u);
  EXPECT_EQ(infos[0].key.agent, 1u);
  EXPECT_EQ(infos[0].total_samples, 1u);
  EXPECT_EQ(entity_rnti(infos[1].key.entity), 6);
}

TEST(Store, MetricNamesRoundTrip) {
  for (auto m : {Metric::mac_cqi, Metric::rlc_sojourn_max_ms,
                 Metric::pdcp_discarded_sdus}) {
    auto back = metric_from_name(metric_name(m));
    ASSERT_TRUE(back.is_ok());
    EXPECT_EQ(*back, m);
  }
  EXPECT_FALSE(metric_from_name("bogus_metric").is_ok());
}

TEST(Store, DumpJsonIsValidAndBounded) {
  TelemetryStore store(StoreConfig{});
  auto k = key_of(3, 77, Metric::mac_prbs_dl);
  for (int i = 1; i <= 200; ++i)
    ASSERT_TRUE(store.record(k, i * kMilli, static_cast<double>(i)).is_ok());
  std::string dump = store.dump_json(/*max_raw_per_series=*/8);
  auto parsed = ctrl::Json::parse(dump);
  ASSERT_TRUE(parsed.is_ok()) << dump.substr(0, 200);
  const ctrl::Json& j = *parsed;
  EXPECT_EQ(j["num_series"].as_number(), 1.0);
  EXPECT_EQ(j["total_samples"].as_number(), 200.0);
  ASSERT_EQ(j["series"].as_array().size(), 1u);
  const ctrl::Json& s = j["series"].as_array()[0];
  EXPECT_EQ(s["metric"].as_string(), "mac_prbs_dl");
  EXPECT_EQ(s["raw"].as_array().size(), 8u);  // bounded tail
  // Newest sample last.
  EXPECT_EQ(s["raw"].as_array()[7].as_array()[1].as_number(), 200.0);
}

// ---------------------------------------------------------------------------
// Ingest adapter
// ---------------------------------------------------------------------------

e2sm::mac::IndicationMsg two_ue_mac() {
  e2sm::mac::IndicationMsg msg;
  e2sm::mac::UeStats ue;
  ue.rnti = 100;
  ue.cqi = 12;
  ue.bytes_dl = 1500;
  ue.bsr = 9000;
  msg.ues.push_back(ue);
  ue.rnti = 101;
  ue.cqi = 7;
  msg.ues.push_back(ue);
  return msg;
}

TEST(Ingest, DecodedMacPopulatesCoreSeries) {
  TelemetryStore store(StoreConfig{});
  Ingest ingest(store);
  ingest.mac(1, kMilli, two_ue_mac());
  // 6 core MAC metrics x 2 UEs.
  EXPECT_EQ(store.num_series(), 12u);
  auto latest = store.latest(key_of(1, 100, Metric::mac_cqi), 1);
  ASSERT_TRUE(latest.is_ok());
  ASSERT_EQ(latest->size(), 1u);
  EXPECT_EQ((*latest)[0].v, 12.0);
  EXPECT_EQ((*latest)[0].t, kMilli);
  EXPECT_EQ(ingest.samples_in(), 12u);
}

TEST(Ingest, ExtendedMetricsRecordFullSet) {
  TelemetryStore store(StoreConfig{});
  Ingest ingest(store, IngestConfig{.extended_metrics = true});
  ingest.mac(1, kMilli, two_ue_mac());
  EXPECT_EQ(store.num_series(), 20u);  // 10 MAC metrics x 2 UEs
}

TEST(Ingest, RlcAndPdcpKeyByBearer) {
  TelemetryStore store(StoreConfig{});
  Ingest ingest(store);
  e2sm::rlc::IndicationMsg rlc;
  e2sm::rlc::BearerStats b;
  b.rnti = 50;
  b.drb_id = 2;
  b.sojourn_avg_ms = 1.5;
  rlc.bearers.push_back(b);
  ingest.rlc(4, kMilli, rlc);
  auto latest = store.latest(
      SeriesKey{4, make_entity(50, 2), Metric::rlc_sojourn_avg_ms}, 1);
  ASSERT_TRUE(latest.is_ok());
  EXPECT_EQ((*latest)[0].v, 1.5);

  e2sm::pdcp::IndicationMsg pdcp;
  e2sm::pdcp::BearerStats p;
  p.rnti = 50;
  p.drb_id = 2;
  p.tx_sdu_bytes = 4096;
  pdcp.bearers.push_back(p);
  ingest.pdcp(4, 2 * kMilli, pdcp);
  auto tx = store.latest(
      SeriesKey{4, make_entity(50, 2), Metric::pdcp_tx_sdu_bytes}, 1);
  ASSERT_TRUE(tx.is_ok());
  EXPECT_EQ((*tx)[0].v, 4096.0);
}

TEST(Ingest, WireModeDecodesHeaderTimestampAndDispatches) {
  for (WireFormat fmt :
       {WireFormat::per, WireFormat::flat, WireFormat::proto}) {
    TelemetryStore store(StoreConfig{});
    Ingest ingest(store);
    e2sm::mac::IndicationHdr hdr;
    hdr.tstamp_ns = 5 * kMilli;
    hdr.cell_id = 1;
    Buffer hdr_b = e2sm::sm_encode(hdr, fmt);
    Buffer msg_b = e2sm::sm_encode(two_ue_mac(), fmt);
    Status st = ingest.wire(2, e2sm::mac::Sm::kId, hdr_b, msg_b, fmt);
    ASSERT_TRUE(st.is_ok()) << "fmt=" << static_cast<int>(fmt);
    auto latest = store.latest(key_of(2, 100, Metric::mac_cqi), 1);
    ASSERT_TRUE(latest.is_ok());
    EXPECT_EQ((*latest)[0].t, 5 * kMilli);  // header time, not arrival time
    EXPECT_EQ((*latest)[0].v, 12.0);
  }
}

TEST(Ingest, WireModeRejectsGarbageAndUnknownFn) {
  TelemetryStore store(StoreConfig{});
  Ingest ingest(store);
  Buffer junk{0xFF, 0x01, 0x02};
  EXPECT_FALSE(
      ingest.wire(1, e2sm::mac::Sm::kId, junk, junk, WireFormat::flat)
          .is_ok());
  EXPECT_GT(ingest.decode_errors(), 0u);

  e2sm::mac::IndicationHdr hdr;
  Buffer hdr_b = e2sm::sm_encode(hdr, kFmt);
  Status st = ingest.wire(1, /*fn_id=*/999, hdr_b, hdr_b, kFmt);
  EXPECT_EQ(st.code(), Errc::unsupported);
  EXPECT_EQ(store.num_series(), 0u);
}

// ---------------------------------------------------------------------------
// Monitor integration (both modes)
// ---------------------------------------------------------------------------

ran::CellConfig nr_cell() {
  ran::CellConfig cfg;
  cfg.rat = ran::Rat::nr;
  cfg.num_prbs = 106;
  cfg.default_mcs = 20;
  return cfg;
}

struct MonitorWorld {
  Reactor reactor;
  ran::BaseStation bs{nr_cell()};
  agent::E2Agent agent{reactor, {{1, 10, e2ap::NodeType::gnb}, kFmt}};
  ran::BsFunctionBundle bundle{bs, agent, kFmt};
  server::E2Server server{reactor, {21, kFmt}};
  Nanos now = 0;

  void connect() {
    auto [a_side, s_side] = LocalTransport::make_pair(reactor);
    server.attach(s_side);
    (void)agent.add_controller(a_side);
    test::pump_until(reactor,
                     [this] { return server.ran_db().num_agents() == 1; });
  }
  void run_ttis(int n) {
    for (int t = 0; t < n; ++t) {
      now += kMilli;
      bs.tick(now);
      bundle.on_tti(now);
      reactor.run_once(0);
    }
  }
};

TEST(MonitorTelemetry, DecodedModeFeedsStore) {
  MonitorWorld w;
  TelemetryStore store(StoreConfig{});
  Ingest ingest(store);
  ctrl::MonitorIApp::Config cfg{kFmt, 1};
  cfg.telemetry = &ingest;
  auto monitor = std::make_shared<ctrl::MonitorIApp>(cfg);
  w.server.add_iapp(monitor);
  w.connect();
  (void)w.bs.attach_ue({100, 1, 0, 15, 20});
  w.run_ttis(20);
  pump(w.reactor, 5);

  EXPECT_GT(store.num_series(), 0u);
  EXPECT_GT(store.total_samples(), 0u);
  // MAC series exist for the attached UE and carry header timestamps.
  bool found_mac = false;
  for (const auto& info : store.list_series()) {
    if (info.key.metric == Metric::mac_cqi &&
        entity_rnti(info.key.entity) == 100) {
      found_mac = true;
      EXPECT_GT(info.last_t, 0);
      EXPECT_GT(info.total_samples, 5u);
    }
  }
  EXPECT_TRUE(found_mac);
}

TEST(MonitorTelemetry, ZeroCopyModeFeedsStoreFromRawBytes) {
  MonitorWorld w;
  TelemetryStore store(StoreConfig{});
  Ingest ingest(store);
  ctrl::MonitorIApp::Config cfg{kFmt, 1};
  cfg.decode_payloads = false;  // FLAT zero-copy mode
  cfg.telemetry = &ingest;
  auto monitor = std::make_shared<ctrl::MonitorIApp>(cfg);
  w.server.add_iapp(monitor);
  w.connect();
  (void)w.bs.attach_ue({100, 1, 0, 15, 20});
  w.run_ttis(20);
  pump(w.reactor, 5);

  // The monitor kept only raw buffers, yet telemetry is populated.
  ASSERT_EQ(monitor->db().size(), 1u);
  EXPECT_TRUE(monitor->db().begin()->second.mac.empty());
  EXPECT_FALSE(monitor->db().begin()->second.raw.empty());
  EXPECT_GT(store.num_series(), 0u);
  EXPECT_GT(store.total_samples(), 0u);
  EXPECT_EQ(ingest.decode_errors(), 0u);
}

// ---------------------------------------------------------------------------
// Northbound REST
// ---------------------------------------------------------------------------

TEST(TelemetryRestApi, SeriesQueryAndDumpEndpoints) {
  Reactor reactor;
  TelemetryStore store(StoreConfig{});
  for (int i = 1; i <= 100; ++i)
    ASSERT_TRUE(store
                    .record(key_of(1, 42, Metric::mac_cqi), i * kMilli,
                            static_cast<double>(i))
                    .is_ok());
  ctrl::HttpServer http(reactor);
  ctrl::TelemetryRest rest(http, store);
  ASSERT_TRUE(http.listen(0).is_ok());
  std::uint16_t port = http.port();

  std::atomic<bool> done{false};
  ctrl::HttpResponse series_resp, agg_resp, raw_resp, bad_resp, dump_resp;
  std::thread client([&] {
    auto r1 = ctrl::HttpClient::request("127.0.0.1", port, "GET", "/series");
    if (r1) series_resp = *r1;
    auto r2 = ctrl::HttpClient::request(
        "127.0.0.1", port, "POST", "/query",
        R"({"agent":1,"rnti":42,"metric":"mac_cqi",)"
        R"("t0_ns":0,"t1_ns":1000000000,"kind":"aggregate"})");
    if (r2) agg_resp = *r2;
    auto r3 = ctrl::HttpClient::request(
        "127.0.0.1", port, "POST", "/query",
        R"({"agent":1,"rnti":42,"metric":"mac_cqi",)"
        R"("t0_ns":0,"t1_ns":1000000000,"kind":"raw"})");
    if (r3) raw_resp = *r3;
    auto r4 = ctrl::HttpClient::request(
        "127.0.0.1", port, "POST", "/query", R"({"metric":"nope"})");
    if (r4) bad_resp = *r4;
    auto r5 = ctrl::HttpClient::request("127.0.0.1", port, "GET", "/dump");
    if (r5) dump_resp = *r5;
    done = true;
  });
  pump_until(reactor, [&] { return done.load(); }, 20000);
  client.join();

  ASSERT_EQ(series_resp.code, 200);
  auto series = ctrl::Json::parse(series_resp.body);
  ASSERT_TRUE(series.is_ok());
  EXPECT_EQ((*series)["num_series"].as_number(), 1.0);
  ASSERT_EQ((*series)["series"].as_array().size(), 1u);
  EXPECT_EQ((*series)["series"].as_array()[0]["metric"].as_string(),
            "mac_cqi");

  ASSERT_EQ(agg_resp.code, 200);
  auto agg = ctrl::Json::parse(agg_resp.body);
  ASSERT_TRUE(agg.is_ok());
  EXPECT_EQ((*agg)["count"].as_number(), 100.0);
  EXPECT_EQ((*agg)["sum"].as_number(), 5050.0);
  EXPECT_EQ((*agg)["min"].as_number(), 1.0);
  EXPECT_EQ((*agg)["max"].as_number(), 100.0);

  ASSERT_EQ(raw_resp.code, 200);
  auto raw = ctrl::Json::parse(raw_resp.body);
  ASSERT_TRUE(raw.is_ok());
  EXPECT_EQ((*raw)["samples"].as_array().size(), 100u);

  EXPECT_EQ(bad_resp.code, 400);

  ASSERT_EQ(dump_resp.code, 200);
  auto dump = ctrl::Json::parse(dump_resp.body);
  ASSERT_TRUE(dump.is_ok());
  EXPECT_EQ((*dump)["num_series"].as_number(), 1.0);
}

TEST(TelemetryRestApi, QueryUnknownSeriesIs404) {
  Reactor reactor;
  TelemetryStore store(StoreConfig{});
  ctrl::HttpServer http(reactor);
  ctrl::TelemetryRest rest(http, store);
  ASSERT_TRUE(http.listen(0).is_ok());
  std::atomic<bool> done{false};
  int code = 0;
  std::thread client([&] {
    auto r = ctrl::HttpClient::request(
        "127.0.0.1", http.port(), "POST", "/query",
        R"({"agent":5,"rnti":5,"metric":"mac_cqi","t0_ns":0,"t1_ns":1})");
    if (r) code = r->code;
    done = true;
  });
  pump_until(reactor, [&] { return done.load(); }, 20000);
  client.join();
  EXPECT_EQ(code, 404);
}

// Error paths of the northbound API: every malformed request must come back
// as a clean JSON error with the right status code — never a hang, a crash,
// or a silent 200.
TEST(TelemetryRestApi, ErrorPathsReturnJsonErrors) {
  Reactor reactor;
  TelemetryStore store(StoreConfig{});
  for (int i = 1; i <= 10; ++i)
    ASSERT_TRUE(store
                    .record(key_of(1, 42, Metric::mac_cqi), i * kMilli,
                            static_cast<double>(i))
                    .is_ok());
  ctrl::HttpServer http(reactor);
  ctrl::TelemetryRest rest(http, store);
  ASSERT_TRUE(http.listen(0).is_ok());
  std::uint16_t port = http.port();

  constexpr const char* kSeriesQ =
      R"({"agent":1,"rnti":42,"metric":"mac_cqi","t0_ns":0,"t1_ns":1000000000)";
  std::atomic<bool> done{false};
  ctrl::HttpResponse bad_json, bad_kind, bad_source, bad_route, wrong_method,
      latest;
  std::thread client([&] {
    auto r1 = ctrl::HttpClient::request("127.0.0.1", port, "POST", "/query",
                                        "{not json");
    if (r1) bad_json = *r1;
    auto r2 = ctrl::HttpClient::request(
        "127.0.0.1", port, "POST", "/query",
        std::string(kSeriesQ) + R"(,"kind":"bogus"})");
    if (r2) bad_kind = *r2;
    auto r3 = ctrl::HttpClient::request(
        "127.0.0.1", port, "POST", "/query",
        std::string(kSeriesQ) + R"(,"kind":"aggregate","source":"bogus"})");
    if (r3) bad_source = *r3;
    auto r4 = ctrl::HttpClient::request("127.0.0.1", port, "GET", "/nope");
    if (r4) bad_route = *r4;
    auto r5 = ctrl::HttpClient::request("127.0.0.1", port, "GET", "/query");
    if (r5) wrong_method = *r5;
    auto r6 = ctrl::HttpClient::request(
        "127.0.0.1", port, "POST", "/query",
        std::string(kSeriesQ) + R"(,"kind":"latest","n":5})");
    if (r6) latest = *r6;
    done = true;
  });
  pump_until(reactor, [&] { return done.load(); }, 20000);
  client.join();

  // Each error body is itself parseable JSON carrying an "error" field.
  for (const auto* resp : {&bad_json, &bad_kind, &bad_source, &bad_route}) {
    auto body = ctrl::Json::parse(resp->body);
    ASSERT_TRUE(body.is_ok()) << resp->body;
    EXPECT_FALSE((*body)["error"].as_string().empty());
  }
  EXPECT_EQ(bad_json.code, 400);
  EXPECT_EQ(bad_kind.code, 400);
  EXPECT_EQ(bad_source.code, 400);
  EXPECT_EQ(bad_route.code, 404);
  EXPECT_EQ(wrong_method.code, 404);  // routes match on (method, path)

  // The "latest" kind round-trips with the documented shape.
  ASSERT_EQ(latest.code, 200);
  auto lj = ctrl::Json::parse(latest.body);
  ASSERT_TRUE(lj.is_ok());
  EXPECT_EQ((*lj)["metric"].as_string(), "mac_cqi");
  ASSERT_EQ((*lj)["samples"].as_array().size(), 5u);
  // The newest 5 samples in chronological order: values 6..10.
  EXPECT_EQ((*lj)["samples"].as_array()[0].as_array()[1].as_number(), 6.0);
  EXPECT_EQ((*lj)["samples"].as_array()[4].as_array()[1].as_number(), 10.0);
}

}  // namespace
}  // namespace flexric::telemetry
