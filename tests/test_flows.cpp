// Traffic generator + end-to-end path tests: VoIP/CBR timing, Cubic window
// dynamics and loss response, TrafficManager RTT, and the emergence of
// bufferbloat on the simulated path (the premise of Fig. 11).
#include <gtest/gtest.h>

#include "flows/cubic.hpp"
#include "flows/manager.hpp"
#include "flows/voip.hpp"

namespace flexric::flows {
namespace {

e2sm::tc::FiveTuple voip_tuple() {
  e2sm::tc::FiveTuple t;
  t.src_ip = 0x0A000001;
  t.dst_ip = 0x0A000002;
  t.src_port = 40000;
  t.dst_port = 5060;
  t.proto = 17;
  return t;
}

e2sm::tc::FiveTuple bulk_tuple() {
  e2sm::tc::FiveTuple t;
  t.src_ip = 0x0A000001;
  t.dst_ip = 0x0A000002;
  t.src_port = 40001;
  t.dst_port = 443;
  t.proto = 6;
  return t;
}

ran::CellConfig lte_cell() {
  ran::CellConfig cfg;
  cfg.rat = ran::Rat::lte;
  cfg.num_prbs = 25;
  cfg.default_mcs = 28;
  return cfg;
}

// ---------------------------------------------------------------------------
// Sources in isolation
// ---------------------------------------------------------------------------

TEST(VoipSource, EmitsG711Cadence) {
  VoipSource voip(1, voip_tuple());
  std::vector<ran::Packet> emitted;
  // 1 simulated second, tick per ms.
  for (Nanos now = 0; now <= kSecond; now += kMilli)
    voip.tick(now, [&](ran::Packet p) { emitted.push_back(p); });
  // 20 ms interval -> 51 packets in [0, 1000] ms inclusive.
  EXPECT_EQ(emitted.size(), 51u);
  for (const auto& p : emitted) EXPECT_EQ(p.size_bytes, 172u);
  EXPECT_EQ(emitted[1].created - emitted[0].created, 20 * kMilli);
}

TEST(VoipSource, RecordsRtt) {
  VoipSource voip(1, voip_tuple());
  ran::Packet p;
  p.created = 0;
  p.flow_id = 1;
  voip.on_ack(p, 25 * kMilli);
  EXPECT_EQ(voip.rtt_ms().count(), 1u);
  EXPECT_DOUBLE_EQ(voip.rtt_ms().mean(), 25.0);
}

TEST(CbrSource, HitsConfiguredRate) {
  CbrSource cbr(2, bulk_tuple(), /*mbps=*/8.0, /*packet=*/1000);
  std::uint64_t bytes = 0;
  for (Nanos now = 0; now < kSecond; now += kMilli)
    cbr.tick(now, [&](ran::Packet p) { bytes += p.size_bytes; });
  // 8 Mbps = 1 MB/s.
  EXPECT_NEAR(static_cast<double>(bytes), 1e6, 2e4);
}

TEST(Cubic, SlowStartDoublesWindow) {
  CubicSource cubic(3, bulk_tuple());
  double w0 = cubic.cwnd_bytes();
  std::vector<ran::Packet> sent;
  cubic.tick(0, [&](ran::Packet p) { sent.push_back(p); });
  EXPECT_EQ(sent.size(), 10u);  // IW10
  // Ack everything quickly: slow start adds one MSS per ack.
  for (const auto& p : sent) cubic.on_ack(p, 10 * kMilli);
  EXPECT_NEAR(cubic.cwnd_bytes(), w0 + 10 * 1448, 1.0);
}

TEST(Cubic, LossCausesMultiplicativeDecrease) {
  CubicSource cubic(3, bulk_tuple());
  std::vector<ran::Packet> sent;
  for (int t = 0; t < 5; ++t) {
    cubic.tick(t * kMilli, [&](ran::Packet p) { sent.push_back(p); });
    for (const auto& p : sent) cubic.on_ack(p, (t + 1) * kMilli);
    sent.clear();
  }
  double before = cubic.cwnd_bytes();
  ran::Packet lost;
  lost.seq = 100'000;  // beyond any recovery window
  lost.size_bytes = 1448;
  cubic.on_drop(lost, 10 * kMilli);
  EXPECT_NEAR(cubic.cwnd_bytes(), before * 0.7, before * 0.02);
  EXPECT_EQ(cubic.drops(), 1u);
}

TEST(Cubic, OneDecreasePerCongestionEpoch) {
  CubicSource cubic(3, bulk_tuple());
  std::vector<ran::Packet> sent;
  cubic.tick(0, [&](ran::Packet p) { sent.push_back(p); });
  ASSERT_GE(sent.size(), 3u);
  double before = cubic.cwnd_bytes();
  cubic.on_drop(sent[2], kMilli);  // triggers decrease
  double after_first = cubic.cwnd_bytes();
  EXPECT_LT(after_first, before);
  cubic.on_drop(sent[0], kMilli);  // same epoch: ignored
  cubic.on_drop(sent[1], kMilli);
  EXPECT_DOUBLE_EQ(cubic.cwnd_bytes(), after_first);
}

TEST(Cubic, WindowRegrowsAfterLoss) {
  CubicSource cubic(3, bulk_tuple());
  std::vector<ran::Packet> sent;
  cubic.tick(0, [&](ran::Packet p) { sent.push_back(p); });
  ran::Packet lost = sent.back();
  lost.seq = 1000;
  cubic.on_drop(lost, kMilli);
  double floor_w = cubic.cwnd_bytes();
  // Ack steadily for a simulated second: cubic growth resumes.
  Nanos now = kMilli;
  for (int i = 0; i < 1000; ++i) {
    now += kMilli;
    ran::Packet p;
    p.size_bytes = 1448;
    p.created = now - 20 * kMilli;
    p.seq = 2000 + static_cast<std::uint32_t>(i);
    cubic.on_ack(p, now);
  }
  EXPECT_GT(cubic.cwnd_bytes(), floor_w * 1.2);
}

// ---------------------------------------------------------------------------
// End-to-end path
// ---------------------------------------------------------------------------

struct PathWorld {
  ran::BaseStation bs{lte_cell()};
  TrafficManager::Config cfg{};
  std::unique_ptr<TrafficManager> tm;

  PathWorld() {
    cfg.dl_owd = 8 * kMilli;
    cfg.ul_owd = 10 * kMilli;
    cfg.ul_jitter = 8 * kMilli;
    tm = std::make_unique<TrafficManager>(bs, cfg);
    (void)bs.attach_ue({100, 1, 0, 15, 28});
  }
  void run(Nanos duration, Nanos start = 0) {
    for (Nanos now = start; now < start + duration; now += kMilli) {
      tm->tick(now);
      bs.tick(now);
    }
  }
};

TEST(Path, UnloadedVoipRttInPaperRange) {
  // Fig. 11c: without iperf3 traffic, VoIP RTT varies between 20 and 40 ms.
  PathWorld world;
  VoipSource voip(1, voip_tuple());
  world.tm->attach(&voip, 100);
  world.run(10 * kSecond);
  ASSERT_GT(voip.rtt_ms().count(), 400u);
  EXPECT_GE(voip.rtt_ms().min(), 18.0);
  EXPECT_LE(voip.rtt_ms().max(), 45.0);
  EXPECT_EQ(voip.drops(), 0u);
}

TEST(Path, GreedyCubicSaturatesAndBloatsRlcBuffer) {
  // The bufferbloat premise: a loss-based flow fills the 2 MB DRB buffer,
  // driving RLC sojourn times to hundreds of ms (Fig. 11a).
  PathWorld world;
  CubicSource bulk(2, bulk_tuple());
  world.tm->attach(&bulk, 100);
  world.run(30 * kSecond);
  auto rlc = world.bs.rlc_stats({});
  ASSERT_EQ(rlc.bearers.size(), 1u);
  EXPECT_GT(rlc.bearers[0].buffer_bytes, 500'000u);   // deeply bloated
  EXPECT_GT(rlc.bearers[0].sojourn_max_ms, 100.0);
  EXPECT_GT(bulk.drops(), 0u);  // tail drops eventually signal the sender
  // Throughput still near link capacity.
  double mbps = static_cast<double>(bulk.delivered_bytes()) * 8 / 1e6 / 30.0;
  EXPECT_GT(mbps, 0.8 * ran::cell_capacity_mbps(world.bs.config()));
}

TEST(Path, VoipSharingWithGreedyFlowSuffers) {
  // Transparent mode, both flows in one DRB queue: the VoIP flow inherits
  // the bulk flow's queueing delay (Fig. 11a + 11c "transparent" curve).
  PathWorld world;
  VoipSource voip(1, voip_tuple());
  CubicSource bulk(2, bulk_tuple(), /*start=*/5 * kSecond);
  world.tm->attach(&voip, 100);
  world.tm->attach(&bulk, 100);
  world.run(40 * kSecond);
  // Late-conversation VoIP RTTs blow far past the unloaded 20-40 ms.
  EXPECT_GT(voip.rtt_ms().quantile(0.9), 100.0);
}

TEST(Path, DropsPropagateToOwningFlowOnly) {
  PathWorld world;
  VoipSource voip(1, voip_tuple());
  CubicSource bulk(2, bulk_tuple());
  world.tm->attach(&voip, 100);
  world.tm->attach(&bulk, 100);
  world.run(30 * kSecond);
  EXPECT_GT(bulk.drops(), 0u);
  EXPECT_EQ(world.tm->total_drops(), bulk.drops() + voip.drops());
}

TEST(Path, DetachedFlowStopsSending) {
  PathWorld world;
  VoipSource voip(1, voip_tuple());
  world.tm->attach(&voip, 100);
  world.run(kSecond);
  auto count_before = voip.rtt_ms().count();
  world.tm->detach(1);
  world.run(kSecond, kSecond);
  // A few in-flight echoes may still land; no new traffic is generated.
  EXPECT_LE(voip.rtt_ms().count(), count_before + 3);
}

}  // namespace
}  // namespace flexric::flows
