// Baseline comparator tests: the FlexRAN-like controller (polling, proto
// codec, RIB history) and the O-RAN-RIC-like two-hop platform (E2
// termination + RMR + xApp, double decode).
#include <gtest/gtest.h>

#include "baseline/flexran/flexran.hpp"
#include "baseline/oran/ric.hpp"
#include "baseline/oran/rmr.hpp"
#include "e2sm/common.hpp"
#include "helpers.hpp"
#include "ran/functions.hpp"

namespace flexric::baseline {
namespace {

using test::pump;
using test::pump_until;

ran::CellConfig lte_cell() {
  ran::CellConfig cfg;
  cfg.rat = ran::Rat::lte;
  cfg.num_prbs = 25;
  cfg.default_mcs = 28;
  return cfg;
}

// ---------------------------------------------------------------------------
// FlexRAN protocol
// ---------------------------------------------------------------------------

TEST(FlexRanProto, FrameEncodeDecode) {
  Buffer body{1, 2, 3};
  Buffer wire = flexran::encode_frame(flexran::MsgKind::stats_report, body);
  auto frame = flexran::decode_frame(wire);
  ASSERT_TRUE(frame.is_ok());
  EXPECT_EQ(frame->kind, flexran::MsgKind::stats_report);
  EXPECT_EQ(Buffer(frame->body.begin(), frame->body.end()), body);
  EXPECT_FALSE(flexran::decode_frame({}).is_ok());
}

TEST(FlexRanProto, MessagesRoundTripInProto) {
  flexran::StatsReport report;
  report.bs_id = 7;
  report.tstamp_ns = 123;
  flexran::UeStats ue;
  ue.rnti = 70;
  ue.cqi = 15;
  ue.mac_bytes_dl = 1'000'000;
  ue.rlc_sojourn_avg_ms = 17.5;
  report.ues.push_back(ue);
  Buffer wire = e2sm::sm_encode(report, WireFormat::proto);
  auto back = e2sm::sm_decode<flexran::StatsReport>(wire, WireFormat::proto);
  ASSERT_TRUE(back.is_ok());
  EXPECT_EQ(*back, report);

  flexran::Echo echo;
  echo.seq = 3;
  echo.payload = Buffer(1500, 0xAA);
  Buffer ewire = e2sm::sm_encode(echo, WireFormat::proto);
  auto eback = e2sm::sm_decode<flexran::Echo>(ewire, WireFormat::proto);
  ASSERT_TRUE(eback.is_ok());
  EXPECT_EQ(*eback, echo);
}

struct FlexRanWorld {
  Reactor reactor;
  ran::BaseStation bs{lte_cell()};
  flexran::Controller controller{reactor};
  std::unique_ptr<flexran::Agent> agent;
  Nanos now = 0;

  FlexRanWorld() {
    auto [a_side, c_side] = LocalTransport::make_pair(reactor);
    controller.attach(c_side);
    agent = std::make_unique<flexran::Agent>(bs, a_side, /*bs_id=*/7);
    test::pump_until(reactor,
                     [this] { return !controller.rib().empty(); });
  }
  void run_ttis(int n) {
    for (int t = 0; t < n; ++t) {
      now += kMilli;
      bs.tick(now);
      agent->on_tti(now);
      reactor.run_once(0);
    }
  }
};

TEST(FlexRan, HelloCreatesRibEntry) {
  FlexRanWorld w;
  ASSERT_EQ(w.controller.rib().size(), 1u);
  EXPECT_EQ(w.controller.rib().begin()->first, 7u);
}

TEST(FlexRan, StatsFlowIntoRibHistory) {
  FlexRanWorld w;
  (void)w.bs.attach_ue({100, 1, 0, 15, 28});
  w.controller.request_stats(1);
  pump(w.reactor);
  w.run_ttis(50);
  pump(w.reactor, 5);
  const auto& rib = w.controller.rib().at(7);
  EXPECT_GE(rib.reports_rx, 45u);
  EXPECT_EQ(rib.history.size(), rib.reports_rx);  // full history retained
  const auto& last = rib.history.back();
  ASSERT_EQ(last.ues.size(), 1u);
  EXPECT_EQ(last.ues[0].rnti, 100);
  EXPECT_EQ(last.ues[0].mcs_dl, 28);
}

TEST(FlexRan, RibHistoryIsBounded) {
  FlexRanWorld w;
  (void)w.bs.attach_ue({100, 1, 0, 15, 28});
  w.controller.request_stats(1);
  pump(w.reactor);
  w.run_ttis(static_cast<int>(flexran::Controller::kHistoryDepth) + 200);
  pump(w.reactor, 5);
  EXPECT_EQ(w.controller.rib().at(7).history.size(),
            flexran::Controller::kHistoryDepth);
}

TEST(FlexRan, PollerScansEvenWithoutNewData) {
  FlexRanWorld w;
  int scans = 0;
  w.controller.add_poller(1, [&](const auto&) { scans++; });
  // No stats requested: the poller still burns cycles every ms (the
  // polling overhead the paper criticizes).
  Nanos deadline = mono_now() + 2 * kSecond;
  while (scans < 20 && mono_now() < deadline) w.reactor.run_once(1);
  EXPECT_GE(scans, 20);
  EXPECT_EQ(w.controller.stats().poll_scans, static_cast<std::uint64_t>(scans));
}

TEST(FlexRan, EchoMeasuresRtt) {
  FlexRanWorld w;
  std::optional<Nanos> rtt;
  (void)w.controller.send_echo(1, Buffer(100, 0x55),
                         [&](const flexran::Echo& echo, Nanos rx) {
                           rtt = rx - static_cast<Nanos>(echo.sent_ns);
                         });
  ASSERT_TRUE(pump_until(w.reactor, [&] { return rtt.has_value(); }));
  EXPECT_GT(*rtt, 0);
  EXPECT_EQ(w.agent->stats().echo_rx, 1u);
}

// ---------------------------------------------------------------------------
// RMR shim
// ---------------------------------------------------------------------------

TEST(Rmr, HeaderRoundTrip) {
  using namespace oran;
  Buffer payload{9, 8, 7};
  Buffer wire = rmr_encode(RmrType::sub_request, 42, payload);
  auto msg = rmr_decode(wire);
  ASSERT_TRUE(msg.is_ok());
  EXPECT_EQ(msg->mtype, RmrType::sub_request);
  EXPECT_EQ(msg->sub_id, 42);
  EXPECT_EQ(Buffer(msg->payload.begin(), msg->payload.end()), payload);
  Buffer truncated(wire.begin(), wire.begin() + 5);
  EXPECT_FALSE(rmr_decode(truncated).is_ok());
}

// ---------------------------------------------------------------------------
// O-RAN RIC two-hop platform
// ---------------------------------------------------------------------------

struct OranWorld {
  Reactor reactor;
  ran::BaseStation bs{lte_cell()};
  // O-RAN mandates ASN.1 on E2.
  agent::E2Agent agent{reactor,
                       {{1, 10, e2ap::NodeType::enb}, WireFormat::per}};
  ran::BsFunctionBundle bundle{bs, agent, WireFormat::per};
  oran::E2Termination e2term{reactor};
  std::unique_ptr<oran::OranXapp> xapp;
  Nanos now = 0;

  OranWorld() {
    // agent -> E2T hop.
    auto [a_side, t_side] = LocalTransport::make_pair(reactor);
    e2term.attach_agent(t_side);
    (void)agent.add_controller(a_side);
    // E2T -> xApp hop (the second hop).
    auto [x_side, r_side] = LocalTransport::make_pair(reactor);
    e2term.attach_xapp(r_side);
    xapp = std::make_unique<oran::OranXapp>(reactor, x_side,
                                            WireFormat::per);
    test::pump_until(reactor,
                     [this] { return e2term.stats().e2_msgs_rx > 0; });
  }
  void run_ttis(int n) {
    for (int t = 0; t < n; ++t) {
      now += kMilli;
      bs.tick(now);
      bundle.on_tti(now);
      reactor.run_once(0);
    }
  }
};

TEST(OranRic, SetupIsTerminatedAtE2T) {
  OranWorld w;
  ASSERT_TRUE(pump_until(w.reactor, [&] {
    return w.agent.state(0) == agent::ConnState::established;
  }));
  EXPECT_GE(w.e2term.stats().e2_decodes, 1u);
}

TEST(OranRic, IndicationsAreDecodedTwice) {
  OranWorld w;
  (void)w.bs.attach_ue({100, 1, 0, 15, 28});
  ASSERT_TRUE(
      w.xapp->subscribe(e2sm::mac::Sm::kId,
                        e2sm::sm_encode(e2sm::EventTrigger{
                                            e2sm::TriggerKind::periodic, 1},
                                        WireFormat::per),
                        {{1, e2ap::ActionType::report, {}}})
          .is_ok());
  pump(w.reactor, 10);
  w.run_ttis(20);
  pump(w.reactor, 10);

  ASSERT_GT(w.xapp->stats().indications_rx, 0u);
  // Each indication decoded at the E2T (routing) and again at the xApp.
  EXPECT_GE(w.e2term.stats().e2_decodes, w.xapp->stats().indications_rx);
  EXPECT_GE(w.xapp->stats().e2_decodes, w.xapp->stats().indications_rx);
  EXPECT_EQ(w.e2term.stats().rmr_forwards,
            w.xapp->stats().indications_rx + 1);  // +1 sub response
  // The monitoring DB is populated.
  ASSERT_EQ(w.xapp->db().size(), 1u);
  EXPECT_EQ(w.xapp->db().begin()->first, 100);
}

TEST(OranRic, RegistryRoutesBySubscription) {
  OranWorld w;
  (void)w.bs.attach_ue({100, 1, 0, 15, 28});
  (void)w.xapp->subscribe(e2sm::mac::Sm::kId,
                    e2sm::sm_encode(e2sm::EventTrigger{
                                        e2sm::TriggerKind::periodic, 1},
                                    WireFormat::per),
                    {{1, e2ap::ActionType::report, {}}});
  pump(w.reactor, 10);
  w.run_ttis(5);
  pump(w.reactor, 10);
  EXPECT_GT(w.e2term.stats().registry_lookups, 0u);
}

TEST(OranRic, ControlTraversesBothHops) {
  OranWorld w;
  // Register the HW SM at the agent for a control target.
  // (bundle already registered BS functions; add HW explicitly)
  // note: separate world to avoid id clash
  Reactor reactor;
  agent::E2Agent agent(reactor,
                       {{1, 11, e2ap::NodeType::enb}, WireFormat::per});
  (void)agent.register_function(
      std::make_shared<ran::HwFunction>(WireFormat::per));
  oran::E2Termination e2term(reactor);
  auto [a_side, t_side] = LocalTransport::make_pair(reactor);
  e2term.attach_agent(t_side);
  (void)agent.add_controller(a_side);
  auto [x_side, r_side] = LocalTransport::make_pair(reactor);
  e2term.attach_xapp(r_side);
  oran::OranXapp xapp(reactor, x_side, WireFormat::per);
  pump(reactor, 10);

  // Pong path + ping.
  std::optional<e2sm::hw::Pong> pong;
  xapp.set_on_indication([&](const e2ap::Indication& ind) {
    pong = *e2sm::sm_decode<e2sm::hw::Pong>(ind.message, WireFormat::per);
  });
  (void)xapp.subscribe(e2sm::hw::Sm::kId,
                 e2sm::sm_encode(
                     e2sm::EventTrigger{e2sm::TriggerKind::on_event, 0},
                     WireFormat::per),
                 {{1, e2ap::ActionType::report, {}}});
  pump(reactor, 10);
  e2sm::hw::Ping ping;
  ping.seq = 5;
  ping.payload = Buffer(100, 0x42);
  (void)xapp.send_control(e2sm::hw::Sm::kId, {},
                    e2sm::sm_encode(ping, WireFormat::per));
  ASSERT_TRUE(pump_until(reactor, [&] { return pong.has_value(); }));
  EXPECT_EQ(pong->seq, 5u);
}

}  // namespace
}  // namespace flexric::baseline
