// Service-model payload tests: every SM message round-trips through all
// three wire formats derived from its single serde() declaration.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "e2sm/common.hpp"
#include "e2sm/hw_sm.hpp"
#include "e2sm/kpm_sm.hpp"
#include "e2sm/mac_sm.hpp"
#include "e2sm/pdcp_sm.hpp"
#include "e2sm/rlc_sm.hpp"
#include "e2sm/rrc_sm.hpp"
#include "e2sm/slice_sm.hpp"
#include "e2sm/tc_sm.hpp"

namespace flexric::e2sm {
namespace {

const WireFormat kAllFormats[] = {WireFormat::per, WireFormat::flat,
                                  WireFormat::proto};

template <typename T>
void expect_roundtrip(const T& msg) {
  for (WireFormat f : kAllFormats) {
    Buffer wire = sm_encode(msg, f);
    auto decoded = sm_decode<T>(wire, f);
    ASSERT_TRUE(decoded.is_ok())
        << "format " << wire_format_name(f) << ": "
        << decoded.error().to_string();
    EXPECT_EQ(*decoded, msg) << "format " << wire_format_name(f);
  }
}

class SmFormats : public ::testing::TestWithParam<WireFormat> {};
INSTANTIATE_TEST_SUITE_P(Formats, SmFormats,
                         ::testing::ValuesIn(kAllFormats),
                         [](const auto& info) {
                           return std::string(wire_format_name(info.param));
                         });

// ---------------------------------------------------------------------------
// Common
// ---------------------------------------------------------------------------

TEST(SmCommon, EventTriggerRoundTrip) {
  expect_roundtrip(EventTrigger{TriggerKind::periodic, 1});
  expect_roundtrip(EventTrigger{TriggerKind::on_event, 0});
}

TEST(SmCommon, RanFunctionDescriptors) {
  auto item = make_ran_function<mac::Sm>();
  EXPECT_EQ(item.id, 142);
  EXPECT_EQ(item.name, "FLEXRIC-E2SM-MAC-STATS");
  EXPECT_EQ(make_ran_function<slice::Sm>().id, 145);
  EXPECT_EQ(make_ran_function<tc::Sm>().id, 146);
  EXPECT_EQ(make_ran_function<hw::Sm>().id, 150);
}

TEST(SmCommon, SmIdsAreUnique) {
  std::set<std::uint16_t> ids{mac::Sm::kId,  rlc::Sm::kId, pdcp::Sm::kId,
                              slice::Sm::kId, tc::Sm::kId,  rrc::Sm::kId,
                              kpm::Sm::kId,  hw::Sm::kId};
  EXPECT_EQ(ids.size(), 8u);
}

// ---------------------------------------------------------------------------
// MAC / RLC / PDCP / KPM monitoring SMs
// ---------------------------------------------------------------------------

mac::IndicationMsg sample_mac(int n_ues) {
  mac::IndicationMsg msg;
  for (int i = 0; i < n_ues; ++i) {
    mac::UeStats s;
    s.rnti = static_cast<std::uint16_t>(100 + i);
    s.cqi = 15;
    s.mcs_dl = 28;
    s.prbs_dl = 25;
    s.bytes_dl = 1'000'000 + static_cast<std::uint64_t>(i);
    s.bsr = 4096;
    s.phr_db = -3;
    s.slice_id = static_cast<std::uint32_t>(i % 3);
    s.harq_retx = 2;
    msg.ues.push_back(s);
  }
  return msg;
}

TEST(MacSm, IndicationRoundTrip) { expect_roundtrip(sample_mac(4)); }
TEST(MacSm, EmptyIndication) { expect_roundtrip(mac::IndicationMsg{}); }
TEST(MacSm, Header) {
  expect_roundtrip(mac::IndicationHdr{123456789, 7});
}
TEST(MacSm, ActionDefWithFilter) {
  mac::ActionDef def;
  def.include_harq = true;
  def.rnti_filter = {100, 101, 102};
  expect_roundtrip(def);
}

TEST(RlcSm, IndicationRoundTrip) {
  rlc::IndicationMsg msg;
  rlc::BearerStats b;
  b.rnti = 55;
  b.drb_id = 1;
  b.tx_bytes = 1ULL << 33;
  b.buffer_bytes = 2'000'000;
  b.sojourn_avg_ms = 153.7;
  b.sojourn_max_ms = 412.9;
  b.dropped_sdus = 12;
  msg.bearers.push_back(b);
  expect_roundtrip(msg);
}

TEST(PdcpSm, IndicationRoundTrip) {
  pdcp::IndicationMsg msg;
  pdcp::BearerStats b;
  b.rnti = 55;
  b.drb_id = 2;
  b.tx_sdu_bytes = 123456;
  b.tx_pdu_bytes = 123456 + 3 * 100;
  b.tx_sdus = 100;
  b.discarded_sdus = 1;
  msg.bearers.push_back(b);
  expect_roundtrip(msg);
}

TEST(KpmSm, MetricsRoundTrip) {
  kpm::IndicationMsg msg;
  msg.metrics.push_back({kpm::kThroughputDlMbps, 57.3});
  msg.metrics.push_back({kpm::kPrbUtilizationDl, 0.98});
  msg.metrics.push_back({kpm::kActiveUes, 3});
  expect_roundtrip(msg);
  expect_roundtrip(kpm::IndicationHdr{1, 2, 100});
  kpm::ActionDef def;
  def.metric_names = {kpm::kThroughputDlMbps};
  expect_roundtrip(def);
}

// ---------------------------------------------------------------------------
// RRC / HW
// ---------------------------------------------------------------------------

TEST(RrcSm, EventRoundTrip) {
  rrc::IndicationMsg ev;
  ev.kind = rrc::EventKind::attach;
  ev.rnti = 70;
  ev.plmn = 20899;
  ev.s_nssai = 0x010203;
  expect_roundtrip(ev);
  ev.kind = rrc::EventKind::detach;
  expect_roundtrip(ev);
  expect_roundtrip(rrc::ActionDef{true, false});
}

TEST(HwSm, PingPongRoundTrip) {
  hw::Ping ping;
  ping.seq = 42;
  ping.sent_ns = 1'000'000'007;
  ping.payload = Buffer(1500, 0x7E);
  expect_roundtrip(ping);
  hw::Pong pong;
  pong.seq = 42;
  pong.ping_sent_ns = ping.sent_ns;
  pong.payload = ping.payload;
  expect_roundtrip(pong);
}

TEST(HwSm, PayloadSizesOfThePaper) {
  // 100 B and 1500 B payloads (§5.2).
  for (std::size_t size : {100u, 1500u}) {
    hw::Ping ping;
    ping.payload = Buffer(size, 0x11);
    expect_roundtrip(ping);
  }
}

// ---------------------------------------------------------------------------
// Slice SM
// ---------------------------------------------------------------------------

slice::CtrlMsg sample_slice_ctrl() {
  slice::CtrlMsg msg;
  msg.kind = slice::CtrlKind::add_mod;
  msg.algo = slice::Algo::nvs;
  slice::SliceConf s1;
  s1.id = 1;
  s1.label = "embb";
  s1.ue_sched = slice::UeSched::pf;
  s1.nvs = {slice::NvsKind::capacity, 0.66, 0, 0};
  slice::SliceConf s2;
  s2.id = 2;
  s2.label = "urllc";
  s2.ue_sched = slice::UeSched::rr;
  s2.nvs = {slice::NvsKind::rate, 0, 5.0, 50.0};
  msg.slices = {s1, s2};
  return msg;
}

TEST(SliceSm, CtrlAddModRoundTrip) { expect_roundtrip(sample_slice_ctrl()); }

TEST(SliceSm, CtrlDeleteAndAssocRoundTrip) {
  slice::CtrlMsg del;
  del.kind = slice::CtrlKind::del;
  del.del_ids = {1, 2, 3};
  expect_roundtrip(del);
  slice::CtrlMsg assoc;
  assoc.kind = slice::CtrlKind::assoc_ue;
  assoc.assoc = {{100, 1}, {101, 2}};
  expect_roundtrip(assoc);
}

TEST(SliceSm, OutcomeAndStatusRoundTrip) {
  expect_roundtrip(slice::CtrlOutcome{false, "admission rejected"});
  slice::IndicationMsg status;
  status.algo = slice::Algo::nvs;
  slice::SliceStatus st;
  st.conf = sample_slice_ctrl().slices[0];
  st.prb_share_used = 0.45;
  st.num_ues = 2;
  status.slices.push_back(st);
  status.assoc = {{100, 1}};
  expect_roundtrip(status);
}

TEST(SliceSm, StaticParamsRoundTrip) {
  slice::SliceConf conf;
  conf.id = 3;
  conf.static_rb = {10, 15};
  expect_roundtrip(conf);
}

// ---------------------------------------------------------------------------
// TC SM
// ---------------------------------------------------------------------------

TEST(TcSm, AllCtrlKindsRoundTrip) {
  tc::CtrlMsg msg;
  msg.rnti = 100;
  msg.drb_id = 1;

  msg.kind = tc::CtrlKind::add_queue;
  msg.queue = {1, tc::QueueKind::codel, 1 << 20};
  expect_roundtrip(msg);

  msg.kind = tc::CtrlKind::add_filter;
  msg.filter.filter_id = 9;
  msg.filter.match = {0x0A000001, 0x0A000002, 5000, 6000, 17};
  msg.filter.dst_qid = 1;
  msg.filter.precedence = 2;
  expect_roundtrip(msg);

  msg.kind = tc::CtrlKind::sched_conf;
  msg.sched = {tc::SchedKind::wrr, {3, 1}};
  expect_roundtrip(msg);

  msg.kind = tc::CtrlKind::pacer_conf;
  msg.pacer = {tc::PacerKind::bdp, 5.0, 1.2};
  expect_roundtrip(msg);

  msg.kind = tc::CtrlKind::del_queue;
  msg.del_id = 1;
  expect_roundtrip(msg);
}

TEST(TcSm, StatsRoundTrip) {
  tc::IndicationMsg msg;
  tc::QueueStats q;
  q.qid = 1;
  q.backlog_bytes = 1'000'000;
  q.sojourn_avg_ms = 230.5;
  q.sojourn_max_ms = 480.0;
  q.tx_pkts = 424242;
  q.dropped_pkts = 17;
  msg.queues.push_back(q);
  msg.pacer_rate_mbps = 17.5;
  expect_roundtrip(msg);
  expect_roundtrip(tc::IndicationHdr{99, 100, 1});
}

// ---------------------------------------------------------------------------
// Robustness: corrupt SM payloads are rejected, never crash
// ---------------------------------------------------------------------------

TEST_P(SmFormats, CorruptPayloadsRejectedCleanly) {
  Rng rng(31337);
  Buffer wire = sm_encode(sample_mac(8), GetParam());
  for (int trial = 0; trial < 200; ++trial) {
    Buffer corrupted = wire;
    std::size_t pos = rng.bounded(corrupted.size());
    corrupted[pos] ^= static_cast<std::uint8_t>(1 + rng.bounded(255));
    (void)sm_decode<mac::IndicationMsg>(corrupted, GetParam());
  }
  for (std::size_t cut = 0; cut < wire.size(); cut += 3) {
    Buffer truncated(wire.begin(), wire.begin() + static_cast<long>(cut));
    (void)sm_decode<mac::IndicationMsg>(truncated, GetParam());
  }
  SUCCEED();
}

TEST_P(SmFormats, LargeIndicationsRoundTrip) {
  // 32 UEs as in the scalability experiments (§5.3).
  expect_roundtrip(sample_mac(32));
}

TEST(SmSizes, FormatOrderingForStatsPayloads) {
  // PER most compact; FLAT largest; PROTO in between — the size relation
  // behind Fig. 7b.
  auto msg = sample_mac(8);
  std::size_t per_size = sm_encode(msg, WireFormat::per).size();
  std::size_t proto_size = sm_encode(msg, WireFormat::proto).size();
  std::size_t flat_size = sm_encode(msg, WireFormat::flat).size();
  EXPECT_LT(per_size, proto_size);
  EXPECT_LT(proto_size, flat_size);
}

}  // namespace
}  // namespace flexric::e2sm
