// The three index-driven passes (DESIGN.md §12): domain-ownership,
// wire-taint, hotpath-alloc. All consume the shared FileIndex built by
// build_registry(); none re-derive scopes from raw tokens.
#include <algorithm>
#include <cstddef>

#include "rules.hpp"

namespace flexric::analyze {

namespace {

// ---------------------------------------------------------------------------
// domain-ownership
// ---------------------------------------------------------------------------

/// Variables declared (in the span's signature or body) with an annotated
/// class type, mapped to the class name.
std::map<std::string, std::string> collect_typed_vars(const Corpus& corpus,
                                                      const Tokens& t,
                                                      const FuncSpan& sp) {
  std::map<std::string, std::string> vars;
  for (std::size_t i = sp.sig_begin;
       i + 1 < t.size() && i + 1 < sp.body_end; ++i) {
    if (t[i].kind != Tok::identifier) continue;
    auto it = corpus.classes.find(t[i].text);
    if (it == corpus.classes.end() || it->second.domain.empty()) continue;
    std::size_t j = i + 1;
    int guard = 0;
    while (j < t.size() && guard++ < 3 &&
           (is_punct(t[j], ">") || is_punct(t[j], ">>") ||
            is_punct(t[j], "*") || is_punct(t[j], "&")))
      ++j;
    if (j + 1 < t.size() && t[j].kind == Tok::identifier &&
        (is_punct(t[j + 1], "=") || is_punct(t[j + 1], ";") ||
         is_punct(t[j + 1], "(") || is_punct(t[j + 1], "{") ||
         is_punct(t[j + 1], ",") || is_punct(t[j + 1], ")")))
      vars.emplace(t[j].text, it->first);
  }
  return vars;
}

}  // namespace

void pass_domain_ownership(const Corpus& corpus, const FileUnit& f,
                           const FileIndex& ix, std::vector<Finding>* out) {
  const Tokens& t = f.lx.tokens;

  // (a) Annotation validity: an annotation-style comment (`@affine(...)` at
  // the start of the comment) must name a known domain. Prose mentions of
  // the grammar deeper inside doc comments are not annotations.
  for (auto it = f.lx.comments.begin(); it != f.lx.comments.end(); ++it) {
    const std::string& text = it->second;
    std::size_t pos = text.find("@affine(");
    if (pos == std::string::npos) continue;
    bool anchored = true;
    for (std::size_t k = 0; k < pos; ++k)
      if (text[k] != ' ' && text[k] != '\t' && text[k] != '*' &&
          text[k] != '/')
        anchored = false;  // stored comment text keeps its `//` prefix
    if (!anchored) continue;
    // A block comment contributes its text to every line it spans; report
    // only on the first line of the run.
    auto prev = f.lx.comments.find(it->first - 1);
    if (prev != f.lx.comments.end() && prev->second == text) continue;
    std::string d = parse_affine_domain(text);
    if (is_known_domain(d)) continue;
    if (suppressed(f, it->first, "domain-ownership")) continue;
    Finding fd;
    fd.file = f.rel;
    fd.line = it->first;
    fd.rule = "domain-ownership";
    fd.message =
        "unknown affinity domain '" + d + "' (known: reactor, shard, any)";
    fd.suggestion = "use @affine(reactor), @affine(shard) or @affine(any)";
    out->push_back(std::move(fd));
  }

  for (const FuncSpan& sp : ix.funcs) {
    // (b) A method annotated with a domain that conflicts with its class's
    // domain is a contract violation unless it is a @cross_domain conduit.
    std::string class_domain;
    if (!sp.owner.empty()) {
      auto it = corpus.classes.find(sp.owner);
      if (it != corpus.classes.end()) class_domain = it->second.domain;
    }
    if (!sp.domain.empty() && !class_domain.empty() &&
        sp.domain != class_domain && sp.domain != "any" &&
        class_domain != "any" && !sp.cross_domain &&
        is_known_domain(sp.domain) &&
        !suppressed(f, sp.line, "domain-ownership")) {
      Finding fd;
      fd.file = f.rel;
      fd.line = sp.line;
      fd.rule = "domain-ownership";
      fd.message = "method " + sp.owner + "::" + sp.name + " is annotated "
                   "@affine(" + sp.domain + ") but its class is @affine(" +
                   class_domain + ")";
      fd.suggestion =
          "run it on the class's domain, or mark it `// @cross_domain` if it "
          "is a sanctioned crossing point";
      out->push_back(std::move(fd));
    }

    // (c) Cross-domain field access: `v.field` / `v->field` where v is typed
    // with an @affine(<domain>) class and this function is attributed to a
    // different (or no) domain. Conduit fields (bounded/SPSC queues) and
    // @cross_domain functions are the sanctioned crossings.
    if (sp.cross_domain) continue;
    std::string eff = !sp.domain.empty() ? sp.domain : class_domain;
    auto vars = collect_typed_vars(corpus, t, sp);
    if (vars.empty()) continue;
    for (std::size_t b = sp.body_begin;
         b + 2 < t.size() && b + 2 < sp.body_end; ++b) {
      if (t[b].kind != Tok::identifier) continue;
      auto vit = vars.find(t[b].text);
      if (vit == vars.end()) continue;
      if (b > 0 && (is_punct(t[b - 1], ".") || is_punct(t[b - 1], "->")))
        continue;  // member named like the var
      if (!(is_punct(t[b + 1], ".") || is_punct(t[b + 1], "->"))) continue;
      if (t[b + 2].kind != Tok::identifier) continue;
      const ClassInfo& ci = corpus.classes.at(vit->second);
      if (ci.domain.empty() || ci.domain == "any") continue;
      auto fit = ci.fields.find(t[b + 2].text);
      if (fit == ci.fields.end()) continue;
      if (fit->second.conduit) continue;
      if (b + 3 < t.size() && is_punct(t[b + 3], "(")) continue;  // method
      if (eff == ci.domain) continue;
      if (suppressed(f, t[b].line, "domain-ownership")) continue;
      Finding fd;
      fd.file = f.rel;
      fd.line = t[b].line;
      fd.rule = "domain-ownership";
      fd.message = "field '" + t[b + 2].text + "' of @affine(" + ci.domain +
                   ") class " + ci.name + " touched from " +
                   (eff.empty() ? std::string("unattributed code")
                                : "@affine(" + eff + ") code") +
                   " without a conduit";
      fd.suggestion =
          "hand the value across via an overload::BoundedQueue/SPSC conduit "
          "field, mark the function `// @cross_domain`, or attribute it with "
          "`// @affine(" + ci.domain + ")`";
      out->push_back(std::move(fd));
    }
  }
}

// ---------------------------------------------------------------------------
// wire-taint
// ---------------------------------------------------------------------------

namespace {

/// Reader member calls whose result is attacker-controlled. Range-validated
/// reads (PerReader::constrained / enumerated) and bounds-checked views
/// (octets / str / lp_bytes) are deliberately absent.
bool is_taint_source(const Tokens& t, std::size_t i) {
  static const char* kSources[] = {
      "u8",      "u16",     "u32",  "u64",  "i64",   "u16_be",
      "u32_be",  "uvarint", "svarint", "length", "bits",
      "semi_constrained", "integer"};
  if (t[i].kind != Tok::identifier) return false;
  bool named = false;
  for (const char* s : kSources)
    if (t[i].text == s) named = true;
  if (!named) return false;
  if (i == 0 || !(is_punct(t[i - 1], ".") || is_punct(t[i - 1], "->")))
    return false;
  return i + 1 < t.size() && is_punct(t[i + 1], "(");
}

/// End of the statement starting at `from` (index of the `;`, or of the
/// closer that unbalances, or `limit`).
std::size_t stmt_end(const Tokens& t, std::size_t from, std::size_t limit) {
  int depth = 0;
  for (std::size_t i = from; i < limit && i < t.size(); ++i) {
    if (is_punct(t[i], "(") || is_punct(t[i], "[") || is_punct(t[i], "{"))
      ++depth;
    if (is_punct(t[i], ")") || is_punct(t[i], "]") || is_punct(t[i], "}")) {
      if (depth == 0) return i;
      --depth;
    }
    if (depth == 0 && (is_punct(t[i], ";") || is_punct(t[i], ","))) return i;
  }
  return std::min(limit, t.size());
}

bool range_has_source(const Tokens& t, std::size_t a, std::size_t b) {
  for (std::size_t i = a; i < b; ++i)
    if (is_taint_source(t, i)) return true;
  return false;
}

const std::string* range_first_tainted(const Tokens& t, std::size_t a,
                                       std::size_t b,
                                       const std::set<std::string>& tainted) {
  for (std::size_t i = a; i < b; ++i) {
    if (t[i].kind != Tok::identifier) continue;
    if (i > 0 && (is_punct(t[i - 1], ".") || is_punct(t[i - 1], "->")))
      continue;  // member access, not the tracked local
    auto it = tainted.find(t[i].text);
    if (it != tainted.end()) return &*it;
  }
  return nullptr;
}

bool range_has_minclamp(const Tokens& t, std::size_t a, std::size_t b) {
  for (std::size_t i = a; i < b; ++i)
    if (is_ident(t[i], "min") || is_ident(t[i], "clamp")) return true;
  return false;
}

bool is_relational(const Token& t) {
  return is_punct(t, "<") || is_punct(t, "<=") || is_punct(t, ">") ||
         is_punct(t, ">=");
}

bool is_validator_name(const std::string& s) {
  return s.rfind("check", 0) == 0 || s.rfind("validate", 0) == 0 ||
         s.rfind("is_valid", 0) == 0;
}

}  // namespace

void pass_wire_taint(const Corpus& corpus, const FileUnit& f,
                     const FileIndex& ix, std::vector<Finding>* out) {
  // Only decoder territory: values here come straight off the wire.
  if (f.rel.rfind("src/e2ap/", 0) != 0 && f.rel.rfind("src/codec/", 0) != 0)
    return;
  const Tokens& t = f.lx.tokens;

  auto report = [&](int line, const std::string& name, const std::string& use) {
    if (suppressed(f, line, "wire-taint")) return;
    Finding fd;
    fd.file = f.rel;
    fd.line = line;
    fd.rule = "wire-taint";
    fd.message = "wire-tainted '" + name + "' used as " + use +
                 " before range validation";
    fd.suggestion =
        "bound it first — `if (*" + name +
        " > limit) return Error{Errc::malformed, ...};` (a relational check "
        "in an if-condition clears the taint) — or clamp with std::min";
    out->push_back(std::move(fd));
  };

  for (const FuncSpan& sp : ix.funcs) {
    std::set<std::string> tainted;
    const std::size_t end = std::min(sp.body_end, t.size());
    for (std::size_t i = sp.body_begin; i + 1 < end; ++i) {
      // Assignment / declaration: `name = <expr>` taints or clears `name`
      // depending on whether the expr reads the wire or an already-tainted
      // value (std::min/std::clamp wrapping bounds the result).
      if (is_punct(t[i], "=") && i > 0 && t[i - 1].kind == Tok::identifier &&
          t[i - 1].text != "operator") {
        std::size_t e = stmt_end(t, i + 1, end);
        bool dirty = (range_has_source(t, i + 1, e) ||
                      range_first_tainted(t, i + 1, e, tainted) != nullptr) &&
                     !range_has_minclamp(t, i + 1, e);
        if (dirty)
          tainted.insert(t[i - 1].text);
        else
          tainted.erase(t[i - 1].text);
        continue;
      }
      // Sanitizers: a relational comparison of a tainted value inside an
      // if-condition, or passing it to a check_*/validate_* helper.
      if (is_ident(t[i], "if") && i + 1 < end && is_punct(t[i + 1], "(")) {
        std::size_t close = skip_balanced(t, i + 1);
        for (std::size_t b = i + 2; b + 1 < close; ++b) {
          if (t[b].kind != Tok::identifier || !tainted.count(t[b].text))
            continue;
          std::size_t l = b;  // token left of the (optionally deref'd) name
          if (l > 0 && is_punct(t[l - 1], "*")) --l;
          bool rel = (l > 0 && is_relational(t[l - 1])) ||
                     (b + 1 < close && is_relational(t[b + 1]));
          if (rel) tainted.erase(t[b].text);
        }
        // fall through: the condition may itself contain sinks (subscripts),
        // which the main walk reaches next.
        continue;
      }
      if (t[i].kind == Tok::identifier && is_validator_name(t[i].text) &&
          i + 1 < end && is_punct(t[i + 1], "(")) {
        std::size_t close = skip_balanced(t, i + 1);
        for (std::size_t b = i + 2; b + 1 < close; ++b)
          if (t[b].kind == Tok::identifier) tainted.erase(t[b].text);
        i = close - 1;
        continue;
      }
      if (tainted.empty()) continue;
      // Sink: loop bound — `for (...; i < *n; ...)`.
      if (is_ident(t[i], "for") && i + 1 < end && is_punct(t[i + 1], "(")) {
        std::size_t close = skip_balanced(t, i + 1);
        for (std::size_t b = i + 2; b < close; ++b) {
          if (!(is_relational(t[b]) || is_punct(t[b], "!="))) continue;
          std::size_t v = b + 1;
          if (v < close && is_punct(t[v], "*")) ++v;
          if (v < close && t[v].kind == Tok::identifier &&
              tainted.count(t[v].text))
            report(t[v].line, t[v].text, "a loop bound");
        }
        continue;
      }
      // Sink: resize/reserve argument.
      if (t[i].kind == Tok::identifier &&
          (t[i].text == "resize" || t[i].text == "reserve") && i > 0 &&
          (is_punct(t[i - 1], ".") || is_punct(t[i - 1], "->")) &&
          i + 1 < end && is_punct(t[i + 1], "(")) {
        std::size_t close = skip_balanced(t, i + 1);
        if (!range_has_minclamp(t, i + 2, close)) {
          if (const std::string* name =
                  range_first_tainted(t, i + 2, close, tainted))
            report(t[i].line, *name, "a " + t[i].text + "() argument");
        }
        i = close - 1;
        continue;
      }
      // Sink: allocation size — `new T[n]`, malloc-family, sized container
      // construction (Buffer/vector/string with a count argument).
      if (is_ident(t[i], "new")) {
        std::size_t e = stmt_end(t, i + 1, end);
        for (std::size_t b = i + 1; b < e; ++b) {
          if (!is_punct(t[b], "[")) continue;
          std::size_t close = skip_balanced(t, b);
          if (!range_has_minclamp(t, b + 1, close - 1)) {
            if (const std::string* name =
                    range_first_tainted(t, b + 1, close - 1, tainted))
              report(t[b].line, *name, "an allocation size");
          }
          b = close - 1;
        }
        continue;
      }
      if (t[i].kind == Tok::identifier &&
          (t[i].text == "malloc" || t[i].text == "calloc" ||
           t[i].text == "realloc") &&
          i + 1 < end && is_punct(t[i + 1], "(")) {
        std::size_t close = skip_balanced(t, i + 1);
        if (!range_has_minclamp(t, i + 2, close)) {
          if (const std::string* name =
                  range_first_tainted(t, i + 2, close, tainted))
            report(t[i].line, *name, "an allocation size");
        }
        i = close - 1;
        continue;
      }
      if (t[i].kind == Tok::identifier &&
          (t[i].text == "Buffer" || t[i].text == "vector" ||
           t[i].text == "string")) {
        std::size_t j = i + 1;
        if (j < end && is_punct(t[j], "<")) j = skip_template_args(t, j);
        if (j < end && t[j].kind == Tok::identifier) ++j;  // var name
        if (j < end && is_punct(t[j], "(")) {
          std::size_t close = skip_balanced(t, j);
          if (!range_has_minclamp(t, j + 1, close)) {
            if (const std::string* name =
                    range_first_tainted(t, j + 1, close, tainted))
              report(t[i].line, *name, "an allocation size");
          }
          i = close - 1;
          continue;
        }
      }
      // Sink: array subscript — `buf[*n]` (capture lists and attributes have
      // no identifier/closer immediately before the '[').
      if (is_punct(t[i], "[") && i > 0 &&
          (t[i - 1].kind == Tok::identifier || is_punct(t[i - 1], "]") ||
           is_punct(t[i - 1], ")"))) {
        std::size_t close = skip_balanced(t, i);
        if (!range_has_minclamp(t, i + 1, close - 1)) {
          if (const std::string* name =
                  range_first_tainted(t, i + 1, close - 1, tainted))
            report(t[i].line, *name, "an array index");
        }
        i = close - 1;
        continue;
      }
    }
    (void)corpus;
  }
}

// ---------------------------------------------------------------------------
// hotpath-alloc
// ---------------------------------------------------------------------------

namespace {

bool is_growth_call(const std::string& s) {
  return s == "push_back" || s == "emplace_back" || s == "insert" ||
         s == "append" || s == "assign" || s == "resize" || s == "reserve" ||
         s == "emplace";
}

bool is_owned_container(const std::string& s) {
  return s == "string" || s == "vector" || s == "deque" || s == "map" ||
         s == "unordered_map" || s == "set" || s == "unordered_set" ||
         s == "list" || s == "ostringstream" || s == "stringstream";
}

std::string func_label(const FuncSpan& sp) {
  if (sp.name.empty()) return "(anonymous)";
  return sp.owner.empty() ? sp.name : sp.owner + "::" + sp.name;
}

}  // namespace

void pass_hotpath_alloc(const Corpus& corpus, const FileUnit& f,
                        const FileIndex& ix, std::vector<Finding>* out) {
  const Tokens& t = f.lx.tokens;

  // Seeds: @hotpath functions and every method of a @hotpath class.
  std::vector<char> hot(ix.funcs.size(), 0);
  for (std::size_t s = 0; s < ix.funcs.size(); ++s) {
    const FuncSpan& sp = ix.funcs[s];
    if (sp.coldpath) continue;
    if (sp.hotpath) hot[s] = 1;
    if (!sp.owner.empty()) {
      auto it = corpus.classes.find(sp.owner);
      if (it != corpus.classes.end() && it->second.hotpath) hot[s] = 1;
    }
  }
  // Same-file call-graph propagation to a fixpoint: a plain `callee(...)`
  // inside a hot body marks every same-named span hot (no overload
  // resolution — `@coldpath` is the opt-out for cold overloads).
  std::multimap<std::string, std::size_t> by_name;
  for (std::size_t s = 0; s < ix.funcs.size(); ++s)
    if (!ix.funcs[s].name.empty()) by_name.emplace(ix.funcs[s].name, s);
  bool changed = true;
  while (changed) {
    changed = false;
    for (std::size_t s = 0; s < ix.funcs.size(); ++s) {
      if (!hot[s]) continue;
      const FuncSpan& sp = ix.funcs[s];
      const std::size_t end = std::min(sp.body_end, t.size());
      for (std::size_t i = sp.body_begin + 1; i + 1 < end; ++i) {
        if (t[i].kind != Tok::identifier || !is_punct(t[i + 1], "("))
          continue;
        if (is_punct(t[i - 1], ".") || is_punct(t[i - 1], "->") ||
            is_punct(t[i - 1], "::"))
          continue;  // member/qualified call: target unknown, skip
        auto [lo, hi] = by_name.equal_range(t[i].text);
        for (auto it = lo; it != hi; ++it) {
          if (hot[it->second] || ix.funcs[it->second].coldpath) continue;
          hot[it->second] = 1;
          changed = true;
        }
      }
    }
  }

  auto report = [&](const FuncSpan& sp, int line, const char* kind,
                    const std::string& what) {
    if (suppressed(f, line, "hotpath-alloc")) return;
    Finding fd;
    fd.file = f.rel;
    fd.line = line;
    fd.rule = "hotpath-alloc";
    fd.message = "allocation (" + std::string(kind) + ": " + what +
                 ") in @hotpath function '" + func_label(sp) + "'";
    fd.suggestion =
        "preallocate in the owner or reuse a scratch buffer; annotate the "
        "function `// @coldpath` if it is off the indication path, or accept "
        "the debt via --write-baseline (tools/analyze/hotpath_baseline.txt)";
    fd.group = f.rel + "|" + func_label(sp) + "|" + kind;
    out->push_back(std::move(fd));
  };

  for (std::size_t s = 0; s < ix.funcs.size(); ++s) {
    if (!hot[s]) continue;
    const FuncSpan& sp = ix.funcs[s];
    const std::size_t end = std::min(sp.body_end, t.size());
    for (std::size_t i = sp.body_begin + 1; i + 1 < end; ++i) {
      if (t[i].kind != Tok::identifier) continue;
      const std::string& s_ = t[i].text;
      bool member = is_punct(t[i - 1], ".") || is_punct(t[i - 1], "->");
      if (s_ == "new" && !member) {
        report(sp, t[i].line, "new", "operator new");
        continue;
      }
      // A call may carry explicit template args: `make_unique<T>(...)`.
      std::size_t after_targs = i + 1;
      if (after_targs < end && is_punct(t[after_targs], "<"))
        after_targs = skip_template_args(t, after_targs);
      bool calls = after_targs < end && is_punct(t[after_targs], "(");
      if (calls && !member &&
          (s_ == "malloc" || s_ == "calloc" || s_ == "realloc" ||
           s_ == "strdup")) {
        report(sp, t[i].line, "malloc-family", s_);
        continue;
      }
      if (calls && (s_ == "make_unique" || s_ == "make_shared")) {
        report(sp, t[i].line, "make-smart-ptr", s_);
        continue;
      }
      if (calls && s_ == "to_string" && !member) {
        report(sp, t[i].line, "to-string", "std::to_string");
        continue;
      }
      if (calls && member && is_growth_call(s_)) {
        report(sp, t[i].line, "container-growth", "." + s_ + "()");
        continue;
      }
      // Owned-container construction with arguments (`std::string s(n, c)`,
      // `std::vector<T> v(n)`, `std::string(p, len)`): the construction
      // itself allocates. Bare declarations don't (growth is caught at the
      // member-call sites).
      if (is_owned_container(s_) && i >= 2 && is_punct(t[i - 1], "::") &&
          is_ident(t[i - 2], "std")) {
        std::size_t j = i + 1;
        if (j < end && is_punct(t[j], "<")) j = skip_template_args(t, j);
        std::size_t name_tok = 0;
        if (j < end && t[j].kind == Tok::identifier) name_tok = j++;
        if (j < end && (is_punct(t[j], "(") || is_punct(t[j], "{"))) {
          std::size_t close = skip_balanced(t, j);
          if (close > j + 2 || (name_tok == 0 && close > j + 1))
            report(sp, t[i].line, "owned-container", "std::" + s_);
        }
        continue;
      }
    }
  }
}

}  // namespace flexric::analyze
