// view-escape: borrow-lifetime discipline for wire-backed views (DESIGN.md
// §14). A "borrowed view" type (std::span / std::string_view / BytesView, a
// class annotated `@view_of(<owner>)`, or any alias of these) points into a
// buffer it does not own. The pass flags the four ways such a view can
// outlive its buffer in an event-driven RIC:
//
//   member   a view stored in a data member of a class that is not itself a
//            declared borrow (`@view_of`) and does not keep the owning
//            buffer alongside (`@extends_lifetime`)
//   capture  a view captured by a lambda handed to post()/add_timer()/
//            call_soon() — the task runs after the frame (and usually the
//            message buffer) is gone
//   ring     an SpscRing payload type that contains a view — the consumer
//            thread dereferences a buffer the producer may have recycled
//   return   a function with a view in its return type returning an
//            expression that names a local owning object (std::string,
//            Buffer, writer scratch) — dangling the moment the frame unwinds
#include <algorithm>
#include <cstddef>

#include "rules.hpp"

namespace flexric::analyze {

namespace {

bool is_view_tok(const Corpus& corpus, const Token& tok) {
  return tok.kind == Tok::identifier && corpus.view_types.count(tok.text) != 0;
}

/// Innermost segment of a `A::B::C` type chain.
std::string chain_tail(const std::string& chain) {
  std::size_t pos = chain.rfind("::");
  return pos == std::string::npos ? chain : chain.substr(pos + 2);
}

/// Owning types whose storage dies with the enclosing frame.
bool is_owning_local_type(const std::string& s) {
  return s == "string" || s == "Buffer" || s == "vector" ||
         s == "ostringstream" || s == "stringstream" || s == "BufWriter" ||
         s == "FlatWriter" || s == "array";
}

constexpr const char* kPostFns[] = {"post", "add_timer", "call_soon"};

bool is_post_fn(const Token& t) {
  for (const char* f : kPostFns)
    if (is_ident(t, f)) return true;
  return false;
}

/// Declared names with a view (or owning) head type in [lo, hi):
/// `Type name` followed by one of `follow`. Template args and */& are
/// skipped after the head; `auto` declarations are out of scope.
void collect_decls(const Corpus& corpus, const Tokens& t, std::size_t lo,
                   std::size_t hi, bool views, const char* const* follow,
                   std::size_t nfollow, std::set<std::string>* out) {
  for (std::size_t i = lo; i + 1 < hi && i + 1 < t.size(); ++i) {
    if (t[i].kind != Tok::identifier) continue;
    bool head = views ? is_view_tok(corpus, t[i])
                      : is_owning_local_type(t[i].text);
    if (!head) continue;
    std::size_t j = i + 1;
    if (j < t.size() && is_punct(t[j], "<")) j = skip_template_args(t, j);
    int guard = 0;
    while (j < t.size() && guard++ < 3 &&
           (is_punct(t[j], ">") || is_punct(t[j], ">>") ||
            is_punct(t[j], "*") || is_punct(t[j], "&")))
      ++j;
    if (j + 1 >= t.size() || t[j].kind != Tok::identifier) continue;
    bool ok = false;
    for (std::size_t k = 0; k < nfollow; ++k)
      if (is_punct(t[j + 1], follow[k])) ok = true;
    if (ok) out->insert(t[j].text);
  }
}

}  // namespace

void register_view_types(const FileUnit& f, const FileIndex& ix,
                         Corpus& corpus) {
  if (f.category != "src") return;
  const Tokens& t = f.lx.tokens;
  for (std::size_t i = 0; i + 1 < t.size(); ++i) {
    // `@view_of(<owner>)` / `@extends_lifetime` on a class declaration make
    // the class a declared borrow cursor / a sanctioned owner-plus-view.
    if ((is_ident(t[i], "class") || is_ident(t[i], "struct")) &&
        t[i + 1].kind == Tok::identifier) {
      if (annotation_near(f.lx, t[i].line, "@view_of("))
        corpus.view_types.insert(t[i + 1].text);
      if (annotation_near(f.lx, t[i].line, "@extends_lifetime"))
        corpus.lifetime_classes.insert(t[i + 1].text);
    }
    // `using X = <rhs>;` at declaration scope (alias templates included).
    if (is_ident(t[i], "using") && ix.scopes.func_depth[i] == 0 &&
        t[i + 1].kind == Tok::identifier && i + 2 < t.size() &&
        is_punct(t[i + 2], "=")) {
      std::vector<std::string> rhs;
      for (std::size_t j = i + 3; j < t.size() && !is_punct(t[j], ";"); ++j)
        if (t[j].kind == Tok::identifier) rhs.push_back(t[j].text);
      corpus.type_aliases.emplace_back(t[i + 1].text, std::move(rhs));
    }
  }
}

void resolve_view_aliases(Corpus& corpus) {
  bool changed = true;
  while (changed) {
    changed = false;
    for (const auto& [name, rhs] : corpus.type_aliases) {
      if (corpus.view_types.count(name) != 0) continue;
      // `using Handler = std::function<void(BytesView)>` is a callback whose
      // *signature* mentions a view — it stores nothing borrowed.
      bool callback = false;
      for (const auto& id : rhs)
        if (id == "function") callback = true;
      if (callback) continue;
      for (const auto& id : rhs)
        if (corpus.view_types.count(id) != 0) {
          corpus.view_types.insert(name);
          changed = true;
          break;
        }
    }
  }
}

void pass_view_escape(const Corpus& corpus, const FileUnit& f,
                      const FileIndex& ix, std::vector<Finding>* out) {
  const Tokens& t = f.lx.tokens;
  const ScopeInfo& scopes = ix.scopes;

  auto report = [&](int line, const std::string& msg, const std::string& fix) {
    if (suppressed(f, line, "view-escape")) return;
    Finding fd;
    fd.file = f.rel;
    fd.line = line;
    fd.rule = "view-escape";
    fd.message = msg;
    fd.suggestion = fix;
    out->push_back(std::move(fd));
  };

  // (a) Malformed annotation: an anchored `@view_of(` comment must name the
  // owner whose lifetime the view borrows.
  for (auto it = f.lx.comments.begin(); it != f.lx.comments.end(); ++it) {
    const std::string& text = it->second;
    std::size_t pos = text.find("@view_of(");
    if (pos == std::string::npos) continue;
    bool anchored = true;
    for (std::size_t k = 0; k < pos; ++k)
      if (text[k] != ' ' && text[k] != '\t' && text[k] != '*' &&
          text[k] != '/')
        anchored = false;
    if (!anchored) continue;
    auto prev = f.lx.comments.find(it->first - 1);
    if (prev != f.lx.comments.end() && prev->second == text) continue;
    std::size_t close = text.find(')', pos + 9);
    std::string arg =
        close == std::string::npos ? "" : text.substr(pos + 9, close - pos - 9);
    while (!arg.empty() && arg.front() == ' ') arg.erase(arg.begin());
    if (!arg.empty()) continue;
    report(it->first,
           "malformed @view_of — name the owner the view borrows from",
           "write `// @view_of(<owner>)`, e.g. `@view_of(the wire Buffer "
           "passed to parse())`");
  }

  // (b) View-typed data member of a class that is neither a declared borrow
  // (@view_of, transitively a view type itself) nor @extends_lifetime.
  // `static`/`constexpr` members (string_view constants over literals) are
  // exempt: the borrowed storage has static duration.
  for (std::size_t i = 1; i + 1 < t.size(); ++i) {
    if (scopes.func_depth[i] != 0) continue;
    if (t[i].kind != Tok::identifier) continue;
    if (!(is_punct(t[i + 1], ";") || is_punct(t[i + 1], "=") ||
          is_punct(t[i + 1], "{")))
      continue;
    const std::string& chain = scopes.type_chain[i];
    if (chain.empty()) continue;
    std::size_t lo = 0;
    for (std::size_t j = i; j-- > 0;) {
      if (is_punct(t[j], ";") || is_punct(t[j], "}") || is_punct(t[j], "{")) {
        lo = j + 1;
        break;
      }
    }
    bool member_shape = true, has_view = false, exempt = false;
    for (std::size_t j = lo; j < i && member_shape; ++j) {
      if (is_punct(t[j], "(") || is_ident(t[j], "class") ||
          is_ident(t[j], "struct") || is_ident(t[j], "enum") ||
          is_ident(t[j], "union") || is_ident(t[j], "using") ||
          is_ident(t[j], "typedef") || is_ident(t[j], "friend") ||
          is_ident(t[j], "namespace") || is_ident(t[j], "return"))
        member_shape = false;
      if (is_view_tok(corpus, t[j])) has_view = true;
      // `std::function<Status(BytesView)> on_msg_;` stores a callback, not a
      // borrow — the view only appears in the callable's signature.
      if (is_ident(t[j], "static") || is_ident(t[j], "constexpr") ||
          is_ident(t[j], "function"))
        exempt = true;
    }
    if (!member_shape || !has_view || exempt) continue;
    const std::string owner = chain_tail(chain);
    if (corpus.view_types.count(owner) != 0 ||
        corpus.lifetime_classes.count(owner) != 0)
      continue;
    if (annotation_near(f.lx, t[i].line, "@extends_lifetime")) continue;
    report(t[i].line,
           "view-typed member '" + t[i].text + "' of class " + owner +
               " stores a borrow that can outlive its buffer",
           "annotate the class `// @view_of(<owner>)` if it is a borrow "
           "cursor, keep the owning Buffer in the same object and mark it "
           "`// @extends_lifetime`, or copy into owned storage");
  }

  // (c) SpscRing payload containing a view crosses a thread boundary with a
  // borrowed pointer.
  for (std::size_t i = 0; i + 1 < t.size(); ++i) {
    if (!is_ident(t[i], "SpscRing") || !is_punct(t[i + 1], "<")) continue;
    std::size_t end = skip_template_args(t, i + 1);
    for (std::size_t j = i + 2; j + 1 < end; ++j) {
      if (!is_view_tok(corpus, t[j])) continue;
      if (annotation_near(f.lx, t[i].line, "@extends_lifetime")) break;
      report(t[i].line,
             "SpscRing payload carries borrowed view type '" + t[j].text +
                 "' across threads; the producer's buffer may be recycled "
                 "before the consumer looks",
             "make the ring element own its bytes (Buffer / value struct), "
             "or mark the declaration `// @extends_lifetime` if a pooled "
             "owner rides alongside");
      break;
    }
  }

  static const char* kLocalFollow[] = {"=", ";", "{", ",", ")"};
  static const char* kOwnerFollow[] = {"=", ";", "{", "("};

  for (const FuncSpan& sp : ix.funcs) {
    const std::size_t end = std::min(sp.body_end, t.size());

    // (d) View locals/params captured by a reactor-posted lambda.
    std::set<std::string> view_vars;
    collect_decls(corpus, t, sp.sig_begin, end, /*views=*/true, kLocalFollow,
                  5, &view_vars);
    if (!view_vars.empty()) {
      for (std::size_t i = sp.body_begin; i + 1 < end; ++i) {
        if (!is_post_fn(t[i]) || !is_punct(t[i + 1], "(")) continue;
        if (annotation_near(f.lx, t[i].line, "@extends_lifetime")) continue;
        std::size_t call_end = skip_balanced(t, i + 1);
        for (std::size_t j = i + 2; j < call_end; ++j) {
          if (!is_punct(t[j], "[") ||
              !(is_punct(t[j - 1], "(") || is_punct(t[j - 1], ",")))
            continue;
          std::vector<Capture> caps;
          std::size_t after = parse_captures(t, j, &caps);
          bool def_capture = false;
          std::string hit;
          for (const Capture& c : caps) {
            if (c.def_copy || c.def_ref) def_capture = true;
            if (!c.name.empty() && view_vars.count(c.name) != 0) hit = c.name;
            for (const Token& tok : c.init)
              if (tok.kind == Tok::identifier &&
                  view_vars.count(tok.text) != 0)
                hit = tok.text;
          }
          if (hit.empty() && def_capture) {
            // Default capture: the view escapes iff the body names it.
            std::size_t k = after;
            if (k < t.size() && is_punct(t[k], "(")) k = skip_balanced(t, k);
            while (k < t.size() &&
                   (is_ident(t[k], "mutable") || is_ident(t[k], "noexcept") ||
                    is_punct(t[k], "->") || t[k].kind == Tok::identifier))
              ++k;
            if (k < t.size() && is_punct(t[k], "{")) {
              std::size_t body_end = skip_balanced(t, k);
              for (std::size_t b = k + 1; b + 1 < body_end; ++b) {
                if (t[b].kind != Tok::identifier ||
                    view_vars.count(t[b].text) == 0)
                  continue;
                if (is_punct(t[b - 1], ".") || is_punct(t[b - 1], "->"))
                  continue;
                hit = t[b].text;
                break;
              }
            }
          }
          if (!hit.empty() &&
              !suppressed(f, t[j].line, "view-escape")) {
            report(t[j].line,
                   "lambda passed to " + t[i].text + "() captures borrowed "
                   "view '" + hit + "'; the buffer it points into may be "
                   "gone when the task runs",
                   "copy the bytes into an owning Buffer before posting, or "
                   "mark the call `// @extends_lifetime` when a pooled "
                   "owner is captured alongside");
          }
          j = after - 1;
        }
      }
    }

    // (e) Function whose return type names a view returning an expression
    // that references a local owning object.
    bool returns_view = false;
    std::size_t sig_stop = sp.body_begin;
    for (std::size_t i = sp.sig_begin; i < sp.body_begin && i < t.size(); ++i)
      if (is_punct(t[i], "(")) {
        sig_stop = i;
        break;
      }
    // The zone is the return type only: peel the function name and its
    // `Class::` qualifiers off the end (`Result<Buffer> PerReader::octets(`
    // must not count PerReader — the *receiver* is a view, not the result).
    std::size_t type_end = sig_stop;
    if (type_end > sp.sig_begin && t[type_end - 1].kind == Tok::identifier) {
      --type_end;
      while (type_end >= sp.sig_begin + 2 && is_punct(t[type_end - 1], "::") &&
             t[type_end - 2].kind == Tok::identifier)
        type_end -= 2;
    }
    for (std::size_t i = sp.sig_begin; i < type_end; ++i)
      if (is_view_tok(corpus, t[i])) returns_view = true;
    if (!returns_view) continue;
    std::set<std::string> owning_locals;
    collect_decls(corpus, t, sp.body_begin, end, /*views=*/false,
                  kOwnerFollow, 4, &owning_locals);
    if (owning_locals.empty()) continue;
    for (std::size_t i = sp.body_begin; i + 1 < end; ++i) {
      if (!is_ident(t[i], "return")) continue;
      std::size_t e = i + 1;
      int depth = 0;
      while (e < end && (depth > 0 || !is_punct(t[e], ";"))) {
        if (is_punct(t[e], "(") || is_punct(t[e], "{") ||
            is_punct(t[e], "["))
          ++depth;
        if (is_punct(t[e], ")") || is_punct(t[e], "}") ||
            is_punct(t[e], "]"))
          --depth;
        ++e;
      }
      for (std::size_t b = i + 1; b < e; ++b) {
        if (t[b].kind != Tok::identifier ||
            owning_locals.count(t[b].text) == 0)
          continue;
        if (is_punct(t[b - 1], ".") || is_punct(t[b - 1], "->")) continue;
        report(t[b].line,
               "returning a view that borrows local owner '" + t[b].text +
                   "' from '" + (sp.name.empty() ? "(anonymous)" : sp.name) +
                   "' — the storage dies with this frame",
               "return an owning type (std::string / Buffer), or take the "
               "owner as a parameter so the caller controls its lifetime");
        break;
      }
      i = e;
    }
  }
}

}  // namespace flexric::analyze
