// atomics-order: lock-free discipline for the sharded runtime (DESIGN.md
// §14). Five checks over the corpus-wide atomic registry built by
// register_atomics():
//
//   b1  every SpscRing try_push/try_pop call site carries a
//       `@producer(<ring>)` / `@consumer(<ring>)` annotation, and every ring
//       name has exactly one producer site and one consumer site — the
//       single-producer/single-consumer contract is structural, so two push
//       sites on one ring is a bug even when both run on the same thread
//       today
//   b2  a function that publishes two or more distinct fields with relaxed
//       stores and no release-or-stronger store/fence in between is a torn
//       publish: a reader can observe field A's new value with field B's old
//       one
//   b3  a field that some site acquire-loads but that no site ever
//       release-stores never synchronizes — the acquire is a no-op and the
//       relaxed stores leak unordered data
//   b4  defaulted (seq_cst) atomic ops inside `@hotpath` code pay a full
//       fence per op on ARM/POWER; spell the intended order
//   b5  a mutable atomic inside an `@affine(shard)` class without alignas(64)
//       invites false sharing with its neighbours across shard threads
//   b6  SpscRing::reset_endpoints() forgets in-flight entries and breaks the
//       single-producer/single-consumer handoff unless both sides are known
//       quiescent; only a supervised shard rebuild can guarantee that, so
//       every call site must carry a `// @recovery` annotation marking it as
//       part of that sanctioned path
#include <algorithm>
#include <cstddef>
#include <map>

#include "rules.hpp"

namespace flexric::analyze {

namespace {

struct OpKind {
  const char* name;
  bool store;
  bool load;
};

constexpr OpKind kAtomicOps[] = {
    {"load", false, true},
    {"store", true, false},
    {"exchange", true, true},
    {"fetch_add", true, true},
    {"fetch_sub", true, true},
    {"fetch_and", true, true},
    {"fetch_or", true, true},
    {"fetch_xor", true, true},
    {"compare_exchange_weak", true, true},
    {"compare_exchange_strong", true, true},
};

const OpKind* atomic_op(const Token& t) {
  if (t.kind != Tok::identifier) return nullptr;
  for (const OpKind& op : kAtomicOps)
    if (t.text == op.name) return &op;
  return nullptr;
}

/// First memory_order_* / std::memory_order::* identifier in a call's
/// argument list, stripped to its short name ("" when defaulted).
std::string order_in_args(const Tokens& t, std::size_t open,
                          std::size_t close) {
  for (std::size_t i = open + 1; i < close; ++i) {
    if (t[i].kind != Tok::identifier) continue;
    const std::string& s = t[i].text;
    if (s.rfind("memory_order_", 0) == 0) return s.substr(13);
    if (s == "memory_order" && i + 2 < close && is_punct(t[i + 1], "::") &&
        t[i + 2].kind == Tok::identifier)
      return t[i + 2].text;
  }
  return "";
}

/// Defaulted order is seq_cst: at least as strong as anything.
bool order_at_least_release(const std::string& o) {
  return o.empty() || o == "release" || o == "acq_rel" || o == "seq_cst";
}
bool order_at_least_acquire(const std::string& o) {
  return o.empty() || o == "acquire" || o == "acq_rel" || o == "seq_cst";
}

/// The enclosing FuncSpan for a token index, or nullptr at declaration scope.
const FuncSpan* enclosing_span(const FileIndex& ix, std::size_t i) {
  for (const FuncSpan& sp : ix.funcs)
    if (i >= sp.body_begin && i < sp.body_end) return &sp;
  return nullptr;
}

}  // namespace

void register_atomics(const FileUnit& f, const FileIndex& ix, Corpus& corpus) {
  if (f.category != "src") return;
  const Tokens& t = f.lx.tokens;
  const ScopeInfo& scopes = ix.scopes;

  // Classes whose whole definition carries alignas (rare; the usual spelling
  // is per-member) — `struct alignas(64) Slot {`.
  std::set<std::string> aligned_classes;
  for (std::size_t i = 0; i + 2 < t.size(); ++i) {
    if (!(is_ident(t[i], "struct") || is_ident(t[i], "class"))) continue;
    std::size_t j = i + 1;
    if (is_ident(t[j], "alignas") && j + 1 < t.size() &&
        is_punct(t[j + 1], "(")) {
      j = skip_balanced(t, j + 1);
      if (j < t.size() && t[j].kind == Tok::identifier)
        aligned_classes.insert(t[j].text);
    }
  }

  for (std::size_t i = 0; i + 1 < t.size(); ++i) {
    // Atomic declarations at declaration scope:
    //   std::atomic<T> name;   alignas(64) std::atomic<T> name{0};
    if (is_ident(t[i], "atomic") && scopes.func_depth[i] == 0 &&
        is_punct(t[i + 1], "<")) {
      std::size_t j = skip_template_args(t, i + 1);
      int guard = 0;
      while (j < t.size() && guard++ < 3 &&
             (is_punct(t[j], "*") || is_punct(t[j], "&")))
        ++j;
      if (j + 1 < t.size() && t[j].kind == Tok::identifier &&
          (is_punct(t[j + 1], ";") || is_punct(t[j + 1], "{") ||
           is_punct(t[j + 1], "="))) {
        AtomicField fld;
        fld.file = f.rel;
        fld.line = t[j].line;
        fld.owner = scopes.type_chain[j];
        std::size_t pos = fld.owner.rfind("::");
        if (pos != std::string::npos) fld.owner = fld.owner.substr(pos + 2);
        // alignas anywhere between the statement boundary and the name.
        for (std::size_t k = j; k-- > 0;) {
          if (is_punct(t[k], ";") || is_punct(t[k], "{") ||
              is_punct(t[k], "}"))
            break;
          if (is_ident(t[k], "alignas")) fld.aligned = true;
        }
        if (aligned_classes.count(fld.owner) != 0) fld.aligned = true;
        corpus.atomic_fields.emplace(t[j].text, std::move(fld));
      }
    }

    // Atomic member ops: `field.store(...)`, `obj->field.load(...)`, RMWs.
    const OpKind* op = atomic_op(t[i]);
    if (op != nullptr && i >= 2 && i + 1 < t.size() &&
        is_punct(t[i + 1], "(") &&
        (is_punct(t[i - 1], ".") || is_punct(t[i - 1], "->")) &&
        t[i - 2].kind == Tok::identifier) {
      std::size_t close = skip_balanced(t, i + 1);
      AtomicUse use;
      use.file = f.rel;
      use.line = t[i].line;
      use.field = t[i - 2].text;
      use.op = op->name;
      use.order = order_in_args(t, i + 1, close - 1);
      use.is_store = op->store;
      use.is_load = op->load;
      if (const FuncSpan* sp = enclosing_span(ix, i)) {
        std::string label =
            sp->owner.empty() ? sp->name : sp->owner + "::" + sp->name;
        if (label.empty()) label = "(anonymous)";
        use.fn_key = f.rel + "|" + label + "|" + std::to_string(sp->line);
        use.fn_label = label;
        use.in_hot = sp->hotpath;
        if (!use.in_hot && !sp->owner.empty()) {
          auto it = corpus.classes.find(sp->owner);
          if (it != corpus.classes.end() && it->second.hotpath)
            use.in_hot = !sp->coldpath;
        }
      }
      corpus.atomic_uses.push_back(std::move(use));
    }

    // Standalone fences participate in the torn-publish check (b2).
    if (is_ident(t[i], "atomic_thread_fence") && is_punct(t[i + 1], "(")) {
      std::size_t close = skip_balanced(t, i + 1);
      AtomicUse use;
      use.file = f.rel;
      use.line = t[i].line;
      use.op = "fence";
      use.order = order_in_args(t, i + 1, close - 1);
      if (const FuncSpan* sp = enclosing_span(ix, i)) {
        std::string label =
            sp->owner.empty() ? sp->name : sp->owner + "::" + sp->name;
        if (label.empty()) label = "(anonymous)";
        use.fn_key = f.rel + "|" + label + "|" + std::to_string(sp->line);
        use.fn_label = label;
        use.in_hot = sp->hotpath;
      }
      corpus.atomic_uses.push_back(std::move(use));
    }
  }

  // SpscRing endpoint call sites. Ring declarations (members, locals,
  // smart-pointer holders — the declared identifier follows the template
  // args / declarator puncts) go into the corpus-wide name set; call sites
  // record their receiver and are matched against that set at pass time,
  // because rings are declared in headers while the endpoints live in .cpp
  // files.
  for (std::size_t i = 0; i + 1 < t.size(); ++i) {
    if (!is_ident(t[i], "SpscRing") || !is_punct(t[i + 1], "<")) continue;
    std::size_t j = skip_template_args(t, i + 1);
    int guard = 0;
    while (j < t.size() && guard++ < 4 &&
           (is_punct(t[j], ">") || is_punct(t[j], "*") || is_punct(t[j], "&")))
      ++j;
    if (j < t.size() && t[j].kind == Tok::identifier)
      corpus.spsc_names.insert(t[j].text);
  }
  for (std::size_t i = 2; i + 1 < t.size(); ++i) {
    bool push = is_ident(t[i], "try_push");
    bool pop = is_ident(t[i], "try_pop");
    if (!push && !pop) continue;
    if (!is_punct(t[i + 1], "(")) continue;
    if (!(is_punct(t[i - 1], ".") || is_punct(t[i - 1], "->"))) continue;
    if (t[i - 2].kind != Tok::identifier) continue;
    RingSite site;
    site.file = f.rel;
    site.line = t[i].line;
    site.push = push;
    site.receiver = t[i - 2].text;
    site.ring = annotation_arg_near(f.lx, t[i].line,
                                    push ? "@producer" : "@consumer");
    corpus.ring_sites.push_back(std::move(site));
  }

  // reset_endpoints call sites (b6): destructive ring re-arm, legal only
  // from the supervised rebuild (`// @recovery`).
  for (std::size_t i = 2; i + 1 < t.size(); ++i) {
    if (!is_ident(t[i], "reset_endpoints")) continue;
    if (!is_punct(t[i + 1], "(")) continue;
    if (!(is_punct(t[i - 1], ".") || is_punct(t[i - 1], "->"))) continue;
    if (t[i - 2].kind != Tok::identifier) continue;
    ResetSite site;
    site.file = f.rel;
    site.line = t[i].line;
    site.receiver = t[i - 2].text;
    site.sanctioned = annotation_near(f.lx, t[i].line, "@recovery");
    corpus.reset_sites.push_back(std::move(site));
  }
}

void pass_atomics_order(const Corpus& corpus, const FileUnit& f,
                        const FileIndex& ix, std::vector<Finding>* out) {
  (void)ix;
  auto report = [&](int line, const std::string& msg, const std::string& fix) {
    if (suppressed(f, line, "atomics-order")) return;
    Finding fd;
    fd.file = f.rel;
    fd.line = line;
    fd.rule = "atomics-order";
    fd.message = msg;
    fd.suggestion = fix;
    out->push_back(std::move(fd));
  };

  // --- b1: SPSC endpoint annotation + exactness --------------------------
  std::map<std::string, int> push_count, pop_count;
  for (const RingSite& s : corpus.ring_sites) {
    if (s.ring.empty() || corpus.spsc_names.count(s.receiver) == 0) continue;
    (s.push ? push_count : pop_count)[s.ring]++;
  }
  for (const RingSite& s : corpus.ring_sites) {
    if (s.file != f.rel) continue;
    if (corpus.spsc_names.count(s.receiver) == 0) continue;
    const char* end = s.push ? "producer" : "consumer";
    if (s.ring.empty()) {
      report(s.line,
             std::string("SpscRing ") + (s.push ? "try_push" : "try_pop") +
                 " site lacks a @" + end + "(<ring>) annotation",
             std::string("add `// @") + end +
                 "(<ring-name>)` naming the logical ring this end belongs "
                 "to; the pass enforces one site per end");
      continue;
    }
    int mine = s.push ? push_count[s.ring] : pop_count[s.ring];
    if (mine > 1)
      report(s.line,
             "ring '" + s.ring + "' has " + std::to_string(mine) + " " + end +
                 " sites; the single-" + end + " contract allows exactly one",
             "funnel every " + std::string(s.push ? "push" : "pop") +
                 " through one function so the " + end +
                 " end has a single call site");
    int other = s.push ? pop_count[s.ring] : push_count[s.ring];
    if (other == 0)
      report(s.line,
             "ring '" + s.ring + "' has a " + std::string(end) +
                 " site but no " + (s.push ? "consumer" : "producer") +
                 " anywhere in the corpus",
             std::string("annotate the matching ") +
                 (s.push ? "try_pop" : "try_push") + " site `// @" +
                 (s.push ? "consumer" : "producer") + "(" + s.ring + ")`");
  }

  // --- b6: reset_endpoints outside the sanctioned recovery path ----------
  for (const ResetSite& s : corpus.reset_sites) {
    if (s.file != f.rel || s.sanctioned) continue;
    if (corpus.spsc_names.count(s.receiver) == 0) continue;
    report(s.line,
           "SpscRing reset_endpoints() outside the sanctioned recovery path "
           "— re-arming forgets in-flight entries and breaks the SPSC "
           "handoff unless both ends are quiescent",
           "only call this from a supervised shard rebuild (drain + harvest "
           "first) and mark the site `// @recovery`");
  }

  // --- b2: relaxed group publish without a release barrier ---------------
  // Group uses by enclosing function; flag when ≥2 distinct fields are
  // relaxed-stored and nothing in the function orders them for a reader.
  std::map<std::string, std::vector<const AtomicUse*>> by_fn;
  for (const AtomicUse& u : corpus.atomic_uses) {
    if (u.file != f.rel || u.fn_key.empty()) continue;
    by_fn[u.fn_key].push_back(&u);
  }
  for (const auto& [key, uses] : by_fn) {
    std::set<std::string> relaxed_stored;
    const AtomicUse* first = nullptr;
    bool has_release = false;
    for (const AtomicUse* u : uses) {
      if (u->is_store && u->order == "relaxed" && !u->field.empty()) {
        relaxed_stored.insert(u->field);
        if (first == nullptr || u->line < first->line) first = u;
      }
      if ((u->is_store || u->op == "fence") &&
          order_at_least_release(u->order))
        has_release = true;
    }
    if (relaxed_stored.size() >= 2 && !has_release && first != nullptr)
      report(first->line,
             "'" + first->fn_label + "' publishes " +
                 std::to_string(relaxed_stored.size()) +
                 " fields with relaxed stores and no release barrier — a "
                 "reader can see them torn",
             "make the last store memory_order_release, add a release "
             "fence, or wrap the group in a seqlock (odd/even sequence "
             "counter)");
  }

  // --- b3: acquire loads that never pair with a release store ------------
  // Corpus-wide per field; findings attach to this file's sites only.
  std::map<std::string, std::vector<const AtomicUse*>> by_field;
  for (const AtomicUse& u : corpus.atomic_uses)
    if (!u.field.empty() && corpus.atomic_fields.count(u.field) != 0)
      by_field[u.field].push_back(&u);
  for (const auto& [field, uses] : by_field) {
    bool acquire_load = false, any_store = false, release_store = false;
    for (const AtomicUse* u : uses) {
      if (u->is_load && !u->is_store && order_at_least_acquire(u->order))
        acquire_load = true;
      if (u->is_store) {
        any_store = true;
        if (order_at_least_release(u->order)) release_store = true;
      }
    }
    if (!acquire_load || release_store) continue;
    if (!any_store) continue;  // load-only fields: config read post-init
    for (const AtomicUse* u : uses) {
      if (u->file != f.rel) continue;
      if (!u->is_store || u->order != "relaxed") continue;
      report(u->line,
             "relaxed store to '" + field + "' — another site acquire-loads "
                 "this field, but no store ever releases, so the acquire "
                 "never synchronizes",
             "store with memory_order_release (or add a release fence "
             "before a relaxed flag store)");
    }
  }

  // --- b4: defaulted seq_cst on the hot path -----------------------------
  for (const AtomicUse& u : corpus.atomic_uses) {
    if (u.file != f.rel || !u.in_hot || u.op == "fence") continue;
    if (!u.order.empty()) continue;
    report(u.line,
           "defaulted (seq_cst) atomic " + u.op + " on '" + u.field +
               "' in @hotpath '" + u.fn_label + "' — a full fence per op",
           "spell the weakest order that is correct "
           "(memory_order_relaxed for counters, acquire/release for "
           "handoff)");
  }

  // --- b5: false sharing in @affine(shard) classes -----------------------
  for (const auto& [name, fld] : corpus.atomic_fields) {
    if (fld.file != f.rel || fld.aligned || fld.owner.empty()) continue;
    auto it = corpus.classes.find(fld.owner);
    if (it == corpus.classes.end() || it->second.domain != "shard") continue;
    report(fld.line,
           "atomic '" + name + "' in @affine(shard) class " + fld.owner +
               " is not alignas(64) — neighbouring shards' writes will "
               "false-share its cache line",
           "declare it `alignas(64) std::atomic<...> " + name + ";`");
  }
}

}  // namespace flexric::analyze
