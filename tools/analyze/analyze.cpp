// flexric-analyze: reactor-affinity & lambda-lifetime static analyzer.
//
// Dependency-free (stdlib only) so it builds everywhere the SDK builds and
// can run as a CTest gate next to `lint`. See rules.hpp for the rule set and
// DESIGN.md §10 for the model.
//
// Usage:
//   flexric-analyze --root <repo>          scan src/ bench/ examples/ tests/
//   flexric-analyze --root <repo> --rule R run only rule R (repeatable)
//   flexric-analyze --root <repo> --list   print every suppression + reason
//   flexric-analyze --fix-suggestions ...  append a suggested fix per finding
//   flexric-analyze --fixtures <dir>       scan <dir> (category = first path
//                                          component) and diff the findings
//                                          against <dir>/expected.txt
//
// Exit codes: 0 clean, 1 findings (or fixture mismatch), 2 usage/IO error.

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "rules.hpp"

namespace fs = std::filesystem;
using namespace flexric::analyze;

namespace {

bool has_cpp_ext(const fs::path& p) {
  auto e = p.extension().string();
  return e == ".cpp" || e == ".hpp" || e == ".cc" || e == ".h";
}

std::string slurp(const fs::path& p) {
  std::ifstream in(p, std::ios::binary);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

std::string to_rel(const fs::path& p, const fs::path& root) {
  std::string s = p.lexically_relative(root).generic_string();
  return s;
}

/// Load every C++ file under root/<top> into the corpus with category <cat>.
void load_dir(Corpus& corpus, const fs::path& root, const std::string& top,
              const std::string& cat) {
  fs::path dir = root / top;
  std::error_code ec;
  if (!fs::is_directory(dir, ec)) return;
  std::vector<fs::path> paths;
  for (auto it = fs::recursive_directory_iterator(dir, ec);
       it != fs::recursive_directory_iterator(); it.increment(ec)) {
    if (ec) break;
    if (!it->is_regular_file() || !has_cpp_ext(it->path())) continue;
    std::string rel = to_rel(it->path(), root);
    // The fixture corpus intentionally contains violations.
    if (rel.rfind("tests/analyze_fixtures", 0) == 0) continue;
    paths.push_back(it->path());
  }
  std::sort(paths.begin(), paths.end());
  for (const auto& p : paths) {
    FileUnit f;
    f.rel = to_rel(p, root);
    f.category = cat;
    f.lx = lex(slurp(p));
    corpus.files.push_back(std::move(f));
  }
}

std::string render(const Finding& f, bool with_suggestion) {
  std::string s =
      f.file + ":" + std::to_string(f.line) + ": [" + f.rule + "] " + f.message;
  if (with_suggestion && !f.suggestion.empty()) s += "\n    fix: " + f.suggestion;
  return s;
}

int run_fixtures(const fs::path& dir, const std::set<std::string>& rules) {
  std::error_code ec;
  if (!fs::is_directory(dir, ec)) {
    std::fprintf(stderr, "flexric-analyze: no such fixture dir: %s\n",
                 dir.string().c_str());
    return 2;
  }
  Corpus corpus;
  // Category = first path component under the fixture dir (src/, examples/,
  // ...), mirroring the real layout so the per-category rule gating applies.
  std::vector<fs::path> paths;
  for (auto it = fs::recursive_directory_iterator(dir, ec);
       it != fs::recursive_directory_iterator(); it.increment(ec)) {
    if (ec) break;
    if (it->is_regular_file() && has_cpp_ext(it->path()))
      paths.push_back(it->path());
  }
  std::sort(paths.begin(), paths.end());
  for (const auto& p : paths) {
    FileUnit f;
    f.rel = to_rel(p, dir);
    auto slash = f.rel.find('/');
    f.category = slash == std::string::npos ? "src" : f.rel.substr(0, slash);
    f.lx = lex(slurp(p));
    corpus.files.push_back(std::move(f));
  }
  build_registry(corpus);
  std::vector<std::string> got;
  for (const auto& f : run_rules(corpus, rules)) got.push_back(render(f, false));

  std::vector<std::string> want;
  std::ifstream exp(dir / "expected.txt");
  if (!exp) {
    std::fprintf(stderr, "flexric-analyze: missing %s/expected.txt\n",
                 dir.string().c_str());
    return 2;
  }
  for (std::string line; std::getline(exp, line);) {
    if (line.empty() || line[0] == '#') continue;
    want.push_back(line);
  }
  std::sort(want.begin(), want.end());
  std::sort(got.begin(), got.end());
  if (got == want) {
    std::printf("fixtures OK: %zu findings matched expected.txt\n", got.size());
    return 0;
  }
  std::printf("fixture mismatch:\n");
  for (const auto& g : got)
    if (!std::binary_search(want.begin(), want.end(), g))
      std::printf("  unexpected: %s\n", g.c_str());
  for (const auto& w : want)
    if (!std::binary_search(got.begin(), got.end(), w))
      std::printf("  missing:    %s\n", w.c_str());
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  fs::path root;
  fs::path fixtures;
  std::set<std::string> rules;
  bool list_suppressions = false;
  bool fix_suggestions = false;

  for (int i = 1; i < argc; ++i) {
    std::string a = argv[i];
    auto need_val = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "flexric-analyze: %s needs a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (a == "--root") {
      root = need_val("--root");
    } else if (a == "--fixtures") {
      fixtures = need_val("--fixtures");
    } else if (a == "--rule") {
      std::string r = need_val("--rule");
      bool known = false;
      for (const char* k : kAllRules)
        if (r == k) known = true;
      if (!known) {
        std::fprintf(stderr, "flexric-analyze: unknown rule '%s'\n", r.c_str());
        return 2;
      }
      rules.insert(r);
    } else if (a == "--list") {
      list_suppressions = true;
    } else if (a == "--fix-suggestions") {
      fix_suggestions = true;
    } else if (a == "--help" || a == "-h") {
      std::printf(
          "usage: flexric-analyze --root <repo> [--rule R]... [--list] "
          "[--fix-suggestions]\n"
          "       flexric-analyze --fixtures <dir> [--rule R]...\n"
          "rules:\n");
      for (const char* k : kAllRules) std::printf("  %s\n", k);
      return 0;
    } else {
      std::fprintf(stderr, "flexric-analyze: unknown argument '%s'\n",
                   a.c_str());
      return 2;
    }
  }
  if (rules.empty())
    for (const char* k : kAllRules) rules.insert(k);

  if (!fixtures.empty()) return run_fixtures(fixtures, rules);

  if (root.empty()) {
    std::fprintf(stderr, "flexric-analyze: --root (or --fixtures) required\n");
    return 2;
  }
  std::error_code ec;
  if (!fs::is_directory(root / "src", ec)) {
    std::fprintf(stderr, "flexric-analyze: %s does not look like the repo root\n",
                 root.string().c_str());
    return 2;
  }

  Corpus corpus;
  load_dir(corpus, root, "src", "src");
  load_dir(corpus, root, "bench", "bench");
  load_dir(corpus, root, "examples", "examples");
  load_dir(corpus, root, "tests", "tests");
  build_registry(corpus);

  if (list_suppressions) {
    auto sups = collect_suppressions(corpus);
    std::printf("%zu suppression(s):\n", sups.size());
    int missing_reason = 0;
    for (const auto& s : sups) {
      std::printf("  %s:%d [%s] %s\n", s.file.c_str(), s.line, s.rule.c_str(),
                  s.reason.empty() ? "(NO REASON)" : s.reason.c_str());
      if (s.reason.empty()) ++missing_reason;
    }
    if (missing_reason > 0) {
      std::printf("%d suppression(s) missing a reason — reasons are "
                  "mandatory\n", missing_reason);
      return 1;
    }
    return 0;
  }

  auto findings = run_rules(corpus, rules);
  for (const auto& f : findings)
    std::printf("%s\n", render(f, fix_suggestions).c_str());
  if (findings.empty()) {
    std::printf("flexric-analyze: clean (%zu files, %zu nodiscard fns, %zu "
                "affine classes)\n",
                corpus.files.size(), corpus.nodiscard_fns.size(),
                corpus.affine_classes.size());
    return 0;
  }
  std::printf("flexric-analyze: %zu finding(s)\n", findings.size());
  return 1;
}
