// flexric-analyze: multi-pass static analyzer for the FlexRIC SDK.
//
// Dependency-free (stdlib only) so it builds everywhere the SDK builds and
// can run as a CTest gate next to `lint`. See rules.hpp for the rule set and
// DESIGN.md §10/§12 for the model.
//
// Usage:
//   flexric-analyze --root <repo>          scan src/ bench/ examples/ tests/
//   flexric-analyze --root <repo> --rule R run only rule R (repeatable)
//   flexric-analyze --root <repo> --list   print every suppression + reason
//   flexric-analyze --fix-suggestions ...  append a suggested fix per finding
//   flexric-analyze --json ...             machine-readable findings (CI)
//   flexric-analyze --baseline <file>      accept hotpath-alloc debt recorded
//                                          in <file>; fail only on regressions
//   flexric-analyze --write-baseline <file> regenerate the debt file
//   flexric-analyze --fixtures <dir>       scan <dir> (category = first path
//                                          component) and diff the findings
//                                          against <dir>/expected.txt
//   flexric-analyze --self <dir>           scan <dir>'s own C++ files under
//                                          the full rule set as category
//                                          "src"; the analyzer dogfoods its
//                                          own discipline (zero findings)
//
// A full run (no --rule filter) also audits suppressions: every
// `lint: allow(...)` naming an analyzer rule must carry a reason and must
// actually silence a finding (stale suppressions fail the gate).
//
// Exit codes: 0 clean, 1 findings (or fixture mismatch), 2 usage/IO error.

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "rules.hpp"

namespace fs = std::filesystem;
using namespace flexric::analyze;

namespace {

bool has_cpp_ext(const fs::path& p) {
  auto e = p.extension().string();
  return e == ".cpp" || e == ".hpp" || e == ".cc" || e == ".h";
}

std::string slurp(const fs::path& p) {
  std::ifstream in(p, std::ios::binary);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

std::string to_rel(const fs::path& p, const fs::path& root) {
  std::string s = p.lexically_relative(root).generic_string();
  return s;
}

/// Load every C++ file under root/<top> into the corpus with category <cat>.
void load_dir(Corpus& corpus, const fs::path& root, const std::string& top,
              const std::string& cat) {
  fs::path dir = root / top;
  std::error_code ec;
  if (!fs::is_directory(dir, ec)) return;
  std::vector<fs::path> paths;
  for (auto it = fs::recursive_directory_iterator(dir, ec);
       it != fs::recursive_directory_iterator(); it.increment(ec)) {
    if (ec) break;
    if (!it->is_regular_file() || !has_cpp_ext(it->path())) continue;
    std::string rel = to_rel(it->path(), root);
    // The fixture corpus intentionally contains violations.
    if (rel.rfind("tests/analyze_fixtures", 0) == 0) continue;
    paths.push_back(it->path());
  }
  std::sort(paths.begin(), paths.end());
  for (const auto& p : paths) {
    FileUnit f;
    f.rel = to_rel(p, root);
    f.category = cat;
    f.lx = lex(slurp(p));
    corpus.files.push_back(std::move(f));
  }
}

std::string render(const Finding& f, bool with_suggestion) {
  std::string s =
      f.file + ":" + std::to_string(f.line) + ": [" + f.rule + "] " + f.message;
  if (with_suggestion && !f.suggestion.empty()) s += "\n    fix: " + f.suggestion;
  return s;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void print_json(const std::vector<Finding>& findings,
                const std::vector<std::string>& notes) {
  std::printf("{\n  \"findings\": [");
  for (std::size_t i = 0; i < findings.size(); ++i) {
    const Finding& f = findings[i];
    std::printf(
        "%s\n    {\"file\": \"%s\", \"line\": %d, \"rule\": \"%s\", "
        "\"message\": \"%s\", \"suggestion\": \"%s\"%s}",
        i ? "," : "", json_escape(f.file).c_str(), f.line,
        json_escape(f.rule).c_str(), json_escape(f.message).c_str(),
        json_escape(f.suggestion).c_str(),
        f.group.empty()
            ? ""
            : (", \"group\": \"" + json_escape(f.group) + "\"").c_str());
  }
  std::printf("\n  ],\n  \"notes\": [");
  for (std::size_t i = 0; i < notes.size(); ++i)
    std::printf("%s\n    \"%s\"", i ? "," : "", json_escape(notes[i]).c_str());
  std::printf("\n  ],\n  \"count\": %zu\n}\n", findings.size());
}

int run_fixtures(const fs::path& dir, const std::set<std::string>& rules) {
  std::error_code ec;
  if (!fs::is_directory(dir, ec)) {
    std::fprintf(stderr, "flexric-analyze: no such fixture dir: %s\n",
                 dir.string().c_str());
    return 2;
  }
  Corpus corpus;
  // Category = first path component under the fixture dir (src/, examples/,
  // ...), mirroring the real layout so the per-category rule gating applies.
  std::vector<fs::path> paths;
  for (auto it = fs::recursive_directory_iterator(dir, ec);
       it != fs::recursive_directory_iterator(); it.increment(ec)) {
    if (ec) break;
    if (it->is_regular_file() && has_cpp_ext(it->path()))
      paths.push_back(it->path());
  }
  std::sort(paths.begin(), paths.end());
  for (const auto& p : paths) {
    FileUnit f;
    f.rel = to_rel(p, dir);
    auto slash = f.rel.find('/');
    f.category = slash == std::string::npos ? "src" : f.rel.substr(0, slash);
    f.lx = lex(slurp(p));
    corpus.files.push_back(std::move(f));
  }
  build_registry(corpus);
  std::vector<std::string> got;
  for (const auto& f : run_rules(corpus, rules)) got.push_back(render(f, false));

  std::vector<std::string> want;
  std::ifstream exp(dir / "expected.txt");
  if (!exp) {
    std::fprintf(stderr, "flexric-analyze: missing %s/expected.txt\n",
                 dir.string().c_str());
    return 2;
  }
  for (std::string line; std::getline(exp, line);) {
    if (line.empty() || line[0] == '#') continue;
    want.push_back(line);
  }
  std::sort(want.begin(), want.end());
  std::sort(got.begin(), got.end());
  if (got == want) {
    std::printf("fixtures OK: %zu findings matched expected.txt\n", got.size());
    return 0;
  }
  std::printf("fixture mismatch:\n");
  for (const auto& g : got)
    if (!std::binary_search(want.begin(), want.end(), g))
      std::printf("  unexpected: %s\n", g.c_str());
  for (const auto& w : want)
    if (!std::binary_search(got.begin(), got.end(), w))
      std::printf("  missing:    %s\n", w.c_str());
  return 1;
}

/// Load `group count` lines ('#' comments allowed).
bool load_baseline(const fs::path& p, std::map<std::string, int>* out) {
  std::ifstream in(p);
  if (!in) return false;
  for (std::string line; std::getline(in, line);) {
    if (line.empty() || line[0] == '#') continue;
    std::size_t sp = line.rfind(' ');
    if (sp == std::string::npos) continue;
    (*out)[line.substr(0, sp)] = std::atoi(line.c_str() + sp + 1);
  }
  return true;
}

}  // namespace

namespace {

/// Dogfood mode: run the full rule set over a flat directory (the analyzer's
/// own sources) as category "src". No baseline, no fixtures — clean or fail.
int run_self(const fs::path& dir, const std::set<std::string>& rules) {
  std::error_code ec;
  if (!fs::is_directory(dir, ec)) {
    std::fprintf(stderr, "flexric-analyze: no such dir: %s\n",
                 dir.string().c_str());
    return 2;
  }
  Corpus corpus;
  std::vector<fs::path> paths;
  for (auto it = fs::recursive_directory_iterator(dir, ec);
       it != fs::recursive_directory_iterator(); it.increment(ec)) {
    if (ec) break;
    if (it->is_regular_file() && has_cpp_ext(it->path()))
      paths.push_back(it->path());
  }
  std::sort(paths.begin(), paths.end());
  for (const auto& p : paths) {
    FileUnit f;
    f.rel = to_rel(p, dir);
    f.category = "src";
    f.lx = lex(slurp(p));
    corpus.files.push_back(std::move(f));
  }
  build_registry(corpus);
  auto findings = run_rules(corpus, rules);
  for (const auto& f : findings)
    std::printf("%s\n", render(f, true).c_str());
  if (findings.empty()) {
    std::printf("flexric-analyze: self-scan clean (%zu files)\n",
                corpus.files.size());
    return 0;
  }
  std::printf("flexric-analyze: self-scan: %zu finding(s)\n", findings.size());
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  fs::path root;
  fs::path fixtures;
  fs::path self_dir;
  fs::path baseline_path;
  fs::path write_baseline_path;
  std::set<std::string> rules;
  bool all_rules = true;
  bool list_suppressions = false;
  bool fix_suggestions = false;
  bool json = false;

  for (int i = 1; i < argc; ++i) {
    std::string a = argv[i];
    auto need_val = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "flexric-analyze: %s needs a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (a == "--root") {
      root = need_val("--root");
    } else if (a == "--fixtures") {
      fixtures = need_val("--fixtures");
    } else if (a == "--self") {
      self_dir = need_val("--self");
    } else if (a == "--baseline") {
      baseline_path = need_val("--baseline");
    } else if (a == "--write-baseline") {
      write_baseline_path = need_val("--write-baseline");
    } else if (a == "--rule") {
      std::string r = need_val("--rule");
      bool known = false;
      for (const char* k : kAllRules)
        if (r == k) known = true;
      if (!known) {
        std::fprintf(stderr, "flexric-analyze: unknown rule '%s'\n", r.c_str());
        return 2;
      }
      rules.insert(r);
      all_rules = false;
    } else if (a == "--list") {
      list_suppressions = true;
    } else if (a == "--fix-suggestions") {
      fix_suggestions = true;
    } else if (a == "--json") {
      json = true;
    } else if (a == "--help" || a == "-h") {
      std::printf(
          "usage: flexric-analyze --root <repo> [--rule R]... [--list] "
          "[--fix-suggestions] [--json]\n"
          "       [--baseline <file>] [--write-baseline <file>]\n"
          "       flexric-analyze --fixtures <dir> [--rule R]...\n"
          "       flexric-analyze --self <dir>\n"
          "rules:\n");
      for (const char* k : kAllRules) std::printf("  %s\n", k);
      return 0;
    } else {
      std::fprintf(stderr, "flexric-analyze: unknown argument '%s'\n",
                   a.c_str());
      return 2;
    }
  }
  if (rules.empty())
    for (const char* k : kAllRules) rules.insert(k);

  if (!fixtures.empty()) return run_fixtures(fixtures, rules);
  if (!self_dir.empty()) return run_self(self_dir, rules);

  if (root.empty()) {
    std::fprintf(stderr,
                 "flexric-analyze: --root (or --fixtures / --self) required\n");
    return 2;
  }
  std::error_code ec;
  if (!fs::is_directory(root / "src", ec)) {
    std::fprintf(stderr, "flexric-analyze: %s does not look like the repo root\n",
                 root.string().c_str());
    return 2;
  }

  Corpus corpus;
  load_dir(corpus, root, "src", "src");
  load_dir(corpus, root, "bench", "bench");
  load_dir(corpus, root, "examples", "examples");
  load_dir(corpus, root, "tests", "tests");
  build_registry(corpus);

  if (list_suppressions) {
    auto sups = collect_suppressions(corpus);
    std::printf("%zu suppression(s):\n", sups.size());
    int missing_reason = 0;
    for (const auto& s : sups) {
      std::printf("  %s:%d [%s] %s\n", s.file.c_str(), s.line, s.rule.c_str(),
                  s.reason.empty() ? "(NO REASON)" : s.reason.c_str());
      if (s.reason.empty()) ++missing_reason;
    }
    if (missing_reason > 0) {
      std::printf("%d suppression(s) missing a reason — reasons are "
                  "mandatory\n", missing_reason);
      return 1;
    }
    return 0;
  }

  std::set<std::string> used;
  set_suppression_tracker(&used);
  auto findings = run_rules(corpus, rules);
  set_suppression_tracker(nullptr);

  std::vector<std::string> notes;

  // Hot-path allocation debt baseline: findings carrying a group key are
  // compared by (group, count), not line numbers, so unrelated edits don't
  // churn the file. Regressions (new group or higher count) fail.
  if (!baseline_path.empty()) {
    std::map<std::string, int> base;
    if (!load_baseline(baseline_path, &base)) {
      std::fprintf(stderr, "flexric-analyze: cannot read baseline %s\n",
                   baseline_path.string().c_str());
      return 2;
    }
    std::map<std::string, int> current;
    for (const auto& f : findings)
      if (!f.group.empty()) ++current[f.group];
    std::set<std::string> accepted;
    for (const auto& [g, n] : current) {
      auto it = base.find(g);
      if (it != base.end() && n <= it->second) {
        accepted.insert(g);
        if (n < it->second)
          notes.push_back("baseline: '" + g + "' improved (" +
                          std::to_string(it->second) + " -> " +
                          std::to_string(n) + "); regenerate with "
                          "--write-baseline");
      } else if (it != base.end()) {
        notes.push_back("baseline: '" + g + "' regressed (" +
                        std::to_string(it->second) + " -> " +
                        std::to_string(n) + ")");
      }
    }
    for (const auto& [g, n] : base)
      if (current.find(g) == current.end())
        notes.push_back("baseline: '" + g + "' no longer present; "
                        "regenerate with --write-baseline");
    findings.erase(std::remove_if(findings.begin(), findings.end(),
                                  [&](const Finding& f) {
                                    return !f.group.empty() &&
                                           accepted.count(f.group) != 0;
                                  }),
                   findings.end());
  }

  if (!write_baseline_path.empty()) {
    std::map<std::string, int> current;
    for (const auto& f : findings)
      if (!f.group.empty()) ++current[f.group];
    std::ofstream out(write_baseline_path);
    if (!out) {
      std::fprintf(stderr, "flexric-analyze: cannot write %s\n",
                   write_baseline_path.string().c_str());
      return 2;
    }
    out << "# Hot-path allocation debt, one `file|function|kind count` per "
           "line.\n"
           "# Regenerate with: flexric-analyze --root . --write-baseline "
           "tools/analyze/hotpath_baseline.txt\n"
           "# The analyze gate fails on any NEW entry or count increase "
           "(DESIGN.md §12).\n";
    for (const auto& [g, n] : current) out << g << ' ' << n << '\n';
    std::printf("flexric-analyze: wrote %zu baseline entr%s to %s\n",
                current.size(), current.size() == 1 ? "y" : "ies",
                write_baseline_path.string().c_str());
    return 0;
  }

  // Suppression audit (full runs only: with a --rule filter, allows for the
  // unselected rules would look stale). Every allow() naming an analyzer
  // rule must carry a reason and must have silenced at least one finding.
  if (all_rules) {
    std::set<std::string> analyzer_rules(std::begin(kAllRules),
                                         std::end(kAllRules));
    for (const auto& s : collect_suppressions(corpus)) {
      if (analyzer_rules.count(s.rule) == 0) continue;  // lint.py's business
      Finding fd;
      fd.file = s.file;
      fd.line = s.line;
      fd.rule = "suppression-audit";
      if (s.reason.empty()) {
        fd.message = "suppression allow(" + s.rule + ") has no reason; "
                     "reasons are mandatory";
        fd.suggestion = "append why: `// lint: allow(" + s.rule + ") <why>`";
        findings.push_back(fd);
      }
      if (used.count(s.file + ":" + std::to_string(s.line) + ":" + s.rule) ==
          0) {
        fd.message = "stale suppression: allow(" + s.rule + ") no longer "
                     "silences any finding";
        fd.suggestion = "delete the stale `lint: allow(...)` comment";
        findings.push_back(std::move(fd));
      }
    }
    std::sort(findings.begin(), findings.end(),
              [](const Finding& a, const Finding& b) {
                if (a.file != b.file) return a.file < b.file;
                if (a.line != b.line) return a.line < b.line;
                return a.rule < b.rule;
              });
  }

  if (json) {
    print_json(findings, notes);
    return findings.empty() ? 0 : 1;
  }
  for (const auto& n : notes) std::printf("note: %s\n", n.c_str());
  for (const auto& f : findings)
    std::printf("%s\n", render(f, fix_suggestions).c_str());
  if (findings.empty()) {
    std::printf("flexric-analyze: clean (%zu files, %zu nodiscard fns, %zu "
                "affine classes)\n",
                corpus.files.size(), corpus.nodiscard_fns.size(),
                corpus.affine_classes.size());
    return 0;
  }
  std::printf("flexric-analyze: %zu finding(s)\n", findings.size());
  return 1;
}
