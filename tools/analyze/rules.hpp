// Rule engine for the FlexRIC static analyzer.
//
// Eight rules, all running on the token stream from lexer.hpp over the shared
// symbol/annotation index from index.hpp (not line regexes — DESIGN.md §10,
// §12):
//
//   posted-lambda-lifetime  a lambda literal passed to post()/add_timer()/
//                           call_soon() that captures `this` or a raw
//                           pointer must also capture an alive token
//                           (std::weak_ptr guard or a capture named alive/
//                           guard/self/...), else destroying the owner with
//                           the task in flight is a use-after-free.
//   nodiscard-status        a statement-position call chain ending in a
//                           function that returns Status/Result<T> must not
//                           discard the value; `(void)call()` documents a
//                           deliberate fire-and-forget. The registry of
//                           Status/Result-returning function names is built
//                           from the scanned sources themselves.
//   blocking-in-handler     sleep/blocking-syscall primitives are banned in
//                           reactor-affine code (src/ outside src/transport/)
//                           and inside any lambda posted to the reactor.
//   affinity-annotation     classes whose methods stamp
//                           FLEXRIC_ASSERT_AFFINITY must carry a
//                           `// @affine(<domain>)` comment on their
//                           declaration, and objects of annotated classes
//                           must not be touched from std::thread lambdas in
//                           examples/tests.
//   bounded-queue           `// @affine(...)` classes (and their nested
//                           types) must not declare raw std::deque/std::queue
//                           members: a queue fed from reactor handlers with
//                           no capacity policy grows without bound under an
//                           indication storm. Use overload::BoundedQueue /
//                           overload::PriorityQueue, which shed with exact
//                           accounting (DESIGN.md §11).
//   domain-ownership        fields of an `@affine(<domain>)` class may only
//                           be touched from code attributed to that domain
//                           (methods of the class, or functions annotated
//                           with the same domain); crossing requires a
//                           `@cross_domain` function or a conduit field
//                           (overload bounded/SPSC queues). Also validates
//                           domain names and method-vs-class domain
//                           conflicts.
//   wire-taint              in src/e2ap/ + src/codec/, values read off the
//                           wire (BufReader/PerReader scalar reads, length())
//                           are tainted until range-validated; tainted use as
//                           a loop bound, allocation size, index or
//                           resize/reserve argument is an error.
//   hotpath-alloc           `@hotpath` functions (and every method of a
//                           `@hotpath` class, plus same-file callees) must
//                           not allocate: new/malloc/make_unique, growing
//                           container calls, or owned-container construction.
//                           Existing debt is enumerated per function in
//                           tools/analyze/hotpath_baseline.txt; the gate
//                           fails only on regressions.
//
// Suppression: `lint: allow(<rule>) <reason>` in a comment on the finding's
// line or the line directly above. The reason is mandatory (the gate run and
// --list both enforce it), and a full run flags suppressions that no longer
// silence anything as stale.
#pragma once

#include <set>
#include <string>
#include <vector>

#include "index.hpp"
#include "lexer.hpp"

namespace flexric::analyze {

struct Corpus {
  std::vector<FileUnit> files;
  /// Parallel to `files`: shared scope/function/annotation index, built once
  /// by build_registry().
  std::vector<FileIndex> index;
  /// Names of functions whose return type is Status or Result<...>.
  std::set<std::string> nodiscard_fns;
  /// Class names annotated `// @affine(<domain>)` (any domain).
  std::set<std::string> affine_classes;
  /// Annotated classes (`@affine(<domain>)` and/or `@hotpath`) with their
  /// domain and member-field table, keyed by class name.
  std::map<std::string, ClassInfo> classes;
};

inline const char* const kAllRules[] = {
    "posted-lambda-lifetime",
    "nodiscard-status",
    "blocking-in-handler",
    "affinity-annotation",
    "bounded-queue",
    "domain-ownership",
    "wire-taint",
    "hotpath-alloc",
};

/// Populate corpus.index plus the symbol registries (nodiscard_fns,
/// affine_classes, classes) from corpus.files.
void build_registry(Corpus& corpus);

/// Run the selected rules; findings are suppression-filtered and sorted by
/// (file, line, rule).
std::vector<Finding> run_rules(const Corpus& corpus,
                               const std::set<std::string>& rules);

/// Every `lint: allow(...)` suppression in the corpus (for --list and the
/// stale-suppression audit).
std::vector<Suppression> collect_suppressions(const Corpus& corpus);

// --- passes.cpp -------------------------------------------------------------

/// Domain ownership: cross-domain field access, unknown domain names,
/// method-vs-class domain conflicts.
void pass_domain_ownership(const Corpus& corpus, const FileUnit& f,
                           const FileIndex& ix, std::vector<Finding>* out);

/// Wire taint: unvalidated decoded values used as sizes/bounds/indices.
void pass_wire_taint(const Corpus& corpus, const FileUnit& f,
                     const FileIndex& ix, std::vector<Finding>* out);

/// Hot-path allocation: allocation sites reachable from @hotpath functions.
void pass_hotpath_alloc(const Corpus& corpus, const FileUnit& f,
                        const FileIndex& ix, std::vector<Finding>* out);

}  // namespace flexric::analyze
