// Rule engine for the FlexRIC static analyzer.
//
// Eight rules, all running on the token stream from lexer.hpp over the shared
// symbol/annotation index from index.hpp (not line regexes — DESIGN.md §10,
// §12):
//
//   posted-lambda-lifetime  a lambda literal passed to post()/add_timer()/
//                           call_soon() that captures `this` or a raw
//                           pointer must also capture an alive token
//                           (std::weak_ptr guard or a capture named alive/
//                           guard/self/...), else destroying the owner with
//                           the task in flight is a use-after-free.
//   nodiscard-status        a statement-position call chain ending in a
//                           function that returns Status/Result<T> must not
//                           discard the value; `(void)call()` documents a
//                           deliberate fire-and-forget. The registry of
//                           Status/Result-returning function names is built
//                           from the scanned sources themselves.
//   blocking-in-handler     sleep/blocking-syscall primitives are banned in
//                           reactor-affine code (src/ outside src/transport/)
//                           and inside any lambda posted to the reactor.
//   affinity-annotation     classes whose methods stamp
//                           FLEXRIC_ASSERT_AFFINITY must carry a
//                           `// @affine(<domain>)` comment on their
//                           declaration, and objects of annotated classes
//                           must not be touched from std::thread lambdas in
//                           examples/tests.
//   bounded-queue           `// @affine(...)` classes (and their nested
//                           types) must not declare raw std::deque/std::queue
//                           members: a queue fed from reactor handlers with
//                           no capacity policy grows without bound under an
//                           indication storm. Use overload::BoundedQueue /
//                           overload::PriorityQueue, which shed with exact
//                           accounting (DESIGN.md §11).
//   domain-ownership        fields of an `@affine(<domain>)` class may only
//                           be touched from code attributed to that domain
//                           (methods of the class, or functions annotated
//                           with the same domain); crossing requires a
//                           `@cross_domain` function or a conduit field
//                           (overload bounded/SPSC queues). Also validates
//                           domain names and method-vs-class domain
//                           conflicts.
//   wire-taint              in src/e2ap/ + src/codec/, values read off the
//                           wire (BufReader/PerReader scalar reads, length())
//                           are tainted until range-validated; tainted use as
//                           a loop bound, allocation size, index or
//                           resize/reserve argument is an error.
//   hotpath-alloc           `@hotpath` functions (and every method of a
//                           `@hotpath` class, plus same-file callees) must
//                           not allocate: new/malloc/make_unique, growing
//                           container calls, or owned-container construction.
//                           Existing debt is enumerated per function in
//                           tools/analyze/hotpath_baseline.txt; the gate
//                           fails only on regressions.
//   view-escape             borrowed-view types (std::span, std::string_view,
//                           BytesView, classes annotated `@view_of(<owner>)`
//                           and aliases of any of these) must not outlive the
//                           buffer they borrow: storing one in a member field
//                           of a non-view class, capturing one in a reactor-
//                           posted lambda, carrying one through an SpscRing,
//                           or returning one that refers to a local owning
//                           object are findings. `@extends_lifetime` marks a
//                           site/class that keeps an owning buffer alongside.
//   atomics-order           lock-free discipline: every SpscRing try_push/
//                           try_pop call site carries a `@producer(<ring>)` /
//                           `@consumer(<ring>)` annotation, and each ring
//                           name has exactly one site per end; a group of
//                           relaxed stores with no release barrier is a torn
//                           publish; a relaxed store to a field that another
//                           site acquire-loads never pairs; defaulted
//                           (seq_cst) atomic ops are flagged on `@hotpath`;
//                           atomics in `@affine(shard)` classes need
//                           alignas(64) against false sharing.
//
// Suppression: `lint: allow(<rule>) <reason>` in a comment on the finding's
// line or the line directly above. The reason is mandatory (the gate run and
// --list both enforce it), and a full run flags suppressions that no longer
// silence anything as stale.
#pragma once

#include <set>
#include <string>
#include <vector>

#include "index.hpp"
#include "lexer.hpp"

namespace flexric::analyze {

/// One declared `std::atomic<...>` data member or namespace-scope global,
/// keyed by name in Corpus::atomic_fields (the analyzer has no type
/// inference at use sites, so the join is name-based like nodiscard_fns).
struct AtomicField {
  std::string file;
  int line = 0;
  std::string owner;     ///< innermost enclosing type ("" for globals)
  bool aligned = false;  ///< alignas on the member or its enclosing class
};

/// One atomic member operation (`field.store(...)`, `field.load(...)`, RMWs)
/// or an `atomic_thread_fence(...)` (op == "fence", field empty). Joined
/// against atomic_fields by name at pass time.
struct AtomicUse {
  std::string file;
  int line = 0;
  std::string field;
  std::string op;     ///< load / store / fetch_add / ... / fence
  std::string order;  ///< relaxed/acquire/release/acq_rel/seq_cst; "" = default
  bool is_store = false;
  bool is_load = false;
  bool in_hot = false;    ///< enclosing function (or its class) is @hotpath
  std::string fn_key;     ///< file|function|line of the enclosing span
  std::string fn_label;   ///< Class::method for diagnostics
};

/// One SpscRing try_push/try_pop call site with its `@producer(<ring>)` /
/// `@consumer(<ring>)` site annotation (ring empty when unannotated).
struct RingSite {
  std::string file;
  int line = 0;
  bool push = false;  ///< try_push (producer end) vs try_pop (consumer end)
  std::string ring;
  /// Receiver identifier (`injector` in `s.injector->try_push(...)`); the
  /// site only counts when the name is declared as an SpscRing somewhere in
  /// the corpus (rings live in headers, call sites in .cpp files).
  std::string receiver;
};

/// One SpscRing::reset_endpoints() call site. Re-arming a ring's endpoints
/// forgets in-flight entries, so it is only legal from a supervised shard
/// rebuild — a `// @recovery` site annotation marks the sanctioned path.
struct ResetSite {
  std::string file;
  int line = 0;
  std::string receiver;
  bool sanctioned = false;  ///< carries `// @recovery`
};

struct Corpus {
  std::vector<FileUnit> files;
  /// Parallel to `files`: shared scope/function/annotation index, built once
  /// by build_registry().
  std::vector<FileIndex> index;
  /// Names of functions whose return type is Status or Result<...>.
  std::set<std::string> nodiscard_fns;
  /// Class names annotated `// @affine(<domain>)` (any domain).
  std::set<std::string> affine_classes;
  /// Annotated classes (`@affine(<domain>)` and/or `@hotpath`) with their
  /// domain and member-field table, keyed by class name.
  std::map<std::string, ClassInfo> classes;
  /// Borrowed-view type names: std::span/string_view/BytesView seeds plus
  /// classes annotated `@view_of(<owner>)` and aliases resolving to any of
  /// these (resolve_view_aliases runs the alias set to a fixpoint).
  std::set<std::string> view_types;
  /// Classes annotated `@extends_lifetime`: they hold an owning buffer next
  /// to their views, so view-typed members are sanctioned.
  std::set<std::string> lifetime_classes;
  /// `using X = <rhs>;` declarations at declaration scope (alias templates
  /// included), as (name, rhs identifier texts) pending view resolution.
  std::vector<std::pair<std::string, std::vector<std::string>>> type_aliases;
  /// Declared atomics by field name; uses are joined by name.
  std::map<std::string, AtomicField> atomic_fields;
  std::vector<AtomicUse> atomic_uses;
  /// Names declared with SpscRing type anywhere in the corpus (members,
  /// locals, smart-pointer holders), for receiver-matching ring_sites.
  std::set<std::string> spsc_names;
  /// SpscRing endpoint call sites across the whole corpus.
  std::vector<RingSite> ring_sites;
  /// SpscRing::reset_endpoints() call sites (b6: recovery-only).
  std::vector<ResetSite> reset_sites;
};

inline const char* const kAllRules[] = {
    "posted-lambda-lifetime",
    "nodiscard-status",
    "blocking-in-handler",
    "affinity-annotation",
    "bounded-queue",
    "domain-ownership",
    "wire-taint",
    "hotpath-alloc",
    "view-escape",
    "atomics-order",
};

/// Populate corpus.index plus the symbol registries (nodiscard_fns,
/// affine_classes, classes) from corpus.files.
void build_registry(Corpus& corpus);

/// Run the selected rules; findings are suppression-filtered and sorted by
/// (file, line, rule).
std::vector<Finding> run_rules(const Corpus& corpus,
                               const std::set<std::string>& rules);

/// Every `lint: allow(...)` suppression in the corpus (for --list and the
/// stale-suppression audit).
std::vector<Suppression> collect_suppressions(const Corpus& corpus);

// --- passes.cpp -------------------------------------------------------------

/// Domain ownership: cross-domain field access, unknown domain names,
/// method-vs-class domain conflicts.
void pass_domain_ownership(const Corpus& corpus, const FileUnit& f,
                           const FileIndex& ix, std::vector<Finding>* out);

/// Wire taint: unvalidated decoded values used as sizes/bounds/indices.
void pass_wire_taint(const Corpus& corpus, const FileUnit& f,
                     const FileIndex& ix, std::vector<Finding>* out);

/// Hot-path allocation: allocation sites reachable from @hotpath functions.
void pass_hotpath_alloc(const Corpus& corpus, const FileUnit& f,
                        const FileIndex& ix, std::vector<Finding>* out);

// --- view_pass.cpp ----------------------------------------------------------

/// Registry half: `@view_of`/`@extends_lifetime` classes and type aliases.
void register_view_types(const FileUnit& f, const FileIndex& ix,
                         Corpus& corpus);
/// Resolve `using X = <view>` aliases (transitively) into view_types.
void resolve_view_aliases(Corpus& corpus);
/// View escape: members, posted-lambda captures, ring payloads, returns.
void pass_view_escape(const Corpus& corpus, const FileUnit& f,
                      const FileIndex& ix, std::vector<Finding>* out);

// --- atomics_pass.cpp -------------------------------------------------------

/// Registry half: atomic field declarations, atomic op sites, fences, and
/// SpscRing endpoint call sites with their @producer/@consumer annotations.
void register_atomics(const FileUnit& f, const FileIndex& ix, Corpus& corpus);
/// Lock-free discipline: SPSC endpoint exactness, relaxed group publish,
/// acquire/release pairing, seq_cst-by-default on @hotpath, false sharing.
void pass_atomics_order(const Corpus& corpus, const FileUnit& f,
                        const FileIndex& ix, std::vector<Finding>* out);

}  // namespace flexric::analyze
