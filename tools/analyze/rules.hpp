// Rule engine for the FlexRIC static analyzer.
//
// Five rules, all running on the token stream from lexer.hpp with a shared
// brace/paren scope analysis (not line regexes — see DESIGN.md §10):
//
//   posted-lambda-lifetime  a lambda literal passed to post()/add_timer()/
//                           call_soon() that captures `this` or a raw
//                           pointer must also capture an alive token
//                           (std::weak_ptr guard or a capture named alive/
//                           guard/self/...), else destroying the owner with
//                           the task in flight is a use-after-free.
//   nodiscard-status        a statement-position call chain ending in a
//                           function that returns Status/Result<T> must not
//                           discard the value; `(void)call()` documents a
//                           deliberate fire-and-forget. The registry of
//                           Status/Result-returning function names is built
//                           from the scanned sources themselves.
//   blocking-in-handler     sleep/blocking-syscall primitives are banned in
//                           reactor-affine code (src/ outside src/transport/)
//                           and inside any lambda posted to the reactor.
//   affinity-annotation     classes whose methods stamp
//                           FLEXRIC_ASSERT_AFFINITY must carry a
//                           `// @affine(reactor)` comment on their
//                           declaration, and objects of annotated classes
//                           must not be touched from std::thread lambdas in
//                           examples/tests.
//   bounded-queue           `// @affine(reactor)` classes (and their nested
//                           types) must not declare raw std::deque/std::queue
//                           members: a queue fed from reactor handlers with
//                           no capacity policy grows without bound under an
//                           indication storm. Use overload::BoundedQueue /
//                           overload::PriorityQueue, which shed with exact
//                           accounting (DESIGN.md §11).
//
// Suppression: `lint: allow(<rule>) <reason>` in a comment on the finding's
// line or the line directly above. The reason is mandatory (--list audits).
#pragma once

#include <set>
#include <string>
#include <vector>

#include "lexer.hpp"

namespace flexric::analyze {

struct Finding {
  std::string file;  // path relative to the scan root
  int line = 0;
  std::string rule;
  std::string message;
  std::string suggestion;
};

struct FileUnit {
  std::string rel;       // repo-relative path, '/' separators
  std::string category;  // top-level dir: "src", "bench", "examples", "tests"
  LexedFile lx;
};

struct Corpus {
  std::vector<FileUnit> files;
  /// Names of functions whose return type is Status or Result<...>.
  std::set<std::string> nodiscard_fns;
  /// Class names annotated `// @affine(reactor)`.
  std::set<std::string> affine_classes;
};

/// One suppression comment found in the corpus.
struct Suppression {
  std::string file;
  int line = 0;
  std::string rule;
  std::string reason;
};

inline const char* const kAllRules[] = {
    "posted-lambda-lifetime",
    "nodiscard-status",
    "blocking-in-handler",
    "affinity-annotation",
    "bounded-queue",
};

/// Populate nodiscard_fns and affine_classes from corpus.files.
void build_registry(Corpus& corpus);

/// Run the selected rules; findings are suppression-filtered and sorted by
/// (file, line, rule).
std::vector<Finding> run_rules(const Corpus& corpus,
                               const std::set<std::string>& rules);

/// Every `lint: allow(...)` suppression in the corpus (for --list).
std::vector<Suppression> collect_suppressions(const Corpus& corpus);

}  // namespace flexric::analyze
