// Tokenizer for the FlexRIC static analyzer (tools/analyze).
//
// A real lexer, not line regexes: comments (line/block), string literals
// (including raw strings), character literals and preprocessor directives are
// consumed as units, so a `post(` inside a string or a brace inside a comment
// can never confuse the rules. Comment text is kept in a per-line side table
// because two rule mechanisms live in comments: `lint: allow(<rule>) reason`
// suppressions and `@affine(reactor)` class annotations.
#pragma once

#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace flexric::analyze {

enum class Tok {
  identifier,  // keywords included; rules match on text
  number,
  string_lit,
  char_lit,
  punct,  // operators/punctuation, longest-match for the multi-char set
  eof,
};

struct Token {
  Tok kind = Tok::eof;
  std::string text;
  int line = 0;
};

struct LexedFile {
  std::vector<Token> tokens;
  /// line -> concatenated comment text on that line (block comments that
  /// span lines contribute to every line they touch).
  std::map<int, std::string> comments;
};

/// Tokenize one translation unit. Never fails: unrecognized bytes become
/// single-character punct tokens so the rules can keep brace balance.
LexedFile lex(std::string_view src);

}  // namespace flexric::analyze
