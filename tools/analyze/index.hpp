// Shared symbol/annotation index for the FlexRIC static analyzer.
//
// Every pass used to re-derive brace scopes from the raw token stream; the
// multi-pass framework computes one FileIndex per translation unit up front:
//
//   ScopeInfo   per-token function depth / owner class / enclosing type chain
//   FuncSpan    every top-level function body with its name, owner class and
//               declaration-site annotations (@affine(<domain>),
//               @cross_domain, @hotpath, @coldpath)
//   ClassInfo   every annotated class with its affinity domain, hot-path
//               marking and data-member table (for ownership attribution)
//
// Annotation grammar (DESIGN.md §12): a comment within two lines above (or on
// the line of) a class or function declaration:
//
//   // `@affine(<domain>)`  domain ∈ {reactor, shard, any}
//   // @cross_domain       function is an approved domain-crossing conduit
//   // @hotpath            function/class must not allocate (hotpath-alloc)
//   // @coldpath           excluded from hot-path call-graph propagation
//
// Suppressions (`lint: allow(<rule>) <reason>`) also live here so rules and
// passes share one matcher, and so a full run can report stale suppressions:
// set_suppression_tracker() records every allow() that actually silenced a
// finding.
#pragma once

#include <cstddef>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "lexer.hpp"

namespace flexric::analyze {

using Tokens = std::vector<Token>;

// ---------------------------------------------------------------------------
// Findings, corpus files, suppressions (shared vocabulary of all passes).
// ---------------------------------------------------------------------------

struct Finding {
  std::string file;  // path relative to the scan root
  int line = 0;
  std::string rule;
  std::string message;
  std::string suggestion;
  /// Baseline key for rate-able findings ("file|function|kind" for
  /// hotpath-alloc, "" otherwise). Findings sharing a group are compared
  /// against the committed baseline by count, not by line number.
  std::string group;
};

struct FileUnit {
  std::string rel;       // repo-relative path, '/' separators
  std::string category;  // top-level dir: "src", "bench", "examples", "tests"
  LexedFile lx;
};

/// One suppression comment found in the corpus.
struct Suppression {
  std::string file;
  int line = 0;
  std::string rule;
  std::string reason;
};

// ---------------------------------------------------------------------------
// Token helpers.
// ---------------------------------------------------------------------------

inline bool is_ident(const Token& t, const char* text) {
  return t.kind == Tok::identifier && t.text == text;
}
inline bool is_punct(const Token& t, const char* text) {
  return t.kind == Tok::punct && t.text == text;
}

/// Find the index of the `(` matching the `)` at `close` (walking backward).
std::size_t match_paren_back(const Tokens& t, std::size_t close);

/// Find the index of the token after the `)`/`]`/`}` matching the opener at
/// `open` (forward). Treats ">>" as plain punct (not a closer).
std::size_t skip_balanced(const Tokens& t, std::size_t open);

/// After a template head, skip `<...>` template args (">>" closes two
/// levels). Returns the index after the closing '>', or `from` on failure.
std::size_t skip_template_args(const Tokens& t, std::size_t from);

/// One entry of a lambda capture list (shared by the lifetime rule and the
/// view-escape pass).
struct Capture {
  std::string name;         // captured variable ("" for default captures)
  bool by_ref = false;      // &x / & default
  bool is_this = false;     // `this` (not `*this`, which copies)
  bool def_copy = false;    // [=] default capture present on this entry
  bool def_ref = false;     // [&] default capture present on this entry
  std::vector<Token> init;  // init-capture tokens after '='
};

/// Parse the capture list starting at the '[' at `open`. Returns the index
/// just after the ']' and fills `out`.
std::size_t parse_captures(const Tokens& t, std::size_t open,
                           std::vector<Capture>* out);

// ---------------------------------------------------------------------------
// Scope analysis + function spans.
// ---------------------------------------------------------------------------

enum class ScopeKind { ns, type, func, block };

struct ScopeInfo {
  /// Per token: number of enclosing function bodies (0 = declaration scope).
  std::vector<int> func_depth;
  /// Per token: class owning the innermost enclosing function definition
  /// ("" for free functions / declaration scope).
  std::vector<std::string> owner_class;
  /// Per token: "::"-joined chain of enclosing type scopes, outermost first.
  std::vector<std::string> type_chain;
};

/// One top-level function definition (lambdas are blocks, not spans).
struct FuncSpan {
  std::string name;        // unqualified name ("" if unrecognized shape)
  std::string owner;       // owning class from X::name( or enclosing type
  std::size_t sig_begin = 0;  // first token of the declaration
  std::size_t body_begin = 0; // index of the '{'
  std::size_t body_end = 0;   // index just after the matching '}'
  int line = 0;               // line of the '{'
  // Declaration-site annotations:
  std::string domain;         // `@affine(<domain>)` on the function itself
  bool cross_domain = false;  // @cross_domain
  bool hotpath = false;       // @hotpath
  bool coldpath = false;      // @coldpath
};

struct FileIndex {
  ScopeInfo scopes;
  std::vector<FuncSpan> funcs;
};

/// Build scopes + function spans + annotations for one file.
FileIndex build_file_index(const LexedFile& lx);

// ---------------------------------------------------------------------------
// Class registry (annotated classes with their member-field table).
// ---------------------------------------------------------------------------

struct FieldInfo {
  int line = 0;
  /// A conduit field (overload::BoundedQueue / PriorityQueue / RateLimiter /
  /// SPSC) may be touched across domains; plain fields may not.
  bool conduit = false;
};

struct ClassInfo {
  std::string name;
  std::string file;       // file of the annotated declaration
  int line = 0;           // line of the class keyword
  std::string domain;     // `@affine(<domain>)`; "" if only @hotpath
  bool hotpath = false;   // class-level @hotpath: every method is hot
  std::map<std::string, FieldInfo> fields;
};

/// Extract `@affine(<dom>)` from a comment string ("" if absent). An empty
/// or malformed argument yields "reactor" (the historical default is spelled
/// explicitly everywhere, but stay permissive for `@affine()`).
std::string parse_affine_domain(const std::string& comment);

/// True if any comment line in [line-2, line] contains `needle`.
bool annotation_near(const LexedFile& lx, int line, const char* needle);

/// The argument of `@<key>(<arg>)` in a comment within [line-2, line],
/// trimmed; "" when the key is absent or the argument is empty (use
/// annotation_near to distinguish a malformed empty argument from absence).
std::string annotation_arg_near(const LexedFile& lx, int line,
                                const char* key);

/// The valid affinity domains.
bool is_known_domain(const std::string& d);

// ---------------------------------------------------------------------------
// Suppressions.
// ---------------------------------------------------------------------------

/// Parse every `lint: allow(<rule>) <reason>` out of one comment string.
void parse_allows(const std::string& comment, int line, const std::string& file,
                  std::vector<Suppression>* out);

/// True if `rule` is allowed on `line` (or the line above) in `f`. When a
/// tracker is installed, the match is recorded so a full run can flag
/// suppressions that never fired (stale).
bool suppressed(const FileUnit& f, int line, const std::string& rule);

/// Install/remove a set collecting "file:line:rule" for every suppression
/// that silenced a finding. Pass nullptr to stop tracking.
void set_suppression_tracker(std::set<std::string>* used);

}  // namespace flexric::analyze
