#include "rules.hpp"

#include <algorithm>
#include <array>
#include <cstddef>

namespace flexric::analyze {

namespace {

// ---------------------------------------------------------------------------
// Registry pass
// ---------------------------------------------------------------------------

bool decl_is_conduit(const Tokens& t, std::size_t lo, std::size_t hi) {
  static const char* kConduits[] = {"BoundedQueue", "PriorityQueue",
                                    "RateLimiter", "SpscQueue", "SpscRing"};
  for (std::size_t k = lo; k < hi; ++k)
    for (const char* c : kConduits)
      if (is_ident(t[k], c)) return true;
  return false;
}

void register_file(const FileUnit& f, const FileIndex& ix, Corpus& corpus,
                   std::set<std::string>* other_ret) {
  const Tokens& t = f.lx.tokens;
  const ScopeInfo& scopes = ix.scopes;
  for (std::size_t i = 0; i + 2 < t.size(); ++i) {
    // Class annotations: `// @affine(<domain>)` / `// @hotpath` within two
    // lines above (or on the line of) a class/struct declaration.
    if ((is_ident(t[i], "class") || is_ident(t[i], "struct")) &&
        t[i + 1].kind == Tok::identifier) {
      bool hot = annotation_near(f.lx, t[i].line, "@hotpath");
      std::string domain;
      for (int l = t[i].line - 2; l <= t[i].line; ++l) {
        auto c = f.lx.comments.find(l);
        if (c == f.lx.comments.end()) continue;
        std::string d = parse_affine_domain(c->second);
        if (!d.empty()) domain = d;
      }
      if (!domain.empty() || hot) {
        ClassInfo& ci = corpus.classes[t[i + 1].text];
        ci.name = t[i + 1].text;
        ci.file = f.rel;
        ci.line = t[i].line;
        if (!domain.empty()) {
          ci.domain = domain;
          corpus.affine_classes.insert(t[i + 1].text);
        }
        if (hot) ci.hotpath = true;
      }
    }
    // Status/Result-returning function declarations at declaration scope.
    if (scopes.func_depth[i] != 0) continue;
    bool is_status = is_ident(t[i], "Status");
    bool is_result = is_ident(t[i], "Result");
    if (!is_status && !is_result) continue;
    std::size_t j = i + 1;
    if (is_result) {
      std::size_t after = skip_template_args(t, j);
      if (after == j) continue;  // `Result` without template args: not a type
      j = after;
    }
    // Qualified-id: name (:: name)* then '('. Register the last segment.
    if (j >= t.size() || t[j].kind != Tok::identifier) continue;
    std::string name = t[j].text;
    ++j;
    while (j + 1 < t.size() && is_punct(t[j], "::") &&
           t[j + 1].kind == Tok::identifier) {
      name = t[j + 1].text;
      j += 2;
    }
    if (j < t.size() && is_punct(t[j], "(")) corpus.nodiscard_fns.insert(name);
  }
  // Second pass: names also declared with a NON-Status/Result return type.
  // The registry is name-based (no type inference at call sites), so the
  // symmetric serde pattern — `void BufWriter::u32(v)` next to
  // `Result<u32> BufReader::u32()` — would otherwise flag every writer call.
  // Ambiguous names are subtracted in build_registry.
  for (std::size_t i = 2; i + 1 < t.size(); ++i) {
    if (!is_punct(t[i], "(")) continue;
    if (scopes.func_depth[i] != 0) continue;
    if (t[i - 1].kind != Tok::identifier) continue;
    const std::string& name = t[i - 1].text;
    // Walk back over the qualified-id (`Foo::bar` → before `Foo`).
    std::size_t j = i - 1;
    while (j >= 2 && is_punct(t[j - 1], "::") &&
           t[j - 2].kind == Tok::identifier)
      j -= 2;
    if (j == 0) continue;
    const Token& tail = t[j - 1];
    if (is_punct(tail, "*") || is_punct(tail, "&")) {
      other_ret->insert(name);  // pointer/reference return: value optional
    } else if (tail.kind == Tok::identifier) {
      if (tail.text != "Status" && tail.text != "Result" &&
          tail.text != "explicit" && tail.text != "return" &&
          tail.text != "new")
        other_ret->insert(name);
    } else if (is_punct(tail, ">")) {
      // Templated return type: resolve the head identifier before the '<'.
      int depth = 0;
      for (std::size_t k = j; k-- > 0;) {
        if (is_punct(t[k], ">")) ++depth;
        if (is_punct(t[k], ">>")) depth += 2;
        if (is_punct(t[k], "<") && --depth == 0) {
          if (k >= 1 && t[k - 1].kind == Tok::identifier &&
              t[k - 1].text != "Result")
            other_ret->insert(name);
          break;
        }
        if (depth < 0) break;
      }
    }
  }
}

/// Member-field table of every annotated class. Runs after the annotation
/// scan of the same file (a class's members live inside its own declaration,
/// so the class is always registered by the time its fields are seen).
void register_fields(const FileUnit& f, const FileIndex& ix, Corpus& corpus) {
  const Tokens& t = f.lx.tokens;
  const ScopeInfo& scopes = ix.scopes;
  for (std::size_t i = 1; i + 1 < t.size(); ++i) {
    if (scopes.func_depth[i] != 0) continue;
    if (t[i].kind != Tok::identifier) continue;
    if (!(is_punct(t[i + 1], ";") || is_punct(t[i + 1], "=") ||
          is_punct(t[i + 1], "{")))
      continue;
    const std::string& chain = scopes.type_chain[i];
    if (chain.empty()) continue;
    // Innermost enclosing annotated class owns the field.
    ClassInfo* owner = nullptr;
    for (std::size_t pos = 0; pos <= chain.size();) {
      std::size_t next = chain.find("::", pos);
      std::size_t len =
          next == std::string::npos ? chain.size() - pos : next - pos;
      auto it = corpus.classes.find(chain.substr(pos, len));
      if (it != corpus.classes.end()) owner = &it->second;
      if (next == std::string::npos) break;
      pos = next + 2;
    }
    if (!owner) continue;
    // The token before the name must be a type tail, and the declaration
    // (back to the previous boundary) must look like a data member: no
    // parens (functions), no type/using/friend keywords.
    const Token& prev = t[i - 1];
    bool type_tail = prev.kind == Tok::identifier || is_punct(prev, ">") ||
                     is_punct(prev, ">>") || is_punct(prev, "*") ||
                     is_punct(prev, "&") || is_punct(prev, "]");
    if (!type_tail) continue;
    std::size_t lo = 0;
    for (std::size_t j = i; j-- > 0;) {
      if (is_punct(t[j], ";") || is_punct(t[j], "}") || is_punct(t[j], "{")) {
        lo = j + 1;
        break;
      }
    }
    bool member_shape = true;
    for (std::size_t j = lo; j < i && member_shape; ++j) {
      if (is_punct(t[j], "(") || is_ident(t[j], "class") ||
          is_ident(t[j], "struct") || is_ident(t[j], "enum") ||
          is_ident(t[j], "union") || is_ident(t[j], "using") ||
          is_ident(t[j], "typedef") || is_ident(t[j], "friend") ||
          is_ident(t[j], "namespace") || is_ident(t[j], "return"))
        member_shape = false;
    }
    if (!member_shape) continue;
    FieldInfo fi;
    fi.line = t[i].line;
    fi.conduit = decl_is_conduit(t, lo, i);
    owner->fields.emplace(t[i].text, fi);
  }
}

// ---------------------------------------------------------------------------
// posted-lambda-lifetime + blocking-in-handler share the lambda finder.
// ---------------------------------------------------------------------------

constexpr std::array<const char*, 3> kPostFns = {"post", "add_timer",
                                                 "call_soon"};

bool is_post_fn(const Token& t) {
  for (const char* f : kPostFns)
    if (is_ident(t, f)) return true;
  return false;
}

// Capture / parse_captures live in index.hpp now (the view-escape pass
// reuses the same lambda-capture parser).

bool capture_is_alive_token(const Capture& c) {
  static const char* kAliveNames[] = {"alive", "alive_", "guard",  "guard_",
                                      "weak",  "weak_",  "self",   "self_",
                                      "token", "token_", "owner",  "owner_"};
  for (const char* n : kAliveNames)
    if (c.name == n) return true;
  for (std::size_t k = 0; k < c.init.size(); ++k) {
    if (c.init[k].kind != Tok::identifier) continue;
    const std::string& s = c.init[k].text;
    if (s == "weak_ptr" || s == "shared_from_this" || s == "weak_from_this")
      return true;
  }
  return false;
}

bool capture_is_raw_pointer(const Capture& c) {
  // Init-captures materializing a raw pointer: `p = x.get()` / `p = &obj`.
  for (std::size_t k = 0; k + 2 < c.init.size(); ++k) {
    if ((is_punct(c.init[k], ".") || is_punct(c.init[k], "->")) &&
        is_ident(c.init[k + 1], "get") && is_punct(c.init[k + 2], "("))
      return true;
  }
  if (!c.init.empty() && is_punct(c.init[0], "&")) return true;
  return false;
}

// Blocking primitives. Sleep-family match unqualified; syscall names only
// when explicitly global-qualified (`::recv`) so method names stay legal.
bool is_sleep_call(const Tokens& t, std::size_t i) {
  static const char* kSleep[] = {"sleep_for", "sleep_until", "usleep",
                                 "nanosleep", "getchar",     "system"};
  if (t[i].kind != Tok::identifier) return false;
  bool named = false;
  for (const char* s : kSleep)
    if (t[i].text == s) named = true;
  if (!named) return false;
  return i + 1 < t.size() && is_punct(t[i + 1], "(");
}

bool is_global_blocking_syscall(const Tokens& t, std::size_t i) {
  static const char* kSys[] = {"recv", "recvfrom", "recvmsg", "accept",
                               "accept4", "select", "poll", "read"};
  if (t[i].kind != Tok::identifier) return false;
  bool named = false;
  for (const char* s : kSys)
    if (t[i].text == s) named = true;
  if (!named) return false;
  if (i == 0 || !is_punct(t[i - 1], "::")) return false;
  // `::recv` (global) vs `sock::recv` (scoped): global iff no identifier or
  // closing angle precedes the `::`. Statement keywords (`return ::recv(...)`)
  // are not qualifiers.
  if (i >= 2 && (t[i - 2].kind == Tok::identifier || is_punct(t[i - 2], ">"))) {
    const std::string& q = t[i - 2].text;
    if (q != "return" && q != "co_return" && q != "else" && q != "do")
      return false;
  }
  return i + 1 < t.size() && is_punct(t[i + 1], "(");
}

bool is_cv_wait(const Tokens& t, std::size_t i) {
  if (t[i].kind != Tok::identifier) return false;
  if (t[i].text != "wait" && t[i].text != "wait_for" &&
      t[i].text != "wait_until")
    return false;
  if (i == 0 || !(is_punct(t[i - 1], ".") || is_punct(t[i - 1], "->")))
    return false;
  return i + 1 < t.size() && is_punct(t[i + 1], "(");
}

// ---------------------------------------------------------------------------
// Rules
// ---------------------------------------------------------------------------

void rule_posted_lambda(const FileUnit& f, std::vector<Finding>* out) {
  const Tokens& t = f.lx.tokens;
  for (std::size_t i = 0; i + 1 < t.size(); ++i) {
    if (!is_post_fn(t[i]) || !is_punct(t[i + 1], "(")) continue;
    std::size_t call_end = skip_balanced(t, i + 1);
    for (std::size_t j = i + 2; j < call_end; ++j) {
      if (!is_punct(t[j], "[")) continue;
      if (j + 1 < t.size() && is_punct(t[j + 1], "[")) continue;  // attribute
      if (!(is_punct(t[j - 1], "(") || is_punct(t[j - 1], ",")))
        continue;  // not in argument position (e.g. a subscript)
      std::vector<Capture> caps;
      std::size_t after = parse_captures(t, j, &caps);
      bool alive = false, has_this = false, has_raw = false;
      for (const auto& c : caps) {
        if (capture_is_alive_token(c)) alive = true;
        if (c.is_this) has_this = true;
        if (capture_is_raw_pointer(c)) has_raw = true;
      }
      if ((has_this || has_raw) && !alive &&
          !suppressed(f, t[j].line, "posted-lambda-lifetime") &&
          !suppressed(f, t[i].line, "posted-lambda-lifetime")) {
        Finding fd;
        fd.file = f.rel;
        fd.line = t[j].line;
        fd.rule = "posted-lambda-lifetime";
        fd.message = std::string("lambda passed to ") + t[i].text +
                     "() captures " +
                     (has_this ? "'this'" : "a raw pointer") +
                     " without an alive token; the owner may die before the "
                     "task runs";
        fd.suggestion =
            "capture `alive = std::weak_ptr<bool>(alive_)` and return early "
            "when expired (transport.cpp pattern), or suppress with "
            "`// lint: allow(posted-lambda-lifetime) <why the owner outlives "
            "the task>`";
        out->push_back(std::move(fd));
      }
      j = after - 1;
    }
  }
}

void rule_nodiscard(const FileUnit& f, const ScopeInfo& scopes,
                    const Corpus& corpus, std::vector<Finding>* out) {
  const Tokens& t = f.lx.tokens;
  for (std::size_t i = 1; i + 1 < t.size(); ++i) {
    if (scopes.func_depth[i] == 0) continue;
    if (t[i].kind != Tok::identifier) continue;
    const Token& prev = t[i - 1];
    // Chain head must sit at statement position.
    if (is_punct(prev, ".") || is_punct(prev, "->") || is_punct(prev, "::"))
      continue;
    bool stmt_pos = is_punct(prev, ";") || is_punct(prev, "{") ||
                    is_punct(prev, "}") || is_ident(prev, "else") ||
                    is_punct(prev, ":");
    if (!stmt_pos && is_punct(prev, ")")) {
      // `(void) call()` is the sanctioned explicit discard; any other `)`
      // before the head is a control-flow header: `if (...) call();`.
      std::size_t open = match_paren_back(t, i - 1);
      bool voided = (i - 1) - open == 2 && is_ident(t[open + 1], "void");
      if (voided) continue;
      stmt_pos = true;
    }
    if (!stmt_pos) continue;
    // Walk the call chain: a.b()->c(); the final called name decides.
    std::size_t j = i;
    std::string last_called;
    int last_call_line = 0;
    while (j < t.size()) {
      if (t[j].kind != Tok::identifier) break;
      std::string name = t[j].text;
      ++j;
      while (j + 1 < t.size() && is_punct(t[j], "::") &&
             t[j + 1].kind == Tok::identifier) {
        name = t[j + 1].text;
        j += 2;
      }
      if (j < t.size() && is_punct(t[j], "(")) {
        int line = t[j].line;
        j = skip_balanced(t, j);
        last_called = name;
        last_call_line = line;
        if (j < t.size() && (is_punct(t[j], ".") || is_punct(t[j], "->"))) {
          ++j;
          continue;
        }
        break;
      }
      if (j < t.size() && (is_punct(t[j], ".") || is_punct(t[j], "->"))) {
        ++j;
        last_called.clear();
        continue;
      }
      last_called.clear();
      break;
    }
    if (last_called.empty() || j >= t.size() || !is_punct(t[j], ";")) continue;
    if (corpus.nodiscard_fns.count(last_called) == 0) continue;
    if (suppressed(f, last_call_line, "nodiscard-status")) continue;
    Finding fd;
    fd.file = f.rel;
    fd.line = last_call_line;
    fd.rule = "nodiscard-status";
    fd.message = "discarded result of " + last_called +
                 "() which returns Status/Result";
    fd.suggestion =
        "branch on is_ok() / wrap in FLEXRIC_TRY(...), or write "
        "`(void)" + last_called + "(...)` to document fire-and-forget";
    out->push_back(std::move(fd));
  }
}

void rule_blocking(const FileUnit& f, std::vector<Finding>* out) {
  const Tokens& t = f.lx.tokens;
  const bool reactor_affine_file =
      f.category == "src" && f.rel.rfind("src/transport/", 0) != 0;
  // (a) blocking primitives anywhere in reactor-affine code.
  if (reactor_affine_file) {
    for (std::size_t i = 0; i < t.size(); ++i) {
      if (is_sleep_call(t, i) || is_global_blocking_syscall(t, i) ||
          is_cv_wait(t, i)) {
        if (suppressed(f, t[i].line, "blocking-in-handler")) continue;
        Finding fd;
        fd.file = f.rel;
        fd.line = t[i].line;
        fd.rule = "blocking-in-handler";
        fd.message = "blocking primitive '" + t[i].text +
                     "' in reactor-affine code (handlers run on the loop "
                     "thread; only src/transport/ may touch blocking I/O)";
        fd.suggestion =
            "replace with a reactor timer / non-blocking transport call, or "
            "suppress with `// lint: allow(blocking-in-handler) <reason>`";
        out->push_back(std::move(fd));
      }
    }
  }
  // (b) blocking primitives inside any lambda posted to the reactor — this
  // applies to every category, src/transport/ included.
  for (std::size_t i = 0; i + 1 < t.size(); ++i) {
    if (!is_post_fn(t[i]) || !is_punct(t[i + 1], "(")) continue;
    std::size_t call_end = skip_balanced(t, i + 1);
    for (std::size_t j = i + 2; j < call_end; ++j) {
      if (!is_punct(t[j], "[") ||
          !(is_punct(t[j - 1], "(") || is_punct(t[j - 1], ",")))
        continue;
      // Skip capture list, optional params/specifiers, then scan the body.
      std::size_t k = skip_balanced(t, j);
      if (k < t.size() && is_punct(t[k], "(")) k = skip_balanced(t, k);
      while (k < t.size() && (is_ident(t[k], "mutable") ||
                              is_ident(t[k], "noexcept") ||
                              is_punct(t[k], "->") ||
                              t[k].kind == Tok::identifier))
        ++k;
      if (k >= t.size() || !is_punct(t[k], "{")) continue;
      std::size_t body_end = skip_balanced(t, k);
      for (std::size_t b = k; b < body_end; ++b) {
        if ((is_sleep_call(t, b) || is_global_blocking_syscall(t, b) ||
             is_cv_wait(t, b)) &&
            !reactor_affine_file &&  // (a) already reported those
            !suppressed(f, t[b].line, "blocking-in-handler")) {
          Finding fd;
          fd.file = f.rel;
          fd.line = t[b].line;
          fd.rule = "blocking-in-handler";
          fd.message = "blocking primitive '" + t[b].text +
                       "' inside a lambda passed to " + t[i].text +
                       "() — it would stall the reactor loop";
          fd.suggestion =
              "do the blocking work before posting, or use a timer and "
              "re-check readiness";
          out->push_back(std::move(fd));
        }
      }
      j = body_end - 1;
    }
  }
}

void rule_affinity(const FileUnit& f, const ScopeInfo& scopes,
                   const Corpus& corpus, std::vector<Finding>* out) {
  const Tokens& t = f.lx.tokens;
  // Check A (src): a class that stamps FLEXRIC_ASSERT_AFFINITY must be
  // annotated `// @affine(<domain>)` at its declaration.
  if (f.category == "src") {
    for (std::size_t i = 0; i < t.size(); ++i) {
      if (!is_ident(t[i], "FLEXRIC_ASSERT_AFFINITY")) continue;
      if (scopes.func_depth[i] == 0) continue;  // the macro definition
      const std::string& owner = scopes.owner_class[i];
      if (owner.empty() || corpus.affine_classes.count(owner) != 0) continue;
      if (suppressed(f, t[i].line, "affinity-annotation")) continue;
      Finding fd;
      fd.file = f.rel;
      fd.line = t[i].line;
      fd.rule = "affinity-annotation";
      fd.message = "class " + owner +
                   " stamps FLEXRIC_ASSERT_AFFINITY but its declaration "
                   "lacks a '// @affine(reactor)' annotation";
      fd.suggestion =
          "add `// @affine(reactor)` (or the owning domain) on the line "
          "above `class " + owner + "`";
      out->push_back(std::move(fd));
    }
  }
  // Check B (examples/tests): objects of annotated classes must not be
  // touched from std::thread lambdas — that is exactly the wrong-thread
  // call FLEXRIC_ASSERT_AFFINITY aborts on in guarded builds.
  if (f.category != "examples" && f.category != "tests") return;
  // Local variables declared with an affine type.
  std::set<std::string> affine_vars;
  for (std::size_t i = 0; i + 1 < t.size(); ++i) {
    if (t[i].kind != Tok::identifier ||
        corpus.affine_classes.count(t[i].text) == 0)
      continue;
    std::size_t j = i + 1;
    int guard = 0;
    while (j < t.size() && guard++ < 3 &&
           (is_punct(t[j], ">") || is_punct(t[j], ">>") ||
            is_punct(t[j], "*") || is_punct(t[j], "&")))
      ++j;
    if (j + 1 < t.size() && t[j].kind == Tok::identifier &&
        (is_punct(t[j + 1], "=") || is_punct(t[j + 1], ";") ||
         is_punct(t[j + 1], "(") || is_punct(t[j + 1], "{") ||
         is_punct(t[j + 1], ",") || is_punct(t[j + 1], ")")))
      affine_vars.insert(t[j].text);
  }
  for (std::size_t i = 0; i + 2 < t.size(); ++i) {
    if (!(is_ident(t[i], "std") && is_punct(t[i + 1], "::") &&
          is_ident(t[i + 2], "thread")))
      continue;
    // std::thread t(...), std::thread(...), std::thread t{...}
    std::size_t j = i + 3;
    if (j < t.size() && t[j].kind == Tok::identifier) ++j;
    if (j >= t.size() || !(is_punct(t[j], "(") || is_punct(t[j], "{")))
      continue;
    std::size_t ctor_end = skip_balanced(t, j);
    for (std::size_t b = j + 1; b < ctor_end; ++b) {
      if (t[b].kind != Tok::identifier) continue;
      bool hit = affine_vars.count(t[b].text) != 0 ||
                 corpus.affine_classes.count(t[b].text) != 0;
      if (!hit) continue;
      if (b > 0 && (is_punct(t[b - 1], ".") || is_punct(t[b - 1], "->")))
        continue;  // member named like the var
      if (suppressed(f, t[b].line, "affinity-annotation") ||
          suppressed(f, t[i].line, "affinity-annotation"))
        continue;
      Finding fd;
      fd.file = f.rel;
      fd.line = t[b].line;
      fd.rule = "affinity-annotation";
      fd.message = "reactor-affine '" + t[b].text +
                   "' touched from a std::thread lambda; entry points of "
                   "@affine(reactor) classes must run on the loop thread";
      fd.suggestion =
          "marshal the call onto the reactor with reactor.post(), or "
          "suppress with `// lint: allow(affinity-annotation) <reason>` "
          "(e.g. a test that proves the guard trips)";
      out->push_back(std::move(fd));
      break;  // one finding per thread ctor is enough
    }
  }
}

void rule_bounded_queue(const FileUnit& f, const ScopeInfo& scopes,
                        const Corpus& corpus, std::vector<Finding>* out) {
  const Tokens& t = f.lx.tokens;
  for (std::size_t i = 0; i + 3 < t.size(); ++i) {
    if (!(is_ident(t[i], "std") && is_punct(t[i + 1], "::"))) continue;
    bool is_deque = is_ident(t[i + 2], "deque");
    if (!is_deque && !is_ident(t[i + 2], "queue")) continue;
    if (!is_punct(t[i + 3], "<")) continue;
    // Members only: locals (func_depth > 0) drain before the handler returns
    // and cannot accumulate across reactor iterations.
    if (scopes.func_depth[i] != 0) continue;
    // Owning class — or any type it is nested in — must be affine-annotated.
    const std::string& chain = scopes.type_chain[i];
    if (chain.empty()) continue;
    std::string affine_owner;
    for (std::size_t pos = 0; pos <= chain.size();) {
      std::size_t next = chain.find("::", pos);
      std::size_t len = next == std::string::npos ? chain.size() - pos
                                                  : next - pos;
      std::string seg = chain.substr(pos, len);
      if (corpus.affine_classes.count(seg) != 0) {
        affine_owner = seg;
        break;
      }
      if (next == std::string::npos) break;
      pos = next + 2;
    }
    if (affine_owner.empty()) continue;
    // Member declaration shape: `std::deque<...> name ;` (or `=` / `{`
    // default initializer). Anything else — parameter, using-alias, base
    // class — is not an owned, growing member.
    std::size_t j = skip_template_args(t, i + 3);
    if (j == i + 3) continue;
    if (j >= t.size() || t[j].kind != Tok::identifier) continue;
    const std::string& member = t[j].text;
    if (j + 1 >= t.size() ||
        !(is_punct(t[j + 1], ";") || is_punct(t[j + 1], "=") ||
          is_punct(t[j + 1], "{")))
      continue;
    if (suppressed(f, t[i].line, "bounded-queue")) continue;
    Finding fd;
    fd.file = f.rel;
    fd.line = t[i].line;
    fd.rule = "bounded-queue";
    fd.message = "reactor-affine class " + affine_owner +
                 " declares unbounded std::" +
                 (is_deque ? std::string("deque") : std::string("queue")) +
                 " member '" + member +
                 "'; reactor-fed queues need a capacity policy or an "
                 "indication storm grows them without bound";
    fd.suggestion =
        "use overload::BoundedQueue / overload::PriorityQueue (shed with "
        "exact accounting, DESIGN.md §11), or suppress with "
        "`// lint: allow(bounded-queue) <why growth is bounded>`";
    out->push_back(std::move(fd));
  }
}

}  // namespace

void build_registry(Corpus& corpus) {
  corpus.index.clear();
  corpus.index.reserve(corpus.files.size());
  for (const auto& f : corpus.files) corpus.index.push_back(build_file_index(f.lx));
  std::set<std::string> other_ret;
  for (std::size_t i = 0; i < corpus.files.size(); ++i)
    register_file(corpus.files[i], corpus.index[i], corpus, &other_ret);
  for (std::size_t i = 0; i < corpus.files.size(); ++i)
    register_fields(corpus.files[i], corpus.index[i], corpus);
  // Drop ambiguous names: a call site has no type info, so a name declared
  // both ways (serde writers vs readers) cannot be checked soundly.
  for (const auto& name : other_ret) corpus.nodiscard_fns.erase(name);
  // View/atomics registries (view_pass.cpp, atomics_pass.cpp) run after the
  // class registry so @hotpath class membership is known.
  corpus.view_types = {"span", "string_view", "BytesView", "BufferView"};
  for (std::size_t i = 0; i < corpus.files.size(); ++i) {
    register_view_types(corpus.files[i], corpus.index[i], corpus);
    register_atomics(corpus.files[i], corpus.index[i], corpus);
  }
  resolve_view_aliases(corpus);
}

std::vector<Finding> run_rules(const Corpus& corpus,
                               const std::set<std::string>& rules) {
  std::vector<Finding> out;
  for (std::size_t i = 0; i < corpus.files.size(); ++i) {
    const FileUnit& f = corpus.files[i];
    const FileIndex& ix = corpus.index[i];
    const ScopeInfo& scopes = ix.scopes;
    const bool impl_cat = f.category == "src" || f.category == "bench" ||
                          f.category == "examples";
    if (rules.count("posted-lambda-lifetime") && impl_cat)
      rule_posted_lambda(f, &out);
    if (rules.count("nodiscard-status") && impl_cat)
      rule_nodiscard(f, scopes, corpus, &out);
    if (rules.count("blocking-in-handler") && impl_cat)
      rule_blocking(f, &out);
    if (rules.count("affinity-annotation")) rule_affinity(f, scopes, corpus, &out);
    if (rules.count("bounded-queue") && impl_cat)
      rule_bounded_queue(f, scopes, corpus, &out);
    if (rules.count("domain-ownership"))
      pass_domain_ownership(corpus, f, ix, &out);
    if (rules.count("wire-taint") && f.category == "src")
      pass_wire_taint(corpus, f, ix, &out);
    if (rules.count("hotpath-alloc") && f.category == "src")
      pass_hotpath_alloc(corpus, f, ix, &out);
    if (rules.count("view-escape") && f.category == "src")
      pass_view_escape(corpus, f, ix, &out);
    if (rules.count("atomics-order") && f.category == "src")
      pass_atomics_order(corpus, f, ix, &out);
  }
  std::sort(out.begin(), out.end(), [](const Finding& a, const Finding& b) {
    if (a.file != b.file) return a.file < b.file;
    if (a.line != b.line) return a.line < b.line;
    return a.rule < b.rule;
  });
  return out;
}

std::vector<Suppression> collect_suppressions(const Corpus& corpus) {
  std::vector<Suppression> out;
  for (const auto& f : corpus.files)
    for (const auto& [line, text] : f.lx.comments)
      parse_allows(text, line, f.rel, &out);
  return out;
}

}  // namespace flexric::analyze
