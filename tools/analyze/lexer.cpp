#include "lexer.hpp"

#include <cctype>

namespace flexric::analyze {

namespace {

bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

// Two-character operators that must not be split (the rules care about
// `::`, `->` and friends keeping their identity).
constexpr const char* kTwoCharOps[] = {
    "::", "->", "<<", ">>", "<=", ">=", "==", "!=", "&&", "||", "+=",
    "-=", "*=", "/=", "%=", "&=", "|=", "^=", "++", "--", "##",
};

/// Translation-phase-2 line splicing: `\` immediately before a newline joins
/// the next physical line. Annotations, suppressions and declarations may be
/// split this way (macro bodies do it routinely), so splicing happens before
/// tokenization — exactly like a real compiler — while a parallel per-char
/// line table keeps diagnostics on physical lines.
struct Spliced {
  std::string text;
  std::vector<int> line;  // physical line of each char in text
};

Spliced splice(std::string_view src) {
  Spliced out;
  out.text.reserve(src.size());
  out.line.reserve(src.size());
  int line = 1;
  for (std::size_t i = 0; i < src.size(); ++i) {
    char c = src[i];
    if (c == '\\' && i + 1 < src.size() &&
        (src[i + 1] == '\n' ||
         (src[i + 1] == '\r' && i + 2 < src.size() && src[i + 2] == '\n'))) {
      i += src[i + 1] == '\r' ? 2 : 1;  // drop the splice
      ++line;
      continue;
    }
    out.text.push_back(c);
    out.line.push_back(line);
    if (c == '\n') ++line;
  }
  return out;
}

bool is_string_prefix(std::string_view id) {
  return id == "u8" || id == "u" || id == "U" || id == "L";
}
bool is_raw_string_prefix(std::string_view id) {
  return id == "R" || id == "u8R" || id == "uR" || id == "UR" || id == "LR";
}

}  // namespace

LexedFile lex(std::string_view raw_src) {
  LexedFile out;
  const Spliced sp = splice(raw_src);
  const std::string& src = sp.text;
  std::size_t i = 0;
  const std::size_t n = src.size();

  auto line_at = [&](std::size_t pos) -> int {
    if (sp.line.empty()) return 1;
    return sp.line[pos < n ? pos : n - 1];
  };

  auto add_comment = [&](int at_line, std::string_view text) {
    std::string& slot = out.comments[at_line];
    if (!slot.empty()) slot += ' ';
    slot.append(text);
  };

  // Comment text lands on every physical line it touches (block comments and
  // spliced line comments both span lines), so suppressions and annotations
  // are found from any line they cover.
  auto add_comment_range = [&](std::size_t from, std::size_t to_excl) {
    std::string_view body(src.data() + from, to_excl - from);
    int first = line_at(from);
    int last = to_excl > from ? line_at(to_excl - 1) : first;
    for (int l = first; l <= last; ++l) add_comment(l, body);
  };

  // Consume a raw string literal starting at the `"` of `R"`; returns the
  // index just past the closing quote. The delimiter may contain any
  // non-paren characters — including `@affine` — and the content is opaque.
  auto consume_raw_string = [&](std::size_t quote) -> std::size_t {
    std::size_t d0 = quote + 1;
    std::size_t dp = d0;
    while (dp < n && src[dp] != '(') ++dp;
    std::string close = ")" + std::string(src.substr(d0, dp - d0)) + "\"";
    std::size_t end = src.find(close, dp);
    if (end == std::string::npos) return n;
    return end + close.size();
  };

  while (i < n) {
    char c = src[i];
    int line = line_at(i);
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // Line comment. The splice pass already joined `... \<newline>` lines,
    // so a backslash-continued comment is one comment spanning lines here.
    if (c == '/' && i + 1 < n && src[i + 1] == '/') {
      std::size_t start = i;
      while (i < n && src[i] != '\n') ++i;
      add_comment_range(start, i);
      continue;
    }
    // Block comment.
    if (c == '/' && i + 1 < n && src[i + 1] == '*') {
      i += 2;
      std::size_t start = i;
      while (i + 1 < n && !(src[i] == '*' && src[i + 1] == '/')) ++i;
      add_comment_range(start, i < n ? i : n);
      i = (i + 1 < n) ? i + 2 : n;
      continue;
    }
    // Preprocessor directive: consume the logical line (splices are already
    // joined, so this is a plain scan to newline). Invisible to the rules.
    if (c == '#') {
      bool bol = true;  // only a line-leading # starts a directive
      for (std::size_t j = i; j-- > 0;) {
        if (src[j] == '\n') break;
        if (!std::isspace(static_cast<unsigned char>(src[j]))) {
          bol = false;
          break;
        }
      }
      if (bol) {
        while (i < n && src[i] != '\n') ++i;
        continue;
      }
      out.tokens.push_back({Tok::punct, "#", line});
      ++i;
      continue;
    }
    // String / char literal with escapes.
    if (c == '"' || c == '\'') {
      char quote = c;
      std::size_t j = i + 1;
      while (j < n && src[j] != quote) {
        if (src[j] == '\\' && j + 1 < n) ++j;
        ++j;
      }
      out.tokens.push_back({quote == '"' ? Tok::string_lit : Tok::char_lit,
                            "<literal>", line});
      i = (j < n) ? j + 1 : n;
      continue;
    }
    if (ident_start(c)) {
      std::size_t j = i;
      while (j < n && ident_char(src[j])) ++j;
      std::string_view id = std::string_view(src).substr(i, j - i);
      if (j < n && src[j] == '"') {
        // Encoding-prefixed literal: `u8"..."` lexes as one string token;
        // `LR"delim(...)delim"` as one raw string. Without this the payload
        // of a prefixed raw string would be tokenized as code.
        if (is_raw_string_prefix(id)) {
          i = consume_raw_string(j);
          out.tokens.push_back({Tok::string_lit, "<raw-string>", line});
          continue;
        }
        if (is_string_prefix(id)) {
          std::size_t k = j + 1;
          while (k < n && src[k] != '"') {
            if (src[k] == '\\' && k + 1 < n) ++k;
            ++k;
          }
          out.tokens.push_back({Tok::string_lit, "<literal>", line});
          i = (k < n) ? k + 1 : n;
          continue;
        }
      }
      out.tokens.push_back({Tok::identifier, std::string(id), line});
      i = j;
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      std::size_t j = i;
      while (j < n &&
             (ident_char(src[j]) || src[j] == '.' ||
              // digit separator: 10'000 must stay one number token, or the
              // `'` would open a bogus char literal and desync the stream
              (src[j] == '\'' && j + 1 < n && ident_char(src[j + 1])) ||
              ((src[j] == '+' || src[j] == '-') && j > i &&
               (src[j - 1] == 'e' || src[j - 1] == 'E' || src[j - 1] == 'p' ||
                src[j - 1] == 'P'))))
        ++j;
      out.tokens.push_back(
          {Tok::number, std::string(src.substr(i, j - i)), line});
      i = j;
      continue;
    }
    // Digraphs (<% %> <: :> %: %:%:) map to their primary spelling so brace/
    // bracket balance survives digraph-using sources. `<::` is NOT a digraph
    // when not followed by ':' or '>' (the std::vector<::T> rule).
    if (i + 1 < n) {
      char d0 = c, d1 = src[i + 1];
      const char* mapped = nullptr;
      if (d0 == '<' && d1 == '%') mapped = "{";
      else if (d0 == '%' && d1 == '>') mapped = "}";
      else if (d0 == '<' && d1 == ':' &&
               !(i + 2 < n && src[i + 2] == ':' &&
                 !(i + 3 < n && (src[i + 3] == ':' || src[i + 3] == '>'))))
        mapped = "[";
      else if (d0 == ':' && d1 == '>') mapped = "]";
      else if (d0 == '%' && d1 == ':') {
        if (i + 3 < n && src[i + 2] == '%' && src[i + 3] == ':') {
          out.tokens.push_back({Tok::punct, "##", line});
          i += 4;
          continue;
        }
        mapped = "#";
      }
      if (mapped) {
        out.tokens.push_back({Tok::punct, mapped, line});
        i += 2;
        continue;
      }
    }
    // Punctuation: longest match against the two-char set.
    if (i + 1 < n) {
      char pair[3] = {c, src[i + 1], 0};
      for (const char* op : kTwoCharOps) {
        if (pair[0] == op[0] && pair[1] == op[1]) {
          out.tokens.push_back({Tok::punct, op, line});
          i += 2;
          goto next;
        }
      }
    }
    out.tokens.push_back({Tok::punct, std::string(1, c), line});
    ++i;
  next:;
  }
  out.tokens.push_back({Tok::eof, "", line_at(n ? n - 1 : 0)});
  return out;
}

}  // namespace flexric::analyze
