#include "lexer.hpp"

#include <cctype>

namespace flexric::analyze {

namespace {

bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

// Two-character operators that must not be split (the rules care about
// `::`, `->` and friends keeping their identity).
constexpr const char* kTwoCharOps[] = {
    "::", "->", "<<", ">>", "<=", ">=", "==", "!=", "&&", "||", "+=",
    "-=", "*=", "/=", "%=", "&=", "|=", "^=", "++", "--", "##",
};

}  // namespace

LexedFile lex(std::string_view src) {
  LexedFile out;
  std::size_t i = 0;
  const std::size_t n = src.size();
  int line = 1;

  auto add_comment = [&](int at_line, std::string_view text) {
    std::string& slot = out.comments[at_line];
    if (!slot.empty()) slot += ' ';
    slot.append(text);
  };

  while (i < n) {
    char c = src[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // Line comment.
    if (c == '/' && i + 1 < n && src[i + 1] == '/') {
      std::size_t start = i;
      while (i < n && src[i] != '\n') ++i;
      add_comment(line, src.substr(start, i - start));
      continue;
    }
    // Block comment (may span lines; text lands on every touched line so a
    // suppression inside it is found from the line it sits on).
    if (c == '/' && i + 1 < n && src[i + 1] == '*') {
      i += 2;
      std::size_t start = i;
      int start_line = line;
      while (i + 1 < n && !(src[i] == '*' && src[i + 1] == '/')) {
        if (src[i] == '\n') ++line;
        ++i;
      }
      std::string_view body = src.substr(start, i - start);
      for (int l = start_line; l <= line; ++l) add_comment(l, body);
      i = (i + 1 < n) ? i + 2 : n;
      continue;
    }
    // Preprocessor directive: consume the whole logical line (with \-
    // continuations). Directives are invisible to the rules.
    if (c == '#') {
      bool bol = true;  // only a line-leading # starts a directive
      for (std::size_t j = i; j-- > 0;) {
        if (src[j] == '\n') break;
        if (!std::isspace(static_cast<unsigned char>(src[j]))) {
          bol = false;
          break;
        }
      }
      if (bol) {
        while (i < n) {
          if (src[i] == '\\' && i + 1 < n && src[i + 1] == '\n') {
            ++line;
            i += 2;
            continue;
          }
          if (src[i] == '\n') break;
          ++i;
        }
        continue;
      }
      out.tokens.push_back({Tok::punct, "#", line});
      ++i;
      continue;
    }
    // Raw string literal R"delim( ... )delim".
    if (c == 'R' && i + 1 < n && src[i + 1] == '"') {
      std::size_t d0 = i + 2;
      std::size_t dp = d0;
      while (dp < n && src[dp] != '(') ++dp;
      std::string close = ")" + std::string(src.substr(d0, dp - d0)) + "\"";
      std::size_t end = src.find(close, dp);
      if (end == std::string_view::npos) end = n;
      for (std::size_t j = i; j < end && j < n; ++j)
        if (src[j] == '\n') ++line;
      out.tokens.push_back({Tok::string_lit, "<raw-string>", line});
      i = (end == n) ? n : end + close.size();
      continue;
    }
    // String / char literal with escapes.
    if (c == '"' || c == '\'') {
      char quote = c;
      std::size_t j = i + 1;
      while (j < n && src[j] != quote) {
        if (src[j] == '\\' && j + 1 < n) ++j;
        if (src[j] == '\n') ++line;  // unterminated; keep line count sane
        ++j;
      }
      out.tokens.push_back({quote == '"' ? Tok::string_lit : Tok::char_lit,
                            "<literal>", line});
      i = (j < n) ? j + 1 : n;
      continue;
    }
    if (ident_start(c)) {
      std::size_t j = i;
      while (j < n && ident_char(src[j])) ++j;
      out.tokens.push_back(
          {Tok::identifier, std::string(src.substr(i, j - i)), line});
      i = j;
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      std::size_t j = i;
      while (j < n && (ident_char(src[j]) || src[j] == '.' ||
                       ((src[j] == '+' || src[j] == '-') && j > i &&
                        (src[j - 1] == 'e' || src[j - 1] == 'E' ||
                         src[j - 1] == 'p' || src[j - 1] == 'P'))))
        ++j;
      out.tokens.push_back(
          {Tok::number, std::string(src.substr(i, j - i)), line});
      i = j;
      continue;
    }
    // Punctuation: longest match against the two-char set.
    if (i + 1 < n) {
      char pair[3] = {c, src[i + 1], 0};
      for (const char* op : kTwoCharOps) {
        if (pair[0] == op[0] && pair[1] == op[1]) {
          out.tokens.push_back({Tok::punct, op, line});
          i += 2;
          goto next;
        }
      }
    }
    out.tokens.push_back({Tok::punct, std::string(1, c), line});
    ++i;
  next:;
  }
  out.tokens.push_back({Tok::eof, "", line});
  return out;
}

}  // namespace flexric::analyze
