#include "index.hpp"

namespace flexric::analyze {

namespace {

std::set<std::string>* g_used_suppressions = nullptr;

/// Function annotations sit in a comment within two lines above the first
/// declaration token (or on its line). `floor` is the first line not yet
/// claimed by an earlier declaration, so back-to-back one-line definitions
/// don't inherit each other's annotations.
void scan_annotation_window(const LexedFile& lx, int line, int floor,
                            FuncSpan* span) {
  for (int l = line - 2 > floor ? line - 2 : floor; l <= line; ++l) {
    auto it = lx.comments.find(l);
    if (it == lx.comments.end()) continue;
    const std::string& c = it->second;
    if (c.find("@cross_domain") != std::string::npos) span->cross_domain = true;
    if (c.find("@hotpath") != std::string::npos) span->hotpath = true;
    if (c.find("@coldpath") != std::string::npos) span->coldpath = true;
    std::string d = parse_affine_domain(c);
    if (!d.empty()) span->domain = d;
  }
}

}  // namespace

std::size_t match_paren_back(const Tokens& t, std::size_t close) {
  int depth = 0;
  for (std::size_t i = close + 1; i-- > 0;) {
    if (is_punct(t[i], ")")) ++depth;
    if (is_punct(t[i], "(")) {
      if (--depth == 0) return i;
    }
  }
  return 0;
}

std::size_t skip_balanced(const Tokens& t, std::size_t open) {
  const std::string& o = t[open].text;
  const char* close = o == "(" ? ")" : o == "[" ? "]" : "}";
  int depth = 0;
  for (std::size_t i = open; i < t.size() && t[i].kind != Tok::eof; ++i) {
    if (t[i].kind == Tok::punct && t[i].text == o) ++depth;
    if (t[i].kind == Tok::punct && t[i].text == close) {
      if (--depth == 0) return i + 1;
    }
  }
  return t.size() - 1;
}

std::size_t skip_template_args(const Tokens& t, std::size_t from) {
  if (from >= t.size() || !is_punct(t[from], "<")) return from;
  int depth = 0;
  for (std::size_t i = from; i < t.size(); ++i) {
    if (is_punct(t[i], "<")) ++depth;
    if (is_punct(t[i], ">")) --depth;
    if (is_punct(t[i], ">>")) depth -= 2;
    if (depth <= 0) return i + 1;
  }
  return from;
}

std::size_t parse_captures(const Tokens& t, std::size_t open,
                           std::vector<Capture>* out) {
  std::size_t end = skip_balanced(t, open);  // index after ']'
  std::size_t i = open + 1;
  while (i < end - 1) {
    Capture c;
    if (is_punct(t[i], "&")) {
      c.by_ref = true;
      ++i;
      if (i >= end - 1 || is_punct(t[i], ",")) c.def_ref = true;
    } else if (is_punct(t[i], "*") && i + 1 < end &&
               is_ident(t[i + 1], "this")) {
      i += 2;  // *this copies the object: safe, not a this-capture
      while (i < end - 1 && !is_punct(t[i], ",")) ++i;
      ++i;
      continue;
    } else if (is_punct(t[i], "=")) {
      c.def_copy = true;
      ++i;
      out->push_back(std::move(c));
      while (i < end - 1 && !is_punct(t[i], ",")) ++i;
      ++i;
      continue;
    }
    if (i < end - 1 && is_ident(t[i], "this")) {
      c.is_this = true;
      ++i;
    } else if (i < end - 1 && t[i].kind == Tok::identifier) {
      c.name = t[i].text;
      ++i;
      if (i < end - 1 && is_punct(t[i], "=")) {
        ++i;
        int depth = 0;
        while (i < end - 1 && (depth > 0 || !is_punct(t[i], ","))) {
          if (is_punct(t[i], "(") || is_punct(t[i], "[") ||
              is_punct(t[i], "{") || is_punct(t[i], "<"))
            ++depth;
          if (is_punct(t[i], ")") || is_punct(t[i], "]") ||
              is_punct(t[i], "}") || is_punct(t[i], ">"))
            --depth;
          c.init.push_back(t[i]);
          ++i;
        }
      }
    }
    out->push_back(std::move(c));
    while (i < end - 1 && !is_punct(t[i], ",")) ++i;
    if (i < end - 1) ++i;  // past ','
  }
  return end;
}

FileIndex build_file_index(const LexedFile& lx) {
  const Tokens& t = lx.tokens;
  FileIndex out;
  ScopeInfo& info = out.scopes;
  info.func_depth.resize(t.size(), 0);
  info.owner_class.resize(t.size());
  info.type_chain.resize(t.size());

  struct Scope {
    ScopeKind kind;
    std::string name;   // class name for type scopes
    std::string owner;  // owner class for func scopes
    int span = -1;      // index into out.funcs for func scopes
  };
  std::vector<Scope> stack;

  int fdepth = 0;
  int annot_floor = 0;  // first line not claimed by an earlier declaration
  std::string owner;
  std::string chain;

  auto recompute_owner = [&] {
    owner.clear();
    for (auto it = stack.rbegin(); it != stack.rend(); ++it)
      if (it->kind == ScopeKind::func) {
        owner = it->owner;
        break;
      }
    chain.clear();
    for (const Scope& s : stack) {
      if (s.kind != ScopeKind::type || s.name.empty()) continue;
      if (!chain.empty()) chain += "::";
      chain += s.name;
    }
  };

  for (std::size_t i = 0; i < t.size(); ++i) {
    info.func_depth[i] = fdepth;
    info.owner_class[i] = owner;
    info.type_chain[i] = chain;
    if (is_punct(t[i], "}")) {
      if (!stack.empty()) {
        if (stack.back().kind == ScopeKind::func) {
          --fdepth;
          if (stack.back().span >= 0)
            out.funcs[stack.back().span].body_end = i + 1;
        }
        stack.pop_back();
        recompute_owner();
      }
      if (t[i].line + 1 > annot_floor) annot_floor = t[i].line + 1;
      continue;
    }
    if (!is_punct(t[i], "{")) continue;

    // Classify this '{'.
    Scope sc{ScopeKind::block, "", "", -1};
    if (fdepth > 0) {
      // Inside a function everything is a block (lambda bodies included);
      // owner does not change.
      sc.kind = ScopeKind::block;
      stack.push_back(sc);
      continue;
    }
    // Look back to the previous ';' / '}' / '{' for classification keywords.
    std::size_t lo = 0;
    for (std::size_t j = i; j-- > 0;) {
      if (is_punct(t[j], ";") || is_punct(t[j], "}") || is_punct(t[j], "{")) {
        lo = j + 1;
        break;
      }
    }
    bool saw_ns = false, saw_type = false, saw_eq = false;
    std::string type_name;
    for (std::size_t j = lo; j < i; ++j) {
      if (is_ident(t[j], "namespace")) saw_ns = true;
      if (is_ident(t[j], "class") || is_ident(t[j], "struct") ||
          is_ident(t[j], "union") || is_ident(t[j], "enum")) {
        saw_type = true;
        // First identifier after the keyword (skip attributes/`class` of
        // `enum class`).
        for (std::size_t k = j + 1; k < i; ++k) {
          if (t[k].kind == Tok::identifier && t[k].text != "final" &&
              t[k].text != "alignas" && t[k].text != "class") {
            type_name = t[k].text;
            break;
          }
          if (is_punct(t[k], ":")) break;
        }
      }
      if (is_punct(t[j], "=")) saw_eq = true;
    }
    if (saw_ns) {
      sc.kind = ScopeKind::ns;
    } else if (saw_type && !saw_eq) {
      sc.kind = ScopeKind::type;
      sc.name = type_name;
    } else if (!saw_eq) {
      // Function body iff walking back over cv/ref/noexcept/trailing-return
      // tokens reaches the ')' of a parameter list.
      std::size_t j = i;
      bool reached_paren = false;
      int guard = 0;
      while (j-- > lo && guard++ < 24) {
        const Token& p = t[j];
        if (is_punct(p, ")")) {
          reached_paren = true;
          break;
        }
        bool skippable =
            p.kind == Tok::identifier ||  // const, noexcept, override, types
            is_punct(p, "->") || is_punct(p, "::") || is_punct(p, "&") ||
            is_punct(p, "&&") || is_punct(p, "<") || is_punct(p, ">") ||
            is_punct(p, ">>") || is_punct(p, "*") || is_punct(p, ":") ||
            is_punct(p, ",");  // ctor init lists: `: a_(x), b_(y) {`
        if (!skippable) break;
      }
      if (reached_paren) {
        sc.kind = ScopeKind::func;
        // Identify `Class::name(` to attribute the method to its class;
        // ctor-init-lists mean the ')' found above may be a member
        // initializer, so walk back over `ident ( ... )` groups until the
        // parameter list's opener.
        std::size_t close = j;
        std::size_t open = match_paren_back(t, close);
        while (open >= 2 && t[open - 1].kind == Tok::identifier &&
               (is_punct(t[open - 2], ",") || is_punct(t[open - 2], ":"))) {
          // `..., member(expr)` — an init-list entry; keep walking back.
          std::size_t k = open - 2;
          if (is_punct(t[k], ":")) {
            // reached `) : first(...)`: the token before ':' closes the
            // real parameter list.
            if (k >= 1 && is_punct(t[k - 1], ")")) {
              close = k - 1;
              open = match_paren_back(t, close);
            }
            break;
          }
          // skip backward over the previous init entry's parens
          std::size_t prev_close = k;
          while (prev_close-- > 0 && !is_punct(t[prev_close], ")")) {
          }
          close = prev_close;
          open = match_paren_back(t, close);
        }
        FuncSpan span;
        span.body_begin = i;
        span.line = t[i].line;
        if (open >= 1 && t[open - 1].kind == Tok::identifier)
          span.name = t[open - 1].text;
        if (open >= 3 && t[open - 1].kind == Tok::identifier &&
            is_punct(t[open - 2], "::") &&
            t[open - 3].kind == Tok::identifier) {
          sc.owner = t[open - 3].text;  // X::name( → owner X
        } else if (!stack.empty() && stack.back().kind == ScopeKind::type) {
          sc.owner = stack.back().name;  // method defined in-class
        }
        span.owner = sc.owner;
        // Declaration start: past access specifiers (`public:` shares the
        // statement boundary but not the declaration).
        std::size_t sig = lo;
        while (sig + 1 < i &&
               (is_ident(t[sig], "public") || is_ident(t[sig], "private") ||
                is_ident(t[sig], "protected")) &&
               is_punct(t[sig + 1], ":"))
          sig += 2;
        span.sig_begin = sig;
        scan_annotation_window(lx, t[sig].line, annot_floor, &span);
        annot_floor = t[sig].line + 1;
        sc.span = static_cast<int>(out.funcs.size());
        out.funcs.push_back(std::move(span));
      }
    }
    if (sc.kind == ScopeKind::func) ++fdepth;
    stack.push_back(sc);
    recompute_owner();
  }
  // Unterminated spans (truncated file) close at eof.
  for (auto& sp : out.funcs)
    if (sp.body_end == 0) sp.body_end = t.size();
  return out;
}

std::string parse_affine_domain(const std::string& comment) {
  const std::string needle = "@affine(";
  std::size_t pos = comment.find(needle);
  if (pos == std::string::npos) return "";
  std::size_t at = pos + needle.size();
  std::size_t close = comment.find(')', at);
  if (close == std::string::npos) return "reactor";
  std::string d = comment.substr(at, close - at);
  while (!d.empty() && (d.front() == ' ')) d.erase(d.begin());
  while (!d.empty() && (d.back() == ' ')) d.pop_back();
  return d.empty() ? "reactor" : d;
}

bool annotation_near(const LexedFile& lx, int line, const char* needle) {
  for (int l = line - 2; l <= line; ++l) {
    auto it = lx.comments.find(l);
    if (it != lx.comments.end() &&
        it->second.find(needle) != std::string::npos)
      return true;
  }
  return false;
}

std::string annotation_arg_near(const LexedFile& lx, int line,
                                const char* key) {
  const std::string pat = std::string(key) + "(";
  for (int l = line - 2; l <= line; ++l) {
    auto it = lx.comments.find(l);
    if (it == lx.comments.end()) continue;
    std::size_t pos = it->second.find(pat);
    if (pos == std::string::npos) continue;
    std::size_t at = pos + pat.size();
    std::size_t close = it->second.find(')', at);
    if (close == std::string::npos) return "";
    std::string a = it->second.substr(at, close - at);
    while (!a.empty() && a.front() == ' ') a.erase(a.begin());
    while (!a.empty() && a.back() == ' ') a.pop_back();
    return a;
  }
  return "";
}

bool is_known_domain(const std::string& d) {
  return d == "reactor" || d == "shard" || d == "any";
}

void parse_allows(const std::string& comment, int line, const std::string& file,
                  std::vector<Suppression>* out) {
  const std::string needle = "lint: allow(";
  std::size_t pos = 0;
  while ((pos = comment.find(needle, pos)) != std::string::npos) {
    std::size_t name_at = pos + needle.size();
    std::size_t close = comment.find(')', name_at);
    if (close == std::string::npos) break;
    Suppression s;
    s.file = file;
    s.line = line;
    s.rule = comment.substr(name_at, close - name_at);
    std::size_t r = close + 1;
    while (r < comment.size() && comment[r] == ' ') ++r;
    s.reason = comment.substr(r);
    // A reason ending in '*/' came from a block comment; trim the closer.
    if (s.reason.size() >= 2 &&
        s.reason.compare(s.reason.size() - 2, 2, "*/") == 0)
      s.reason.resize(s.reason.size() - 2);
    while (!s.reason.empty() && s.reason.back() == ' ') s.reason.pop_back();
    out->push_back(std::move(s));
    pos = close;
  }
}

bool suppressed(const FileUnit& f, int line, const std::string& rule) {
  for (int l : {line, line - 1}) {
    auto it = f.lx.comments.find(l);
    if (it == f.lx.comments.end()) continue;
    std::vector<Suppression> sups;
    parse_allows(it->second, l, f.rel, &sups);
    for (const auto& s : sups)
      if (s.rule == rule) {
        if (g_used_suppressions)
          g_used_suppressions->insert(f.rel + ":" + std::to_string(s.line) +
                                      ":" + rule);
        return true;
      }
  }
  return false;
}

void set_suppression_tracker(std::set<std::string>* used) {
  g_used_suppressions = used;
}

}  // namespace flexric::analyze
