#!/usr/bin/env python3
"""FlexRIC repo lint: enforces invariants the compiler cannot.

Registered as the `lint` CTest test, so `ctest` fails on new violations.

Rules
-----
unchecked-result
    `Result<T>::value()` (and optional `.value()`) asserts on the error arm,
    so calling it on unverified wire data can abort the process. Production
    code (src/, fuzz/, bench/, examples/) must branch on `is_ok()` and use
    `operator*` / `error()`; `.value()` is allowed only under tests/.

wire-assert
    The decode path (src/codec/, src/e2ap/, src/e2sm/) handles bytes that
    arrive off the wire; `assert`/`FLEXRIC_ASSERT` there can turn malformed
    peer input into a process abort. Errors must be returned as
    Result/Status. Encode-side preconditions on locally built IR may be
    suppressed (see below).

include-hygiene
    Quoted includes must be rooted at the canonical source dirs (no `..`
    escapes, no includes of files that do not exist), and a .cpp that has a
    sibling header must include it first — this keeps every header
    self-contained.

thread-primitives
    The reactor is single-threaded by design (DESIGN/reactor.hpp, §4.4 of
    the paper): handlers run on the loop thread and the SDK holds no locks.
    Threading primitives (std::thread/mutex/atomic/..., <thread>, pthread_*)
    are therefore confined to src/transport/ — plus a short sanctioned list
    (THREAD_OK_FILES): src/common/affinity.hpp, whose whole purpose is
    detecting cross-thread calls (it needs std::this_thread to do so), and
    the two cross-shard conduit headers of the sharded RIC (DESIGN.md §13),
    src/common/spsc_ring.hpp and src/common/shard_stats.hpp — the
    architecture change the old wording anticipated. Each shard is still a
    single-threaded reactor universe; the only way data crosses a shard
    boundary is through these audited conduits, so everything else in src/
    stays lock- and atomic-free. Anything else needing a primitive is an
    architecture change, not a patch.

Suppressions
------------
A violation is suppressed by a comment on the same line or the line directly
above it:

    // lint: allow(wire-assert) encode-side precondition on locally built IR

The rule name must match exactly; a reason after the closing parenthesis is
required so every exception documents itself — a reasonless allow() is a
violation in its own right (suppression-audit), and so is an allow() that no
longer silences anything. Suppressions naming rules owned by the C++
analyzer (tools/analyze) are audited by `flexric-analyze`, not here. Run
with --list to see all active suppressions.
"""

import argparse
import os
import re
import sys

CXX_EXTENSIONS = (".cpp", ".hpp", ".h", ".cc")

# Directories scanned per rule (relative to the repo root).
PROD_DIRS = ("src", "fuzz", "bench", "examples")
WIRE_DIRS = (os.path.join("src", "codec"), os.path.join("src", "e2ap"),
             os.path.join("src", "e2sm"))
THREAD_FREE_ROOT = "src"
THREAD_OK_DIR = os.path.join("src", "transport")
# The affinity guard is the runtime cross-thread-call detector (it must ask
# which thread it runs on); the SPSC ring and the per-shard counter board are
# the sanctioned cross-shard conduits of the sharded RIC (DESIGN.md §13) and
# cannot exist without their index/counter atomics. Nothing else in src/
# outside src/transport/ may touch a threading primitive.
THREAD_OK_FILES = (os.path.join("src", "common", "affinity.hpp"),
                   os.path.join("src", "common", "spsc_ring.hpp"),
                   os.path.join("src", "common", "shard_stats.hpp"))

SUPPRESS_RE = re.compile(r"lint:\s*allow\(([a-z-]+)\)\s*(\S.*)?")

RULES = {}


def rule(name):
    def deco(fn):
        RULES[name] = fn
        return fn
    return deco


class Violation:
    def __init__(self, path, lineno, rule_name, message):
        self.path = path
        self.lineno = lineno
        self.rule = rule_name
        self.message = message

    def __str__(self):
        return f"{self.path}:{self.lineno}: [{self.rule}] {self.message}"


def iter_files(root, subdirs):
    # tests/analyze_fixtures is the known-bad corpus for tools/analyze: it
    # exists to violate the rules, so neither linter scans it.
    fixtures = os.path.join(root, "tests", "analyze_fixtures")
    for sub in subdirs:
        base = os.path.join(root, sub)
        for dirpath, _, filenames in os.walk(base):
            if dirpath.startswith(fixtures):
                continue
            for fn in sorted(filenames):
                if fn.endswith(CXX_EXTENSIONS):
                    yield os.path.join(dirpath, fn)


def read_lines(path):
    with open(path, encoding="utf-8", errors="replace") as f:
        return f.read().splitlines()


# (rel, lineno, rule) triples that actually silenced a finding this run;
# the suppression audit flags collected-but-unused entries as stale.
USED_SUPPRESSIONS = set()


def suppressed(lines, idx, rule_name, rel=None):
    """True if line idx (0-based) or the line above carries an allow()."""
    for probe in (idx, idx - 1):
        if 0 <= probe < len(lines):
            m = SUPPRESS_RE.search(lines[probe])
            if m and m.group(1) == rule_name:
                if rel is not None:
                    USED_SUPPRESSIONS.add((rel, probe + 1, rule_name))
                return True
    return False


def collect_suppressions(root, dirs):
    out = []
    for path in iter_files(root, dirs):
        for i, line in enumerate(read_lines(path), 1):
            m = SUPPRESS_RE.search(line)
            if m:
                reason = (m.group(2) or "").strip()
                out.append((os.path.relpath(path, root), i, m.group(1), reason))
    return out


# --------------------------------------------------------------------------
# unchecked-result
# --------------------------------------------------------------------------

VALUE_CALL_RE = re.compile(r"\.value\(\)")


@rule("unchecked-result")
def check_unchecked_result(root):
    violations = []
    for path in iter_files(root, PROD_DIRS):
        rel = os.path.relpath(path, root)
        lines = read_lines(path)
        for i, line in enumerate(lines):
            if VALUE_CALL_RE.search(line) and not suppressed(
                    lines, i, "unchecked-result", rel):
                violations.append(Violation(
                    rel, i + 1, "unchecked-result",
                    ".value() aborts on the error arm; branch on is_ok() "
                    "and use operator*/error() instead"))
    return violations


# --------------------------------------------------------------------------
# wire-assert
# --------------------------------------------------------------------------

ASSERT_RE = re.compile(r"\b(?:FLEXRIC_ASSERT|assert)\s*\(")


@rule("wire-assert")
def check_wire_assert(root):
    violations = []
    for path in iter_files(root, WIRE_DIRS):
        rel = os.path.relpath(path, root)
        lines = read_lines(path)
        for i, line in enumerate(lines):
            stripped = line.lstrip()
            if stripped.startswith("//"):
                continue
            if ASSERT_RE.search(line) and not suppressed(
                    lines, i, "wire-assert", rel):
                violations.append(Violation(
                    rel, i + 1, "wire-assert",
                    "assert in the decode path can abort on malformed wire "
                    "input; return a Result/Status error instead"))
    return violations


# --------------------------------------------------------------------------
# include-hygiene
# --------------------------------------------------------------------------

QUOTED_INCLUDE_RE = re.compile(r'^\s*#\s*include\s*"([^"]+)"')

# Quoted includes resolve against these roots, depending on where the
# including file lives.
INCLUDE_ROOTS = {
    "src": ("src",),
    "tests": ("src", "tests"),
    "fuzz": ("src", "fuzz"),
    "bench": ("src", "bench", "."),
    "examples": ("src", "examples"),
}


@rule("include-hygiene")
def check_include_hygiene(root):
    violations = []
    for path in iter_files(root, PROD_DIRS + ("tests",)):
        rel = os.path.relpath(path, root)
        top = rel.split(os.sep)[0]
        roots = INCLUDE_ROOTS.get(top, ("src",))
        lines = read_lines(path)
        own_header = None
        if rel.endswith(".cpp"):
            sibling = path[:-len(".cpp")] + ".hpp"
            if os.path.exists(sibling):
                own_header = os.path.relpath(
                    sibling, os.path.join(root, "src"))
        first_quoted = None
        for i, line in enumerate(lines):
            m = QUOTED_INCLUDE_RE.match(line)
            if not m:
                continue
            inc = m.group(1)
            if first_quoted is None:
                first_quoted = (i, inc)
            bad_dotdot = ".." in inc.split("/")
            resolves = any(os.path.exists(os.path.join(root, r, inc))
                           for r in roots)
            if ((bad_dotdot or not resolves)
                    and suppressed(lines, i, "include-hygiene", rel)):
                continue
            if bad_dotdot:
                violations.append(Violation(
                    rel, i + 1, "include-hygiene",
                    f'include "{inc}" escapes the source tree with ".."'))
                continue
            if not resolves:
                violations.append(Violation(
                    rel, i + 1, "include-hygiene",
                    f'include "{inc}" does not resolve under '
                    f'{" or ".join(roots)}/'))
        if (own_header is not None and first_quoted is not None
                and first_quoted[1] != own_header.replace(os.sep, "/")
                and not suppressed(lines, first_quoted[0],
                                   "include-hygiene", rel)):
            violations.append(Violation(
                rel, first_quoted[0] + 1, "include-hygiene",
                f'first quoted include must be the sibling header '
                f'"{own_header}" (self-containment check)'))
    return violations


# --------------------------------------------------------------------------
# thread-primitives
# --------------------------------------------------------------------------

THREAD_INCLUDE_RE = re.compile(
    r"#\s*include\s*<(thread|mutex|shared_mutex|condition_variable|atomic|"
    r"future|stop_token|semaphore|latch|barrier)>")
THREAD_USE_RE = re.compile(
    r"\bstd::(jthread|thread|mutex|timed_mutex|recursive_mutex|shared_mutex|"
    r"condition_variable\w*|atomic\b|atomic<|async|future|promise|"
    r"counting_semaphore|latch|barrier|lock_guard|unique_lock|shared_lock|"
    r"scoped_lock)|\bpthread_\w+")


@rule("thread-primitives")
def check_thread_primitives(root):
    violations = []
    for path in iter_files(root, (THREAD_FREE_ROOT,)):
        rel = os.path.relpath(path, root)
        if rel.startswith(THREAD_OK_DIR + os.sep) or rel in THREAD_OK_FILES:
            continue
        lines = read_lines(path)
        for i, line in enumerate(lines):
            stripped = line.lstrip()
            if stripped.startswith("//"):
                continue
            if ((THREAD_INCLUDE_RE.search(line) or THREAD_USE_RE.search(line))
                    and not suppressed(lines, i, "thread-primitives", rel)):
                violations.append(Violation(
                    rel, i + 1, "thread-primitives",
                    "threading primitive outside src/transport/ violates "
                    "the single-threaded reactor contract"))
    return violations


# --------------------------------------------------------------------------
# suppression audit
# --------------------------------------------------------------------------


def audit_suppressions(root, check_stale):
    """Flag reasonless and stale allow() comments for lint.py's own rules.

    Suppressions naming analyzer-owned rules (domain-ownership, wire-taint,
    hotpath-alloc, ...) are skipped — `flexric-analyze` runs the same audit
    for those. Staleness is only decidable after a full run, when every rule
    has had the chance to mark its suppressions as used.
    """
    violations = []
    for path, lineno, name, reason in collect_suppressions(
            root, PROD_DIRS + ("tests",)):
        if name not in RULES:
            continue
        if not reason:
            violations.append(Violation(
                path, lineno, "suppression-audit",
                f"allow({name}) has no reason; every suppression must "
                f"document why the exception is sound"))
        elif check_stale and (path, lineno, name) not in USED_SUPPRESSIONS:
            violations.append(Violation(
                path, lineno, "suppression-audit",
                f"stale suppression: allow({name}) no longer silences any "
                f"finding — delete it"))
    return violations


# --------------------------------------------------------------------------


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--root", default=os.path.dirname(
        os.path.dirname(os.path.abspath(__file__))),
        help="repository root (default: parent of tools/)")
    parser.add_argument("--list", action="store_true",
                        help="list active suppressions and exit")
    parser.add_argument("--rule", action="append", choices=sorted(RULES),
                        help="run only the given rule(s)")
    args = parser.parse_args()

    root = os.path.abspath(args.root)
    if args.list:
        sups = collect_suppressions(root, PROD_DIRS + ("tests",))
        for path, lineno, name, reason in sups:
            print(f"{path}:{lineno}: allow({name}) {reason}")
        missing = [s for s in sups if not s[3]]
        if missing:
            print(f"\n{len(missing)} suppression(s) without a reason",
                  file=sys.stderr)
            return 1
        return 0

    selected = args.rule or sorted(RULES)
    violations = []
    for name in selected:
        violations.extend(RULES[name](root))
    violations.extend(audit_suppressions(root, check_stale=args.rule is None))
    for v in violations:
        print(v)
    if violations:
        print(f"\nlint: {len(violations)} violation(s)", file=sys.stderr)
        return 1
    print(f"lint: ok ({', '.join(selected)})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
