// Key Performance Metrics service model — the E2SM-KPM-style periodic cell
// report (Appendix A.4 of the paper). Aggregated per-cell KPIs, coarser than
// the per-UE MAC SM.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "e2sm/common.hpp"

namespace flexric::e2sm::kpm {

struct Sm {
  static constexpr std::uint16_t kId = 148;
  static constexpr std::uint16_t kRevision = 1;
  static constexpr const char* kName = "ORAN-E2SM-KPM";
};

struct ActionDef {
  std::vector<std::string> metric_names;  ///< empty = all supported metrics
  bool operator==(const ActionDef&) const = default;
};

template <typename A>
void serde(A& a, ActionDef& d) {
  a.vec(d.metric_names);
}

struct Metric {
  std::string name;
  double value = 0.0;
  bool operator==(const Metric&) const = default;
};

template <typename A>
void serde(A& a, Metric& m) {
  a.str(m.name);
  a.f64(m.value);
}

struct IndicationHdr {
  std::uint64_t tstamp_ns = 0;
  std::uint32_t cell_id = 0;
  std::uint32_t granularity_ms = 0;
  bool operator==(const IndicationHdr&) const = default;
};

template <typename A>
void serde(A& a, IndicationHdr& h) {
  a.u64(h.tstamp_ns);
  a.u32(h.cell_id);
  a.u32(h.granularity_ms);
}

struct IndicationMsg {
  std::vector<Metric> metrics;
  bool operator==(const IndicationMsg&) const = default;
};

template <typename A>
void serde(A& a, IndicationMsg& m) {
  a.vec(m.metrics);
}

/// Metric names produced by the RAN simulator's KPM RAN function.
inline constexpr const char* kThroughputDlMbps = "DRB.UEThpDl";
inline constexpr const char* kThroughputUlMbps = "DRB.UEThpUl";
inline constexpr const char* kPrbUtilizationDl = "RRU.PrbUsedDl";
inline constexpr const char* kActiveUes = "RRC.ConnMean";

}  // namespace flexric::e2sm::kpm
