// PDCP statistics service model (monitoring).
#pragma once

#include <cstdint>
#include <vector>

#include "e2sm/common.hpp"

namespace flexric::e2sm::pdcp {

struct Sm {
  static constexpr std::uint16_t kId = 144;
  static constexpr std::uint16_t kRevision = 1;
  static constexpr const char* kName = "FLEXRIC-E2SM-PDCP-STATS";
};

struct ActionDef {
  std::vector<std::uint16_t> rnti_filter;  ///< empty = all UEs
  bool operator==(const ActionDef&) const = default;
};

template <typename A>
void serde(A& a, ActionDef& d) {
  a.vec(d.rnti_filter);
}

/// Per-DRB PDCP packet/byte counters.
struct BearerStats {
  std::uint16_t rnti = 0;
  std::uint8_t drb_id = 0;
  std::uint64_t tx_sdu_bytes = 0;
  std::uint64_t tx_pdu_bytes = 0;  ///< includes PDCP header overhead
  std::uint64_t rx_sdu_bytes = 0;
  std::uint64_t rx_pdu_bytes = 0;
  std::uint32_t tx_sdus = 0;
  std::uint32_t tx_pdus = 0;
  std::uint32_t rx_sdus = 0;
  std::uint32_t rx_pdus = 0;
  std::uint32_t discarded_sdus = 0;
  bool operator==(const BearerStats&) const = default;
};

template <typename A>
void serde(A& a, BearerStats& s) {
  a.u16(s.rnti);
  a.u8(s.drb_id);
  a.u64(s.tx_sdu_bytes);
  a.u64(s.tx_pdu_bytes);
  a.u64(s.rx_sdu_bytes);
  a.u64(s.rx_pdu_bytes);
  a.u32(s.tx_sdus);
  a.u32(s.tx_pdus);
  a.u32(s.rx_sdus);
  a.u32(s.rx_pdus);
  a.u32(s.discarded_sdus);
}

struct IndicationHdr {
  std::uint64_t tstamp_ns = 0;
  std::uint32_t cell_id = 0;
  bool operator==(const IndicationHdr&) const = default;
};

template <typename A>
void serde(A& a, IndicationHdr& h) {
  a.u64(h.tstamp_ns);
  a.u32(h.cell_id);
}

struct IndicationMsg {
  std::vector<BearerStats> bearers;
  bool operator==(const IndicationMsg&) const = default;
};

template <typename A>
void serde(A& a, IndicationMsg& m) {
  a.vec(m.bearers);
}

}  // namespace flexric::e2sm::pdcp
