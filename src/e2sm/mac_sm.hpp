// MAC statistics service model (monitoring).
//
// Exposes per-UE MAC-layer statistics at a configurable period (the paper
// exports them at 1 ms — 4G's TTI). The action definition can exclude HARQ
// (the evaluation's "MAC stats excluding HARQ") and filter UEs, which the
// virtualization controller uses to partition statistics per tenant (§6.2).
#pragma once

#include <cstdint>
#include <vector>

#include "e2sm/common.hpp"

namespace flexric::e2sm::mac {

struct Sm {
  static constexpr std::uint16_t kId = 142;
  static constexpr std::uint16_t kRevision = 1;
  static constexpr const char* kName = "FLEXRIC-E2SM-MAC-STATS";
};

/// What to report and for whom. Empty rnti_filter means "all UEs".
struct ActionDef {
  bool include_harq = false;
  std::vector<std::uint16_t> rnti_filter;
  bool operator==(const ActionDef&) const = default;
};

template <typename A>
void serde(A& a, ActionDef& d) {
  a.boolean(d.include_harq);
  a.vec(d.rnti_filter);
}

/// Per-UE MAC statistics for one reporting period.
struct UeStats {
  std::uint16_t rnti = 0;
  std::uint8_t cqi = 0;
  std::uint8_t mcs_dl = 0;
  std::uint8_t mcs_ul = 0;
  std::uint32_t prbs_dl = 0;      ///< PRBs granted this period
  std::uint32_t prbs_ul = 0;
  std::uint64_t bytes_dl = 0;     ///< MAC SDU bytes served
  std::uint64_t bytes_ul = 0;
  std::uint32_t bsr = 0;          ///< buffer status report (bytes)
  std::int64_t phr_db = 0;        ///< power headroom
  std::uint32_t slice_id = 0;
  std::uint32_t harq_retx = 0;    ///< only populated when include_harq
  bool operator==(const UeStats&) const = default;
};

template <typename A>
void serde(A& a, UeStats& s) {
  a.u16(s.rnti);
  a.u8(s.cqi);
  a.u8(s.mcs_dl);
  a.u8(s.mcs_ul);
  a.u32(s.prbs_dl);
  a.u32(s.prbs_ul);
  a.u64(s.bytes_dl);
  a.u64(s.bytes_ul);
  a.u32(s.bsr);
  a.i64(s.phr_db);
  a.u32(s.slice_id);
  a.u32(s.harq_retx);
}

/// Indication header: where and when the report was produced.
struct IndicationHdr {
  std::uint64_t tstamp_ns = 0;
  std::uint32_t cell_id = 0;
  bool operator==(const IndicationHdr&) const = default;
};

template <typename A>
void serde(A& a, IndicationHdr& h) {
  a.u64(h.tstamp_ns);
  a.u32(h.cell_id);
}

/// Indication message: one entry per (filtered) UE.
struct IndicationMsg {
  std::vector<UeStats> ues;
  bool operator==(const IndicationMsg&) const = default;
};

template <typename A>
void serde(A& a, IndicationMsg& m) {
  a.vec(m.ues);
}

}  // namespace flexric::e2sm::mac
