// RLC statistics service model (monitoring).
//
// Per-bearer queue statistics, including the sojourn times that the traffic
// control xApp (§6.1.1) watches to detect bufferbloat in the RLC DRB buffer.
#pragma once

#include <cstdint>
#include <vector>

#include "e2sm/common.hpp"

namespace flexric::e2sm::rlc {

struct Sm {
  static constexpr std::uint16_t kId = 143;
  static constexpr std::uint16_t kRevision = 1;
  static constexpr const char* kName = "FLEXRIC-E2SM-RLC-STATS";
};

struct ActionDef {
  std::vector<std::uint16_t> rnti_filter;  ///< empty = all UEs
  bool operator==(const ActionDef&) const = default;
};

template <typename A>
void serde(A& a, ActionDef& d) {
  a.vec(d.rnti_filter);
}

/// Per-DRB RLC statistics for one reporting period.
struct BearerStats {
  std::uint16_t rnti = 0;
  std::uint8_t drb_id = 0;
  std::uint64_t tx_bytes = 0;       ///< cumulative PDU bytes to MAC
  std::uint64_t rx_bytes = 0;       ///< cumulative SDU bytes from PDCP
  std::uint32_t tx_pdus = 0;
  std::uint32_t rx_sdus = 0;
  std::uint32_t buffer_bytes = 0;   ///< current DRB queue occupancy
  std::uint32_t buffer_pkts = 0;
  double sojourn_avg_ms = 0.0;      ///< over packets dequeued this period
  double sojourn_max_ms = 0.0;
  std::uint32_t retx_pdus = 0;
  std::uint32_t dropped_sdus = 0;
  bool operator==(const BearerStats&) const = default;
};

template <typename A>
void serde(A& a, BearerStats& s) {
  a.u16(s.rnti);
  a.u8(s.drb_id);
  a.u64(s.tx_bytes);
  a.u64(s.rx_bytes);
  a.u32(s.tx_pdus);
  a.u32(s.rx_sdus);
  a.u32(s.buffer_bytes);
  a.u32(s.buffer_pkts);
  a.f64(s.sojourn_avg_ms);
  a.f64(s.sojourn_max_ms);
  a.u32(s.retx_pdus);
  a.u32(s.dropped_sdus);
}

struct IndicationHdr {
  std::uint64_t tstamp_ns = 0;
  std::uint32_t cell_id = 0;
  bool operator==(const IndicationHdr&) const = default;
};

template <typename A>
void serde(A& a, IndicationHdr& h) {
  a.u64(h.tstamp_ns);
  a.u32(h.cell_id);
}

struct IndicationMsg {
  std::vector<BearerStats> bearers;
  bool operator==(const IndicationMsg&) const = default;
};

template <typename A>
void serde(A& a, IndicationMsg& m) {
  a.vec(m.bearers);
}

}  // namespace flexric::e2sm::rlc
