// UE-to-controller association service model (paper §4.1.2, Fig. 4).
//
// In disaggregated deployments the agent "cannot infer" which UEs belong to
// which specialized controller (the selected PLMN is decoded in the CU, the
// DU only sees RNTIs). This SM lets an infrastructure controller configure
// the UE-to-controller association at an agent, so a connecting UE becomes
// visible to the right specialized controller.
#pragma once

#include <cstdint>

#include "e2sm/common.hpp"

namespace flexric::e2sm::assoc {

struct Sm {
  static constexpr std::uint16_t kId = 151;
  static constexpr std::uint16_t kRevision = 1;
  static constexpr const char* kName = "FLEXRIC-E2SM-UE-ASSOC";
};

enum class CtrlKind : std::uint8_t { associate = 0, dissociate };

/// Control: expose (or hide) `rnti` to the agent-local controller with
/// index `controller_index` (the order in which controllers connected to
/// the agent; 0 = the primary controller, which always sees every UE).
struct CtrlMsg {
  CtrlKind kind = CtrlKind::associate;
  std::uint16_t rnti = 0;
  std::uint32_t controller_index = 0;
  bool operator==(const CtrlMsg&) const = default;
};

template <typename A>
void serde(A& a, CtrlMsg& m) {
  a.enum8(m.kind);
  a.u16(m.rnti);
  a.u32(m.controller_index);
}

struct CtrlOutcome {
  bool success = true;
  std::string diagnostic;
  bool operator==(const CtrlOutcome&) const = default;
};

template <typename A>
void serde(A& a, CtrlOutcome& o) {
  a.boolean(o.success);
  a.str(o.diagnostic);
}

}  // namespace flexric::e2sm::assoc
