// RRC event service model (monitoring, on-event).
//
// Notifies controllers about UE connection events with the selected PLMN and
// slice identifier (S-NSSAI). The slicing xApp (§6.1.2) uses these to
// discover the UE-to-service association; the infrastructure controller in
// the disaggregated scenario (Fig. 4) uses them to configure UE-to-controller
// associations on the DU agent.
#pragma once

#include <cstdint>

#include "e2sm/common.hpp"

namespace flexric::e2sm::rrc {

struct Sm {
  static constexpr std::uint16_t kId = 147;
  static constexpr std::uint16_t kRevision = 1;
  static constexpr const char* kName = "FLEXRIC-E2SM-RRC-CONF";
};

struct ActionDef {
  bool attach_events = true;
  bool detach_events = true;
  bool operator==(const ActionDef&) const = default;
};

template <typename A>
void serde(A& a, ActionDef& d) {
  a.boolean(d.attach_events);
  a.boolean(d.detach_events);
}

enum class EventKind : std::uint8_t { attach = 0, detach, reconfig };

struct IndicationHdr {
  std::uint64_t tstamp_ns = 0;
  std::uint32_t cell_id = 0;
  bool operator==(const IndicationHdr&) const = default;
};

template <typename A>
void serde(A& a, IndicationHdr& h) {
  a.u64(h.tstamp_ns);
  a.u32(h.cell_id);
}

/// One UE connection event.
struct IndicationMsg {
  EventKind kind = EventKind::attach;
  std::uint16_t rnti = 0;
  std::uint32_t plmn = 0;     ///< selected PLMN (packed MCC/MNC)
  std::uint32_t s_nssai = 0;  ///< slice identifier from the attach procedure
  bool operator==(const IndicationMsg&) const = default;
};

template <typename A>
void serde(A& a, IndicationMsg& m) {
  a.enum8(m.kind);
  a.u16(m.rnti);
  a.u32(m.plmn);
  a.u32(m.s_nssai);
}

}  // namespace flexric::e2sm::rrc
