// Traffic control service model (TC SM, §6.1.1).
//
// Abstracts flow configuration inside the RAN the way OpenFlow abstracts
// flows in a switch: a classifier segregates packets into queues, a queue
// scheduler serves them, and a pacer limits the rate into the RLC DRB
// buffer. All four elements are runtime-reconfigurable through this SM —
// the bufferbloat experiment (Fig. 11) installs a second FIFO queue, a
// 5-tuple filter and a 5G-BDP pacer on the fly.
#pragma once

#include <cstdint>
#include <vector>

#include "e2sm/common.hpp"

namespace flexric::e2sm::tc {

struct Sm {
  static constexpr std::uint16_t kId = 146;
  static constexpr std::uint16_t kRevision = 1;
  static constexpr const char* kName = "FLEXRIC-E2SM-TC-CTRL";
};

struct ActionDef {  // subscription = periodic queue statistics
  bool operator==(const ActionDef&) const = default;
  std::uint8_t reserved = 0;
};

template <typename A>
void serde(A& a, ActionDef& d) {
  a.u8(d.reserved);
}

/// POLICY action definition (Appendix A.3 of the paper: "policies are
/// predefined operations that the RAN function should execute upon a
/// trigger"). Installed via a subscription with ActionType::policy: when a
/// bearer's RLC sojourn exceeds `sojourn_limit_ms`, the RAN function itself
/// applies the anti-bufferbloat pacer — no controller round-trip, for
/// deployments where even the xApp loop is too slow.
struct PolicyDef {
  double sojourn_limit_ms = 50.0;
  double pacer_target_ms = 5.0;
  bool operator==(const PolicyDef&) const = default;
};

template <typename A>
void serde(A& a, PolicyDef& p) {
  a.f64(p.sojourn_limit_ms);
  a.f64(p.pacer_target_ms);
}

enum class QueueKind : std::uint8_t { fifo = 0, codel };
enum class SchedKind : std::uint8_t { rr = 0, prio, wrr };
enum class PacerKind : std::uint8_t { none = 0, bdp };

/// 5-tuple classifier match (exact match; 0 = wildcard).
struct FiveTuple {
  std::uint32_t src_ip = 0;
  std::uint32_t dst_ip = 0;
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint8_t proto = 0;  ///< IPPROTO_UDP/TCP; 0 = any
  bool operator==(const FiveTuple&) const = default;
};

template <typename A>
void serde(A& a, FiveTuple& t) {
  a.u32(t.src_ip);
  a.u32(t.dst_ip);
  a.u16(t.src_port);
  a.u16(t.dst_port);
  a.u8(t.proto);
}

struct QueueConf {
  std::uint32_t qid = 0;
  QueueKind kind = QueueKind::fifo;
  std::uint32_t limit_bytes = 2 * 1024 * 1024;
  bool operator==(const QueueConf&) const = default;
};

template <typename A>
void serde(A& a, QueueConf& q) {
  a.u32(q.qid);
  a.enum8(q.kind);
  a.u32(q.limit_bytes);
}

struct FilterConf {
  std::uint32_t filter_id = 0;
  FiveTuple match;
  std::uint32_t dst_qid = 0;
  std::uint8_t precedence = 0;  ///< lower matches first
  bool operator==(const FilterConf&) const = default;
};

template <typename A>
void serde(A& a, FilterConf& f) {
  a.u32(f.filter_id);
  a.field(f.match);
  a.u32(f.dst_qid);
  a.u8(f.precedence);
}

struct SchedConf {
  SchedKind kind = SchedKind::rr;
  std::vector<std::uint32_t> weights;  ///< per-queue weights for wrr/prio
  bool operator==(const SchedConf&) const = default;
};

template <typename A>
void serde(A& a, SchedConf& s) {
  a.enum8(s.kind);
  a.vec(s.weights);
}

/// Pacer parameters. The 5G-BDP pacer targets `target_ms` of queueing in the
/// downstream RLC buffer: it releases just enough bytes to keep the link
/// busy without bloating the DRB queue (Irazabal et al., IEEE Access 2021).
struct PacerConf {
  PacerKind kind = PacerKind::none;
  double target_ms = 5.0;
  double gain = 1.0;  ///< aggressiveness of rate adaptation
  bool operator==(const PacerConf&) const = default;
};

template <typename A>
void serde(A& a, PacerConf& p) {
  a.enum8(p.kind);
  a.f64(p.target_ms);
  a.f64(p.gain);
}

enum class CtrlKind : std::uint8_t {
  add_queue = 0,
  del_queue,
  add_filter,
  del_filter,
  sched_conf,
  pacer_conf,
};

/// RIC Control payload for the TC SM (tagged union as tagged struct).
struct CtrlMsg {
  CtrlKind kind = CtrlKind::add_queue;
  std::uint16_t rnti = 0;   ///< target UE
  std::uint8_t drb_id = 1;  ///< target bearer
  QueueConf queue;          ///< add_queue
  std::uint32_t del_id = 0; ///< del_queue / del_filter
  FilterConf filter;        ///< add_filter
  SchedConf sched;          ///< sched_conf
  PacerConf pacer;          ///< pacer_conf
  bool operator==(const CtrlMsg&) const = default;
};

template <typename A>
void serde(A& a, CtrlMsg& m) {
  a.enum8(m.kind);
  a.u16(m.rnti);
  a.u8(m.drb_id);
  a.field(m.queue);
  a.u32(m.del_id);
  a.field(m.filter);
  a.field(m.sched);
  a.field(m.pacer);
}

struct CtrlOutcome {
  bool success = true;
  std::string diagnostic;
  bool operator==(const CtrlOutcome&) const = default;
};

template <typename A>
void serde(A& a, CtrlOutcome& o) {
  a.boolean(o.success);
  a.str(o.diagnostic);
}

/// Per-queue statistics for one reporting period.
struct QueueStats {
  std::uint32_t qid = 0;
  std::uint32_t backlog_bytes = 0;
  std::uint32_t backlog_pkts = 0;
  double sojourn_avg_ms = 0.0;
  double sojourn_max_ms = 0.0;
  std::uint64_t tx_bytes = 0;
  std::uint64_t tx_pkts = 0;
  std::uint64_t dropped_pkts = 0;
  bool operator==(const QueueStats&) const = default;
};

template <typename A>
void serde(A& a, QueueStats& s) {
  a.u32(s.qid);
  a.u32(s.backlog_bytes);
  a.u32(s.backlog_pkts);
  a.f64(s.sojourn_avg_ms);
  a.f64(s.sojourn_max_ms);
  a.u64(s.tx_bytes);
  a.u64(s.tx_pkts);
  a.u64(s.dropped_pkts);
}

struct IndicationHdr {
  std::uint64_t tstamp_ns = 0;
  std::uint16_t rnti = 0;
  std::uint8_t drb_id = 0;
  bool operator==(const IndicationHdr&) const = default;
};

template <typename A>
void serde(A& a, IndicationHdr& h) {
  a.u64(h.tstamp_ns);
  a.u16(h.rnti);
  a.u8(h.drb_id);
}

struct IndicationMsg {
  std::vector<QueueStats> queues;
  double pacer_rate_mbps = 0.0;  ///< current pacing rate (0 = unpaced)
  bool operator==(const IndicationMsg&) const = default;
};

template <typename A>
void serde(A& a, IndicationMsg& m) {
  a.vec(m.queues);
  a.f64(m.pacer_rate_mbps);
}

}  // namespace flexric::e2sm::tc
