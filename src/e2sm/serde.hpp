// Generic serialization framework for E2SM payloads.
//
// Each SM message declares its fields once via a `serde(archive, self)`
// function template; the archives below derive all three wire formats from
// that single declaration:
//
//   PER   — ASN.1-PER-style (O-RAN's mandated SM encoding)
//   FLAT  — FlatBuffers-style zero-copy
//   PROTO — Protobuf-style varint TLV (used by the FlexRAN baseline)
//
// This is the C++20 rendition of the paper's "we use generics to achieve
// compile time polymorphism" (§4.4), and is what makes the SDK's SMs
// encoding-agnostic: adding a fourth wire format means adding two archives,
// not touching any SM.
//
// Decode archives collect the first error in a Status instead of returning
// per-field Results, keeping serde() declarations linear. After an error all
// further operations are no-ops and the final Status reports the failure.
#pragma once

#include <optional>
#include <string>
#include <type_traits>
#include <vector>

#include "codec/flat.hpp"
#include "codec/per.hpp"
#include "codec/proto.hpp"
#include "codec/wire.hpp"
#include "common/buffer.hpp"
#include "common/result.hpp"

namespace flexric::e2sm {

// ---------------------------------------------------------------------------
// Raw archives: plain little-endian sequential layout. Used standalone for
// in-process hops and nested inside FLAT var regions.
// ---------------------------------------------------------------------------

class RawEnc {
 public:
  static constexpr bool kIsDecoder = false;
  /// Owns its output buffer by default; pass an external writer to append
  /// in place (used by FlatEnc to stream composites into the var region).
  RawEnc() : owned_(256), w_(owned_) {}
  explicit RawEnc(BufWriter& external) : w_(external) {}

  void u8(const std::uint8_t& v) { w_.u8(v); }
  void u16(const std::uint16_t& v) { w_.u16(v); }
  void u32(const std::uint32_t& v) { w_.u32(v); }
  void u64(const std::uint64_t& v) { w_.u64(v); }
  void i64(const std::int64_t& v) { w_.i64(v); }
  void f64(const double& v) { w_.f64(v); }
  void boolean(const bool& v) { w_.u8(v ? 1 : 0); }
  template <typename E>
  void enum8(const E& v) {
    w_.u8(static_cast<std::uint8_t>(v));
  }
  void str(const std::string& v) { w_.lp_string(v); }
  void bytes(const Buffer& v) { w_.lp_bytes(v); }
  template <typename T>
  void vec(const std::vector<T>& v) {
    w_.uvarint(v.size());
    for (const auto& e : v) field(e);
  }
  template <typename T>
  void opt(const std::optional<T>& v) {
    w_.u8(v.has_value() ? 1 : 0);
    if (v) field(*v);
  }
  template <typename T>
  void field(const T& v) {
    if constexpr (std::is_class_v<T> && !std::is_same_v<T, std::string> &&
                  !std::is_same_v<T, Buffer>)
      serde(*this, const_cast<T&>(v));
    else
      scalar_dispatch(v);
  }
  Buffer take() { return w_.take(); }

 private:
  BufWriter owned_;
  BufWriter& w_;

  template <typename T>
  void scalar_dispatch(const T& v) {
    if constexpr (std::is_same_v<T, std::uint8_t>) u8(v);
    else if constexpr (std::is_same_v<T, std::uint16_t>) u16(v);
    else if constexpr (std::is_same_v<T, std::uint32_t>) u32(v);
    else if constexpr (std::is_same_v<T, std::uint64_t>) u64(v);
    else if constexpr (std::is_same_v<T, std::int64_t>) i64(v);
    else if constexpr (std::is_same_v<T, double>) f64(v);
    else if constexpr (std::is_same_v<T, bool>) boolean(v);
    else if constexpr (std::is_same_v<T, std::string>) str(v);
    else if constexpr (std::is_same_v<T, Buffer>) bytes(v);
    else if constexpr (std::is_enum_v<T>) enum8(v);
    else static_assert(!sizeof(T*), "unsupported field type");
  }
};

// @view_of(the encoded message passed to the constructor)
class RawDec {
 public:
  static constexpr bool kIsDecoder = true;
  explicit RawDec(BytesView b) : r_(b) {}
  void u8(std::uint8_t& v) { get(r_.u8(), v); }
  void u16(std::uint16_t& v) { get(r_.u16(), v); }
  void u32(std::uint32_t& v) { get(r_.u32(), v); }
  void u64(std::uint64_t& v) { get(r_.u64(), v); }
  void i64(std::int64_t& v) { get(r_.i64(), v); }
  void f64(double& v) { get(r_.f64(), v); }
  void boolean(bool& v) {
    std::uint8_t b = 0;
    u8(b);
    v = b != 0;
  }
  template <typename E>
  void enum8(E& v) {
    std::uint8_t b = 0;
    u8(b);
    v = static_cast<E>(b);
  }
  void str(std::string& v) { get(r_.lp_string(), v); }
  void bytes(Buffer& v) {
    auto b = r_.lp_bytes();
    if (check(b)) v.assign(b->begin(), b->end());
  }
  template <typename T>
  void vec(std::vector<T>& v) {
    auto n = r_.uvarint();
    if (!check(n)) return;
    if (*n > kMaxListLen) {
      fail(Errc::malformed, "list too long");
      return;
    }
    v.clear();
    // Cap the reservation: a hostile count must not allocate ahead of the
    // data actually present (each element costs at least one input byte).
    v.reserve(static_cast<std::size_t>(std::min<std::uint64_t>(*n, 4096)));
    for (std::uint64_t i = 0; i < *n && ok(); ++i) {
      T e{};
      field(e);
      v.push_back(std::move(e));
    }
  }
  template <typename T>
  void opt(std::optional<T>& v) {
    std::uint8_t present = 0;
    u8(present);
    if (!ok()) return;
    if (present) {
      T e{};
      field(e);
      v = std::move(e);
    } else {
      v.reset();
    }
  }
  template <typename T>
  void field(T& v) {
    if constexpr (std::is_class_v<T> && !std::is_same_v<T, std::string> &&
                  !std::is_same_v<T, Buffer>)
      serde(*this, v);
    else
      scalar_dispatch(v);
  }
  [[nodiscard]] bool ok() const noexcept { return status_.is_ok(); }
  [[nodiscard]] Status status() const { return status_; }
  void fail(Errc c, const char* msg) {
    if (ok()) status_ = Status{c, msg};
  }

 private:
  static constexpr std::uint64_t kMaxListLen = 1 << 20;
  template <typename R, typename T>
  void get(R&& res, T& out) {
    if (check(res)) out = std::move(*res);
  }
  template <typename R>
  bool check(const R& res) {
    if (!ok()) return false;
    if (!res) {
      status_ = Status{res.error().code, res.error().message};
      return false;
    }
    return true;
  }
  template <typename T>
  void scalar_dispatch(T& v) {
    if constexpr (std::is_same_v<T, std::uint8_t>) u8(v);
    else if constexpr (std::is_same_v<T, std::uint16_t>) u16(v);
    else if constexpr (std::is_same_v<T, std::uint32_t>) u32(v);
    else if constexpr (std::is_same_v<T, std::uint64_t>) u64(v);
    else if constexpr (std::is_same_v<T, std::int64_t>) i64(v);
    else if constexpr (std::is_same_v<T, double>) f64(v);
    else if constexpr (std::is_same_v<T, bool>) boolean(v);
    else if constexpr (std::is_same_v<T, std::string>) str(v);
    else if constexpr (std::is_same_v<T, Buffer>) bytes(v);
    else if constexpr (std::is_enum_v<T>) enum8(v);
    else static_assert(!sizeof(T*), "unsupported field type");
  }
  BufReader r_;
  Status status_;
};

// ---------------------------------------------------------------------------
// PER archives: bit-packed, every field parsed (ASN.1 cost profile).
// ---------------------------------------------------------------------------

class PerEnc {
 public:
  static constexpr bool kIsDecoder = false;
  void u8(const std::uint8_t& v) { w_.constrained(v, 0, 0xFF); }
  void u16(const std::uint16_t& v) { w_.constrained(v, 0, 0xFFFF); }
  void u32(const std::uint32_t& v) { w_.constrained(v, 0, 0xFFFFFFFF); }
  void u64(const std::uint64_t& v) { w_.semi_constrained(v, 0); }
  void i64(const std::int64_t& v) { w_.integer(v); }
  void f64(const double& v) { w_.real(v); }
  void boolean(const bool& v) { w_.boolean(v); }
  template <typename E>
  void enum8(const E& v) {
    w_.constrained(static_cast<std::uint8_t>(v), 0, 0xFF);
  }
  void str(const std::string& v) { w_.str(v); }
  void bytes(const Buffer& v) { w_.octets(v); }
  template <typename T>
  void vec(const std::vector<T>& v) {
    w_.length(v.size());
    for (const auto& e : v) field(e);
  }
  template <typename T>
  void opt(const std::optional<T>& v) {
    w_.boolean(v.has_value());
    if (v) field(*v);
  }
  template <typename T>
  void field(const T& v) {
    if constexpr (std::is_class_v<T> && !std::is_same_v<T, std::string> &&
                  !std::is_same_v<T, Buffer>)
      serde(*this, const_cast<T&>(v));
    else
      scalar_dispatch(v);
  }
  Buffer take() { return w_.take(); }

 private:
  template <typename T>
  void scalar_dispatch(const T& v) {
    if constexpr (std::is_same_v<T, std::uint8_t>) u8(v);
    else if constexpr (std::is_same_v<T, std::uint16_t>) u16(v);
    else if constexpr (std::is_same_v<T, std::uint32_t>) u32(v);
    else if constexpr (std::is_same_v<T, std::uint64_t>) u64(v);
    else if constexpr (std::is_same_v<T, std::int64_t>) i64(v);
    else if constexpr (std::is_same_v<T, double>) f64(v);
    else if constexpr (std::is_same_v<T, bool>) boolean(v);
    else if constexpr (std::is_same_v<T, std::string>) str(v);
    else if constexpr (std::is_same_v<T, Buffer>) bytes(v);
    else if constexpr (std::is_enum_v<T>) enum8(v);
    else static_assert(!sizeof(T*), "unsupported field type");
  }
  PerWriter w_;
};

// @view_of(the encoded message passed to the constructor)
class PerDec {
 public:
  static constexpr bool kIsDecoder = true;
  explicit PerDec(BytesView b) : r_(b) {}
  void u8(std::uint8_t& v) { get_narrow(r_.constrained(0, 0xFF), v); }
  void u16(std::uint16_t& v) { get_narrow(r_.constrained(0, 0xFFFF), v); }
  void u32(std::uint32_t& v) { get_narrow(r_.constrained(0, 0xFFFFFFFF), v); }
  void u64(std::uint64_t& v) { get(r_.semi_constrained(0), v); }
  void i64(std::int64_t& v) { get(r_.integer(), v); }
  void f64(double& v) { get(r_.real(), v); }
  void boolean(bool& v) { get(r_.boolean(), v); }
  template <typename E>
  void enum8(E& v) {
    std::uint8_t b = 0;
    u8(b);
    v = static_cast<E>(b);
  }
  void str(std::string& v) { get(r_.str(), v); }
  void bytes(Buffer& v) {
    auto b = r_.octets();
    if (check(b)) v.assign(b->begin(), b->end());
  }
  template <typename T>
  void vec(std::vector<T>& v) {
    auto n = r_.length();
    if (!check(n)) return;
    v.clear();
    v.reserve(*n);
    for (std::size_t i = 0; i < *n && ok(); ++i) {
      T e{};
      field(e);
      v.push_back(std::move(e));
    }
  }
  template <typename T>
  void opt(std::optional<T>& v) {
    bool present = false;
    boolean(present);
    if (!ok()) return;
    if (present) {
      T e{};
      field(e);
      v = std::move(e);
    } else {
      v.reset();
    }
  }
  template <typename T>
  void field(T& v) {
    if constexpr (std::is_class_v<T> && !std::is_same_v<T, std::string> &&
                  !std::is_same_v<T, Buffer>)
      serde(*this, v);
    else
      scalar_dispatch(v);
  }
  [[nodiscard]] bool ok() const noexcept { return status_.is_ok(); }
  [[nodiscard]] Status status() const { return status_; }

 private:
  template <typename R, typename T>
  void get(R&& res, T& out) {
    if (check(res)) out = std::move(*res);
  }
  template <typename R, typename T>
  void get_narrow(R&& res, T& out) {
    if (check(res)) out = static_cast<T>(*res);
  }
  template <typename R>
  bool check(const R& res) {
    if (!ok()) return false;
    if (!res) {
      status_ = Status{res.error().code, res.error().message};
      return false;
    }
    return true;
  }
  template <typename T>
  void scalar_dispatch(T& v) {
    if constexpr (std::is_same_v<T, std::uint8_t>) u8(v);
    else if constexpr (std::is_same_v<T, std::uint16_t>) u16(v);
    else if constexpr (std::is_same_v<T, std::uint32_t>) u32(v);
    else if constexpr (std::is_same_v<T, std::uint64_t>) u64(v);
    else if constexpr (std::is_same_v<T, std::int64_t>) i64(v);
    else if constexpr (std::is_same_v<T, double>) f64(v);
    else if constexpr (std::is_same_v<T, bool>) boolean(v);
    else if constexpr (std::is_same_v<T, std::string>) str(v);
    else if constexpr (std::is_same_v<T, Buffer>) bytes(v);
    else if constexpr (std::is_enum_v<T>) enum8(v);
    else static_assert(!sizeof(T*), "unsupported field type");
  }
  PerReader r_;
  Status status_;
};

// ---------------------------------------------------------------------------
// FLAT archives: scalars to the fixed region, composites nested via RAW in
// the var region. Decode reads in place from the wire buffer.
// ---------------------------------------------------------------------------

class FlatEnc {
 public:
  static constexpr bool kIsDecoder = false;
  void u8(const std::uint8_t& v) { w_.u8(v); }
  void u16(const std::uint16_t& v) { w_.u16(v); }
  void u32(const std::uint32_t& v) { w_.u32(v); }
  void u64(const std::uint64_t& v) { w_.u64(v); }
  void i64(const std::int64_t& v) { w_.i64(v); }
  void f64(const double& v) { w_.f64(v); }
  void boolean(const bool& v) { w_.boolean(v); }
  template <typename E>
  void enum8(const E& v) {
    w_.u8(static_cast<std::uint8_t>(v));
  }
  void str(const std::string& v) { w_.var_string(v); }
  void bytes(const Buffer& v) { w_.var_bytes(v); }
  template <typename T>
  void vec(const std::vector<T>& v) {
    // Composites stream straight into the var region (no staging buffer).
    RawEnc raw(w_.var_begin());
    raw.vec(v);
    w_.var_end();
  }
  template <typename T>
  void opt(const std::optional<T>& v) {
    RawEnc raw(w_.var_begin());
    raw.opt(v);
    w_.var_end();
  }
  template <typename T>
  void field(const T& v) {
    // Nested structs at the top level flatten their scalar fields into the
    // fixed region (they are part of the table).
    if constexpr (std::is_class_v<T> && !std::is_same_v<T, std::string> &&
                  !std::is_same_v<T, Buffer>)
      serde(*this, const_cast<T&>(v));
    else
      scalar_dispatch(v);
  }
  Buffer take() { return w_.finish(); }

 private:
  template <typename T>
  void scalar_dispatch(const T& v) {
    if constexpr (std::is_same_v<T, std::uint8_t>) u8(v);
    else if constexpr (std::is_same_v<T, std::uint16_t>) u16(v);
    else if constexpr (std::is_same_v<T, std::uint32_t>) u32(v);
    else if constexpr (std::is_same_v<T, std::uint64_t>) u64(v);
    else if constexpr (std::is_same_v<T, std::int64_t>) i64(v);
    else if constexpr (std::is_same_v<T, double>) f64(v);
    else if constexpr (std::is_same_v<T, bool>) boolean(v);
    else if constexpr (std::is_same_v<T, std::string>) str(v);
    else if constexpr (std::is_same_v<T, Buffer>) bytes(v);
    else if constexpr (std::is_enum_v<T>) enum8(v);
    else static_assert(!sizeof(T*), "unsupported field type");
  }
  FlatWriter w_;
};

// @view_of(the encoded message passed to the constructor)
class FlatDec {
 public:
  static constexpr bool kIsDecoder = true;
  explicit FlatDec(FlatView v) : v_(v) {}
  /// Parse + construct helper.
  static Result<FlatDec> parse(BytesView wire) {
    auto v = FlatView::parse(wire);
    if (!v) return v.error();
    return FlatDec(*v);
  }
  void u8(std::uint8_t& v) { get(v_.u8(), v); }
  void u16(std::uint16_t& v) { get(v_.u16(), v); }
  void u32(std::uint32_t& v) { get(v_.u32(), v); }
  void u64(std::uint64_t& v) { get(v_.u64(), v); }
  void i64(std::int64_t& v) { get(v_.i64(), v); }
  void f64(double& v) { get(v_.f64(), v); }
  void boolean(bool& v) { get(v_.boolean(), v); }
  template <typename E>
  void enum8(E& v) {
    std::uint8_t b = 0;
    u8(b);
    v = static_cast<E>(b);
  }
  void str(std::string& v) {
    auto s = v_.var_string();
    if (check(s)) v.assign(s->data(), s->size());
  }
  void bytes(Buffer& v) {
    auto b = v_.var_bytes();
    if (check(b)) v.assign(b->begin(), b->end());
  }
  template <typename T>
  void vec(std::vector<T>& v) {
    auto raw = v_.var_bytes();
    if (!check(raw)) return;
    RawDec dec(*raw);
    dec.vec(v);
    merge(dec.status());
  }
  template <typename T>
  void opt(std::optional<T>& v) {
    auto raw = v_.var_bytes();
    if (!check(raw)) return;
    RawDec dec(*raw);
    dec.opt(v);
    merge(dec.status());
  }
  template <typename T>
  void field(T& v) {
    if constexpr (std::is_class_v<T> && !std::is_same_v<T, std::string> &&
                  !std::is_same_v<T, Buffer>)
      serde(*this, v);
    else
      scalar_dispatch(v);
  }
  [[nodiscard]] bool ok() const noexcept { return status_.is_ok(); }
  [[nodiscard]] Status status() const { return status_; }

 private:
  template <typename R, typename T>
  void get(R&& res, T& out) {
    if (check(res)) out = std::move(*res);
  }
  template <typename R>
  bool check(const R& res) {
    if (!ok()) return false;
    if (!res) {
      status_ = Status{res.error().code, res.error().message};
      return false;
    }
    return true;
  }
  void merge(const Status& s) {
    if (ok() && !s.is_ok()) status_ = s;
  }
  template <typename T>
  void scalar_dispatch(T& v) {
    if constexpr (std::is_same_v<T, std::uint8_t>) u8(v);
    else if constexpr (std::is_same_v<T, std::uint16_t>) u16(v);
    else if constexpr (std::is_same_v<T, std::uint32_t>) u32(v);
    else if constexpr (std::is_same_v<T, std::uint64_t>) u64(v);
    else if constexpr (std::is_same_v<T, std::int64_t>) i64(v);
    else if constexpr (std::is_same_v<T, double>) f64(v);
    else if constexpr (std::is_same_v<T, bool>) boolean(v);
    else if constexpr (std::is_same_v<T, std::string>) str(v);
    else if constexpr (std::is_same_v<T, Buffer>) bytes(v);
    else if constexpr (std::is_enum_v<T>) enum8(v);
    else static_assert(!sizeof(T*), "unsupported field type");
  }
  FlatView v_;
  Status status_;
};

// ---------------------------------------------------------------------------
// PROTO archives: varint TLV with sequential field numbers (FlexRAN's wire).
// ---------------------------------------------------------------------------

class ProtoEnc {
 public:
  static constexpr bool kIsDecoder = false;
  void u8(const std::uint8_t& v) { w_.field_u64(next(), v); }
  void u16(const std::uint16_t& v) { w_.field_u64(next(), v); }
  void u32(const std::uint32_t& v) { w_.field_u64(next(), v); }
  void u64(const std::uint64_t& v) { w_.field_u64(next(), v); }
  void i64(const std::int64_t& v) { w_.field_i64(next(), v); }
  void f64(const double& v) { w_.field_f64(next(), v); }
  void boolean(const bool& v) { w_.field_bool(next(), v); }
  template <typename E>
  void enum8(const E& v) {
    w_.field_u64(next(), static_cast<std::uint8_t>(v));
  }
  void str(const std::string& v) { w_.field_string(next(), v); }
  void bytes(const Buffer& v) { w_.field_bytes(next(), v); }
  template <typename T>
  void vec(const std::vector<T>& v) {
    // repeated nested message: every element its own length-delimited field
    std::uint32_t num = next();
    BufWriter count;
    count.uvarint(v.size());
    w_.field_bytes(num, count.view());  // explicit count (canonical order)
    for (const auto& e : v) {
      ProtoEnc child;
      child.field(e);
      Buffer b = child.take();
      w_.field_bytes(num, b);
    }
  }
  template <typename T>
  void opt(const std::optional<T>& v) {
    std::uint32_t num = next();
    if (!v) {
      w_.field_u64(num, 0);
      return;
    }
    w_.field_u64(num, 1);
    ProtoEnc child;
    child.field(*v);
    Buffer b = child.take();
    w_.field_bytes(num, b);
  }
  template <typename T>
  void field(const T& v) {
    if constexpr (std::is_class_v<T> && !std::is_same_v<T, std::string> &&
                  !std::is_same_v<T, Buffer>)
      serde(*this, const_cast<T&>(v));
    else
      scalar_dispatch(v);
  }
  Buffer take() { return w_.take(); }

 private:
  std::uint32_t next() noexcept { return ++num_; }
  template <typename T>
  void scalar_dispatch(const T& v) {
    if constexpr (std::is_same_v<T, std::uint8_t>) u8(v);
    else if constexpr (std::is_same_v<T, std::uint16_t>) u16(v);
    else if constexpr (std::is_same_v<T, std::uint32_t>) u32(v);
    else if constexpr (std::is_same_v<T, std::uint64_t>) u64(v);
    else if constexpr (std::is_same_v<T, std::int64_t>) i64(v);
    else if constexpr (std::is_same_v<T, double>) f64(v);
    else if constexpr (std::is_same_v<T, bool>) boolean(v);
    else if constexpr (std::is_same_v<T, std::string>) str(v);
    else if constexpr (std::is_same_v<T, Buffer>) bytes(v);
    else if constexpr (std::is_enum_v<T>) enum8(v);
    else static_assert(!sizeof(T*), "unsupported field type");
  }
  ProtoWriter w_;
  std::uint32_t num_ = 0;
};

// @view_of(the encoded message passed to the constructor)
class ProtoDec {
 public:
  static constexpr bool kIsDecoder = true;
  explicit ProtoDec(BytesView b) : r_(b) {}
  void u8(std::uint8_t& v) { varint_into(v); }
  void u16(std::uint16_t& v) { varint_into(v); }
  void u32(std::uint32_t& v) { varint_into(v); }
  void u64(std::uint64_t& v) { varint_into(v); }
  void i64(std::int64_t& v) {
    auto f = expect(ProtoWireType::varint);
    if (f) v = ProtoReader::as_i64(*f);
  }
  void f64(double& v) {
    auto f = expect(ProtoWireType::len);
    if (!f) return;
    auto d = ProtoReader::as_f64(*f);
    if (check(d)) v = *d;
  }
  void boolean(bool& v) {
    std::uint64_t b = 0;
    u64(b);
    v = b != 0;
  }
  template <typename E>
  void enum8(E& v) {
    std::uint8_t b = 0;
    u8(b);
    v = static_cast<E>(b);
  }
  void str(std::string& v) {
    auto f = expect(ProtoWireType::len);
    if (f) v = ProtoReader::as_string(*f);
  }
  void bytes(Buffer& v) {
    auto f = expect(ProtoWireType::len);
    if (f) v.assign(f->bytes.begin(), f->bytes.end());
  }
  template <typename T>
  void vec(std::vector<T>& v) {
    auto countf = expect(ProtoWireType::len);
    if (!countf) return;
    BufReader cr(countf->bytes);
    auto n = cr.uvarint();
    if (!check(n)) return;
    std::uint32_t num = countf->number;
    v.clear();
    v.reserve(static_cast<std::size_t>(std::min<std::uint64_t>(*n, 4096)));
    for (std::uint64_t i = 0; i < *n && ok(); ++i) {
      auto f = next_field();
      if (!f) return;
      if (f->number != num || f->type != ProtoWireType::len) {
        fail(Errc::malformed, "repeated field interrupted");
        return;
      }
      ProtoDec child(f->bytes);
      T e{};
      child.field(e);
      merge(child.status());
      v.push_back(std::move(e));
    }
  }
  template <typename T>
  void opt(std::optional<T>& v) {
    std::uint64_t present = 0;
    u64(present);
    if (!ok()) return;
    if (!present) {
      v.reset();
      return;
    }
    auto f = expect(ProtoWireType::len);
    if (!f) return;
    ProtoDec child(f->bytes);
    T e{};
    child.field(e);
    merge(child.status());
    v = std::move(e);
  }
  template <typename T>
  void field(T& v) {
    if constexpr (std::is_class_v<T> && !std::is_same_v<T, std::string> &&
                  !std::is_same_v<T, Buffer>)
      serde(*this, v);
    else
      scalar_dispatch(v);
  }
  [[nodiscard]] bool ok() const noexcept { return status_.is_ok(); }
  [[nodiscard]] Status status() const { return status_; }
  void fail(Errc c, const char* msg) {
    if (ok()) status_ = Status{c, msg};
  }

 private:
  std::optional<ProtoReader::Field> next_field() {
    if (!ok()) return std::nullopt;
    auto f = r_.next();
    if (!f) {
      status_ = Status{f.error().code, f.error().message};
      return std::nullopt;
    }
    return *f;
  }
  std::optional<ProtoReader::Field> expect(ProtoWireType wt) {
    auto f = next_field();
    if (!f) return std::nullopt;
    if (f->type != wt) {
      fail(Errc::malformed, "unexpected wire type");
      return std::nullopt;
    }
    return f;
  }
  template <typename T>
  void varint_into(T& v) {
    auto f = expect(ProtoWireType::varint);
    if (f) v = static_cast<T>(f->varint);
  }
  template <typename R>
  bool check(const R& res) {
    if (!ok()) return false;
    if (!res) {
      status_ = Status{res.error().code, res.error().message};
      return false;
    }
    return true;
  }
  void merge(const Status& s) {
    if (ok() && !s.is_ok()) status_ = s;
  }
  template <typename T>
  void scalar_dispatch(T& v) {
    if constexpr (std::is_same_v<T, std::uint8_t>) u8(v);
    else if constexpr (std::is_same_v<T, std::uint16_t>) u16(v);
    else if constexpr (std::is_same_v<T, std::uint32_t>) u32(v);
    else if constexpr (std::is_same_v<T, std::uint64_t>) u64(v);
    else if constexpr (std::is_same_v<T, std::int64_t>) i64(v);
    else if constexpr (std::is_same_v<T, double>) f64(v);
    else if constexpr (std::is_same_v<T, bool>) boolean(v);
    else if constexpr (std::is_same_v<T, std::string>) str(v);
    else if constexpr (std::is_same_v<T, Buffer>) bytes(v);
    else if constexpr (std::is_enum_v<T>) enum8(v);
    else static_assert(!sizeof(T*), "unsupported field type");
  }
  ProtoReader r_;
  Status status_;
};

// ---------------------------------------------------------------------------
// Entry points
// ---------------------------------------------------------------------------

/// Encode a serde-enabled message in the given wire format.
template <typename T>
Buffer sm_encode(const T& msg, WireFormat f) {
  switch (f) {
    case WireFormat::per: {
      PerEnc a;
      a.field(msg);
      return a.take();
    }
    case WireFormat::flat: {
      FlatEnc a;
      a.field(msg);
      return a.take();
    }
    case WireFormat::proto: {
      ProtoEnc a;
      a.field(msg);
      return a.take();
    }
  }
  return {};
}

/// Decode a serde-enabled message. Returns malformed/truncated errors for
/// bad wire data; never UB.
template <typename T>
Result<T> sm_decode(BytesView wire, WireFormat f) {
  T msg{};
  switch (f) {
    case WireFormat::per: {
      PerDec a(wire);
      a.field(msg);
      if (!a.ok()) return a.status().error();
      return msg;
    }
    case WireFormat::flat: {
      auto a = FlatDec::parse(wire);
      if (!a) return a.error();
      a->field(msg);
      if (!a->ok()) return a->status().error();
      return msg;
    }
    case WireFormat::proto: {
      ProtoDec a(wire);
      a.field(msg);
      if (!a.ok()) return a.status().error();
      return msg;
    }
  }
  return Error{Errc::unsupported, "unknown wire format"};
}

}  // namespace flexric::e2sm
