// Slice control service model (SC SM, §6.1.2).
//
// Abstracts the slice configuration of the MAC scheduler in a RAT-agnostic
// way: a slice *algorithm* (the slice scheduler) plus a list of slices with
// algorithm-specific parameters (each selecting a UE scheduler). The same SM
// drives the 4G and 5G simulator cells, and the virtualization layer (§6.2)
// rewrites its NVS parameters between virtual and physical representations
// (Appendix B).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "e2sm/common.hpp"

namespace flexric::e2sm::slice {

struct Sm {
  static constexpr std::uint16_t kId = 145;
  static constexpr std::uint16_t kRevision = 1;
  static constexpr const char* kName = "FLEXRIC-E2SM-SLICE-CTRL";
};

struct ActionDef {  // subscription = periodic slice status reports
  bool operator==(const ActionDef&) const = default;
  std::uint8_t reserved = 0;
};

template <typename A>
void serde(A& a, ActionDef& d) {
  a.u8(d.reserved);
}

/// Slice-scheduler algorithm. `none` removes slicing (plain UE scheduling).
enum class Algo : std::uint8_t { none = 0, static_rb, nvs };

/// Per-slice UE scheduler.
enum class UeSched : std::uint8_t { rr = 0, pf, mt };

/// NVS slice parameterization [Kokku et al., ToN 2012]: either a capacity
/// slice (fraction of resources) or a rate slice (reserved rate over a
/// reference rate). Appendix B of the paper shows both are equivalent and
/// how the virtualization layer rescales them.
enum class NvsKind : std::uint8_t { capacity = 0, rate };

struct NvsParams {
  NvsKind kind = NvsKind::capacity;
  double capacity_share = 0.0;  ///< [0,1], capacity slices
  double rate_mbps = 0.0;       ///< reserved rate, rate slices
  double ref_rate_mbps = 0.0;   ///< reference rate, rate slices
  bool operator==(const NvsParams&) const = default;
};

template <typename A>
void serde(A& a, NvsParams& p) {
  a.enum8(p.kind);
  a.f64(p.capacity_share);
  a.f64(p.rate_mbps);
  a.f64(p.ref_rate_mbps);
}

/// Static resource-block partition parameters.
struct StaticParams {
  std::uint32_t rb_start = 0;
  std::uint32_t rb_count = 0;
  bool operator==(const StaticParams&) const = default;
};

template <typename A>
void serde(A& a, StaticParams& p) {
  a.u32(p.rb_start);
  a.u32(p.rb_count);
}

/// One slice: id, label, UE scheduler and the parameters of the active
/// algorithm (the non-selected parameter set is ignored).
struct SliceConf {
  std::uint32_t id = 0;
  std::string label;
  UeSched ue_sched = UeSched::pf;
  NvsParams nvs;
  StaticParams static_rb;
  bool operator==(const SliceConf&) const = default;
};

template <typename A>
void serde(A& a, SliceConf& s) {
  a.u32(s.id);
  a.str(s.label);
  a.enum8(s.ue_sched);
  a.field(s.nvs);
  a.field(s.static_rb);
}

struct UeSliceAssoc {
  std::uint16_t rnti = 0;
  std::uint32_t slice_id = 0;
  bool operator==(const UeSliceAssoc&) const = default;
};

template <typename A>
void serde(A& a, UeSliceAssoc& u) {
  a.u16(u.rnti);
  a.u32(u.slice_id);
}

/// Control message kinds (E2SM CHOICE realized as a tagged struct).
enum class CtrlKind : std::uint8_t { add_mod = 0, del, assoc_ue };

/// RIC Control payload for the SC SM.
struct CtrlMsg {
  CtrlKind kind = CtrlKind::add_mod;
  Algo algo = Algo::nvs;                 ///< for add_mod
  std::vector<SliceConf> slices;         ///< for add_mod
  std::vector<std::uint32_t> del_ids;    ///< for del
  std::vector<UeSliceAssoc> assoc;       ///< for assoc_ue
  bool operator==(const CtrlMsg&) const = default;
};

template <typename A>
void serde(A& a, CtrlMsg& m) {
  a.enum8(m.kind);
  a.enum8(m.algo);
  a.vec(m.slices);
  a.vec(m.del_ids);
  a.vec(m.assoc);
}

/// Control outcome returned in RICcontrolAcknowledge.
struct CtrlOutcome {
  bool success = true;
  std::string diagnostic;
  bool operator==(const CtrlOutcome&) const = default;
};

template <typename A>
void serde(A& a, CtrlOutcome& o) {
  a.boolean(o.success);
  a.str(o.diagnostic);
}

/// Periodic slice status report.
struct SliceStatus {
  SliceConf conf;
  double prb_share_used = 0.0;  ///< delivered share over the last period
  std::uint32_t num_ues = 0;
  bool operator==(const SliceStatus&) const = default;
};

template <typename A>
void serde(A& a, SliceStatus& s) {
  a.field(s.conf);
  a.f64(s.prb_share_used);
  a.u32(s.num_ues);
}

struct IndicationHdr {
  std::uint64_t tstamp_ns = 0;
  std::uint32_t cell_id = 0;
  bool operator==(const IndicationHdr&) const = default;
};

template <typename A>
void serde(A& a, IndicationHdr& h) {
  a.u64(h.tstamp_ns);
  a.u32(h.cell_id);
}

struct IndicationMsg {
  Algo algo = Algo::none;
  std::vector<SliceStatus> slices;
  std::vector<UeSliceAssoc> assoc;
  bool operator==(const IndicationMsg&) const = default;
};

template <typename A>
void serde(A& a, IndicationMsg& m) {
  a.enum8(m.algo);
  a.vec(m.slices);
  a.vec(m.assoc);
}

}  // namespace flexric::e2sm::slice
