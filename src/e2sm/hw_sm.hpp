// "Hello World" service model — the E2SM-HW ping used by the paper's RTT and
// signaling-rate experiments (§5.2, §5.4).
//
// The controller sends a RIC Control (ping) with an arbitrary payload; the
// RAN function answers with a RIC Indication (pong) echoing the payload.
#pragma once

#include <cstdint>

#include "e2sm/common.hpp"

namespace flexric::e2sm::hw {

struct Sm {
  static constexpr std::uint16_t kId = 150;
  static constexpr std::uint16_t kRevision = 1;
  static constexpr const char* kName = "ORAN-E2SM-HELLOWORLD";
};

struct ActionDef {  // subscription installs the pong reporting path
  bool operator==(const ActionDef&) const = default;
  std::uint8_t reserved = 0;
};

template <typename A>
void serde(A& a, ActionDef& d) {
  a.u8(d.reserved);
}

/// Control message: ping.
struct Ping {
  std::uint32_t seq = 0;
  std::uint64_t sent_ns = 0;  ///< sender timestamp for RTT computation
  Buffer payload;
  bool operator==(const Ping&) const = default;
};

template <typename A>
void serde(A& a, Ping& p) {
  a.u32(p.seq);
  a.u64(p.sent_ns);
  a.bytes(p.payload);
}

/// Indication message: pong (echo).
struct Pong {
  std::uint32_t seq = 0;
  std::uint64_t ping_sent_ns = 0;  ///< echoed sender timestamp
  Buffer payload;
  bool operator==(const Pong&) const = default;
};

template <typename A>
void serde(A& a, Pong& p) {
  a.u32(p.seq);
  a.u64(p.ping_sent_ns);
  a.bytes(p.payload);
}

struct IndicationHdr {
  std::uint64_t tstamp_ns = 0;
  bool operator==(const IndicationHdr&) const = default;
};

template <typename A>
void serde(A& a, IndicationHdr& h) {
  a.u64(h.tstamp_ns);
}

}  // namespace flexric::e2sm::hw
