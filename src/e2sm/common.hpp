// Shared E2SM building blocks: event triggers and RAN-function identity.
//
// Every SM in this SDK uses the same trigger grammar (periodic timer or
// on-event), mirroring E2SM-KPM's periodic reports and E2SM-NI's event
// inserts (Appendix A.4 of the paper).
#pragma once

#include <cstdint>
#include <string>

#include "codec/wire.hpp"
#include "common/buffer.hpp"
#include "e2ap/messages.hpp"
#include "e2sm/serde.hpp"

namespace flexric::e2sm {

enum class TriggerKind : std::uint8_t { periodic = 0, on_event };

/// Event trigger carried in RICsubscriptionRequest (SM-encoded).
struct EventTrigger {
  TriggerKind kind = TriggerKind::periodic;
  std::uint32_t period_ms = 1000;  ///< for periodic triggers
  bool operator==(const EventTrigger&) const = default;
};

template <typename A>
void serde(A& a, EventTrigger& t) {
  a.enum8(t.kind);
  a.u32(t.period_ms);
}

/// Build the E2AP RanFunctionItem advertising an SM. The definition blob
/// carries the SM's supported wire formats so a controller can pick one.
template <typename Sm>
e2ap::RanFunctionItem make_ran_function() {
  e2ap::RanFunctionItem item;
  item.id = Sm::kId;
  item.revision = Sm::kRevision;
  item.name = Sm::kName;
  return item;
}

}  // namespace flexric::e2sm
