// Ingestion adapter: E2SM statistics indications -> TelemetryStore samples.
//
// Two entry styles, matching the two ways a monitoring iApp consumes
// indications (§5.3):
//
//   decoded  mac()/rlc()/pdcp() take an already-decoded IndicationMsg — the
//            iApp decoded it anyway for its own logic, so ingestion adds no
//            second decode.
//   wire     wire() takes the raw header/message bytes (the zero-copy FLAT
//            path where the iApp never materializes the message) and decodes
//            internally, dispatching on the RAN function id.
//
// Timestamps come from the indication *header* (tstamp_ns, stamped by the
// agent at collection time), not controller arrival time, so series align
// across agents regardless of northbound latency. All three statistics SMs
// share the same {tstamp_ns, cell_id} header layout; header_tstamp() relies
// on that to decode any of them uniformly.
#pragma once

#include <cstdint>

#include "codec/wire.hpp"
#include "common/buffer.hpp"
#include "common/clock.hpp"
#include "common/result.hpp"
#include "e2sm/mac_sm.hpp"
#include "e2sm/pdcp_sm.hpp"
#include "e2sm/rlc_sm.hpp"
#include "telemetry/store.hpp"

namespace flexric::telemetry {

struct IngestConfig {
  /// false: record the core KPI set (6 MAC + 4 RLC + 2 PDCP metrics per
  /// entity). true: record every mapped metric (10 + 8 + 5) — more series,
  /// same per-series cost.
  bool extended_metrics = false;
  /// Shard index of the server feeding this ingest (sharded RIC, DESIGN.md
  /// §13). Samples record under the *global* agent id — namespace in the
  /// top byte, shard-local id below — matching the server/sharding.hpp
  /// convention, so per-shard stores merge on the northbound query path
  /// without id collisions. 0 (shard 0 / unsharded) leaves ids unchanged.
  std::uint32_t agent_namespace = 0;
};

// @hotpath
class Ingest {
 public:
  explicit Ingest(TelemetryStore& store, IngestConfig cfg = {})
      : store_(store), cfg_(cfg) {}

  // -- decoded entry points --
  void mac(AgentId agent, Nanos t, const e2sm::mac::IndicationMsg& msg);
  void rlc(AgentId agent, Nanos t, const e2sm::rlc::IndicationMsg& msg);
  void pdcp(AgentId agent, Nanos t, const e2sm::pdcp::IndicationMsg& msg);

  /// Raw-bytes entry point: decodes the header for the timestamp and the
  /// message by `fn_id` (MAC/RLC/PDCP statistics SMs), then records.
  /// Errc::unsupported for other RAN functions; decode errors pass through.
  Status wire(AgentId agent, std::uint16_t fn_id, BytesView header,
              BytesView message, WireFormat format);

  /// Agent-side collection timestamp from a statistics indication header.
  static Result<Nanos> header_tstamp(BytesView header, WireFormat format);

  [[nodiscard]] std::uint64_t samples_in() const noexcept {
    return samples_in_;
  }
  [[nodiscard]] std::uint64_t decode_errors() const noexcept {
    return decode_errors_;
  }

 private:
  void put(AgentId agent, std::uint32_t entity, Metric m, Nanos t, double v);

  TelemetryStore& store_;
  IngestConfig cfg_;
  std::uint64_t samples_in_ = 0;
  std::uint64_t decode_errors_ = 0;
};

}  // namespace flexric::telemetry
