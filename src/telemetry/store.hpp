// Telemetry time-series store: bounded-memory RAN KPI history.
//
// The paper's statistics iApp (§5.3) "saves incoming messages to an
// in-memory data structure" — but keeping only the latest sample per UE
// answers no question about the past, and keeping every sample is unbounded.
// This store is the middle ground the server library's RAN database (§4.2.2)
// needs at production scale: per-(agent, entity, metric) ring-buffer series
// with eager multi-resolution downsampling (series.hpp) under one global
// memory budget.
//
// Memory model: every series costs exactly
// SeriesLayout::bytes_per_series() + kSeriesOverhead bytes (rings never
// reallocate), so the accounted total is series_count * per_series_cost and
// admission is a simple comparison. When creating a series would exceed the
// budget the store either evicts the least-recently-written series
// (evict_on_budget, the default — stale UEs/bearers age out) or rejects the
// sample with Errc::capacity. Samples for existing series are never dropped.
//
// All methods run on the reactor thread (single-threaded by the SDK's
// contract); queries return copies, so the caller owns the result.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "common/affinity.hpp"
#include "common/result.hpp"
#include "telemetry/series.hpp"

namespace flexric::telemetry {

using AgentId = std::uint32_t;  ///< matches server::AgentId

/// Metric identity. The names (metric_name) are the stable northbound
/// vocabulary used by the REST /series and /query endpoints.
enum class Metric : std::uint16_t {
  // MAC per-UE
  mac_cqi = 0,
  mac_mcs_dl,
  mac_mcs_ul,
  mac_prbs_dl,
  mac_prbs_ul,
  mac_bytes_dl,
  mac_bytes_ul,
  mac_bsr,
  mac_phr_db,
  mac_harq_retx,
  // RLC per-bearer
  rlc_tx_bytes,
  rlc_rx_bytes,
  rlc_buffer_bytes,
  rlc_buffer_pkts,
  rlc_sojourn_avg_ms,
  rlc_sojourn_max_ms,
  rlc_retx_pdus,
  rlc_dropped_sdus,
  // PDCP per-bearer
  pdcp_tx_sdu_bytes,
  pdcp_rx_sdu_bytes,
  pdcp_tx_pdus,
  pdcp_rx_pdus,
  pdcp_discarded_sdus,
  // Overload accounting (DESIGN.md §11): shed/quarantine counters recorded
  // per agent so the controller's own degradation is queryable northbound.
  ov_ingest_shed,        ///< server-side sheds (rate + flood + queue)
  ov_agent_shed,         ///< agent-reported indication sheds
  ov_flood_quarantines,  ///< flood-quarantine escalations
};

[[nodiscard]] const char* metric_name(Metric m) noexcept;
[[nodiscard]] Result<Metric> metric_from_name(std::string_view name);

/// Entity id: a UE (rnti, drb = 0) or a bearer (rnti, drb).
[[nodiscard]] constexpr std::uint32_t make_entity(std::uint16_t rnti,
                                                  std::uint8_t drb = 0) {
  return (static_cast<std::uint32_t>(rnti) << 8) | drb;
}
[[nodiscard]] constexpr std::uint16_t entity_rnti(std::uint32_t e) {
  return static_cast<std::uint16_t>(e >> 8);
}
[[nodiscard]] constexpr std::uint8_t entity_drb(std::uint32_t e) {
  return static_cast<std::uint8_t>(e & 0xFF);
}

struct SeriesKey {
  AgentId agent = 0;
  std::uint32_t entity = 0;
  Metric metric = Metric::mac_cqi;
  auto operator<=>(const SeriesKey&) const = default;
};

struct StoreConfig {
  std::size_t memory_budget = 32u << 20;  ///< bytes, all series combined
  SeriesLayout layout;
  bool evict_on_budget = true;  ///< false: reject new series when full
};

struct SeriesInfo {
  SeriesKey key;
  std::uint64_t total_samples = 0;
  std::size_t raw_count = 0;
  std::size_t tier1_count = 0;
  std::size_t tier2_count = 0;
  Nanos oldest_raw_t = 0;
  Nanos last_t = 0;
};

/// Which resolution a windowed query reads from.
enum class QuerySource : std::uint8_t { automatic, raw, tier1, tier2 };

struct WindowAggregate {
  QuerySource source = QuerySource::raw;  ///< resolution actually used
  Nanos t0 = 0, t1 = 0;
  std::uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;
  double mean = 0.0;
  /// Exact (nearest-rank) when computed from raw; sketch-derived (within
  /// QuantileSketch::kRelativeError) when computed from rollups.
  double p50 = 0.0, p95 = 0.0, p99 = 0.0;
};

// @affine(reactor)
class TelemetryStore {
 public:
  explicit TelemetryStore(StoreConfig cfg);

  /// Ingest one sample. Errc::capacity when a new series cannot be
  /// admitted under the budget (and eviction is off or cannot help).
  Status record(const SeriesKey& key, Nanos t, double v);

  // -- queries (Errc::not_found for unknown series) --
  [[nodiscard]] Result<std::vector<RawSample>> raw_range(const SeriesKey& key,
                                                         Nanos t0,
                                                         Nanos t1) const;
  [[nodiscard]] Result<std::vector<RawSample>> latest(const SeriesKey& key,
                                                      std::size_t n) const;
  [[nodiscard]] Result<std::vector<Rollup>> rollups(const SeriesKey& key,
                                                    int tier, Nanos t0,
                                                    Nanos t1) const;
  [[nodiscard]] Result<WindowAggregate> window_aggregate(
      const SeriesKey& key, Nanos t0, Nanos t1,
      QuerySource source = QuerySource::automatic) const;
  [[nodiscard]] std::vector<SeriesInfo> list_series() const;
  [[nodiscard]] const TimeSeries* find(const SeriesKey& key) const;

  // -- accounting --
  [[nodiscard]] std::size_t num_series() const noexcept {
    return series_.size();
  }
  [[nodiscard]] std::size_t memory_bytes() const noexcept {
    return sizeof(*this) + series_.size() * per_series_cost_;
  }
  [[nodiscard]] std::size_t memory_budget() const noexcept {
    return cfg_.memory_budget;
  }
  [[nodiscard]] std::size_t per_series_cost() const noexcept {
    return per_series_cost_;
  }
  [[nodiscard]] std::uint64_t evictions() const noexcept { return evictions_; }
  [[nodiscard]] std::uint64_t dropped_samples() const noexcept {
    return dropped_;
  }
  [[nodiscard]] std::uint64_t total_samples() const noexcept {
    return total_samples_;
  }

  /// Flight recorder: bounded JSON snapshot of every series (info + the
  /// newest `max_raw_per_series` raw samples) for post-mortems.
  [[nodiscard]] std::string dump_json(std::size_t max_raw_per_series = 16)
      const;

 private:
  /// Estimated per-series bookkeeping outside the rings (map node, key).
  static constexpr std::size_t kSeriesOverhead = 96;

  struct Entry {
    TimeSeries series;
    std::uint64_t last_write_seq = 0;
    explicit Entry(const SeriesLayout& l) : series(l) {}
  };

  bool evict_one();
  /// First-contact slow path of record(): eviction loop + map-node
  /// allocation. nullptr when the budget rejects the new series.
  Entry* ensure_entry(const SeriesKey& key);

  StoreConfig cfg_;
  /// No Reactor reference here, so the stamp lazily binds to the first
  /// calling thread (check_or_bind); mutable because const queries check it.
  mutable ReactorAffinity affinity_;
  std::size_t per_series_cost_ = 0;
  std::map<SeriesKey, Entry> series_;
  std::uint64_t write_seq_ = 0;
  std::uint64_t evictions_ = 0;
  std::uint64_t dropped_ = 0;
  std::uint64_t total_samples_ = 0;
};

}  // namespace flexric::telemetry
