#include "telemetry/ingest.hpp"

#include "e2sm/serde.hpp"

namespace flexric::telemetry {

void Ingest::put(AgentId agent, std::uint32_t entity, Metric m, Nanos t,
                 double v) {
  const AgentId gid = (cfg_.agent_namespace << 24) | (agent & 0xFFFFFF);
  // Budget rejections are counted by the store (dropped_samples); ingestion
  // keeps going so one saturated series cannot stall the rest of the report.
  static_cast<void>(store_.record(SeriesKey{gid, entity, m}, t, v));
  samples_in_++;
}

void Ingest::mac(AgentId agent, Nanos t, const e2sm::mac::IndicationMsg& msg) {
  for (const e2sm::mac::UeStats& ue : msg.ues) {
    std::uint32_t ent = make_entity(ue.rnti);
    put(agent, ent, Metric::mac_cqi, t, ue.cqi);
    put(agent, ent, Metric::mac_mcs_dl, t, ue.mcs_dl);
    put(agent, ent, Metric::mac_prbs_dl, t, ue.prbs_dl);
    put(agent, ent, Metric::mac_bytes_dl, t,
        static_cast<double>(ue.bytes_dl));
    put(agent, ent, Metric::mac_bytes_ul, t,
        static_cast<double>(ue.bytes_ul));
    put(agent, ent, Metric::mac_bsr, t, ue.bsr);
    if (cfg_.extended_metrics) {
      put(agent, ent, Metric::mac_mcs_ul, t, ue.mcs_ul);
      put(agent, ent, Metric::mac_prbs_ul, t, ue.prbs_ul);
      put(agent, ent, Metric::mac_phr_db, t,
          static_cast<double>(ue.phr_db));
      put(agent, ent, Metric::mac_harq_retx, t, ue.harq_retx);
    }
  }
}

void Ingest::rlc(AgentId agent, Nanos t, const e2sm::rlc::IndicationMsg& msg) {
  for (const e2sm::rlc::BearerStats& b : msg.bearers) {
    std::uint32_t ent = make_entity(b.rnti, b.drb_id);
    put(agent, ent, Metric::rlc_tx_bytes, t, static_cast<double>(b.tx_bytes));
    put(agent, ent, Metric::rlc_buffer_bytes, t, b.buffer_bytes);
    put(agent, ent, Metric::rlc_sojourn_avg_ms, t, b.sojourn_avg_ms);
    put(agent, ent, Metric::rlc_sojourn_max_ms, t, b.sojourn_max_ms);
    if (cfg_.extended_metrics) {
      put(agent, ent, Metric::rlc_rx_bytes, t,
          static_cast<double>(b.rx_bytes));
      put(agent, ent, Metric::rlc_buffer_pkts, t, b.buffer_pkts);
      put(agent, ent, Metric::rlc_retx_pdus, t, b.retx_pdus);
      put(agent, ent, Metric::rlc_dropped_sdus, t, b.dropped_sdus);
    }
  }
}

void Ingest::pdcp(AgentId agent, Nanos t,
                  const e2sm::pdcp::IndicationMsg& msg) {
  for (const e2sm::pdcp::BearerStats& b : msg.bearers) {
    std::uint32_t ent = make_entity(b.rnti, b.drb_id);
    put(agent, ent, Metric::pdcp_tx_sdu_bytes, t,
        static_cast<double>(b.tx_sdu_bytes));
    put(agent, ent, Metric::pdcp_rx_sdu_bytes, t,
        static_cast<double>(b.rx_sdu_bytes));
    if (cfg_.extended_metrics) {
      put(agent, ent, Metric::pdcp_tx_pdus, t, b.tx_pdus);
      put(agent, ent, Metric::pdcp_rx_pdus, t, b.rx_pdus);
      put(agent, ent, Metric::pdcp_discarded_sdus, t, b.discarded_sdus);
    }
  }
}

Result<Nanos> Ingest::header_tstamp(BytesView header, WireFormat format) {
  // All statistics SM headers share the {tstamp_ns, cell_id} serde layout,
  // so the MAC decoder reads any of them.
  auto hdr = e2sm::sm_decode<e2sm::mac::IndicationHdr>(header, format);
  if (!hdr.is_ok()) return hdr.error();
  return static_cast<Nanos>(hdr->tstamp_ns);
}

Status Ingest::wire(AgentId agent, std::uint16_t fn_id, BytesView header,
                    BytesView message, WireFormat format) {
  auto t = header_tstamp(header, format);
  if (!t.is_ok()) {
    decode_errors_++;
    return t.status();
  }
  switch (fn_id) {
    case e2sm::mac::Sm::kId: {
      auto msg = e2sm::sm_decode<e2sm::mac::IndicationMsg>(message, format);
      if (!msg.is_ok()) {
        decode_errors_++;
        return msg.status();
      }
      mac(agent, *t, *msg);
      return Status::ok();
    }
    case e2sm::rlc::Sm::kId: {
      auto msg = e2sm::sm_decode<e2sm::rlc::IndicationMsg>(message, format);
      if (!msg.is_ok()) {
        decode_errors_++;
        return msg.status();
      }
      rlc(agent, *t, *msg);
      return Status::ok();
    }
    case e2sm::pdcp::Sm::kId: {
      auto msg = e2sm::sm_decode<e2sm::pdcp::IndicationMsg>(message, format);
      if (!msg.is_ok()) {
        decode_errors_++;
        return msg.status();
      }
      pdcp(agent, *t, *msg);
      return Status::ok();
    }
    default:
      return Status{Errc::unsupported, "no telemetry mapping for RAN fn"};
  }
}

}  // namespace flexric::telemetry
