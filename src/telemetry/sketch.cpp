#include "telemetry/sketch.hpp"

#include <cmath>

namespace flexric::telemetry {

std::size_t QuantileSketch::bucket_of(double v) noexcept {
  if (!(v >= kMinValue)) return 0;  // negatives, zero, tiny values, NaN
  if (v >= kMaxValue) return kBuckets - 1;
  int e = 0;
  double m = std::frexp(v, &e);  // v = m * 2^e, m in [0.5, 1)
  int octave = e - 1;            // v in [2^octave, 2^(octave+1))
  int sub = static_cast<int>((m * 2.0 - 1.0) * kSub);
  if (sub >= kSub) sub = kSub - 1;
  return 1 +
         static_cast<std::size_t>(octave - kMinExp) * kSub +
         static_cast<std::size_t>(sub);
}

double QuantileSketch::bucket_value(std::size_t idx) noexcept {
  if (idx == 0) return 0.0;
  if (idx >= kBuckets - 1) return kMaxValue;
  std::size_t i = idx - 1;
  int octave = kMinExp + static_cast<int>(i) / kSub;
  int sub = static_cast<int>(i) % kSub;
  return std::ldexp(1.0 + (static_cast<double>(sub) + 0.5) / kSub, octave);
}

double QuantileSketch::quantile(double q) const noexcept {
  if (total_ == 0) return 0.0;
  if (!(q > 0.0)) q = 0.0;  // also maps NaN to 0
  if (q > 1.0) q = 1.0;
  std::uint64_t target =
      static_cast<std::uint64_t>(q * static_cast<double>(total_ - 1));
  std::uint64_t cum = 0;
  std::size_t last_nonzero = 0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    if (counts_[i] == 0) continue;
    last_nonzero = i;
    cum += counts_[i];
    if (cum > target) return bucket_value(i);
  }
  // Reachable only when bucket saturation made sum(counts) < total_.
  return bucket_value(last_nonzero);
}

}  // namespace flexric::telemetry
