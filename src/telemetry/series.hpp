// One KPI time series: a raw ring buffer plus multi-resolution rollup rings.
//
// Layout (the "columnar ring-buffer" of the telemetry store):
//
//   raw    fixed-capacity ring of (timestamp, value) samples — the 1 ms
//          indication stream. Wrapping overwrites the oldest sample.
//   tier1  ring of 100 ms rollups (count/sum/min/max + quantile sketch).
//   tier2  ring of 1 s rollups, cascaded from tier1.
//
// Downsampling is *eager*: every append folds the sample into the open
// tier1 bucket; when a sample crosses a bucket boundary the bucket closes
// into the tier1 ring and merges into the open tier2 bucket. So by the time
// the raw ring wraps, the overwritten window already lives in tier1, and by
// the time tier1 wraps it lives in tier2 — old data degrades in resolution
// instead of vanishing. Every ring is sized at construction and never
// reallocates, which is what makes store-level memory accounting exact.
//
// Timestamps are expected non-decreasing (the indication stream is ordered
// per agent). A late sample still lands in the raw ring and is folded into
// the currently open rollup bucket rather than reopening a closed one.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "common/clock.hpp"
#include "telemetry/sketch.hpp"

namespace flexric::telemetry {

struct RawSample {
  Nanos t = 0;
  double v = 0.0;
};

/// One downsampled bucket: [t_start, t_start + tier width).
struct Rollup {
  Nanos t_start = 0;
  std::uint64_t count = 0;
  double sum = 0.0;
  double min = std::numeric_limits<double>::infinity();
  double max = -std::numeric_limits<double>::infinity();
  QuantileSketch sketch;

  void add(double v) noexcept {
    count++;
    sum += v;
    if (v < min) min = v;
    if (v > max) max = v;
    sketch.record(v);
  }
  void merge(const Rollup& o) noexcept {
    if (o.count == 0) return;
    count += o.count;
    sum += o.sum;
    if (o.min < min) min = o.min;
    if (o.max > max) max = o.max;
    sketch.merge(o.sketch);
  }
  [[nodiscard]] double mean() const noexcept {
    return count == 0 ? 0.0 : sum / static_cast<double>(count);
  }
};

/// Ring capacities and rollup widths, shared by every series in a store.
struct SeriesLayout {
  std::size_t raw_capacity = 512;
  std::size_t tier1_capacity = 128;
  std::size_t tier2_capacity = 128;
  Nanos tier1_width = 100 * kMilli;
  Nanos tier2_width = kSecond;

  /// Exact bytes one series costs under this layout (ring payloads plus the
  /// fixed TimeSeries object); the store multiplies this for its budget.
  [[nodiscard]] std::size_t bytes_per_series() const noexcept;
};

class TimeSeries {
 public:
  explicit TimeSeries(const SeriesLayout& layout);

  /// Record one sample. Named push (not append): the raw ring and rollup
  /// buckets are preallocated by the constructor — this never allocates,
  /// which the hotpath-alloc pass can see from the name alone.
  void push(Nanos t, double v);

  [[nodiscard]] std::uint64_t total_samples() const noexcept {
    return total_samples_;
  }
  [[nodiscard]] std::size_t raw_count() const noexcept { return raw_size_; }
  /// Timestamp of the oldest sample still in the raw ring (0 when empty).
  [[nodiscard]] Nanos oldest_raw_t() const noexcept;
  [[nodiscard]] Nanos last_t() const noexcept { return last_t_; }

  /// Raw samples with t in [t0, t1), oldest first.
  [[nodiscard]] std::vector<RawSample> raw_range(Nanos t0, Nanos t1) const;
  /// The newest n raw samples, oldest first.
  [[nodiscard]] std::vector<RawSample> latest(std::size_t n) const;

  /// Closed rollups of tier 1 or 2 whose bucket start lies in [t0, t1),
  /// oldest first, followed by the open bucket if it also intersects.
  [[nodiscard]] std::vector<Rollup> rollup_range(int tier, Nanos t0,
                                                 Nanos t1) const;
  [[nodiscard]] std::size_t rollup_count(int tier) const noexcept;
  /// Bucket start of the oldest retained rollup of `tier`; 0 when none.
  [[nodiscard]] Nanos oldest_rollup_t(int tier) const noexcept;

  [[nodiscard]] const SeriesLayout& layout() const noexcept { return layout_; }

 private:
  struct RollupRing {
    std::vector<Rollup> slots;
    std::size_t head = 0;  ///< index of the oldest entry
    std::size_t size = 0;
    void push(const Rollup& r);
  };

  void close_tier1();
  void close_tier2();

  SeriesLayout layout_;

  std::vector<RawSample> raw_;
  std::size_t raw_head_ = 0;
  std::size_t raw_size_ = 0;

  RollupRing tier1_;
  RollupRing tier2_;
  Rollup open1_{};
  Rollup open2_{};
  bool open1_active_ = false;
  bool open2_active_ = false;

  std::uint64_t total_samples_ = 0;
  Nanos last_t_ = 0;
};

}  // namespace flexric::telemetry
