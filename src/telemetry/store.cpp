#include "telemetry/store.hpp"

#include <algorithm>
#include <cstdio>

namespace flexric::telemetry {

namespace {

struct MetricName {
  Metric metric;
  const char* name;
};

constexpr MetricName kMetricNames[] = {
    {Metric::mac_cqi, "mac_cqi"},
    {Metric::mac_mcs_dl, "mac_mcs_dl"},
    {Metric::mac_mcs_ul, "mac_mcs_ul"},
    {Metric::mac_prbs_dl, "mac_prbs_dl"},
    {Metric::mac_prbs_ul, "mac_prbs_ul"},
    {Metric::mac_bytes_dl, "mac_bytes_dl"},
    {Metric::mac_bytes_ul, "mac_bytes_ul"},
    {Metric::mac_bsr, "mac_bsr"},
    {Metric::mac_phr_db, "mac_phr_db"},
    {Metric::mac_harq_retx, "mac_harq_retx"},
    {Metric::rlc_tx_bytes, "rlc_tx_bytes"},
    {Metric::rlc_rx_bytes, "rlc_rx_bytes"},
    {Metric::rlc_buffer_bytes, "rlc_buffer_bytes"},
    {Metric::rlc_buffer_pkts, "rlc_buffer_pkts"},
    {Metric::rlc_sojourn_avg_ms, "rlc_sojourn_avg_ms"},
    {Metric::rlc_sojourn_max_ms, "rlc_sojourn_max_ms"},
    {Metric::rlc_retx_pdus, "rlc_retx_pdus"},
    {Metric::rlc_dropped_sdus, "rlc_dropped_sdus"},
    {Metric::pdcp_tx_sdu_bytes, "pdcp_tx_sdu_bytes"},
    {Metric::pdcp_rx_sdu_bytes, "pdcp_rx_sdu_bytes"},
    {Metric::pdcp_tx_pdus, "pdcp_tx_pdus"},
    {Metric::pdcp_rx_pdus, "pdcp_rx_pdus"},
    {Metric::pdcp_discarded_sdus, "pdcp_discarded_sdus"},
    {Metric::ov_ingest_shed, "ov_ingest_shed"},
    {Metric::ov_agent_shed, "ov_agent_shed"},
    {Metric::ov_flood_quarantines, "ov_flood_quarantines"},
};

Nanos bucket_start(Nanos t, Nanos width) noexcept {
  Nanos q = t / width;
  if (t % width != 0 && t < 0) q--;
  return q * width;
}

/// Exact nearest-rank quantile over the (sorted) raw values of a window.
double exact_quantile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  auto idx = static_cast<std::size_t>(
      q * static_cast<double>(sorted.size() - 1));
  if (idx >= sorted.size()) idx = sorted.size() - 1;
  return sorted[idx];
}

void append_f64(std::string& out, double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out += buf;
}

void append_i64(std::string& out, long long v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%lld", v);
  out += buf;
}

void append_u64(std::string& out, unsigned long long v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%llu", v);
  out += buf;
}

}  // namespace

const char* metric_name(Metric m) noexcept {
  for (const auto& e : kMetricNames)
    if (e.metric == m) return e.name;
  return "unknown";
}

Result<Metric> metric_from_name(std::string_view name) {
  for (const auto& e : kMetricNames)
    if (name == e.name) return e.metric;
  return Errc::not_found;
}

TelemetryStore::TelemetryStore(StoreConfig cfg) : cfg_(cfg) {
  per_series_cost_ = cfg_.layout.bytes_per_series() + kSeriesOverhead;
}

bool TelemetryStore::evict_one() {
  if (series_.empty()) return false;
  auto victim = series_.begin();
  for (auto it = series_.begin(); it != series_.end(); ++it)
    if (it->second.last_write_seq < victim->second.last_write_seq) victim = it;
  series_.erase(victim);
  evictions_++;
  return true;
}

// Allocation lives here, not in record(): a series is created once per key
// (then evicted at most once per budget breach), while record() runs per
// sample — keeping the two in separate functions lets the hotpath-alloc
// pass verify the per-sample path allocation-free instead of carrying
// baseline debt for the first-contact case.
// @coldpath first contact per series key, not per sample
TelemetryStore::Entry* TelemetryStore::ensure_entry(const SeriesKey& key) {
  while (sizeof(*this) + (series_.size() + 1) * per_series_cost_ >
         cfg_.memory_budget) {
    if (!cfg_.evict_on_budget || !evict_one()) {
      dropped_++;
      return nullptr;
    }
  }
  return &series_.emplace(key, Entry(cfg_.layout)).first->second;
}

// @hotpath one call per ingested sample
Status TelemetryStore::record(const SeriesKey& key, Nanos t, double v) {
  FLEXRIC_ASSERT_AFFINITY(affinity_);
  auto it = series_.find(key);
  Entry* e = it != series_.end() ? &it->second : ensure_entry(key);
  if (e == nullptr) return Errc::capacity;
  e->series.push(t, v);
  e->last_write_seq = ++write_seq_;
  total_samples_++;
  return Status::ok();
}

const TimeSeries* TelemetryStore::find(const SeriesKey& key) const {
  auto it = series_.find(key);
  return it == series_.end() ? nullptr : &it->second.series;
}

Result<std::vector<RawSample>> TelemetryStore::raw_range(const SeriesKey& key,
                                                         Nanos t0,
                                                         Nanos t1) const {
  FLEXRIC_ASSERT_AFFINITY(affinity_);
  const TimeSeries* s = find(key);
  if (s == nullptr) return Errc::not_found;
  return s->raw_range(t0, t1);
}

Result<std::vector<RawSample>> TelemetryStore::latest(const SeriesKey& key,
                                                      std::size_t n) const {
  FLEXRIC_ASSERT_AFFINITY(affinity_);
  const TimeSeries* s = find(key);
  if (s == nullptr) return Errc::not_found;
  return s->latest(n);
}

Result<std::vector<Rollup>> TelemetryStore::rollups(const SeriesKey& key,
                                                    int tier, Nanos t0,
                                                    Nanos t1) const {
  FLEXRIC_ASSERT_AFFINITY(affinity_);
  const TimeSeries* s = find(key);
  if (s == nullptr) return Errc::not_found;
  if (tier != 1 && tier != 2) return Errc::unsupported;
  return s->rollup_range(tier, t0, t1);
}

Result<WindowAggregate> TelemetryStore::window_aggregate(
    const SeriesKey& key, Nanos t0, Nanos t1, QuerySource source) const {
  FLEXRIC_ASSERT_AFFINITY(affinity_);
  const TimeSeries* s = find(key);
  if (s == nullptr) return Errc::not_found;

  QuerySource pick = source;
  if (pick == QuerySource::automatic) {
    // Finest resolution that still reaches back to the window start; when
    // even tier2 does not reach that far, use the coarsest data we have.
    bool raw_covers = s->raw_count() > 0 && s->oldest_raw_t() <= t0;
    bool t1_covers = s->rollup_count(1) > 0 && s->oldest_rollup_t(1) <= t0;
    if (raw_covers)
      pick = QuerySource::raw;
    else if (t1_covers)
      pick = QuerySource::tier1;
    else if (s->rollup_count(2) > 0)
      pick = QuerySource::tier2;
    else if (s->rollup_count(1) > 0)
      pick = QuerySource::tier1;
    else
      pick = QuerySource::raw;
  }

  WindowAggregate agg;
  agg.source = pick;
  agg.t0 = t0;
  agg.t1 = t1;

  if (pick == QuerySource::raw) {
    std::vector<RawSample> samples = s->raw_range(t0, t1);
    if (samples.empty()) return agg;
    std::vector<double> values;
    values.reserve(samples.size());
    agg.min = samples.front().v;
    agg.max = samples.front().v;
    for (const RawSample& r : samples) {
      agg.count++;
      agg.sum += r.v;
      if (r.v < agg.min) agg.min = r.v;
      if (r.v > agg.max) agg.max = r.v;
      values.push_back(r.v);
    }
    std::sort(values.begin(), values.end());
    agg.mean = agg.sum / static_cast<double>(agg.count);
    agg.p50 = exact_quantile(values, 0.50);
    agg.p95 = exact_quantile(values, 0.95);
    agg.p99 = exact_quantile(values, 0.99);
    return agg;
  }

  int tier = pick == QuerySource::tier1 ? 1 : 2;
  Nanos width =
      tier == 1 ? s->layout().tier1_width : s->layout().tier2_width;
  // Include the bucket that straddles t0: its start may be before t0.
  std::vector<Rollup> buckets =
      s->rollup_range(tier, bucket_start(t0, width), t1);
  Rollup merged;
  for (const Rollup& b : buckets) merged.merge(b);
  if (merged.count == 0) return agg;
  agg.count = merged.count;
  agg.sum = merged.sum;
  agg.min = merged.min;
  agg.max = merged.max;
  agg.mean = merged.mean();
  agg.p50 = merged.sketch.quantile(0.50);
  agg.p95 = merged.sketch.quantile(0.95);
  agg.p99 = merged.sketch.quantile(0.99);
  return agg;
}

std::vector<SeriesInfo> TelemetryStore::list_series() const {
  std::vector<SeriesInfo> out;
  out.reserve(series_.size());
  for (const auto& [key, entry] : series_) {
    SeriesInfo info;
    info.key = key;
    info.total_samples = entry.series.total_samples();
    info.raw_count = entry.series.raw_count();
    info.tier1_count = entry.series.rollup_count(1);
    info.tier2_count = entry.series.rollup_count(2);
    info.oldest_raw_t = entry.series.oldest_raw_t();
    info.last_t = entry.series.last_t();
    out.push_back(info);
  }
  return out;
}

std::string TelemetryStore::dump_json(std::size_t max_raw_per_series) const {
  std::string out;
  out.reserve(256 + series_.size() * (128 + max_raw_per_series * 32));
  out += "{\"budget_bytes\":";
  append_u64(out, memory_budget());
  out += ",\"memory_bytes\":";
  append_u64(out, memory_bytes());
  out += ",\"num_series\":";
  append_u64(out, num_series());
  out += ",\"total_samples\":";
  append_u64(out, total_samples_);
  out += ",\"evictions\":";
  append_u64(out, evictions_);
  out += ",\"dropped_samples\":";
  append_u64(out, dropped_);
  out += ",\"series\":[";
  bool first = true;
  for (const auto& [key, entry] : series_) {
    if (!first) out += ',';
    first = false;
    out += "{\"agent\":";
    append_u64(out, key.agent);
    out += ",\"rnti\":";
    append_u64(out, entity_rnti(key.entity));
    out += ",\"drb\":";
    append_u64(out, entity_drb(key.entity));
    out += ",\"metric\":\"";
    out += metric_name(key.metric);
    out += "\",\"total_samples\":";
    append_u64(out, entry.series.total_samples());
    out += ",\"tier1_rollups\":";
    append_u64(out, entry.series.rollup_count(1));
    out += ",\"tier2_rollups\":";
    append_u64(out, entry.series.rollup_count(2));
    out += ",\"last_t\":";
    append_i64(out, entry.series.last_t());
    out += ",\"raw\":[";
    std::vector<RawSample> tail = entry.series.latest(max_raw_per_series);
    for (std::size_t i = 0; i < tail.size(); ++i) {
      if (i != 0) out += ',';
      out += '[';
      append_i64(out, tail[i].t);
      out += ',';
      append_f64(out, tail[i].v);
      out += ']';
    }
    out += "]}";
  }
  out += "]}";
  return out;
}

}  // namespace flexric::telemetry
