#include "telemetry/series.hpp"

namespace flexric::telemetry {

namespace {

/// Floor division for bucket alignment (timestamps may legally be 0).
Nanos bucket_start(Nanos t, Nanos width) noexcept {
  Nanos q = t / width;
  if (t % width != 0 && t < 0) q--;
  return q * width;
}

}  // namespace

std::size_t SeriesLayout::bytes_per_series() const noexcept {
  return sizeof(TimeSeries) + raw_capacity * sizeof(RawSample) +
         (tier1_capacity + tier2_capacity) * sizeof(Rollup);
}

TimeSeries::TimeSeries(const SeriesLayout& layout) : layout_(layout) {
  raw_.resize(layout_.raw_capacity);
  tier1_.slots.resize(layout_.tier1_capacity);
  tier2_.slots.resize(layout_.tier2_capacity);
}

void TimeSeries::RollupRing::push(const Rollup& r) {
  if (slots.empty()) return;
  if (size < slots.size()) {
    slots[(head + size) % slots.size()] = r;
    size++;
  } else {
    slots[head] = r;
    head = (head + 1) % slots.size();
  }
}

void TimeSeries::push(Nanos t, double v) {
  if (!raw_.empty()) {
    if (raw_size_ < raw_.size()) {
      raw_[(raw_head_ + raw_size_) % raw_.size()] = {t, v};
      raw_size_++;
    } else {
      raw_[raw_head_] = {t, v};
      raw_head_ = (raw_head_ + 1) % raw_.size();
    }
  }
  total_samples_++;
  last_t_ = t;

  Nanos b1 = bucket_start(t, layout_.tier1_width);
  if (open1_active_ && b1 > open1_.t_start) close_tier1();
  if (!open1_active_) {
    open1_ = Rollup{};
    open1_.t_start = b1;
    open1_active_ = true;
  }
  open1_.add(v);
}

void TimeSeries::close_tier1() {
  tier1_.push(open1_);
  Nanos b2 = bucket_start(open1_.t_start, layout_.tier2_width);
  if (open2_active_ && b2 > open2_.t_start) close_tier2();
  if (!open2_active_) {
    open2_ = Rollup{};
    open2_.t_start = b2;
    open2_active_ = true;
  }
  // Keep the tier2 bucket's aligned start: merge only folds in the stats.
  Nanos keep = open2_.t_start;
  open2_.merge(open1_);
  open2_.t_start = keep;
  open1_active_ = false;
}

void TimeSeries::close_tier2() {
  tier2_.push(open2_);
  open2_active_ = false;
}

Nanos TimeSeries::oldest_raw_t() const noexcept {
  if (raw_size_ == 0) return 0;
  return raw_[raw_head_].t;
}

std::vector<RawSample> TimeSeries::raw_range(Nanos t0, Nanos t1) const {
  std::vector<RawSample> out;
  for (std::size_t i = 0; i < raw_size_; ++i) {
    const RawSample& s = raw_[(raw_head_ + i) % raw_.size()];
    if (s.t >= t0 && s.t < t1) out.push_back(s);
  }
  return out;
}

std::vector<RawSample> TimeSeries::latest(std::size_t n) const {
  std::size_t take = n < raw_size_ ? n : raw_size_;
  std::vector<RawSample> out;
  out.reserve(take);
  for (std::size_t i = raw_size_ - take; i < raw_size_; ++i)
    out.push_back(raw_[(raw_head_ + i) % raw_.size()]);
  return out;
}

std::vector<Rollup> TimeSeries::rollup_range(int tier, Nanos t0,
                                             Nanos t1) const {
  std::vector<Rollup> out;
  const RollupRing& ring = tier == 1 ? tier1_ : tier2_;
  for (std::size_t i = 0; i < ring.size; ++i) {
    const Rollup& r = ring.slots[(ring.head + i) % ring.slots.size()];
    if (r.t_start >= t0 && r.t_start < t1) out.push_back(r);
  }
  const Rollup& open = tier == 1 ? open1_ : open2_;
  bool open_active = tier == 1 ? open1_active_ : open2_active_;
  if (open_active && open.t_start >= t0 && open.t_start < t1)
    out.push_back(open);
  return out;
}

std::size_t TimeSeries::rollup_count(int tier) const noexcept {
  return tier == 1 ? tier1_.size : tier2_.size;
}

Nanos TimeSeries::oldest_rollup_t(int tier) const noexcept {
  const RollupRing& ring = tier == 1 ? tier1_ : tier2_;
  if (ring.size == 0) {
    const Rollup& open = tier == 1 ? open1_ : open2_;
    bool open_active = tier == 1 ? open1_active_ : open2_active_;
    return open_active ? open.t_start : 0;
  }
  return ring.slots[ring.head].t_start;
}

}  // namespace flexric::telemetry
