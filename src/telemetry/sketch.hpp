// Fixed-size quantile sketch for KPI rollups.
//
// Every downsampled rollup (see series.hpp) carries one of these so windowed
// queries can answer "p95 sojourn over the last 10 s" long after the raw
// samples were overwritten. The design constraints are bounded memory
// (rollup rings hold thousands of sketches) and lossless *mergeability*
// (tier cascading merges sketches; a merge must not add error), which rules
// out reservoir sampling. We use a log-bucketed histogram, the scheme behind
// HdrHistogram/DDSketch: deterministic, mergeable by bucket-count addition,
// and with a documented worst-case relative error.
//
// Bucket layout: values are non-negative KPIs. Each power-of-two octave
// [2^e, 2^(e+1)) is split into kSub linear sub-buckets; a quantile query
// reports the midpoint of the selected bucket, so the relative error is at
// most 1/(2*kSub) = kRelativeError. One underflow bucket collects
// v < kMinValue (reported as 0 — absolute error ≤ kMinValue) and one
// overflow bucket collects v ≥ kMaxValue (reported as kMaxValue, clamped).
// Counts saturate at 65535 per bucket; a rollup covers at most a few
// thousand 1 ms samples, far below saturation.
#pragma once

#include <array>
#include <cstdint>

namespace flexric::telemetry {

class QuantileSketch {
 public:
  static constexpr int kSub = 4;       ///< sub-buckets per octave
  static constexpr int kMinExp = -8;   ///< lowest octave: [2^-8, 2^-7)
  static constexpr int kMaxExp = 55;   ///< highest octave: [2^55, 2^56)
  static constexpr double kMinValue = 1.0 / 256.0;           // 2^kMinExp
  static constexpr double kMaxValue = 72057594037927936.0;   // 2^(kMaxExp+1)
  /// Worst-case relative error of quantile() for values inside
  /// [kMinValue, kMaxValue): half a sub-bucket width.
  static constexpr double kRelativeError = 1.0 / (2.0 * kSub);
  static constexpr std::size_t kBuckets =
      2 + static_cast<std::size_t>(kMaxExp - kMinExp + 1) * kSub;

  void record(double v) noexcept { bump(bucket_of(v), 1); }
  /// Bucket-wise merge (saturating); merging adds no quantile error.
  void merge(const QuantileSketch& o) noexcept {
    for (std::size_t i = 0; i < kBuckets; ++i) bump(i, o.counts_[i]);
  }
  [[nodiscard]] std::uint64_t count() const noexcept { return total_; }
  /// q in [0,1], nearest-rank over buckets; midpoint of the selected
  /// bucket. Returns 0 when empty. NaN q is treated as 0.
  [[nodiscard]] double quantile(double q) const noexcept;
  void clear() noexcept {
    counts_.fill(0);
    total_ = 0;
  }

  /// Value -> bucket index (exposed for tests).
  static std::size_t bucket_of(double v) noexcept;
  /// Bucket index -> representative (midpoint) value.
  static double bucket_value(std::size_t idx) noexcept;

 private:
  void bump(std::size_t idx, std::uint32_t by) noexcept {
    std::uint32_t c = counts_[idx];
    counts_[idx] = static_cast<std::uint16_t>(
        c + by > 0xFFFF ? 0xFFFF : c + by);
    total_ += by;
  }
  std::array<std::uint16_t, kBuckets> counts_{};
  std::uint64_t total_ = 0;  ///< true count, unaffected by saturation
};

}  // namespace flexric::telemetry
