// Relaying controller: re-exposes connected E2 nodes' RAN functions at a
// northbound E2 interface by reusing the agent library (paper §3: "it is
// even possible to recursively expose an agent interface at the northbound
// by reusing the agent library").
//
// Besides emulating the O-RAN RIC's two hops (Fig. 9a), the relay realizes
// the topology abstraction of Fig. 14b: each *RAN entity* of the southbound
// RAN DB gets one northbound virtual node — a disaggregated CU + DU pair is
// exposed as a single monolithic base station whose function set is the
// union of both agents', and "more complicated deployments ... might be
// exposed as multiple base stations".
#pragma once

#include <map>
#include <memory>

#include "agent/agent.hpp"
#include "server/server.hpp"

namespace flexric::ctrl {

class RelayController {
 public:
  struct Config {
    WireFormat e2ap_format = WireFormat::flat;
    /// Node identity fallback; per-entity northbound nodes use the entity's
    /// own (plmn, nb_id) with a monolithic node type.
    e2ap::GlobalNodeId node_id;
  };

  RelayController(Reactor& reactor, Config cfg);

  /// South-bound server: the real agents connect here.
  server::E2Server& southbound() noexcept { return *server_; }
  Status listen(std::uint16_t port) { return server_->listen(port); }

  /// Connect the northbound virtual node of the first mirrored RAN entity
  /// to an upper controller. Requires at least one southbound agent.
  Result<agent::ControllerId> connect_northbound(
      std::shared_ptr<MsgTransport> transport);
  /// Connect the virtual node of a specific RAN entity (Fig. 14b: one
  /// northbound base station per southbound entity).
  Result<agent::ControllerId> connect_northbound_entity(
      std::uint32_t plmn, std::uint32_t nb_id,
      std::shared_ptr<MsgTransport> transport);

  [[nodiscard]] bool southbound_ready() const noexcept {
    return !entities_.empty();
  }
  /// Number of northbound virtual nodes (= mirrored RAN entities).
  [[nodiscard]] std::size_t num_entities() const noexcept {
    return entities_.size();
  }

 private:
  class MirrorIApp;
  class RelayFunction;

  struct Entity {
    std::unique_ptr<agent::E2Agent> north_agent;
  };

  static std::uint64_t key(std::uint32_t plmn, std::uint32_t nb_id) {
    return (static_cast<std::uint64_t>(plmn) << 32) | nb_id;
  }
  Entity& entity_for(const e2ap::GlobalNodeId& node);

  Reactor& reactor_;
  Config cfg_;
  std::unique_ptr<server::E2Server> server_;
  std::shared_ptr<MirrorIApp> mirror_;
  std::map<std::uint64_t, Entity> entities_;  // insertion keyed by (plmn,nb)
};

}  // namespace flexric::ctrl
