// RAT-unaware slicing controller specialization (paper §6.1.2, Table 4).
//
// Components, as in the paper:
//   * internal DB for RAN stats (cf. FlexRAN RIB)       — latest SC status
//   * SC SM manager iApp (REST command relay)            — this class
//   * Comm. IF: REST (GET/POST)                          — mount_rest()
//   * xApp: command line curl                            — HttpClient/tests
//
// The iApp discovers UEs through RRC notifications (selected PLMN /
// S-NSSAI), exposes the slice configuration northbound, and relays commands
// as SC SM controls. The xApp is oblivious of the RAT: the same JSON works
// against the 4G and 5G simulator cells (Fig. 13 runs 5G/NR, Fig. 15 the
// same controller over 4G/LTE).
#pragma once

#include <map>

#include "ctrl/json.hpp"
#include "ctrl/rest.hpp"
#include "e2sm/rrc_sm.hpp"
#include "e2sm/slice_sm.hpp"
#include "server/server.hpp"

namespace flexric::ctrl {

class SlicingIApp final : public server::IApp {
 public:
  struct Config {
    WireFormat sm_format = WireFormat::flat;
    std::uint32_t status_period_ms = 100;  ///< SC status report period
  };

  explicit SlicingIApp(Config cfg) : cfg_(cfg) {}
  [[nodiscard]] const char* name() const override { return "slicing"; }

  void on_agent_connected(const server::AgentInfo& info) override;
  void on_agent_disconnected(server::AgentId id) override;

  // -- programmatic API (what the REST routes call) --
  /// Send an SC SM control; on_done runs with the decoded outcome.
  Status configure(server::AgentId agent, const e2sm::slice::CtrlMsg& msg,
                   std::function<void(const e2sm::slice::CtrlOutcome&)>
                       on_done = nullptr);
  /// First agent offering the SC SM (single-cell experiments).
  [[nodiscard]] std::optional<server::AgentId> first_agent() const;

  /// Latest slice status per agent (from the periodic SC subscription).
  [[nodiscard]] const std::map<server::AgentId, e2sm::slice::IndicationMsg>&
  status() const noexcept {
    return status_;
  }
  /// UE discovery: rnti -> (plmn, s_nssai) learned via RRC events.
  struct UeInfo {
    std::uint32_t plmn = 0;
    std::uint32_t s_nssai = 0;
  };
  [[nodiscard]] const std::map<std::uint16_t, UeInfo>& ues() const noexcept {
    return ues_;
  }
  using UeEventHandler =
      std::function<void(const e2sm::rrc::IndicationMsg&, server::AgentId)>;
  void set_on_ue_event(UeEventHandler h) { on_ue_event_ = std::move(h); }

  /// Mount the REST northbound:
  ///   GET  /ran            RAN composition + slice status
  ///   POST /slice          {"agent":1,"algo":"nvs","slices":[...]}
  ///   POST /slice/assoc    {"agent":1,"assoc":[{"rnti":1,"slice":2}]}
  void mount_rest(HttpServer& http);

  /// JSON <-> SC SM translation (public: reused by tests and the virt demo).
  static Result<e2sm::slice::CtrlMsg> ctrl_from_json(const Json& j);
  static Json status_to_json(const e2sm::slice::IndicationMsg& msg);

 private:
  void subscribe_status(server::AgentId agent);
  void subscribe_rrc(server::AgentId agent);

  Config cfg_;
  std::map<server::AgentId, e2sm::slice::IndicationMsg> status_;
  std::map<std::uint16_t, UeInfo> ues_;
  std::vector<server::AgentId> slice_agents_;
  UeEventHandler on_ue_event_;
};

}  // namespace flexric::ctrl
