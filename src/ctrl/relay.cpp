#include "ctrl/relay.hpp"

#include "common/log.hpp"

namespace flexric::ctrl {

// A RAN function at a northbound virtual node that mirrors one function of
// one southbound agent: subscriptions and controls are forwarded down, and
// indications come back up with the northbound request id restored.
class RelayController::RelayFunction final : public agent::RanFunction {
 public:
  RelayFunction(RelayController& relay, server::AgentId south_agent,
                e2ap::RanFunctionItem descriptor)
      : relay_(relay), south_agent_(south_agent),
        desc_(std::move(descriptor)) {}

  [[nodiscard]] const e2ap::RanFunctionItem& descriptor() const override {
    return desc_;
  }

  Result<agent::SubscriptionOutcome> on_subscription(
      const e2ap::SubscriptionRequest& req,
      agent::ControllerId origin) override {
    server::SubCallbacks cbs;
    e2ap::RicRequestId north_req = req.request;
    std::uint16_t fn_id = desc_.id;
    cbs.on_indication = [this, origin, north_req,
                         fn_id](const e2ap::Indication& ind) {
      e2ap::Indication up = ind;
      up.request = north_req;  // restore the upper controller's request id
      up.ran_function_id = fn_id;
      if (services_ != nullptr) (void)services_->send_indication(origin, up);
    };
    auto handle = relay_.server_->subscribe(
        south_agent_, desc_.id, req.event_trigger, req.actions,
        std::move(cbs));
    if (!handle) return handle.error();
    south_subs_[{origin, req.request}] = *handle;
    // Optimistic admission: the southbound outcome arrives asynchronously;
    // a rejected action would surface as missing indications.
    agent::SubscriptionOutcome outcome;
    for (const auto& a : req.actions) outcome.admitted.push_back(a.id);
    return outcome;
  }

  Status on_subscription_delete(const e2ap::SubscriptionDeleteRequest& req,
                                agent::ControllerId origin) override {
    auto it = south_subs_.find({origin, req.request});
    if (it == south_subs_.end())
      return {Errc::not_found, "unknown subscription"};
    (void)relay_.server_->unsubscribe(it->second);
    south_subs_.erase(it);
    return Status::ok();
  }

  Result<Buffer> on_control(const e2ap::ControlRequest& req,
                            agent::ControllerId) override {
    Status st = relay_.server_->send_control(
        south_agent_, desc_.id, req.header, req.message, {},
        /*ack_requested=*/false);
    if (!st.is_ok()) return Error{st.code(), st.error().message};
    return Buffer{};  // forwarded; outcome is asynchronous
  }

  void on_controller_detached(agent::ControllerId origin) override {
    for (auto it = south_subs_.begin(); it != south_subs_.end();) {
      if (it->first.first == origin) {
        (void)relay_.server_->unsubscribe(it->second);
        it = south_subs_.erase(it);
      } else {
        ++it;
      }
    }
  }

 private:
  RelayController& relay_;
  server::AgentId south_agent_;
  e2ap::RanFunctionItem desc_;
  std::map<std::pair<agent::ControllerId, e2ap::RicRequestId>,
           server::SubHandle>
      south_subs_;
};

// Watches southbound connections and mirrors their RAN functions onto the
// owning entity's northbound virtual node. CU and DU of one base station
// land on the SAME node (Fig. 14b: disaggregation abstracted away).
class RelayController::MirrorIApp final : public server::IApp {
 public:
  explicit MirrorIApp(RelayController& relay) : relay_(relay) {}
  [[nodiscard]] const char* name() const override { return "relay-mirror"; }

  void on_agent_connected(const server::AgentInfo& info) override {
    Entity& entity = relay_.entity_for(info.node);
    for (const auto& f : info.functions) {
      auto fn = std::make_shared<RelayFunction>(relay_, info.id, f);
      Status st = entity.north_agent->register_function(fn);
      if (!st.is_ok())
        LOG_WARN("relay", "mirroring fn %u of agent %u failed: %s", f.id,
                 info.id, st.to_string().c_str());
    }
  }

 private:
  RelayController& relay_;
};

RelayController::RelayController(Reactor& reactor, Config cfg)
    : reactor_(reactor), cfg_(cfg) {
  server_ = std::make_unique<server::E2Server>(
      reactor_, server::E2Server::Config{77, cfg_.e2ap_format, {}});
  mirror_ = std::make_shared<MirrorIApp>(*this);
  server_->add_iapp(mirror_);
}

RelayController::Entity& RelayController::entity_for(
    const e2ap::GlobalNodeId& node) {
  auto it = entities_.find(key(node.plmn, node.nb_id));
  if (it != entities_.end()) return it->second;
  // New northbound virtual node: the entity's identity, presented as a
  // monolithic base station regardless of the southbound disaggregation.
  agent::E2Agent::Config acfg;
  acfg.node_id.plmn = node.plmn;
  acfg.node_id.nb_id = node.nb_id;
  acfg.node_id.type = node.type == e2ap::NodeType::gnb ||
                              node.type == e2ap::NodeType::cu ||
                              node.type == e2ap::NodeType::du
                          ? e2ap::NodeType::gnb
                          : e2ap::NodeType::enb;
  acfg.e2ap_format = cfg_.e2ap_format;
  Entity entity;
  entity.north_agent = std::make_unique<agent::E2Agent>(reactor_, acfg);
  return entities_.emplace(key(node.plmn, node.nb_id), std::move(entity))
      .first->second;
}

Result<agent::ControllerId> RelayController::connect_northbound(
    std::shared_ptr<MsgTransport> transport) {
  if (entities_.empty())
    return Error{Errc::rejected, "no southbound agent mirrored yet"};
  return entities_.begin()->second.north_agent->add_controller(
      std::move(transport));
}

Result<agent::ControllerId> RelayController::connect_northbound_entity(
    std::uint32_t plmn, std::uint32_t nb_id,
    std::shared_ptr<MsgTransport> transport) {
  auto it = entities_.find(key(plmn, nb_id));
  if (it == entities_.end())
    return Error{Errc::not_found, "no such mirrored entity"};
  return it->second.north_agent->add_controller(std::move(transport));
}

}  // namespace flexric::ctrl
