#include "ctrl/monitor.hpp"

#include "e2sm/common.hpp"

namespace flexric::ctrl {

void MonitorIApp::on_agent_connected(const server::AgentInfo& info) {
  db_[info.id];  // create entry
  for (const auto& f : info.functions) {
    bool want = (cfg_.want_mac && f.id == e2sm::mac::Sm::kId) ||
                (cfg_.want_rlc && f.id == e2sm::rlc::Sm::kId) ||
                (cfg_.want_pdcp && f.id == e2sm::pdcp::Sm::kId);
    if (want) subscribe_stats(info.id, f.id);
  }
}

void MonitorIApp::on_agent_disconnected(server::AgentId id) {
  if (!cfg_.retain_on_disconnect) db_.erase(id);
}

void MonitorIApp::on_agent_quarantined(server::AgentId) {
  // The server still holds the agent's state: keep ours too. Either
  // on_agent_reconnected or on_agent_disconnected resolves it.
  quarantines_++;
}

void MonitorIApp::on_agent_reconnected(const server::AgentInfo& info) {
  // The server replayed our subscriptions under their original handles, so
  // the indication callbacks keep firing into the same AgentDb — do NOT
  // resubscribe here or every reconnect would double the stats streams.
  reconnects_++;
  db_[info.id];  // re-create if a disconnect pruned it in between
}

void MonitorIApp::subscribe_stats(server::AgentId agent, std::uint16_t fn_id) {
  e2sm::EventTrigger trigger;
  trigger.kind = e2sm::TriggerKind::periodic;
  trigger.period_ms = cfg_.period_ms;
  e2ap::Action action;
  action.id = 1;
  action.type = e2ap::ActionType::report;

  server::SubCallbacks cbs;
  cbs.on_indication = [this, agent, fn_id](const e2ap::Indication& ind) {
    AgentDb& db = db_[agent];
    db.indications++;
    total_indications_++;
    if (!cfg_.decode_payloads) {
      // FlatBuffers mode: saving the raw message IS the in-memory data
      // structure; fields are read in place when queried.
      db.raw[fn_id].assign(ind.message.begin(), ind.message.end());
      if (cfg_.telemetry != nullptr)
        static_cast<void>(cfg_.telemetry->wire(agent, fn_id, ind.header,
                                               ind.message, cfg_.sm_format));
      return;
    }
    // Agent-side collection timestamp for the telemetry store; decoded once
    // per indication, only when a store is attached.
    Nanos tstamp = 0;
    if (cfg_.telemetry != nullptr) {
      auto t = telemetry::Ingest::header_tstamp(ind.header, cfg_.sm_format);
      if (t.is_ok()) tstamp = *t;
    }
    if (fn_id == e2sm::mac::Sm::kId) {
      auto msg = e2sm::sm_decode<e2sm::mac::IndicationMsg>(ind.message,
                                                           cfg_.sm_format);
      if (msg) {
        for (const auto& ue : msg->ues) db.mac[ue.rnti] = ue;
        if (cfg_.telemetry != nullptr)
          cfg_.telemetry->mac(agent, tstamp, *msg);
      }
      if (cfg_.broker != nullptr)
        cfg_.broker->publish("stats/mac", ind.message);
    } else if (fn_id == e2sm::rlc::Sm::kId) {
      auto msg = e2sm::sm_decode<e2sm::rlc::IndicationMsg>(ind.message,
                                                           cfg_.sm_format);
      if (msg) {
        for (const auto& b : msg->bearers) db.rlc[{b.rnti, b.drb_id}] = b;
        if (cfg_.telemetry != nullptr)
          cfg_.telemetry->rlc(agent, tstamp, *msg);
      }
      if (cfg_.broker != nullptr)
        cfg_.broker->publish("stats/rlc", ind.message);
    } else if (fn_id == e2sm::pdcp::Sm::kId) {
      auto msg = e2sm::sm_decode<e2sm::pdcp::IndicationMsg>(ind.message,
                                                            cfg_.sm_format);
      if (msg) {
        for (const auto& b : msg->bearers) db.pdcp[{b.rnti, b.drb_id}] = b;
        if (cfg_.telemetry != nullptr)
          cfg_.telemetry->pdcp(agent, tstamp, *msg);
      }
      if (cfg_.broker != nullptr)
        cfg_.broker->publish("stats/pdcp", ind.message);
    }
  };
  (void)server_->subscribe(agent, fn_id, e2sm::sm_encode(trigger, cfg_.sm_format),
                     {action}, std::move(cbs));
}

}  // namespace flexric::ctrl
