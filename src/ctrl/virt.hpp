// SD-RAN virtualization controller (paper §6.2, Fig. 14, Appendix B).
//
// Multiplexes virtual RANs of multiple tenants (operators) onto one shared
// infrastructure. Southbound it is a FlexRIC controller towards the shared
// base station's agent; northbound it reuses the agent library, exposing one
// virtual E2 node per tenant to that tenant's own (unmodified) slicing
// controller.
//
// The virtualization layer is SM-specific:
//  * SC SM — NVS parameter rescaling (Appendix B): a tenant with SLA share
//    q configures virtual capacity shares c_virt that map to physical
//    c_phys = c_virt * q; rate slices keep their reserved rate and scale
//    the reference rate r_ref_phys = r_ref_virt / q. Virtual slice ids 0-9
//    map into disjoint physical ranges per tenant, avoiding id conflicts.
//    Admission control Σ(virtual load) ≤ 1 guarantees no tenant can exceed
//    its SLA — conflict-freedom by construction.
//  * MAC stats SM — partitioned: a tenant only sees UEs whose selected
//    PLMN matches its own; physical slice ids are mapped back to virtual.
//  * RRC SM — UE events filtered by tenant PLMN (UE-to-tenant discovery).
#pragma once

#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "agent/agent.hpp"
#include "e2sm/mac_sm.hpp"
#include "e2sm/rrc_sm.hpp"
#include "e2sm/slice_sm.hpp"
#include "server/server.hpp"

namespace flexric::ctrl {

struct TenantConfig {
  std::string name;
  std::uint32_t plmn = 0;        ///< subscribers are identified by PLMN
  double sla_share = 0.5;        ///< q: fraction of physical resources
  std::uint32_t phys_slice_base = 10;  ///< virtual ids 0-9 map to base+id
};

class VirtController {
 public:
  struct Config {
    WireFormat e2ap_format = WireFormat::flat;
    WireFormat sm_format = WireFormat::flat;
    std::uint32_t virt_nb_id_base = 1000;  ///< virtual node ids northbound
  };

  VirtController(Reactor& reactor, Config cfg,
                 std::vector<TenantConfig> tenants);

  /// South-bound server (the shared BS agent connects here).
  server::E2Server& southbound() noexcept { return *server_; }
  Status listen(std::uint16_t port) { return server_->listen(port); }

  /// Connect tenant `idx`'s virtual E2 node to the tenant's controller.
  /// Requires the southbound agent to be connected (so the virtual node can
  /// mirror its capabilities).
  Result<agent::ControllerId> connect_tenant(
      std::size_t idx, std::shared_ptr<MsgTransport> transport);

  [[nodiscard]] bool southbound_ready() const noexcept {
    return south_agent_.has_value();
  }
  /// UEs currently attributed to tenant `idx` (PLMN match via RRC events).
  [[nodiscard]] std::set<std::uint16_t> tenant_ues(std::size_t idx) const;

  /// Appendix B: map one tenant's virtual slice configuration to physical.
  static e2sm::slice::SliceConf virtualize_conf(
      const e2sm::slice::SliceConf& virt, const TenantConfig& tenant);
  /// Total virtual NVS load of a config (admission: must stay ≤ 1).
  static double virtual_load(const std::vector<e2sm::slice::SliceConf>& confs);

 private:
  class SouthIApp;
  class VirtSliceFunction;
  class VirtMacFunction;
  class VirtRrcFunction;

  struct Tenant {
    TenantConfig cfg;
    std::unique_ptr<agent::E2Agent> north_agent;
    std::shared_ptr<VirtSliceFunction> slice_fn;
    std::shared_ptr<VirtMacFunction> mac_fn;
    std::shared_ptr<VirtRrcFunction> rrc_fn;
    std::set<std::uint16_t> ues;
  };

  void on_south_agent(const server::AgentInfo& info);
  void on_rrc_event(const e2sm::rrc::IndicationMsg& ev);
  Tenant* tenant_of_plmn(std::uint32_t plmn);

  Reactor& reactor_;
  Config cfg_;
  std::unique_ptr<server::E2Server> server_;
  std::shared_ptr<SouthIApp> south_iapp_;
  std::vector<std::unique_ptr<Tenant>> tenants_;
  std::optional<server::AgentId> south_agent_;
};

}  // namespace flexric::ctrl
