// Minimal JSON support for the REST northbound interfaces (Table 3/4 of the
// paper use REST + curl as the xApp communication interface).
//
// Supports the JSON subset the controllers exchange: objects, arrays,
// strings (with \" \\ \n escapes), numbers, booleans, null. No comments, no
// \uXXXX escapes.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <variant>
#include <vector>

#include "common/result.hpp"

namespace flexric::ctrl {

class Json;
using JsonArray = std::vector<Json>;
using JsonObject = std::map<std::string, Json>;

class Json {
 public:
  using Value =
      std::variant<std::nullptr_t, bool, double, std::string, JsonArray,
                   JsonObject>;

  Json() : v_(nullptr) {}
  Json(std::nullptr_t) : v_(nullptr) {}
  Json(bool b) : v_(b) {}
  Json(double d) : v_(d) {}
  Json(int i) : v_(static_cast<double>(i)) {}
  Json(unsigned u) : v_(static_cast<double>(u)) {}
  Json(std::int64_t i) : v_(static_cast<double>(i)) {}
  Json(std::uint64_t u) : v_(static_cast<double>(u)) {}
  Json(const char* s) : v_(std::string(s)) {}
  Json(std::string s) : v_(std::move(s)) {}
  Json(JsonArray a) : v_(std::move(a)) {}
  Json(JsonObject o) : v_(std::move(o)) {}

  [[nodiscard]] bool is_null() const { return std::holds_alternative<std::nullptr_t>(v_); }
  [[nodiscard]] bool is_bool() const { return std::holds_alternative<bool>(v_); }
  [[nodiscard]] bool is_number() const { return std::holds_alternative<double>(v_); }
  [[nodiscard]] bool is_string() const { return std::holds_alternative<std::string>(v_); }
  [[nodiscard]] bool is_array() const { return std::holds_alternative<JsonArray>(v_); }
  [[nodiscard]] bool is_object() const { return std::holds_alternative<JsonObject>(v_); }

  [[nodiscard]] bool as_bool(bool def = false) const {
    return is_bool() ? std::get<bool>(v_) : def;
  }
  [[nodiscard]] double as_number(double def = 0.0) const {
    return is_number() ? std::get<double>(v_) : def;
  }
  [[nodiscard]] std::string as_string(const std::string& def = {}) const {
    return is_string() ? std::get<std::string>(v_) : def;
  }
  [[nodiscard]] const JsonArray& as_array() const {
    static const JsonArray empty;
    return is_array() ? std::get<JsonArray>(v_) : empty;
  }
  [[nodiscard]] const JsonObject& as_object() const {
    static const JsonObject empty;
    return is_object() ? std::get<JsonObject>(v_) : empty;
  }
  /// Object member access; null Json for missing keys.
  [[nodiscard]] const Json& operator[](const std::string& key) const;

  /// Serialize (compact).
  [[nodiscard]] std::string dump() const;
  /// Parse; reports malformed input as an error, never throws.
  static Result<Json> parse(std::string_view text);

 private:
  Value v_;
};

}  // namespace flexric::ctrl
