#include "ctrl/json.hpp"

#include <cctype>
#include <charconv>
#include <cmath>

namespace flexric::ctrl {

const Json& Json::operator[](const std::string& key) const {
  static const Json null_json;
  if (!is_object()) return null_json;
  const auto& obj = std::get<JsonObject>(v_);
  auto it = obj.find(key);
  return it == obj.end() ? null_json : it->second;
}

namespace {

void dump_string(const std::string& s, std::string& out) {
  out.push_back('"');
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default: out.push_back(c);
    }
  }
  out.push_back('"');
}

void dump_number(double d, std::string& out) {
  if (d == std::floor(d) && std::abs(d) < 1e15) {
    char buf[32];
    auto [ptr, ec] = std::to_chars(buf, buf + sizeof buf,
                                   static_cast<long long>(d));
    out.append(buf, ptr);
  } else {
    char buf[32];
    int n = std::snprintf(buf, sizeof buf, "%.10g", d);
    out.append(buf, static_cast<std::size_t>(n));
  }
}

}  // namespace

std::string Json::dump() const {
  std::string out;
  std::visit(
      [&out](const auto& v) {
        using T = std::decay_t<decltype(v)>;
        if constexpr (std::is_same_v<T, std::nullptr_t>) {
          out += "null";
        } else if constexpr (std::is_same_v<T, bool>) {
          out += v ? "true" : "false";
        } else if constexpr (std::is_same_v<T, double>) {
          dump_number(v, out);
        } else if constexpr (std::is_same_v<T, std::string>) {
          dump_string(v, out);
        } else if constexpr (std::is_same_v<T, JsonArray>) {
          out.push_back('[');
          bool first = true;
          for (const auto& e : v) {
            if (!first) out.push_back(',');
            first = false;
            out += e.dump();
          }
          out.push_back(']');
        } else if constexpr (std::is_same_v<T, JsonObject>) {
          out.push_back('{');
          bool first = true;
          for (const auto& [k, e] : v) {
            if (!first) out.push_back(',');
            first = false;
            dump_string(k, out);
            out.push_back(':');
            out += e.dump();
          }
          out.push_back('}');
        }
      },
      v_);
  return out;
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

namespace {

// @view_of(the JSON text passed to json_parse)
class Parser {
 public:
  explicit Parser(std::string_view text) : s_(text) {}

  Result<Json> parse() {
    auto v = value();
    if (!v) return v;
    skip_ws();
    if (pos_ != s_.size())
      return Error{Errc::malformed, "trailing characters after JSON value"};
    return v;
  }

 private:
  void skip_ws() {
    while (pos_ < s_.size() && std::isspace(static_cast<unsigned char>(s_[pos_])))
      ++pos_;
  }
  [[nodiscard]] bool eof() const { return pos_ >= s_.size(); }
  char peek() { return s_[pos_]; }
  bool consume(char c) {
    if (eof() || s_[pos_] != c) return false;
    ++pos_;
    return true;
  }
  bool consume_word(std::string_view w) {
    if (s_.substr(pos_, w.size()) != w) return false;
    pos_ += w.size();
    return true;
  }

  Result<Json> value() {
    skip_ws();
    if (eof()) return Error{Errc::truncated, "unexpected end of JSON"};
    char c = peek();
    if (c == '{') return object();
    if (c == '[') return array();
    if (c == '"') {
      auto s = string();
      if (!s) return s.error();
      return Json(std::move(*s));
    }
    if (consume_word("true")) return Json(true);
    if (consume_word("false")) return Json(false);
    if (consume_word("null")) return Json(nullptr);
    return number();
  }

  Result<Json> object() {
    consume('{');
    JsonObject obj;
    skip_ws();
    if (consume('}')) return Json(std::move(obj));
    while (true) {
      skip_ws();
      auto key = string();
      if (!key) return key.error();
      skip_ws();
      if (!consume(':')) return Error{Errc::malformed, "expected ':'"};
      auto v = value();
      if (!v) return v;
      obj[std::move(*key)] = std::move(*v);
      skip_ws();
      if (consume(',')) continue;
      if (consume('}')) return Json(std::move(obj));
      return Error{Errc::malformed, "expected ',' or '}'"};
    }
  }

  Result<Json> array() {
    consume('[');
    JsonArray arr;
    skip_ws();
    if (consume(']')) return Json(std::move(arr));
    while (true) {
      auto v = value();
      if (!v) return v;
      arr.push_back(std::move(*v));
      skip_ws();
      if (consume(',')) continue;
      if (consume(']')) return Json(std::move(arr));
      return Error{Errc::malformed, "expected ',' or ']'"};
    }
  }

  Result<std::string> string() {
    if (!consume('"')) return Error{Errc::malformed, "expected string"};
    std::string out;
    while (!eof()) {
      char c = s_[pos_++];
      if (c == '"') return out;
      if (c == '\\') {
        if (eof()) break;
        char esc = s_[pos_++];
        switch (esc) {
          case '"': out.push_back('"'); break;
          case '\\': out.push_back('\\'); break;
          case '/': out.push_back('/'); break;
          case 'n': out.push_back('\n'); break;
          case 'r': out.push_back('\r'); break;
          case 't': out.push_back('\t'); break;
          default: return Error{Errc::unsupported, "unsupported escape"};
        }
      } else {
        out.push_back(c);
      }
    }
    return Error{Errc::truncated, "unterminated string"};
  }

  Result<Json> number() {
    std::size_t start = pos_;
    if (!eof() && (peek() == '-' || peek() == '+')) ++pos_;
    while (!eof() && (std::isdigit(static_cast<unsigned char>(peek())) ||
                      peek() == '.' || peek() == 'e' || peek() == 'E' ||
                      peek() == '-' || peek() == '+'))
      ++pos_;
    if (pos_ == start) return Error{Errc::malformed, "invalid JSON token"};
    double d = 0.0;
    auto sub = s_.substr(start, pos_ - start);
    auto [ptr, ec] = std::from_chars(sub.data(), sub.data() + sub.size(), d);
    if (ec != std::errc() || ptr != sub.data() + sub.size())
      return Error{Errc::malformed, "invalid number"};
    return Json(d);
  }

  std::string_view s_;
  std::size_t pos_ = 0;
};

}  // namespace

Result<Json> Json::parse(std::string_view text) {
  return Parser(text).parse();
}

}  // namespace flexric::ctrl
