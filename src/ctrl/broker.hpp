// In-process publish/subscribe broker — the Redis message-broker stand-in of
// the traffic-control specialization (Table 3: "Comm. IF: Redis message
// broker"; an iApp publishes RLC/TC stats, the TC xApp subscribes).
//
// Delivery is asynchronous via the reactor task queue, preserving the
// decoupling a real broker provides, without the external dependency.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>

#include "common/affinity.hpp"
#include "common/buffer.hpp"
#include "transport/reactor.hpp"

namespace flexric::ctrl {

// @affine(reactor)
class Broker {
 public:
  using Handler = std::function<void(const std::string& topic, BytesView)>;

  explicit Broker(Reactor& reactor) : reactor_(reactor) {}
  ~Broker() { *alive_ = false; }
  Broker(const Broker&) = delete;
  Broker& operator=(const Broker&) = delete;

  /// Subscribe to an exact topic; returns a token for unsubscribe.
  std::uint64_t subscribe(const std::string& topic, Handler handler) {
    FLEXRIC_ASSERT_AFFINITY(reactor_.affinity());
    std::uint64_t id = next_id_++;
    subs_[id] = {topic, std::move(handler)};
    return id;
  }

  void unsubscribe(std::uint64_t id) {
    FLEXRIC_ASSERT_AFFINITY(reactor_.affinity());
    subs_.erase(id);
  }

  /// Publish: handlers run on the next reactor iteration (broker hop).
  /// The posted task holds a weak alive token, not the broker: destroying
  /// the Broker with publishes still in flight silently voids them instead
  /// of dereferencing a dead `this` (same pattern as TcpTransport's corked
  /// flush, transport.cpp).
  void publish(const std::string& topic, BytesView payload) {
    FLEXRIC_ASSERT_AFFINITY(reactor_.affinity());
    Buffer copy(payload.begin(), payload.end());
    published_++;
    reactor_.post([this, topic, copy = std::move(copy),
                   alive = std::weak_ptr<bool>(alive_)]() {
      auto a = alive.lock();
      if (!a || !*a) return;  // broker died while the hop was in flight
      for (auto& [id, sub] : subs_)
        if (sub.topic == topic) sub.handler(topic, copy);
    });
  }

  [[nodiscard]] std::uint64_t published() const noexcept {
    return published_;
  }
  [[nodiscard]] std::size_t num_subscribers() const noexcept {
    return subs_.size();
  }

 private:
  struct Sub {
    std::string topic;
    Handler handler;
  };
  Reactor& reactor_;
  std::map<std::uint64_t, Sub> subs_;
  std::uint64_t next_id_ = 1;
  std::uint64_t published_ = 0;
  std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);
};

}  // namespace flexric::ctrl
