// Minimal HTTP/1.1 REST server + client — the northbound communication
// interface of the slicing controller (Table 4: "Comm. IF: REST
// (GET/POST)"; the xApp side is "command line: curl").
//
// Server: runs on the controller's reactor, routes (method, path-prefix) to
// handlers, one request per connection (Connection: close semantics).
// Client: blocking one-shot request, intended for xApps running on their
// own thread/process (like curl).
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>

#include "transport/reactor.hpp"

namespace flexric::ctrl {

struct HttpRequest {
  std::string method;  // "GET", "POST", ...
  std::string path;    // "/slice"
  std::string body;
};

struct HttpResponse {
  int code = 200;
  std::string body;
  std::string content_type = "application/json";
  /// Retry-After header value in seconds; emitted when > 0. Overload
  /// responses (413/503) use it to hint a backoff to northbound clients.
  int retry_after_s = 0;
};

class HttpServer {
 public:
  using Handler = std::function<void(const HttpRequest&, HttpResponse&)>;

  explicit HttpServer(Reactor& reactor);
  ~HttpServer();

  /// Register a handler for (method, exact path or prefix ending in '/').
  void route(const std::string& method, const std::string& path,
             Handler handler);

  Status listen(std::uint16_t port);
  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }
  void close();

  /// Overload caps (DESIGN.md §11). A request whose buffered bytes (headers
  /// + body) or declared Content-Length exceed the request cap is answered
  /// with 413 + Retry-After instead of buffering on; a handler response body
  /// over the response cap is replaced by 503 + Retry-After rather than
  /// shipping an unbounded payload northbound.
  void set_max_request_bytes(std::size_t n) noexcept { max_request_ = n; }
  void set_max_response_bytes(std::size_t n) noexcept { max_response_ = n; }
  [[nodiscard]] std::size_t max_request_bytes() const noexcept {
    return max_request_;
  }
  [[nodiscard]] std::size_t max_response_bytes() const noexcept {
    return max_response_;
  }

  static constexpr std::size_t kDefaultMaxRequest = 1024 * 1024;        // 1 MiB
  static constexpr std::size_t kDefaultMaxResponse = 64 * 1024 * 1024;  // 64 MiB

 private:
  struct ConnState;
  void accept_ready();
  void conn_ready(int fd);
  void respond(ConnState& conn, const HttpResponse& resp);
  [[nodiscard]] const Handler* find_route(const std::string& method,
                                          const std::string& path) const;

  Reactor& reactor_;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::map<std::pair<std::string, std::string>, Handler> routes_;
  std::map<int, std::unique_ptr<ConnState>> conns_;
  std::size_t max_request_ = kDefaultMaxRequest;
  std::size_t max_response_ = kDefaultMaxResponse;
};

/// Blocking HTTP client (curl stand-in). Not for use on a reactor thread
/// that also serves the request.
class HttpClient {
 public:
  static Result<HttpResponse> request(const std::string& host,
                                      std::uint16_t port,
                                      const std::string& method,
                                      const std::string& path,
                                      const std::string& body = {});
};

}  // namespace flexric::ctrl
