// Controller specialization for hosting xApps (paper §6.3).
//
// "A number of services are required to host xApps: (1) a messaging
// infrastructure ...; (2) subscription management, e.g., merging identical
// subscriptions; (3) xApp management ...; (4) a database for xApps ...".
// This iApp provides (1)-(4) as SM-independent platform services on top of
// the server library, so SM functionality lives entirely in the xApps:
//
//  * xApp management — register/unregister xApps by name.
//  * Subscription merging — an xApp subscription identical to an existing
//    one (same agent, RAN function, trigger and actions) reuses the single
//    E2 subscription toward the agent; indications fan out to every
//    attached xApp. This is the dedup a Near-RT RIC performs so N xApps
//    monitoring the same KPIs cost the RAN one report stream, not N.
//  * Messaging — indications are delivered through per-xApp callbacks (the
//    in-process analogue of the RMR mesh).
//  * Database — the latest indication per (agent, RAN function) is kept for
//    late-joining xApps to read.
#pragma once

#include <functional>
#include <map>
#include <string>

#include "server/server.hpp"

namespace flexric::ctrl {

class XappHostIApp final : public server::IApp {
 public:
  using XappId = std::uint32_t;
  using IndicationHandler = std::function<void(const e2ap::Indication&)>;

  [[nodiscard]] const char* name() const override { return "xapp-host"; }
  void on_agent_disconnected(server::AgentId id) override;

  /// Shard-namespace the ids this host mints (sharded RIC, DESIGN.md §13):
  /// xApp ids carry the shard index in their top byte and subscription
  /// tokens in bits 32+, mirroring the server/sharding.hpp global agent-id
  /// convention, so per-shard hosts aggregate on the home thread without
  /// collisions. Call once, before registering xApps.
  void set_shard(std::uint32_t shard) {
    shard_ = shard;
    next_xapp_ = (shard << 24) | 1U;
    next_token_ = (static_cast<std::uint64_t>(shard) << 32) | 1U;
  }
  [[nodiscard]] std::uint32_t shard() const noexcept { return shard_; }

  // -- xApp management --
  /// Register an xApp; returns its id.
  XappId register_xapp(std::string xapp_name);
  /// Unregister: detaches all its subscriptions; E2 subscriptions with no
  /// remaining xApp are deleted toward the agent.
  void unregister_xapp(XappId id);
  [[nodiscard]] std::size_t num_xapps() const noexcept {
    return xapps_.size();
  }

  // -- subscription management with merging --
  /// Subscribe `xapp` to (agent, fn, trigger, actions). If an identical
  /// subscription exists it is shared (no new E2 traffic); otherwise one is
  /// created. Returns a token for unsubscribe_xapp.
  Result<std::uint64_t> subscribe_xapp(XappId xapp, server::AgentId agent,
                                       std::uint16_t ran_function_id,
                                       Buffer event_trigger,
                                       std::vector<e2ap::Action> actions,
                                       IndicationHandler on_indication);
  Status unsubscribe_xapp(std::uint64_t token);

  /// Number of E2 subscriptions currently open toward agents (after
  /// merging) — the quantity the dedup minimizes.
  [[nodiscard]] std::size_t num_e2_subscriptions() const noexcept {
    return e2_subs_.size();
  }

  // -- database --
  /// Latest indication payload per (agent, RAN function), or nullptr.
  [[nodiscard]] const e2ap::Indication* latest(
      server::AgentId agent, std::uint16_t ran_function_id) const;

 private:
  struct MergeKey {
    server::AgentId agent;
    std::uint16_t fn;
    Buffer trigger;
    std::vector<e2ap::Action> actions;
    bool operator<(const MergeKey& o) const {
      return std::tie(agent, fn, trigger, actions) <
             std::tie(o.agent, o.fn, o.trigger, o.actions);
    }
  };
  struct E2Sub {
    server::SubHandle handle;
    std::map<std::uint64_t, std::pair<XappId, IndicationHandler>> attached;
  };

  std::map<XappId, std::string> xapps_;
  std::uint32_t shard_ = 0;
  XappId next_xapp_ = 1;
  std::map<MergeKey, E2Sub> e2_subs_;
  std::map<std::uint64_t, MergeKey> tokens_;
  std::uint64_t next_token_ = 1;
  std::map<std::pair<server::AgentId, std::uint16_t>, e2ap::Indication> db_;
};

}  // namespace flexric::ctrl
