#include "ctrl/xapp_host.hpp"

#include "common/log.hpp"

namespace flexric::ctrl {

XappHostIApp::XappId XappHostIApp::register_xapp(std::string xapp_name) {
  XappId id = next_xapp_++;
  xapps_[id] = std::move(xapp_name);
  return id;
}

void XappHostIApp::unregister_xapp(XappId id) {
  xapps_.erase(id);
  // Detach the xApp from every merged subscription; delete E2 subscriptions
  // left with no consumers.
  for (auto it = e2_subs_.begin(); it != e2_subs_.end();) {
    for (auto ait = it->second.attached.begin();
         ait != it->second.attached.end();) {
      if (ait->second.first == id) {
        tokens_.erase(ait->first);
        ait = it->second.attached.erase(ait);
      } else {
        ++ait;
      }
    }
    if (it->second.attached.empty()) {
      (void)server_->unsubscribe(it->second.handle);
      it = e2_subs_.erase(it);
    } else {
      ++it;
    }
  }
}

Result<std::uint64_t> XappHostIApp::subscribe_xapp(
    XappId xapp, server::AgentId agent, std::uint16_t ran_function_id,
    Buffer event_trigger, std::vector<e2ap::Action> actions,
    IndicationHandler on_indication) {
  if (xapps_.count(xapp) == 0)
    return Error{Errc::not_found, "unknown xApp"};
  MergeKey key{agent, ran_function_id, event_trigger, actions};
  auto it = e2_subs_.find(key);
  if (it == e2_subs_.end()) {
    // First subscriber: open the one E2 subscription toward the agent.
    server::SubCallbacks cbs;
    MergeKey cb_key = key;
    cbs.on_indication = [this, cb_key, agent,
                         ran_function_id](const e2ap::Indication& ind) {
      db_[{agent, ran_function_id}] = ind;  // platform database
      auto sit = e2_subs_.find(cb_key);
      if (sit == e2_subs_.end()) return;
      for (auto& [token, entry] : sit->second.attached)
        entry.second(ind);  // fan out to every attached xApp
    };
    auto handle = server_->subscribe(agent, ran_function_id,
                                     std::move(event_trigger),
                                     std::move(actions), std::move(cbs));
    if (!handle) return handle.error();
    it = e2_subs_.emplace(std::move(key), E2Sub{*handle, {}}).first;
  }
  std::uint64_t token = next_token_++;
  it->second.attached[token] = {xapp, std::move(on_indication)};
  tokens_[token] = it->first;
  return token;
}

Status XappHostIApp::unsubscribe_xapp(std::uint64_t token) {
  auto tit = tokens_.find(token);
  if (tit == tokens_.end())
    return {Errc::not_found, "unknown subscription token"};
  auto sit = e2_subs_.find(tit->second);
  tokens_.erase(tit);
  if (sit == e2_subs_.end()) return Status::ok();
  sit->second.attached.erase(token);
  if (sit->second.attached.empty()) {
    // Last consumer gone: tear the E2 subscription down.
    (void)server_->unsubscribe(sit->second.handle);
    e2_subs_.erase(sit);
  }
  return Status::ok();
}

void XappHostIApp::on_agent_disconnected(server::AgentId id) {
  for (auto it = e2_subs_.begin(); it != e2_subs_.end();) {
    if (it->first.agent == id) {
      for (auto& [token, entry] : it->second.attached) tokens_.erase(token);
      it = e2_subs_.erase(it);
    } else {
      ++it;
    }
  }
  for (auto it = db_.begin(); it != db_.end();)
    it = (it->first.first == id) ? db_.erase(it) : std::next(it);
}

const e2ap::Indication* XappHostIApp::latest(
    server::AgentId agent, std::uint16_t ran_function_id) const {
  auto it = db_.find({agent, ran_function_id});
  return it == db_.end() ? nullptr : &it->second;
}

}  // namespace flexric::ctrl
