#include "ctrl/supervision_rest.hpp"

#include "ctrl/json.hpp"

namespace flexric::ctrl {

using server::ShardSupervisor;

SupervisionRest::SupervisionRest(HttpServer& http,
                                 const server::ShardedE2Server& ric)
    : ric_(ric) {
  http.route("GET", "/shards",
             [this](const HttpRequest& req, HttpResponse& resp) {
               handle_shards(req, resp);
             });
  http.route("GET", "/supervision",
             [this](const HttpRequest& req, HttpResponse& resp) {
               handle_supervision(req, resp);
             });
}

void SupervisionRest::handle_shards(const HttpRequest&,
                                    HttpResponse& resp) const {
  const ShardSupervisor& sup = ric_.supervisor();
  JsonArray shards;
  for (std::uint32_t i = 0; i < ric_.num_shards(); ++i) {
    JsonObject o;
    o["shard"] = i;
    o["health"] = server::shard_health_name(sup.health(i));
    o["beat_age_ms"] = sup.last_age(i) / kMilli;
    o["accepting"] = ric_.accepting(i);
    o["restarts"] = static_cast<std::uint64_t>(sup.restarts_of(i));
    o["retired_frames"] = ric_.retired_ledger(i).frames;
    shards.emplace_back(std::move(o));
  }
  JsonObject top;
  top["shards"] = std::move(shards);
  resp.body = Json(top).dump();
}

void SupervisionRest::handle_supervision(const HttpRequest&,
                                         HttpResponse& resp) const {
  const ShardSupervisor::Stats& st = ric_.supervisor().stats();
  JsonObject o;
  o["supervisor_polls"] = st.polls;
  o["supervisor_degradations"] = st.degradations;
  o["supervisor_quarantines"] = st.quarantines;
  o["supervisor_restarts"] = st.restarts;
  o["supervisor_recoveries"] = st.recoveries;
  o["mttr_last_ms"] = st.mttr_last / kMilli;
  o["supervisor_shed"] = ric_.supervisor_shed();
  o["queries_failed"] = ric_.queries_failed();
  resp.body = Json(o).dump();
}

}  // namespace flexric::ctrl
