#include "ctrl/virt.hpp"

#include <algorithm>

#include "common/log.hpp"
#include "e2sm/common.hpp"

namespace flexric::ctrl {

using e2sm::slice::CtrlKind;
using e2sm::slice::CtrlMsg;
using e2sm::slice::NvsKind;
using e2sm::slice::SliceConf;

// ---------------------------------------------------------------------------
// Appendix B math
// ---------------------------------------------------------------------------

SliceConf VirtController::virtualize_conf(const SliceConf& virt,
                                          const TenantConfig& tenant) {
  SliceConf phys = virt;
  phys.id = tenant.phys_slice_base + virt.id;
  phys.label = tenant.name + "/" + virt.label;
  if (virt.nvs.kind == NvsKind::capacity) {
    // c_phys = c_virt * q
    phys.nvs.capacity_share = virt.nvs.capacity_share * tenant.sla_share;
  } else {
    // Rate slices keep the reserved rate; the reference rate scales up so
    // the physical share r/r_ref_phys = (r/r_ref_virt) * q.
    phys.nvs.rate_mbps = virt.nvs.rate_mbps;
    phys.nvs.ref_rate_mbps =
        tenant.sla_share > 0 ? virt.nvs.ref_rate_mbps / tenant.sla_share
                             : virt.nvs.ref_rate_mbps;
  }
  return phys;
}

double VirtController::virtual_load(const std::vector<SliceConf>& confs) {
  double load = 0.0;
  for (const auto& c : confs) {
    if (c.nvs.kind == NvsKind::capacity)
      load += c.nvs.capacity_share;
    else
      load += c.nvs.ref_rate_mbps > 0
                  ? c.nvs.rate_mbps / c.nvs.ref_rate_mbps
                  : 1.0;
  }
  return load;
}

// ---------------------------------------------------------------------------
// Virtual RAN functions (northbound, one set per tenant)
// ---------------------------------------------------------------------------

/// SC SM virtualization iApp (Table 5): rescales slice parameters, remaps
/// ids, forwards admissible configs to the physical agent.
class VirtController::VirtSliceFunction final : public agent::RanFunction {
 public:
  VirtSliceFunction(VirtController& virt, Tenant& tenant)
      : virt_(virt), tenant_(tenant) {
    desc_ = e2sm::make_ran_function<e2sm::slice::Sm>();
  }

  [[nodiscard]] const e2ap::RanFunctionItem& descriptor() const override {
    return desc_;
  }

  Result<agent::SubscriptionOutcome> on_subscription(
      const e2ap::SubscriptionRequest& req,
      agent::ControllerId origin) override {
    // Status reports: subscribe southbound once; partition per tenant.
    server::SubCallbacks cbs;
    e2ap::RicRequestId north_req = req.request;
    cbs.on_indication = [this, origin,
                         north_req](const e2ap::Indication& ind) {
      forward_status(ind, origin, north_req);
    };
    auto handle = virt_.server_->subscribe(*virt_.south_agent_,
                                           e2sm::slice::Sm::kId,
                                           req.event_trigger, req.actions,
                                           std::move(cbs));
    if (!handle) return handle.error();
    agent::SubscriptionOutcome outcome;
    for (const auto& a : req.actions) outcome.admitted.push_back(a.id);
    action_id_ = req.actions.empty() ? 1 : req.actions.front().id;
    return outcome;
  }

  Status on_subscription_delete(const e2ap::SubscriptionDeleteRequest&,
                                agent::ControllerId) override {
    return Status::ok();
  }

  Result<Buffer> on_control(const e2ap::ControlRequest& req,
                            agent::ControllerId) override {
    auto msg =
        e2sm::sm_decode<CtrlMsg>(req.message, virt_.cfg_.sm_format);
    if (!msg) return msg.error();
    auto phys = virtualize_ctrl(*msg);
    if (!phys) return phys.error();
    Status st = virt_.server_->send_control(
        *virt_.south_agent_, e2sm::slice::Sm::kId, Buffer{},
        e2sm::sm_encode(*phys, virt_.cfg_.sm_format), {},
        /*ack_requested=*/false);
    e2sm::slice::CtrlOutcome outcome;
    outcome.success = st.is_ok();
    outcome.diagnostic = st.is_ok() ? "" : st.to_string();
    return e2sm::sm_encode(outcome, virt_.cfg_.sm_format);
  }

 private:
  Result<CtrlMsg> virtualize_ctrl(const CtrlMsg& virt_msg) {
    CtrlMsg phys = virt_msg;
    switch (virt_msg.kind) {
      case CtrlKind::add_mod: {
        if (virt_msg.algo != e2sm::slice::Algo::nvs)
          return Error{Errc::unsupported,
                       "virtualization layer supports NVS only"};
        for (const auto& c : virt_msg.slices)
          if (c.id > 9)
            return Error{Errc::rejected, "virtual slice id must be 0-9"};
        // Admission: the tenant may not exceed its own virtual network.
        double load = virtual_load(virt_msg.slices);
        for (const auto& [id, conf] : tenant_virtual_)
          if (std::none_of(virt_msg.slices.begin(), virt_msg.slices.end(),
                           [&](const SliceConf& c) { return c.id == id; }))
            load += virtual_load({conf});
        if (load > 1.0 + 1e-9)
          return Error{Errc::rejected,
                       "virtual admission control: total share > 1"};
        phys.slices.clear();
        for (const auto& c : virt_msg.slices) {
          tenant_virtual_[c.id] = c;
          phys.slices.push_back(virtualize_conf(c, tenant_.cfg));
        }
        return phys;
      }
      case CtrlKind::del: {
        phys.del_ids.clear();
        for (std::uint32_t id : virt_msg.del_ids) {
          if (id > 9)
            return Error{Errc::rejected, "virtual slice id must be 0-9"};
          tenant_virtual_.erase(id);
          phys.del_ids.push_back(tenant_.cfg.phys_slice_base + id);
        }
        return phys;
      }
      case CtrlKind::assoc_ue: {
        phys.assoc.clear();
        for (const auto& a : virt_msg.assoc) {
          if (tenant_.ues.count(a.rnti) == 0)
            return Error{Errc::rejected,
                         "UE does not belong to this tenant"};
          if (a.slice_id > 9)
            return Error{Errc::rejected, "virtual slice id must be 0-9"};
          phys.assoc.push_back(
              {a.rnti, tenant_.cfg.phys_slice_base + a.slice_id});
        }
        return phys;
      }
    }
    return Error{Errc::unsupported, "unknown slice control kind"};
  }

  void forward_status(const e2ap::Indication& ind, agent::ControllerId origin,
                      e2ap::RicRequestId north_req) {
    auto msg = e2sm::sm_decode<e2sm::slice::IndicationMsg>(
        ind.message, virt_.cfg_.sm_format);
    if (!msg) return;
    // Partition: keep only this tenant's physical slices, mapped back to
    // virtual ids; hide other tenants entirely.
    e2sm::slice::IndicationMsg out;
    out.algo = msg->algo;
    std::uint32_t base = tenant_.cfg.phys_slice_base;
    for (auto& s : msg->slices) {
      if (s.conf.id < base || s.conf.id > base + 9) continue;
      e2sm::slice::SliceStatus v = s;
      v.conf.id = s.conf.id - base;
      // De-virtualize the share so the tenant sees its virtual scale.
      if (v.conf.nvs.kind == NvsKind::capacity &&
          tenant_.cfg.sla_share > 0) {
        v.conf.nvs.capacity_share /= tenant_.cfg.sla_share;
        v.prb_share_used /= tenant_.cfg.sla_share;
      }
      out.slices.push_back(std::move(v));
    }
    for (const auto& a : msg->assoc) {
      if (tenant_.ues.count(a.rnti) == 0) continue;
      std::uint32_t vid = a.slice_id >= base && a.slice_id <= base + 9
                              ? a.slice_id - base
                              : 0;
      out.assoc.push_back({a.rnti, vid});
    }
    e2ap::Indication up = ind;
    up.request = north_req;
    up.ran_function_id = desc_.id;
    up.message = e2sm::sm_encode(out, virt_.cfg_.sm_format);
    if (services_ != nullptr) (void)services_->send_indication(origin, up);
  }

  VirtController& virt_;
  Tenant& tenant_;
  e2ap::RanFunctionItem desc_;
  std::map<std::uint32_t, SliceConf> tenant_virtual_;
  std::uint8_t action_id_ = 1;
};

/// MAC stats partitioning iApp (Table 5): only the tenant's UEs are
/// revealed; physical slice ids are mapped back to virtual ones.
class VirtController::VirtMacFunction final : public agent::RanFunction {
 public:
  VirtMacFunction(VirtController& virt, Tenant& tenant)
      : virt_(virt), tenant_(tenant) {
    desc_ = e2sm::make_ran_function<e2sm::mac::Sm>();
  }

  [[nodiscard]] const e2ap::RanFunctionItem& descriptor() const override {
    return desc_;
  }

  Result<agent::SubscriptionOutcome> on_subscription(
      const e2ap::SubscriptionRequest& req,
      agent::ControllerId origin) override {
    server::SubCallbacks cbs;
    e2ap::RicRequestId north_req = req.request;
    cbs.on_indication = [this, origin,
                         north_req](const e2ap::Indication& ind) {
      auto msg = e2sm::sm_decode<e2sm::mac::IndicationMsg>(
          ind.message, virt_.cfg_.sm_format);
      if (!msg) return;
      std::erase_if(msg->ues, [this](const e2sm::mac::UeStats& s) {
        return tenant_.ues.count(s.rnti) == 0;
      });
      std::uint32_t base = tenant_.cfg.phys_slice_base;
      for (auto& ue : msg->ues)
        ue.slice_id =
            ue.slice_id >= base && ue.slice_id <= base + 9
                ? ue.slice_id - base
                : 0;
      e2ap::Indication up = ind;
      up.request = north_req;
      up.ran_function_id = desc_.id;
      up.message = e2sm::sm_encode(*msg, virt_.cfg_.sm_format);
      if (services_ != nullptr) (void)services_->send_indication(origin, up);
    };
    auto handle = virt_.server_->subscribe(*virt_.south_agent_,
                                           e2sm::mac::Sm::kId,
                                           req.event_trigger, req.actions,
                                           std::move(cbs));
    if (!handle) return handle.error();
    agent::SubscriptionOutcome outcome;
    for (const auto& a : req.actions) outcome.admitted.push_back(a.id);
    return outcome;
  }

  Status on_subscription_delete(const e2ap::SubscriptionDeleteRequest&,
                                agent::ControllerId) override {
    return Status::ok();
  }
  Result<Buffer> on_control(const e2ap::ControlRequest&,
                            agent::ControllerId) override {
    return Error{Errc::unsupported, "MAC stats SM has no control service"};
  }

 private:
  VirtController& virt_;
  Tenant& tenant_;
  e2ap::RanFunctionItem desc_;
};

/// RRC event partitioning: a tenant only sees its own subscribers' events.
class VirtController::VirtRrcFunction final : public agent::RanFunction {
 public:
  VirtRrcFunction(VirtController& virt, Tenant& tenant)
      : virt_(virt), tenant_(tenant) {
    desc_ = e2sm::make_ran_function<e2sm::rrc::Sm>();
  }

  [[nodiscard]] const e2ap::RanFunctionItem& descriptor() const override {
    return desc_;
  }

  Result<agent::SubscriptionOutcome> on_subscription(
      const e2ap::SubscriptionRequest& req,
      agent::ControllerId origin) override {
    subs_.push_back({origin, req.request,
                     req.actions.empty() ? std::uint8_t{1}
                                         : req.actions.front().id});
    agent::SubscriptionOutcome outcome;
    for (const auto& a : req.actions) outcome.admitted.push_back(a.id);
    if (outcome.admitted.empty()) outcome.admitted.push_back(1);
    return outcome;
  }
  Status on_subscription_delete(const e2ap::SubscriptionDeleteRequest& req,
                                agent::ControllerId origin) override {
    std::erase_if(subs_, [&](const Sub& s) {
      return s.origin == origin && s.request == req.request;
    });
    return Status::ok();
  }
  Result<Buffer> on_control(const e2ap::ControlRequest&,
                            agent::ControllerId) override {
    return Error{Errc::unsupported, "RRC SM has no control service"};
  }

  /// Called by the VirtController when a southbound RRC event matches this
  /// tenant's PLMN.
  void emit(const e2sm::rrc::IndicationMsg& ev) {
    if (services_ == nullptr) return;
    for (auto& sub : subs_) {
      e2ap::Indication ind;
      ind.request = sub.request;
      ind.ran_function_id = desc_.id;
      ind.action_id = sub.action_id;
      ind.sn = sub.sn++;
      ind.type = e2ap::ActionType::report;
      ind.message = e2sm::sm_encode(ev, virt_.cfg_.sm_format);
      (void)services_->send_indication(sub.origin, ind);
    }
  }

 private:
  struct Sub {
    agent::ControllerId origin;
    e2ap::RicRequestId request;
    std::uint8_t action_id;
    std::uint32_t sn = 0;
  };
  VirtController& virt_;
  Tenant& tenant_;
  e2ap::RanFunctionItem desc_;
  std::vector<Sub> subs_;
};

// ---------------------------------------------------------------------------
// Southbound iApp: agent discovery + RRC-based tenant UE attribution
// ---------------------------------------------------------------------------

class VirtController::SouthIApp final : public server::IApp {
 public:
  explicit SouthIApp(VirtController& virt) : virt_(virt) {}
  [[nodiscard]] const char* name() const override { return "virt-south"; }
  void on_agent_connected(const server::AgentInfo& info) override {
    virt_.on_south_agent(info);
  }

 private:
  VirtController& virt_;
};

// ---------------------------------------------------------------------------
// VirtController
// ---------------------------------------------------------------------------

VirtController::VirtController(Reactor& reactor, Config cfg,
                               std::vector<TenantConfig> tenant_cfgs)
    : reactor_(reactor), cfg_(cfg) {
  server_ = std::make_unique<server::E2Server>(
      reactor_, server::E2Server::Config{88, cfg_.e2ap_format, {}});
  south_iapp_ = std::make_shared<SouthIApp>(*this);
  server_->add_iapp(south_iapp_);
  std::uint32_t idx = 0;
  for (auto& tc : tenant_cfgs) {
    auto tenant = std::make_unique<Tenant>();
    tenant->cfg = tc;
    agent::E2Agent::Config acfg;
    acfg.node_id.plmn = tc.plmn;
    acfg.node_id.nb_id = cfg_.virt_nb_id_base + idx;
    acfg.node_id.type = e2ap::NodeType::enb;
    acfg.e2ap_format = cfg_.e2ap_format;
    tenant->north_agent = std::make_unique<agent::E2Agent>(reactor_, acfg);
    tenant->slice_fn = std::make_shared<VirtSliceFunction>(*this, *tenant);
    tenant->mac_fn = std::make_shared<VirtMacFunction>(*this, *tenant);
    tenant->rrc_fn = std::make_shared<VirtRrcFunction>(*this, *tenant);
    (void)tenant->north_agent->register_function(tenant->slice_fn);
    (void)tenant->north_agent->register_function(tenant->mac_fn);
    (void)tenant->north_agent->register_function(tenant->rrc_fn);
    tenants_.push_back(std::move(tenant));
    ++idx;
  }
}

void VirtController::on_south_agent(const server::AgentInfo& info) {
  south_agent_ = info.id;
  // Learn UE-to-tenant attribution from RRC events.
  e2sm::EventTrigger trigger{e2sm::TriggerKind::on_event, 0};
  e2ap::Action action;
  action.id = 1;
  action.type = e2ap::ActionType::report;
  server::SubCallbacks cbs;
  cbs.on_indication = [this](const e2ap::Indication& ind) {
    auto ev = e2sm::sm_decode<e2sm::rrc::IndicationMsg>(ind.message,
                                                        cfg_.sm_format);
    if (ev) on_rrc_event(*ev);
  };
  (void)server_->subscribe(info.id, e2sm::rrc::Sm::kId,
                     e2sm::sm_encode(trigger, cfg_.sm_format), {action},
                     std::move(cbs));
}

VirtController::Tenant* VirtController::tenant_of_plmn(std::uint32_t plmn) {
  for (auto& t : tenants_)
    if (t->cfg.plmn == plmn) return t.get();
  return nullptr;
}

void VirtController::on_rrc_event(const e2sm::rrc::IndicationMsg& ev) {
  Tenant* tenant = tenant_of_plmn(ev.plmn);
  if (tenant == nullptr) {
    LOG_WARN("virt", "UE %u with unknown PLMN %u", ev.rnti, ev.plmn);
    return;
  }
  if (ev.kind == e2sm::rrc::EventKind::attach)
    tenant->ues.insert(ev.rnti);
  else if (ev.kind == e2sm::rrc::EventKind::detach)
    tenant->ues.erase(ev.rnti);
  tenant->rrc_fn->emit(ev);
}

Result<agent::ControllerId> VirtController::connect_tenant(
    std::size_t idx, std::shared_ptr<MsgTransport> transport) {
  if (idx >= tenants_.size())
    return Error{Errc::not_found, "no such tenant"};
  if (!south_agent_)
    return Error{Errc::rejected, "southbound agent not connected yet"};
  return tenants_[idx]->north_agent->add_controller(std::move(transport));
}

std::set<std::uint16_t> VirtController::tenant_ues(std::size_t idx) const {
  if (idx >= tenants_.size()) return {};
  return tenants_[idx]->ues;
}

}  // namespace flexric::ctrl
