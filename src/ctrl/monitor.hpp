// Monitoring controller specialization: a statistics iApp that subscribes
// to the stats SMs of every connecting agent and saves incoming messages to
// an in-memory data structure (the workload of §5.3 / Fig. 8 — "the FlexRIC
// controller consists of the server library and a statistics iApp that
// saves incoming messages to an in-memory data structure").
#pragma once

#include <map>

#include "ctrl/broker.hpp"
#include "e2sm/mac_sm.hpp"
#include "e2sm/pdcp_sm.hpp"
#include "e2sm/rlc_sm.hpp"
#include "server/server.hpp"
#include "telemetry/ingest.hpp"

namespace flexric::ctrl {

class MonitorIApp final : public server::IApp {
 public:
  struct Config {
    WireFormat sm_format = WireFormat::flat;
    std::uint32_t period_ms = 1;
    bool want_mac = true;
    bool want_rlc = true;
    bool want_pdcp = true;
    /// true: parse payloads into typed maps (mandatory for ASN.1, which is
    /// unusable unparsed). false: keep the latest raw message per SM — the
    /// FlatBuffers mode of operation, where the stored bytes ARE the
    /// queryable object and no decode step exists (§5.3's FB advantage).
    bool decode_payloads = true;
    bool retain_on_disconnect = false;  ///< keep DBs after agents leave
    Broker* broker = nullptr;  ///< optional: republish stats northbound
    /// Optional: feed every indication into the telemetry time-series store.
    /// Works in both modes — decoded indications reuse the iApp's decode;
    /// zero-copy mode hands the raw bytes to Ingest::wire().
    telemetry::Ingest* telemetry = nullptr;
  };

  explicit MonitorIApp(Config cfg) : cfg_(cfg) {}
  [[nodiscard]] const char* name() const override { return "monitor"; }

  void on_agent_connected(const server::AgentInfo& info) override;
  void on_agent_disconnected(server::AgentId id) override;
  void on_agent_quarantined(server::AgentId id) override;
  void on_agent_reconnected(const server::AgentInfo& info) override;

  /// In-memory DB: latest stats per agent per UE/bearer.
  struct AgentDb {
    std::map<std::uint16_t, e2sm::mac::UeStats> mac;
    std::map<std::pair<std::uint16_t, std::uint8_t>, e2sm::rlc::BearerStats>
        rlc;
    std::map<std::pair<std::uint16_t, std::uint8_t>, e2sm::pdcp::BearerStats>
        pdcp;
    /// Zero-copy mode: latest raw SM message per RAN function id.
    std::map<std::uint16_t, Buffer> raw;
    std::uint64_t indications = 0;
  };
  [[nodiscard]] const std::map<server::AgentId, AgentDb>& db() const noexcept {
    return db_;
  }
  [[nodiscard]] std::uint64_t total_indications() const noexcept {
    return total_indications_;
  }
  /// Resilience visibility: agents that went quiet / came back with their
  /// subscriptions replayed under the same handles.
  [[nodiscard]] std::uint64_t quarantines() const noexcept {
    return quarantines_;
  }
  [[nodiscard]] std::uint64_t reconnects() const noexcept {
    return reconnects_;
  }

 private:
  void subscribe_stats(server::AgentId agent, std::uint16_t fn_id);

  Config cfg_;
  std::map<server::AgentId, AgentDb> db_;
  std::uint64_t total_indications_ = 0;
  std::uint64_t quarantines_ = 0;
  std::uint64_t reconnects_ = 0;
};

}  // namespace flexric::ctrl
