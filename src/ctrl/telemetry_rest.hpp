// Northbound export of the telemetry time-series store over the controller's
// REST interface (the same northbound style as the slicing controller,
// Table 4): series discovery, windowed queries, and a flight-recorder dump.
//
// Routes (all JSON):
//   GET  /series  list every stored series with retention info
//   POST /query   {"agent","rnti","drb","metric","t0_ns","t1_ns",
//                  "kind": "aggregate"|"raw"|"latest", "source": "auto"|
//                  "raw"|"tier1"|"tier2", "n"}  -> samples or aggregate
//   GET  /dump    bounded flight-recorder snapshot of the whole store
#pragma once

#include "ctrl/rest.hpp"
#include "telemetry/store.hpp"

namespace flexric::ctrl {

class TelemetryRest {
 public:
  /// Registers the routes on `http`. `store` must outlive the server.
  TelemetryRest(HttpServer& http, const telemetry::TelemetryStore& store);

 private:
  void handle_series(const HttpRequest& req, HttpResponse& resp) const;
  void handle_query(const HttpRequest& req, HttpResponse& resp) const;
  void handle_dump(const HttpRequest& req, HttpResponse& resp) const;

  const telemetry::TelemetryStore& store_;
};

}  // namespace flexric::ctrl
