#include "ctrl/rest.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/log.hpp"

namespace flexric::ctrl {

namespace {

const char* reason_phrase(int code) {
  switch (code) {
    case 200: return "OK";
    case 201: return "Created";
    case 204: return "No Content";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 413: return "Payload Too Large";
    case 500: return "Internal Server Error";
    case 503: return "Service Unavailable";
    default: return "Unknown";
  }
}

/// Parse "METHOD /path HTTP/1.1\r\nheaders\r\n\r\nbody". Returns false when
/// more data is needed; sets `error` for malformed requests and `too_large`
/// when the declared Content-Length exceeds `max_body` (the caller answers
/// 413 without waiting for the oversized body to actually arrive).
bool parse_request(const std::string& raw, HttpRequest* out, bool* error,
                   std::size_t max_body, bool* too_large) {
  *error = false;
  *too_large = false;
  std::size_t header_end = raw.find("\r\n\r\n");
  if (header_end == std::string::npos) return false;
  std::size_t line_end = raw.find("\r\n");
  std::string request_line = raw.substr(0, line_end);
  std::size_t sp1 = request_line.find(' ');
  std::size_t sp2 = request_line.find(' ', sp1 + 1);
  if (sp1 == std::string::npos || sp2 == std::string::npos) {
    *error = true;
    return false;
  }
  out->method = request_line.substr(0, sp1);
  out->path = request_line.substr(sp1 + 1, sp2 - sp1 - 1);

  std::size_t content_length = 0;
  std::size_t pos = line_end + 2;
  while (pos < header_end) {
    std::size_t eol = raw.find("\r\n", pos);
    std::string line = raw.substr(pos, eol - pos);
    pos = eol + 2;
    std::size_t colon = line.find(':');
    if (colon == std::string::npos) continue;
    std::string name = line.substr(0, colon);
    for (auto& c : name) c = static_cast<char>(std::tolower(c));
    if (name == "content-length")
      content_length = static_cast<std::size_t>(
          std::strtoul(line.c_str() + colon + 1, nullptr, 10));
  }
  if (content_length > max_body) {
    *too_large = true;
    return false;
  }
  std::size_t body_start = header_end + 4;
  if (raw.size() - body_start < content_length) return false;
  out->body = raw.substr(body_start, content_length);
  return true;
}

std::string serialize_response(const HttpResponse& resp) {
  std::string out = "HTTP/1.1 " + std::to_string(resp.code) + " " +
                    reason_phrase(resp.code) + "\r\n";
  out += "Content-Type: " + resp.content_type + "\r\n";
  out += "Content-Length: " + std::to_string(resp.body.size()) + "\r\n";
  if (resp.retry_after_s > 0)
    out += "Retry-After: " + std::to_string(resp.retry_after_s) + "\r\n";
  out += "Connection: close\r\n\r\n";
  out += resp.body;
  return out;
}

}  // namespace

struct HttpServer::ConnState {
  int fd;
  std::string rx;
};

HttpServer::HttpServer(Reactor& reactor) : reactor_(reactor) {}

HttpServer::~HttpServer() { close(); }

void HttpServer::route(const std::string& method, const std::string& path,
                       Handler handler) {
  routes_[{method, path}] = std::move(handler);
}

Status HttpServer::listen(std::uint16_t port) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) return {Errc::io, std::strerror(errno)};
  int one = 1;
  setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0 ||
      ::listen(listen_fd_, 16) != 0) {
    Status st{Errc::io, std::strerror(errno)};
    ::close(listen_fd_);
    listen_fd_ = -1;
    return st;
  }
  socklen_t len = sizeof addr;
  getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);
  int flags = fcntl(listen_fd_, F_GETFL, 0);
  fcntl(listen_fd_, F_SETFL, flags | O_NONBLOCK);
  return reactor_.add_fd(listen_fd_, EPOLLIN,
                         [this](std::uint32_t) { accept_ready(); });
}

void HttpServer::close() {
  if (listen_fd_ >= 0) {
    reactor_.del_fd(listen_fd_);
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  for (auto& [fd, conn] : conns_) {
    reactor_.del_fd(fd);
    ::close(fd);
  }
  conns_.clear();
}

void HttpServer::accept_ready() {
  while (true) {
    // lint: allow(blocking-in-handler) SOCK_NONBLOCK accept: returns EAGAIN instead of blocking the loop
    int cfd = ::accept4(listen_fd_, nullptr, nullptr,
                        SOCK_CLOEXEC | SOCK_NONBLOCK);
    if (cfd < 0) return;
    auto conn = std::make_unique<ConnState>();
    conn->fd = cfd;
    Status st = reactor_.add_fd(cfd, EPOLLIN,
                                [this, cfd](std::uint32_t) { conn_ready(cfd); });
    if (!st.is_ok()) {
      ::close(cfd);
      continue;
    }
    conns_[cfd] = std::move(conn);
  }
}

const HttpServer::Handler* HttpServer::find_route(
    const std::string& method, const std::string& path) const {
  auto it = routes_.find({method, path});
  if (it != routes_.end()) return &it->second;
  // Prefix routes: longest registered prefix ending in '/' wins.
  const Handler* best = nullptr;
  std::size_t best_len = 0;
  for (const auto& [key, handler] : routes_) {
    const auto& [m, p] = key;
    if (m != method || p.empty() || p.back() != '/') continue;
    if (path.compare(0, p.size(), p) == 0 && p.size() > best_len) {
      best = &handler;
      best_len = p.size();
    }
  }
  return best;
}

void HttpServer::conn_ready(int fd) {
  auto it = conns_.find(fd);
  if (it == conns_.end()) return;
  ConnState& conn = *it->second;
  char chunk[16384];
  while (true) {
    // lint: allow(blocking-in-handler) conn fds are SOCK_NONBLOCK (accept_ready): recv returns EAGAIN, never blocks
    ssize_t n = ::recv(fd, chunk, sizeof chunk, 0);
    if (n > 0) {
      conn.rx.append(chunk, static_cast<std::size_t>(n));
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    // closed or error
    reactor_.del_fd(fd);
    ::close(fd);
    conns_.erase(fd);
    return;
  }
  HttpRequest req;
  bool error = false;
  bool too_large = conn.rx.size() > max_request_;
  if (!too_large && !parse_request(conn.rx, &req, &error, max_request_,
                                   &too_large) &&
      !too_large) {
    if (error) {
      respond(conn, HttpResponse{400, R"({"error":"bad request"})", "application/json"});
      reactor_.del_fd(fd);
      ::close(fd);
      conns_.erase(fd);
    }
    return;  // need more data
  }
  if (too_large) {
    // Buffered bytes or declared Content-Length over the cap: refuse rather
    // than buffer unboundedly. Retry-After hints a backoff to the client.
    HttpResponse rej{413, R"({"error":"payload too large"})",
                     "application/json"};
    rej.retry_after_s = 1;
    respond(conn, rej);
    reactor_.del_fd(fd);
    ::close(fd);
    conns_.erase(fd);
    return;
  }
  HttpResponse resp;
  if (const Handler* handler = find_route(req.method, req.path)) {
    (*handler)(req, resp);
  } else {
    resp.code = 404;
    resp.body = R"({"error":"not found"})";
  }
  if (resp.body.size() > max_response_) {
    // An unbounded response is server-side overload, not client error:
    // shed it visibly instead of shipping (and buffering) the payload.
    LOG_WARN("rest", "response of %zu bytes exceeds cap %zu; shedding (503)",
             resp.body.size(), max_response_);
    resp = HttpResponse{503, R"({"error":"response too large, narrow the query"})",
                        "application/json"};
    resp.retry_after_s = 1;
  }
  respond(conn, resp);
  reactor_.del_fd(fd);
  ::close(fd);
  conns_.erase(fd);
}

void HttpServer::respond(ConnState& conn, const HttpResponse& resp) {
  std::string wire = serialize_response(resp);
  std::size_t off = 0;
  while (off < wire.size()) {
    ssize_t n = ::send(conn.fd, wire.data() + off, wire.size() - off,
                       MSG_NOSIGNAL);
    if (n <= 0) break;  // best-effort: connection is closed right after
    off += static_cast<std::size_t>(n);
  }
}

// ---------------------------------------------------------------------------
// HttpClient
// ---------------------------------------------------------------------------

Result<HttpResponse> HttpClient::request(const std::string& host,
                                         std::uint16_t port,
                                         const std::string& method,
                                         const std::string& path,
                                         const std::string& body) {
  int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return Error{Errc::io, std::strerror(errno)};
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  inet_pton(AF_INET, host.c_str(), &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    Error e{Errc::io, std::strerror(errno)};
    ::close(fd);
    return e;
  }
  std::string req = method + " " + path + " HTTP/1.1\r\n";
  req += "Host: " + host + "\r\n";
  req += "Content-Type: application/json\r\n";
  req += "Content-Length: " + std::to_string(body.size()) + "\r\n";
  req += "Connection: close\r\n\r\n";
  req += body;
  std::size_t off = 0;
  while (off < req.size()) {
    ssize_t n = ::send(fd, req.data() + off, req.size() - off, MSG_NOSIGNAL);
    if (n <= 0) {
      ::close(fd);
      return Error{Errc::io, "send failed"};
    }
    off += static_cast<std::size_t>(n);
  }
  std::string raw;
  char chunk[16384];
  while (true) {
    // lint: allow(blocking-in-handler) synchronous HTTP client helper for tests/tools; never runs on the reactor thread
    ssize_t n = ::recv(fd, chunk, sizeof chunk, 0);
    if (n > 0) {
      raw.append(chunk, static_cast<std::size_t>(n));
      continue;
    }
    break;  // peer closes after the response
  }
  ::close(fd);
  // Parse status line + body.
  std::size_t sp = raw.find(' ');
  if (sp == std::string::npos) return Error{Errc::malformed, "bad response"};
  HttpResponse resp;
  resp.code = std::atoi(raw.c_str() + sp + 1);
  std::size_t header_end = raw.find("\r\n\r\n");
  if (header_end != std::string::npos) {
    // Surface the overload backoff hint (413/503) so callers can honor it.
    const std::string hdrs = raw.substr(0, header_end);
    std::size_t ra = hdrs.find("Retry-After: ");
    if (ra != std::string::npos)
      resp.retry_after_s = std::atoi(hdrs.c_str() + ra + 13);
    resp.body = raw.substr(header_end + 4);
  }
  return resp;
}

}  // namespace flexric::ctrl
