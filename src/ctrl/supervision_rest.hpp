// Northbound export of shard supervision state (DESIGN.md §15) over the
// controller's REST interface — the operator's view of the watchdog: which
// shards are healthy, which are quarantined or recovering, and how fast the
// last recovery was.
//
// Routes (all JSON, GET):
//   GET /shards       per-shard health: state, beat age (ms), accepting,
//                     restarts, retired-ledger frame count
//   GET /supervision  aggregate counters: supervisor_quarantines,
//                     supervisor_restarts, supervisor_recoveries,
//                     mttr_last_ms, supervisor_shed, queries_failed
#pragma once

#include "ctrl/rest.hpp"
#include "server/sharded_server.hpp"
#include "server/supervisor.hpp"

namespace flexric::ctrl {

class SupervisionRest {
 public:
  /// Registers the routes on `http`. `ric` must outlive the server, and the
  /// handlers run on the reactor serving `http` — which must be the home
  /// thread that owns the supervisor (the usual controller layout: one home
  /// reactor runs pump_home, the watchdog and the REST server).
  SupervisionRest(HttpServer& http, const server::ShardedE2Server& ric);

 private:
  void handle_shards(const HttpRequest& req, HttpResponse& resp) const;
  void handle_supervision(const HttpRequest& req, HttpResponse& resp) const;

  const server::ShardedE2Server& ric_;
};

}  // namespace flexric::ctrl
