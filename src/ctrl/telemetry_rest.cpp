#include "ctrl/telemetry_rest.hpp"

#include "ctrl/json.hpp"

namespace flexric::ctrl {

namespace {

using telemetry::Metric;
using telemetry::QuerySource;
using telemetry::SeriesKey;

void fail(HttpResponse& resp, int code, const std::string& msg) {
  resp.code = code;
  JsonObject o;
  o["error"] = msg;
  resp.body = Json(o).dump();
}

/// Cap on samples returned by one raw/latest query. A northbound client
/// asking for more gets the newest kMaxQuerySamples — response size stays
/// bounded even against a raw-range query spanning an entire storm (the
/// HttpServer response cap is the backstop, this keeps well under it).
constexpr std::size_t kMaxQuerySamples = 4096;

std::vector<telemetry::RawSample> clamp_samples(
    std::vector<telemetry::RawSample> samples, bool* truncated) {
  *truncated = samples.size() > kMaxQuerySamples;
  if (*truncated)
    samples.erase(samples.begin(),
                  samples.end() - static_cast<long>(kMaxQuerySamples));
  return samples;
}

Json sample_array(const std::vector<telemetry::RawSample>& samples) {
  JsonArray arr;
  arr.reserve(samples.size());
  for (const auto& s : samples) {
    JsonArray pair;
    pair.emplace_back(s.t);
    pair.emplace_back(s.v);
    arr.emplace_back(std::move(pair));
  }
  return arr;
}

const char* source_name(QuerySource s) {
  switch (s) {
    case QuerySource::automatic: return "auto";
    case QuerySource::raw: return "raw";
    case QuerySource::tier1: return "tier1";
    case QuerySource::tier2: return "tier2";
  }
  return "auto";
}

bool parse_source(const std::string& name, QuerySource& out) {
  if (name.empty() || name == "auto") out = QuerySource::automatic;
  else if (name == "raw") out = QuerySource::raw;
  else if (name == "tier1") out = QuerySource::tier1;
  else if (name == "tier2") out = QuerySource::tier2;
  else return false;
  return true;
}

}  // namespace

TelemetryRest::TelemetryRest(HttpServer& http,
                             const telemetry::TelemetryStore& store)
    : store_(store) {
  http.route("GET", "/series", [this](const HttpRequest& req,
                                      HttpResponse& resp) {
    handle_series(req, resp);
  });
  http.route("POST", "/query", [this](const HttpRequest& req,
                                      HttpResponse& resp) {
    handle_query(req, resp);
  });
  http.route("GET", "/dump", [this](const HttpRequest& req,
                                    HttpResponse& resp) {
    handle_dump(req, resp);
  });
}

void TelemetryRest::handle_series(const HttpRequest&,
                                  HttpResponse& resp) const {
  JsonArray arr;
  for (const telemetry::SeriesInfo& info : store_.list_series()) {
    JsonObject o;
    o["agent"] = static_cast<std::uint64_t>(info.key.agent);
    o["rnti"] =
        static_cast<std::uint64_t>(telemetry::entity_rnti(info.key.entity));
    o["drb"] =
        static_cast<std::uint64_t>(telemetry::entity_drb(info.key.entity));
    o["metric"] = telemetry::metric_name(info.key.metric);
    o["total_samples"] = info.total_samples;
    o["raw_count"] = static_cast<std::uint64_t>(info.raw_count);
    o["tier1_count"] = static_cast<std::uint64_t>(info.tier1_count);
    o["tier2_count"] = static_cast<std::uint64_t>(info.tier2_count);
    o["oldest_raw_t"] = info.oldest_raw_t;
    o["last_t"] = info.last_t;
    arr.emplace_back(std::move(o));
  }
  JsonObject top;
  top["num_series"] = static_cast<std::uint64_t>(store_.num_series());
  top["memory_bytes"] = static_cast<std::uint64_t>(store_.memory_bytes());
  top["budget_bytes"] = static_cast<std::uint64_t>(store_.memory_budget());
  top["evictions"] = store_.evictions();
  top["series"] = std::move(arr);
  resp.body = Json(top).dump();
}

void TelemetryRest::handle_query(const HttpRequest& req,
                                 HttpResponse& resp) const {
  auto parsed = Json::parse(req.body);
  if (!parsed.is_ok()) {
    fail(resp, 400, "bad json: " + parsed.error().to_string());
    return;
  }
  const Json& q = *parsed;
  auto metric = telemetry::metric_from_name(q["metric"].as_string());
  if (!metric.is_ok()) {
    fail(resp, 400, "unknown metric");
    return;
  }
  SeriesKey key;
  key.agent = static_cast<telemetry::AgentId>(q["agent"].as_number());
  key.entity = telemetry::make_entity(
      static_cast<std::uint16_t>(q["rnti"].as_number()),
      static_cast<std::uint8_t>(q["drb"].as_number()));
  key.metric = *metric;
  auto t0 = static_cast<Nanos>(q["t0_ns"].as_number());
  auto t1 = static_cast<Nanos>(q["t1_ns"].as_number());

  std::string kind = q["kind"].as_string("aggregate");
  JsonObject out;
  if (kind == "raw") {
    auto samples = store_.raw_range(key, t0, t1);
    if (!samples.is_ok()) {
      fail(resp, 404, samples.error().to_string());
      return;
    }
    bool truncated = false;
    out["samples"] = sample_array(clamp_samples(std::move(*samples),
                                                &truncated));
    if (truncated) out["truncated"] = true;
  } else if (kind == "latest") {
    auto n = static_cast<std::size_t>(q["n"].as_number(16));
    if (n > kMaxQuerySamples) n = kMaxQuerySamples;
    auto samples = store_.latest(key, n);
    if (!samples.is_ok()) {
      fail(resp, 404, samples.error().to_string());
      return;
    }
    out["samples"] = sample_array(*samples);
  } else if (kind == "aggregate") {
    QuerySource source = QuerySource::automatic;
    if (!parse_source(q["source"].as_string(), source)) {
      fail(resp, 400, "unknown source");
      return;
    }
    auto agg = store_.window_aggregate(key, t0, t1, source);
    if (!agg.is_ok()) {
      fail(resp, 404, agg.error().to_string());
      return;
    }
    out["source"] = source_name(agg->source);
    out["count"] = agg->count;
    out["sum"] = agg->sum;
    out["min"] = agg->count == 0 ? 0.0 : agg->min;
    out["max"] = agg->count == 0 ? 0.0 : agg->max;
    out["mean"] = agg->mean;
    out["p50"] = agg->p50;
    out["p95"] = agg->p95;
    out["p99"] = agg->p99;
  } else {
    fail(resp, 400, "unknown kind");
    return;
  }
  out["t0_ns"] = t0;
  out["t1_ns"] = t1;
  out["metric"] = telemetry::metric_name(key.metric);
  resp.body = Json(out).dump();
}

void TelemetryRest::handle_dump(const HttpRequest&,
                                HttpResponse& resp) const {
  resp.body = store_.dump_json();
}

}  // namespace flexric::ctrl
