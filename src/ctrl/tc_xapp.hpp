// Flow-based traffic controller specialization (paper §6.1.1, Table 3).
//
// Components, as in the paper:
//   * iApp: RLC/TC stats forwarder (via the broker)      — MonitorIApp+Broker
//   * iApp: TC SM manager (command relay)                — TcSmManagerIApp
//   * Comm. IF: broker (Redis stand-in) + REST (POST)    — Broker/mount_rest
//   * xApp: the bufferbloat policy                       — TcXapp
//
// TcXapp's policy is the paper's three actions: once the low-latency flow's
// sojourn time exceeds a limit it (1) creates a second FIFO queue,
// (2) installs a 5-tuple filter segregating the flow, and (3) loads the
// 5G-BDP pacer (plus a round-robin queue scheduler).
#pragma once

#include "ctrl/broker.hpp"
#include "ctrl/json.hpp"
#include "ctrl/rest.hpp"
#include "e2sm/rlc_sm.hpp"
#include "e2sm/tc_sm.hpp"
#include "server/server.hpp"

namespace flexric::ctrl {

/// iApp relaying TC SM control commands (Table 3's "TC SM manager").
class TcSmManagerIApp final : public server::IApp {
 public:
  explicit TcSmManagerIApp(WireFormat sm_format) : fmt_(sm_format) {}
  [[nodiscard]] const char* name() const override { return "tc-manager"; }

  void on_agent_connected(const server::AgentInfo& info) override;
  void on_agent_disconnected(server::AgentId id) override;

  Status send_ctrl(server::AgentId agent, const e2sm::tc::CtrlMsg& msg,
                   std::function<void(const e2sm::tc::CtrlOutcome&)>
                       on_done = nullptr);
  [[nodiscard]] std::optional<server::AgentId> first_agent() const;

  /// REST command relay: POST /tc with a JSON TC command.
  void mount_rest(HttpServer& http);
  static Result<e2sm::tc::CtrlMsg> ctrl_from_json(const Json& j);

 private:
  WireFormat fmt_;
  std::vector<server::AgentId> tc_agents_;
};

/// The traffic-control xApp: consumes RLC stats from the broker and applies
/// the anti-bufferbloat actions through the TC SM manager.
class TcXapp {
 public:
  struct Config {
    WireFormat sm_format = WireFormat::flat;
    double sojourn_limit_ms = 20.0;  ///< trigger threshold
    e2sm::tc::FiveTuple low_latency_flow;  ///< the VoIP 5-tuple to protect
    std::uint16_t rnti = 0;
    std::uint8_t drb_id = 1;
    std::uint32_t new_qid = 1;
    double pacer_target_ms = 5.0;
  };

  TcXapp(Broker& broker, TcSmManagerIApp& manager, Config cfg);

  [[nodiscard]] bool applied() const noexcept { return applied_; }
  [[nodiscard]] std::uint64_t stats_seen() const noexcept {
    return stats_seen_;
  }

 private:
  void on_rlc_stats(BytesView payload);
  void apply_policy();

  Broker& broker_;
  TcSmManagerIApp& manager_;
  Config cfg_;
  bool applied_ = false;
  std::uint64_t stats_seen_ = 0;
  std::uint64_t sub_token_ = 0;
};

}  // namespace flexric::ctrl
