#include "ctrl/slicing.hpp"

#include <algorithm>

#include "e2sm/common.hpp"

namespace flexric::ctrl {

using e2sm::slice::Algo;
using e2sm::slice::CtrlKind;
using e2sm::slice::CtrlMsg;
using e2sm::slice::NvsKind;
using e2sm::slice::UeSched;

void SlicingIApp::on_agent_connected(const server::AgentInfo& info) {
  bool has_slice_sm = false;
  bool has_rrc_sm = false;
  for (const auto& f : info.functions) {
    has_slice_sm |= f.id == e2sm::slice::Sm::kId;
    has_rrc_sm |= f.id == e2sm::rrc::Sm::kId;
  }
  if (has_slice_sm) {
    slice_agents_.push_back(info.id);
    subscribe_status(info.id);
  }
  if (has_rrc_sm) subscribe_rrc(info.id);
}

void SlicingIApp::on_agent_disconnected(server::AgentId id) {
  status_.erase(id);
  std::erase(slice_agents_, id);
}

std::optional<server::AgentId> SlicingIApp::first_agent() const {
  if (slice_agents_.empty()) return std::nullopt;
  return slice_agents_.front();
}

void SlicingIApp::subscribe_status(server::AgentId agent) {
  e2sm::EventTrigger trigger{e2sm::TriggerKind::periodic,
                             cfg_.status_period_ms};
  e2ap::Action action;
  action.id = 1;
  action.type = e2ap::ActionType::report;
  server::SubCallbacks cbs;
  cbs.on_indication = [this, agent](const e2ap::Indication& ind) {
    auto msg = e2sm::sm_decode<e2sm::slice::IndicationMsg>(ind.message,
                                                           cfg_.sm_format);
    if (msg) status_[agent] = std::move(*msg);
  };
  (void)server_->subscribe(agent, e2sm::slice::Sm::kId,
                     e2sm::sm_encode(trigger, cfg_.sm_format), {action},
                     std::move(cbs));
}

void SlicingIApp::subscribe_rrc(server::AgentId agent) {
  e2sm::EventTrigger trigger{e2sm::TriggerKind::on_event, 0};
  e2ap::Action action;
  action.id = 1;
  action.type = e2ap::ActionType::report;
  server::SubCallbacks cbs;
  cbs.on_indication = [this, agent](const e2ap::Indication& ind) {
    auto ev =
        e2sm::sm_decode<e2sm::rrc::IndicationMsg>(ind.message, cfg_.sm_format);
    if (!ev) return;
    if (ev->kind == e2sm::rrc::EventKind::attach)
      ues_[ev->rnti] = UeInfo{ev->plmn, ev->s_nssai};
    else if (ev->kind == e2sm::rrc::EventKind::detach)
      ues_.erase(ev->rnti);
    if (on_ue_event_) on_ue_event_(*ev, agent);
  };
  (void)server_->subscribe(agent, e2sm::rrc::Sm::kId,
                     e2sm::sm_encode(trigger, cfg_.sm_format), {action},
                     std::move(cbs));
}

Status SlicingIApp::configure(
    server::AgentId agent, const CtrlMsg& msg,
    std::function<void(const e2sm::slice::CtrlOutcome&)> on_done) {
  server::CtrlCallbacks cbs;
  cbs.on_ack = [this, on_done](const e2ap::ControlAck& ack) {
    if (!on_done) return;
    auto outcome = e2sm::sm_decode<e2sm::slice::CtrlOutcome>(ack.outcome,
                                                             cfg_.sm_format);
    on_done(outcome ? *outcome
                    : e2sm::slice::CtrlOutcome{false, "undecodable outcome"});
  };
  cbs.on_failure = [on_done](const e2ap::ControlFailure&) {
    if (on_done) on_done({false, "control failure"});
  };
  return server_->send_control(agent, e2sm::slice::Sm::kId, Buffer{},
                               e2sm::sm_encode(msg, cfg_.sm_format),
                               std::move(cbs));
}

// ---------------------------------------------------------------------------
// JSON translation
// ---------------------------------------------------------------------------

Result<CtrlMsg> SlicingIApp::ctrl_from_json(const Json& j) {
  CtrlMsg msg;
  if (!j["assoc"].is_null()) {
    msg.kind = CtrlKind::assoc_ue;
    for (const auto& a : j["assoc"].as_array()) {
      e2sm::slice::UeSliceAssoc assoc;
      assoc.rnti = static_cast<std::uint16_t>(a["rnti"].as_number());
      assoc.slice_id = static_cast<std::uint32_t>(a["slice"].as_number());
      msg.assoc.push_back(assoc);
    }
    return msg;
  }
  if (!j["delete"].is_null()) {
    msg.kind = CtrlKind::del;
    for (const auto& d : j["delete"].as_array())
      msg.del_ids.push_back(static_cast<std::uint32_t>(d.as_number()));
    return msg;
  }
  msg.kind = CtrlKind::add_mod;
  std::string algo = j["algo"].as_string("nvs");
  if (algo == "nvs") msg.algo = Algo::nvs;
  else if (algo == "static") msg.algo = Algo::static_rb;
  else if (algo == "none") msg.algo = Algo::none;
  else return Error{Errc::malformed, "unknown algo: " + algo};
  for (const auto& s : j["slices"].as_array()) {
    e2sm::slice::SliceConf conf;
    conf.id = static_cast<std::uint32_t>(s["id"].as_number());
    conf.label = s["label"].as_string();
    std::string sched = s["sched"].as_string("pf");
    conf.ue_sched = sched == "rr"   ? UeSched::rr
                    : sched == "mt" ? UeSched::mt
                                    : UeSched::pf;
    if (!s["share"].is_null()) {
      conf.nvs.kind = NvsKind::capacity;
      conf.nvs.capacity_share = s["share"].as_number();
    } else if (!s["rate_mbps"].is_null()) {
      conf.nvs.kind = NvsKind::rate;
      conf.nvs.rate_mbps = s["rate_mbps"].as_number();
      conf.nvs.ref_rate_mbps = s["ref_rate_mbps"].as_number(100.0);
    }
    if (!s["rb_start"].is_null()) {
      conf.static_rb.rb_start =
          static_cast<std::uint32_t>(s["rb_start"].as_number());
      conf.static_rb.rb_count =
          static_cast<std::uint32_t>(s["rb_count"].as_number());
    }
    msg.slices.push_back(std::move(conf));
  }
  if (msg.slices.empty())
    return Error{Errc::malformed, "no slices in add_mod"};
  return msg;
}

Json SlicingIApp::status_to_json(const e2sm::slice::IndicationMsg& msg) {
  JsonObject root;
  root["algo"] = msg.algo == Algo::nvs          ? "nvs"
                 : msg.algo == Algo::static_rb ? "static"
                                               : "none";
  JsonArray slices;
  for (const auto& s : msg.slices) {
    JsonObject o;
    o["id"] = static_cast<double>(s.conf.id);
    o["label"] = s.conf.label;
    o["share"] = s.conf.nvs.capacity_share;
    o["share_used"] = s.prb_share_used;
    o["num_ues"] = static_cast<double>(s.num_ues);
    slices.push_back(Json(std::move(o)));
  }
  root["slices"] = Json(std::move(slices));
  JsonArray assoc;
  for (const auto& a : msg.assoc) {
    JsonObject o;
    o["rnti"] = static_cast<double>(a.rnti);
    o["slice"] = static_cast<double>(a.slice_id);
    assoc.push_back(Json(std::move(o)));
  }
  root["assoc"] = Json(std::move(assoc));
  return Json(std::move(root));
}

void SlicingIApp::mount_rest(HttpServer& http) {
  http.route("GET", "/ran", [this](const HttpRequest&, HttpResponse& resp) {
    JsonObject root;
    JsonArray agents;
    for (server::AgentId id : server_->ran_db().agents()) {
      const server::AgentInfo* info = server_->ran_db().agent(id);
      if (info == nullptr) continue;
      JsonObject o;
      o["agent"] = static_cast<double>(id);
      o["plmn"] = static_cast<double>(info->node.plmn);
      o["nb_id"] = static_cast<double>(info->node.nb_id);
      auto st = status_.find(id);
      if (st != status_.end()) o["slicing"] = status_to_json(st->second);
      agents.push_back(Json(std::move(o)));
    }
    root["agents"] = Json(std::move(agents));
    JsonArray ue_list;
    for (const auto& [rnti, info] : ues_) {
      JsonObject o;
      o["rnti"] = static_cast<double>(rnti);
      o["plmn"] = static_cast<double>(info.plmn);
      o["s_nssai"] = static_cast<double>(info.s_nssai);
      ue_list.push_back(Json(std::move(o)));
    }
    root["ues"] = Json(std::move(ue_list));
    resp.body = Json(std::move(root)).dump();
  });

  auto post_handler = [this](const HttpRequest& req, HttpResponse& resp) {
    auto j = Json::parse(req.body);
    if (!j) {
      resp.code = 400;
      resp.body = R"({"error":"invalid json"})";
      return;
    }
    auto msg = ctrl_from_json(*j);
    if (!msg) {
      resp.code = 400;
      resp.body = "{\"error\":\"" + msg.error().to_string() + "\"}";
      return;
    }
    server::AgentId agent =
        (*j)["agent"].is_null()
            ? first_agent().value_or(0)
            : static_cast<server::AgentId>((*j)["agent"].as_number());
    Status st = configure(agent, *msg);
    if (!st.is_ok()) {
      resp.code = 500;
      resp.body = "{\"error\":\"" + st.to_string() + "\"}";
      return;
    }
    resp.code = 200;
    resp.body = R"({"status":"submitted"})";
  };
  http.route("POST", "/slice", post_handler);
  http.route("POST", "/slice/assoc", post_handler);
}

}  // namespace flexric::ctrl
