#include "ctrl/tc_xapp.hpp"

#include <algorithm>

#include "common/log.hpp"
#include "e2sm/common.hpp"

namespace flexric::ctrl {

using e2sm::tc::CtrlKind;
using e2sm::tc::CtrlMsg;
using e2sm::tc::PacerKind;
using e2sm::tc::QueueKind;
using e2sm::tc::SchedKind;

// ---------------------------------------------------------------------------
// TcSmManagerIApp
// ---------------------------------------------------------------------------

void TcSmManagerIApp::on_agent_connected(const server::AgentInfo& info) {
  for (const auto& f : info.functions)
    if (f.id == e2sm::tc::Sm::kId) {
      tc_agents_.push_back(info.id);
      break;
    }
}

void TcSmManagerIApp::on_agent_disconnected(server::AgentId id) {
  std::erase(tc_agents_, id);
}

std::optional<server::AgentId> TcSmManagerIApp::first_agent() const {
  if (tc_agents_.empty()) return std::nullopt;
  return tc_agents_.front();
}

Status TcSmManagerIApp::send_ctrl(
    server::AgentId agent, const CtrlMsg& msg,
    std::function<void(const e2sm::tc::CtrlOutcome&)> on_done) {
  server::CtrlCallbacks cbs;
  cbs.on_ack = [this, on_done](const e2ap::ControlAck& ack) {
    if (!on_done) return;
    auto outcome =
        e2sm::sm_decode<e2sm::tc::CtrlOutcome>(ack.outcome, fmt_);
    on_done(outcome ? *outcome
                    : e2sm::tc::CtrlOutcome{false, "undecodable outcome"});
  };
  cbs.on_failure = [on_done](const e2ap::ControlFailure&) {
    if (on_done) on_done({false, "control failure"});
  };
  return server_->send_control(agent, e2sm::tc::Sm::kId, Buffer{},
                               e2sm::sm_encode(msg, fmt_), std::move(cbs));
}

Result<CtrlMsg> TcSmManagerIApp::ctrl_from_json(const Json& j) {
  CtrlMsg msg;
  msg.rnti = static_cast<std::uint16_t>(j["rnti"].as_number());
  msg.drb_id = static_cast<std::uint8_t>(j["drb"].as_number(1));
  std::string kind = j["cmd"].as_string();
  if (kind == "add_queue") {
    msg.kind = CtrlKind::add_queue;
    msg.queue.qid = static_cast<std::uint32_t>(j["qid"].as_number());
    msg.queue.kind =
        j["codel"].as_bool() ? QueueKind::codel : QueueKind::fifo;
    if (!j["limit_bytes"].is_null())
      msg.queue.limit_bytes =
          static_cast<std::uint32_t>(j["limit_bytes"].as_number());
  } else if (kind == "del_queue") {
    msg.kind = CtrlKind::del_queue;
    msg.del_id = static_cast<std::uint32_t>(j["qid"].as_number());
  } else if (kind == "add_filter") {
    msg.kind = CtrlKind::add_filter;
    msg.filter.filter_id =
        static_cast<std::uint32_t>(j["filter_id"].as_number());
    msg.filter.dst_qid = static_cast<std::uint32_t>(j["qid"].as_number());
    const Json& m = j["match"];
    msg.filter.match.src_ip = static_cast<std::uint32_t>(m["src_ip"].as_number());
    msg.filter.match.dst_ip = static_cast<std::uint32_t>(m["dst_ip"].as_number());
    msg.filter.match.src_port =
        static_cast<std::uint16_t>(m["src_port"].as_number());
    msg.filter.match.dst_port =
        static_cast<std::uint16_t>(m["dst_port"].as_number());
    msg.filter.match.proto = static_cast<std::uint8_t>(m["proto"].as_number());
  } else if (kind == "del_filter") {
    msg.kind = CtrlKind::del_filter;
    msg.del_id = static_cast<std::uint32_t>(j["filter_id"].as_number());
  } else if (kind == "sched") {
    msg.kind = CtrlKind::sched_conf;
    std::string s = j["sched"].as_string("rr");
    msg.sched.kind = s == "prio"  ? SchedKind::prio
                     : s == "wrr" ? SchedKind::wrr
                                  : SchedKind::rr;
    for (const auto& w : j["weights"].as_array())
      msg.sched.weights.push_back(
          static_cast<std::uint32_t>(w.as_number()));
  } else if (kind == "pacer") {
    msg.kind = CtrlKind::pacer_conf;
    msg.pacer.kind =
        j["mode"].as_string("bdp") == "none" ? PacerKind::none : PacerKind::bdp;
    msg.pacer.target_ms = j["target_ms"].as_number(5.0);
  } else {
    return Error{Errc::malformed, "unknown tc cmd: " + kind};
  }
  return msg;
}

void TcSmManagerIApp::mount_rest(HttpServer& http) {
  http.route("POST", "/tc", [this](const HttpRequest& req,
                                   HttpResponse& resp) {
    auto j = Json::parse(req.body);
    if (!j) {
      resp.code = 400;
      resp.body = R"({"error":"invalid json"})";
      return;
    }
    auto msg = ctrl_from_json(*j);
    if (!msg) {
      resp.code = 400;
      resp.body = "{\"error\":\"" + msg.error().to_string() + "\"}";
      return;
    }
    server::AgentId agent =
        (*j)["agent"].is_null()
            ? first_agent().value_or(0)
            : static_cast<server::AgentId>((*j)["agent"].as_number());
    Status st = send_ctrl(agent, *msg);
    resp.code = st.is_ok() ? 200 : 500;
    resp.body = st.is_ok() ? R"({"status":"submitted"})"
                           : "{\"error\":\"" + st.to_string() + "\"}";
  });
}

// ---------------------------------------------------------------------------
// TcXapp
// ---------------------------------------------------------------------------

TcXapp::TcXapp(Broker& broker, TcSmManagerIApp& manager, Config cfg)
    : broker_(broker), manager_(manager), cfg_(cfg) {
  sub_token_ = broker_.subscribe(
      "stats/rlc",
      [this](const std::string&, BytesView payload) { on_rlc_stats(payload); });
}

void TcXapp::on_rlc_stats(BytesView payload) {
  stats_seen_++;
  if (applied_) return;
  auto msg =
      e2sm::sm_decode<e2sm::rlc::IndicationMsg>(payload, cfg_.sm_format);
  if (!msg) return;
  for (const auto& b : msg->bearers) {
    if (b.rnti != cfg_.rnti || b.drb_id != cfg_.drb_id) continue;
    // The low-latency flow shares the bloated DRB buffer, so its packets'
    // sojourn is the bearer's sojourn.
    if (std::max(b.sojourn_avg_ms, b.sojourn_max_ms) >
        cfg_.sojourn_limit_ms) {
      LOG_INFO("tc-xapp",
               "sojourn %.1f ms beyond limit %.1f ms: applying segregation",
               b.sojourn_max_ms, cfg_.sojourn_limit_ms);
      apply_policy();
      break;
    }
  }
}

void TcXapp::apply_policy() {
  applied_ = true;
  auto agent = manager_.first_agent();
  if (!agent) return;
  // Action 1: a second FIFO queue.
  CtrlMsg add_q;
  add_q.kind = CtrlKind::add_queue;
  add_q.rnti = cfg_.rnti;
  add_q.drb_id = cfg_.drb_id;
  add_q.queue.qid = cfg_.new_qid;
  add_q.queue.kind = QueueKind::fifo;
  (void)manager_.send_ctrl(*agent, add_q);
  // Action 2: segregate the low-latency flow by its 5-tuple.
  CtrlMsg add_f;
  add_f.kind = CtrlKind::add_filter;
  add_f.rnti = cfg_.rnti;
  add_f.drb_id = cfg_.drb_id;
  add_f.filter.filter_id = 1;
  add_f.filter.match = cfg_.low_latency_flow;
  add_f.filter.dst_qid = cfg_.new_qid;
  (void)manager_.send_ctrl(*agent, add_f);
  // Round-robin scheduler across the queues.
  CtrlMsg sched;
  sched.kind = CtrlKind::sched_conf;
  sched.rnti = cfg_.rnti;
  sched.drb_id = cfg_.drb_id;
  sched.sched.kind = SchedKind::rr;
  (void)manager_.send_ctrl(*agent, sched);
  // Action 3: the 5G-BDP pacer keeps the DRB buffer uncongested.
  CtrlMsg pacer;
  pacer.kind = CtrlKind::pacer_conf;
  pacer.rnti = cfg_.rnti;
  pacer.drb_id = cfg_.drb_id;
  pacer.pacer.kind = PacerKind::bdp;
  pacer.pacer.target_ms = cfg_.pacer_target_ms;
  (void)manager_.send_ctrl(*agent, pacer);
}

}  // namespace flexric::ctrl
