#include "transport/transport.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/log.hpp"

namespace flexric {

namespace {

void set_nonblocking(int fd) {
  int flags = fcntl(fd, F_GETFL, 0);
  fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

void set_nodelay(int fd) {
  int one = 1;
  setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
}

}  // namespace

void append_frame(Buffer& out, BytesView msg, StreamId stream) {
  std::uint32_t len = static_cast<std::uint32_t>(msg.size());
  for (int i = 0; i < 4; ++i)
    out.push_back(static_cast<std::uint8_t>(len >> (8 * i)));
  out.push_back(static_cast<std::uint8_t>(stream & 0xFF));
  out.push_back(static_cast<std::uint8_t>(stream >> 8));
  out.insert(out.end(), msg.begin(), msg.end());
}

// ---------------------------------------------------------------------------
// FrameAssembler
// ---------------------------------------------------------------------------

Status FrameAssembler::feed(BytesView bytes, const FrameSink& sink) {
  rx_.insert(rx_.end(), bytes.begin(), bytes.end());
  std::size_t off = 0;
  Status st = Status::ok();
  while (rx_.size() - off >= kFrameHeaderSize) {
    BufReader hdr(BytesView(rx_).subspan(off, kFrameHeaderSize));
    std::uint32_t len = *hdr.u32();
    StreamId stream = *hdr.u16();
    if (len > max_frame_) {
      st = {Errc::malformed, "oversized frame"};
      break;
    }
    if (rx_.size() - off - kFrameHeaderSize < len) break;  // incomplete
    bool keep_going =
        sink(stream, BytesView(rx_).subspan(off + kFrameHeaderSize, len));
    off += kFrameHeaderSize + len;
    if (!keep_going) break;
  }
  if (off > 0) rx_.erase(rx_.begin(), rx_.begin() + static_cast<long>(off));
  return st;
}

// ---------------------------------------------------------------------------
// TcpTransport
// ---------------------------------------------------------------------------

TcpTransport::TcpTransport(Reactor& reactor, int fd)
    : reactor_(reactor), fd_(fd) {
  set_nonblocking(fd_);
  set_nodelay(fd_);
  Status st =
      reactor_.add_fd(fd_, EPOLLIN, [this](std::uint32_t ev) { on_events(ev); });
  FLEXRIC_ASSERT(st.is_ok(), "TcpTransport: add_fd failed");
}

TcpTransport::~TcpTransport() { close(); }

void TcpTransport::close() {
  if (fd_ < 0) return;
  // Best effort: push out anything still corked before closing.
  if (tx_off_ < txbuf_.size())
    (void)!::send(fd_, txbuf_.data() + tx_off_, txbuf_.size() - tx_off_,
                  MSG_NOSIGNAL | MSG_DONTWAIT);
  *alive_ = false;
  reactor_.del_fd(fd_);
  ::close(fd_);
  fd_ = -1;
  if (on_close_) {
    auto cb = std::move(on_close_);
    on_close_ = nullptr;
    cb();
  }
}

std::string TcpTransport::peer_name() const {
  if (fd_ < 0) return "(closed)";
  sockaddr_in addr{};
  socklen_t len = sizeof addr;
  if (getpeername(fd_, reinterpret_cast<sockaddr*>(&addr), &len) != 0)
    return "(unknown)";
  char ip[INET_ADDRSTRLEN] = {};
  inet_ntop(AF_INET, &addr.sin_addr, ip, sizeof ip);
  return std::string(ip) + ":" + std::to_string(ntohs(addr.sin_port));
}

Status TcpTransport::send(BytesView msg, StreamId stream) {
  FLEXRIC_ASSERT_AFFINITY(reactor_.affinity());
  if (fd_ < 0) return {Errc::io, "transport closed"};
  if (msg.size() > kMaxFrameSize) return {Errc::capacity, "message too large"};
  // Backpressure a stalled peer: reject instead of queueing without bound.
  if (pending_tx_bytes() + kFrameHeaderSize + msg.size() > max_tx_buf_)
    return {Errc::capacity, "send buffer full (peer not reading)"};
  append_frame(txbuf_, msg, stream);
  schedule_flush();
  return Status::ok();
}

void TcpTransport::schedule_flush() {
  if (flush_scheduled_) return;
  flush_scheduled_ = true;
  reactor_.post([this, alive = std::weak_ptr<bool>(alive_)] {
    auto a = alive.lock();
    if (!a || !*a) return;
    flush_scheduled_ = false;
    if (fd_ >= 0) (void)flush_write();
  });
}

Status TcpTransport::flush_write() {
  while (tx_off_ < txbuf_.size()) {
    ssize_t n = ::send(fd_, txbuf_.data() + tx_off_, txbuf_.size() - tx_off_,
                       MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      Status st{Errc::io, std::strerror(errno)};
      close();
      return st;
    }
    tx_off_ += static_cast<std::size_t>(n);
  }
  if (tx_off_ == txbuf_.size()) {
    txbuf_.clear();
    tx_off_ = 0;
  } else if (tx_off_ > 1 << 20) {
    // Compact occasionally so a slow peer doesn't pin sent bytes forever.
    txbuf_.erase(txbuf_.begin(), txbuf_.begin() + static_cast<long>(tx_off_));
    tx_off_ = 0;
  }
  update_epoll_mask();
  return Status::ok();
}

void TcpTransport::update_epoll_mask() {
  if (fd_ < 0) return;
  std::uint32_t mask = EPOLLIN;
  if (tx_off_ < txbuf_.size()) mask |= EPOLLOUT;
  (void)reactor_.mod_fd(fd_, mask);
}

void TcpTransport::on_events(std::uint32_t events) {
  if (events & (EPOLLHUP | EPOLLERR)) {
    close();
    return;
  }
  if (events & EPOLLOUT) (void)flush_write();
  if (events & EPOLLIN) read_ready();
}

void TcpTransport::read_ready() {
  std::uint8_t chunk[65536];
  Buffer pending;
  bool eof = false;
  while (fd_ >= 0) {
    ssize_t n = ::recv(fd_, chunk, sizeof chunk, 0);
    if (n > 0) {
      pending.insert(pending.end(), chunk, chunk + n);
      if (static_cast<std::size_t>(n) < sizeof chunk) break;
      continue;
    }
    if (n == 0) {  // orderly shutdown: deliver what arrived, then close
      eof = true;
      break;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    LOG_WARN("tcp", "recv error: %s", std::strerror(errno));
    close();
    return;
  }
  // Deliver complete frames; a handler closing us stops the drain.
  Status st = rx_.feed(pending, [this](StreamId stream, BytesView msg) {
    if (on_msg_) on_msg_(stream, msg);
    return fd_ >= 0;
  });
  if (!st.is_ok()) {
    LOG_WARN("tcp", "bad frame from %s: %s", peer_name().c_str(),
             st.to_string().c_str());
    close();
    return;
  }
  if (eof) close();
}

Result<std::unique_ptr<TcpTransport>> TcpTransport::connect(
    Reactor& reactor, const std::string& host, std::uint16_t port) {
  int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return Error{Errc::io, std::strerror(errno)};
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Error{Errc::io, "bad address"};
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    Error e{Errc::io, std::strerror(errno)};
    ::close(fd);
    return e;
  }
  return std::make_unique<TcpTransport>(reactor, fd);
}

// ---------------------------------------------------------------------------
// TcpListener
// ---------------------------------------------------------------------------

TcpListener::TcpListener(Reactor& reactor, AcceptHandler on_accept)
    : reactor_(reactor), on_accept_(std::move(on_accept)) {}

TcpListener::~TcpListener() { close(); }

Status TcpListener::listen(std::uint16_t port) {
  fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd_ < 0) return {Errc::io, std::strerror(errno)};
  int one = 1;
  setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (bind(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    Status st{Errc::io, std::strerror(errno)};
    ::close(fd_);
    fd_ = -1;
    return st;
  }
  if (::listen(fd_, 64) != 0) {
    Status st{Errc::io, std::strerror(errno)};
    ::close(fd_);
    fd_ = -1;
    return st;
  }
  socklen_t len = sizeof addr;
  getsockname(fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);
  set_nonblocking(fd_);
  return reactor_.add_fd(fd_, EPOLLIN,
                         [this](std::uint32_t) { accept_ready(); });
}

void TcpListener::accept_ready() {
  while (true) {
    int cfd = ::accept4(fd_, nullptr, nullptr, SOCK_CLOEXEC);
    if (cfd < 0) return;  // EAGAIN or error: back to the loop
    on_accept_(std::make_unique<TcpTransport>(reactor_, cfd));
  }
}

void TcpListener::close() {
  if (fd_ < 0) return;
  reactor_.del_fd(fd_);
  ::close(fd_);
  fd_ = -1;
}

// ---------------------------------------------------------------------------
// LocalTransport
// ---------------------------------------------------------------------------

std::pair<std::shared_ptr<LocalTransport>, std::shared_ptr<LocalTransport>>
LocalTransport::make_pair(Reactor& reactor) {
  auto a = std::shared_ptr<LocalTransport>(new LocalTransport(reactor));
  auto b = std::shared_ptr<LocalTransport>(new LocalTransport(reactor));
  a->peer_ = b;
  b->peer_ = a;
  return {a, b};
}

Status LocalTransport::send(BytesView msg, StreamId stream) {
  if (!open_) return {Errc::io, "transport closed"};
  auto peer = peer_.lock();
  if (!peer || !peer->open_) return {Errc::io, "peer closed"};
  // Copy now (the caller's view may die), deliver on the next loop turn.
  Buffer copy(msg.begin(), msg.end());
  std::weak_ptr<LocalTransport> target = peer;
  reactor_.post([target, stream, copy = std::move(copy)]() {
    auto t = target.lock();
    if (t && t->open_ && t->on_msg_) t->on_msg_(stream, copy);
  });
  return Status::ok();
}

void LocalTransport::close() {
  if (!open_) return;
  open_ = false;
  if (on_close_) {
    auto cb = std::move(on_close_);
    on_close_ = nullptr;
    cb();
  }
  if (auto peer = peer_.lock(); peer && peer->open_) {
    std::weak_ptr<LocalTransport> target = peer;
    reactor_.post([target]() {
      if (auto t = target.lock()) t->close();
    });
  }
}

}  // namespace flexric
