// N-shard reactor pool (DESIGN.md §13; ROADMAP item 1).
//
// Modeled on ndn-dpdk's RxLoop/RxProc split: the pool owns N Reactors —
// one single-threaded universe per shard — and either runs each on its own
// thread (Mode::threaded, production and benches) or leaves all of them to
// be pumped by one harness thread in a fixed interleaving order
// (Mode::manual, the deterministic test mode: with a shared VirtualClock
// the whole N-shard system replays bit-identically).
//
// Each shard's Reactor carries a named affinity domain ("shard0",
// "shard1", ...), so a cross-shard call trips FLEXRIC_ASSERT_AFFINITY with
// the offended shard's name in the diagnostic, and the static analyzer's
// @affine(shard) vocabulary maps onto real runtime domains.
//
// The only sanctioned way into a running shard from outside is post():
// an SPSC injector ring (this pool's owner thread is the single producer)
// plus an eventfd wake. Everything else — RAN-DB merge, xApp fan-out,
// stats — flows shard->home through the rings owned by ShardedE2Server.
#pragma once

#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "common/affinity.hpp"
#include "common/clock.hpp"
#include "common/spsc_ring.hpp"
#include "transport/reactor.hpp"
#include "transport/wakeup.hpp"

namespace flexric {

// The pool itself (start/stop/post/pump) is owned by the home thread that
// built it; only the per-shard Reactors it hands out are shard-affine.
// @affine(reactor)
class ShardPool {
 public:
  enum class Mode {
    manual,    ///< no threads; the owner pumps all loops in fixed order
    threaded,  ///< one thread per shard running Reactor::run()
  };

  /// Affinity domains are string literals, so the shard count is capped by
  /// the size of the static name table.
  static constexpr std::uint32_t kMaxShards = 16;
  [[nodiscard]] static const char* domain_name(std::uint32_t shard) noexcept;

  /// `clock` (optional) becomes the time source of every shard reactor —
  /// the deterministic-test configuration. Keep it alive for the pool's
  /// lifetime.
  ShardPool(std::uint32_t shards, Mode mode,
            const VirtualClock* clock = nullptr);
  ~ShardPool();
  ShardPool(const ShardPool&) = delete;
  ShardPool& operator=(const ShardPool&) = delete;

  [[nodiscard]] std::uint32_t size() const noexcept {
    return static_cast<std::uint32_t>(shards_.size());
  }
  [[nodiscard]] Mode mode() const noexcept { return mode_; }
  [[nodiscard]] Reactor& reactor(std::uint32_t shard) noexcept {
    return *shards_[shard].reactor;
  }
  [[nodiscard]] const char* domain(std::uint32_t shard) const noexcept {
    return shards_[shard].reactor->affinity().domain();
  }

  /// Threaded mode: launch one thread per shard, each running its loop.
  /// Manual mode: no-op.
  void start();
  /// Threaded mode: stop every loop (via its own thread) and join. Safe to
  /// call twice; the destructor calls it. Manual mode: no-op.
  void stop();
  [[nodiscard]] bool running() const noexcept { return started_; }

  /// Run `fn` on `shard`'s loop thread. Owner-thread only (the injector
  /// ring is SPSC; the affinity guard enforces the single-producer end).
  /// Errc::capacity when the shard's injector ring is full — the caller
  /// must back off and retry, the call is never silently dropped.
  Status post(std::uint32_t shard, std::function<void()> fn);

  /// Manual mode: pump every shard in fixed order (shard 0 first), up to
  /// `rounds` run_once(0) calls each, until all loops go idle. Returns the
  /// number of work items handled. This fixed interleave is the scheduling
  /// order the deterministic harness replays byte-identically.
  int pump(int rounds = 8);

  /// CPU burned by `shard`'s loop thread (threaded mode; valid after
  /// stop()). The bench uses this for per-shard frames-per-CPU-second.
  [[nodiscard]] Nanos thread_cpu(std::uint32_t shard) const noexcept {
    return shards_[shard].cpu_ns;
  }

 private:
  struct Shard {
    std::unique_ptr<Reactor> reactor;
    std::unique_ptr<SpscRing<std::function<void()>>> injector;
    std::unique_ptr<WakeupFd> wake;
    std::thread thread;
    Nanos cpu_ns = 0;  ///< written by the shard thread after run() returns
  };

  std::vector<Shard> shards_;
  Mode mode_;
  bool started_ = false;
  /// Single-producer end of every injector ring: the pool owner's thread.
  DomainAffinity owner_{"reactor"};
};

}  // namespace flexric
